#include "atpg/pattern.h"

#include <cassert>

#include "rt/parallel.h"

namespace scap {

const char* fill_mode_name(FillMode m) {
  switch (m) {
    case FillMode::kRandom:
      return "random-fill";
    case FillMode::kFill0:
      return "fill-0";
    case FillMode::kFill1:
      return "fill-1";
    case FillMode::kAdjacent:
      return "fill-adjacent";
    case FillMode::kQuiet:
      return "fill-quiet";
  }
  return "?";
}

namespace {

void fill_adjacent_chain(std::span<const FlopId> chain,
                         std::span<std::uint8_t> bits) {
  // Forward pass: copy the nearest preceding care value.
  std::uint8_t last = kBitX;
  for (FlopId f : chain) {
    if (bits[f] != kBitX) {
      last = bits[f];
    } else if (last != kBitX) {
      bits[f] = last;
    }
  }
  // Backward pass for a leading X run; all-X chains become 0.
  last = 0;
  for (std::size_t i = chain.size(); i-- > 0;) {
    const FlopId f = chain[i];
    if (bits[f] != kBitX) {
      last = bits[f];
    } else {
      bits[f] = last;
    }
  }
}

void fill_subset(std::span<std::uint8_t> bits, FillMode mode, Rng& rng,
                 std::span<const std::vector<FlopId>> chains,
                 std::span<const std::uint8_t> quiet_state,
                 const std::vector<std::uint8_t>* member) {
  auto in_subset = [&](FlopId f) {
    return member == nullptr || (*member)[f] != 0;
  };
  switch (mode) {
    case FillMode::kRandom:
      for (FlopId f = 0; f < bits.size(); ++f) {
        if (bits[f] == kBitX && in_subset(f)) {
          bits[f] = static_cast<std::uint8_t>(rng.below(2));
        }
      }
      break;
    case FillMode::kFill0:
    case FillMode::kFill1: {
      const std::uint8_t v = mode == FillMode::kFill1 ? 1 : 0;
      for (FlopId f = 0; f < bits.size(); ++f) {
        if (bits[f] == kBitX && in_subset(f)) bits[f] = v;
      }
      break;
    }
    case FillMode::kQuiet: {
      assert(quiet_state.size() == bits.size());
      for (FlopId f = 0; f < bits.size(); ++f) {
        if (bits[f] == kBitX && in_subset(f)) bits[f] = quiet_state[f];
      }
      break;
    }
    case FillMode::kAdjacent: {
      if (member != nullptr) {
        // Adjacent fill within a subset: restrict each chain to its members.
        for (const auto& chain : chains) {
          std::vector<FlopId> sub;
          for (FlopId f : chain) {
            if (in_subset(f)) sub.push_back(f);
          }
          fill_adjacent_chain(sub, bits);
        }
      } else {
        for (const auto& chain : chains) fill_adjacent_chain(chain, bits);
      }
      break;
    }
  }
}

std::vector<std::vector<FlopId>> identity_chain(std::size_t n) {
  std::vector<std::vector<FlopId>> chains(1);
  chains[0].resize(n);
  for (FlopId f = 0; f < n; ++f) chains[0][f] = f;
  return chains;
}

}  // namespace

Pattern apply_fill(const TestCube& cube, FillMode mode, Rng& rng,
                   std::span<const std::vector<FlopId>> chains,
                   std::span<const std::uint8_t> quiet_state) {
  Pattern p;
  p.s1 = cube.s1;
  std::vector<std::vector<FlopId>> fallback;
  if (mode == FillMode::kAdjacent && chains.empty()) {
    fallback = identity_chain(cube.s1.size());
    chains = fallback;
  }
  fill_subset(p.s1, mode, rng, chains, quiet_state, nullptr);
  return p;
}

Pattern apply_fill_per_block(const Netlist& nl, const TestCube& cube,
                             std::span<const FillMode> block_modes, Rng& rng,
                             std::span<const std::vector<FlopId>> chains,
                             std::span<const std::uint8_t> quiet_state) {
  assert(block_modes.size() >= nl.block_count());
  Pattern p;
  p.s1 = cube.s1;
  std::vector<std::vector<FlopId>> fallback;
  if (chains.empty()) {
    fallback = identity_chain(cube.s1.size());
    chains = fallback;
  }
  std::vector<std::uint8_t> member(nl.num_flops(), 0);
  for (BlockId b = 0; b < nl.block_count(); ++b) {
    for (FlopId f = 0; f < nl.num_flops(); ++f) {
      member[f] = nl.flop(f).block == b ? 1 : 0;
    }
    fill_subset(p.s1, block_modes[b], rng, chains, quiet_state, &member);
  }
  return p;
}

PatternSet random_pattern_set(std::size_t n, std::size_t num_vars,
                              std::uint64_t seed) {
  // One jump stream per block of kBlock patterns: the stream a pattern draws
  // from depends only on its index, so the parallel grain below MUST stay
  // kBlock (chunk == stream granularity) for thread-count invariance.
  constexpr std::size_t kBlock = 16;
  PatternSet set;
  set.patterns.resize(n);
  rt::parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        Rng rng = Rng::stream(seed, begin / kBlock);
        for (std::size_t p = begin; p < end; ++p) {
          Pattern& pat = set.patterns[p];
          pat.s1.resize(num_vars);
          for (auto& bit : pat.s1) {
            bit = static_cast<std::uint8_t>(rng() & 1);
          }
        }
      },
      rt::ForOptions{.grain = kBlock, .min_items = 1});
  return set;
}

}  // namespace scap
