// Pattern-set serialization (tester interchange).
//
// A STIL-flavoured plain-text format: a header records the domain, launch
// scheme and variable count; each pattern is one line of '0'/'1' characters
// in test-variable order (scan bits, then any launch variables). Stable,
// diffable, and round-trippable -- the hand-off artifact between the ATPG
// and a tester program, and the library's way to archive a signed-off set.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "atpg/context.h"
#include "atpg/pattern.h"

namespace scap {

void write_patterns(const PatternSet& patterns, const TestContext& ctx,
                    std::ostream& os);
std::string to_pattern_text(const PatternSet& patterns, const TestContext& ctx);

/// Parse a document produced by write_patterns. Validates the variable count
/// against `ctx` and throws std::runtime_error (with a line number) on
/// malformed input or mismatched geometry.
PatternSet parse_patterns(std::string_view text, const TestContext& ctx);

}  // namespace scap
