#include "atpg/fault.h"

#include <sstream>

namespace scap {

std::vector<TdfFault> enumerate_faults(const Netlist& nl) {
  std::vector<TdfFault> out;
  const auto both = [&](TdfFault f) {
    f.type = TdfType::kSlowToRise;
    out.push_back(f);
    f.type = TdfType::kSlowToFall;
    out.push_back(f);
  };

  for (GateId g = 0; g < nl.num_gates(); ++g) {
    both(TdfFault{nl.gate(g).out, FaultSite::kStem, kNullId, 0,
                  TdfType::kSlowToRise});
    const auto ins = nl.gate_inputs(g);
    for (std::uint8_t pin = 0; pin < ins.size(); ++pin) {
      both(TdfFault{ins[pin], FaultSite::kGateBranch, g, pin,
                    TdfType::kSlowToRise});
    }
  }
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    both(TdfFault{nl.flop(f).q, FaultSite::kStem, kNullId, 0,
                  TdfType::kSlowToRise});
    both(TdfFault{nl.flop(f).d, FaultSite::kFlopBranch, f, 0,
                  TdfType::kSlowToRise});
  }
  return out;
}

std::vector<TdfFault> collapse_faults(const Netlist& nl,
                                      const std::vector<TdfFault>& faults) {
  std::vector<TdfFault> out;
  out.reserve(faults.size());
  // A branch may fold into its stem only if the stem fault actually exists
  // in the universe (gate/flop driver); PI nets have no stem, so their
  // branch faults must survive as the class representatives.
  const auto has_stem = [&](const Net& nr) {
    return nr.driver_kind == DriverKind::kGate ||
           nr.driver_kind == DriverKind::kFlop;
  };
  for (const TdfFault& f : faults) {
    const Net& nr = nl.net(f.net);
    // Branch on a net with exactly one load in total: equivalent to the stem.
    if (f.site == FaultSite::kGateBranch && nr.fo_count == 1 &&
        nr.ffo_count == 0 && has_stem(nr)) {
      continue;
    }
    if (f.site == FaultSite::kFlopBranch && nr.fo_count == 0 &&
        nr.ffo_count == 1 && has_stem(nr)) {
      continue;
    }
    // Output stem of a BUF/INV: equivalent to the fault at its input pin
    // (polarity-swapped for INV), which is itself represented by the input
    // net's stem or branch fault -- provided that input-side fault exists.
    if (f.site == FaultSite::kStem && nr.driver_kind == DriverKind::kGate) {
      const CellType t = nl.gate(nr.driver).type;
      if (t == CellType::kBuf || t == CellType::kInv) {
        const NetId in = nl.gate_inputs(nr.driver)[0];
        const Net& inr = nl.net(in);
        // The input net keeps a stem (gate/flop driver) or keeps the branch
        // fault feeding this buffer (multi-load or PI-driven nets keep their
        // branches after the rules above).
        if (has_stem(inr) || inr.fo_count + inr.ffo_count > 1 ||
            inr.driver_kind == DriverKind::kInput) {
          continue;
        }
      }
    }
    out.push_back(f);
  }
  return out;
}

BlockId fault_block(const Netlist& nl, const TdfFault& f) {
  switch (f.site) {
    case FaultSite::kGateBranch:
      return nl.gate(f.load).block;
    case FaultSite::kFlopBranch:
      return nl.flop(f.load).block;
    case FaultSite::kStem:
      break;
  }
  const Net& nr = nl.net(f.net);
  if (nr.driver_kind == DriverKind::kGate) return nl.gate(nr.driver).block;
  if (nr.driver_kind == DriverKind::kFlop) return nl.flop(nr.driver).block;
  return 0;
}

std::string describe_fault(const Netlist& nl, const TdfFault& f) {
  std::ostringstream os;
  os << nl.net_name(f.net);
  if (f.site == FaultSite::kGateBranch) {
    os << "->g" << f.load << "." << static_cast<int>(f.pin);
  } else if (f.site == FaultSite::kFlopBranch) {
    os << "->f" << f.load << ".D";
  }
  os << (f.type == TdfType::kSlowToRise ? "[STR]" : "[STF]");
  return os.str();
}

}  // namespace scap
