// PODEM test generation for transition delay faults under launch-off-capture.
//
// The two-frame broadside model is simulated directly (no physically expanded
// netlist): frame 1 is the scanned-in state S1, frame 2 sees S2 = D(S1) on
// active-domain flops and S1 on held flops. Three 3-valued planes are kept:
// frame-1 good, frame-2 good, and frame-2 faulty (the gross-delay model's
// stuck-at-v1 in frame 2). Decision variables are the scan bits S1 only --
// exactly what a tester controls; primary inputs are constants.
//
// Implication is event-driven: changing one scan bit repropagates only the
// affected cone (across the frame boundary through active flops), which keeps
// dynamic compaction affordable. extend() continues from the current
// assignments to target a second fault without disturbing bits already
// committed -- that is what lets the ATPG engine pack many faults per pattern
// the way the commercial greedy tools the paper wraps do.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "atpg/context.h"
#include "atpg/fault.h"
#include "atpg/pattern.h"
#include "netlist/netlist.h"

namespace scap {

enum class PodemStatus : std::uint8_t { kDetected, kUntestable, kAborted };

struct PodemOptions {
  std::uint32_t backtrack_limit = 64;
};

class Podem {
 public:
  Podem(const Netlist& nl, const TestContext& ctx, PodemOptions opt = {});

  /// Generate a cube detecting the fault, starting from a clean slate.
  PodemStatus generate(const TdfFault& fault, TestCube& out);

  /// Dynamic compaction: keep current assignments fixed and try to extend
  /// them to also detect `fault`. On success `out` holds the merged cube; on
  /// failure the pre-call assignments are restored.
  PodemStatus extend(const TdfFault& fault, TestCube& out);

  /// Drop all assignments (generate() does this implicitly).
  void clear_assignments();

  /// Current cube (assignments made so far).
  TestCube cube() const;

  /// White-box validation hook: install `fault`, assign every test variable
  /// from `s1` (0/1 per variable), and report whether the implication sees the
  /// fault detected. Under a full assignment the 3-valued planes are exact,
  /// so this must agree with the fault simulator -- tests rely on that.
  bool probe(const TdfFault& fault, std::span<const std::uint8_t> s1);

  std::uint64_t implications() const { return implications_; }
  std::uint64_t backtracks() const { return backtracks_; }

 private:
  enum Frame : std::uint8_t { kF1 = 0, kF2 = 1 };

  struct Objective {
    Frame frame;
    NetId net;
    int value;
  };
  struct Decision {
    FlopId flop;
    std::uint8_t value;
    bool flipped;
  };

  // -- plane maintenance ----------------------------------------------------
  void rebuild_planes();
  void set_s1(FlopId f, int v);  ///< v in {0,1} or kBitX; propagates
  void update_f1(NetId n, V3 v);
  void update_f2(NetId n, V3 good, V3 faulty);
  void enqueue(Frame fr, GateId g);
  void propagate();
  void eval_gate(Frame fr, GateId g);
  V3 faulty_input(GateId g, std::uint8_t pin, NetId net) const;

  // -- fault bookkeeping ------------------------------------------------------
  void install_fault(const TdfFault& f);
  void reset_fault_plane();
  bool detected() const;

  // -- search -----------------------------------------------------------------
  PodemStatus run(std::size_t baseline, TestCube& out);
  std::optional<Objective> objective();
  std::optional<std::pair<FlopId, int>> backtrace(Objective obj) const;
  void pop_to(std::size_t baseline);

  const Netlist* nl_;
  const TestContext* ctx_;
  PodemOptions opt_;

  std::vector<std::uint8_t> s1_;       ///< 0/1/kBitX per test variable
  std::vector<FlopId> los_succ_;       ///< per variable: flop fed at launch
  std::vector<V3> f1_, g2_, x2_;
  std::vector<std::uint32_t> obs_weight_;   ///< active flop D loads per net
  std::vector<std::uint8_t> has_effect_;    ///< frame-2 fault effect per net
  std::vector<std::uint8_t> x2_touched_;
  std::vector<NetId> x2_touched_list_;
  std::int64_t effect_obs_ = 0;

  std::vector<GateId> dfrontier_;
  std::vector<std::uint8_t> in_dfrontier_;

  // Bucketed worklist ordered by (frame, level).
  std::vector<std::vector<GateId>> buckets_;
  std::vector<std::uint8_t> queued_;  ///< per frame*num_gates+gate
  std::uint32_t min_key_ = 0;
  std::uint32_t keys_per_frame_ = 0;

  TdfFault fault_{};
  bool fault_installed_ = false;
  V3 stuck_ = V3::x();

  std::vector<Decision> stack_;
  std::uint64_t implications_ = 0;
  std::uint64_t backtracks_ = 0;
  mutable std::size_t backtrace_salt_ = 0;  ///< path diversification counter
};

}  // namespace scap
