#include "atpg/podem.h"

#include <algorithm>
#include <array>
#include <cassert>

#include "obs/metrics.h"

namespace scap {

Podem::Podem(const Netlist& nl, const TestContext& ctx, PodemOptions opt)
    : nl_(&nl), ctx_(&ctx), opt_(opt) {
  s1_.assign(ctx.num_vars(), kBitX);
  if (ctx.los()) {
    // Per variable: the flop it feeds at the launch shift (linear chains
    // give each variable at most one successor).
    los_succ_.assign(ctx.num_vars(), kNullId);
    for (FlopId f = 0; f < nl.num_flops(); ++f) {
      los_succ_[ctx.los_pred[f]] = f;
    }
  }
  f1_.assign(nl.num_nets(), V3::x());
  g2_.assign(nl.num_nets(), V3::x());
  x2_.assign(nl.num_nets(), V3::x());
  has_effect_.assign(nl.num_nets(), 0);
  x2_touched_.assign(nl.num_nets(), 0);
  in_dfrontier_.assign(nl.num_gates(), 0);
  keys_per_frame_ = nl.max_level() + 1;
  buckets_.resize(2 * static_cast<std::size_t>(keys_per_frame_));
  queued_.assign(2 * nl.num_gates(), 0);
  min_key_ = static_cast<std::uint32_t>(buckets_.size());

  obs_weight_.assign(nl.num_nets(), 0);
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    if (ctx.active[f]) ++obs_weight_[nl.flop(f).d];
  }
  rebuild_planes();
}

void Podem::rebuild_planes() {
  const Netlist& nl = *nl_;
  for (std::size_t i = 0; i < nl.primary_inputs().size(); ++i) {
    const NetId n = nl.primary_inputs()[i];
    f1_[n] = g2_[n] = x2_[n] = V3::of(ctx_->pi_values[i]);
  }
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    const NetId q = nl.flop(f).q;
    f1_[q] = s1_[f] == kBitX ? V3::x() : V3::of(s1_[f]);
  }
  std::array<V3, 4> ins{};
  for (GateId g : nl.topo_order()) {
    const auto in_nets = nl.gate_inputs(g);
    for (std::size_t i = 0; i < in_nets.size(); ++i) ins[i] = f1_[in_nets[i]];
    f1_[nl.gate(g).out] =
        eval_v3(nl.gate(g).type, std::span<const V3>(ins.data(), in_nets.size()));
  }
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    const NetId q = nl.flop(f).q;
    if (ctx_->los()) {
      const std::uint8_t src = s1_[ctx_->los_pred[f]];
      g2_[q] = src == kBitX ? V3::x() : V3::of(src);
    } else {
      g2_[q] = ctx_->active[f] ? f1_[nl.flop(f).d]
                               : (s1_[f] == kBitX ? V3::x() : V3::of(s1_[f]));
    }
    x2_[q] = g2_[q];
  }
  for (GateId g : nl.topo_order()) {
    const auto in_nets = nl.gate_inputs(g);
    for (std::size_t i = 0; i < in_nets.size(); ++i) ins[i] = g2_[in_nets[i]];
    const NetId out = nl.gate(g).out;
    g2_[out] =
        eval_v3(nl.gate(g).type, std::span<const V3>(ins.data(), in_nets.size()));
    x2_[out] = g2_[out];
  }
  std::fill(has_effect_.begin(), has_effect_.end(), 0);
  effect_obs_ = 0;
  x2_touched_list_.clear();
  std::fill(x2_touched_.begin(), x2_touched_.end(), 0);
  dfrontier_.clear();
  std::fill(in_dfrontier_.begin(), in_dfrontier_.end(), 0);
  fault_installed_ = false;
}

void Podem::enqueue(Frame fr, GateId g) {
  const std::size_t qi = static_cast<std::size_t>(fr) * nl_->num_gates() + g;
  if (queued_[qi]) return;
  queued_[qi] = 1;
  const std::uint32_t key =
      static_cast<std::uint32_t>(fr) * keys_per_frame_ + nl_->gate(g).level;
  buckets_[key].push_back(g);
  min_key_ = std::min(min_key_, key);
}

void Podem::update_f1(NetId n, V3 v) {
  if (f1_[n] == v) return;
  f1_[n] = v;
  for (GateId g : nl_->fanout_gates(n)) enqueue(kF1, g);
  if (ctx_->los()) return;  // LOS: the launch shift, not D capture, sets S2
  for (FlopId f : nl_->fanout_flops(n)) {
    if (ctx_->active[f]) update_f2(nl_->flop(f).q, v, v);
  }
}

void Podem::update_f2(NetId n, V3 good, V3 faulty) {
  if (fault_installed_ && fault_.site == FaultSite::kStem && n == fault_.net) {
    faulty = stuck_;
  }
  if (g2_[n] == good && x2_[n] == faulty) return;
  g2_[n] = good;
  x2_[n] = faulty;
  if (faulty != good && !x2_touched_[n]) {
    x2_touched_[n] = 1;
    x2_touched_list_.push_back(n);
  }
  const bool eff = !good.is_x() && !faulty.is_x() && good != faulty;
  if (eff != (has_effect_[n] != 0)) {
    has_effect_[n] = eff ? 1 : 0;
    effect_obs_ += (eff ? 1 : -1) * static_cast<std::int64_t>(obs_weight_[n]);
    if (eff) {
      for (GateId g : nl_->fanout_gates(n)) {
        if (!in_dfrontier_[g]) {
          in_dfrontier_[g] = 1;
          dfrontier_.push_back(g);
        }
      }
    }
  }
  for (GateId g : nl_->fanout_gates(n)) enqueue(kF2, g);
}

V3 Podem::faulty_input(GateId g, std::uint8_t pin, NetId net) const {
  if (fault_installed_ && fault_.site == FaultSite::kGateBranch &&
      fault_.load == g && fault_.pin == pin) {
    return stuck_;
  }
  return x2_[net];
}

void Podem::eval_gate(Frame fr, GateId g) {
  const auto in_nets = nl_->gate_inputs(g);
  std::array<V3, 4> ins{};
  if (fr == kF1) {
    for (std::size_t i = 0; i < in_nets.size(); ++i) ins[i] = f1_[in_nets[i]];
    update_f1(nl_->gate(g).out,
              eval_v3(nl_->gate(g).type,
                      std::span<const V3>(ins.data(), in_nets.size())));
    return;
  }
  std::array<V3, 4> fins{};
  for (std::size_t i = 0; i < in_nets.size(); ++i) {
    ins[i] = g2_[in_nets[i]];
    fins[i] = faulty_input(g, static_cast<std::uint8_t>(i), in_nets[i]);
  }
  const CellType t = nl_->gate(g).type;
  const V3 good =
      eval_v3(t, std::span<const V3>(ins.data(), in_nets.size()));
  const V3 faulty =
      eval_v3(t, std::span<const V3>(fins.data(), in_nets.size()));
  update_f2(nl_->gate(g).out, good, faulty);
}

void Podem::propagate() {
  for (std::uint32_t k = min_key_; k < buckets_.size(); ++k) {
    auto& bucket = buckets_[k];
    // Evaluation can only enqueue strictly later keys, so draining in key
    // order evaluates every gate at most once per propagate() call.
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const GateId g = bucket[i];
      const Frame fr = k < keys_per_frame_ ? kF1 : kF2;
      queued_[static_cast<std::size_t>(fr) * nl_->num_gates() + g] = 0;
      eval_gate(fr, g);
    }
    bucket.clear();
  }
  min_key_ = static_cast<std::uint32_t>(buckets_.size());
}

void Podem::set_s1(FlopId var, int v) {
  s1_[var] = static_cast<std::uint8_t>(v);
  const V3 val = v == kBitX ? V3::x() : V3::of(v);
  if (var < nl_->num_flops()) {
    const NetId q = nl_->flop(var).q;
    update_f1(q, val);
    if (!ctx_->los() && !ctx_->active[var]) update_f2(q, val, val);
  }
  if (ctx_->los()) {
    const FlopId succ = los_succ_[var];
    if (succ != kNullId) update_f2(nl_->flop(succ).q, val, val);
  }
  propagate();
  ++implications_;
}

void Podem::reset_fault_plane() {
  for (NetId n : x2_touched_list_) {
    x2_[n] = g2_[n];
    x2_touched_[n] = 0;
    if (has_effect_[n]) {
      has_effect_[n] = 0;
      effect_obs_ -= obs_weight_[n];
    }
  }
  x2_touched_list_.clear();
  for (GateId g : dfrontier_) in_dfrontier_[g] = 0;
  dfrontier_.clear();
  fault_installed_ = false;
}

void Podem::install_fault(const TdfFault& f) {
  reset_fault_plane();
  fault_ = f;
  stuck_ = V3::of(f.v1());
  fault_installed_ = true;
  switch (f.site) {
    case FaultSite::kStem:
      update_f2(f.net, g2_[f.net], stuck_);
      break;
    case FaultSite::kGateBranch:
      enqueue(kF2, f.load);
      if (!in_dfrontier_[f.load]) {
        in_dfrontier_[f.load] = 1;
        dfrontier_.push_back(f.load);
      }
      break;
    case FaultSite::kFlopBranch:
      break;  // captured directly; no propagation machinery needed
  }
  propagate();
}

bool Podem::detected() const {
  const V3 a1 = f1_[fault_.net];
  if (a1.is_x() || a1.value() != fault_.v1()) return false;
  if (fault_.site == FaultSite::kFlopBranch) {
    const V3 a2 = g2_[fault_.net];
    return !a2.is_x() && a2.value() == fault_.v2() &&
           ctx_->active[fault_.load] != 0;
  }
  return effect_obs_ > 0;
}

std::optional<Podem::Objective> Podem::objective() {
  const NetId site = fault_.net;
  const V3 a1 = f1_[site];
  if (!a1.is_x() && a1.value() != fault_.v1()) return std::nullopt;
  const V3 a2 = g2_[site];
  if (!a2.is_x() && a2.value() != fault_.v2()) return std::nullopt;
  if (a1.is_x()) return Objective{kF1, site, fault_.v1()};
  if (a2.is_x()) return Objective{kF2, site, fault_.v2()};
  if (fault_.site == FaultSite::kFlopBranch) {
    // Activation complete; if not already detected the load flop is held.
    return std::nullopt;
  }

  // Propagation phase: scan (and compact) the D-frontier, preferring gates
  // closest to the observation points.
  std::optional<Objective> best;
  std::uint32_t best_level = 0;
  std::size_t w = 0;
  // Pin-level fault effect: net-level difference, or the faulty pin of a
  // branch fault itself once the net carries the fault-free value.
  auto pin_has_effect = [&](GateId g, std::uint8_t pin, NetId in) {
    if (has_effect_[in]) return true;
    if (fault_installed_ && fault_.site == FaultSite::kGateBranch &&
        fault_.load == g && fault_.pin == pin) {
      const V3 gv = g2_[in];
      return !gv.is_x() && gv != stuck_;
    }
    return false;
  };
  for (std::size_t i = 0; i < dfrontier_.size(); ++i) {
    const GateId g = dfrontier_[i];
    const auto ins = nl_->gate_inputs(g);
    bool any_effect = false;
    for (std::size_t pin = 0; pin < ins.size(); ++pin) {
      if (pin_has_effect(g, static_cast<std::uint8_t>(pin), ins[pin])) {
        any_effect = true;
        break;
      }
    }
    if (fault_installed_ && fault_.site == FaultSite::kGateBranch &&
        fault_.load == g) {
      any_effect = true;  // keep the injection gate resident in the frontier
    }
    if (!any_effect) {
      in_dfrontier_[g] = 0;  // stale; drop from the list
      continue;
    }
    dfrontier_[w++] = g;
    const NetId out = nl_->gate(g).out;
    const bool undetermined = g2_[out].is_x() || x2_[out].is_x();
    if (!undetermined) continue;  // already propagated or blocked here
    if (best && nl_->gate(g).level <= best_level) continue;

    const CellType t = nl_->gate(g).type;
    std::optional<Objective> obj;
    switch (gate_class(t)) {
      case GateClass::kAndLike:
      case GateClass::kOrLike:
      case GateClass::kXorLike: {
        const int v = gate_class(t) == GateClass::kAndLike ? 1
                      : gate_class(t) == GateClass::kOrLike ? 0
                                                            : 0;
        for (NetId in : ins) {
          if (g2_[in].is_x()) {
            obj = Objective{kF2, in, v};
            break;
          }
        }
        break;
      }
      case GateClass::kMux: {
        const NetId s = ins[0], a = ins[1], b = ins[2];
        const bool eff_a = pin_has_effect(g, 1, a);
        const bool eff_b = pin_has_effect(g, 2, b);
        if (eff_a && g2_[s].is_x()) {
          obj = Objective{kF2, s, 0};
        } else if (eff_b && g2_[s].is_x()) {
          obj = Objective{kF2, s, 1};
        } else if (pin_has_effect(g, 0, s)) {
          // Effect on the select: data inputs must differ.
          if (g2_[a].is_x()) {
            obj = Objective{kF2, a, g2_[b].is_x() ? 0 : 1 - g2_[b].value()};
          } else if (g2_[b].is_x()) {
            obj = Objective{kF2, b, 1 - g2_[a].value()};
          }
        }
        break;
      }
      case GateClass::kBufLike:
      case GateClass::kTie:
        break;  // nothing to justify; output follows automatically
    }
    if (obj) {
      best = obj;
      best_level = nl_->gate(g).level;
    }
  }
  dfrontier_.resize(w);
  return best;
}

std::optional<std::pair<FlopId, int>> Podem::backtrace(Objective obj) const {
  Frame frame = obj.frame;
  NetId net = obj.net;
  int v = obj.value;
  // Walk X-valued nets toward a controllable scan bit. Bounded by twice the
  // netlist depth (frame 2 crosses into frame 1 through active flops).
  for (;;) {
    const Net& nr = nl_->net(net);
    if (nr.driver_kind == DriverKind::kInput) return std::nullopt;
    if (nr.driver_kind == DriverKind::kFlop) {
      const FlopId f = nr.driver;
      if (frame == kF2) {
        if (ctx_->los()) {
          const std::uint32_t var = ctx_->los_pred[f];
          if (s1_[var] == kBitX) return std::make_pair(var, v);
          return std::nullopt;
        }
        if (ctx_->active[f]) {
          frame = kF1;
          net = nl_->flop(f).d;
          continue;
        }
      }
      if (s1_[f] == kBitX) return std::make_pair(f, v);
      return std::nullopt;  // defensively: assigned bit cannot be re-decided
    }
    const GateId g = nr.driver;
    const CellType t = nl_->gate(g).type;
    const auto ins = nl_->gate_inputs(g);
    auto known = [&](NetId m) {
      return frame == kF1 ? !f1_[m].is_x() : !g2_[m].is_x();
    };
    auto value_of = [&](NetId m) {
      return frame == kF1 ? f1_[m].value() : g2_[m].value();
    };
    const int vf = v ^ (is_inverting(t) ? 1 : 0);
    switch (gate_class(t)) {
      case GateClass::kTie:
        return std::nullopt;
      case GateClass::kBufLike:
        net = ins[0];
        v = vf;
        continue;
      case GateClass::kAndLike:
      case GateClass::kOrLike: {
        // Rotate which X input is followed so successive backtracks explore
        // different justification paths instead of re-treading the first one.
        NetId pick = kNullId;
        const std::size_t n = ins.size();
        for (std::size_t k = 0; k < n; ++k) {
          const NetId in = ins[(k + backtrace_salt_) % n];
          if (!known(in)) {
            pick = in;
            break;
          }
        }
        if (pick == kNullId) return std::nullopt;
        net = pick;
        v = vf;
        continue;
      }
      case GateClass::kXorLike: {
        const NetId a = ins[0], b = ins[1];
        if (!known(a)) {
          net = a;
          v = known(b) ? (vf ^ value_of(b)) : vf;
        } else if (!known(b)) {
          net = b;
          v = vf ^ value_of(a);
        } else {
          return std::nullopt;
        }
        continue;
      }
      case GateClass::kMux: {
        const NetId s = ins[0], a = ins[1], b = ins[2];
        if (known(s)) {
          net = value_of(s) ? b : a;
          // v unchanged (mux passes data through)
          continue;
        }
        if (known(a) || known(b)) {
          if (known(a) && value_of(a) == v) {
            net = s;
            v = 0;
          } else if (known(b) && value_of(b) == v) {
            net = s;
            v = 1;
          } else if (!known(a)) {
            net = a;  // aim the A path at the target value
          } else {
            net = b;
          }
          continue;
        }
        net = a;
        continue;
      }
    }
  }
}

void Podem::pop_to(std::size_t baseline) {
  while (stack_.size() > baseline) {
    set_s1(stack_.back().flop, kBitX);
    stack_.pop_back();
  }
}

TestCube Podem::cube() const {
  TestCube c;
  c.s1 = s1_;
  return c;
}

void Podem::clear_assignments() {
  pop_to(0);
  // Any non-decision residue (defensive): rebuild from scratch if some bit
  // is still assigned.
  for (auto b : s1_) {
    if (b != kBitX) {
      std::fill(s1_.begin(), s1_.end(), kBitX);
      rebuild_planes();
      break;
    }
  }
}

PodemStatus Podem::run(std::size_t baseline, TestCube& out) {
  std::uint32_t backtracks = 0;
  for (;;) {
    if (detected()) {
      out = cube();
      return PodemStatus::kDetected;
    }
    std::optional<Objective> obj = objective();
    std::optional<std::pair<FlopId, int>> dec;
    if (obj) dec = backtrace(*obj);
    if (dec) {
      stack_.push_back(Decision{dec->first,
                                static_cast<std::uint8_t>(dec->second), false});
      set_s1(dec->first, dec->second);
      continue;
    }
    // Backtrack: flip the most recent unflipped decision.
    ++backtrace_salt_;
    bool flipped = false;
    while (stack_.size() > baseline) {
      Decision& d = stack_.back();
      if (!d.flipped) {
        d.flipped = true;
        d.value ^= 1;
        set_s1(d.flop, d.value);
        flipped = true;
        break;
      }
      set_s1(d.flop, kBitX);
      stack_.pop_back();
    }
    if (!flipped) {
      return baseline == 0 ? PodemStatus::kUntestable : PodemStatus::kAborted;
    }
    ++backtracks_;
    if (++backtracks > opt_.backtrack_limit) {
      pop_to(baseline);
      return PodemStatus::kAborted;
    }
  }
}

bool Podem::probe(const TdfFault& fault, std::span<const std::uint8_t> s1) {
  pop_to(0);
  install_fault(fault);
  for (FlopId f = 0; f < s1.size(); ++f) {
    stack_.push_back(Decision{f, s1[f], true});
    set_s1(f, s1[f]);
  }
  const bool hit = detected();
  pop_to(0);
  reset_fault_plane();
  return hit;
}

PodemStatus Podem::generate(const TdfFault& fault, TestCube& out) {
  const std::uint64_t impl0 = implications_, bt0 = backtracks_;
  pop_to(0);
  install_fault(fault);
  const PodemStatus st = run(0, out);
  obs::count("atpg.podem_generates");
  obs::count("atpg.implications", implications_ - impl0);
  obs::count("atpg.backtracks", backtracks_ - bt0);
  return st;
}

PodemStatus Podem::extend(const TdfFault& fault, TestCube& out) {
  const std::uint64_t impl0 = implications_, bt0 = backtracks_;
  const std::size_t baseline = stack_.size();
  install_fault(fault);
  const PodemStatus st = run(baseline, out);
  if (st != PodemStatus::kDetected) pop_to(baseline);
  obs::count("atpg.podem_extends");
  obs::count("atpg.implications", implications_ - impl0);
  obs::count("atpg.backtracks", backtracks_ - bt0);
  return st;
}

}  // namespace scap
