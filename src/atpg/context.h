// Shared test-session context: which clock domain is pulsed during
// launch/capture, the constant primary-input values the low-cost tester
// applies, and the launch scheme.
//
// Launch-off-capture (broadside): the launch pulse captures the functional
// response, S2 = F(S1); only the tested domain's flops toggle at launch.
// Launch-off-shift (skewed-load): the last shift pulse launches, so
// S2 = shift(S1) with one fresh scan-in bit per chain; every scan flop
// toggles at launch (shift moves all chains), and S2 is fully controllable
// -- easier ATPG, but notoriously power-hungry, which the LOS-vs-LOC bench
// quantifies with the SCAP model.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace scap {

enum class LaunchScheme : std::uint8_t { kLoc, kLos, kEnhanced };

struct TestContext {
  DomainId domain = 0;
  LaunchScheme scheme = LaunchScheme::kLoc;
  std::vector<std::uint8_t> active;     ///< per flop: 1 = captures at test
  std::vector<std::uint8_t> pi_values;  ///< per PI: constant 0/1

  /// Explicit-S2 wiring: per flop, the *variable* supplying its launch
  /// value. Variables 0..num_flops-1 are the S1 scan bits; the tail holds
  /// extra launch variables: one scan-in bit per chain for LOS, one held V2
  /// bit per flop for enhanced scan. Empty for LOC (S2 is functional).
  std::vector<std::uint32_t> los_pred;
  std::size_t num_scan_in = 0;

  std::size_t num_flops() const { return active.size(); }
  /// Controllable test variables (scan state, plus launch variables).
  std::size_t num_vars() const { return active.size() + num_scan_in; }
  /// True when S2 comes from test variables (LOS shift / enhanced hold
  /// cells) instead of the functional response.
  bool explicit_s2() const { return scheme != LaunchScheme::kLoc; }
  /// Deprecated spelling of explicit_s2() kept for call sites.
  bool los() const { return explicit_s2(); }

  static TestContext for_domain(const Netlist& nl, DomainId domain,
                                std::uint8_t pi_value = 0) {
    TestContext ctx;
    ctx.domain = domain;
    ctx.active.resize(nl.num_flops());
    for (FlopId f = 0; f < nl.num_flops(); ++f) {
      ctx.active[f] = nl.flop(f).domain == domain ? 1 : 0;
    }
    ctx.pi_values.assign(nl.primary_inputs().size(), pi_value);
    return ctx;
  }

  /// LOS context: `chains` gives shift order per chain (scan-in first).
  static TestContext for_domain_los(
      const Netlist& nl, DomainId domain,
      const std::vector<std::vector<FlopId>>& chains,
      std::uint8_t pi_value = 0) {
    TestContext ctx = for_domain(nl, domain, pi_value);
    ctx.scheme = LaunchScheme::kLos;
    ctx.num_scan_in = chains.size();
    ctx.los_pred.assign(nl.num_flops(), 0);
    for (std::size_t c = 0; c < chains.size(); ++c) {
      std::uint32_t prev =
          static_cast<std::uint32_t>(nl.num_flops() + c);  // scan-in var
      for (FlopId f : chains[c]) {
        ctx.los_pred[f] = prev;
        prev = f;
      }
    }
    return ctx;
  }

  /// Enhanced scan: hold-scan cells store an independent second vector, so
  /// every flop's launch value is its own free variable.
  static TestContext for_domain_enhanced(const Netlist& nl, DomainId domain,
                                         std::uint8_t pi_value = 0) {
    TestContext ctx = for_domain(nl, domain, pi_value);
    ctx.scheme = LaunchScheme::kEnhanced;
    ctx.num_scan_in = nl.num_flops();
    ctx.los_pred.resize(nl.num_flops());
    for (FlopId f = 0; f < nl.num_flops(); ++f) {
      ctx.los_pred[f] = static_cast<std::uint32_t>(nl.num_flops() + f);
    }
    return ctx;
  }

  std::size_t active_count() const {
    std::size_t n = 0;
    for (auto a : active) n += a;
    return n;
  }
};

}  // namespace scap
