// Bit-parallel transition-fault simulation with fault dropping.
//
// Patterns are packed 64 to a word (bit i = pattern i). The fault-free
// two-frame response is computed once per batch; each remaining fault is then
// propagated through its frame-2 fanout cone only (single-fault, pattern-
// parallel), comparing faulty against good values and stopping as soon as the
// perturbation dies out. Detection requires the launch condition (frame-1
// value v1, frame-2 fault-free value v2 at the site) and a captured
// difference at an active-domain scan flop.
//
// This engine serves two masters: fault dropping inside the ATPG loop, and
// standalone pattern grading (fault coverage of a given pattern set).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "atpg/context.h"
#include "atpg/fault.h"
#include "atpg/pattern.h"
#include "netlist/netlist.h"
#include "sim/logic_sim.h"

namespace scap {

namespace obs {
class Counter;
}

class FaultSimulator {
 public:
  FaultSimulator(const Netlist& nl, const TestContext& ctx);

  /// Load a batch of up to 64 fully specified patterns and compute the
  /// fault-free frames.
  void load_batch(std::span<const Pattern> batch);

  /// Detection mask for one fault over the loaded batch (bit i set = pattern
  /// i detects it). Call load_batch first.
  std::uint64_t detect_mask(const TdfFault& fault);

  /// Convenience: simulate the whole pattern set against the fault list with
  /// dropping. Returns, per fault, the index of the first detecting pattern
  /// (or SIZE_MAX if undetected); optionally accumulates per-pattern counts
  /// of first-detections (the coverage-curve increments).
  ///
  /// Large runs shard the fault list across the rt thread pool (each shard
  /// owns a private simulator and walks the batches with local fault
  /// dropping); per-fault results are independent of the sharding, so the
  /// output is bit-identical at any SCAP_THREADS.
  static constexpr std::size_t kUndetected = static_cast<std::size_t>(-1);
  std::vector<std::size_t> grade(std::span<const Pattern> patterns,
                                 std::span<const TdfFault> faults,
                                 std::vector<std::size_t>* first_detects_per_pattern = nullptr);

  std::size_t batch_size() const { return batch_size_; }

 private:
  /// Serial grading of one fault shard: writes the first-detect index of
  /// faults[i] into first_out[i]. Early-exits once every fault in the shard
  /// has been detected (local drop list).
  void grade_shard(std::span<const Pattern> patterns,
                   std::span<const TdfFault> faults,
                   std::span<std::size_t> first_out);

  const Netlist* nl_;
  const TestContext* ctx_;
  WordSim sim_;

  std::size_t batch_size_ = 0;
  std::vector<std::uint64_t> s1_, s2_, pi_;
  std::vector<std::uint64_t> f1_, g2_;  ///< fault-free net words per frame

  // Scratch for cone propagation (epoch-stamped faulty values).
  std::vector<std::uint64_t> faulty_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> obs_weight_;  ///< active flop D loads per net
  // Level-bucketed worklist.
  std::vector<std::vector<GateId>> buckets_;
  std::vector<std::uint8_t> queued_;

  // Cached instrumentation counters (registry lookups are too slow for the
  // per-fault hot path; registry entries are never invalidated).
  obs::Counter* batches_ctr_ = nullptr;
  obs::Counter* masks_ctr_ = nullptr;
  obs::Counter* events_ctr_ = nullptr;
};

}  // namespace scap
