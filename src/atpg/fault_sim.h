// Bit-parallel transition-fault simulation with fault dropping.
//
// Patterns are packed 64*W to a block (W machine words per net, bit i of
// word w = pattern w*64+i; W is the batch width, 1/2/4). Evaluation runs on
// the struct-of-arrays LevelizedView (netlist/levelized_view.h) through
// BatchSim: one sweep over the flat (level, type)-sorted gate table per
// frame, with the cell dispatch inlined. The fault-free two-frame response
// of every block is computed exactly once per grade() call; each remaining
// fault is then propagated through its frame-2 fanout cone only
// (single-fault, 64 patterns per walk, block words in pattern order with
// early exit at the first detecting word), comparing faulty against good
// values and stopping as soon as the perturbation dies out. Detection requires the
// launch condition (frame-1 value v1, frame-2 fault-free value v2 at the
// site) and a captured difference at an active-domain scan flop.
//
// grade() is batch-major: the good blocks are computed first (in parallel,
// element-indexed), then fault shards walk them read-only with thread-
// private cone scratch. A fault's first-detect index is a pure function of
// the pattern order -- blocks in order, words in order, bits in pattern
// order -- so results are bit-identical at any SCAP_THREADS *and* at any
// batch width W (rt_determinism_test + batch_sim_test enforce both).
//
// This engine serves two masters: fault dropping inside the ATPG loop
// (load_batch/detect_mask, one 64-pattern batch at a time), and standalone
// pattern grading (fault coverage of a given pattern set).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "atpg/context.h"
#include "atpg/fault.h"
#include "atpg/pattern.h"
#include "netlist/levelized_view.h"
#include "netlist/netlist.h"
#include "sim/batch_sim.h"

namespace scap {

namespace obs {
class Counter;
}

class FaultSimulator {
 public:
  /// Patterns per grade block = 64 * batch width. 4 words = 256 lanes per
  /// sweep, the widest compiled kernel (AVX2-sized).
  static constexpr std::size_t kDefaultBatchWords = 4;

  FaultSimulator(const Netlist& nl, const TestContext& ctx);

  /// Share a prebuilt levelized view (e.g. the serve design cache) instead
  /// of constructing one per simulator. `words` = 0 picks
  /// kDefaultBatchWords.
  FaultSimulator(const Netlist& nl, const TestContext& ctx,
                 std::shared_ptr<const LevelizedView> view,
                 std::size_t words = 0);

  /// Batch width used by grade(), in 64-pattern machine words (1, 2 or 4;
  /// 0 resets to the default). The legacy load_batch/detect_mask path is
  /// always single-word. Throws std::invalid_argument on other values.
  void set_batch_words(std::size_t words);
  std::size_t batch_words() const { return words_; }

  std::shared_ptr<const LevelizedView> shared_view() const { return view_; }

  /// Load a batch of up to 64 fully specified patterns and compute the
  /// fault-free frames.
  void load_batch(std::span<const Pattern> batch);

  /// Detection mask for one fault over the loaded batch (bit i set = pattern
  /// i detects it). Call load_batch first.
  std::uint64_t detect_mask(const TdfFault& fault);

  /// Convenience: simulate the whole pattern set against the fault list with
  /// dropping. Returns, per fault, the index of the first detecting pattern
  /// (or SIZE_MAX if undetected); optionally accumulates per-pattern counts
  /// of first-detections (the coverage-curve increments).
  ///
  /// Large runs shard the fault list across the rt thread pool; shards share
  /// the precomputed good blocks read-only and own only cone scratch, so the
  /// per-shard setup cost that used to scale with the thread count is gone.
  /// Per-fault results are independent of the sharding and of the batch
  /// width, so the output is bit-identical at any SCAP_THREADS and any W.
  static constexpr std::size_t kUndetected = static_cast<std::size_t>(-1);
  std::vector<std::size_t> grade(std::span<const Pattern> patterns,
                                 std::span<const TdfFault> faults,
                                 std::vector<std::size_t>* first_detects_per_pattern = nullptr);

  std::size_t batch_size() const { return legacy_.batch_size; }

 private:
  /// Fault-free two-frame response of one pattern block, in compact net ids.
  struct GoodBlock {
    std::size_t batch_size = 0;            ///< patterns in this block
    std::uint64_t lane_mask[kMaxBatchWords] = {};  ///< valid lanes per word
    std::vector<std::uint64_t> f1, g2;     ///< num_nets()*W words each
  };

  /// Reusable buffers for good-block computation (per parallel chunk).
  struct GoodScratch {
    std::vector<const std::uint8_t*> rows;
    std::vector<std::uint64_t> vars, s2;
    std::vector<std::uint64_t> pi;  ///< pi_words_ repeated per lane word
  };

  /// Thread-private cone-propagation scratch (epoch-stamped faulty values,
  /// level-bucketed worklist over schedule indices). The cone always walks
  /// one 64-pattern word at a time, so `faulty` is one word per net.
  struct ConeScratch {
    std::vector<std::uint64_t> faulty;  ///< one word per compact net
    std::vector<std::uint32_t> stamp;   ///< per compact net
    std::uint32_t epoch = 0;
    std::vector<std::vector<std::uint32_t>> buckets;  ///< by level
    std::vector<std::uint8_t> queued;   ///< per schedule slot
    // Locally accumulated faultsim.detect_masks / faultsim.events deltas;
    // flushed to the shared counters once per shard (per call on the legacy
    // path) -- two atomic RMWs per cone walk measurably contend at t>1.
    std::uint64_t walks = 0, evals = 0;
    void ensure(const LevelizedView& v);
    void flush_counters(obs::Counter* masks, obs::Counter* events);
  };

  void init_counters_and_weights(const Netlist& nl, const TestContext& ctx);

  /// Pack block `block` of `patterns` (W = sim.words()) and simulate both
  /// fault-free frames into `out`.
  void compute_good_block(const BatchSim& sim,
                          std::span<const Pattern> patterns, std::size_t block,
                          GoodBlock& out, GoodScratch& gs) const;

  /// Detection words for one fault over one good block; writes `words` words
  /// into `out`. Words are walked in pattern order with early exit at the
  /// first detecting word (later words stay zero); grade() only consumes the
  /// earliest detect bit, and the walked word sequence is the same at any
  /// batch width, which keeps results and counters W-invariant.
  bool detect_block(std::size_t words, const TdfFault& fault,
                    const GoodBlock& blk, ConeScratch& cs,
                    std::uint64_t* out) const;

  /// Frame-2 cone walk of the stuck-at-v1 perturbation for one 64-pattern
  /// word (values at net*stride + w in the block). Returns the detect mask.
  std::uint64_t cone_word(const TdfFault& fault, const GoodBlock& blk,
                          std::size_t w, std::size_t stride,
                          std::uint64_t launch, ConeScratch& cs) const;

  const Netlist* nl_;
  const TestContext* ctx_;
  std::shared_ptr<const LevelizedView> view_;
  std::size_t words_ = kDefaultBatchWords;

  /// PI values broadcast to full words (constant across lanes), one word per
  /// PI; eval paths repeat them per lane as needed.
  std::vector<std::uint64_t> pi_words_;
  std::vector<std::uint32_t> obs_weight_;  ///< active flop D loads, compact ids
  /// Static observability: nets with a combinational path to an active flop
  /// D (reverse sweep over the schedule). A fault whose site is not in this
  /// set can never be detected, so its launch check and cone walks are
  /// skipped outright -- a pure structural filter, identical at any thread
  /// count and batch width.
  std::vector<std::uint8_t> obs_reach_;

  // Legacy single-batch state (load_batch/detect_mask, W = 1).
  GoodBlock legacy_;
  GoodScratch legacy_gs_;
  ConeScratch legacy_cs_;

  // Cached instrumentation counters (registry lookups are too slow for the
  // per-fault hot path; registry entries are never invalidated).
  obs::Counter* batches_ctr_ = nullptr;
  obs::Counter* masks_ctr_ = nullptr;
  obs::Counter* events_ctr_ = nullptr;
  obs::Counter* replays_ctr_ = nullptr;
};

}  // namespace scap
