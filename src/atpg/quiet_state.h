// Quiet-state computation for low-activity don't-care fill.
//
// Launch-off-capture launches transitions wherever S2 = F(S1) differs from
// S1, so a block stays quiet only if its scanned state is (close to) a fixed
// point of its next-state function. In the paper's SOC the all-zero state
// idles quietly, which is why plain fill-0 works there; a generic design has
// no such guarantee. compute_quiet_state() finds a near-fixed-point by
// iterating the next-state function from the all-zero state (simulating the
// design "running idle") and keeping the iterate with the fewest launch
// transitions. FillMode::kQuiet fills don't-care scan cells from this state.
#pragma once

#include <cstdint>
#include <vector>

#include "atpg/context.h"
#include "netlist/netlist.h"

namespace scap {

/// Per-flop quiet fill state, and the number of active-domain flops that
/// would still toggle at launch if the whole design were scanned to it.
struct QuietState {
  std::vector<std::uint8_t> s1;
  std::size_t residual_launches = 0;
};

QuietState compute_quiet_state(const Netlist& nl, const TestContext& ctx,
                               int max_iterations = 24);

}  // namespace scap
