#include "atpg/quiet_state.h"

#include "sim/logic_sim.h"

namespace scap {

QuietState compute_quiet_state(const Netlist& nl, const TestContext& ctx,
                               int max_iterations) {
  LogicSim sim(nl);
  std::vector<std::uint8_t> state(nl.num_flops(), 0);
  std::vector<std::uint8_t> nets;
  std::vector<std::uint8_t> next;

  QuietState best;
  best.s1 = state;
  best.residual_launches = static_cast<std::size_t>(-1);

  for (int it = 0; it < max_iterations; ++it) {
    sim.eval_frame(state, ctx.pi_values, nets);
    sim.next_state(nets, next);
    // Held flops keep their value across the launch pulse.
    std::size_t launches = 0;
    for (FlopId f = 0; f < nl.num_flops(); ++f) {
      if (!ctx.active[f]) {
        next[f] = state[f];
      } else if (next[f] != state[f]) {
        ++launches;
      }
    }
    if (launches < best.residual_launches) {
      best.s1 = state;
      best.residual_launches = launches;
      if (launches == 0) break;  // true fixed point
    }
    state = next;
  }

  // Phase 2: greedy bit descent. Random logic rarely settles onto a fixed
  // point by orbit iteration alone (attractor cycles), so refine the best
  // iterate by flipping individual scan bits whenever that reduces the
  // number of launch transitions.
  auto count_launches = [&](const std::vector<std::uint8_t>& s) {
    sim.eval_frame(s, ctx.pi_values, nets);
    sim.next_state(nets, next);
    std::size_t launches = 0;
    for (FlopId f = 0; f < nl.num_flops(); ++f) {
      if (ctx.active[f] && next[f] != s[f]) ++launches;
    }
    return launches;
  };
  state = best.s1;
  std::size_t cur = count_launches(state);
  for (int pass = 0; pass < 4 && cur > 0; ++pass) {
    bool improved = false;
    for (FlopId f = 0; f < nl.num_flops(); ++f) {
      state[f] ^= 1;
      const std::size_t trial = count_launches(state);
      if (trial < cur) {
        cur = trial;
        improved = true;
      } else {
        state[f] ^= 1;
      }
    }
    if (!improved) break;
  }
  if (cur < best.residual_launches) {
    best.s1 = state;
    best.residual_launches = cur;
  }
  return best;
}

}  // namespace scap
