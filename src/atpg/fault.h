// Transition delay fault (TDF) model.
//
// A TDF is a slow-to-rise or slow-to-fall defect at a circuit node. Under
// the standard gross-delay approximation used by commercial scan ATPG (and
// by the paper, which wraps such a tool), a launch-off-capture pattern
// detects a slow-to-rise fault at site s iff
//   - frame 1 (the scanned-in state) drives s to 0,
//   - frame 2 (after the launch pulse) drives s to 1, and
//   - a stuck-at-0 at s in frame 2 propagates to a captured scan flop.
// The dual holds for slow-to-fall faults.
//
// Fault sites cover every cell pin: stem faults on driver outputs (gate
// outputs and flop Q pins), branch faults on individual gate input pins, and
// branch faults on flop D pins. Structural equivalence collapsing removes
// single-fanout branch duplicates and folds faults through BUF/INV chains.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace scap {

enum class TdfType : std::uint8_t { kSlowToRise, kSlowToFall };

enum class FaultSite : std::uint8_t {
  kStem,        ///< driver output; effect fans out everywhere
  kGateBranch,  ///< one gate input pin
  kFlopBranch,  ///< one flop D pin (captured directly)
};

struct TdfFault {
  NetId net = kNullId;  ///< the net carrying the slow transition
  FaultSite site = FaultSite::kStem;
  std::uint32_t load = kNullId;  ///< GateId (kGateBranch) or FlopId (kFlopBranch)
  std::uint8_t pin = 0;          ///< input pin index for kGateBranch
  TdfType type = TdfType::kSlowToRise;

  /// Initial (frame-1) value the launch needs at the site; the frame-2
  /// stuck-at value of the gross-delay model is the same.
  int v1() const { return type == TdfType::kSlowToRise ? 0 : 1; }
  /// Final (frame-2 fault-free) value.
  int v2() const { return 1 - v1(); }

  friend bool operator==(const TdfFault&, const TdfFault&) = default;
};

/// Full (uncollapsed) TDF universe of the netlist.
std::vector<TdfFault> enumerate_faults(const Netlist& nl);

/// Structural equivalence collapsing:
///  - branch faults on single-fanout nets fold into the stem,
///  - BUF output stems fold into the input stem (same polarity),
///  - INV output stems fold into the input stem (opposite polarity).
std::vector<TdfFault> collapse_faults(const Netlist& nl,
                                      const std::vector<TdfFault>& faults);

/// Block of the fault's structural location (driver block for stems, load
/// block for branches).
BlockId fault_block(const Netlist& nl, const TdfFault& f);

/// "net[STR]" / "gate:pin[STF]"-style description for logs and tests.
std::string describe_fault(const Netlist& nl, const TdfFault& f);

}  // namespace scap
