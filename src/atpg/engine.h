// Coverage-driven transition-fault ATPG.
//
// The engine mirrors how the commercial tool the paper wraps behaves:
//  - greedy dynamic compaction packs as many faults as possible into each
//    pattern (so early patterns have few don't-care bits and X-density grows
//    toward the tail -- the effect Section 3.1 works around),
//  - don't-care bits are filled per the selected mode (random-fill boosts
//    fortuitous detection and, as the paper shows, switching activity),
//  - bit-parallel fault simulation with dropping confirms detections and
//    builds the cumulative coverage curve (Figure 4).
//
// A fault-status vector can be threaded through successive run() calls,
// which is how the paper's multi-step per-block-subset flow (Step1: B1-B4,
// Step2: B6, Step3: B5) is expressed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "atpg/context.h"
#include "atpg/fault.h"
#include "atpg/fault_sim.h"
#include "atpg/pattern.h"
#include "atpg/podem.h"
#include "netlist/netlist.h"
#include "util/rng.h"

namespace scap {

enum class FaultStatus : std::uint8_t {
  kUndetected,
  kDetected,
  kUntestable,
  kAborted,
};

struct AtpgOptions {
  FillMode fill = FillMode::kRandom;
  /// Per-block fill override (size = block count); empty = uniform `fill`.
  std::vector<FillMode> per_block_fill;
  /// Per-block targeting mask (1 = faults of this block are primary targets);
  /// empty = target everything. Untargeted faults still drop fortuitously.
  std::vector<std::uint8_t> target_blocks;
  std::uint32_t backtrack_limit = 64;
  /// Dynamic compaction: max secondary faults merged into one pattern and
  /// max candidates scanned while trying.
  std::uint32_t compaction_limit = 16;
  std::uint32_t compaction_scan = 48;
  /// N-detect: a fault stays a target until detected by this many distinct
  /// patterns (1 = classic single detection). Raises defect coverage at the
  /// cost of pattern count.
  std::uint32_t n_detect = 1;
  /// Per-block care-bit budget: stop packing more faults into a pattern once
  /// any block has more than this fraction of its flops at care values.
  /// This is the "option to limit the maximum number of faults targeted by a
  /// pattern in each block to keep the switching activity lower" that the
  /// paper wished its commercial tool had (Section 3.1); 1.0 disables it.
  double max_block_care_fraction = 1.0;
  std::uint64_t seed = 0x7e57ull;
  /// Scan-chain orders for fill-adjacent (optional).
  const std::vector<std::vector<FlopId>>* chains = nullptr;
};

struct AtpgStats {
  std::size_t total_faults = 0;
  std::size_t detected = 0;
  std::size_t untestable = 0;
  std::size_t aborted = 0;

  double fault_coverage() const {
    return total_faults ? static_cast<double>(detected) / total_faults : 0.0;
  }
  double test_coverage() const {
    const std::size_t testable = total_faults - untestable;
    return testable ? static_cast<double>(detected) / testable : 0.0;
  }
};

struct AtpgResult {
  PatternSet patterns;
  AtpgStats stats;
  /// Faults first-detected by each pattern (cumsum = the coverage curve).
  std::vector<std::size_t> new_detects_per_pattern;
  /// ATPG care bits per pattern, before fill (X-density diagnostics).
  std::vector<std::size_t> care_bits_per_pattern;
};

class AtpgEngine {
 public:
  AtpgEngine(const Netlist& nl, const TestContext& ctx)
      : nl_(&nl), ctx_(&ctx) {}

  /// Generate patterns for every targeted, still-undetected fault in
  /// `faults`. If `status` is non-null it seeds and receives per-fault
  /// results (multi-step flows); otherwise all faults start undetected.
  AtpgResult run(std::span<const TdfFault> faults, const AtpgOptions& opt,
                 std::vector<FaultStatus>* status = nullptr);

 private:
  const Netlist* nl_;
  const TestContext* ctx_;
};

}  // namespace scap
