// Scan test patterns and don't-care fill.
//
// A launch-off-capture pattern is fully described by the scanned-in state S1
// (primary inputs are held constant and primary outputs are not strobed, per
// the paper's low-cost tester constraints); the launch pulse derives S2
// functionally and the capture pulse samples the response.
//
// ATPG produces cubes (S1 with don't-care bits); fill turns a cube into a
// tester-ready pattern. The four modes mirror the TetraMAX options the paper
// evaluates -- random-fill (coverage-greedy, power-hungry), fill-0 / fill-1,
// and fill-adjacent -- plus the per-block fill the paper wishes for in
// Section 3.1 ("a more ideal scenario would be that the ATPG tool provides
// different fill options for don't-care bits in different blocks"), which
// this library implements natively.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.h"
#include "util/rng.h"

namespace scap {

inline constexpr std::uint8_t kBitX = 2;  ///< don't-care marker in cubes

struct TestCube {
  /// Per test variable: 0, 1, or kBitX. For LOC this is one bit per flop
  /// (the scanned state S1); for LOS it is followed by one launch scan-in
  /// bit per chain (see TestContext::num_vars()).
  std::vector<std::uint8_t> s1;

  std::size_t care_bits() const {
    std::size_t n = 0;
    for (auto b : s1) n += (b != kBitX);
    return n;
  }
  std::size_t x_bits() const { return s1.size() - care_bits(); }
};

struct Pattern {
  std::vector<std::uint8_t> s1;  ///< fully specified test variables
};

struct PatternSet {
  DomainId domain = 0;
  std::vector<Pattern> patterns;
  std::size_t size() const { return patterns.size(); }
};

enum class FillMode : std::uint8_t {
  kRandom,
  kFill0,
  kFill1,
  kAdjacent,
  kQuiet,  ///< fill from a precomputed low-launch-activity state
};

const char* fill_mode_name(FillMode m);

/// Fill a cube's don't-care bits. For kAdjacent, chains gives scan-chain
/// orders (each a shift-ordered flop list); X cells copy the value of the
/// nearest preceding care cell in their chain (falling back to the nearest
/// following one, then 0). If chains is empty, flop-id order is used as one
/// virtual chain.
Pattern apply_fill(const TestCube& cube, FillMode mode, Rng& rng,
                   std::span<const std::vector<FlopId>> chains = {},
                   std::span<const std::uint8_t> quiet_state = {});

/// Per-block fill: block_modes[b] selects the mode for flops of block b.
Pattern apply_fill_per_block(const Netlist& nl, const TestCube& cube,
                             std::span<const FillMode> block_modes, Rng& rng,
                             std::span<const std::vector<FlopId>> chains = {},
                             std::span<const std::uint8_t> quiet_state = {});

/// Fully random pattern set (bulk fill for SCAP screening workloads):
/// n patterns of num_vars bits, filled in parallel with one xoshiro jump
/// stream (Rng::stream) per fixed-size pattern block. The result is a pure
/// function of (n, num_vars, seed) -- identical at any SCAP_THREADS.
PatternSet random_pattern_set(std::size_t n, std::size_t num_vars,
                              std::uint64_t seed);

}  // namespace scap
