#include "atpg/fault_sim.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "netlist/cell_type.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rt/parallel.h"

// Cone-walker instantiation of the shared cell kernels: the same W-lane
// bodies the full-sweep BatchSim uses, driven here by a gathered operand
// buffer instead of the dense value table.
#define SCAP_BATCH_KERNEL_NS cone
#include "sim/batch_kernels.inl"
#undef SCAP_BATCH_KERNEL_NS

namespace scap {

FaultSimulator::FaultSimulator(const Netlist& nl, const TestContext& ctx)
    : FaultSimulator(nl, ctx, LevelizedView::build(nl)) {}

FaultSimulator::FaultSimulator(const Netlist& nl, const TestContext& ctx,
                               std::shared_ptr<const LevelizedView> view,
                               std::size_t words)
    : nl_(&nl), ctx_(&ctx), view_(std::move(view)) {
  if (!view_) view_ = LevelizedView::build(nl);
  set_batch_words(words);
  init_counters_and_weights(nl, ctx);
  legacy_cs_.ensure(*view_);
}

void FaultSimulator::set_batch_words(std::size_t words) {
  if (words == 0) words = kDefaultBatchWords;
  if (!valid_batch_words(words)) {
    throw std::invalid_argument("FaultSimulator: batch words must be 1, 2 or 4");
  }
  words_ = words;
}

void FaultSimulator::init_counters_and_weights(const Netlist& nl,
                                               const TestContext& ctx) {
  obs::Registry& reg = obs::Registry::global();
  batches_ctr_ = &reg.counter("faultsim.batches");
  masks_ctr_ = &reg.counter("faultsim.detect_masks");
  events_ctr_ = &reg.counter("faultsim.events");
  replays_ctr_ = &reg.counter("faultsim.shard_replays");
  pi_words_.assign(nl.primary_inputs().size(), 0);
  for (std::size_t i = 0; i < pi_words_.size(); ++i) {
    pi_words_[i] = ctx.pi_values[i] ? ~0ull : 0ull;
  }
  obs_weight_.assign(nl.num_nets(), 0);
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    if (ctx.active[f]) ++obs_weight_[view_->f_d()[f]];
  }

  // Static observability: reverse sweep marking every net with a
  // combinational path to an active flop D. The schedule is topological, so
  // one pass in reverse order reaches a fixpoint.
  const LevelizedView& v = *view_;
  obs_reach_.assign(nl.num_nets(), 0);
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    if (obs_weight_[n] != 0) obs_reach_[n] = 1;
  }
  const NetId* outs = v.gate_outs();
  const NetId* pool = v.gate_ins();
  const std::uint32_t* off = v.gate_in_offsets();
  for (std::uint32_t si = v.num_gates(); si-- > 0;) {
    if (!obs_reach_[outs[si]]) continue;
    const std::uint32_t e = off[si + 1];
    for (std::uint32_t j = off[si]; j < e; ++j) obs_reach_[pool[j]] = 1;
  }
}

void FaultSimulator::ConeScratch::ensure(const LevelizedView& v) {
  faulty.assign(v.num_nets(), 0);
  stamp.assign(v.num_nets(), 0);
  epoch = 0;
  buckets.assign(v.max_level() + 1, {});
  queued.assign(v.num_gates(), 0);
  walks = evals = 0;
}

void FaultSimulator::ConeScratch::flush_counters(obs::Counter* masks,
                                                 obs::Counter* events) {
  if (walks != 0) masks->add(walks);
  if (evals != 0) events->add(evals);
  walks = evals = 0;
}

void FaultSimulator::compute_good_block(const BatchSim& sim,
                                        std::span<const Pattern> patterns,
                                        std::size_t block, GoodBlock& out,
                                        GoodScratch& gs) const {
  const LevelizedView& v = *view_;
  const std::size_t W = sim.words();
  const std::size_t lanes = 64 * W;
  const std::size_t base = block * lanes;
  const std::size_t n = std::min(lanes, patterns.size() - base);
  out.batch_size = n;
  for (std::size_t w = 0; w < kMaxBatchWords; ++w) {
    const std::size_t rem = n > w * 64 ? n - w * 64 : 0;
    out.lane_mask[w] = rem >= 64 ? ~0ull : (rem ? (1ull << rem) - 1 : 0ull);
  }

  // Pack all test variables (scan bits, plus LOS/enhanced launch variables)
  // per lane: word transpose instead of bit-by-bit inserts.
  const std::size_t nv = ctx_->num_vars();
  gs.rows.clear();
  gs.rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    assert(patterns[base + i].s1.size() == nv);
    gs.rows.push_back(patterns[base + i].s1.data());
  }
  transpose_pack(gs.rows, nv, W, gs.vars);

  if (gs.pi.size() != pi_words_.size() * W) {
    gs.pi.resize(pi_words_.size() * W);
    for (std::size_t i = 0; i < pi_words_.size(); ++i) {
      for (std::size_t w = 0; w < W; ++w) gs.pi[i * W + w] = pi_words_[i];
    }
  }

  const std::size_t nf = v.num_flops();
  sim.eval_frame(std::span<const std::uint64_t>(gs.vars.data(), nf * W), gs.pi,
                 out.f1);

  // Launch: LOC captures the functional response on active flops (held flops
  // keep S1); LOS/enhanced scan take the launch value from its variable.
  gs.s2.resize(nf * W);
  const NetId* fd = v.f_d();
  const bool explicit_s2 = ctx_->los();
  for (FlopId f = 0; f < nf; ++f) {
    const std::size_t src =
        explicit_s2 ? ctx_->los_pred[f]
                    : (ctx_->active[f] ? static_cast<std::size_t>(fd[f])
                                       : static_cast<std::size_t>(f));
    const std::uint64_t* from =
        (explicit_s2 || !ctx_->active[f]) ? gs.vars.data() : out.f1.data();
    for (std::size_t w = 0; w < W; ++w) gs.s2[f * W + w] = from[src * W + w];
  }
  sim.eval_frame(gs.s2, gs.pi, out.g2);
}

void FaultSimulator::load_batch(std::span<const Pattern> batch) {
  SCAP_TRACE_SCOPE("faultsim.batch");
  assert(batch.size() <= 64);
  if (obs::metrics_enabled()) batches_ctr_->add(1);
  BatchSim sim(view_, 1);
  compute_good_block(sim, batch, 0, legacy_, legacy_gs_);
}

std::uint64_t FaultSimulator::detect_mask(const TdfFault& fault) {
  std::uint64_t out[1];
  detect_block(1, fault, legacy_, legacy_cs_, out);
  if (obs::metrics_enabled()) legacy_cs_.flush_counters(masks_ctr_, events_ctr_);
  return out[0];
}

bool FaultSimulator::detect_block(std::size_t words, const TdfFault& fault,
                                  const GoodBlock& blk, ConeScratch& cs,
                                  std::uint64_t* out) const {
  const LevelizedView& v = *view_;
  const NetId site = v.compact_net(fault.net);
  for (std::size_t w = 0; w < words; ++w) out[w] = 0;

  // Structural filter: a fault with no combinational path to an active flop
  // D cannot be detected by any pattern (flop-branch faults are sampled
  // directly and bypass the cone). Branch faults propagate only through
  // their load gate, so the gate's output net is the tighter check.
  if (fault.site == FaultSite::kStem) {
    if (!obs_reach_[site]) return false;
  } else if (fault.site == FaultSite::kGateBranch) {
    if (!obs_reach_[v.gate_outs()[v.sched_of_gate(fault.load)]]) return false;
  }

  const std::uint64_t* f1 = blk.f1.data() + static_cast<std::size_t>(site) * words;
  const std::uint64_t* g2 = blk.g2.data() + static_cast<std::size_t>(site) * words;

  // Launch condition: frame1 holds v1, frame2 fault-free holds v2.
  std::uint64_t launch[kMaxBatchWords];
  std::uint64_t launched = 0;
  for (std::size_t w = 0; w < words; ++w) {
    launch[w] = (fault.v1() ? f1[w] : ~f1[w]) & (fault.v2() ? g2[w] : ~g2[w]) &
                blk.lane_mask[w];
    launched |= launch[w];
  }
  if (launched == 0) return false;

  if (fault.site == FaultSite::kFlopBranch) {
    // The late transition is sampled directly by the (active) load flop.
    if (!ctx_->active[fault.load]) return false;
    for (std::size_t w = 0; w < words; ++w) out[w] = launch[w];
    return true;
  }

  // Walk words in pattern order, stopping at the first detecting word:
  // grade() only consumes the earliest detect bit, and most detected faults
  // fire in the first word, so later words are usually never propagated. The
  // walked word sequence is identical at any batch width (W only changes how
  // words are grouped into blocks), which keeps both results and the
  // faultsim.* counters W-invariant.
  for (std::size_t w = 0; w < words; ++w) {
    if (launch[w] == 0) continue;
    out[w] = cone_word(fault, blk, w, words, launch[w], cs);
    if (out[w] != 0) return true;
  }
  return false;
}

std::uint64_t FaultSimulator::cone_word(const TdfFault& fault,
                                        const GoodBlock& blk, std::size_t w,
                                        std::size_t stride,
                                        std::uint64_t launch,
                                        ConeScratch& cs) const {
  const LevelizedView& v = *view_;
  const std::uint64_t* g2 = blk.g2.data() + w;  // indexed net*stride

  // Frame-2 cone propagation of the stuck-at-v1 perturbation.
  if (++cs.epoch == 0) {  // stamp wrap: invalidate all
    std::fill(cs.stamp.begin(), cs.stamp.end(), 0);
    cs.epoch = 1;
  }
  const std::uint32_t epoch = cs.epoch;
  const std::uint64_t stuck = fault.v1() ? ~0ull : 0ull;

  std::uint32_t max_key = 0;
  std::uint32_t min_key = static_cast<std::uint32_t>(cs.buckets.size());
  const std::uint32_t* levels = v.gate_levels();
  const CellType* types = v.gate_types();
  const NetId* outs = v.gate_outs();
  // Perturbations entering a region with no path to an active flop D can
  // never detect; pruning those gates at enqueue time skips the dead part
  // of the cone (identical at any thread count and batch width).
  auto enqueue = [&](std::uint32_t si) {
    if (cs.queued[si] || !obs_reach_[outs[si]]) return;
    cs.queued[si] = 1;
    const std::uint32_t lvl = levels[si];
    cs.buckets[lvl].push_back(si);
    max_key = std::max(max_key, lvl);
    min_key = std::min(min_key, lvl);
  };

  std::uint64_t detect = 0;
  auto good = [&](NetId n) {
    return g2[static_cast<std::size_t>(n) * stride];
  };
  auto set_faulty = [&](NetId n, std::uint64_t val) {
    const std::uint64_t gn = good(n);
    // Perturb only launched lanes.
    const std::uint64_t merged = (gn & ~launch) | (val & launch);
    const std::uint64_t prev = cs.stamp[n] == epoch ? cs.faulty[n] : gn;
    if (merged == prev) return;
    cs.stamp[n] = epoch;
    cs.faulty[n] = merged;
    if (obs_weight_[n] != 0) detect |= (merged ^ gn) & launch;
    for (std::uint32_t si : v.fanout_scheds(n)) enqueue(si);
  };

  if (fault.site == FaultSite::kStem) {
    set_faulty(v.compact_net(fault.net), stuck);
  } else {
    enqueue(v.sched_of_gate(fault.load));
  }

  const NetId* pool = v.gate_ins();
  const std::uint32_t* off = v.gate_in_offsets();
  const std::uint32_t fault_sched = fault.site == FaultSite::kGateBranch
                                        ? v.sched_of_gate(fault.load)
                                        : ~std::uint32_t{0};

  std::uint64_t inbuf[kMaxGateInputs];
  std::uint64_t outbuf[1] = {};
  std::size_t gate_evals = 0;
  for (std::uint32_t k = min_key; k <= max_key && k < cs.buckets.size(); ++k) {
    auto& bucket = cs.buckets[k];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const std::uint32_t si = bucket[i];
      cs.queued[si] = 0;
      ++gate_evals;
      const NetId* ins = pool + off[si];
      const std::uint32_t nin = off[si + 1] - off[si];
      for (std::uint32_t j = 0; j < nin; ++j) {
        const NetId n = ins[j];
        if (si == fault_sched && fault.pin == j) {
          inbuf[j] = stuck;
        } else {
          inbuf[j] = cs.stamp[n] == epoch ? cs.faulty[n] : good(n);
        }
      }
      batchk::cone::eval_cell<1>(
          types[si], [&](int j) { return inbuf + j; }, outbuf);
      set_faulty(outs[si], outbuf[0]);
    }
    bucket.clear();
  }
  cs.walks += 1;
  cs.evals += gate_evals;
  return detect;
}

std::vector<std::size_t> FaultSimulator::grade(
    std::span<const Pattern> patterns, std::span<const TdfFault> faults,
    std::vector<std::size_t>* first_detects_per_pattern) {
  SCAP_TRACE_SCOPE("faultsim.grade");
  std::vector<std::size_t> first(faults.size(), kUndetected);

  if (!patterns.empty() && !faults.empty()) {
    const std::size_t W = words_;
    const std::size_t lanes = 64 * W;
    const std::size_t nb = (patterns.size() + lanes - 1) / lanes;
    const std::size_t threads = rt::concurrency();
    BatchSim sim(view_, W);

    // Phase 1: fault-free two-frame response of every block, computed once
    // and shared read-only across all fault shards. Writes are
    // element-indexed, so the block contents never depend on the chunking.
    std::vector<GoodBlock> blocks(nb);
    if (obs::metrics_enabled()) batches_ctr_->add(nb);
    {
      SCAP_TRACE_SCOPE("faultsim.good_blocks");
      const std::size_t n_chunks = std::min(nb, std::max<std::size_t>(threads, 1));
      const std::size_t per = (nb + n_chunks - 1) / n_chunks;
      rt::ThreadPool::global()->run_chunked(n_chunks, [&](std::size_t c) {
        GoodScratch gs;
        const std::size_t be = std::min(nb, (c + 1) * per);
        for (std::size_t b = c * per; b < be; ++b) {
          compute_good_block(sim, patterns, b, blocks[b], gs);
        }
      });
    }

    // Phase 2: fault-parallel shards walk the shared blocks with local fault
    // dropping, each owning only cone scratch. Shards are disjoint fault
    // slices and a fault's first-detect index scans blocks, words and bits in
    // pattern order, so the result is bit-identical at any SCAP_THREADS and
    // any batch width W.
    constexpr std::size_t kMinFaultsPerShard = 64;
    const std::size_t n_shards = std::max<std::size_t>(
        1, std::min(threads, faults.size() / kMinFaultsPerShard));
    const std::size_t per_shard = (faults.size() + n_shards - 1) / n_shards;
    obs::count("faultsim.grade_shards", n_shards);
    rt::ThreadPool::global()->run_chunked(n_shards, [&](std::size_t s) {
      const std::size_t fb = s * per_shard;
      const std::size_t fe = std::min(faults.size(), fb + per_shard);
      if (fb >= fe) return;
      ConeScratch cs;
      cs.ensure(*view_);
      std::uint64_t det[kMaxBatchWords];
      std::size_t remaining = fe - fb;
      std::size_t replays = 0;
      for (std::size_t b = 0; b < nb && remaining > 0; ++b) {
        ++replays;
        const GoodBlock& blk = blocks[b];
        for (std::size_t fi = fb; fi < fe; ++fi) {
          if (first[fi] != kUndetected) continue;
          if (!detect_block(W, faults[fi], blk, cs, det)) continue;
          for (std::size_t w = 0; w < W; ++w) {
            if (det[w]) {
              first[fi] = b * lanes + w * 64 +
                          static_cast<std::size_t>(std::countr_zero(det[w]));
              break;
            }
          }
          --remaining;
        }
      }
      if (obs::metrics_enabled()) {
        replays_ctr_->add(replays);
        cs.flush_counters(masks_ctr_, events_ctr_);
      }
    });
  }

  if (first_detects_per_pattern) {
    first_detects_per_pattern->assign(patterns.size(), 0);
    for (std::size_t idx : first) {
      if (idx != kUndetected) ++(*first_detects_per_pattern)[idx];
    }
  }
  return first;
}

}  // namespace scap
