#include "atpg/fault_sim.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "rt/parallel.h"

namespace scap {

FaultSimulator::FaultSimulator(const Netlist& nl, const TestContext& ctx)
    : nl_(&nl), ctx_(&ctx), sim_(nl) {
  obs::Registry& reg = obs::Registry::global();
  batches_ctr_ = &reg.counter("faultsim.batches");
  masks_ctr_ = &reg.counter("faultsim.detect_masks");
  events_ctr_ = &reg.counter("faultsim.events");
  faulty_.assign(nl.num_nets(), 0);
  stamp_.assign(nl.num_nets(), 0);
  obs_weight_.assign(nl.num_nets(), 0);
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    if (ctx.active[f]) ++obs_weight_[nl.flop(f).d];
  }
  buckets_.resize(nl.max_level() + 1);
  queued_.assign(nl.num_gates(), 0);
}

void FaultSimulator::load_batch(std::span<const Pattern> batch) {
  SCAP_TRACE_SCOPE("faultsim.batch");
  assert(batch.size() <= 64);
  if (obs::metrics_enabled()) batches_ctr_->add(1);
  const Netlist& nl = *nl_;
  batch_size_ = batch.size();

  // Pack all test variables (scan bits, plus LOS scan-in bits) per lane.
  std::vector<std::uint64_t> vars(ctx_->num_vars(), 0);
  for (std::size_t p = 0; p < batch.size(); ++p) {
    const auto& bits = batch[p].s1;
    assert(bits.size() == ctx_->num_vars());
    for (std::size_t v = 0; v < vars.size(); ++v) {
      vars[v] |= static_cast<std::uint64_t>(bits[v] & 1) << p;
    }
  }
  s1_.assign(vars.begin(), vars.begin() + static_cast<std::ptrdiff_t>(nl.num_flops()));
  pi_.assign(nl.primary_inputs().size(), 0);
  for (std::size_t i = 0; i < pi_.size(); ++i) {
    pi_[i] = ctx_->pi_values[i] ? ~0ull : 0ull;
  }

  sim_.eval_frame(s1_, pi_, f1_);
  // Launch: LOC captures the functional response on active flops (held
  // flops keep S1); LOS shifts every chain by one position.
  s2_.resize(nl.num_flops());
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    if (ctx_->los()) {
      s2_[f] = vars[ctx_->los_pred[f]];
    } else {
      s2_[f] = ctx_->active[f] ? f1_[nl.flop(f).d] : s1_[f];
    }
  }
  sim_.eval_frame(s2_, pi_, g2_);
}

std::uint64_t FaultSimulator::detect_mask(const TdfFault& fault) {
  const Netlist& nl = *nl_;
  const NetId site = fault.net;

  // Launch condition: frame1 holds v1, frame2 fault-free holds v2.
  const std::uint64_t v1w = fault.v1() ? f1_[site] : ~f1_[site];
  const std::uint64_t v2w = fault.v2() ? g2_[site] : ~g2_[site];
  std::uint64_t launch = v1w & v2w;
  if (batch_size_ < 64) launch &= (1ull << batch_size_) - 1;
  if (launch == 0) return 0;

  if (fault.site == FaultSite::kFlopBranch) {
    // The late transition is sampled directly by the (active) load flop.
    return ctx_->active[fault.load] ? launch : 0;
  }

  // Frame-2 cone propagation of the stuck-at-v1 perturbation.
  ++epoch_;
  const std::uint64_t stuck = fault.v1() ? ~0ull : 0ull;

  auto faulty_value = [&](NetId n) -> std::uint64_t {
    return stamp_[n] == epoch_ ? faulty_[n] : g2_[n];
  };
  std::uint32_t max_key = 0;
  std::uint32_t min_key = static_cast<std::uint32_t>(buckets_.size());
  auto enqueue = [&](GateId g) {
    if (queued_[g]) return;
    queued_[g] = 1;
    const std::uint32_t lvl = nl.gate(g).level;
    buckets_[lvl].push_back(g);
    max_key = std::max(max_key, lvl);
    min_key = std::min(min_key, lvl);
  };

  std::uint64_t detect = 0;
  auto set_faulty = [&](NetId n, std::uint64_t v) {
    // Perturb only launched lanes.
    const std::uint64_t merged = (g2_[n] & ~launch) | (v & launch);
    if (stamp_[n] == epoch_ && faulty_[n] == merged) return;
    if (stamp_[n] != epoch_ && merged == g2_[n]) return;
    stamp_[n] = epoch_;
    faulty_[n] = merged;
    const std::uint64_t diff = (merged ^ g2_[n]) & launch;
    if (diff && obs_weight_[n] != 0) detect |= diff;
    for (GateId g : nl.fanout_gates(n)) enqueue(g);
  };

  if (fault.site == FaultSite::kStem) {
    set_faulty(site, stuck);
  } else {
    enqueue(fault.load);
  }

  std::array<std::uint64_t, 4> ins{};
  std::size_t gate_evals = 0;
  for (std::uint32_t k = min_key; k <= max_key && k < buckets_.size(); ++k) {
    auto& bucket = buckets_[k];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const GateId g = bucket[i];
      queued_[g] = 0;
      ++gate_evals;
      const auto in_nets = nl.gate_inputs(g);
      for (std::size_t j = 0; j < in_nets.size(); ++j) {
        std::uint64_t v = faulty_value(in_nets[j]);
        if (fault.site == FaultSite::kGateBranch && fault.load == g &&
            fault.pin == j) {
          v = stuck;
        }
        ins[j] = v;
      }
      set_faulty(nl.gate(g).out,
                 eval_word(nl.gate(g).type,
                           std::span<const std::uint64_t>(ins.data(),
                                                          in_nets.size())));
    }
    bucket.clear();
    max_key = std::max(max_key, k);  // set_faulty may have raised it
  }
  if (obs::metrics_enabled()) {
    masks_ctr_->add(1);
    events_ctr_->add(gate_evals);
  }
  return detect;
}

void FaultSimulator::grade_shard(std::span<const Pattern> patterns,
                                 std::span<const TdfFault> faults,
                                 std::span<std::size_t> first_out) {
  std::size_t remaining = faults.size();
  for (std::size_t base = 0; base < patterns.size() && remaining > 0;
       base += 64) {
    const std::size_t n = std::min<std::size_t>(64, patterns.size() - base);
    load_batch(patterns.subspan(base, n));
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (first_out[fi] != kUndetected) continue;
      const std::uint64_t mask = detect_mask(faults[fi]);
      if (mask == 0) continue;
      first_out[fi] = base + static_cast<std::size_t>(std::countr_zero(mask));
      --remaining;
    }
  }
}

std::vector<std::size_t> FaultSimulator::grade(
    std::span<const Pattern> patterns, std::span<const TdfFault> faults,
    std::vector<std::size_t>* first_detects_per_pattern) {
  SCAP_TRACE_SCOPE("faultsim.grade");
  std::vector<std::size_t> first(faults.size(), kUndetected);

  // Fault-parallel sharding (PROOFS-style): each shard owns a disjoint fault
  // slice and a private simulator, replays the batches with local fault
  // dropping, and fills its slice of `first`. Because shards are disjoint,
  // the classic periodic drop-list exchange degenerates to the ordered merge
  // below -- a fault's first-detect index never depends on which shard (or
  // thread) computed it, so the result is bit-identical at any SCAP_THREADS.
  // Each shard re-simulates the fault-free batches; that duplicated good-sim
  // work is proportional to the thread count and is amortized across the
  // cone propagations, which dominate.
  const std::size_t shards = rt::concurrency();
  constexpr std::size_t kMinFaultsPerShard = 64;
  if (shards > 1 && !rt::ThreadPool::on_worker_thread() &&
      faults.size() >= 2 * kMinFaultsPerShard && !patterns.empty()) {
    const std::size_t n_shards =
        std::min(shards, faults.size() / kMinFaultsPerShard);
    const std::size_t per = (faults.size() + n_shards - 1) / n_shards;
    obs::count("faultsim.grade_shards", n_shards);
    rt::ThreadPool::global()->run_chunked(n_shards, [&](std::size_t s) {
      const std::size_t fb = s * per;
      const std::size_t fe = std::min(faults.size(), fb + per);
      if (fb >= fe) return;
      FaultSimulator shard_sim(*nl_, *ctx_);
      shard_sim.grade_shard(patterns, faults.subspan(fb, fe - fb),
                            std::span<std::size_t>(first).subspan(fb, fe - fb));
    });
  } else {
    grade_shard(patterns, faults, first);
  }

  if (first_detects_per_pattern) {
    first_detects_per_pattern->assign(patterns.size(), 0);
    for (std::size_t idx : first) {
      if (idx != kUndetected) ++(*first_detects_per_pattern)[idx];
    }
  }
  return first;
}

}  // namespace scap
