// Scan-shift power analysis.
//
// The paper scopes shift IR-drop out of its method ("lower frequencies are
// used during test pattern shift"), but notes that fill-adjacent exists
// mostly to reduce shift switching. This module quantifies that: it
// simulates the scan chains cycle by cycle while a pattern shifts in over
// the previous response shifting out, and reports scan-cell toggle counts
// and the cap-weighted switching energy. (Combinational activity behind the
// shifting cells tracks the cell toggles to first order; the scan-cell
// metric is the standard WSA-style proxy.)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "atpg/pattern.h"
#include "layout/parasitics.h"
#include "netlist/netlist.h"
#include "netlist/tech_library.h"
#include "soc/scan_chains.h"

namespace scap {

struct ShiftPowerReport {
  std::size_t shift_cycles = 0;       ///< max chain length
  std::size_t total_flop_toggles = 0;
  double avg_toggles_per_cycle = 0.0;
  std::size_t peak_cycle_toggles = 0;
  /// Cap-weighted scan-cell switching energy over the whole shift [pJ].
  double weighted_energy_pj = 0.0;
  /// Average shift power at the given shift clock [mW].
  double avg_power_mw(double shift_mhz) const {
    if (shift_cycles == 0) return 0.0;
    const double total_ns =
        static_cast<double>(shift_cycles) * 1000.0 / shift_mhz;
    return weighted_energy_pj / total_ns;
  }
};

/// Shift `load` in while `previous_state` (e.g. the captured response of the
/// preceding pattern) shifts out. `previous_state` may be empty (all zero).
/// Only the leading num_flops() entries of `load.s1` are used.
ShiftPowerReport analyze_shift_power(
    const Netlist& nl, const ScanChains& chains, const Parasitics& par,
    const TechLibrary& lib, const Pattern& load,
    std::span<const std::uint8_t> previous_state = {});

}  // namespace scap
