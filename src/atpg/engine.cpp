#include "atpg/engine.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "atpg/quiet_state.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace scap {

AtpgResult AtpgEngine::run(std::span<const TdfFault> faults,
                           const AtpgOptions& opt,
                           std::vector<FaultStatus>* status) {
  SCAP_TRACE_SCOPE("atpg.run");
  // This run's own outcomes (status may arrive pre-seeded by earlier steps).
  std::uint64_t run_detected = 0, run_aborted = 0, run_untestable = 0;
  std::uint64_t run_merges = 0;
  const Netlist& nl = *nl_;
  AtpgResult result;
  result.patterns.domain = ctx_->domain;

  std::vector<FaultStatus> local_status;
  std::vector<FaultStatus>& st = status ? *status : local_status;
  if (st.size() != faults.size()) {
    st.assign(faults.size(), FaultStatus::kUndetected);
  }

  // Which faults may serve as primary PODEM targets this run.
  std::vector<std::uint8_t> targetable(faults.size(), 1);
  if (!opt.target_blocks.empty()) {
    for (std::size_t i = 0; i < faults.size(); ++i) {
      const BlockId b = fault_block(nl, faults[i]);
      targetable[i] =
          b < opt.target_blocks.size() ? opt.target_blocks[b] : 0;
    }
  }
  // A fault already tried as a primary target this run (avoid rework while
  // its pattern sits in the unsimulated buffer). With n-detect the flag is
  // re-armed after each simulated batch until the count is satisfied.
  std::vector<std::uint8_t> tried(faults.size(), 0);
  std::vector<std::uint32_t> detect_count(faults.size(), 0);

  Podem podem(nl, *ctx_, PodemOptions{opt.backtrack_limit});
  FaultSimulator fsim(nl, *ctx_);
  Rng rng(opt.seed);

  std::span<const std::vector<FlopId>> chains;
  if (opt.chains) chains = *opt.chains;

  // Quiet-state fill needs the idle state; compute it once if any mode asks.
  std::vector<std::uint8_t> quiet;
  bool wants_quiet = opt.fill == FillMode::kQuiet;
  for (FillMode m : opt.per_block_fill) wants_quiet |= (m == FillMode::kQuiet);
  if (wants_quiet) {
    quiet = compute_quiet_state(nl, *ctx_).s1;
    quiet.resize(ctx_->num_vars(), 0);  // LOS scan-in bits idle at 0
  }

  auto fill_cube = [&](const TestCube& cube) -> Pattern {
    Pattern p;
    if (!opt.per_block_fill.empty()) {
      // Per-block fill covers the flop bits; LOS scan-in tail handled below.
      TestCube flop_part;
      flop_part.s1.assign(cube.s1.begin(),
                          cube.s1.begin() + static_cast<std::ptrdiff_t>(
                                                nl.num_flops()));
      p = apply_fill_per_block(nl, flop_part, opt.per_block_fill, rng, chains,
                               quiet);
      p.s1.insert(p.s1.end(),
                  cube.s1.begin() + static_cast<std::ptrdiff_t>(nl.num_flops()),
                  cube.s1.end());
    } else {
      p = apply_fill(cube, opt.fill, rng, chains, quiet);
    }
    // LOS scan-in bits: quiet/adjacent have no defined source; use 0 (the
    // conventional scan-in idle value) unless randomized.
    for (std::size_t v = nl.num_flops(); v < p.s1.size(); ++v) {
      if (p.s1[v] != kBitX) continue;
      p.s1[v] = opt.fill == FillMode::kRandom
                    ? static_cast<std::uint8_t>(rng.below(2))
                    : (opt.fill == FillMode::kFill1 ? 1 : 0);
    }
    return p;
  };

  std::vector<Pattern> buffer;
  std::vector<std::size_t> buffer_care_bits;

  auto flush_buffer = [&]() {
    if (buffer.empty()) return;
    fsim.load_batch(buffer);
    const std::size_t base = result.patterns.patterns.size();
    result.new_detects_per_pattern.resize(base + buffer.size(), 0);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (st[i] == FaultStatus::kDetected ||
          st[i] == FaultStatus::kUntestable) {
        continue;
      }
      const std::uint64_t mask = fsim.detect_mask(faults[i]);
      if (mask == 0) continue;
      if (detect_count[i] == 0) {
        // Coverage credit goes to the first detecting pattern ever.
        const std::size_t idx =
            base + static_cast<std::size_t>(std::countr_zero(mask));
        ++result.new_detects_per_pattern[idx];
      }
      detect_count[i] += static_cast<std::uint32_t>(std::popcount(mask));
      if (detect_count[i] >= opt.n_detect) {
        st[i] = FaultStatus::kDetected;
        ++run_detected;
      } else {
        tried[i] = 0;  // re-arm as a primary target for another detection
      }
    }
    for (std::size_t i = 0; i < buffer.size(); ++i) {
      result.patterns.patterns.push_back(std::move(buffer[i]));
      result.care_bits_per_pattern.push_back(buffer_care_bits[i]);
    }
    buffer.clear();
    buffer_care_bits.clear();
  };

  // Main loop: sweep the fault list, generating one pattern per remaining
  // primary target; simulate in batches of 64 with dropping.
  std::size_t cursor = 0;
  std::size_t remaining_scan = faults.size();
  while (remaining_scan > 0) {
    // Find the next primary target.
    std::size_t target = faults.size();
    while (remaining_scan > 0) {
      if (cursor == faults.size()) cursor = 0;
      const std::size_t i = cursor++;
      --remaining_scan;
      if (targetable[i] && !tried[i] && st[i] == FaultStatus::kUndetected) {
        target = i;
        break;
      }
    }
    if (target == faults.size()) break;
    tried[target] = 1;

    TestCube cube;
    const PodemStatus ps = podem.generate(faults[target], cube);
    if (ps == PodemStatus::kUntestable) {
      st[target] = FaultStatus::kUntestable;
      ++run_untestable;
      continue;
    }
    if (ps == PodemStatus::kAborted) {
      st[target] = FaultStatus::kAborted;
      ++run_aborted;
      continue;
    }

    // Dynamic compaction: try to pack nearby undetected targets in as well,
    // under the per-block care-bit budget.
    std::vector<std::size_t> block_flops(nl.block_count(), 0);
    for (FlopId f = 0; f < nl.num_flops(); ++f) ++block_flops[nl.flop(f).block];
    auto within_care_budget = [&](const TestCube& c) {
      if (opt.max_block_care_fraction >= 1.0) return true;
      std::vector<std::size_t> care(nl.block_count(), 0);
      for (FlopId f = 0; f < nl.num_flops(); ++f) {
        if (c.s1[f] != kBitX) ++care[nl.flop(f).block];
      }
      for (BlockId b = 0; b < nl.block_count(); ++b) {
        if (block_flops[b] == 0) continue;
        const double frac = static_cast<double>(care[b]) /
                            static_cast<double>(block_flops[b]);
        if (frac > opt.max_block_care_fraction) return false;
      }
      return true;
    };
    std::uint32_t merged = 0;
    std::uint32_t scanned = 0;
    for (std::size_t j = target + 1;
         j < faults.size() && merged < opt.compaction_limit &&
         scanned < opt.compaction_scan && within_care_budget(cube);
         ++j) {
      if (!targetable[j] || tried[j] || st[j] != FaultStatus::kUndetected) {
        continue;
      }
      ++scanned;
      TestCube merged_cube;
      if (podem.extend(faults[j], merged_cube) == PodemStatus::kDetected) {
        cube = std::move(merged_cube);
        tried[j] = 1;
        ++merged;
        ++run_merges;
      }
    }

    buffer_care_bits.push_back(cube.care_bits());
    buffer.push_back(fill_cube(cube));
    // Every targeted fault whose fill already covers it will drop at flush.
    if (buffer.size() == 64) flush_buffer();

    // After a flush the dropped faults free up the scan; rescan the list.
    remaining_scan = faults.size();
  }
  flush_buffer();

  // Partially-counted faults (detected at least once but short of n_detect
  // when targets ran dry) still count as detected for coverage.
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (st[i] != FaultStatus::kUntestable && detect_count[i] > 0) {
      run_detected += (st[i] != FaultStatus::kDetected);
      st[i] = FaultStatus::kDetected;
    }
  }
  result.stats.total_faults = faults.size();
  for (FaultStatus s : st) {
    switch (s) {
      case FaultStatus::kDetected:
        ++result.stats.detected;
        break;
      case FaultStatus::kUntestable:
        ++result.stats.untestable;
        break;
      case FaultStatus::kAborted:
        ++result.stats.aborted;
        break;
      case FaultStatus::kUndetected:
        break;
    }
  }
  obs::count("atpg.runs");
  obs::count("atpg.patterns", result.patterns.size());
  obs::count("atpg.compaction_merges", run_merges);
  obs::count("atpg.detected_faults", run_detected);
  obs::count("atpg.aborted_faults", run_aborted);
  obs::count("atpg.untestable_faults", run_untestable);
  return result;
}

}  // namespace scap
