#include "atpg/shift_power.h"

#include <algorithm>

namespace scap {

ShiftPowerReport analyze_shift_power(
    const Netlist& nl, const ScanChains& chains, const Parasitics& par,
    const TechLibrary& lib, const Pattern& load,
    std::span<const std::uint8_t> previous_state) {
  ShiftPowerReport rep;
  rep.shift_cycles = chains.max_chain_length();
  if (rep.shift_cycles == 0) return rep;

  // Current chain contents.
  std::vector<std::uint8_t> state(nl.num_flops(), 0);
  if (!previous_state.empty()) {
    for (FlopId f = 0; f < nl.num_flops(); ++f) state[f] = previous_state[f];
  }

  std::vector<std::size_t> cycle_toggles(rep.shift_cycles, 0);
  for (std::size_t t = 0; t < rep.shift_cycles; ++t) {
    for (const auto& chain : chains.chains) {
      const std::size_t len = chain.size();
      if (len == 0 || t >= rep.shift_cycles) continue;
      // Shift one position toward the tail; the stream bit entering at
      // cycle t is the one destined for position len-1-t after all shifts.
      // Chains shorter than the longest pad with idle (0) bits first.
      const std::size_t lead = rep.shift_cycles - len;
      std::uint8_t incoming = 0;
      if (t >= lead) {
        const std::size_t k = t - lead;  // k-th real stream bit
        incoming = load.s1[chain[len - 1 - k]];
      }
      for (std::size_t i = len; i-- > 1;) {
        const std::uint8_t nv = state[chain[i - 1]];
        if (state[chain[i]] != nv) {
          state[chain[i]] = nv;
          ++cycle_toggles[t];
          rep.weighted_energy_pj +=
              lib.toggle_energy_pj(par.flop_load_pf(nl, chain[i]));
        }
      }
      if (state[chain[0]] != incoming) {
        state[chain[0]] = incoming;
        ++cycle_toggles[t];
        rep.weighted_energy_pj +=
            lib.toggle_energy_pj(par.flop_load_pf(nl, chain[0]));
      }
    }
  }

  for (std::size_t c : cycle_toggles) {
    rep.total_flop_toggles += c;
    rep.peak_cycle_toggles = std::max(rep.peak_cycle_toggles, c);
  }
  rep.avg_toggles_per_cycle =
      static_cast<double>(rep.total_flop_toggles) /
      static_cast<double>(rep.shift_cycles);
  return rep;
}

}  // namespace scap
