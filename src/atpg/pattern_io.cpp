#include "atpg/pattern_io.h"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace scap {

namespace {

const char* scheme_name(LaunchScheme s) {
  switch (s) {
    case LaunchScheme::kLoc:
      return "LOC";
    case LaunchScheme::kLos:
      return "LOS";
    case LaunchScheme::kEnhanced:
      return "ENHANCED";
  }
  return "?";
}

}  // namespace

void write_patterns(const PatternSet& patterns, const TestContext& ctx,
                    std::ostream& os) {
  os << "// scapgen pattern set\n";
  os << "Domain " << static_cast<int>(patterns.domain) << ";\n";
  os << "Scheme " << scheme_name(ctx.scheme) << ";\n";
  os << "Vars " << ctx.num_vars() << ";\n";
  os << "Patterns " << patterns.size() << ";\n";
  for (const Pattern& p : patterns.patterns) {
    std::string line;
    line.reserve(p.s1.size());
    for (std::uint8_t b : p.s1) line.push_back(b ? '1' : '0');
    os << line << '\n';
  }
}

std::string to_pattern_text(const PatternSet& patterns,
                            const TestContext& ctx) {
  std::ostringstream os;
  write_patterns(patterns, ctx, os);
  return os.str();
}

PatternSet parse_patterns(std::string_view text, const TestContext& ctx) {
  std::istringstream in{std::string(text)};
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& msg) -> void {
    throw std::runtime_error("pattern parse error (line " +
                             std::to_string(lineno) + "): " + msg);
  };

  PatternSet out;
  std::size_t expect_vars = 0, expect_patterns = 0;
  bool body = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line.rfind("//", 0) == 0) continue;
    if (!body) {
      std::istringstream ls(line);
      std::string key;
      ls >> key;
      if (key == "Domain") {
        int d = -1;
        ls >> d;
        if (d < 0 || d > 255) fail("bad domain");
        out.domain = static_cast<DomainId>(d);
      } else if (key == "Scheme") {
        std::string s;
        ls >> s;
        if (!s.empty() && s.back() == ';') s.pop_back();
        if (s != scheme_name(ctx.scheme)) {
          fail("scheme mismatch: file has " + s);
        }
      } else if (key == "Vars") {
        ls >> expect_vars;
        if (expect_vars != ctx.num_vars()) {
          fail("variable count mismatch: file has " +
               std::to_string(expect_vars) + ", context needs " +
               std::to_string(ctx.num_vars()));
        }
      } else if (key == "Patterns") {
        ls >> expect_patterns;
        body = true;
      } else {
        fail("unknown header key '" + key + "'");
      }
      continue;
    }
    Pattern p;
    p.s1.reserve(line.size());
    for (char c : line) {
      if (c == '0' || c == '1') {
        p.s1.push_back(static_cast<std::uint8_t>(c - '0'));
      } else if (c == '\r') {
        continue;
      } else {
        fail(std::string("unexpected character '") + c + "'");
      }
    }
    if (p.s1.size() != ctx.num_vars()) fail("wrong pattern width");
    out.patterns.push_back(std::move(p));
  }
  if (out.patterns.size() != expect_patterns) {
    ++lineno;
    fail("expected " + std::to_string(expect_patterns) + " patterns, got " +
         std::to_string(out.patterns.size()));
  }
  return out;
}

}  // namespace scap
