#include "ref/ref_models.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

namespace scap::ref {

std::uint8_t ref_eval_cell(CellType t, std::span<const std::uint8_t> ins) {
  auto all = [&]() {
    for (std::uint8_t v : ins) {
      if (!v) return false;
    }
    return true;
  };
  auto any = [&]() {
    for (std::uint8_t v : ins) {
      if (v) return true;
    }
    return false;
  };
  switch (t) {
    case CellType::kTie0:
      return 0;
    case CellType::kTie1:
      return 1;
    case CellType::kBuf:
    case CellType::kClkBuf:
    case CellType::kDff:
      return ins[0] ? 1 : 0;
    case CellType::kInv:
      return ins[0] ? 0 : 1;
    case CellType::kAnd2:
    case CellType::kAnd3:
    case CellType::kAnd4:
      return all() ? 1 : 0;
    case CellType::kNand2:
    case CellType::kNand3:
    case CellType::kNand4:
      return all() ? 0 : 1;
    case CellType::kOr2:
    case CellType::kOr3:
    case CellType::kOr4:
      return any() ? 1 : 0;
    case CellType::kNor2:
    case CellType::kNor3:
    case CellType::kNor4:
      return any() ? 0 : 1;
    case CellType::kXor2:
      return (ins[0] != 0) != (ins[1] != 0) ? 1 : 0;
    case CellType::kXnor2:
      return (ins[0] != 0) == (ins[1] != 0) ? 1 : 0;
    case CellType::kMux2:
      return (ins[0] ? ins[2] : ins[1]) ? 1 : 0;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// EventSimRef
// ---------------------------------------------------------------------------

SimTrace EventSimRef::run(std::span<const std::uint8_t> initial_net_values,
                          std::span<const Stimulus> stimuli) const {
  const Netlist& nl = *nl_;

  std::vector<std::uint8_t> value(initial_net_values.begin(),
                                  initial_net_values.end());

  // Global commit order: (time, stamp) -> net. Per net, the live pending
  // output events sorted by time. Cancellation erases from both, so -- unlike
  // the optimized engine's stale-heap-entry scheme -- every queue entry is
  // live when popped.
  struct PendingValue {
    std::uint64_t stamp;
    std::uint8_t value;
  };
  std::map<std::pair<double, std::uint64_t>, NetId> queue;
  std::vector<std::map<double, PendingValue>> pending(nl.num_nets());

  std::uint64_t stamp = 0;
  std::size_t cancelled = 0;
  std::size_t live_pops = 0;

  auto schedule = [&](NetId net, double t, std::uint8_t v) {
    auto& pl = pending[net];
    // Transport semantics: a re-evaluation at time t supersedes every pending
    // event on the net at times >= t.
    for (auto it = pl.lower_bound(t); it != pl.end();) {
      queue.erase({it->first, it->second.stamp});
      it = pl.erase(it);
      ++cancelled;
    }
    pl.emplace(t, PendingValue{stamp, v});
    queue.emplace(std::make_pair(t, stamp), net);
    ++stamp;
  };

  for (const Stimulus& s : stimuli) schedule(s.net, s.t_ns, s.value);

  SimTrace trace;
  std::size_t num_toggles = 0;
  std::array<std::uint8_t, kMaxGateInputs> ins{};

  while (!queue.empty()) {
    const auto it = queue.begin();
    const double t = it->first.first;
    const std::uint64_t st = it->first.second;
    const NetId net = it->second;
    queue.erase(it);
    ++live_pops;

    auto& pl = pending[net];
    const auto pit = pl.find(t);
    if (pit == pl.end() || pit->second.stamp != st) {
      throw std::logic_error("EventSimRef: queue/pending desync");
    }
    const std::uint8_t v = pit->second.value;
    pl.erase(pit);

    if (value[net] == v) continue;
    value[net] = v;
    if (num_toggles == 0) trace.first_toggle_ns = t;
    ++num_toggles;
    trace.last_toggle_ns = std::max(trace.last_toggle_ns, t);
    trace.toggles.push_back(ToggleEvent{net, static_cast<float>(t), v != 0});

    for (GateId g : nl.fanout_gates(net)) {
      const auto in_nets = nl.gate_inputs(g);
      for (std::size_t i = 0; i < in_nets.size(); ++i) {
        ins[i] = value[in_nets[i]];
      }
      const std::uint8_t out = ref_eval_cell(
          nl.gate(g).type,
          std::span<const std::uint8_t>(ins.data(), in_nets.size()));
      const double d = out ? dm_->rise_ns(g) : dm_->fall_ns(g);
      schedule(nl.gate(g).out, t + d, out);
    }
  }

  // The optimized engine pops every scheduled heap entry (stale ones count as
  // processed and cancelled); here every schedule is either popped live or
  // erased by cancellation, so the totals match by construction.
  trace.num_events_processed = live_pops + cancelled;
  trace.num_events_cancelled = cancelled;
  return trace;
}

// ---------------------------------------------------------------------------
// scap_ref
// ---------------------------------------------------------------------------

namespace {

/// Compensated (Kahan) accumulator: the reference sums must be closer to the
/// exact sum than the plain-double production accumulators they audit.
struct KahanSum {
  double sum = 0.0;
  double carry = 0.0;
  void add(double x) {
    const double y = x - carry;
    const double t = sum + y;
    carry = (t - sum) - y;
    sum = t;
  }
};

BlockId driver_block(const Netlist& nl, NetId n) {
  const Net& nr = nl.net(n);
  switch (nr.driver_kind) {
    case DriverKind::kGate:
      return nl.gate(nr.driver).block;
    case DriverKind::kFlop:
      return nl.flop(nr.driver).block;
    default:
      return 0;
  }
}

}  // namespace

ScapReport scap_ref(const Netlist& nl, const Parasitics& par,
                    const TechLibrary& lib, const SimTrace& trace,
                    double period_ns) {
  ScapReport rep;
  rep.period_ns = period_ns;
  rep.num_toggles = trace.toggles.size();

  // STW recomputed from the toggle list itself (float timestamps), not
  // trusted from the trace header.
  double first = 0.0, last = 0.0;
  bool seen = false;
  for (const ToggleEvent& t : trace.toggles) {
    const double tt = static_cast<double>(t.t_ns);
    if (!seen) {
      first = last = tt;
      seen = true;
    } else {
      first = std::min(first, tt);
      last = std::max(last, tt);
    }
  }
  rep.stw_ns = seen ? last - first : 0.0;

  const std::size_t blocks = nl.block_count();
  std::vector<KahanSum> vdd(blocks), vss(blocks);
  KahanSum vdd_total, vss_total;
  for (const ToggleEvent& t : trace.toggles) {
    // E = C * VDD^2, the paper's per-toggle energy term, written out.
    const double e = par.net_load_pf(t.net) * lib.vdd() * lib.vdd();
    const BlockId b = driver_block(nl, t.net);
    if (t.rising) {
      vdd[b].add(e);
      vdd_total.add(e);
    } else {
      vss[b].add(e);
      vss_total.add(e);
    }
  }
  rep.vdd_energy_pj.resize(blocks);
  rep.vss_energy_pj.resize(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    rep.vdd_energy_pj[b] = vdd[b].sum;
    rep.vss_energy_pj[b] = vss[b].sum;
  }
  rep.vdd_energy_total_pj = vdd_total.sum;
  rep.vss_energy_total_pj = vss_total.sum;
  return rep;
}

// ---------------------------------------------------------------------------
// fault_grade_ref
// ---------------------------------------------------------------------------

namespace {

/// Stuck value forced during a faulty frame evaluation: the whole net for
/// stem faults, one gate input pin for branch faults.
struct ForcedStuck {
  NetId stem_net = kNullId;
  GateId branch_gate = kNullId;
  std::uint8_t branch_pin = 0;
  std::uint8_t value = 0;
};

/// Full-netlist fixpoint evaluation: sweep every gate until nothing changes.
/// Convergence within max_level sweeps is guaranteed on the acyclic core; the
/// generous cap turns a (impossible) cycle into a loud failure.
std::vector<std::uint8_t> eval_frame_fixpoint(const Netlist& nl,
                                              std::span<const std::uint8_t> flop_q,
                                              std::span<const std::uint8_t> pi,
                                              const ForcedStuck* forced) {
  std::vector<std::uint8_t> value(nl.num_nets(), 0);
  const auto pis = nl.primary_inputs();
  for (std::size_t i = 0; i < pis.size(); ++i) value[pis[i]] = pi[i] & 1;
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    value[nl.flop(f).q] = flop_q[f] & 1;
  }
  if (forced && forced->stem_net != kNullId) {
    value[forced->stem_net] = forced->value;
  }

  std::array<std::uint8_t, kMaxGateInputs> ins{};
  bool changed = true;
  std::size_t sweeps = 0;
  while (changed) {
    if (++sweeps > nl.num_gates() + 2) {
      throw std::logic_error("ref: frame fixpoint did not converge");
    }
    changed = false;
    for (GateId g = 0; g < nl.num_gates(); ++g) {
      const auto in_nets = nl.gate_inputs(g);
      for (std::size_t i = 0; i < in_nets.size(); ++i) {
        ins[i] = value[in_nets[i]];
      }
      if (forced && forced->branch_gate == g) {
        ins[forced->branch_pin] = forced->value;
      }
      const NetId out_net = nl.gate(g).out;
      if (forced && forced->stem_net == out_net) continue;  // stuck stays put
      const std::uint8_t out = ref_eval_cell(
          nl.gate(g).type,
          std::span<const std::uint8_t>(ins.data(), in_nets.size()));
      if (value[out_net] != out) {
        value[out_net] = out;
        changed = true;
      }
    }
  }
  return value;
}

}  // namespace

std::vector<std::size_t> fault_grade_ref(const Netlist& nl,
                                         const TestContext& ctx,
                                         std::span<const Pattern> patterns,
                                         std::span<const TdfFault> faults) {
  std::vector<std::size_t> first(faults.size(), kRefUndetected);
  std::size_t remaining = faults.size();

  std::vector<std::uint8_t> s1(nl.num_flops()), s2(nl.num_flops());
  for (std::size_t pat = 0; pat < patterns.size() && remaining > 0; ++pat) {
    const auto& bits = patterns[pat].s1;
    for (FlopId f = 0; f < nl.num_flops(); ++f) s1[f] = bits[f] & 1;
    const auto frame1 = eval_frame_fixpoint(nl, s1, ctx.pi_values, nullptr);
    // Launch state: the functional response for LOC, explicit test variables
    // for LOS / enhanced scan.
    for (FlopId f = 0; f < nl.num_flops(); ++f) {
      if (ctx.explicit_s2()) {
        s2[f] = bits[ctx.los_pred[f]] & 1;
      } else {
        s2[f] = ctx.active[f] ? frame1[nl.flop(f).d] : s1[f];
      }
    }
    const auto frame2 = eval_frame_fixpoint(nl, s2, ctx.pi_values, nullptr);

    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (first[fi] != kRefUndetected) continue;  // fault dropping
      const TdfFault& fault = faults[fi];
      // Launch condition: v1 before the launch pulse, fault-free v2 after.
      if (frame1[fault.net] != static_cast<std::uint8_t>(fault.v1())) continue;
      if (frame2[fault.net] != static_cast<std::uint8_t>(fault.v2())) continue;

      bool detected = false;
      if (fault.site == FaultSite::kFlopBranch) {
        // The late transition is sampled directly by the load flop.
        detected = ctx.active[fault.load] != 0;
      } else {
        ForcedStuck fs;
        fs.value = static_cast<std::uint8_t>(fault.v1());
        if (fault.site == FaultSite::kStem) {
          fs.stem_net = fault.net;
        } else {
          fs.branch_gate = fault.load;
          fs.branch_pin = fault.pin;
        }
        const auto faulty = eval_frame_fixpoint(nl, s2, ctx.pi_values, &fs);
        for (FlopId f = 0; f < nl.num_flops() && !detected; ++f) {
          if (!ctx.active[f]) continue;
          detected = faulty[nl.flop(f).d] != frame2[nl.flop(f).d];
        }
      }
      if (detected) {
        first[fi] = pat;
        --remaining;
      }
    }
  }
  return first;
}

// ---------------------------------------------------------------------------
// grid_solve_ref
// ---------------------------------------------------------------------------

namespace {

std::uint32_t ref_nearest_node(const Rect& die, std::uint32_t nx,
                               std::uint32_t ny, Point p) {
  const double fx = (p.x - die.x0) / die.width() * (nx - 1);
  const double fy = (p.y - die.y0) / die.height() * (ny - 1);
  const auto ix = static_cast<std::uint32_t>(
      std::clamp(std::lround(fx), 0l, static_cast<long>(nx - 1)));
  const auto iy = static_cast<std::uint32_t>(
      std::clamp(std::lround(fy), 0l, static_cast<long>(ny - 1)));
  return iy * nx + ix;
}

}  // namespace

GridSolution grid_solve_ref(const Floorplan& fp, const PowerGridOptions& opt,
                            std::span<const Point> where,
                            std::span<const double> amps, bool vdd_rail,
                            std::size_t max_sweeps) {
  const std::uint32_t nx = opt.nx, ny = opt.ny;
  const std::size_t n = static_cast<std::size_t>(nx) * ny;
  const Rect die = fp.die();
  const double gseg = 1.0 / opt.segment_res_ohm;
  const double gpad = 1.0 / opt.pad_res_ohm;

  std::vector<double> pad_g(n, 0.0);
  for (const PowerPad& pad : fp.pads()) {
    if (pad.is_vdd != vdd_rail) continue;
    pad_g[ref_nearest_node(die, nx, ny, pad.pos)] += gpad;
  }
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < where.size(); ++i) {
    b[ref_nearest_node(die, nx, ny, where[i])] += amps[i];
  }

  GridSolution sol;
  sol.nx = nx;
  sol.ny = ny;
  sol.die = die;
  sol.drop_v.assign(n, 0.0);
  std::vector<double>& d = sol.drop_v;

  // Converge well past the production tolerance so comparator slack only has
  // to absorb the production solver's truncation.
  const double tol = std::max(opt.tolerance_v * 1e-2, 1e-13);

  auto neighbors = [&](std::size_t i, std::array<std::size_t, 4>& out) {
    const std::uint32_t ix = static_cast<std::uint32_t>(i) % nx;
    const std::uint32_t iy = static_cast<std::uint32_t>(i) / nx;
    std::size_t cnt = 0;
    if (ix > 0) out[cnt++] = i - 1;
    if (ix + 1 < nx) out[cnt++] = i + 1;
    if (iy > 0) out[cnt++] = i - nx;
    if (iy + 1 < ny) out[cnt++] = i + nx;
    return cnt;
  };

  if (n <= kDenseNodeLimit) {
    // Dense assembly of sum_j g_ij (d_i - d_j) + g_pad,i d_i = I_i, then
    // natural-order Gauss-Seidel on the full matrix.
    std::vector<std::vector<double>> A(n, std::vector<double>(n, 0.0));
    std::array<std::size_t, 4> nb{};
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t cnt = neighbors(i, nb);
      A[i][i] = pad_g[i] + gseg * static_cast<double>(cnt);
      for (std::size_t k = 0; k < cnt; ++k) A[i][nb[k]] = -gseg;
    }
    for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
      double max_delta = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        double acc = b[i];
        for (std::size_t j = 0; j < n; ++j) {
          if (j != i) acc -= A[i][j] * d[j];
        }
        const double next = acc / A[i][i];
        max_delta = std::max(max_delta, std::abs(next - d[i]));
        d[i] = next;
      }
      sol.iterations = static_cast<std::uint32_t>(sweep + 1);
      sol.final_delta_v = max_delta;
      if (max_delta < tol) {
        sol.converged = true;
        break;
      }
    }
  } else {
    // Same equations via the 5-point stencil, still plain natural-order
    // Gauss-Seidel (no relaxation, no coloring, no threads).
    std::array<std::size_t, 4> nb{};
    for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
      double max_delta = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t cnt = neighbors(i, nb);
        double gsum = pad_g[i] + gseg * static_cast<double>(cnt);
        double flow = b[i];
        for (std::size_t k = 0; k < cnt; ++k) flow += gseg * d[nb[k]];
        const double next = flow / gsum;
        max_delta = std::max(max_delta, std::abs(next - d[i]));
        d[i] = next;
      }
      sol.iterations = static_cast<std::uint32_t>(sweep + 1);
      sol.final_delta_v = max_delta;
      if (max_delta < tol) {
        sol.converged = true;
        break;
      }
    }
  }
  return sol;
}

GridSolution grid_solve_ref(const Rect& die, const PdnTopology& topo,
                            const PowerGridOptions& opt,
                            std::span<const Point> where,
                            std::span<const double> amps, bool vdd_rail,
                            std::size_t max_sweeps) {
  const std::uint32_t nx = topo.nx, ny = topo.ny;
  const std::size_t n = static_cast<std::size_t>(nx) * ny;
  const std::vector<double>& pad_g = vdd_rail ? topo.vdd_pad_g : topo.vss_pad_g;

  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < where.size(); ++i) {
    b[topo.snap[ref_nearest_node(die, nx, ny, where[i])]] += amps[i];
  }

  GridSolution sol;
  sol.nx = nx;
  sol.ny = ny;
  sol.die = die;
  sol.drop_v.assign(n, 0.0);
  std::vector<double>& d = sol.drop_v;

  // Per-node conductance row: diagonal and up-to-4 neighbour couplings from
  // the topology's edge arrays (edges at 0 siemens do not couple).
  auto row = [&](std::size_t i, std::array<std::size_t, 4>& nb,
                 std::array<double, 4>& g) {
    const std::uint32_t ix = static_cast<std::uint32_t>(i) % nx;
    const std::uint32_t iy = static_cast<std::uint32_t>(i) / nx;
    std::size_t cnt = 0;
    auto add = [&](std::size_t j, double gj) {
      if (gj > 0.0) {
        nb[cnt] = j;
        g[cnt++] = gj;
      }
    };
    if (ix > 0) add(i - 1, topo.g_h[iy * (nx - 1) + (ix - 1)]);
    if (ix + 1 < nx) add(i + 1, topo.g_h[iy * (nx - 1) + ix]);
    if (iy > 0) add(i - nx, topo.g_v[(iy - 1) * nx + ix]);
    if (iy + 1 < ny) add(i + nx, topo.g_v[iy * nx + ix]);
    return cnt;
  };

  if (topo.active_nodes <= kDenseNodeLimit) {
    // Exact direct solve: dense assembly over the active nodes, LU with
    // partial pivoting, forward/back substitution. No iteration truncation.
    std::vector<std::size_t> id(n, n);
    std::vector<std::size_t> nodes;
    for (std::size_t i = 0; i < n; ++i) {
      if (topo.active[i]) {
        id[i] = nodes.size();
        nodes.push_back(i);
      }
    }
    const std::size_t m = nodes.size();
    std::vector<std::vector<double>> A(m, std::vector<double>(m, 0.0));
    std::vector<double> rhs(m, 0.0);
    std::array<std::size_t, 4> nb{};
    std::array<double, 4> g{};
    for (std::size_t r = 0; r < m; ++r) {
      const std::size_t i = nodes[r];
      const std::size_t cnt = row(i, nb, g);
      double diag = pad_g[i];
      for (std::size_t k = 0; k < cnt; ++k) {
        diag += g[k];
        if (id[nb[k]] < n) A[r][id[nb[k]]] = -g[k];
      }
      A[r][r] = diag;
      rhs[r] = b[i];
    }
    for (std::size_t k = 0; k < m; ++k) {
      std::size_t p = k;
      for (std::size_t r = k + 1; r < m; ++r) {
        if (std::abs(A[r][k]) > std::abs(A[p][k])) p = r;
      }
      if (p != k) {
        std::swap(A[p], A[k]);
        std::swap(rhs[p], rhs[k]);
      }
      if (std::abs(A[k][k]) < 1e-300) {
        throw std::runtime_error("grid_solve_ref: singular irregular system");
      }
      for (std::size_t r = k + 1; r < m; ++r) {
        const double f = A[r][k] / A[k][k];
        if (f == 0.0) continue;
        for (std::size_t c = k; c < m; ++c) A[r][c] -= f * A[k][c];
        rhs[r] -= f * rhs[k];
      }
    }
    for (std::size_t k = m; k-- > 0;) {
      double acc = rhs[k];
      for (std::size_t c = k + 1; c < m; ++c) acc -= A[k][c] * rhs[c];
      rhs[k] = acc / A[k][k];
    }
    for (std::size_t r = 0; r < m; ++r) d[nodes[r]] = rhs[r];
    sol.iterations = 1;
    sol.final_delta_v = 0.0;
    sol.converged = true;
  } else {
    // Natural-order Gauss-Seidel on the per-edge stencil, converged an
    // order of magnitude past the production tolerance.
    const double tol = std::max(opt.tolerance_v * 1e-2, 1e-13);
    std::array<std::size_t, 4> nb{};
    std::array<double, 4> g{};
    for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
      double max_delta = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (!topo.active[i]) continue;
        const std::size_t cnt = row(i, nb, g);
        double gsum = pad_g[i];
        double flow = b[i];
        for (std::size_t k = 0; k < cnt; ++k) {
          gsum += g[k];
          flow += g[k] * d[nb[k]];
        }
        const double next = flow / gsum;
        max_delta = std::max(max_delta, std::abs(next - d[i]));
        d[i] = next;
      }
      sol.iterations = static_cast<std::uint32_t>(sweep + 1);
      sol.final_delta_v = max_delta;
      if (max_delta < tol) {
        sol.converged = true;
        break;
      }
    }
  }
  return sol;
}

}  // namespace scap::ref
