// Randomized differential-test scenarios.
//
// A Scenario is a small, fully serializable recipe for one optimized-vs-
// reference cross-check: which synthetic SOC to build (seed + structural
// knobs), which launch scheme and pattern set to exercise, whether to derate
// delays with a random droop map, what power-grid solve to run, and which of
// the four oracles to compare. Everything the run does is a pure function of
// the scenario, so a failing one can be committed to tests/corpus/ and
// replayed forever.
//
// Serialization uses util::KvDoc ("key value" lines, '#' comments); unknown
// keys are ignored on parse and every field has a default, so old corpus
// entries keep replaying as the scenario schema grows.
#pragma once

#include <cstdint>
#include <string>

namespace scap::ref {

struct Scenario {
  std::string name = "scenario";

  // --- synthetic SOC -------------------------------------------------------
  std::uint64_t soc_seed = 11;
  double flops_scale = 1.0;  ///< scales every (domain, block) population
  std::uint64_t scan_chains = 4;
  double gates_per_flop = 5.0;

  // --- test session --------------------------------------------------------
  std::uint64_t domain = 0;
  std::uint64_t scheme = 0;  ///< 0 = LOC, 1 = LOS, 2 = enhanced scan

  // --- pattern set ---------------------------------------------------------
  std::uint64_t num_patterns = 4;
  /// Patterns dropped from the front of the generated stream (the shrinker
  /// uses this to bisect from the front without changing later patterns).
  std::uint64_t pattern_skip = 0;
  std::uint64_t pattern_seed = 1;
  /// -1: fully random patterns (random_pattern_set). Otherwise a FillMode
  /// index applied to random cubes with `x_fraction` don't-care bits.
  std::int64_t fill_mode = -1;
  double x_fraction = 0.5;

  // --- delay model ---------------------------------------------------------
  bool droop = false;
  std::uint64_t droop_seed = 1;
  double droop_max_v = 0.2;  ///< per-gate droop uniform in [0, max]

  // --- power grid ----------------------------------------------------------
  std::uint64_t grid_nx = 12;
  std::uint64_t grid_ny = 12;
  std::uint64_t grid_sources = 16;
  std::uint64_t grid_seed = 1;
  /// Interior void rectangles punched out of the mesh (0 = legacy uniform).
  std::uint64_t grid_voids = 0;
  /// Per-edge conductance jitter fraction in [0, 0.9] (0 = uniform metal).
  double grid_jitter = 0.0;
  /// 0 = run multigrid AND SOR (each vs the reference, plus against each
  /// other); 1 = SOR only; 2 = multigrid only. The shrinker flips 0 to a
  /// single solver to isolate which one diverged.
  std::uint64_t grid_solver = 0;

  // --- fault grading -------------------------------------------------------
  std::uint64_t fault_sample = 32;  ///< collapsed faults graded (0 = all)
  std::uint64_t fault_seed = 1;
  /// grade() batch width in machine words (1/2/4); 0 = engine default. The
  /// result must be identical at every width, so the fuzzer randomizes it.
  std::uint64_t batch_words = 0;

  // --- which oracles run ---------------------------------------------------
  bool check_sim = true;
  bool check_scap = true;
  bool check_grade = true;
  bool check_grid = true;

  /// Draw a random scenario (pure function of the seed).
  static Scenario random(std::uint64_t seed);

  /// Parse a serialized scenario; throws std::runtime_error on bad syntax or
  /// unparsable values. Missing keys keep their defaults.
  static Scenario parse(const std::string& text);

  std::string serialize() const;

  std::size_t enabled_checks() const {
    return static_cast<std::size_t>(check_sim) + check_scap + check_grade +
           check_grid;
  }
};

}  // namespace scap::ref
