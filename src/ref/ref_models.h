// Naive, obviously-correct reference implementations of the library's four
// optimized kernels, for differential testing (the analogue of the paper's
// PLI-based SCAP calculator that double-checks its ATPG wrapper).
//
// Ground rules, deliberately the opposite of the production code's:
//  - no shared code paths with the kernels under test: a private cell
//    evaluator (ref_eval_cell), flat ordered std::map event queues instead
//    of the workspace pools, full-netlist fixpoint sweeps instead of
//    levelized cones, one-fault-at-a-time scalar grading instead of 64-way
//    words, dense/natural-order Gauss-Seidel instead of red-black SOR;
//  - no reuse, no allocation discipline, no parallelism -- clarity only.
//
// Each reference is paired with a comparator in ref/compare.h; the fuzz
// driver (ref/fuzz.h) runs optimized-vs-reference on randomized scenarios.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "atpg/context.h"
#include "atpg/fault.h"
#include "atpg/pattern.h"
#include "layout/floorplan.h"
#include "layout/parasitics.h"
#include "netlist/netlist.h"
#include "netlist/tech_library.h"
#include "power/power_grid.h"
#include "sim/event_sim.h"
#include "sim/scap.h"

namespace scap::ref {

/// Independent scalar evaluation of one cell (own truth tables, not the
/// production eval_scalar): a bug in the cell kit shows up as a divergence
/// instead of being replicated on both sides.
std::uint8_t ref_eval_cell(CellType t, std::span<const std::uint8_t> ins);

/// Reference event-driven timing simulator: same transport-delay semantics
/// as EventSim (cancel-on-reschedule, (time, stamp) commit order) expressed
/// with flat ordered std::map queues -- no workspace, no pending pools, no
/// heap. Produces a trace that must match EventSim bit-for-bit, event
/// statistics included.
class EventSimRef {
 public:
  EventSimRef(const Netlist& nl, const DelayModel& dm) : nl_(&nl), dm_(&dm) {}

  SimTrace run(std::span<const std::uint8_t> initial_net_values,
               std::span<const Stimulus> stimuli) const;

 private:
  const Netlist* nl_;
  const DelayModel* dm_;
};

/// Reference SCAP accounting: recompute the switching time window from the
/// full toggle list and Kahan-sum the per-block rail energies (Eq. 1-2 of
/// the paper applied literally). Compare with compare_scap, not ==: the
/// optimized path sums in plain double.
ScapReport scap_ref(const Netlist& nl, const Parasitics& par,
                    const TechLibrary& lib, const SimTrace& trace,
                    double period_ns);

/// Reference transition-fault grading: one fault at a time, one pattern at a
/// time, each via full-netlist fixpoint frame evaluation with the stuck value
/// forced at the site. Returns the first detecting pattern index per fault
/// (kRefUndetected if none) -- the exact contract of FaultSimulator::grade.
inline constexpr std::size_t kRefUndetected = static_cast<std::size_t>(-1);
std::vector<std::size_t> fault_grade_ref(const Netlist& nl,
                                         const TestContext& ctx,
                                         std::span<const Pattern> patterns,
                                         std::span<const TdfFault> faults);

/// Reference IR-drop solve: assemble the mesh conductance equations
/// independently from the floorplan and relax them with plain natural-order
/// Gauss-Seidel (a dense matrix for small meshes, the 5-point stencil above
/// kDenseNodeLimit nodes -- same arithmetic either way). Iterates an order
/// of magnitude past the production tolerance so comparator slack covers
/// both solvers' truncation.
inline constexpr std::size_t kDenseNodeLimit = 256;
GridSolution grid_solve_ref(const Floorplan& fp, const PowerGridOptions& opt,
                            std::span<const Point> where,
                            std::span<const double> amps, bool vdd_rail,
                            std::size_t max_sweeps = 200000);

/// Irregular-topology reference. The finalized PdnTopology (per-edge
/// conductances, voids, pad anchors, injection snap map) is the *problem
/// statement* shared with the production solvers; everything downstream of
/// it -- matrix assembly, factorization, iteration -- is independent. At or
/// below kDenseNodeLimit active nodes the system is solved exactly by dense
/// LU with partial pivoting (so the oracle carries no iteration truncation
/// at all); above it, natural-order Gauss-Seidel on the per-edge 5-point
/// stencil, iterated well past the production tolerance.
GridSolution grid_solve_ref(const Rect& die, const PdnTopology& topo,
                            const PowerGridOptions& opt,
                            std::span<const Point> where,
                            std::span<const double> amps, bool vdd_rail,
                            std::size_t max_sweeps = 200000);

}  // namespace scap::ref
