#include "ref/compare.h"

#include <sstream>

namespace scap::ref {

namespace {

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

bool fail(std::string* why, const std::string& msg) {
  if (why) *why = msg;
  return false;
}

}  // namespace

bool compare_traces(const SimTrace& optimized, const SimTrace& reference,
                    std::string* why) {
  if (optimized.toggles.size() != reference.toggles.size()) {
    return fail(why, "toggle count " + std::to_string(optimized.toggles.size()) +
                         " != ref " + std::to_string(reference.toggles.size()));
  }
  for (std::size_t i = 0; i < optimized.toggles.size(); ++i) {
    const ToggleEvent& a = optimized.toggles[i];
    const ToggleEvent& b = reference.toggles[i];
    if (a.net != b.net || a.t_ns != b.t_ns || a.rising != b.rising) {
      return fail(why, "toggle[" + std::to_string(i) + "] (net " +
                           std::to_string(a.net) + ", t " + fmt(a.t_ns) +
                           ", rising " + std::to_string(a.rising) +
                           ") != ref (net " + std::to_string(b.net) + ", t " +
                           fmt(b.t_ns) + ", rising " + std::to_string(b.rising) +
                           ")");
    }
  }
  if (optimized.first_toggle_ns != reference.first_toggle_ns ||
      optimized.last_toggle_ns != reference.last_toggle_ns) {
    return fail(why, "window [" + fmt(optimized.first_toggle_ns) + ", " +
                         fmt(optimized.last_toggle_ns) + "] != ref [" +
                         fmt(reference.first_toggle_ns) + ", " +
                         fmt(reference.last_toggle_ns) + "]");
  }
  if (optimized.num_events_processed != reference.num_events_processed) {
    return fail(why, "events processed " +
                         std::to_string(optimized.num_events_processed) +
                         " != ref " +
                         std::to_string(reference.num_events_processed));
  }
  if (optimized.num_events_cancelled != reference.num_events_cancelled) {
    return fail(why, "events cancelled " +
                         std::to_string(optimized.num_events_cancelled) +
                         " != ref " +
                         std::to_string(reference.num_events_cancelled));
  }
  return true;
}

bool compare_scap(const ScapReport& optimized, const ScapReport& reference,
                  std::string* why) {
  if (optimized.num_toggles != reference.num_toggles) {
    return fail(why, "num_toggles " + std::to_string(optimized.num_toggles) +
                         " != ref " + std::to_string(reference.num_toggles));
  }
  if (!close_enough(optimized.stw_ns, reference.stw_ns, kStwRelTol,
                    kStwAbsTolNs)) {
    return fail(why, "stw_ns " + fmt(optimized.stw_ns) + " != ref " +
                         fmt(reference.stw_ns));
  }
  if (!close_enough(optimized.period_ns, reference.period_ns, kStwRelTol)) {
    return fail(why, "period_ns " + fmt(optimized.period_ns) + " != ref " +
                         fmt(reference.period_ns));
  }
  if (optimized.vdd_energy_pj.size() != reference.vdd_energy_pj.size() ||
      optimized.vss_energy_pj.size() != reference.vss_energy_pj.size()) {
    return fail(why, "block count mismatch");
  }
  auto check_rail = [&](const char* rail, double total_a, double total_b,
                        const std::vector<double>& blocks_a,
                        const std::vector<double>& blocks_b) {
    if (!close_enough(total_a, total_b, kEnergyRelTol)) {
      return fail(why, std::string(rail) + " total " + fmt(total_a) +
                           " pJ != ref " + fmt(total_b) + " pJ");
    }
    for (std::size_t b = 0; b < blocks_a.size(); ++b) {
      if (!close_enough(blocks_a[b], blocks_b[b], kEnergyRelTol)) {
        return fail(why, std::string(rail) + " block " + std::to_string(b) +
                             " energy " + fmt(blocks_a[b]) + " pJ != ref " +
                             fmt(blocks_b[b]) + " pJ");
      }
    }
    return true;
  };
  if (!check_rail("vdd", optimized.vdd_energy_total_pj,
                  reference.vdd_energy_total_pj, optimized.vdd_energy_pj,
                  reference.vdd_energy_pj)) {
    return false;
  }
  return check_rail("vss", optimized.vss_energy_total_pj,
                    reference.vss_energy_total_pj, optimized.vss_energy_pj,
                    reference.vss_energy_pj);
}

bool compare_grade(std::span<const std::size_t> optimized,
                   std::span<const std::size_t> reference, std::string* why) {
  if (optimized.size() != reference.size()) {
    return fail(why, "graded fault count " + std::to_string(optimized.size()) +
                         " != ref " + std::to_string(reference.size()));
  }
  for (std::size_t i = 0; i < optimized.size(); ++i) {
    if (optimized[i] != reference[i]) {
      auto show = [](std::size_t v) {
        return v == static_cast<std::size_t>(-1) ? std::string("undetected")
                                                 : std::to_string(v);
      };
      return fail(why, "fault " + std::to_string(i) + " first-detect " +
                           show(optimized[i]) + " != ref " +
                           show(reference[i]));
    }
  }
  return true;
}

bool compare_grid(const GridSolution& optimized, const GridSolution& reference,
                  std::string* why, double rel, double abs) {
  if (optimized.nx != reference.nx || optimized.ny != reference.ny) {
    return fail(why, "mesh " + std::to_string(optimized.nx) + "x" +
                         std::to_string(optimized.ny) + " != ref " +
                         std::to_string(reference.nx) + "x" +
                         std::to_string(reference.ny));
  }
  if (!optimized.converged) return fail(why, "optimized solve not converged");
  if (!reference.converged) return fail(why, "reference solve not converged");
  for (std::size_t i = 0; i < optimized.drop_v.size(); ++i) {
    if (!close_enough(optimized.drop_v[i], reference.drop_v[i], rel, abs)) {
      return fail(why, "node " + std::to_string(i) + " drop " +
                           fmt(optimized.drop_v[i]) + " V != ref " +
                           fmt(reference.drop_v[i]) + " V");
    }
  }
  if (!close_enough(optimized.worst(), reference.worst(), rel, abs)) {
    return fail(why, "worst drop " + fmt(optimized.worst()) + " V != ref " +
                         fmt(reference.worst()) + " V");
  }
  return true;
}

}  // namespace scap::ref
