#include "ref/scenario.h"

#include "util/kv.h"
#include "util/rng.h"

namespace scap::ref {

Scenario Scenario::random(std::uint64_t seed) {
  Rng r(seed);
  Scenario sc;
  sc.name = "fuzz_" + std::to_string(seed);
  sc.soc_seed = r();
  // Keep the SOC small enough that the one-fault-at-a-time reference grader
  // stays fast, but vary every structural knob the generator exposes.
  sc.flops_scale = r.uniform(0.25, 1.0);
  sc.scan_chains = static_cast<std::uint64_t>(r.range(1, 6));
  sc.gates_per_flop = r.uniform(2.0, 8.0);
  sc.domain = r.below(2);
  sc.scheme = r.below(3);
  sc.num_patterns = static_cast<std::uint64_t>(r.range(1, 6));
  sc.pattern_seed = r();
  sc.fill_mode = r.chance(0.5) ? -1 : static_cast<std::int64_t>(r.below(5));
  sc.x_fraction = r.uniform();
  sc.droop = r.chance(0.5);
  sc.droop_seed = r();
  sc.droop_max_v = r.uniform(0.0, 0.3);
  // Mesh sizes straddle kDenseNodeLimit so both reference solver paths
  // (dense matrix and 5-point stencil) see fuzz coverage.
  sc.grid_nx = static_cast<std::uint64_t>(r.range(4, 24));
  sc.grid_ny = static_cast<std::uint64_t>(r.range(4, 24));
  sc.grid_sources = static_cast<std::uint64_t>(r.range(1, 40));
  sc.grid_seed = r();
  sc.fault_sample = static_cast<std::uint64_t>(r.range(8, 48));
  sc.fault_seed = r();
  // grade() must be width-invariant; exercise every compiled kernel plus the
  // engine default.
  constexpr std::uint64_t kWidths[] = {0, 1, 2, 4};
  sc.batch_words = kWidths[r.below(4)];
  // Irregular-topology axes (drawn last so earlier fields keep their values
  // for a given seed): voids + jitter deform the mesh, and the solver select
  // decides which production solver(s) face the reference.
  sc.grid_voids = r.below(4);
  sc.grid_jitter = r.chance(0.5) ? 0.0 : r.uniform(0.05, 0.5);
  sc.grid_solver = r.below(3);
  return sc;
}

Scenario Scenario::parse(const std::string& text) {
  const util::KvDoc doc = util::KvDoc::parse(text);
  Scenario sc;
  sc.name = doc.get("name", sc.name);
  sc.soc_seed = doc.get_u64("soc_seed", sc.soc_seed);
  sc.flops_scale = doc.get_f64("flops_scale", sc.flops_scale);
  sc.scan_chains = doc.get_u64("scan_chains", sc.scan_chains);
  sc.gates_per_flop = doc.get_f64("gates_per_flop", sc.gates_per_flop);
  sc.domain = doc.get_u64("domain", sc.domain);
  sc.scheme = doc.get_u64("scheme", sc.scheme);
  sc.num_patterns = doc.get_u64("num_patterns", sc.num_patterns);
  sc.pattern_skip = doc.get_u64("pattern_skip", sc.pattern_skip);
  sc.pattern_seed = doc.get_u64("pattern_seed", sc.pattern_seed);
  sc.fill_mode = static_cast<std::int64_t>(static_cast<std::uint64_t>(
      doc.get_u64("fill_mode_raw",
                  static_cast<std::uint64_t>(sc.fill_mode))));
  sc.x_fraction = doc.get_f64("x_fraction", sc.x_fraction);
  sc.droop = doc.get_bool("droop", sc.droop);
  sc.droop_seed = doc.get_u64("droop_seed", sc.droop_seed);
  sc.droop_max_v = doc.get_f64("droop_max_v", sc.droop_max_v);
  sc.grid_nx = doc.get_u64("grid_nx", sc.grid_nx);
  sc.grid_ny = doc.get_u64("grid_ny", sc.grid_ny);
  sc.grid_sources = doc.get_u64("grid_sources", sc.grid_sources);
  sc.grid_seed = doc.get_u64("grid_seed", sc.grid_seed);
  sc.grid_voids = doc.get_u64("grid_voids", sc.grid_voids);
  sc.grid_jitter = doc.get_f64("grid_jitter", sc.grid_jitter);
  sc.grid_solver = doc.get_u64("grid_solver", sc.grid_solver);
  sc.fault_sample = doc.get_u64("fault_sample", sc.fault_sample);
  sc.fault_seed = doc.get_u64("fault_seed", sc.fault_seed);
  sc.batch_words = doc.get_u64("batch_words", sc.batch_words);
  sc.check_sim = doc.get_bool("check_sim", sc.check_sim);
  sc.check_scap = doc.get_bool("check_scap", sc.check_scap);
  sc.check_grade = doc.get_bool("check_grade", sc.check_grade);
  sc.check_grid = doc.get_bool("check_grid", sc.check_grid);
  return sc;
}

std::string Scenario::serialize() const {
  util::KvDoc doc;
  doc.comment("scap_fuzz scenario v1");
  doc.set("name", name);
  doc.set_u64("soc_seed", soc_seed);
  doc.set_f64("flops_scale", flops_scale);
  doc.set_u64("scan_chains", scan_chains);
  doc.set_f64("gates_per_flop", gates_per_flop);
  doc.set_u64("domain", domain);
  doc.set_u64("scheme", scheme);
  doc.set_u64("num_patterns", num_patterns);
  doc.set_u64("pattern_skip", pattern_skip);
  doc.set_u64("pattern_seed", pattern_seed);
  // Stored as the two's-complement u64 so "-1 = raw random" survives the
  // unsigned kv integer path.
  doc.set_u64("fill_mode_raw", static_cast<std::uint64_t>(fill_mode));
  doc.set_f64("x_fraction", x_fraction);
  doc.set_bool("droop", droop);
  doc.set_u64("droop_seed", droop_seed);
  doc.set_f64("droop_max_v", droop_max_v);
  doc.set_u64("grid_nx", grid_nx);
  doc.set_u64("grid_ny", grid_ny);
  doc.set_u64("grid_sources", grid_sources);
  doc.set_u64("grid_seed", grid_seed);
  doc.set_u64("grid_voids", grid_voids);
  doc.set_f64("grid_jitter", grid_jitter);
  doc.set_u64("grid_solver", grid_solver);
  doc.set_u64("fault_sample", fault_sample);
  doc.set_u64("fault_seed", fault_seed);
  doc.set_u64("batch_words", batch_words);
  doc.set_bool("check_sim", check_sim);
  doc.set_bool("check_scap", check_scap);
  doc.set_bool("check_grade", check_grade);
  doc.set_bool("check_grid", check_grid);
  return doc.to_string();
}

}  // namespace scap::ref
