#include "ref/fuzz.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "atpg/fault.h"
#include "atpg/fault_sim.h"
#include "core/pattern_sim.h"
#include "power/power_grid.h"
#include "ref/ref_models.h"
#include "soc/generator.h"
#include "util/rng.h"

namespace scap::ref {

namespace {

constexpr std::size_t kNoPattern = static_cast<std::size_t>(-1);

std::vector<Pattern> make_patterns(const Scenario& sc, const TestContext& ctx) {
  const std::size_t skip = sc.pattern_skip;
  const std::size_t total = sc.num_patterns + skip;
  std::vector<Pattern> out;
  out.reserve(sc.num_patterns);
  if (sc.fill_mode < 0) {
    PatternSet set = random_pattern_set(total, ctx.num_vars(), sc.pattern_seed);
    for (std::size_t i = skip; i < set.patterns.size(); ++i) {
      out.push_back(std::move(set.patterns[i]));
    }
  } else {
    Rng pr(sc.pattern_seed);
    const auto mode = static_cast<FillMode>(sc.fill_mode % 5);
    // kQuiet needs a quiet state of num_vars bits; all-zero works for every
    // scheme. kAdjacent deliberately gets no chains: the SOC's chains cover
    // flops only, and the identity chain also fills the LOS / enhanced-scan
    // launch variables (an X surviving into a Pattern would be a bug).
    const std::vector<std::uint8_t> quiet(ctx.num_vars(), 0);
    const double px = std::clamp(sc.x_fraction, 0.0, 1.0);
    for (std::size_t i = 0; i < total; ++i) {
      TestCube cube;
      cube.s1.resize(ctx.num_vars());
      for (auto& b : cube.s1) {
        b = pr.chance(px) ? kBitX : static_cast<std::uint8_t>(pr.below(2));
      }
      Pattern p = apply_fill(cube, mode, pr, {}, quiet);
      if (i >= skip) out.push_back(std::move(p));
    }
  }
  return out;
}

}  // namespace

const char* injected_bug_name(InjectedBug b) {
  switch (b) {
    case InjectedBug::kNone:
      return "none";
    case InjectedBug::kStwWindowOffByOne:
      return "stw-window-off-by-one";
    case InjectedBug::kDropLastToggle:
      return "drop-last-toggle";
    case InjectedBug::kGradeOffByOne:
      return "grade-off-by-one";
  }
  return "?";
}

ScenarioSetup materialize_scenario(const Scenario& sc) {
  TechLibrary lib = TechLibrary::generic180();
  SocConfig cfg = SocConfig::tiny(sc.soc_seed);
  cfg.seed = sc.soc_seed;
  cfg.scan_chains = std::max<std::size_t>(1, sc.scan_chains);
  cfg.gates_per_flop = std::clamp(sc.gates_per_flop, 1.0, 16.0);
  const double scale = std::clamp(sc.flops_scale, 0.05, 4.0);
  for (auto& p : cfg.population) {
    p.flops = std::max<std::size_t>(
        2, static_cast<std::size_t>(std::lround(
               static_cast<double>(p.flops) * scale)));
  }
  SocDesign soc = build_soc(cfg, lib);
  const Netlist& nl = soc.netlist;

  const auto domain = static_cast<DomainId>(
      std::min<std::uint64_t>(sc.domain, nl.domain_count() - 1));
  TestContext ctx;
  switch (sc.scheme % 3) {
    case 0:
      ctx = TestContext::for_domain(nl, domain);
      break;
    case 1:
      ctx = TestContext::for_domain_los(nl, domain, soc.scan.chains);
      break;
    default:
      ctx = TestContext::for_domain_enhanced(nl, domain);
      break;
  }

  std::vector<Pattern> patterns = make_patterns(sc, ctx);
  return ScenarioSetup{std::move(lib), std::move(soc), std::move(ctx),
                       std::move(patterns)};
}

ScenarioResult run_scenario(const Scenario& sc, InjectedBug inject) {
  ScenarioResult res;
  try {
    const ScenarioSetup su = materialize_scenario(sc);
    const TechLibrary& lib = su.lib;
    const SocDesign& soc = su.soc;
    const Netlist& nl = soc.netlist;
    const TestContext& ctx = su.ctx;
    const std::vector<Pattern>& patterns = su.patterns;

    DelayModel dm(nl, lib, soc.parasitics);
    if (sc.droop) {
      Rng dr(sc.droop_seed);
      const double mx = std::clamp(sc.droop_max_v, 0.0, 1.0);
      std::vector<double> droop(nl.num_gates());
      for (auto& v : droop) v = dr.uniform(0.0, mx);
      dm.set_droop(lib, droop);
    }

    if (sc.check_sim || sc.check_scap) {
      PatternAnalyzer pa(soc, lib);
      const EventSimRef rsim(nl, dm);
      for (std::size_t i = 0; i < patterns.size(); ++i) {
        PatternAnalysis an = pa.analyze(ctx, patterns[i], &dm);
        if (inject == InjectedBug::kDropLastToggle &&
            !an.trace.toggles.empty()) {
          an.trace.toggles.pop_back();
        }
        if (inject == InjectedBug::kStwWindowOffByOne) {
          an.scap.stw_ns += 0.05;  // ~one generic180 gate delay
        }
        const SimTrace rt = rsim.run(pa.frame1(), pa.stimuli());
        std::string why;
        if (sc.check_sim && !compare_traces(an.trace, rt, &why)) {
          res.divergences.push_back({"eventsim", why, i});
        }
        if (sc.check_scap) {
          const ScapReport rr =
              scap_ref(nl, soc.parasitics, lib, rt, an.scap.period_ns);
          if (!compare_scap(an.scap, rr, &why)) {
            res.divergences.push_back({"scap", why, i});
          }
        }
        if (res.divergences.size() >= 8) break;  // enough evidence
      }
    }

    if (sc.check_grade) {
      std::vector<TdfFault> faults = collapse_faults(nl, enumerate_faults(nl));
      if (sc.fault_sample > 0 && sc.fault_sample < faults.size()) {
        Rng fr(sc.fault_seed);
        std::vector<std::size_t> idx(faults.size());
        std::iota(idx.begin(), idx.end(), std::size_t{0});
        fr.shuffle(idx);
        std::vector<TdfFault> sample;
        sample.reserve(sc.fault_sample);
        for (std::size_t k = 0; k < sc.fault_sample; ++k) {
          sample.push_back(faults[idx[k]]);
        }
        faults = std::move(sample);
      }
      FaultSimulator fs(nl, ctx);
      if (valid_batch_words(sc.batch_words)) {
        fs.set_batch_words(sc.batch_words);
      }
      std::vector<std::size_t> graded = fs.grade(patterns, faults);
      if (inject == InjectedBug::kGradeOffByOne) {
        for (auto& v : graded) {
          if (v != FaultSimulator::kUndetected) ++v;
        }
      }
      const std::vector<std::size_t> ref_graded =
          fault_grade_ref(nl, ctx, patterns, faults);
      std::string why;
      if (!compare_grade(graded, ref_graded, &why)) {
        res.divergences.push_back({"grade", why, kNoPattern});
      }
    }

    if (sc.check_grid) {
      PowerGridOptions gopt;
      gopt.nx = static_cast<std::uint32_t>(
          std::clamp<std::uint64_t>(sc.grid_nx, 2, 64));
      gopt.ny = static_cast<std::uint32_t>(
          std::clamp<std::uint64_t>(sc.grid_ny, 2, 64));
      // The shared problem statement: a (possibly voided / jittered)
      // topology every solver consumes. voids = 0 and jitter = 0 reproduce
      // the legacy uniform mesh bit-for-bit, so old corpus entries replay
      // unchanged.
      const PdnTopology topo = make_fuzz_topology(
          soc.floorplan, gopt,
          static_cast<std::size_t>(std::min<std::uint64_t>(sc.grid_voids, 8)),
          std::clamp(sc.grid_jitter, 0.0, 0.9), sc.grid_seed);
      Rng gr(sc.grid_seed);
      const Rect die = soc.floorplan.die();
      const std::size_t ns = std::max<std::uint64_t>(1, sc.grid_sources);
      std::vector<Point> where(ns);
      std::vector<double> amps(ns);
      for (std::size_t i = 0; i < ns; ++i) {
        where[i] = {gr.uniform(die.x0, die.x1), gr.uniform(die.y0, die.y1)};
        amps[i] = gr.uniform(1e-3, 2e-2);
      }
      const bool run_sor = sc.grid_solver % 3 != 2;
      const bool run_mg = sc.grid_solver % 3 != 1;
      PowerGridOptions sor_opt = gopt;
      sor_opt.solver = GridSolver::kSor;
      PowerGridOptions mg_opt = gopt;
      mg_opt.solver = GridSolver::kMultigrid;
      std::optional<PowerGrid> sor_grid, mg_grid;
      if (run_sor) sor_grid.emplace(die, sor_opt, topo);
      if (run_mg) mg_grid.emplace(die, mg_opt, topo);
      for (const bool rail : {true, false}) {
        const char* rail_name = rail ? "vdd" : "vss";
        const GridSolution r =
            grid_solve_ref(die, topo, gopt, where, amps, rail);
        std::optional<GridSolution> s, m;
        std::string why;
        if (run_sor) {
          s = sor_grid->solve(where, amps, rail);
          if (!compare_grid(*s, r, &why)) {
            res.divergences.push_back(
                {"grid", std::string("sor ") + rail_name + ": " + why,
                 kNoPattern});
          }
        }
        if (run_mg) {
          m = mg_grid->solve(where, amps, rail);
          if (!compare_grid(*m, r, &why)) {
            res.divergences.push_back(
                {"grid", std::string("mg ") + rail_name + ": " + why,
                 kNoPattern});
          }
        }
        if (s && m && !compare_grid(*m, *s, &why)) {
          res.divergences.push_back(
              {"grid", std::string("mg-vs-sor ") + rail_name + ": " + why,
               kNoPattern});
        }
      }
    }
  } catch (const std::exception& e) {
    res.divergences.push_back({"exception", e.what(), kNoPattern});
  }
  return res;
}

ShrinkResult shrink_scenario(const Scenario& start, InjectedBug inject) {
  ShrinkResult sr;
  constexpr std::size_t kMaxRuns = 250;

  auto diverges = [&](const Scenario& s, Divergence* d) {
    const ScenarioResult r = run_scenario(s, inject);
    ++sr.runs;
    if (!r.ok() && d) *d = r.divergences.front();
    return !r.ok();
  };

  Scenario cur = start;
  Divergence cd;
  if (!diverges(cur, &cd)) {
    sr.minimal = cur;  // nothing to shrink; caller sees an empty divergence
    return sr;
  }

  // Greedy fixpoint: generate candidates from the current scenario, accept
  // the first that still diverges, regenerate. Candidates are ordered most
  // aggressive first so typical repros converge in a handful of runs.
  bool progress = true;
  while (progress && sr.runs < kMaxRuns) {
    progress = false;
    std::vector<Scenario> cands;
    auto push = [&](auto&& mutate) {
      Scenario c = cur;
      mutate(c);
      cands.push_back(std::move(c));
    };

    // Focus on the failing oracle: drop the other checks.
    if (cur.enabled_checks() > 1) {
      if (cur.check_sim) push([](Scenario& c) { c.check_sim = false; });
      if (cur.check_scap) push([](Scenario& c) { c.check_scap = false; });
      if (cur.check_grade) push([](Scenario& c) { c.check_grade = false; });
      if (cur.check_grid) push([](Scenario& c) { c.check_grid = false; });
    }
    // Bisect the pattern stream from both ends, then peel single patterns.
    if (cur.num_patterns > 1) {
      const std::uint64_t half = cur.num_patterns / 2;
      push([&](Scenario& c) { c.num_patterns -= half; });  // keep front
      push([&](Scenario& c) {                              // keep back
        c.pattern_skip += half;
        c.num_patterns -= half;
      });
      push([](Scenario& c) { c.num_patterns -= 1; });
      push([](Scenario& c) {
        c.pattern_skip += 1;
        c.num_patterns -= 1;
      });
    }
    if (cur.droop) push([](Scenario& c) { c.droop = false; });
    if (cur.flops_scale > 0.3) {
      push([](Scenario& c) { c.flops_scale /= 2.0; });
    }
    if (cur.gates_per_flop > 2.5) {
      push([](Scenario& c) {
        c.gates_per_flop = std::max(2.0, c.gates_per_flop / 2.0);
      });
    }
    if (cur.scan_chains > 1) push([](Scenario& c) { c.scan_chains = 1; });
    if (cur.check_grid) {
      if (cur.grid_nx > 2) {
        push([](Scenario& c) { c.grid_nx = std::max<std::uint64_t>(2, c.grid_nx / 2); });
      }
      if (cur.grid_ny > 2) {
        push([](Scenario& c) { c.grid_ny = std::max<std::uint64_t>(2, c.grid_ny / 2); });
      }
      if (cur.grid_sources > 1) {
        push([](Scenario& c) { c.grid_sources /= 2; });
      }
      if (cur.grid_voids > 0) push([](Scenario& c) { c.grid_voids = 0; });
      if (cur.grid_jitter > 0) push([](Scenario& c) { c.grid_jitter = 0.0; });
      if (cur.grid_solver % 3 == 0) {
        // Isolate which production solver diverges.
        push([](Scenario& c) { c.grid_solver = 1; });
        push([](Scenario& c) { c.grid_solver = 2; });
      }
    }
    if (cur.check_grade && cur.fault_sample > 1) {
      push([](Scenario& c) { c.fault_sample /= 2; });
    }
    if (cur.check_grade && cur.batch_words != 1) {
      push([](Scenario& c) { c.batch_words = 1; });  // simplest grade kernel
    }
    if (cur.fill_mode >= 0 && cur.x_fraction > 0.05) {
      push([](Scenario& c) { c.x_fraction = 0.0; });
    }

    for (const Scenario& c : cands) {
      if (sr.runs >= kMaxRuns) break;
      Divergence d;
      if (diverges(c, &d)) {
        cur = c;
        cd = d;
        progress = true;
        break;
      }
    }
  }

  cur.name = start.name + "_min";
  sr.minimal = std::move(cur);
  sr.divergence = std::move(cd);
  return sr;
}

FuzzStats run_fuzz(const FuzzOptions& opt, std::ostream* log,
                   InjectedBug inject) {
  FuzzStats st;
  for (std::size_t i = 0; i < opt.iterations; ++i) {
    const std::uint64_t seed = opt.seed + i;
    const Scenario sc = Scenario::random(seed);
    const ScenarioResult r = run_scenario(sc, inject);
    ++st.executed;
    if (r.ok()) {
      if (log && (i + 1) % 50 == 0) {
        *log << "[scap_fuzz] " << (i + 1) << "/" << opt.iterations
             << " scenarios clean\n";
      }
      continue;
    }

    FailureReport fr;
    fr.seed = seed;
    fr.divergence = r.divergences.front();
    fr.scenario = sc;
    if (log) {
      *log << "[scap_fuzz] seed " << seed << " DIVERGED (" << r.divergences.size()
           << " divergence(s)); first: [" << fr.divergence.oracle << "] "
           << fr.divergence.detail << "\n";
    }
    if (opt.shrink) {
      ShrinkResult s = shrink_scenario(sc, inject);
      fr.scenario = std::move(s.minimal);
      fr.divergence = std::move(s.divergence);
      if (log) {
        *log << "[scap_fuzz] shrunk in " << s.runs << " runs to "
             << fr.scenario.num_patterns << " pattern(s), checks sim="
             << fr.scenario.check_sim << " scap=" << fr.scenario.check_scap
             << " grade=" << fr.scenario.check_grade
             << " grid=" << fr.scenario.check_grid << "\n";
      }
    }
    if (!opt.corpus_dir.empty()) {
      fr.corpus_path =
          opt.corpus_dir + "/" + fr.scenario.name + ".scenario";
      std::ofstream os(fr.corpus_path);
      if (os) {
        os << "# repro written by scap_fuzz (campaign seed "
           << std::to_string(opt.seed) << ", scenario seed "
           << std::to_string(seed) << ")\n"
           << "# first divergence: [" << fr.divergence.oracle << "] "
           << fr.divergence.detail << "\n"
           << fr.scenario.serialize();
        if (log) *log << "[scap_fuzz] repro written to " << fr.corpus_path << "\n";
      } else if (log) {
        *log << "[scap_fuzz] FAILED to write repro to " << fr.corpus_path << "\n";
      }
    }
    st.failures.push_back(std::move(fr));
    if (st.failures.size() >= opt.max_failures) break;
  }
  return st;
}

bool run_self_test(std::ostream* log, std::size_t max_repro_patterns) {
  constexpr InjectedBug kBugs[] = {InjectedBug::kStwWindowOffByOne,
                                   InjectedBug::kDropLastToggle,
                                   InjectedBug::kGradeOffByOne};
  bool ok = true;
  for (const InjectedBug bug : kBugs) {
    const char* bug_name = injected_bug_name(bug);
    bool found = false;
    for (std::uint64_t seed = 1; seed <= 20 && !found; ++seed) {
      Scenario sc = Scenario::random(seed);
      // The injections live in the sim/scap/grade paths; make sure all three
      // oracles are armed regardless of the random draw.
      sc.check_sim = sc.check_scap = sc.check_grade = true;
      if (!run_scenario(sc, InjectedBug::kNone).ok()) {
        if (log) {
          *log << "[self-test] seed " << seed
               << " diverges without an injected bug -- real divergence?\n";
        }
        ok = false;
        break;
      }
      const ScenarioResult r = run_scenario(sc, bug);
      if (r.ok()) continue;  // this draw never tickles the bug; next seed
      found = true;

      const ShrinkResult s = shrink_scenario(sc, bug);
      if (s.divergence.oracle.empty()) {
        if (log) {
          *log << "[self-test] " << bug_name
               << ": shrink lost the divergence\n";
        }
        ok = false;
      } else if (s.minimal.num_patterns > max_repro_patterns) {
        if (log) {
          *log << "[self-test] " << bug_name << ": shrunk repro still has "
               << s.minimal.num_patterns << " patterns (want <= "
               << max_repro_patterns << ")\n";
        }
        ok = false;
      } else if (log) {
        *log << "[self-test] " << bug_name << ": caught at seed " << seed
             << ", shrunk to " << s.minimal.num_patterns << " pattern(s) in "
             << s.runs << " runs ([" << s.divergence.oracle << "] "
             << s.divergence.detail << ")\n";
      }
    }
    if (!found && ok) {
      if (log) {
        *log << "[self-test] " << bug_name
             << ": no scenario tickled the injected bug\n";
      }
      ok = false;
    }
  }
  return ok;
}

}  // namespace scap::ref
