// Tolerance-aware comparators between optimized kernels and their naive
// reference oracles (src/ref/ref_models.h).
//
// Tolerance policy, in one place instead of ad-hoc epsilons per test:
//  - Energies (SCAP sums): the optimized accumulators sum doubles in commit
//    order while the references Kahan-sum the same toggles, so the results
//    differ only by plain-summation rounding, bounded by ~n_toggles * eps *
//    total. kEnergyRelTol = 1e-9 is ~1e3x that bound for the largest traces
//    the fuzzer generates, yet still catches any real accounting bug (one
//    mis-attributed toggle shifts a block sum by >= one full toggle energy).
//  - Switching time windows: the optimized path keeps first/last commit times
//    in double, while the reference recomputes the window from the recorded
//    toggle list, whose timestamps are floats -- a deliberate re-derivation,
//    not a copy. Float quantization is ~1e-7 *of the timestamps*, and the
//    window is a difference of two timestamps -- so the error is absolute in
//    the timestamp magnitude (up to ~1e-5 ns for 100 ns commits) even when
//    the window itself is near zero. Hence both a relative term (1e-6) and
//    an absolute floor kStwAbsTolNs = 1e-4 ns; the self-test's injected
//    0.05 ns window bug sits 500x above the floor.
//  - Grid node voltages: both solvers iterate to a finite update-delta, not
//    to the exact solution, so errors up to ~delta / (1 - rho) survive on
//    each side. kGridRelTol/kGridAbsTolV bound the node-wise disagreement of
//    two honest solvers; indexing or stamping bugs produce errors orders of
//    magnitude larger.
//  - Traces and fault grades are discrete and compare exactly.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "power/power_grid.h"
#include "sim/event_sim.h"
#include "sim/scap.h"

namespace scap::ref {

inline constexpr double kEnergyRelTol = 1e-9;
inline constexpr double kStwRelTol = 1e-6;
inline constexpr double kStwAbsTolNs = 1e-4;
inline constexpr double kGridRelTol = 1e-3;
inline constexpr double kGridAbsTolV = 1e-5;
inline constexpr double kDefaultAbsTol = 1e-12;

/// Symmetric relative comparison with an absolute floor:
///   |a - b| <= max(abs, rel * max(|a|, |b|)).
inline bool close_enough(double a, double b, double rel = kEnergyRelTol,
                         double abs = kDefaultAbsTol) {
  const double diff = std::fabs(a - b);
  const double scale = std::fmax(std::fabs(a), std::fabs(b));
  return diff <= std::fmax(abs, rel * scale);
}

/// One optimized-vs-reference mismatch, with enough context to debug it.
struct Divergence {
  std::string oracle;  ///< "eventsim" | "scap" | "grade" | "grid"
  std::string detail;  ///< human-readable what/where/by-how-much
  std::size_t pattern = static_cast<std::size_t>(-1);  ///< index, if per-pattern
};

/// Exact comparison of two simulation traces (toggle-by-toggle, stats
/// included). Returns true when identical; otherwise fills `why`.
bool compare_traces(const SimTrace& optimized, const SimTrace& reference,
                    std::string* why);

/// SCAP reports: exact toggle counts, tolerance-aware windows and energies.
bool compare_scap(const ScapReport& optimized, const ScapReport& reference,
                  std::string* why);

/// First-detect indices from fault grading (exact; kUndetected included).
bool compare_grade(std::span<const std::size_t> optimized,
                   std::span<const std::size_t> reference, std::string* why);

/// Grid solutions: node-wise within kGridRelTol/kGridAbsTolV (overridable).
bool compare_grid(const GridSolution& optimized, const GridSolution& reference,
                  std::string* why, double rel = kGridRelTol,
                  double abs = kGridAbsTolV);

}  // namespace scap::ref
