// Differential fuzzing harness: run Scenario recipes through the optimized
// kernels and their src/ref oracles, diff the results, and greedily shrink
// any divergence to a minimal committed repro.
//
// The three layers compose:
//   run_scenario   -- one scenario, one verdict (list of divergences);
//   shrink_scenario-- divergence-preserving minimization of one scenario;
//   run_fuzz       -- a seeded campaign of random scenarios, shrinking and
//                     serializing each failure to a corpus directory.
// run_self_test proves the harness end to end by injecting known bugs into
// the optimized side and checking each is caught and shrunk to a tiny repro.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "atpg/context.h"
#include "atpg/pattern.h"
#include "ref/compare.h"
#include "ref/scenario.h"
#include "soc/generator.h"

namespace scap::ref {

/// The materialized front half of run_scenario: the SOC, test context and
/// pattern list a Scenario recipe decodes to. Exported so other harnesses
/// (the dataflow calibration tests, notably) can replay corpus scenarios
/// against different engines without duplicating the recipe decoding.
struct ScenarioSetup {
  TechLibrary lib;
  SocDesign soc;
  TestContext ctx;
  std::vector<Pattern> patterns;
};

ScenarioSetup materialize_scenario(const Scenario& sc);

/// Deliberate defects injected into the *optimized* side of the comparison
/// (never into the references), used by the self-test to prove the harness
/// detects and shrinks real bugs.
enum class InjectedBug : std::uint8_t {
  kNone,
  kStwWindowOffByOne,  ///< SCAP switching window stretched by ~one gate delay
  kDropLastToggle,     ///< trace loses its final toggle
  kGradeOffByOne,      ///< every first-detect pattern index shifted by one
};

const char* injected_bug_name(InjectedBug b);

struct ScenarioResult {
  std::vector<Divergence> divergences;  ///< empty = all enabled oracles agree
  bool ok() const { return divergences.empty(); }
};

/// Run one scenario end to end: build the SOC, run every enabled
/// optimized-vs-reference pair, and collect divergences (engine exceptions
/// are reported as an "exception" divergence rather than thrown).
ScenarioResult run_scenario(const Scenario& sc,
                            InjectedBug inject = InjectedBug::kNone);

struct ShrinkResult {
  Scenario minimal;
  Divergence divergence;  ///< first divergence of the minimal scenario
  std::size_t runs = 0;   ///< scenario executions spent
};

/// Greedy divergence-preserving minimization: repeatedly try to disable
/// checks, drop patterns, zero the droop, and halve the SOC / mesh / fault
/// sample, keeping each mutation only if the scenario still diverges.
ShrinkResult shrink_scenario(const Scenario& sc,
                             InjectedBug inject = InjectedBug::kNone);

struct FuzzOptions {
  std::size_t iterations = 100;
  std::uint64_t seed = 1;
  std::string corpus_dir;  ///< where shrunk repros land; empty = don't write
  bool shrink = true;
  std::size_t max_failures = 1;  ///< stop the campaign after this many
};

struct FailureReport {
  Scenario scenario;  ///< shrunk (original when shrinking is disabled)
  Divergence divergence;
  std::uint64_t seed = 0;    ///< fuzz seed that produced the failure
  std::string corpus_path;   ///< repro file written, if any
};

struct FuzzStats {
  std::size_t executed = 0;  ///< scenarios run (shrinking excluded)
  std::vector<FailureReport> failures;
  bool ok() const { return failures.empty(); }
};

/// Seeded fuzz campaign over Scenario::random(seed + i).
FuzzStats run_fuzz(const FuzzOptions& opt, std::ostream* log = nullptr,
                   InjectedBug inject = InjectedBug::kNone);

/// Harness self-test: for each InjectedBug, find a scenario that is clean
/// without the bug, diverges with it, and shrinks to a repro of at most
/// `max_repro_patterns` patterns. Returns true when every bug passes.
bool run_self_test(std::ostream* log = nullptr,
                   std::size_t max_repro_patterns = 3);

}  // namespace scap::ref
