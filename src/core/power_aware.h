// The paper's power-aware pattern-generation procedure (Section 3.1).
//
// Rather than modifying the ATPG, the flow wraps it: transition-fault ATPG
// for the dominant clock domain is split into steps, each step handing the
// tool only the fault list of a subset of blocks while don't-care scan cells
// are filled with a quiet value (fill-0). Untargeted blocks therefore carry
// almost no switching activity while other blocks are being tested, which is
// what pulls per-pattern SCAP under the block thresholds (Figure 6) at the
// cost of a modest pattern-count increase (Figure 4).
//
// run_conventional_atpg is the baseline: one step, every block targeted,
// random-fill -- the default behaviour of the commercial tool.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "atpg/context.h"
#include "atpg/engine.h"
#include "atpg/fault.h"
#include "netlist/netlist.h"

namespace scap {

struct StepPlan {
  struct Step {
    /// Per-block targeting mask (1 = target faults of this block).
    std::vector<std::uint8_t> target_blocks;
    /// Per-block care-bit budget for this step (1.0 = unlimited). The hot
    /// block's step uses a tight budget so the greedy ATPG cannot pack
    /// enough faults into one pattern to blow the SCAP threshold -- the
    /// per-pattern fault-count limit the paper asks for in Section 3.1.
    double max_block_care_fraction = 1.0;
  };
  std::vector<Step> steps;

  /// The paper's 3-step plan: Step1 = B1..B4 (least IR-drop), Step2 = B6,
  /// Step3 = B5 (the power-hungry central block, isolated last, throttled).
  static StepPlan paper_default(std::size_t num_blocks,
                                double hot_step_care_fraction = 0.04);
};

struct FlowResult {
  PatternSet patterns;
  AtpgStats stats;  ///< across the full fault list after all steps
  std::vector<std::size_t> new_detects_per_pattern;
  std::vector<std::size_t> care_bits_per_pattern;
  /// Pattern index at which each step starts (size = number of steps).
  std::vector<std::size_t> step_start;

  /// Cumulative coverage curve (fraction of total faults after pattern i).
  std::vector<double> coverage_curve() const;
};

FlowResult run_power_aware_atpg(const Netlist& nl, const TestContext& ctx,
                                std::span<const TdfFault> faults,
                                const StepPlan& plan, AtpgOptions base);

FlowResult run_conventional_atpg(const Netlist& nl, const TestContext& ctx,
                                 std::span<const TdfFault> faults,
                                 AtpgOptions base);

}  // namespace scap
