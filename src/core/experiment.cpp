#include "core/experiment.h"

#include <stdexcept>

#include "lint/lint.h"
#include "obs/trace.h"

namespace scap {

Experiment Experiment::standard(double scale, std::uint64_t seed) {
  SCAP_TRACE_SCOPE("experiment.build");
  SocConfig cfg = SocConfig::turbo_eagle_scaled(scale);
  cfg.seed = seed;
  const TechLibrary& lib = TechLibrary::generic180();
  SocDesign soc = build_soc(cfg, lib);

  TestContext ctx = TestContext::for_domain(soc.netlist, /*domain=*/0);

  // Static lint of the generated design (netlist + stitched scan chains +
  // test context, which lets the dataflow rules account for held-PI
  // constants). Feeds the obs registry ("lint.findings", "lint.rule.<id>"),
  // so every BENCH_*.json artifact records the design's lint profile; a
  // generator regression that produces an error-severity finding fails
  // loudly here.
  {
    lint::LintInput lin;
    lin.netlist = &soc.netlist;
    lin.scan_chains = soc.scan.chains;
    lin.ctx = &ctx;
    const lint::LintReport lrep = lint::run(lin);
    if (lrep.has_errors()) {
      throw std::runtime_error("Experiment::standard: generated SOC fails lint (" +
                               std::to_string(lrep.errors) + " error(s))");
    }
  }

  std::vector<TdfFault> all = enumerate_faults(soc.netlist);
  std::vector<TdfFault> collapsed = collapse_faults(soc.netlist, all);

  StatisticalOptions case1;
  case1.window_fraction = 1.0;
  StatisticalOptions case2;
  case2.window_fraction = 0.5;

  // Calibrate the rail network so the functional (Case1) statistical worst
  // IR-drop sits at the paper's few-percent-of-VDD regime. A scaled design
  // draws proportionally less current; physically, its rails would also be
  // proportionally narrower, so the per-segment resistance is scaled until
  // the functional drop hits the target (the solve is linear in both the
  // injected currents and the mesh resistance).
  constexpr double kTargetFunctionalDropFraction = 0.055;
  PowerGridOptions grid_opt;
  PowerGrid grid(soc.floorplan, grid_opt);
  StatisticalReport rep1 = analyze_statistical(
      soc.netlist, soc.placement, soc.parasitics, lib, soc.floorplan, grid,
      soc.config.domain_freq_mhz, &soc.clock_tree, case1);
  const double target_v = kTargetFunctionalDropFraction * lib.vdd();
  if (rep1.chip_worst_vdd_v > 1e-9) {
    const double factor = target_v / rep1.chip_worst_vdd_v;
    // Scale the mesh only; pads stay firmly clamped, which keeps the spatial
    // gradient sharp (the paper's Figure 3 maps are red over B5 and quiet at
    // the periphery).
    grid_opt.segment_res_ohm *= factor;
    grid = PowerGrid(soc.floorplan, grid_opt);
    rep1 = analyze_statistical(soc.netlist, soc.placement, soc.parasitics,
                               lib, soc.floorplan, grid,
                               soc.config.domain_freq_mhz, &soc.clock_tree,
                               case1);
  }
  StatisticalReport rep2 = analyze_statistical(
      soc.netlist, soc.placement, soc.parasitics, lib, soc.floorplan, grid,
      soc.config.domain_freq_mhz, &soc.clock_tree, case2);
  ScapThresholds thr = ScapThresholds::from_statistical(rep2);

  return Experiment{std::move(soc), &lib,           std::move(grid),
                    std::move(ctx), std::move(all), std::move(collapsed),
                    std::move(rep1), std::move(rep2), std::move(thr)};
}

}  // namespace scap
