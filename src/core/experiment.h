// Canonical experiment fixture shared by the benchmark binaries and the
// examples: the scaled Turbo-Eagle-like SOC, its power grid, the dominant
// clock-domain (clka) test context, the collapsed transition-fault list and
// the statistical IR-drop analyses (Case1: full cycle, Case2: half cycle)
// from which the SCAP thresholds derive.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "atpg/context.h"
#include "atpg/fault.h"
#include "core/thresholds.h"
#include "netlist/tech_library.h"
#include "power/power_grid.h"
#include "power/statistical.h"
#include "soc/generator.h"

namespace scap {

struct Experiment {
  SocDesign soc;
  const TechLibrary* lib;
  PowerGrid grid;
  TestContext ctx;  ///< dominant domain (clka)
  std::vector<TdfFault> all_faults;        ///< uncollapsed universe
  std::vector<TdfFault> faults;            ///< collapsed ATPG list
  StatisticalReport stat_case1;
  StatisticalReport stat_case2;
  ScapThresholds thresholds;

  /// B5's index in the block arrays (the paper's hot block).
  static constexpr std::size_t kHotBlock = 4;

  /// Build the standard experiment at the given scale. scale=0.08 yields a
  /// design that runs every bench in seconds; raise it to stress-test.
  static Experiment standard(double scale = 0.08, std::uint64_t seed = 2007);
};

}  // namespace scap
