// Per-pattern launch-to-capture analysis pipeline.
//
// Chains the engines exactly the way the paper's Figure 5 flow does:
// scan state -> zero-delay frame-1 settle -> launch stimuli at per-flop clock
// arrivals -> event-driven timing simulation -> toggle trace -> SCAP report.
// Optionally the delay model and the clock arrivals are derated by a voltage
// map (the Section 3.2 "simulation with IR-drop effects").
#pragma once

#include <span>
#include <vector>

#include "atpg/context.h"
#include "atpg/pattern.h"
#include "netlist/tech_library.h"
#include "sim/event_sim.h"
#include "sim/logic_sim.h"
#include "sim/scap.h"
#include "soc/generator.h"

namespace scap {

struct PatternAnalysis {
  SimTrace trace;
  ScapReport scap;
  std::vector<std::uint8_t> frame1_nets;  ///< settled pre-launch net values
  std::size_t launched_flops = 0;         ///< flops that toggled at launch
};

class PatternAnalyzer {
 public:
  PatternAnalyzer(const SocDesign& soc, const TechLibrary& lib);

  /// Analyze one pattern. `delay_model` overrides the nominal model (pass a
  /// droop-derated one for IR-aware simulation); `clock_arrivals` overrides
  /// the nominal per-flop launch-clock arrivals.
  PatternAnalysis analyze(const TestContext& ctx, const Pattern& pattern,
                          const DelayModel* delay_model = nullptr,
                          std::span<const double> clock_arrivals = {}) const;

  /// Endpoint path delay per flop: last D-pin transition relative to the
  /// flop's own clock arrival (the paper's Figure 7 measurement). Inactive
  /// endpoints (no transition observed) report 0.
  std::vector<double> endpoint_delays(const SimTrace& trace,
                                      std::span<const double> clock_arrivals) const;

  const DelayModel& nominal_delays() const { return nominal_dm_; }
  const ScapCalculator& scap_calculator() const { return scap_; }

 private:
  const SocDesign* soc_;
  const TechLibrary* lib_;
  LogicSim logic_;
  DelayModel nominal_dm_;
  ScapCalculator scap_;
};

}  // namespace scap
