// Per-pattern launch-to-capture analysis pipeline.
//
// Chains the engines exactly the way the paper's Figure 5 flow does:
// scan state -> zero-delay frame-1 settle -> launch stimuli at per-flop clock
// arrivals -> event-driven timing simulation -> streaming toggle sinks ->
// SCAP / IR / settle reports. Optionally the delay model and the clock
// arrivals are derated by a voltage map (the Section 3.2 "simulation with
// IR-drop effects").
//
// One PatternAnalyzer owns a warm EventSim::Workspace plus reusable frame-1 /
// stimulus / SCAP-report buffers, so screening a pattern stream through
// analyze_scap()/analyze_into() is allocation-free in steady state. A single
// instance must therefore not be used from two threads concurrently; shard
// the pattern set over thread-private analyzers instead (see
// scap_profile_patterns).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "atpg/context.h"
#include "atpg/pattern.h"
#include "lint/static_power.h"
#include "netlist/tech_library.h"
#include "sim/event_sim.h"
#include "sim/logic_sim.h"
#include "sim/scap.h"
#include "soc/generator.h"

namespace scap {

struct PatternAnalysis {
  SimTrace trace;
  ScapReport scap;
  std::vector<std::uint8_t> frame1_nets;  ///< settled pre-launch net values
  std::size_t launched_flops = 0;         ///< flops that toggled at launch
};

class PatternAnalyzer {
 public:
  /// Immutable per-design analysis tables: the nominal delay model and the
  /// SCAP calculator, the two expensive per-net/per-gate precomputations an
  /// analyzer needs. They are read-only after construction, so sharded
  /// screens build them once and hand every thread-private analyzer the same
  /// instance instead of recomputing them per shard (see
  /// scap_profile_patterns / serve::WorkspacePool).
  struct SharedTables {
    DelayModel dm;
    ScapCalculator scap;
    SharedTables(const SocDesign& soc, const TechLibrary& lib)
        : dm(soc.netlist, lib, soc.parasitics),
          scap(soc.netlist, soc.parasitics, lib) {}
    static std::shared_ptr<const SharedTables> build(const SocDesign& soc,
                                                     const TechLibrary& lib) {
      return std::make_shared<const SharedTables>(soc, lib);
    }
  };

  PatternAnalyzer(const SocDesign& soc, const TechLibrary& lib);

  /// Share prebuilt tables (must have been built from the same soc/lib).
  PatternAnalyzer(const SocDesign& soc, const TechLibrary& lib,
                  std::shared_ptr<const SharedTables> tables);

  /// Analyze one pattern, materializing the trace and SCAP report (the
  /// back-compat bundle). `delay_model` overrides the nominal model (pass a
  /// droop-derated one for IR-aware simulation); `clock_arrivals` overrides
  /// the nominal per-flop launch-clock arrivals.
  PatternAnalysis analyze(const TestContext& ctx, const Pattern& pattern,
                          const DelayModel* delay_model = nullptr,
                          std::span<const double> clock_arrivals = {}) const;

  /// Streaming core: settle frame 1, build the launch stimuli and run the
  /// timing simulation, pushing every toggle into `sink`. The settled
  /// pre-launch state stays readable via frame1() until the next analysis.
  /// Returns the number of launched flops.
  std::size_t analyze_into(const TestContext& ctx, const Pattern& pattern,
                           ToggleSink& sink,
                           const DelayModel* delay_model = nullptr,
                           std::span<const double> clock_arrivals = {}) const;

  /// SCAP-only screening path (Figures 2 & 6 profiling): one simulation pass
  /// into the internal accumulator, zero steady-state allocations. The
  /// returned reference is valid until the next analyze_scap() call.
  const ScapReport& analyze_scap(const TestContext& ctx,
                                 const Pattern& pattern) const;

  /// Tier-1 static screen: a sound per-block SCAP *upper bound* from the
  /// pattern bits alone -- no event simulation (lint/static_power.h). A
  /// pattern whose bound clears every threshold provably cannot violate, so
  /// only the remainder needs analyze_scap (see scap_screen_patterns). The
  /// returned reference is valid until the next screen_static() call.
  const lint::StaticScapBound& screen_static(const TestContext& ctx,
                                             const Pattern& pattern) const;

  /// The lazily-built static model behind screen_static (same per-net toggle
  /// energies as the exact calculator, nominal clock arrivals, min nominal
  /// gate delays).
  const lint::StaticScapModel& static_model() const;

  /// Endpoint path delay per flop: last D-pin transition relative to the
  /// flop's own clock arrival (the paper's Figure 7 measurement). Inactive
  /// endpoints (no transition observed) report 0.
  std::vector<double> endpoint_delays(const SimTrace& trace,
                                      std::span<const double> clock_arrivals) const;

  /// Same, over per-net settle times already captured by a SettleTimeTracker.
  std::vector<double> endpoint_delays_from_settle(
      std::span<const double> settle,
      std::span<const double> clock_arrivals) const;

  /// Settled frame-1 net values of the most recent analysis.
  std::span<const std::uint8_t> frame1() const { return frame1_; }

  /// Launch stimuli of the most recent analysis (flop Q flips at their clock
  /// arrivals). Together with frame1() this is the oracle hook the
  /// differential harness (src/ref) uses to replay the exact same simulation
  /// input through the reference engine.
  std::span<const Stimulus> stimuli() const { return stimuli_; }

  const DelayModel& nominal_delays() const { return tables_->dm; }
  const ScapCalculator& scap_calculator() const { return tables_->scap; }
  std::shared_ptr<const SharedTables> shared_tables() const { return tables_; }
  const EventSim::Workspace& workspace() const { return ws_; }

 private:
  /// Fill frame1_ / stimuli_ for this pattern; returns launched flop count.
  std::size_t build_launch(const TestContext& ctx, const Pattern& pattern,
                           std::span<const double> clock_arrivals) const;

  const SocDesign* soc_;
  const TechLibrary* lib_;
  LogicSim logic_;
  std::shared_ptr<const SharedTables> tables_;

  // Reusable per-pattern scratch (capacity persists across analyses).
  mutable EventSim::Workspace ws_;
  mutable std::vector<std::uint8_t> frame1_;
  mutable std::vector<Stimulus> stimuli_;
  mutable ScapAccumulator scap_acc_;
  mutable TraceRecorder recorder_;
  mutable std::unique_ptr<lint::StaticScapModel> static_model_;
};

}  // namespace scap
