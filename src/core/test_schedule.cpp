#include "core/test_schedule.h"

#include <algorithm>

namespace scap {

double serial_time_us(std::span<const TestSession> sessions) {
  double t = 0.0;
  for (const TestSession& s : sessions) t += s.time_us;
  return t;
}

TestSchedule schedule_tests(std::span<const TestSession> sessions,
                            double power_budget_mw) {
  TestSchedule out;

  // Pending sessions, longest first (LPT-style greedy).
  std::vector<std::size_t> pending(sessions.size());
  for (std::size_t i = 0; i < pending.size(); ++i) pending[i] = i;
  std::sort(pending.begin(), pending.end(), [&](std::size_t a, std::size_t b) {
    return sessions[a].time_us > sessions[b].time_us;
  });

  struct Running {
    std::size_t session;
    double end_us;
  };
  std::vector<Running> running;
  double now = 0.0;
  double used_mw = 0.0;

  auto try_start = [&]() {
    for (auto it = pending.begin(); it != pending.end();) {
      const TestSession& s = sessions[*it];
      const bool oversized = s.power_mw > power_budget_mw;
      if (oversized && !running.empty()) {
        // An over-budget session can only run alone.
        ++it;
        continue;
      }
      if (!oversized && used_mw + s.power_mw > power_budget_mw) {
        ++it;
        continue;
      }
      out.budget_exceeded |= oversized;
      out.items.push_back(ScheduledSession{*it, now});
      running.push_back(Running{*it, now + s.time_us});
      used_mw += s.power_mw;
      out.peak_power_mw = std::max(out.peak_power_mw, used_mw);
      it = pending.erase(it);
      if (oversized) break;  // nothing may join it
    }
  };

  try_start();
  while (!running.empty()) {
    // Advance to the earliest completion.
    auto next = std::min_element(
        running.begin(), running.end(),
        [](const Running& a, const Running& b) { return a.end_us < b.end_us; });
    now = next->end_us;
    used_mw -= sessions[next->session].power_mw;
    running.erase(next);
    out.makespan_us = std::max(out.makespan_us, now);
    try_start();
  }
  return out;
}

}  // namespace scap
