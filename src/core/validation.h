// Pattern validation (paper Section 3.2).
//
// Two services:
//  - scap_profile: the bulk screen -- per-pattern SCAP reports for a whole
//    pattern set (the data behind Figures 2 and 6).
//  - validate_pattern_ir: the expensive two-simulation debug flow for one
//    suspect pattern -- nominal timing simulation, dynamic IR-drop analysis
//    of its toggle trace, then a re-simulation with every cell delay scaled
//    by its local droop (ScaledCellDelay = Delay * (1 + k_volt * dV)) and
//    clock-buffer delays scaled the same way, producing the per-endpoint
//    delay comparison of Figure 7.
#pragma once

#include <span>
#include <vector>

#include "atpg/context.h"
#include "atpg/engine.h"
#include "core/thresholds.h"
#include "atpg/pattern.h"
#include "core/pattern_sim.h"
#include "netlist/tech_library.h"
#include "power/dynamic_ir.h"
#include "power/power_grid.h"
#include "soc/generator.h"

namespace scap {

/// Per-pattern SCAP reports for the whole set (in pattern order).
std::vector<ScapReport> scap_profile(const SocDesign& soc,
                                     const TechLibrary& lib,
                                     const TestContext& ctx,
                                     const PatternSet& patterns);

/// Span form of scap_profile, shared with the repair flow: analyzes every
/// pattern (timing sim -> toggle trace -> SCAP) fanned out across the rt
/// pool, one shard of patterns per task with a shard-private PatternAnalyzer.
/// Report i depends only on pattern i, so the output is bit-identical at any
/// SCAP_THREADS.
std::vector<ScapReport> scap_profile_patterns(const SocDesign& soc,
                                              const TechLibrary& lib,
                                              const TestContext& ctx,
                                              std::span<const Pattern> patterns);

/// Two-tier threshold screen. Tier 1 bounds every pattern's hot-block SCAP
/// statically (PatternAnalyzer::screen_static -- no event simulation); only
/// patterns whose *bound* exceeds the threshold are event-simulated for the
/// exact verdict. Because the bound is sound (bound <= threshold implies
/// exact <= threshold), the verdicts are identical to exactly screening every
/// pattern, and bit-identical at any SCAP_THREADS; the statically-cleared
/// majority just never pays for a simulation.
struct ScapScreenResult {
  std::vector<std::uint8_t> violates;  ///< exact per-pattern verdicts
  std::size_t statically_clean = 0;    ///< tier-1 proven clean (sim skipped)
  std::size_t event_simmed = 0;        ///< tier-2 exact screens run

  std::size_t count_violations() const {
    std::size_t n = 0;
    for (auto v : violates) n += v;
    return n;
  }
};

ScapScreenResult scap_screen_patterns(const SocDesign& soc,
                                      const TechLibrary& lib,
                                      const TestContext& ctx,
                                      std::span<const Pattern> patterns,
                                      const ScapThresholds& thresholds,
                                      std::size_t hot_block);

struct IrValidationResult {
  PatternAnalysis nominal;
  DynamicIrReport ir;
  PatternAnalysis scaled;
  std::vector<double> nominal_arrival_ns;  ///< per-flop clock arrivals
  std::vector<double> scaled_arrival_ns;
  std::vector<double> nominal_endpoint_ns;  ///< per-flop path delays
  std::vector<double> scaled_endpoint_ns;
};

IrValidationResult validate_pattern_ir(const SocDesign& soc,
                                       const TechLibrary& lib,
                                       const PowerGrid& grid,
                                       const TestContext& ctx,
                                       const Pattern& pattern);

/// Identify-and-replace repair loop: drop every pattern whose SCAP violates
/// the hot block's threshold, then regenerate coverage for the faults those
/// patterns uniquely detected using a throttled, quiet-filled ATPG pass.
/// Tightens the care budget each round until the set is clean or
/// `max_rounds` is exhausted (reference [18]'s verify-and-fix flow, closed
/// into a loop).
struct RepairResult {
  PatternSet patterns;
  std::size_t patterns_before = 0;
  std::size_t patterns_after = 0;
  std::size_t violations_before = 0;
  std::size_t violations_after = 0;
  std::size_t detected_before = 0;
  std::size_t detected_after = 0;
  std::size_t rounds = 0;
};

RepairResult repair_scap_violations(const SocDesign& soc,
                                    const TechLibrary& lib,
                                    const TestContext& ctx,
                                    std::span<const TdfFault> faults,
                                    const PatternSet& patterns,
                                    const ScapThresholds& thresholds,
                                    std::size_t hot_block, AtpgOptions opt,
                                    std::size_t max_rounds = 3);

}  // namespace scap
