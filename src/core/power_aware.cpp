#include "core/power_aware.h"

#include <algorithm>

#include "lint/lint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace scap {

StepPlan StepPlan::paper_default(std::size_t num_blocks,
                                 double hot_step_care_fraction) {
  StepPlan plan;
  auto mask = [&](std::initializer_list<std::size_t> blocks) {
    std::vector<std::uint8_t> m(num_blocks, 0);
    for (std::size_t b : blocks) {
      if (b < num_blocks) m[b] = 1;
    }
    return m;
  };
  // Blocks are 0-indexed: B1..B4 = 0..3, B5 = 4, B6 = 5.
  plan.steps.push_back(Step{mask({0, 1, 2, 3}), 1.0});
  plan.steps.push_back(Step{mask({5}), 1.0});
  plan.steps.push_back(Step{mask({4}), hot_step_care_fraction});
  return plan;
}

std::vector<double> FlowResult::coverage_curve() const {
  std::vector<double> curve(new_detects_per_pattern.size());
  std::size_t cum = 0;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    cum += new_detects_per_pattern[i];
    curve[i] = stats.total_faults
                   ? static_cast<double>(cum) / static_cast<double>(stats.total_faults)
                   : 0.0;
  }
  return curve;
}

FlowResult run_power_aware_atpg(const Netlist& nl, const TestContext& ctx,
                                std::span<const TdfFault> faults,
                                const StepPlan& plan, AtpgOptions base) {
  SCAP_TRACE_SCOPE("flow.power_aware");
  lint::debug_verify(nl, "run_power_aware_atpg");
  FlowResult out;
  out.patterns.domain = ctx.domain;
  AtpgEngine engine(nl, ctx);
  std::vector<FaultStatus> status(faults.size(), FaultStatus::kUndetected);

  std::uint64_t step_seed = base.seed;
  for (const auto& step : plan.steps) {
    SCAP_TRACE_SCOPE("atpg.step");
    out.step_start.push_back(out.patterns.patterns.size());
    AtpgOptions opt = base;
    opt.target_blocks = step.target_blocks;
    opt.max_block_care_fraction =
        std::min(opt.max_block_care_fraction, step.max_block_care_fraction);
    opt.seed = step_seed++;
    // Previously aborted targets get another chance in their own step.
    for (FaultStatus& s : status) {
      if (s == FaultStatus::kAborted) s = FaultStatus::kUndetected;
    }
    AtpgResult step_res = engine.run(faults, opt, &status);
    // Step-level summary: per-step pattern counts are the paper's Figure 4
    // x-axis; the distributions surface in every metrics artifact.
    obs::count("flow.steps");
    obs::count("flow.step_patterns_total", step_res.patterns.size());
    obs::observe("flow.step_patterns",
                 static_cast<double>(step_res.patterns.size()));
    obs::observe("flow.step_coverage", step_res.stats.fault_coverage());
    for (auto& p : step_res.patterns.patterns) {
      out.patterns.patterns.push_back(std::move(p));
    }
    out.new_detects_per_pattern.insert(out.new_detects_per_pattern.end(),
                                       step_res.new_detects_per_pattern.begin(),
                                       step_res.new_detects_per_pattern.end());
    out.care_bits_per_pattern.insert(out.care_bits_per_pattern.end(),
                                     step_res.care_bits_per_pattern.begin(),
                                     step_res.care_bits_per_pattern.end());
    out.stats = step_res.stats;  // cumulative: status threads through
  }
  return out;
}

FlowResult run_conventional_atpg(const Netlist& nl, const TestContext& ctx,
                                 std::span<const TdfFault> faults,
                                 AtpgOptions base) {
  SCAP_TRACE_SCOPE("flow.conventional");
  lint::debug_verify(nl, "run_conventional_atpg");
  FlowResult out;
  out.patterns.domain = ctx.domain;
  AtpgEngine engine(nl, ctx);
  std::vector<FaultStatus> status(faults.size(), FaultStatus::kUndetected);
  AtpgResult res = engine.run(faults, base, &status);
  out.patterns = std::move(res.patterns);
  out.new_detects_per_pattern = std::move(res.new_detects_per_pattern);
  out.care_bits_per_pattern = std::move(res.care_bits_per_pattern);
  out.stats = res.stats;
  out.step_start = {0};
  return out;
}

}  // namespace scap
