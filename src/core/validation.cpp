#include "core/validation.h"

#include "atpg/fault_sim.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace scap {

std::vector<ScapReport> scap_profile(const SocDesign& soc,
                                     const TechLibrary& lib,
                                     const TestContext& ctx,
                                     const PatternSet& patterns) {
  SCAP_TRACE_SCOPE("scap.profile");
  obs::count("scap.profiles");
  obs::count("scap.profile_patterns", patterns.size());
  PatternAnalyzer analyzer(soc, lib);
  std::vector<ScapReport> out;
  out.reserve(patterns.size());
  for (const Pattern& p : patterns.patterns) {
    out.push_back(analyzer.analyze(ctx, p).scap);
  }
  return out;
}

IrValidationResult validate_pattern_ir(const SocDesign& soc,
                                       const TechLibrary& lib,
                                       const PowerGrid& grid,
                                       const TestContext& ctx,
                                       const Pattern& pattern) {
  SCAP_TRACE_SCOPE("flow.validate_pattern_ir");
  IrValidationResult out;
  PatternAnalyzer analyzer(soc, lib);

  // Simulation 1: nominal timing; its trace feeds the rail analysis (the
  // paper's VCD -> SOC Encounter step).
  out.nominal = analyzer.analyze(ctx, pattern);
  out.ir = analyze_pattern_ir(soc.netlist, soc.placement, soc.parasitics, lib,
                              soc.floorplan, grid, out.nominal.trace,
                              &soc.clock_tree, ctx.domain);

  // Simulation 2: cell and clock-buffer delays derated by the local droop.
  DelayModel scaled_dm = analyzer.nominal_delays();
  scaled_dm.set_droop(lib, out.ir.gate_droop_v);
  out.nominal_arrival_ns.resize(soc.netlist.num_flops());
  for (FlopId f = 0; f < soc.netlist.num_flops(); ++f) {
    out.nominal_arrival_ns[f] = soc.clock_tree.nominal_arrival_ns(f);
  }
  out.scaled_arrival_ns = soc.clock_tree.arrivals_with_droop(
      lib, [&](Point p) { return out.ir.droop_at(p); });

  out.scaled = analyzer.analyze(ctx, pattern, &scaled_dm, out.scaled_arrival_ns);

  out.nominal_endpoint_ns =
      analyzer.endpoint_delays(out.nominal.trace, out.nominal_arrival_ns);
  out.scaled_endpoint_ns =
      analyzer.endpoint_delays(out.scaled.trace, out.scaled_arrival_ns);
  return out;
}

RepairResult repair_scap_violations(const SocDesign& soc,
                                    const TechLibrary& lib,
                                    const TestContext& ctx,
                                    std::span<const TdfFault> faults,
                                    const PatternSet& patterns,
                                    const ScapThresholds& thresholds,
                                    std::size_t hot_block, AtpgOptions opt,
                                    std::size_t max_rounds) {
  SCAP_TRACE_SCOPE("flow.repair");
  RepairResult out;
  out.patterns.domain = patterns.domain;
  out.patterns_before = patterns.size();

  PatternAnalyzer analyzer(soc, lib);
  FaultSimulator fsim(soc.netlist, ctx);
  {
    const auto before = fsim.grade(patterns.patterns, faults, nullptr);
    for (auto idx : before) {
      out.detected_before += (idx != FaultSimulator::kUndetected);
    }
  }

  // Keep only the clean patterns.
  std::vector<Pattern> kept;
  for (const Pattern& p : patterns.patterns) {
    const ScapReport rep = analyzer.analyze(ctx, p).scap;
    if (thresholds.violates(rep, hot_block)) {
      ++out.violations_before;
    } else {
      kept.push_back(p);
    }
  }

  AtpgEngine engine(soc.netlist, ctx);
  double care_budget = std::min(opt.max_block_care_fraction, 0.08);
  for (out.rounds = 0; out.rounds < max_rounds; ++out.rounds) {
    // Coverage holes left by the dropped / not-yet-generated patterns.
    std::vector<FaultStatus> status(faults.size(), FaultStatus::kUndetected);
    const auto first = fsim.grade(kept, faults, nullptr);
    std::size_t missing = 0;
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (first[i] != FaultSimulator::kUndetected) {
        status[i] = FaultStatus::kDetected;
      } else {
        ++missing;
      }
    }
    if (missing == 0) break;

    AtpgOptions round_opt = opt;
    round_opt.fill = FillMode::kQuiet;
    round_opt.max_block_care_fraction = care_budget;
    round_opt.seed = opt.seed + out.rounds + 1;
    const AtpgResult res = engine.run(faults, round_opt, &status);

    bool any_clean = false;
    for (const Pattern& p : res.patterns.patterns) {
      const ScapReport rep = analyzer.analyze(ctx, p).scap;
      if (!thresholds.violates(rep, hot_block)) {
        kept.push_back(p);
        any_clean = true;
      }
    }
    care_budget *= 0.5;  // tighten for the next round
    if (!any_clean) break;
  }

  out.patterns.patterns = std::move(kept);
  out.patterns_after = out.patterns.patterns.size();
  const auto after = fsim.grade(out.patterns.patterns, faults, nullptr);
  for (auto idx : after) {
    out.detected_after += (idx != FaultSimulator::kUndetected);
  }
  for (const Pattern& p : out.patterns.patterns) {
    const ScapReport rep = analyzer.analyze(ctx, p).scap;
    out.violations_after += thresholds.violates(rep, hot_block) ? 1 : 0;
  }
  return out;
}

}  // namespace scap
