#include "core/validation.h"

#include "atpg/fault_sim.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rt/parallel.h"

namespace scap {

std::vector<ScapReport> scap_profile_patterns(
    const SocDesign& soc, const TechLibrary& lib, const TestContext& ctx,
    std::span<const Pattern> patterns) {
  SCAP_TRACE_SCOPE("scap.profile");
  obs::count("scap.profiles");
  obs::count("scap.profile_patterns", patterns.size());
  std::vector<ScapReport> out(patterns.size());
  const std::size_t threads = rt::concurrency();
  if (threads <= 1 || patterns.size() < 2 ||
      rt::ThreadPool::on_worker_thread()) {
    PatternAnalyzer analyzer(soc, lib);
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      out[i] = analyzer.analyze_scap(ctx, patterns[i]);
    }
    return out;
  }
  // One contiguous pattern shard per thread. The expensive per-design tables
  // (delay model, SCAP calculator) are built once and shared read-only; each
  // shard-private analyzer owns only its warm event workspace, which makes
  // every pattern after its first allocation-free. Shards write only their
  // own slots of `out`, so the result is chunking-independent.
  const auto tables = PatternAnalyzer::SharedTables::build(soc, lib);
  const std::size_t n_shards = std::min(patterns.size(), threads);
  const std::size_t per = (patterns.size() + n_shards - 1) / n_shards;
  rt::ThreadPool::global()->run_chunked(n_shards, [&](std::size_t s) {
    const std::size_t b = s * per;
    const std::size_t e = std::min(patterns.size(), b + per);
    if (b >= e) return;
    PatternAnalyzer analyzer(soc, lib, tables);
    for (std::size_t i = b; i < e; ++i) {
      out[i] = analyzer.analyze_scap(ctx, patterns[i]);
    }
  });
  return out;
}

std::vector<ScapReport> scap_profile(const SocDesign& soc,
                                     const TechLibrary& lib,
                                     const TestContext& ctx,
                                     const PatternSet& patterns) {
  return scap_profile_patterns(soc, lib, ctx, patterns.patterns);
}

ScapScreenResult scap_screen_patterns(const SocDesign& soc,
                                      const TechLibrary& lib,
                                      const TestContext& ctx,
                                      std::span<const Pattern> patterns,
                                      const ScapThresholds& thresholds,
                                      std::size_t hot_block) {
  SCAP_TRACE_SCOPE("scap.screen");
  obs::count("screen.runs");
  obs::count("screen.patterns", patterns.size());
  ScapScreenResult out;
  out.violates.assign(patterns.size(), 0);
  std::vector<std::uint8_t> simmed(patterns.size(), 0);

  const auto screen_range = [&](const PatternAnalyzer& analyzer, std::size_t b,
                                std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const lint::StaticScapBound& bound =
          analyzer.screen_static(ctx, patterns[i]);
      if (bound.block_scap_mw(hot_block) <= thresholds.block_mw[hot_block]) {
        continue;  // bound clears the threshold: provably not a violation
      }
      simmed[i] = 1;
      out.violates[i] = thresholds.violates(
                            analyzer.analyze_scap(ctx, patterns[i]), hot_block)
                            ? 1
                            : 0;
    }
  };

  const std::size_t threads = rt::concurrency();
  if (threads <= 1 || patterns.size() < 2 ||
      rt::ThreadPool::on_worker_thread()) {
    PatternAnalyzer analyzer(soc, lib);
    screen_range(analyzer, 0, patterns.size());
  } else {
    const auto tables = PatternAnalyzer::SharedTables::build(soc, lib);
    const std::size_t n_shards = std::min(patterns.size(), threads);
    const std::size_t per = (patterns.size() + n_shards - 1) / n_shards;
    rt::ThreadPool::global()->run_chunked(n_shards, [&](std::size_t s) {
      const std::size_t b = s * per;
      const std::size_t e = std::min(patterns.size(), b + per);
      if (b >= e) return;
      PatternAnalyzer analyzer(soc, lib, tables);
      screen_range(analyzer, b, e);
    });
  }

  for (auto s : simmed) out.event_simmed += s;
  out.statically_clean = patterns.size() - out.event_simmed;
  obs::count("screen.static.clean", out.statically_clean);
  obs::count("screen.eventsim", out.event_simmed);
  return out;
}

IrValidationResult validate_pattern_ir(const SocDesign& soc,
                                       const TechLibrary& lib,
                                       const PowerGrid& grid,
                                       const TestContext& ctx,
                                       const Pattern& pattern) {
  SCAP_TRACE_SCOPE("flow.validate_pattern_ir");
  IrValidationResult out;
  PatternAnalyzer analyzer(soc, lib);

  // Simulation 1: nominal timing. One streaming pass feeds the trace, the
  // SCAP accounting, the rail-charge bins and the settle times all at once
  // (the paper's Figure-5 PLI tap instead of its VCD -> SOC Encounter step).
  TraceRecorder recorder;
  ScapAccumulator scap_acc(analyzer.scap_calculator(),
                           soc.config.tester_period_ns);
  DynamicIrBinner binner(soc.netlist, soc.parasitics, lib);
  SettleTimeTracker settle;
  FanoutSink nominal_sinks{&recorder, &scap_acc, &binner, &settle};
  out.nominal.launched_flops =
      analyzer.analyze_into(ctx, pattern, nominal_sinks);
  out.nominal.trace = recorder.take();
  out.nominal.scap = scap_acc.report();
  out.nominal.frame1_nets.assign(analyzer.frame1().begin(),
                                 analyzer.frame1().end());
  out.ir = analyze_pattern_ir(soc.netlist, soc.placement, lib, soc.floorplan,
                              grid, binner, &soc.clock_tree, ctx.domain);

  out.nominal_arrival_ns.resize(soc.netlist.num_flops());
  for (FlopId f = 0; f < soc.netlist.num_flops(); ++f) {
    out.nominal_arrival_ns[f] = soc.clock_tree.nominal_arrival_ns(f);
  }
  out.nominal_endpoint_ns = analyzer.endpoint_delays_from_settle(
      settle.settle(), out.nominal_arrival_ns);

  // Simulation 2: cell and clock-buffer delays derated by the local droop.
  // The sinks reset themselves in on_begin, so the same instances serve the
  // scaled pass (no IR binning needed the second time).
  DelayModel scaled_dm = analyzer.nominal_delays();
  scaled_dm.set_droop(lib, out.ir.gate_droop_v);
  out.scaled_arrival_ns = soc.clock_tree.arrivals_with_droop(
      lib, [&](Point p) { return out.ir.droop_at(p); });

  FanoutSink scaled_sinks{&recorder, &scap_acc, &settle};
  out.scaled.launched_flops = analyzer.analyze_into(
      ctx, pattern, scaled_sinks, &scaled_dm, out.scaled_arrival_ns);
  out.scaled.trace = recorder.take();
  out.scaled.scap = scap_acc.report();
  out.scaled.frame1_nets.assign(analyzer.frame1().begin(),
                                analyzer.frame1().end());
  out.scaled_endpoint_ns = analyzer.endpoint_delays_from_settle(
      settle.settle(), out.scaled_arrival_ns);
  return out;
}

RepairResult repair_scap_violations(const SocDesign& soc,
                                    const TechLibrary& lib,
                                    const TestContext& ctx,
                                    std::span<const TdfFault> faults,
                                    const PatternSet& patterns,
                                    const ScapThresholds& thresholds,
                                    std::size_t hot_block, AtpgOptions opt,
                                    std::size_t max_rounds) {
  SCAP_TRACE_SCOPE("flow.repair");
  RepairResult out;
  out.patterns.domain = patterns.domain;
  out.patterns_before = patterns.size();

  FaultSimulator fsim(soc.netlist, ctx);
  {
    const auto before = fsim.grade(patterns.patterns, faults, nullptr);
    for (auto idx : before) {
      out.detected_before += (idx != FaultSimulator::kUndetected);
    }
  }

  // Keep only the clean patterns (two-tier screen: most patterns are cleared
  // by the static bound and never event-simulated).
  std::vector<Pattern> kept;
  {
    const auto screen = scap_screen_patterns(soc, lib, ctx, patterns.patterns,
                                             thresholds, hot_block);
    for (std::size_t i = 0; i < patterns.patterns.size(); ++i) {
      if (screen.violates[i]) {
        ++out.violations_before;
      } else {
        kept.push_back(patterns.patterns[i]);
      }
    }
  }

  AtpgEngine engine(soc.netlist, ctx);
  double care_budget = std::min(opt.max_block_care_fraction, 0.08);
  for (out.rounds = 0; out.rounds < max_rounds; ++out.rounds) {
    // Coverage holes left by the dropped / not-yet-generated patterns.
    std::vector<FaultStatus> status(faults.size(), FaultStatus::kUndetected);
    const auto first = fsim.grade(kept, faults, nullptr);
    std::size_t missing = 0;
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (first[i] != FaultSimulator::kUndetected) {
        status[i] = FaultStatus::kDetected;
      } else {
        ++missing;
      }
    }
    if (missing == 0) break;

    AtpgOptions round_opt = opt;
    round_opt.fill = FillMode::kQuiet;
    round_opt.max_block_care_fraction = care_budget;
    round_opt.seed = opt.seed + out.rounds + 1;
    const AtpgResult res = engine.run(faults, round_opt, &status);

    bool any_clean = false;
    const auto screen = scap_screen_patterns(soc, lib, ctx,
                                             res.patterns.patterns, thresholds,
                                             hot_block);
    for (std::size_t i = 0; i < res.patterns.patterns.size(); ++i) {
      if (!screen.violates[i]) {
        kept.push_back(res.patterns.patterns[i]);
        any_clean = true;
      }
    }
    care_budget *= 0.5;  // tighten for the next round
    if (!any_clean) break;
  }

  out.patterns.patterns = std::move(kept);
  out.patterns_after = out.patterns.patterns.size();
  const auto after = fsim.grade(out.patterns.patterns, faults, nullptr);
  for (auto idx : after) {
    out.detected_after += (idx != FaultSimulator::kUndetected);
  }
  out.violations_after =
      scap_screen_patterns(soc, lib, ctx, out.patterns.patterns, thresholds,
                           hot_block)
          .count_violations();
  return out;
}

}  // namespace scap
