// Block-level SCAP thresholds (paper Sections 2.2 and 2.4).
//
// The Case2 (half-cycle window) statistical analysis yields, per block, the
// average switching power the rail network was provisioned to deliver during
// a realistic switching window. A test pattern whose per-block SCAP exceeds
// that threshold is an IR-drop risk (the paper's Figure 2/6 screening).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "power/statistical.h"
#include "sim/scap.h"

namespace scap {

struct ScapThresholds {
  /// Per-block allowed SCAP [mW] (both-rail switching power).
  std::vector<double> block_mw;

  static ScapThresholds from_statistical(const StatisticalReport& case2) {
    return ScapThresholds{case2.block_power_mw};
  }

  /// Does this pattern's SCAP exceed the threshold in the given block?
  /// Compares total (VDD+VSS) block switching power over the STW.
  bool violates(const ScapReport& rep, std::size_t block) const {
    return block_scap_mw(rep, block) > block_mw[block];
  }

  static double block_scap_mw(const ScapReport& rep, std::size_t block) {
    return rep.block_scap_mw(Rail::kVdd, block) +
           rep.block_scap_mw(Rail::kVss, block);
  }

  /// Number of patterns violating the threshold in `block`.
  std::size_t count_violations(std::span<const ScapReport> reports,
                               std::size_t block) const {
    std::size_t n = 0;
    for (const ScapReport& r : reports) n += violates(r, block) ? 1 : 0;
    return n;
  }
};

}  // namespace scap
