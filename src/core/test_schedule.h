// Power-constrained SOC test scheduling (the paper's Section 1 context,
// refs [5][6]): test sessions -- one per clock domain here -- can run in
// parallel to cut test time, but their combined power must stay under the
// chip's functional power threshold or the supply noise invalidates the
// test. schedule_tests() is the classic greedy list scheduler for that
// rectangle-packing problem: at every completion instant, start the
// longest remaining session that still fits the power budget.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace scap {

struct TestSession {
  std::string name;
  double time_us = 0.0;   ///< tester time to apply the session's patterns
  double power_mw = 0.0;  ///< session power demand (SCAP-based)
};

struct ScheduledSession {
  std::size_t session = 0;  ///< index into the input span
  double start_us = 0.0;
};

struct TestSchedule {
  std::vector<ScheduledSession> items;  ///< in start order
  double makespan_us = 0.0;
  double peak_power_mw = 0.0;
  /// True if some single session exceeds the budget by itself (it is then
  /// scheduled alone, back-to-back with nothing).
  bool budget_exceeded = false;
};

TestSchedule schedule_tests(std::span<const TestSession> sessions,
                            double power_budget_mw);

/// Sum of all session times (the fully serial baseline).
double serial_time_us(std::span<const TestSession> sessions);

}  // namespace scap
