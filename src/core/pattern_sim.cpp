#include "core/pattern_sim.h"

#include <algorithm>

#include "obs/trace.h"

namespace scap {

PatternAnalyzer::PatternAnalyzer(const SocDesign& soc, const TechLibrary& lib)
    : soc_(&soc),
      lib_(&lib),
      logic_(soc.netlist),
      nominal_dm_(soc.netlist, lib, soc.parasitics),
      scap_(soc.netlist, soc.parasitics, lib) {}

PatternAnalysis PatternAnalyzer::analyze(
    const TestContext& ctx, const Pattern& pattern,
    const DelayModel* delay_model,
    std::span<const double> clock_arrivals) const {
  SCAP_TRACE_SCOPE("sim.pattern_analyze");
  const Netlist& nl = soc_->netlist;
  PatternAnalysis out;

  // Frame 1: settled state after the (slow) scan load. The flop bits are
  // the leading num_flops() entries of the test-variable vector.
  std::span<const std::uint8_t> flop_bits(pattern.s1.data(), nl.num_flops());
  logic_.eval_frame(flop_bits, ctx.pi_values, out.frame1_nets);

  // Launch stimuli at each flop's clock arrival. LOC: active flops capture
  // their functional D. LOS: the launch shift moves every chain by one.
  std::vector<Stimulus> stimuli;
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    std::uint8_t s2;
    if (ctx.los()) {
      s2 = pattern.s1[ctx.los_pred[f]];
    } else {
      if (!ctx.active[f]) continue;
      s2 = out.frame1_nets[nl.flop(f).d];
    }
    if (s2 == pattern.s1[f]) continue;
    const double arrival = clock_arrivals.empty()
                               ? soc_->clock_tree.nominal_arrival_ns(f)
                               : clock_arrivals[f];
    stimuli.push_back(Stimulus{nl.flop(f).q, arrival, s2});
    ++out.launched_flops;
  }

  const DelayModel& dm = delay_model ? *delay_model : nominal_dm_;
  EventSim sim(nl, dm);
  out.trace = sim.run(out.frame1_nets, stimuli);
  out.scap = scap_.compute(out.trace, soc_->config.tester_period_ns);
  return out;
}

std::vector<double> PatternAnalyzer::endpoint_delays(
    const SimTrace& trace, std::span<const double> clock_arrivals) const {
  const Netlist& nl = soc_->netlist;
  std::vector<double> settle =
      EventSim::settle_times(trace, nl.num_nets());
  std::vector<double> delays(nl.num_flops(), 0.0);
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    const double t = settle[nl.flop(f).d];
    if (t <= 0.0) continue;  // non-active endpoint
    const double arrival = clock_arrivals.empty()
                               ? soc_->clock_tree.nominal_arrival_ns(f)
                               : clock_arrivals[f];
    delays[f] = std::max(0.0, t - arrival);
  }
  return delays;
}

}  // namespace scap
