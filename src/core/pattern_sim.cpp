#include "core/pattern_sim.h"

#include <algorithm>

#include "obs/trace.h"

namespace scap {

PatternAnalyzer::PatternAnalyzer(const SocDesign& soc, const TechLibrary& lib)
    : PatternAnalyzer(soc, lib, SharedTables::build(soc, lib)) {}

PatternAnalyzer::PatternAnalyzer(const SocDesign& soc, const TechLibrary& lib,
                                 std::shared_ptr<const SharedTables> tables)
    : soc_(&soc),
      lib_(&lib),
      logic_(soc.netlist),
      tables_(std::move(tables)),
      scap_acc_(tables_->scap, soc.config.tester_period_ns) {}

std::size_t PatternAnalyzer::build_launch(
    const TestContext& ctx, const Pattern& pattern,
    std::span<const double> clock_arrivals) const {
  const Netlist& nl = soc_->netlist;

  // Frame 1: settled state after the (slow) scan load. The flop bits are
  // the leading num_flops() entries of the test-variable vector.
  std::span<const std::uint8_t> flop_bits(pattern.s1.data(), nl.num_flops());
  logic_.eval_frame(flop_bits, ctx.pi_values, frame1_);

  // Launch stimuli at each flop's clock arrival. LOC: active flops capture
  // their functional D. LOS: the launch shift moves every chain by one.
  stimuli_.clear();
  std::size_t launched = 0;
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    std::uint8_t s2;
    if (ctx.los()) {
      s2 = pattern.s1[ctx.los_pred[f]];
    } else {
      if (!ctx.active[f]) continue;
      s2 = frame1_[nl.flop(f).d];
    }
    if (s2 == pattern.s1[f]) continue;
    const double arrival = clock_arrivals.empty()
                               ? soc_->clock_tree.nominal_arrival_ns(f)
                               : clock_arrivals[f];
    stimuli_.push_back(Stimulus{nl.flop(f).q, arrival, s2});
    ++launched;
  }
  return launched;
}

std::size_t PatternAnalyzer::analyze_into(
    const TestContext& ctx, const Pattern& pattern, ToggleSink& sink,
    const DelayModel* delay_model,
    std::span<const double> clock_arrivals) const {
  SCAP_TRACE_SCOPE("sim.pattern_analyze");
  const std::size_t launched = build_launch(ctx, pattern, clock_arrivals);
  const DelayModel& dm = delay_model ? *delay_model : tables_->dm;
  EventSim sim(soc_->netlist, dm);
  sim.run(frame1_, stimuli_, ws_, sink);
  return launched;
}

const ScapReport& PatternAnalyzer::analyze_scap(const TestContext& ctx,
                                                const Pattern& pattern) const {
  analyze_into(ctx, pattern, scap_acc_);
  return scap_acc_.report();
}

const lint::StaticScapModel& PatternAnalyzer::static_model() const {
  if (!static_model_) {
    const Netlist& nl = soc_->netlist;
    std::vector<double> energy(nl.num_nets());
    for (NetId n = 0; n < nl.num_nets(); ++n) {
      energy[n] = tables_->scap.net_toggle_energy_pj(n);
    }
    std::vector<double> arrival(nl.num_flops());
    for (FlopId f = 0; f < nl.num_flops(); ++f) {
      arrival[f] = soc_->clock_tree.nominal_arrival_ns(f);
    }
    std::vector<double> min_delay(nl.num_gates());
    for (GateId g = 0; g < nl.num_gates(); ++g) {
      min_delay[g] =
          std::min(tables_->dm.rise_ns(g), tables_->dm.fall_ns(g));
    }
    static_model_ = std::make_unique<lint::StaticScapModel>(nl, energy, arrival,
                                                            min_delay);
  }
  return *static_model_;
}

const lint::StaticScapBound& PatternAnalyzer::screen_static(
    const TestContext& ctx, const Pattern& pattern) const {
  SCAP_TRACE_SCOPE("sim.screen_static");
  return static_model().screen(ctx, pattern);
}

PatternAnalysis PatternAnalyzer::analyze(
    const TestContext& ctx, const Pattern& pattern,
    const DelayModel* delay_model,
    std::span<const double> clock_arrivals) const {
  FanoutSink fan{&recorder_, &scap_acc_};
  PatternAnalysis out;
  out.launched_flops =
      analyze_into(ctx, pattern, fan, delay_model, clock_arrivals);
  out.trace = recorder_.take();
  out.scap = scap_acc_.report();
  out.frame1_nets.assign(frame1_.begin(), frame1_.end());
  return out;
}

std::vector<double> PatternAnalyzer::endpoint_delays(
    const SimTrace& trace, std::span<const double> clock_arrivals) const {
  const std::vector<double> settle =
      EventSim::settle_times(trace, soc_->netlist.num_nets());
  return endpoint_delays_from_settle(settle, clock_arrivals);
}

std::vector<double> PatternAnalyzer::endpoint_delays_from_settle(
    std::span<const double> settle,
    std::span<const double> clock_arrivals) const {
  const Netlist& nl = soc_->netlist;
  std::vector<double> delays(nl.num_flops(), 0.0);
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    const double t = settle[nl.flop(f).d];
    if (t <= 0.0) continue;  // non-active endpoint
    const double arrival = clock_arrivals.empty()
                               ? soc_->clock_tree.nominal_arrival_ns(f)
                               : clock_arrivals[f];
    delays[f] = std::max(0.0, t - arrival);
  }
  return delays;
}

}  // namespace scap
