// Single point of environment access for one-time configuration reads.
//
// Every SCAP_* switch (SCAP_THREADS, SCAP_TRACE, SCAP_METRICS, SCAP_PROF,
// SCAP_METRICS_DIR, ...) is read exactly once, during process or subsystem
// startup, and the library never calls setenv/putenv. Funneling the getenv
// calls through this helper keeps the one concurrency-mt-unsafe call site --
// and its justification -- in one place instead of scattering per-call-site
// NOLINTs through the codebase.
#pragma once

#include <cstdlib>

namespace scap::util {

/// One-shot read of a configuration environment variable. Safe despite
/// getenv's thread-compatibility caveats because nothing in the process
/// mutates the environment, and every caller samples its variable once at
/// startup and caches the result.
inline const char* env_cstr(const char* name) noexcept {
  return std::getenv(name);  // NOLINT(concurrency-mt-unsafe) -- see header comment
}

}  // namespace scap::util
