#include "util/table.h"

#include <sstream>
#include <stdexcept>
#include <utility>

namespace scap {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() > header_.size()) {
    throw std::invalid_argument("TextTable row has more cells than header");
  }
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string TextTable::render(const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](std::ostringstream& os,
                      const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      os << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };

  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  emit_row(os, header_);
  os << "|";
  for (std::size_t w : widths) os << std::string(w + 2, '-') << "|";
  os << '\n';
  for (const auto& row : rows_) emit_row(os, row);
  return os.str();
}

}  // namespace scap
