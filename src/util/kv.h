// Line-oriented key/value document: the serialization substrate of the
// differential-fuzzing scenario files (tests/corpus/*.scenario).
//
// Format, chosen for hand-editability and trivial diffing:
//   # comment (kept out of the parse; writers may emit them)
//   key value-with-possible-spaces
// One pair per line, keys unique, order preserved. Round-trip contract:
// write(parse(text)) reproduces the same pairs in the same order, so a
// corpus entry re-serialized by the shrinker stays byte-stable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace scap::util {

class KvDoc {
 public:
  /// Append a pair; throws std::runtime_error on a duplicate key.
  void set(std::string key, std::string value);
  void set_u64(std::string key, std::uint64_t v);
  void set_f64(std::string key, double v);
  void set_bool(std::string key, bool v);

  /// Append a comment line (written as "# text"; parse() drops comments, so
  /// they are writer-side annotation only).
  void comment(std::string text);

  bool has(std::string_view key) const { return find(key) != nullptr; }

  /// Typed getters: return `fallback` when the key is absent; throw
  /// std::runtime_error when the key is present but unparsable.
  std::string get(std::string_view key, std::string fallback = {}) const;
  std::uint64_t get_u64(std::string_view key, std::uint64_t fallback) const;
  double get_f64(std::string_view key, double fallback) const;
  bool get_bool(std::string_view key, bool fallback) const;

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

  /// Parse from text. Throws std::runtime_error on malformed lines (a line
  /// with no value) or duplicate keys.
  static KvDoc parse(std::istream& is);
  static KvDoc parse(const std::string& text);

  void write(std::ostream& os) const;
  std::string to_string() const;

 private:
  const std::string* find(std::string_view key) const;

  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace scap::util
