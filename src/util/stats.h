// Small statistics helpers shared by the power analyses and the benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace scap {

/// Single-pass accumulator for mean / min / max / stddev.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  /// Fold another accumulator in (Chan et al. parallel-variance combine), as
  /// if every observation of `other` had been add()ed here.
  void merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * nb / (na + nb);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// q-quantile (q in [0,1]) by linear interpolation; copies + sorts.
inline double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

inline double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

inline double max_of(std::span<const double> xs) {
  double m = 0.0;
  bool first = true;
  for (double x : xs) {
    m = first ? x : std::max(m, x);
    first = false;
  }
  return m;
}

/// Fixed-width histogram over [lo, hi); values outside clamp to end bins.
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> bins;

  Histogram(double lo_, double hi_, std::size_t nbins)
      : lo(lo_), hi(hi_), bins(nbins, 0) {}

  void add(double x) {
    const double t = (x - lo) / (hi - lo);
    auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(bins.size()));
    idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                     static_cast<std::ptrdiff_t>(bins.size()) - 1);
    ++bins[static_cast<std::size_t>(idx)];
  }

  std::size_t total() const {
    std::size_t s = 0;
    for (auto b : bins) s += b;
    return s;
  }
};

}  // namespace scap
