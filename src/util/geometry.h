// Planar geometry primitives used by floorplanning, placement and the
// power-grid mesh. Units are microns throughout the library.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace scap {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Point&, const Point&) = default;
};

constexpr Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
constexpr Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
constexpr Point operator*(Point a, double s) { return {a.x * s, a.y * s}; }

inline double manhattan(Point a, Point b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

inline double euclidean(Point a, Point b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// Axis-aligned rectangle, [lo, hi) semantics on both axes.
struct Rect {
  double x0 = 0.0;
  double y0 = 0.0;
  double x1 = 0.0;
  double y1 = 0.0;

  constexpr double width() const { return x1 - x0; }
  constexpr double height() const { return y1 - y0; }
  constexpr double area() const { return width() * height(); }
  constexpr Point center() const { return {(x0 + x1) / 2, (y0 + y1) / 2}; }

  constexpr bool contains(Point p) const {
    return p.x >= x0 && p.x < x1 && p.y >= y0 && p.y < y1;
  }

  constexpr bool overlaps(const Rect& o) const {
    return x0 < o.x1 && o.x0 < x1 && y0 < o.y1 && o.y0 < y1;
  }

  /// Clamp a point into the rectangle (closed at the upper edge).
  constexpr Point clamp(Point p) const {
    return {std::clamp(p.x, x0, x1), std::clamp(p.y, y0, y1)};
  }

  friend constexpr bool operator==(const Rect&, const Rect&) = default;
};

}  // namespace scap
