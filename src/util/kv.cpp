#include "util/kv.h"

#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace scap::util {

namespace {

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) --e;
  return std::string(s.substr(b, e - b));
}

}  // namespace

void KvDoc::set(std::string key, std::string value) {
  if (find(key) != nullptr) {
    throw std::runtime_error("kv: duplicate key '" + key + "'");
  }
  entries_.emplace_back(std::move(key), std::move(value));
}

void KvDoc::set_u64(std::string key, std::uint64_t v) {
  set(std::move(key), std::to_string(v));
}

void KvDoc::set_f64(std::string key, double v) {
  // %.17g round-trips every finite double through strtod.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  set(std::move(key), buf);
}

void KvDoc::set_bool(std::string key, bool v) {
  set(std::move(key), v ? "true" : "false");
}

void KvDoc::comment(std::string text) {
  entries_.emplace_back("#", std::move(text));
}

const std::string* KvDoc::find(std::string_view key) const {
  if (key == "#") return nullptr;  // comments are not addressable pairs
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string KvDoc::get(std::string_view key, std::string fallback) const {
  const std::string* v = find(key);
  return v ? *v : std::move(fallback);
}

std::uint64_t KvDoc::get_u64(std::string_view key,
                             std::uint64_t fallback) const {
  const std::string* v = find(key);
  if (!v) return fallback;
  std::size_t pos = 0;
  std::uint64_t out = 0;
  try {
    out = std::stoull(*v, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != v->size()) {
    throw std::runtime_error("kv: key '" + std::string(key) +
                             "' holds non-integer value '" + *v + "'");
  }
  return out;
}

double KvDoc::get_f64(std::string_view key, double fallback) const {
  const std::string* v = find(key);
  if (!v) return fallback;
  std::size_t pos = 0;
  double out = 0.0;
  try {
    out = std::stod(*v, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != v->size() || !std::isfinite(out)) {
    throw std::runtime_error("kv: key '" + std::string(key) +
                             "' holds non-numeric value '" + *v + "'");
  }
  return out;
}

bool KvDoc::get_bool(std::string_view key, bool fallback) const {
  const std::string* v = find(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1") return true;
  if (*v == "false" || *v == "0") return false;
  throw std::runtime_error("kv: key '" + std::string(key) +
                           "' holds non-boolean value '" + *v + "'");
}

KvDoc KvDoc::parse(std::istream& is) {
  KvDoc doc;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    const std::size_t sp = t.find_first_of(" \t");
    if (sp == std::string::npos) {
      throw std::runtime_error("kv: line " + std::to_string(lineno) +
                               ": key '" + t + "' has no value");
    }
    doc.set(t.substr(0, sp), trim(t.substr(sp + 1)));
  }
  return doc;
}

KvDoc KvDoc::parse(const std::string& text) {
  std::istringstream is(text);
  return parse(is);
}

void KvDoc::write(std::ostream& os) const {
  for (const auto& [k, v] : entries_) {
    if (k == "#") {
      os << "# " << v << '\n';
    } else {
      os << k << ' ' << v << '\n';
    }
  }
}

std::string KvDoc::to_string() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

}  // namespace scap::util
