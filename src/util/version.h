// Library version string, reported by every CLI's --version flag (CI asserts
// the flag exits 0 for each tool, so a broken argument parser is caught even
// before any functional test runs).
#pragma once

namespace scap {

inline constexpr const char* kVersion = "0.8.0";

}  // namespace scap
