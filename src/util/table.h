// Plain-text table rendering for the benchmark harness and examples.
//
// Benches regenerate the paper's tables; TextTable keeps their stdout output
// aligned and diff-friendly without pulling in a formatting dependency.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace scap {

class TextTable {
 public:
  /// Begin a table with the given column headers.
  explicit TextTable(std::vector<std::string> header);

  /// Append a row; missing trailing cells render empty, extras are an error.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with fixed precision.
  static std::string num(double v, int precision = 3);

  /// Render with column alignment, header rule, and optional title.
  std::string render(const std::string& title = {}) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace scap
