// Deterministic pseudo-random number generation.
//
// Every stochastic step in the library (SOC generation, random-fill,
// statistical toggle assignment) flows through Rng so that experiments are
// reproducible from a single printed seed. xoshiro256++ is used for the
// stream, splitmix64 for seeding, following the reference implementations by
// Blackman & Vigna (public domain).
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace scap {

/// Splitmix64 step; used to expand a single seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ deterministic PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x5eed'0c0d'e001ULL) noexcept {
    reseed(seed);
  }

  constexpr void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire-style rejection-free-ish reduction; bias is negligible for the
    // bounds used here (all far below 2^32), but we reject to be exact.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform real in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Bernoulli trial with probability p of returning true.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

  /// Fair coin packed into 64 lanes (for pattern-parallel random fill).
  constexpr std::uint64_t word() noexcept { return (*this)(); }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child stream (for parallel-safe sub-tasks).
  constexpr Rng fork() noexcept { return Rng((*this)() ^ 0xa5a5'5a5a'dead'beefULL); }

  /// Advance the state by 2^128 steps (xoshiro256++ reference jump
  /// polynomial). Partitions one seed's sequence into non-overlapping
  /// sub-sequences of 2^128 values each: `k` jumps from the same seed yield
  /// the shard-k stream, independent of how many other shards exist or which
  /// thread consumes them.
  constexpr void jump() noexcept {
    constexpr std::uint64_t kJump[4] = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
        0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    advance_with(kJump);
  }

  /// Advance by 2^192 steps: spacing for top-level stream families, each of
  /// which can then take 2^64 jump() sub-streams.
  constexpr void long_jump() noexcept {
    constexpr std::uint64_t kLongJump[4] = {
        0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
        0x77710069854ee241ULL, 0x39109bb02acbe635ULL};
    advance_with(kLongJump);
  }

  /// Shard stream `shard` of `seed`: reproducible from (seed, shard) alone,
  /// with 2^128 spacing between consecutive shards. This is what parallel
  /// random-fill and per-shard statistical sampling use so results do not
  /// depend on the thread count.
  static constexpr Rng stream(std::uint64_t seed, std::uint64_t shard) noexcept {
    Rng rng(seed);
    for (std::uint64_t i = 0; i < shard; ++i) rng.jump();
    return rng;
  }

 private:
  constexpr void advance_with(const std::uint64_t (&poly)[4]) noexcept {
    std::uint64_t acc[4] = {0, 0, 0, 0};
    for (std::uint64_t word : poly) {
      for (int bit = 0; bit < 64; ++bit) {
        if (word & (1ULL << bit)) {
          for (int i = 0; i < 4; ++i) acc[i] ^= state_[i];
        }
        (*this)();
      }
    }
    for (int i = 0; i < 4; ++i) state_[i] = acc[i];
  }


  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace scap
