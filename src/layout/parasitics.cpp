#include "layout/parasitics.h"

#include <algorithm>

namespace scap {

Parasitics Parasitics::extract(const Netlist& nl, const Placement& pl,
                               const TechLibrary& lib,
                               double wire_cap_pf_per_um) {
  Parasitics out;
  out.net_load_pf_.assign(nl.num_nets(), 0.0);
  out.net_hpwl_um_.assign(nl.num_nets(), 0.0);

  // Pin capacitance contributions from gate inputs...
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const double pin_cap = lib.timing(nl.gate(g).type).input_cap_pf;
    for (NetId in : nl.gate_inputs(g)) out.net_load_pf_[in] += pin_cap;
  }
  // ...and flop D pins.
  const double dff_pin_cap = lib.timing(CellType::kDff).input_cap_pf;
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    out.net_load_pf_[nl.flop(f).d] += dff_pin_cap;
  }

  // Driver self (diffusion) capacitance.
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    out.net_load_pf_[nl.gate(g).out] += lib.timing(nl.gate(g).type).self_cap_pf;
  }
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    out.net_load_pf_[nl.flop(f).q] += lib.timing(CellType::kDff).self_cap_pf;
  }

  // Wire capacitance from half-perimeter bounding box of all pins.
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const Point drv = pl.net_driver_pos(nl, n);
    double x0 = drv.x, x1 = drv.x, y0 = drv.y, y1 = drv.y;
    auto expand = [&](Point p) {
      x0 = std::min(x0, p.x);
      x1 = std::max(x1, p.x);
      y0 = std::min(y0, p.y);
      y1 = std::max(y1, p.y);
    };
    for (GateId fo : nl.fanout_gates(n)) expand(pl.gate_pos(fo));
    for (FlopId ff : nl.fanout_flops(n)) expand(pl.flop_pos(ff));
    const double hpwl = (x1 - x0) + (y1 - y0);
    out.net_hpwl_um_[n] = hpwl;
    out.net_load_pf_[n] += hpwl * wire_cap_pf_per_um;
    out.total_wirelength_um_ += hpwl;
    out.total_load_pf_ += out.net_load_pf_[n];
  }
  return out;
}

}  // namespace scap
