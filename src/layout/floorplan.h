// Chip floorplan: die outline, block rectangles, and power/ground pads.
//
// The default floorplan mimics Figure 1 of the paper: six blocks B1..B6 with
// B5 large and central (far from the pad ring -> highest IR-drop under load)
// and the remaining blocks small and peripheral (close to pads -> resilient
// even when the switching window shrinks). 37 VDD and 37 VSS pads sit
// uniformly on the die periphery, as in the Turbo-Eagle design.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/geometry.h"

namespace scap {

struct BlockInfo {
  std::string name;  ///< "B1".."B6"
  Rect rect;
};

struct PowerPad {
  Point pos;
  bool is_vdd = true;  ///< false: VSS pad
};

class Floorplan {
 public:
  Floorplan(Rect die, std::vector<BlockInfo> blocks, std::vector<PowerPad> pads)
      : die_(die), blocks_(std::move(blocks)), pads_(std::move(pads)) {}

  /// Six-block floorplan modelled on the paper's Figure 1.
  /// die_um: die edge length; pads_per_rail: pads per VDD/VSS network (37).
  static Floorplan turbo_eagle_like(double die_um = 3000.0,
                                    std::size_t pads_per_rail = 37);

  const Rect& die() const { return die_; }
  const std::vector<BlockInfo>& blocks() const { return blocks_; }
  const std::vector<PowerPad>& pads() const { return pads_; }

  const BlockInfo& block(std::size_t idx) const { return blocks_[idx]; }
  std::size_t block_count() const { return blocks_.size(); }

  /// Index of the block containing p, or block_count() if outside all blocks.
  std::size_t block_at(Point p) const;

 private:
  Rect die_;
  std::vector<BlockInfo> blocks_;
  std::vector<PowerPad> pads_;
};

}  // namespace scap
