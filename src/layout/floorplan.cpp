#include "layout/floorplan.h"

namespace scap {

Floorplan Floorplan::turbo_eagle_like(double die_um, std::size_t pads_per_rail) {
  const double d = die_um;
  const Rect die{0.0, 0.0, d, d};

  // Fractions of the die edge. B5 occupies the large central region; the
  // other five blocks hug the periphery (small, well-fed by nearby pads).
  std::vector<BlockInfo> blocks = {
      {"B1", Rect{0.04 * d, 0.70 * d, 0.30 * d, 0.96 * d}},  // top-left
      {"B2", Rect{0.70 * d, 0.70 * d, 0.96 * d, 0.96 * d}},  // top-right
      {"B3", Rect{0.04 * d, 0.04 * d, 0.30 * d, 0.30 * d}},  // bottom-left
      {"B4", Rect{0.70 * d, 0.04 * d, 0.96 * d, 0.30 * d}},  // bottom-right
      {"B5", Rect{0.32 * d, 0.32 * d, 0.68 * d, 0.76 * d}},  // central, large
      {"B6", Rect{0.04 * d, 0.36 * d, 0.28 * d, 0.64 * d}},  // left-middle
  };

  // Pads uniformly around the periphery, alternating VDD/VSS positions per
  // rail so both networks see the same geometry.
  std::vector<PowerPad> pads;
  pads.reserve(2 * pads_per_rail);
  const double perimeter = 4.0 * d;
  auto point_on_ring = [&](double s) -> Point {
    // s in [0, perimeter), walking counter-clockwise from the origin.
    if (s < d) return {s, 0.0};
    s -= d;
    if (s < d) return {d, s};
    s -= d;
    if (s < d) return {d - s, d};
    s -= d;
    return {0.0, d - s};
  };
  for (std::size_t i = 0; i < pads_per_rail; ++i) {
    const double base =
        perimeter * static_cast<double>(i) / static_cast<double>(pads_per_rail);
    const double half_step =
        perimeter / static_cast<double>(2 * pads_per_rail);
    pads.push_back(PowerPad{point_on_ring(base), /*is_vdd=*/true});
    pads.push_back(PowerPad{point_on_ring(base + half_step), /*is_vdd=*/false});
  }

  return Floorplan(die, std::move(blocks), std::move(pads));
}

std::size_t Floorplan::block_at(Point p) const {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].rect.contains(p)) return i;
  }
  return blocks_.size();
}

}  // namespace scap
