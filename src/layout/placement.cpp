#include "layout/placement.h"

#include <algorithm>
#include <cmath>

namespace scap {

Placement Placement::place(const Netlist& nl, const Floorplan& fp, Rng& rng) {
  Placement pl;
  pl.flop_pos_.resize(nl.num_flops());
  pl.gate_pos_.resize(nl.num_gates());

  // PI pads spread along the bottom edge of the die.
  const Rect die = fp.die();
  pl.pi_pos_.resize(nl.primary_inputs().size());
  for (std::size_t i = 0; i < pl.pi_pos_.size(); ++i) {
    const double frac = (static_cast<double>(i) + 0.5) /
                        static_cast<double>(std::max<std::size_t>(1, pl.pi_pos_.size()));
    pl.pi_pos_[i] = Point{die.x0 + frac * die.width(), die.y0};
  }

  auto block_rect = [&](BlockId b) -> Rect {
    return b < fp.block_count() ? fp.block(b).rect : die;
  };

  // Flops: jittered uniform spread inside their block.
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    const Rect r = block_rect(nl.flop(f).block);
    pl.flop_pos_[f] = Point{rng.uniform(r.x0, r.x1), rng.uniform(r.y0, r.y1)};
  }

  // Gates: first drop uniformly in their block, then pull toward connected
  // pins (one relaxation sweep in topological order keeps cones compact).
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Rect r = block_rect(nl.gate(g).block);
    pl.gate_pos_[g] = Point{rng.uniform(r.x0, r.x1), rng.uniform(r.y0, r.y1)};
  }
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (GateId g : nl.topo_order()) {
      Point sum{0.0, 0.0};
      int n = 0;
      for (NetId in : nl.gate_inputs(g)) {
        sum = sum + pl.net_driver_pos(nl, in);
        ++n;
      }
      for (FlopId f : nl.fanout_flops(nl.gate(g).out)) {
        sum = sum + pl.flop_pos_[f];
        ++n;
      }
      if (n == 0) continue;
      const Point centroid = sum * (1.0 / n);
      const Rect r = block_rect(nl.gate(g).block);
      // Blend toward the centroid but stay inside the block.
      const Point blended{0.4 * pl.gate_pos_[g].x + 0.6 * centroid.x,
                          0.4 * pl.gate_pos_[g].y + 0.6 * centroid.y};
      pl.gate_pos_[g] = r.clamp(blended);
    }
  }
  return pl;
}

Point Placement::net_driver_pos(const Netlist& nl, NetId n) const {
  const Net& nr = nl.net(n);
  switch (nr.driver_kind) {
    case DriverKind::kGate:
      return gate_pos_[nr.driver];
    case DriverKind::kFlop:
      return flop_pos_[nr.driver];
    case DriverKind::kInput:
      return pi_pos_[nr.driver];
    case DriverKind::kNone:
      break;
  }
  return Point{};
}

}  // namespace scap
