#include "layout/clock_tree.h"

#include <algorithm>
#include <array>
#include <cassert>

namespace scap {

namespace {

struct BuildCtx {
  const Placement& pl;
  const TechLibrary& lib;
  const ClockTree::Options& opt;
  std::vector<ClockBuffer>& buffers;
  std::vector<std::uint32_t>& flop_leaf;
  std::vector<double>& flop_wire_ns;
};

/// Recursively subdivide the flop set; returns the subtree root buffer index.
std::uint32_t build_region(BuildCtx& ctx, DomainId domain,
                           std::span<FlopId> flops, std::uint32_t parent) {
  // Buffer at the centroid of the region's flops.
  Point centroid{0.0, 0.0};
  for (FlopId f : flops) centroid = centroid + ctx.pl.flop_pos(f);
  centroid = centroid * (1.0 / static_cast<double>(flops.size()));

  const std::uint32_t me = static_cast<std::uint32_t>(ctx.buffers.size());
  ClockBuffer buf;
  buf.pos = centroid;
  buf.parent = parent;
  buf.domain = domain;
  if (parent != kNullId) {
    buf.wire_from_parent_ns =
        manhattan(centroid, ctx.buffers[parent].pos) * ctx.opt.wire_delay_ns_per_um;
  }
  ctx.buffers.push_back(buf);

  if (flops.size() <= ctx.opt.leaf_capacity) {
    double load = 0.0;
    for (FlopId f : flops) {
      ctx.flop_leaf[f] = me;
      const double dist = manhattan(ctx.pl.flop_pos(f), centroid);
      ctx.flop_wire_ns[f] = dist * ctx.opt.wire_delay_ns_per_um;
      load += ctx.opt.flop_clk_pin_cap_pf + dist * ctx.opt.wire_cap_pf_per_um;
    }
    ctx.buffers[me].load_pf = load;
    return me;
  }

  // Quadrant split around the centroid; degenerate splits fall back to a
  // median bisection so recursion always terminates.
  std::array<std::vector<FlopId>, 4> quads;
  for (FlopId f : flops) {
    const Point p = ctx.pl.flop_pos(f);
    const int qi = (p.x >= centroid.x ? 1 : 0) | (p.y >= centroid.y ? 2 : 0);
    quads[static_cast<std::size_t>(qi)].push_back(f);
  }
  std::size_t nonempty = 0;
  for (const auto& q : quads) nonempty += q.empty() ? 0 : 1;
  if (nonempty <= 1) {
    std::vector<FlopId> sorted(flops.begin(), flops.end());
    std::sort(sorted.begin(), sorted.end(), [&](FlopId a, FlopId b) {
      return ctx.pl.flop_pos(a).x < ctx.pl.flop_pos(b).x;
    });
    const std::size_t half = sorted.size() / 2;
    quads = {};
    quads[0].assign(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(half));
    quads[1].assign(sorted.begin() + static_cast<std::ptrdiff_t>(half), sorted.end());
  }

  const double buf_in_cap = ctx.lib.timing(CellType::kClkBuf).input_cap_pf;
  double load = 0.0;
  for (auto& q : quads) {
    if (q.empty()) continue;
    const std::uint32_t child = build_region(ctx, domain, q, me);
    load += buf_in_cap +
            manhattan(ctx.buffers[child].pos, centroid) * ctx.opt.wire_cap_pf_per_um;
  }
  ctx.buffers[me].load_pf = load;
  return me;
}

}  // namespace

ClockTree ClockTree::synthesize(const Netlist& nl, const Placement& pl,
                                const TechLibrary& lib, Options opt) {
  ClockTree ct;
  ct.flop_leaf_.assign(nl.num_flops(), kNullId);
  ct.flop_wire_ns_.assign(nl.num_flops(), 0.0);

  BuildCtx ctx{pl, lib, opt, ct.buffers_, ct.flop_leaf_, ct.flop_wire_ns_};
  auto by_domain = nl.flops_by_domain();
  const double buf_in_cap = lib.timing(CellType::kClkBuf).input_cap_pf;
  for (DomainId d = 0; d < by_domain.size(); ++d) {
    if (by_domain[d].empty()) continue;
    // Root chain: insertion-delay buffers between the clock source and the
    // distribution tree, placed at the domain centroid.
    Point centroid{0.0, 0.0};
    for (FlopId f : by_domain[d]) centroid = centroid + pl.flop_pos(f);
    centroid = centroid * (1.0 / static_cast<double>(by_domain[d].size()));
    std::uint32_t parent = kNullId;
    for (std::uint32_t i = 0; i < opt.root_chain_buffers; ++i) {
      ClockBuffer buf;
      buf.pos = centroid;
      buf.parent = parent;
      buf.domain = d;
      buf.load_pf = 4.0 * buf_in_cap;  // drives the next stage (sized up)
      parent = static_cast<std::uint32_t>(ct.buffers_.size());
      ct.buffers_.push_back(buf);
    }
    build_region(ctx, d, by_domain[d], parent);
  }

  // Buffer cell delays from their (now known) loads.
  const CellTiming& bt = lib.timing(CellType::kClkBuf);
  for (ClockBuffer& b : ct.buffers_) {
    b.cell_delay_ns = 0.5 * (bt.intrinsic_rise_ns + bt.intrinsic_fall_ns) +
                      bt.drive_res_ns_per_pf * b.load_pf;
  }

  // Nominal arrivals.
  ct.nominal_arrival_.assign(nl.num_flops(), 0.0);
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    double t = ct.flop_wire_ns_[f];
    for (std::uint32_t b = ct.flop_leaf_[f]; b != kNullId;
         b = ct.buffers_[b].parent) {
      t += ct.buffers_[b].cell_delay_ns + ct.buffers_[b].wire_from_parent_ns;
    }
    ct.nominal_arrival_[f] = t;
  }

  ct.domain_clock_cap_pf_.assign(nl.domain_count(), 0.0);
  for (const ClockBuffer& b : ct.buffers_) {
    ct.domain_clock_cap_pf_[b.domain] += b.load_pf;
  }
  return ct;
}

std::vector<double> ClockTree::arrivals_with_droop(
    const TechLibrary& lib,
    const std::function<double(Point)>& droop) const {
  // Scaled delay per buffer, then accumulate along each flop's path.
  std::vector<double> scaled(buffers_.size());
  for (std::size_t i = 0; i < buffers_.size(); ++i) {
    const double dv = droop ? droop(buffers_[i].pos) : 0.0;
    scaled[i] = buffers_[i].cell_delay_ns * (1.0 + lib.k_volt() * dv) +
                buffers_[i].wire_from_parent_ns;
  }
  std::vector<double> arrivals(flop_leaf_.size(), 0.0);
  for (std::size_t f = 0; f < flop_leaf_.size(); ++f) {
    double t = flop_wire_ns_[f];
    for (std::uint32_t b = flop_leaf_[f]; b != kNullId; b = buffers_[b].parent) {
      t += scaled[b];
    }
    arrivals[f] = t;
  }
  return arrivals;
}

double ClockTree::domain_clock_cap_pf(DomainId d) const {
  return d < domain_clock_cap_pf_.size() ? domain_clock_cap_pf_[d] : 0.0;
}

}  // namespace scap
