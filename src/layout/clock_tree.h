// Clock-tree synthesis and clock-arrival computation.
//
// Each clock domain gets a recursively subdivided buffer tree (quad H-tree
// style) over its flop placement. Per-flop clock arrival = sum of buffer cell
// delays and wire delays along the root-to-leaf path. Buffer cell delays
// scale with the local voltage droop exactly like data-path cells, which is
// what produces the paper's Figure 7 "Region 2" effect: when IR-drop slows
// the capture flop's clock path, the *measured* endpoint delay (relative to
// its own clock) can decrease.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "layout/placement.h"
#include "netlist/netlist.h"
#include "netlist/tech_library.h"
#include "util/geometry.h"

namespace scap {

struct ClockBuffer {
  Point pos;
  std::uint32_t parent = kNullId;  ///< buffer index; kNullId at the domain root
  DomainId domain = 0;
  double cell_delay_ns = 0.0;      ///< load-dependent buffer delay
  double wire_from_parent_ns = 0.0;
  double load_pf = 0.0;            ///< switched cap at this buffer's output
};

struct ClockTreeOptions {
  std::uint32_t leaf_capacity = 16;  ///< max flops per leaf buffer
  /// Buffers chained ahead of each domain root. Real SOC clock trees carry
  /// nanoseconds of insertion delay; it matters because IR-drop on the
  /// capture flop's clock path shifts the *measured* endpoint delay (the
  /// paper's Figure 7 Region 2).
  std::uint32_t root_chain_buffers = 8;
  double wire_delay_ns_per_um = 5e-5;
  double wire_cap_pf_per_um = 0.00018;
  double flop_clk_pin_cap_pf = 0.0045;
};

class ClockTree {
 public:
  using Options = ClockTreeOptions;

  static ClockTree synthesize(const Netlist& nl, const Placement& pl,
                              const TechLibrary& lib,
                              Options opt = ClockTreeOptions{});

  std::span<const ClockBuffer> buffers() const { return buffers_; }
  std::size_t buffer_count() const { return buffers_.size(); }

  /// Nominal (no-droop) clock arrival at a flop [ns].
  double nominal_arrival_ns(FlopId f) const { return nominal_arrival_[f]; }

  /// Arrivals with per-location voltage droop applied to buffer cell delays.
  /// droop(pos) returns the local VDD loss + VSS bounce in volts.
  std::vector<double> arrivals_with_droop(
      const TechLibrary& lib,
      const std::function<double(Point)>& droop) const;

  /// Total capacitance switched per clock edge in one domain [pF]
  /// (buffer outputs + leaf wires + flop clock pins).
  double domain_clock_cap_pf(DomainId d) const;

 private:
  std::vector<ClockBuffer> buffers_;
  std::vector<std::uint32_t> flop_leaf_;      ///< per flop: leaf buffer index
  std::vector<double> flop_wire_ns_;          ///< per flop: leaf-to-flop wire
  std::vector<double> nominal_arrival_;       ///< per flop
  std::vector<double> domain_clock_cap_pf_;   ///< per domain
};

}  // namespace scap
