#include "layout/spef.h"

#include <ostream>
#include <sstream>

namespace scap {

void write_spef(const Netlist& nl, const Parasitics& par, std::ostream& os,
                const std::string& design_name) {
  os << "*SPEF \"IEEE 1481-1998\"\n";
  os << "*DESIGN \"" << design_name << "\"\n";
  os << "*VENDOR \"scapgen\"\n";
  os << "*PROGRAM \"scapgen spef writer\"\n";
  os << "*DIVIDER /\n*DELIMITER :\n*BUS_DELIMITER [ ]\n";
  os << "*T_UNIT 1 NS\n*C_UNIT 1 PF\n*R_UNIT 1 OHM\n*L_UNIT 1 HENRY\n\n";

  os.setf(std::ios::fixed);
  os.precision(6);
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    os << "*D_NET " << nl.net_name(n) << ' ' << par.net_load_pf(n) << '\n';
    os << "*CONN\n";
    const Net& nr = nl.net(n);
    switch (nr.driver_kind) {
      case DriverKind::kGate:
        os << "*I b" << nl.gate(nr.driver).block << "_g" << nr.driver
           << ":Y O\n";
        break;
      case DriverKind::kFlop:
        os << "*I b" << nl.flop(nr.driver).block << "_f" << nr.driver
           << ":Q O\n";
        break;
      case DriverKind::kInput:
        os << "*P " << nl.net_name(n) << " I\n";
        break;
      case DriverKind::kNone:
        break;
    }
    for (GateId g : nl.fanout_gates(n)) {
      os << "*I b" << nl.gate(g).block << "_g" << g << ":A I\n";
    }
    for (FlopId f : nl.fanout_flops(n)) {
      os << "*I b" << nl.flop(f).block << "_f" << f << ":D I\n";
    }
    os << "*CAP\n1 " << nl.net_name(n) << ' ' << par.net_load_pf(n) << '\n';
    os << "*END\n\n";
  }
}

std::string to_spef(const Netlist& nl, const Parasitics& par,
                    const std::string& design_name) {
  std::ostringstream os;
  write_spef(nl, par, os, design_name);
  return os.str();
}

}  // namespace scap
