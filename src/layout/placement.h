// Per-instance placement.
//
// The power analyses only require spatial locality (instances of a block sit
// inside that block's rectangle; connected cells are near each other), not a
// legal row-based placement. We place flops on a jittered grid inside their
// block and attract each combinational gate toward the centroid of its flop
// fan-in/fan-out cone, which is what clustering-driven placers produce at the
// granularity the resistive power grid can resolve.
#pragma once

#include <vector>

#include "layout/floorplan.h"
#include "netlist/netlist.h"
#include "util/geometry.h"
#include "util/rng.h"

namespace scap {

class Placement {
 public:
  static Placement place(const Netlist& nl, const Floorplan& fp, Rng& rng);

  Point gate_pos(GateId g) const { return gate_pos_[g]; }
  Point flop_pos(FlopId f) const { return flop_pos_[f]; }
  std::size_t num_gates() const { return gate_pos_.size(); }
  std::size_t num_flops() const { return flop_pos_.size(); }

  /// Position of the driver of a net (gate, flop or PI pad location).
  Point net_driver_pos(const Netlist& nl, NetId n) const;

 private:
  std::vector<Point> gate_pos_;
  std::vector<Point> flop_pos_;
  std::vector<Point> pi_pos_;  ///< PI pad locations on the die edge
};

}  // namespace scap
