// Standard Parasitic Exchange Format (SPEF) export.
//
// The paper extracts net parasitics with STAR-RCXT and feeds them to both
// the SCAP calculator (per-instance output capacitance) and the rail
// analysis. This writer emits the library's extracted loads in SPEF so the
// same data can round into external flows: one *D_NET per net with its
// total capacitance and a lumped driver-to-sinks description.
#pragma once

#include <iosfwd>
#include <string>

#include "layout/parasitics.h"
#include "netlist/netlist.h"

namespace scap {

void write_spef(const Netlist& nl, const Parasitics& par, std::ostream& os,
                const std::string& design_name = "top");

std::string to_spef(const Netlist& nl, const Parasitics& par,
                    const std::string& design_name = "top");

}  // namespace scap
