// Interconnect parasitic extraction (the library's STAR-RCXT stand-in).
//
// Each net's capacitance is estimated as HPWL * unit wire cap plus the sum of
// the sink pin capacitances; the total is the load seen by the net's driver.
// That per-driver load is the C_i in the paper's CAP/SCAP formulas and the
// load term of the linear delay model.
#pragma once

#include <vector>

#include "layout/placement.h"
#include "netlist/netlist.h"
#include "netlist/tech_library.h"

namespace scap {

class Parasitics {
 public:
  /// wire_cap_pf_per_um defaults to 0.18 fF/um, a typical 180 nm value.
  static Parasitics extract(const Netlist& nl, const Placement& pl,
                            const TechLibrary& lib,
                            double wire_cap_pf_per_um = 0.00018);

  /// Total capacitive load on the net's driver [pF].
  double net_load_pf(NetId n) const { return net_load_pf_[n]; }
  /// Half-perimeter wirelength of the net [um].
  double net_hpwl_um(NetId n) const { return net_hpwl_um_[n]; }

  /// Load on a gate's output (C_i of the paper).
  double gate_load_pf(const Netlist& nl, GateId g) const {
    return net_load_pf_[nl.gate(g).out];
  }
  /// Load on a flop's Q output.
  double flop_load_pf(const Netlist& nl, FlopId f) const {
    return net_load_pf_[nl.flop(f).q];
  }

  double total_load_pf() const { return total_load_pf_; }
  double total_wirelength_um() const { return total_wirelength_um_; }

 private:
  std::vector<double> net_load_pf_;
  std::vector<double> net_hpwl_um_;
  double total_load_pf_ = 0.0;
  double total_wirelength_um_ = 0.0;
};

}  // namespace scap
