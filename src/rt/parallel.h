// Parallel loop and reduction primitives over the global work-stealing pool.
//
// Two chunking regimes:
//  - parallel_for with grain=0 ("static"): the index range is split into a
//    few chunks per thread. The chunk layout depends on the pool size, so it
//    is only for bodies whose writes are element-indexed (chunk boundaries
//    cannot influence the result).
//  - explicit grain ("dynamic"): fixed chunks of `grain` elements feed the
//    stealing scheduler for load balancing. parallel_transform_reduce always
//    uses this regime: its chunk layout is a pure function of (n, grain),
//    never of the thread count, and partial results are combined in chunk
//    index order -- so floating-point reductions associate identically at
//    every SCAP_THREADS value, including 1. That is the library-wide
//    determinism contract (README "Parallel runtime").
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "rt/thread_pool.h"

namespace scap::rt {

struct ForOptions {
  /// Elements per chunk; 0 = static split by pool concurrency.
  std::size_t grain = 0;
  /// Below this many elements the loop runs serially inline (parallel
  /// dispatch overhead would dominate).
  std::size_t min_items = 2;
};

/// Run body(begin, end) over disjoint subranges covering [0, n). Subranges
/// execute on arbitrary threads; bodies must only write element-indexed
/// state. With an explicit grain the subrange boundaries are the same fixed
/// chunks of `grain` elements on EVERY path -- parallel, serial fallback,
/// and nested -- so bodies whose behaviour depends on chunk boundaries
/// (e.g. one RNG stream per chunk) stay thread-count invariant.
inline void parallel_for(std::size_t n,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         ForOptions opt = {}) {
  if (n == 0) return;
  auto pool = ThreadPool::global();
  const std::size_t threads = pool->concurrency();
  if (n < opt.min_items || threads <= 1 || ThreadPool::on_worker_thread()) {
    if (opt.grain == 0) {
      body(0, n);
    } else {
      for (std::size_t b = 0; b < n; b += opt.grain) {
        body(b, std::min(n, b + opt.grain));
      }
    }
    return;
  }
  // Static: ~4 chunks per thread so one slow chunk can still be balanced.
  const std::size_t grain =
      opt.grain ? opt.grain : std::max<std::size_t>(1, (n + threads * 4 - 1) / (threads * 4));
  const std::size_t n_chunks = (n + grain - 1) / grain;
  if (obs::prof_enabled() && n_chunks >= 2) {
    obs::caller_prof_ring().record(
        obs::ProfKind::kGrain,
        static_cast<std::uint32_t>(std::min<std::size_t>(grain, 0xFFFFu)));
  }
  pool->run_chunked(n_chunks, [&](std::size_t c) {
    const std::size_t b = c * grain;
    body(b, std::min(n, b + grain));
  });
}

/// Deterministic ordered reduction: map(begin, end) produces one partial per
/// fixed-size chunk (serially, in index order, inside the chunk); partials
/// are combined left-to-right in chunk index order. `init` must be the
/// identity of `combine`. Bit-identical at any thread count.
template <typename T, typename MapFn, typename CombineFn>
T parallel_transform_reduce(std::size_t n, std::size_t grain, T init,
                            MapFn&& map, CombineFn&& combine) {
  if (n == 0) return init;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t n_chunks = (n + grain - 1) / grain;
  if (obs::prof_enabled() && n_chunks >= 2 &&
      !ThreadPool::on_worker_thread()) {
    obs::caller_prof_ring().record(
        obs::ProfKind::kGrain,
        static_cast<std::uint32_t>(std::min<std::size_t>(grain, 0xFFFFu)));
  }
  std::vector<T> partials(n_chunks, init);
  const std::function<void(std::size_t)> chunk_body = [&](std::size_t c) {
    const std::size_t b = c * grain;
    partials[c] = map(b, std::min(n, b + grain));
  };
  ThreadPool::global()->run_chunked(n_chunks, chunk_body);
  T acc = std::move(init);
  for (T& p : partials) acc = combine(std::move(acc), std::move(p));
  return acc;
}

/// Run two independent closures, possibly concurrently.
inline void parallel_invoke(const std::function<void()>& a,
                            const std::function<void()>& b) {
  ThreadPool::global()->run_chunked(2, [&](std::size_t c) { c == 0 ? a() : b(); });
}

}  // namespace scap::rt
