// Chase-Lev work-stealing deque.
//
// Single-owner double-ended queue: the owning worker pushes and pops at the
// bottom in LIFO order (hot cache, depth-first descent of the task tree);
// any other thread steals from the top in FIFO order (oldest == largest
// remaining range, which keeps stolen work coarse). Lock-free; the only
// contended operation is the top CAS between a stealer and the owner racing
// for the last element.
//
// The memory-order discipline follows Lê, Pop, Cohen & Nardelli, "Correct
// and Efficient Work-Stealing for Weakly Ordered Memory Models" (PPoPP'13),
// the proven-correct C11 formulation of the original Chase-Lev structure.
// Buffer slots are relaxed atomics so the unsynchronized slot reads that the
// algorithm deliberately allows are still data-race-free for the sanitizers.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace scap::rt {

template <typename T>
class WorkStealingDeque {
  static_assert(std::is_pointer_v<T>, "deque elements must be pointers");

 public:
  explicit WorkStealingDeque(std::int64_t capacity = 256) {
    buffer_.store(new Buffer(capacity), std::memory_order_relaxed);
  }
  ~WorkStealingDeque() {
    delete buffer_.load(std::memory_order_relaxed);
    for (Buffer* b : retired_) delete b;
  }
  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only. Amortized O(1); grows the ring on overflow.
  void push(T item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* a = buffer_.load(std::memory_order_relaxed);
    if (b - t > a->capacity - 1) {
      a = grow(a, t, b);
    }
    a->put(b, item);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner only. Returns nullptr when empty (or when a stealer won the race
  /// for the final element).
  T pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* a = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    T item = nullptr;
    if (t <= b) {
      item = a->get(b);
      if (t == b) {
        // Last element: race the stealers for it.
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          item = nullptr;
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread. Returns nullptr when empty or on a lost CAS race (callers
  /// treat both as "try another victim").
  T steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    T item = nullptr;
    if (t < b) {
      Buffer* a = buffer_.load(std::memory_order_acquire);
      item = a->get(t);
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        return nullptr;
      }
    }
    return item;
  }

  /// Approximate (racy) size; only used for observability gauges.
  std::int64_t size_estimate() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

 private:
  struct Buffer {
    const std::int64_t capacity;  // power of two
    std::unique_ptr<std::atomic<T>[]> slots;

    explicit Buffer(std::int64_t cap)
        : capacity(cap), slots(new std::atomic<T>[static_cast<std::size_t>(cap)]) {}
    T get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i & (capacity - 1))].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, T v) {
      slots[static_cast<std::size_t>(i & (capacity - 1))].store(
          v, std::memory_order_relaxed);
    }
  };

  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Buffer(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    buffer_.store(bigger, std::memory_order_release);
    // A stealer may still hold the old buffer pointer; retire it until the
    // deque itself dies instead of freeing under its feet.
    retired_.push_back(old);
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_{nullptr};
  std::vector<Buffer*> retired_;  // owner-only (push path)
};

}  // namespace scap::rt
