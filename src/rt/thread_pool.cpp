#include "rt/thread_pool.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "util/env.h"

namespace scap::rt {

namespace {

thread_local bool tl_on_worker = false;

// SCAP_THREADS is sampled exactly once, the first time any caller needs the
// default concurrency (normally the first ThreadPool::global() call, i.e.
// process startup). Long-lived processes such as the serve daemon therefore
// have a thread count fixed at startup: later environment mutation -- or a
// set_global_concurrency(0) reset -- cannot change it.
std::size_t env_concurrency() {
  static const std::size_t cached = [] {
    if (const char* env = util::env_cstr("SCAP_THREADS")) {
      const long n = std::atol(env);
      if (n >= 1) return std::min<std::size_t>(static_cast<std::size_t>(n), 256);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hw ? hw : 1);
  }();
  return cached;
}

std::mutex g_global_mu;
std::shared_ptr<ThreadPool> g_global;  // guarded by g_global_mu

}  // namespace

// One parallel region. Lives on the submitting thread's stack: every task
// pointer anywhere in the pool represents unexecuted chunks, so once
// `remaining` hits zero no reference to the job can exist and the submitter
// may safely return.
struct ThreadPool::Job {
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> remaining{0};
  // Task arena: a binary split tree over n chunks has at most 2n-1 nodes.
  // Bump-allocated so task creation is lock-free and addresses are stable.
  std::vector<Task> arena;
  std::atomic<std::size_t> arena_next{0};

  Task* alloc(Job* self, std::uint32_t begin, std::uint32_t end) {
    const std::size_t i = arena_next.fetch_add(1, std::memory_order_relaxed);
    assert(i < arena.size());
    Task& t = arena[i];
    t.job = self;
    t.begin = begin;
    t.end = end;
    return &t;
  }
};

ThreadPool::ThreadPool(std::size_t concurrency)
    : concurrency_(concurrency == 0 ? 1 : concurrency) {
  obs::Registry& reg = obs::Registry::global();
  jobs_ctr_ = &reg.counter("rt.jobs");
  chunks_ctr_ = &reg.counter("rt.chunks");
  tasks_ctr_ = &reg.counter("rt.tasks");
  steals_ctr_ = &reg.counter("rt.steals");
  steal_attempts_ctr_ = &reg.counter("rt.steal_attempts");
  for (std::size_t i = 0; i + 1 < concurrency_; ++i) {
    auto w = std::make_unique<Worker>();
    w->index = i;
    w->prof.set_lane(static_cast<std::uint32_t>(i));
    workers_.push_back(std::move(w));
  }
  for (auto& w : workers_) {
    w->thread = std::thread([this, worker = w.get()] { worker_main(worker); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

bool ThreadPool::on_worker_thread() noexcept { return tl_on_worker; }

void ThreadPool::inject(Task* task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    injector_.push_back(task);
  }
  cv_.notify_all();
}

ThreadPool::Task* ThreadPool::pop_injector() {
  std::lock_guard<std::mutex> lock(mu_);
  if (injector_.empty()) return nullptr;
  Task* t = injector_.back();
  injector_.pop_back();
  return t;
}

ThreadPool::Task* ThreadPool::steal_any(Worker* self) {
  const std::size_t n = workers_.size();
  if (n == 0) return nullptr;
  const std::size_t start = self ? self->index + 1 : 0;
  std::size_t attempts = 0;
  Task* t = nullptr;
  for (std::size_t k = 0; k < n && t == nullptr; ++k) {
    Worker* victim = workers_[(start + k) % n].get();
    if (victim == self) continue;
    ++attempts;
    t = victim->deque.steal();
  }
  if (obs::metrics_enabled() && attempts) {
    steal_attempts_ctr_->add(attempts);
    if (t) steals_ctr_->add(1);
  }
  if (obs::prof_enabled() && attempts) {
    obs::ProfRing& ring = self ? self->prof : obs::caller_prof_ring();
    ring.record(obs::ProfKind::kStealAttempt,
                static_cast<std::uint32_t>(attempts));
    if (t) ring.record(obs::ProfKind::kStealSuccess, 1);
  }
  return t;
}

void ThreadPool::execute(Task* task, Worker* self) {
  Job* job = task->job;
  std::uint32_t begin = task->begin;
  std::uint32_t end = task->end;
  const bool prof_on = obs::prof_enabled();
  if (prof_on) {
    (self ? self->prof : obs::caller_prof_ring())
        .record(obs::ProfKind::kTaskBegin, end - begin);
  }
  // Split in half until a single chunk remains; spare halves go to the own
  // deque (stealable, oldest-first == coarsest-first) or, from the
  // submitting thread, to the shared injector.
  while (end - begin > 1) {
    const std::uint32_t mid = begin + (end - begin) / 2;
    Task* spare = job->alloc(job, mid, end);
    if (self) {
      self->deque.push(spare);
    } else {
      inject(spare);
    }
    end = mid;
  }
  (*job->body)(begin);
  if (obs::metrics_enabled()) tasks_ctr_->add(1);
  // TaskEnd lands before the drain counter drops: once `remaining` hits zero
  // the submitter may collect a profile, which must already see this task.
  if (prof_on) {
    (self ? self->prof : obs::caller_prof_ring())
        .record(obs::ProfKind::kTaskEnd);
  }
  job->remaining.fetch_sub(1, std::memory_order_acq_rel);
}

void ThreadPool::worker_main(Worker* self) {
  tl_on_worker = true;
  int idle_sweeps = 0;
  int napped_us = 100;
  for (;;) {
    Task* t = self->deque.pop();
    if (!t) t = steal_any(self);
    if (!t) t = pop_injector();
    if (t) {
      execute(t, self);
      idle_sweeps = 0;
      napped_us = 100;
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    if (active_jobs_.load(std::memory_order_acquire) > 0) {
      // A job is in flight but nothing was stealable this sweep. Stay hot
      // briefly -- split tasks appear without notification while a region is
      // active -- but bound the spin: when workers outnumber hardware
      // threads, unbounded yielding steals the very timeslices the running
      // tasks need. Past the budget, park with a timeout (backing off while
      // fruitless) so late-appearing tasks are still picked up; a new job's
      // notify_all wakes parked workers immediately.
      if (++idle_sweeps <= 16) {
        std::this_thread::yield();
        continue;
      }
      std::unique_lock<std::mutex> lock(mu_);
      self->prof.record(obs::ProfKind::kPark);
      cv_.wait_for(lock, std::chrono::microseconds(napped_us), [&] {
        return stop_.load(std::memory_order_relaxed) || !injector_.empty();
      });
      self->prof.record(obs::ProfKind::kUnpark);
      napped_us = std::min(napped_us * 2, 4000);
      idle_sweeps = 0;
      continue;
    }
    idle_sweeps = 0;
    napped_us = 100;
    std::unique_lock<std::mutex> lock(mu_);
    self->prof.record(obs::ProfKind::kPark);
    cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_relaxed) ||
             active_jobs_.load(std::memory_order_relaxed) > 0 ||
             !injector_.empty();
    });
    self->prof.record(obs::ProfKind::kUnpark);
    if (stop_.load(std::memory_order_relaxed)) break;
  }
  tl_on_worker = false;
}

void ThreadPool::run_chunked(std::size_t n_chunks,
                             const std::function<void(std::size_t)>& body) {
  if (n_chunks == 0) return;
  // Serial pool, trivial region, or nested call from inside a worker: run
  // inline in index order. This is the same chunk decomposition the parallel
  // path executes, so results are identical by construction.
  if (workers_.empty() || n_chunks < 2 || on_worker_thread()) {
    for (std::size_t c = 0; c < n_chunks; ++c) body(c);
    return;
  }
  SCAP_TRACE_SCOPE("rt.job");
  const bool prof_on = obs::prof_enabled();
  if (prof_on) {
    obs::caller_prof_ring().record(obs::ProfKind::kJobBegin,
                                   static_cast<std::uint32_t>(std::min<
                                       std::size_t>(n_chunks, 0xFFFFu)));
  }
  if (obs::metrics_enabled()) {
    jobs_ctr_->add(1);
    chunks_ctr_->add(n_chunks);
  }

  Job job;
  job.body = &body;
  job.remaining.store(n_chunks, std::memory_order_relaxed);
  job.arena.resize(2 * n_chunks);
  Task* root = job.alloc(&job, 0, static_cast<std::uint32_t>(n_chunks));

  {
    std::lock_guard<std::mutex> lock(mu_);
    active_jobs_.fetch_add(1, std::memory_order_relaxed);
    injector_.push_back(root);
  }
  // The submitter participates too, so a job with few chunks needs few
  // workers; waking the whole pool for a 2-chunk job just adds scheduling
  // pressure (worst on hosts with fewer cores than workers).
  const std::size_t to_wake = std::min(workers_.size(), n_chunks - 1);
  if (to_wake >= workers_.size()) {
    cv_.notify_all();
  } else {
    for (std::size_t i = 0; i < to_wake; ++i) cv_.notify_one();
  }

  // Participate until this job drains. Tasks of other concurrent jobs may be
  // picked up too -- they never block, so helping them only speeds things up.
  // The drain tail (all tasks claimed, some still executing) spins briefly
  // then sleeps in short slices: on an oversubscribed host an unbounded
  // yield loop competes with the workers finishing the job.
  int idle_sweeps = 0;
  while (job.remaining.load(std::memory_order_acquire) != 0) {
    Task* t = pop_injector();
    if (!t) t = steal_any(nullptr);
    if (t) {
      execute(t, nullptr);
      idle_sweeps = 0;
    } else if (++idle_sweeps <= 16) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  active_jobs_.fetch_sub(1, std::memory_order_relaxed);
  if (prof_on) obs::caller_prof_ring().record(obs::ProfKind::kJobEnd);
}

std::shared_ptr<ThreadPool> ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (!g_global) g_global = std::make_shared<ThreadPool>(env_concurrency());
  return g_global;
}

void ThreadPool::set_global_concurrency(std::size_t concurrency) {
  auto next = std::make_shared<ThreadPool>(
      concurrency == 0 ? env_concurrency() : concurrency);
  std::lock_guard<std::mutex> lock(g_global_mu);
  g_global = std::move(next);
}

std::size_t concurrency() { return ThreadPool::global()->concurrency(); }

}  // namespace scap::rt
