// Work-stealing thread pool shared by every parallel kernel in the library.
//
// Workers each own a Chase-Lev deque (rt/deque.h); a submitted job is one
// root task covering chunk-index range [0, n) that executors split in half
// recursively, pushing the upper half for idle threads to steal. The
// submitting thread participates until its job drains, so `SCAP_THREADS=N`
// means N-way concurrency total (N-1 pool workers plus the caller) and
// `SCAP_THREADS=1` (or a single-core host) means strictly serial inline
// execution with no threads, no queues and no atomics on the hot path.
//
// Determinism contract: the pool assigns chunks to threads arbitrarily, so
// callers must make results a pure function of the chunk index (write to
// chunk-indexed slots, combine in index order -- see rt/parallel.h). Under
// that discipline every kernel in the library is bit-identical at any thread
// count.
//
// Environment:
//   SCAP_THREADS=N   total concurrency (default: hardware threads); read
//                    once at startup and cached for the process lifetime
//
// Observability: counters rt.jobs / rt.chunks / rt.tasks / rt.steals /
// rt.steal_attempts, span timer "rt.job" around every parallel region.
// (A queue-depth gauge sampled at submit time used to live here; it read 0
// on every sample -- the injector has not been split into worker deques yet
// at that point -- so it was dropped.) Under SCAP_PROF=1 every worker and
// submitting caller additionally records task/steal/park/job events into a
// per-lane ring (obs/prof.h) for the scheduler-level profile.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/prof.h"
#include "rt/deque.h"

namespace scap::obs {
class Counter;
}

namespace scap::rt {

class ThreadPool {
 public:
  /// `concurrency` counts the submitting thread: the pool spawns
  /// `concurrency - 1` workers. 0 is treated as 1.
  explicit ThreadPool(std::size_t concurrency);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t concurrency() const { return concurrency_; }

  /// Run body(chunk) for every chunk in [0, n_chunks) and return when all
  /// have executed. The caller participates. body must be thread-safe;
  /// chunk->thread placement is arbitrary (see the determinism contract
  /// above). Executes inline when the pool is serial, n_chunks < 2, or the
  /// calling thread is itself a pool worker (nested regions are serialized
  /// rather than risking deadlock).
  void run_chunked(std::size_t n_chunks,
                   const std::function<void(std::size_t)>& body);

  /// Lazily constructed process-wide pool. Its default concurrency comes from
  /// a single SCAP_THREADS read cached at first use -- the value is fixed for
  /// the life of the process. Returned as shared_ptr so
  /// set_global_concurrency can swap the instance while stragglers finish
  /// against the old one.
  static std::shared_ptr<ThreadPool> global();

  /// Rebuild the global pool at the given concurrency (0 = restore the
  /// startup-cached SCAP_THREADS / hardware default; the environment is NOT
  /// re-read). For tests and bench sweeps; callers must be quiescent (no
  /// parallel region in flight).
  static void set_global_concurrency(std::size_t concurrency);

  /// True on a pool worker thread (used to serialize nested regions).
  static bool on_worker_thread() noexcept;

 private:
  struct Job;
  struct Task {
    Job* job = nullptr;
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };
  struct Worker {
    WorkStealingDeque<Task*> deque;
    std::size_t index = 0;
    std::thread thread;
    obs::ProfRing prof{obs::ProfRing::Owner::kWorker};
  };

  void worker_main(Worker* self);
  void execute(Task* task, Worker* self);
  Task* steal_any(Worker* self);
  Task* pop_injector();
  void inject(Task* task);

  std::size_t concurrency_ = 1;
  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Task*> injector_;  // guarded by mu_
  std::atomic<int> active_jobs_{0};
  std::atomic<bool> stop_{false};

  // Cached registry entries (never invalidated; see obs/metrics.h).
  obs::Counter* jobs_ctr_ = nullptr;
  obs::Counter* chunks_ctr_ = nullptr;
  obs::Counter* tasks_ctr_ = nullptr;
  obs::Counter* steals_ctr_ = nullptr;
  obs::Counter* steal_attempts_ctr_ = nullptr;
};

/// Concurrency of the global pool (>= 1).
std::size_t concurrency();

}  // namespace scap::rt
