// Comparison engine behind tools/bench_diff: flatten BENCH_*.json artifacts
// (obs/report.h schema) into named metric rows, classify each metric's
// improvement direction from its name, and diff a current run against a
// committed baseline with relative tolerance. A run also appends one JSONL
// row to bench/history/trajectory.jsonl so the repo accumulates a
// performance trajectory across PRs.
//
// Direction rules (by suffix of the flattened name, after stripping the
// aggregate suffix ".mean"):
//   *_speedup, *_efficiency, *per_sec            -> higher is better
//   *_ms (covers wall_ms, total_ms, t4_ms, ...)  -> lower is better
//   anything else                                -> informational only
// Informational metrics are tracked in the trajectory but can never fail a
// diff -- counters like rt.tasks move legitimately whenever code changes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace scap::obs::bench {

enum class Direction { kHigherBetter, kLowerBetter, kInfo };

Direction classify_metric(std::string_view name);

/// One flattened metric from a BENCH artifact.
struct MetricRow {
  std::string name;  ///< e.g. "gauges.rt.sweep.faultsim_grade.t4_speedup.mean"
  double value = 0.0;
  Direction direction = Direction::kInfo;
};

/// Flatten one parsed BENCH_*.json into sorted rows:
///   counters.<name>            counter value
///   gauges.<name>.mean         gauge distribution mean
///   timers.<name>.total_ms     span timer total
///   phases.<name>.wall_ms      phase wall time
/// Unknown sections are ignored, so the flattener tolerates schema growth.
std::vector<MetricRow> flatten_bench(const json::Value& bench);

/// One compared metric (present in both baseline and current).
struct Delta {
  std::string name;
  double baseline = 0.0;
  double current = 0.0;
  double rel_change = 0.0;  ///< (current - baseline) / |baseline|; 0 if base 0
  Direction direction = Direction::kInfo;
  bool regression = false;
};

struct DiffResult {
  std::vector<Delta> rows;           ///< every metric present in both runs
  std::vector<std::string> added;    ///< in current only
  std::vector<std::string> removed;  ///< in baseline only
  std::size_t regressions = 0;

  bool ok() const { return regressions == 0; }
};

/// Diff `current` against `baseline`. A directional metric regresses when it
/// moves the wrong way by more than `rel_tolerance` (fraction, e.g. 0.1 =
/// 10%). Metrics whose baseline is 0 are reported but never regress (no
/// meaningful relative scale).
DiffResult compare(const json::Value& baseline, const json::Value& current,
                   double rel_tolerance);

/// Human-readable table of the diff (regressions first, then the largest
/// movers; steady informational metrics are summarized, not listed).
std::string format_diff(const DiffResult& diff, double rel_tolerance);

/// One compact JSONL trajectory row:
///   {"bench":...,"label":...,"unix_time":...,"metrics":{name:value,...}}
std::string trajectory_line(std::string_view bench_name,
                            std::string_view label, std::int64_t unix_time,
                            const std::vector<MetricRow>& rows);

}  // namespace scap::obs::bench
