#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <system_error>

#include "obs/metrics.h"
#include "util/env.h"

namespace scap::obs {

std::atomic<unsigned> g_obs_flags{kFlagMetrics};

namespace {

/// Per-thread buffer cap: a runaway trace degrades to dropped events rather
/// than unbounded memory (each event is 24 bytes; 4M events ~ 96 MB).
constexpr std::size_t kMaxEventsPerThread = 4u << 20;

std::mutex g_config_mu;
ObsConfig g_config;

struct ThreadBuffer;
struct TraceState {
  std::mutex mu;  ///< guards live / retired / dropped
  std::vector<ThreadBuffer*> live;
  std::vector<TraceEvent> retired;  ///< events of exited threads
  std::uint32_t next_tid = 0;
  std::uint64_t dropped = 0;
  /// Bumped by trace_clear(); buffers stamped with an older epoch are stale.
  std::atomic<std::uint64_t> clear_epoch{0};
};

TraceState& state() {
  static TraceState* s = new TraceState;  // leaked: threads may outlive main
  return *s;
}

struct ThreadBuffer {
  std::mutex mu;  ///< guards events / dropped / epoch (owner push vs snapshot)
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
  std::uint64_t dropped = 0;
  std::uint64_t epoch = 0;

  ThreadBuffer() {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    tid = s.next_tid++;
    epoch = s.clear_epoch.load(std::memory_order_relaxed);
    s.live.push_back(this);
  }
  ~ThreadBuffer() {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    if (epoch == s.clear_epoch.load(std::memory_order_relaxed)) {
      s.retired.insert(s.retired.end(), events.begin(), events.end());
      s.dropped += dropped;
    }
    s.live.erase(std::find(s.live.begin(), s.live.end(), this));
  }

  void push(const char* name, double ts, char phase) {
    std::lock_guard<std::mutex> lock(mu);
    const std::uint64_t now_epoch =
        state().clear_epoch.load(std::memory_order_relaxed);
    if (epoch != now_epoch) {  // a trace_clear() happened since our last event
      events.clear();
      dropped = 0;
      epoch = now_epoch;
    }
    if (events.size() >= kMaxEventsPerThread) {
      ++dropped;
      return;
    }
    events.push_back(TraceEvent{name, ts, tid, phase});
  }
};

ThreadBuffer& thread_buffer() {
  thread_local ThreadBuffer buf;
  return buf;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

void dump_at_exit() {
  const ObsConfig cfg = config();
  if (!cfg.dump_trace_at_exit || !trace_enabled()) return;
  if (trace_snapshot().empty()) return;
  if (dump_chrome_trace(cfg.trace_path)) {
    std::fprintf(stderr, "[scap-obs] wrote trace to %s\n",
                 cfg.trace_path.c_str());
  } else {
    std::fprintf(stderr, "[scap-obs] failed to write trace to %s\n",
                 cfg.trace_path.c_str());
  }
}

/// Applies the environment configuration as soon as the library is loaded
/// (any TU calling into trace.cpp pulls this in).
struct EnvInit {
  EnvInit() {
    trace_epoch();  // pin t=0 to process start
    configure(config_from_env());
    std::atexit(dump_at_exit);
  }
};
const EnvInit g_env_init;

}  // namespace

std::string default_trace_path() {
  std::error_code ec;
  const std::filesystem::path exe =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  if (ec || !exe.has_parent_path()) return "scap_trace.json";
  return (exe.parent_path() / "scap_trace.json").string();
}

ObsConfig config_from_env() {
  ObsConfig cfg;
  // Static-init-time reads; nothing mutates the environment.
  if (const char* env = util::env_cstr("SCAP_TRACE")) {
    if (std::strcmp(env, "0") != 0 && env[0] != '\0') {
      cfg.trace = true;
      cfg.dump_trace_at_exit = true;
      // SCAP_TRACE=1 routes next to the binary; an explicit path wins.
      cfg.trace_path =
          std::strcmp(env, "1") == 0 ? default_trace_path() : env;
    }
  }
  if (const char* env = util::env_cstr("SCAP_METRICS")) {
    cfg.metrics = std::strcmp(env, "0") != 0 && env[0] != '\0';
  }
  if (const char* env = util::env_cstr("SCAP_PROF")) {
    cfg.prof = std::strcmp(env, "0") != 0 && env[0] != '\0';
  }
  return cfg;
}

void configure(const ObsConfig& cfg) {
  std::lock_guard<std::mutex> lock(g_config_mu);
  g_config = cfg;
  g_obs_flags.store((cfg.trace ? kFlagTrace : 0u) |
                        (cfg.metrics ? kFlagMetrics : 0u) |
                        (cfg.prof ? kFlagProf : 0u),
                    std::memory_order_relaxed);
}

ObsConfig config() {
  std::lock_guard<std::mutex> lock(g_config_mu);
  return g_config;
}

double now_us() {
  const auto dt = std::chrono::steady_clock::now() - trace_epoch();
  return std::chrono::duration<double, std::micro>(dt).count();
}

void trace_begin(const char* name) {
  thread_buffer().push(name, now_us(), 'B');
}

void trace_end(const char* name) {
  thread_buffer().push(name, now_us(), 'E');
}

std::vector<TraceEvent> trace_snapshot() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  const std::uint64_t now_epoch = s.clear_epoch.load(std::memory_order_relaxed);
  std::vector<TraceEvent> out = s.retired;
  for (ThreadBuffer* b : s.live) {
    std::lock_guard<std::mutex> blk(b->mu);
    if (b->epoch != now_epoch) continue;  // stale since last clear
    out.insert(out.end(), b->events.begin(), b->events.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

void trace_inject(const std::vector<TraceEvent>& events) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.retired.insert(s.retired.end(), events.begin(), events.end());
}

void trace_clear() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.retired.clear();
  s.dropped = 0;
  // Live buffers self-invalidate on their owner's next push.
  s.clear_epoch.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t trace_dropped() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  const std::uint64_t now_epoch = s.clear_epoch.load(std::memory_order_relaxed);
  std::uint64_t n = s.dropped;
  for (ThreadBuffer* b : s.live) {
    std::lock_guard<std::mutex> blk(b->mu);
    if (b->epoch == now_epoch) n += b->dropped;
  }
  return n;
}

double span_begin(const char* name) {
  const double t = now_us();
  if (trace_enabled()) thread_buffer().push(name, t, 'B');
  return t;
}

void span_end(const char* name, double start_us) {
  const double t = now_us();
  if (trace_enabled()) thread_buffer().push(name, t, 'E');
  if (metrics_enabled()) {
    Registry::global().timer(name).observe_ms((t - start_us) / 1000.0);
  }
}

}  // namespace scap::obs
