#include "obs/bench_compare.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/table.h"

namespace scap::obs::bench {

namespace {

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

double number_or(const json::Value* v, double fallback) {
  return (v && v->kind == json::Value::Kind::kNumber) ? v->number : fallback;
}

/// "gauges.<name>.mean" and friends classify by the underlying metric name.
std::string_view strip_aggregate(std::string_view name) {
  if (ends_with(name, ".mean")) name.remove_suffix(5);
  return name;
}

}  // namespace

Direction classify_metric(std::string_view name) {
  const std::string_view base = strip_aggregate(name);
  if (ends_with(base, "_speedup") || ends_with(base, "_efficiency") ||
      ends_with(base, "per_sec")) {
    return Direction::kHigherBetter;
  }
  if (ends_with(base, "_ms")) return Direction::kLowerBetter;
  return Direction::kInfo;
}

std::vector<MetricRow> flatten_bench(const json::Value& bench) {
  std::vector<MetricRow> rows;
  auto push = [&rows](std::string name, double value) {
    MetricRow r;
    r.direction = classify_metric(name);
    r.name = std::move(name);
    r.value = value;
    rows.push_back(std::move(r));
  };

  if (const json::Value* counters = bench.find("counters")) {
    for (const auto& [k, v] : counters->object) {
      if (v.kind == json::Value::Kind::kNumber) {
        push("counters." + k, v.number);
      }
    }
  }
  if (const json::Value* gauges = bench.find("gauges")) {
    for (const auto& [k, v] : gauges->object) {
      if (const json::Value* mean = v.find("mean")) {
        push("gauges." + k + ".mean", number_or(mean, 0.0));
      }
    }
  }
  if (const json::Value* timers = bench.find("timers")) {
    for (const auto& [k, v] : timers->object) {
      if (const json::Value* total = v.find("total_ms")) {
        push("timers." + k + ".total_ms", number_or(total, 0.0));
      }
    }
  }
  if (const json::Value* phases = bench.find("phases")) {
    for (const json::Value& p : phases->array) {
      const json::Value* name = p.find("name");
      const json::Value* wall = p.find("wall_ms");
      if (name && wall && name->kind == json::Value::Kind::kString) {
        push("phases." + name->string + ".wall_ms", number_or(wall, 0.0));
      }
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const MetricRow& a, const MetricRow& b) { return a.name < b.name; });
  return rows;
}

DiffResult compare(const json::Value& baseline, const json::Value& current,
                   double rel_tolerance) {
  const std::vector<MetricRow> base = flatten_bench(baseline);
  const std::vector<MetricRow> cur = flatten_bench(current);
  DiffResult out;

  std::size_t i = 0, j = 0;
  while (i < base.size() || j < cur.size()) {
    if (j >= cur.size() || (i < base.size() && base[i].name < cur[j].name)) {
      out.removed.push_back(base[i++].name);
      continue;
    }
    if (i >= base.size() || cur[j].name < base[i].name) {
      out.added.push_back(cur[j++].name);
      continue;
    }
    Delta d;
    d.name = base[i].name;
    d.baseline = base[i].value;
    d.current = cur[j].value;
    d.direction = base[i].direction;
    if (d.baseline != 0.0 && std::isfinite(d.baseline)) {
      d.rel_change = (d.current - d.baseline) / std::fabs(d.baseline);
      if (d.direction == Direction::kLowerBetter) {
        d.regression = d.rel_change > rel_tolerance;
      } else if (d.direction == Direction::kHigherBetter) {
        d.regression = d.rel_change < -rel_tolerance;
      }
    }
    if (d.regression) ++out.regressions;
    out.rows.push_back(std::move(d));
    ++i;
    ++j;
  }
  return out;
}

std::string format_diff(const DiffResult& diff, double rel_tolerance) {
  std::ostringstream os;
  os << "bench_diff: " << diff.rows.size() << " shared metrics, "
     << diff.added.size() << " added, " << diff.removed.size() << " removed, "
     << "tolerance " << static_cast<int>(rel_tolerance * 100.0 + 0.5)
     << "%\n";

  // Regressions first, then the largest directional movers; informational
  // metrics only appear when they moved a lot (context, never a failure).
  std::vector<const Delta*> shown;
  for (const Delta& d : diff.rows) {
    const bool directional = d.direction != Direction::kInfo;
    if (d.regression || (directional && std::fabs(d.rel_change) > rel_tolerance) ||
        (!directional && std::fabs(d.rel_change) > 4.0 * rel_tolerance &&
         d.baseline != 0.0)) {
      shown.push_back(&d);
    }
  }
  std::sort(shown.begin(), shown.end(), [](const Delta* a, const Delta* b) {
    if (a->regression != b->regression) return a->regression;
    return std::fabs(a->rel_change) > std::fabs(b->rel_change);
  });

  if (shown.empty()) {
    os << "all metrics within tolerance\n";
  } else {
    TextTable t({"metric", "baseline", "current", "change", "status"});
    for (const Delta* d : shown) {
      const char* status = d->regression ? "REGRESSION"
                           : d->direction == Direction::kInfo ? "info"
                                                              : "ok";
      char pct[32];
      std::snprintf(pct, sizeof pct, "%+.1f%%", d->rel_change * 100.0);
      t.add_row({d->name, TextTable::num(d->baseline),
                 TextTable::num(d->current), pct, status});
    }
    os << t.render();
  }
  for (const std::string& name : diff.added) os << "added:   " << name << "\n";
  for (const std::string& name : diff.removed) os << "removed: " << name << "\n";
  if (diff.regressions) {
    os << diff.regressions << " regression(s) beyond tolerance\n";
  }
  return os.str();
}

std::string trajectory_line(std::string_view bench_name,
                            std::string_view label, std::int64_t unix_time,
                            const std::vector<MetricRow>& rows) {
  json::Value root;
  root.kind = json::Value::Kind::kObject;
  auto add = [&root](std::string key, json::Value v) {
    root.object.emplace_back(std::move(key), std::move(v));
  };
  json::Value s;
  s.kind = json::Value::Kind::kString;
  s.string = std::string(bench_name);
  add("bench", s);
  s.string = std::string(label);
  add("label", s);
  json::Value n;
  n.kind = json::Value::Kind::kNumber;
  n.number = static_cast<double>(unix_time);
  add("unix_time", n);
  json::Value metrics;
  metrics.kind = json::Value::Kind::kObject;
  for (const MetricRow& r : rows) {
    n.number = r.value;
    metrics.object.emplace_back(r.name, n);
  }
  add("metrics", std::move(metrics));
  return root.dump();
}

}  // namespace scap::obs::bench
