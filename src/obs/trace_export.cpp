// Chrome `chrome://tracing` / Perfetto JSON export of the trace buffers.
#include <fstream>
#include <ostream>

#include "obs/report.h"
#include "obs/trace.h"

namespace scap::obs {

void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceEvent>& events) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << json_escape(e.name ? e.name : "")
       << "\",\"cat\":\"scap\",\"ph\":\"" << e.phase << "\",\"ts\":" << e.ts_us
       << ",\"pid\":1,\"tid\":" << e.tid << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void write_chrome_trace(std::ostream& os) {
  write_chrome_trace(os, trace_snapshot());
}

bool dump_chrome_trace(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os);
  return os.good();
}

}  // namespace scap::obs
