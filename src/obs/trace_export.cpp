// Chrome `chrome://tracing` / Perfetto JSON export of the trace buffers.
#include <fstream>
#include <ostream>
#include <set>

#include "obs/report.h"
#include "obs/trace.h"

namespace scap::obs {

void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceEvent>& events) {
  os << "{\"traceEvents\":[";
  bool first = true;
  // Synthetic scheduler-profiler lanes (tid >= kProfLaneBase, injected via
  // trace_inject) get thread_name metadata so the flame view labels each pool
  // worker / submitting caller instead of showing a bare huge tid.
  std::set<std::uint32_t> prof_lanes;
  for (const TraceEvent& e : events) {
    if (e.tid >= kProfLaneBase) prof_lanes.insert(e.tid);
  }
  for (std::uint32_t lane : prof_lanes) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << lane
       << ",\"args\":{\"name\":\"rt lane " << (lane - kProfLaneBase) << "\"}}";
  }
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << json_escape(e.name ? e.name : "")
       << "\",\"cat\":\"scap\",\"ph\":\"" << e.phase << "\",\"ts\":" << e.ts_us
       << ",\"pid\":1,\"tid\":" << e.tid << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void write_chrome_trace(std::ostream& os) {
  write_chrome_trace(os, trace_snapshot());
}

bool dump_chrome_trace(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os);
  return os.good();
}

}  // namespace scap::obs
