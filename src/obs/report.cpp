#include "obs/report.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/json.h"
#include "util/env.h"

namespace scap::obs {

namespace {

/// Format a double so the output is valid JSON (no inf/nan) and round-trips.
std::string num(double x) {
  std::string out;
  json::append_number(out, x);
  return out;
}

void append_stats(std::ostringstream& os, const RunningStats& s) {
  os << "{\"count\":" << s.count() << ",\"mean\":" << num(s.mean())
     << ",\"min\":" << num(s.min()) << ",\"max\":" << num(s.max())
     << ",\"stddev\":" << num(s.stddev()) << "}";
}

void append_timer_snap(std::ostringstream& os, const Registry::TimerSnap& t) {
  os << "{\"count\":" << t.stats.count() << ",\"total_ms\":" << num(t.total_ms)
     << ",\"mean_ms\":" << num(t.stats.mean())
     << ",\"min_ms\":" << num(t.stats.min())
     << ",\"max_ms\":" << num(t.stats.max()) << "}";
}

/// Emit `"counters":{...},"gauges":{...},"timers":{...}` from a snapshot,
/// with `indent` leading spaces before each section key.
void append_snapshot_sections(std::ostringstream& os,
                              const Registry::Snapshot& snap,
                              const std::string& indent) {
  os << indent << "\"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i) os << ", ";
    os << "\"" << json_escape(snap.counters[i].first)
       << "\": " << snap.counters[i].second;
  }
  os << "},\n" << indent << "\"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i) os << ", ";
    os << "\"" << json_escape(snap.gauges[i].first) << "\": ";
    append_stats(os, snap.gauges[i].second);
  }
  os << "},\n" << indent << "\"timers\": {";
  for (std::size_t i = 0; i < snap.timers.size(); ++i) {
    if (i) os << ", ";
    os << "\"" << json_escape(snap.timers[i].name) << "\": ";
    append_timer_snap(os, snap.timers[i]);
  }
  os << "}";
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_json(const RunReport& rep, const Registry& reg) {
  std::ostringstream os;
  os << "{\n  \"name\": \"" << json_escape(rep.name) << "\",\n  \"info\": {";
  for (std::size_t i = 0; i < rep.info.size(); ++i) {
    if (i) os << ", ";
    os << "\"" << json_escape(rep.info[i].first) << "\": \""
       << json_escape(rep.info[i].second) << "\"";
  }
  os << "},\n  \"phases\": [";
  for (std::size_t i = 0; i < rep.phases.size(); ++i) {
    if (i) os << ",";
    os << "\n    {\"name\": \"" << json_escape(rep.phases[i].name)
       << "\", \"wall_ms\": " << num(rep.phases[i].wall_ms) << "}";
  }
  os << (rep.phases.empty() ? "]" : "\n  ]") << ",\n  \"counters\": {";
  const auto counters = reg.counters();
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i) os << ",";
    os << "\n    \"" << json_escape(counters[i].first)
       << "\": " << counters[i].second;
  }
  os << (counters.empty() ? "}" : "\n  }") << ",\n  \"gauges\": {";
  const auto gauges = reg.gauges();
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i) os << ",";
    os << "\n    \"" << json_escape(gauges[i].first) << "\": ";
    append_stats(os, gauges[i].second);
  }
  os << (gauges.empty() ? "}" : "\n  }") << ",\n  \"timers\": {";
  const auto timers = reg.timers();
  for (std::size_t i = 0; i < timers.size(); ++i) {
    if (i) os << ",";
    os << "\n    \"" << json_escape(timers[i].name)
       << "\": {\"count\":" << timers[i].stats.count()
       << ",\"total_ms\":" << num(timers[i].total_ms)
       << ",\"mean_ms\":" << num(timers[i].stats.mean())
       << ",\"min_ms\":" << num(timers[i].stats.min())
       << ",\"max_ms\":" << num(timers[i].stats.max()) << "}";
  }
  os << (timers.empty() ? "}" : "\n  }") << "\n}\n";
  return os.str();
}

std::string to_json(const RunReport& rep) {
  Registry::Snapshot total;
  for (const PhaseTime& p : rep.phases) total.merge(p.metrics);

  std::ostringstream os;
  os << "{\n  \"name\": \"" << json_escape(rep.name) << "\",\n  \"info\": {";
  for (std::size_t i = 0; i < rep.info.size(); ++i) {
    if (i) os << ", ";
    os << "\"" << json_escape(rep.info[i].first) << "\": \""
       << json_escape(rep.info[i].second) << "\"";
  }
  os << "},\n  \"phases\": [";
  for (std::size_t i = 0; i < rep.phases.size(); ++i) {
    const PhaseTime& p = rep.phases[i];
    if (i) os << ",";
    os << "\n    {\"name\": \"" << json_escape(p.name)
       << "\", \"wall_ms\": " << num(p.wall_ms);
    if (!p.metrics.empty()) {
      os << ",\n     \"metrics\": {\n";
      append_snapshot_sections(os, p.metrics, "      ");
      os << "\n     }";
    }
    os << "}";
  }
  os << (rep.phases.empty() ? "]" : "\n  ]") << ",\n";
  append_snapshot_sections(os, total, "  ");
  os << "\n}\n";
  return os.str();
}

std::string to_csv(const Registry& reg) {
  std::ostringstream os;
  os << "kind,name,count,value,mean,min,max\n";
  for (const auto& [name, v] : reg.counters()) {
    os << "counter," << name << ",1," << v << ",,,\n";
  }
  for (const auto& [name, s] : reg.gauges()) {
    os << "gauge," << name << "," << s.count() << ",," << num(s.mean()) << ","
       << num(s.min()) << "," << num(s.max()) << "\n";
  }
  for (const auto& t : reg.timers()) {
    os << "timer," << t.name << "," << t.stats.count() << ","
       << num(t.total_ms) << "," << num(t.stats.mean()) << ","
       << num(t.stats.min()) << "," << num(t.stats.max()) << "\n";
  }
  return os.str();
}

bool write_file(const std::string& path, std::string_view contents) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  os.write(contents.data(),
           static_cast<std::streamsize>(contents.size()));
  return os.good();
}

std::string bench_artifact_path(std::string_view bench_name) {
  std::string dir;
  // Artifact emission is a main-thread epilogue; env is never written.
  if (const char* env = util::env_cstr("SCAP_METRICS_DIR")) {
    if (env[0] != '\0') dir = env;
  }
  std::string path;
  if (!dir.empty()) {
    path = dir;
    if (path.back() != '/') path += '/';
  }
  path += "BENCH_";
  path += bench_name;
  path += ".json";
  return path;
}

}  // namespace scap::obs
