// Minimal recursive-descent JSON reader (header-only).
//
// Just enough to validate and round-trip the artifacts the instrumentation
// layer emits (BENCH_*.json metrics, Chrome traces): objects, arrays,
// strings with the escapes json_escape produces, numbers, booleans, null.
// Not a general-purpose parser -- no \uXXXX surrogate pairs, no duplicate-key
// policy (last one is kept for lookup, all are kept in order for dump()).
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace scap::obs::json {

/// Append `x` as the shortest decimal literal that parses back (strtod) to
/// exactly the same double. Tries 15/16/17 significant digits in order; 17 is
/// always sufficient for IEEE binary64, so every finite value round-trips
/// bit-exactly through dump() -> parse() (trajectory rows and BENCH diffs must
/// not drift through re-serialization cycles). Non-finite values, which JSON
/// cannot represent, degrade to 0.
inline void append_number(std::string& out, double x) {
  if (!(x == x) || x > 1.7976931348623157e308 || x < -1.7976931348623157e308) {
    out += '0';  // NaN / +-inf
    return;
  }
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, x);
    if (std::strtod(buf, nullptr) == x) break;
  }
  out += buf;
}

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  ///< insertion order

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// First member with this key, or nullptr.
  const Value* find(std::string_view key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  friend bool operator==(const Value& a, const Value& b) {
    if (a.kind != b.kind) return false;
    switch (a.kind) {
      case Kind::kNull:
        return true;
      case Kind::kBool:
        return a.boolean == b.boolean;
      case Kind::kNumber:
        return a.number == b.number;
      case Kind::kString:
        return a.string == b.string;
      case Kind::kArray:
        return a.array == b.array;
      case Kind::kObject:
        return a.object == b.object;
    }
    return false;
  }

  /// Re-serialize (canonical escapes; numbers via append_number round-trip
  /// bit-exactly).
  std::string dump() const {
    std::string out;
    dump_to(out);
    return out;
  }

 private:
  static void dump_string(const std::string& s, std::string& out) {
    out += '"';
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
  }

  void dump_to(std::string& out) const {
    switch (kind) {
      case Kind::kNull:
        out += "null";
        break;
      case Kind::kBool:
        out += boolean ? "true" : "false";
        break;
      case Kind::kNumber:
        append_number(out, number);
        break;
      case Kind::kString:
        dump_string(string, out);
        break;
      case Kind::kArray:
        out += '[';
        for (std::size_t i = 0; i < array.size(); ++i) {
          if (i) out += ',';
          array[i].dump_to(out);
        }
        out += ']';
        break;
      case Kind::kObject:
        out += '{';
        for (std::size_t i = 0; i < object.size(); ++i) {
          if (i) out += ',';
          dump_string(object[i].first, out);
          out += ':';
          object[i].second.dump_to(out);
        }
        out += '}';
        break;
    }
  }
};

namespace detail {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  std::optional<Value> parse() {
    std::optional<Value> v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != s_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<std::string> string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) return std::nullopt;
      char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else {  // 2-byte UTF-8 covers the control/latin range we emit
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Value> value() {
    skip_ws();
    if (pos_ >= s_.size()) return std::nullopt;
    const char c = s_[pos_];
    Value v;
    if (c == '{') {
      ++pos_;
      v.kind = Value::Kind::kObject;
      skip_ws();
      if (eat('}')) return v;
      for (;;) {
        std::optional<std::string> key = (skip_ws(), string());
        if (!key || !eat(':')) return std::nullopt;
        std::optional<Value> member = value();
        if (!member) return std::nullopt;
        v.object.emplace_back(std::move(*key), std::move(*member));
        if (eat(',')) continue;
        if (eat('}')) return v;
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos_;
      v.kind = Value::Kind::kArray;
      skip_ws();
      if (eat(']')) return v;
      for (;;) {
        std::optional<Value> item = value();
        if (!item) return std::nullopt;
        v.array.push_back(std::move(*item));
        if (eat(',')) continue;
        if (eat(']')) return v;
        return std::nullopt;
      }
    }
    if (c == '"') {
      std::optional<std::string> s = string();
      if (!s) return std::nullopt;
      v.kind = Value::Kind::kString;
      v.string = std::move(*s);
      return v;
    }
    if (c == 't') {
      if (!literal("true")) return std::nullopt;
      v.kind = Value::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (c == 'f') {
      if (!literal("false")) return std::nullopt;
      v.kind = Value::Kind::kBool;
      return v;
    }
    if (c == 'n') {
      if (!literal("null")) return std::nullopt;
      return v;
    }
    // Number.
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    auto digit_run = [&] {
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    digit_run();
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      digit_run();
    }
    if (digits && pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
      digit_run();
    }
    if (!digits) return std::nullopt;
    v.kind = Value::Kind::kNumber;
    v.number = std::strtod(std::string(s_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parse `text`; nullopt on any syntax error or trailing garbage.
inline std::optional<Value> parse(std::string_view text) {
  return detail::Parser(text).parse();
}

}  // namespace scap::obs::json
