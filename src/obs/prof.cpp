#include "obs/prof.h"

#include <algorithm>
#include <cstdio>
#include <mutex>

#include "obs/metrics.h"
#include "util/table.h"

namespace scap::obs {

namespace {

// Packed event layout (64 bits): [63:60] kind, [59:44] value (saturating),
// [43:0] timestamp in nanoseconds on the trace epoch (~4.8 h range). A whole
// event in one atomic word is what makes concurrent snapshots race-free
// without locking the writer.
constexpr std::uint64_t kTsBits = 44;
constexpr std::uint64_t kTsMask = (1ull << kTsBits) - 1;
constexpr std::uint64_t kValueBits = 16;
constexpr std::uint64_t kValueMax = (1ull << kValueBits) - 1;

std::uint64_t pack(ProfKind k, std::uint32_t value, double ts_us) {
  const std::uint64_t ts_ns =
      static_cast<std::uint64_t>(ts_us * 1000.0) & kTsMask;
  const std::uint64_t v = std::min<std::uint64_t>(value, kValueMax);
  return (static_cast<std::uint64_t>(k) << (kTsBits + kValueBits)) |
         (v << kTsBits) | ts_ns;
}

ProfEvent unpack(std::uint64_t w) {
  ProfEvent e;
  e.kind = static_cast<ProfKind>(w >> (kTsBits + kValueBits));
  e.value = static_cast<std::uint32_t>((w >> kTsBits) & kValueMax);
  e.ts_us = static_cast<double>(w & kTsMask) / 1000.0;
  return e;
}

/// Events of a ring that was destroyed before collection (pool rebuilds
/// between bench sweep points, exiting submitter threads).
struct RetiredRing {
  ProfRing::Owner owner;
  std::uint32_t lane;
  std::uint64_t dropped;
  std::vector<ProfEvent> events;
};

struct ProfState {
  std::mutex mu;  ///< guards rings / retired / next_caller (cold paths only)
  std::vector<ProfRing*> rings;
  std::vector<RetiredRing> retired;
  std::uint32_t next_caller = 0;
};

ProfState& state() {
  static ProfState* s = new ProfState;  // leaked: threads may outlive main
  return *s;
}

}  // namespace

ProfRing::ProfRing(Owner owner, std::size_t capacity) : owner_(owner) {
  capacity_ = 1;
  while (capacity_ < std::max<std::size_t>(capacity, 8)) capacity_ <<= 1;
  ProfState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (owner_ == Owner::kCaller) lane_ = s.next_caller++;
  s.rings.push_back(this);
}

ProfRing::~ProfRing() {
  ProfState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::uint64_t dropped = 0;
  std::vector<ProfEvent> events = snapshot(&dropped);
  if (!events.empty()) {
    s.retired.push_back(
        RetiredRing{owner_, lane_, dropped, std::move(events)});
  }
  s.rings.erase(std::find(s.rings.begin(), s.rings.end(), this));
}

std::unique_ptr<std::atomic<std::uint64_t>[]> ProfRing::alloc_slots() const {
  return std::make_unique<std::atomic<std::uint64_t>[]>(capacity_);
}

void ProfRing::record_always(ProfKind k, std::uint32_t value) noexcept {
  std::atomic<std::uint64_t>* slots =
      slots_.load(std::memory_order_relaxed);
  if (slots == nullptr) {
    // First event on this ring: allocate once (cold), publish for collectors.
    const_cast<ProfRing*>(this)->slots_storage_ = alloc_slots();
    slots = slots_storage_.get();
    slots_.store(slots, std::memory_order_release);
  }
  const std::uint64_t h = head_.load(std::memory_order_relaxed);
  slots[h & (capacity_ - 1)].store(pack(k, value, now_us()),
                                   std::memory_order_relaxed);
  head_.store(h + 1, std::memory_order_release);
}

std::vector<ProfEvent> ProfRing::snapshot(std::uint64_t* dropped) const {
  std::vector<ProfEvent> out;
  if (dropped != nullptr) *dropped = 0;
  const std::atomic<std::uint64_t>* slots =
      slots_.load(std::memory_order_acquire);
  if (slots == nullptr) return out;
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  const std::uint64_t b = base_.load(std::memory_order_relaxed);
  const std::uint64_t n = h - b;
  const std::uint64_t avail = std::min<std::uint64_t>(n, capacity_);
  if (dropped != nullptr) *dropped = n - avail;
  out.reserve(avail);
  for (std::uint64_t i = h - avail; i < h; ++i) {
    out.push_back(unpack(slots[i & (capacity_ - 1)].load(
        std::memory_order_relaxed)));
  }
  // The owner may have lapped us mid-read; normalize to time order.
  std::stable_sort(out.begin(), out.end(),
                   [](const ProfEvent& a, const ProfEvent& b2) {
                     return a.ts_us < b2.ts_us;
                   });
  return out;
}

void ProfRing::rebase() {
  base_.store(head_.load(std::memory_order_acquire),
              std::memory_order_relaxed);
}

ProfRing& caller_prof_ring() {
  thread_local ProfRing ring(ProfRing::Owner::kCaller);
  return ring;
}

namespace {

struct LaneEvents {
  ProfRing::Owner owner;
  std::uint32_t lane;
  std::uint64_t dropped;
  std::vector<ProfEvent> events;
};

LaneProfile aggregate_lane(const LaneEvents& le, PoolProfile& pool) {
  LaneProfile lp;
  lp.is_worker = le.owner == ProfRing::Owner::kWorker;
  lp.label = lp.is_worker ? "w" : "c";
  lp.label += std::to_string(le.lane);
  double task_begin = -1.0;
  double park_begin = -1.0;
  for (const ProfEvent& e : le.events) {
    switch (e.kind) {
      case ProfKind::kTaskBegin:
        task_begin = e.ts_us;
        break;
      case ProfKind::kTaskEnd:
        if (task_begin >= 0.0) {
          const double dur = e.ts_us - task_begin;
          lp.busy_ms += dur / 1000.0;
          lp.task_us.add(dur);
          ++lp.tasks;
          task_begin = -1.0;
        }
        break;
      case ProfKind::kStealAttempt:
        lp.steal_attempts += e.value;
        break;
      case ProfKind::kStealSuccess:
        ++lp.steals;
        break;
      case ProfKind::kPark:
        park_begin = e.ts_us;
        break;
      case ProfKind::kUnpark:
        if (park_begin >= 0.0) {
          lp.park_ms += (e.ts_us - park_begin) / 1000.0;
          ++lp.parks;
          park_begin = -1.0;
        }
        break;
      case ProfKind::kJobBegin:
        ++pool.jobs;
        pool.chunks_per_job.add(static_cast<double>(e.value));
        break;
      case ProfKind::kJobEnd:
        break;
      case ProfKind::kGrain:
        pool.grain.add(static_cast<double>(e.value));
        break;
    }
  }
  return lp;
}

/// Synthesize Chrome B/E pairs on a dedicated lane tid for one participant.
void inject_lane_trace(const LaneEvents& le, std::vector<TraceEvent>& out) {
  const std::uint32_t tid =
      kProfLaneBase + (le.owner == ProfRing::Owner::kWorker
                           ? le.lane
                           : 512u + le.lane);
  double task_begin = -1.0;
  double park_begin = -1.0;
  for (const ProfEvent& e : le.events) {
    switch (e.kind) {
      case ProfKind::kTaskBegin:
        task_begin = e.ts_us;
        break;
      case ProfKind::kTaskEnd:
        if (task_begin >= 0.0) {
          out.push_back(TraceEvent{"rt.task", task_begin, tid, 'B'});
          out.push_back(TraceEvent{"rt.task", e.ts_us, tid, 'E'});
          task_begin = -1.0;
        }
        break;
      case ProfKind::kStealAttempt:
        // Zero-duration marker: the flame view shows steal churn density.
        out.push_back(TraceEvent{"rt.steal", e.ts_us, tid, 'B'});
        out.push_back(TraceEvent{"rt.steal", e.ts_us, tid, 'E'});
        break;
      case ProfKind::kPark:
        park_begin = e.ts_us;
        break;
      case ProfKind::kUnpark:
        if (park_begin >= 0.0) {
          out.push_back(TraceEvent{"rt.park", park_begin, tid, 'B'});
          out.push_back(TraceEvent{"rt.park", e.ts_us, tid, 'E'});
          park_begin = -1.0;
        }
        break;
      case ProfKind::kJobBegin:
        out.push_back(TraceEvent{"rt.job.dispatch", e.ts_us, tid, 'B'});
        break;
      case ProfKind::kJobEnd:
        out.push_back(TraceEvent{"rt.job.dispatch", e.ts_us, tid, 'E'});
        break;
      default:
        break;
    }
  }
}

}  // namespace

PoolProfile collect_pool_profile() {
  std::vector<LaneEvents> lanes;
  {
    ProfState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    for (const RetiredRing& r : s.retired) {
      lanes.push_back(LaneEvents{r.owner, r.lane, r.dropped, r.events});
    }
    for (const ProfRing* r : s.rings) {
      std::uint64_t dropped = 0;
      std::vector<ProfEvent> events = r->snapshot(&dropped);
      if (events.empty() && dropped == 0) continue;
      lanes.push_back(
          LaneEvents{r->owner(), r->lane(), dropped, std::move(events)});
    }
  }
  // Stable lane order: workers by index first, then callers.
  std::stable_sort(lanes.begin(), lanes.end(),
                   [](const LaneEvents& a, const LaneEvents& b) {
                     if (a.owner != b.owner) {
                       return a.owner == ProfRing::Owner::kWorker;
                     }
                     return a.lane < b.lane;
                   });

  PoolProfile pool;
  double first_ts = 0.0, last_ts = 0.0;
  bool any = false;
  std::vector<TraceEvent> injected;
  for (const LaneEvents& le : lanes) {
    pool.dropped += le.dropped;
    pool.total_events += le.events.size();
    if (!le.events.empty()) {
      if (!any || le.events.front().ts_us < first_ts) {
        first_ts = le.events.front().ts_us;
      }
      if (!any || le.events.back().ts_us > last_ts) {
        last_ts = le.events.back().ts_us;
      }
      any = true;
    }
    LaneProfile lp = aggregate_lane(le, pool);
    pool.task_us.merge(lp.task_us);
    if (trace_enabled()) inject_lane_trace(le, injected);
    pool.lanes.push_back(std::move(lp));
  }
  pool.window_ms = any ? (last_ts - first_ts) / 1000.0 : 0.0;

  double busy_sum = 0.0, busy_max = 0.0;
  std::size_t active = 0;
  for (LaneProfile& lp : pool.lanes) {
    if (pool.window_ms > 0.0) {
      lp.busy_frac = lp.busy_ms / pool.window_ms;
      lp.park_frac = lp.park_ms / pool.window_ms;
      lp.sched_frac =
          std::max(0.0, 1.0 - lp.busy_frac - lp.park_frac);
    }
    if (lp.tasks > 0 || lp.is_worker) {
      busy_sum += lp.busy_ms;
      busy_max = std::max(busy_max, lp.busy_ms);
      ++active;
    }
  }
  if (active > 0 && busy_max > 0.0) {
    pool.imbalance = 1.0 - busy_sum / static_cast<double>(active) / busy_max;
  }
  if (!injected.empty()) trace_inject(injected);
  return pool;
}

void prof_reset() {
  ProfState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.retired.clear();
  for (ProfRing* r : s.rings) r->rebase();
}

void export_pool_profile(const PoolProfile& p, Registry& reg,
                         std::string_view prefix) {
  if (p.empty()) return;  // a disabled profiler leaves no registry entries
  const std::string pre(prefix);
  auto gauge = [&](const std::string& name) -> Gauge& {
    return reg.gauge(pre + "." + name);
  };
  reg.counter(pre + ".jobs").add(p.jobs);
  reg.counter(pre + ".dropped").add(p.dropped);
  gauge("window_ms").observe(p.window_ms);
  gauge("imbalance").observe(p.imbalance);
  if (p.chunks_per_job.count()) {
    gauge("chunks_per_job").observe_stats(p.chunks_per_job);
  }
  if (p.grain.count()) gauge("grain").observe_stats(p.grain);
  if (p.task_us.count()) gauge("task_us").observe_stats(p.task_us);
  std::uint64_t tasks = 0, steals = 0, attempts = 0, parks = 0;
  for (const LaneProfile& lp : p.lanes) {
    tasks += lp.tasks;
    steals += lp.steals;
    attempts += lp.steal_attempts;
    parks += lp.parks;
    // One observation per lane: the gauge's min/mean/max summarize the
    // spread across workers, which is the load-balance picture.
    gauge("busy_frac").observe(lp.busy_frac);
    gauge("park_frac").observe(lp.park_frac);
    gauge("sched_frac").observe(lp.sched_frac);
    // Per-lane detail for the BENCH artifact.
    gauge(lp.label + ".busy_frac").observe(lp.busy_frac);
    gauge(lp.label + ".tasks").observe(static_cast<double>(lp.tasks));
    gauge(lp.label + ".steals").observe(static_cast<double>(lp.steals));
  }
  reg.counter(pre + ".tasks").add(tasks);
  reg.counter(pre + ".tasks_stolen").add(steals);
  reg.counter(pre + ".steal_attempts").add(attempts);
  reg.counter(pre + ".parks").add(parks);
}

std::string format_pool_report(const PoolProfile& p) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line,
                "rt pool profile: window %.2f ms, %zu lanes, %llu jobs, "
                "%llu tasks, imbalance %.2f, dropped %llu\n",
                p.window_ms, p.lanes.size(),
                static_cast<unsigned long long>(p.jobs),
                static_cast<unsigned long long>(p.task_us.count()),
                p.imbalance, static_cast<unsigned long long>(p.dropped));
  out += line;
  if (p.chunks_per_job.count()) {
    std::snprintf(line, sizeof line,
                  "  chunks/job: mean %.0f min %.0f max %.0f (%zu jobs); "
                  "grain: mean %.1f; task: mean %.2f us max %.1f us\n",
                  p.chunks_per_job.mean(), p.chunks_per_job.min(),
                  p.chunks_per_job.max(), p.chunks_per_job.count(),
                  p.grain.mean(), p.task_us.mean(), p.task_us.max());
    out += line;
  }
  TextTable t({"lane", "tasks", "stolen", "steal att", "parks", "busy ms",
               "busy %", "park %", "sched %", "task us"});
  for (const LaneProfile& lp : p.lanes) {
    t.add_row({lp.label, std::to_string(lp.tasks), std::to_string(lp.steals),
               std::to_string(lp.steal_attempts), std::to_string(lp.parks),
               TextTable::num(lp.busy_ms, 2),
               TextTable::num(100.0 * lp.busy_frac, 1),
               TextTable::num(100.0 * lp.park_frac, 1),
               TextTable::num(100.0 * lp.sched_frac, 1),
               TextTable::num(lp.task_us.mean(), 2)});
  }
  out += t.render();
  return out;
}

}  // namespace scap::obs
