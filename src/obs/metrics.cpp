#include "obs/metrics.h"

namespace scap::obs {

Registry& Registry::global() {
  static Registry* r = new Registry;  // leaked: instrumented statics may
  return *r;                          // outlive ordinary destruction order
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Timer& Registry::timer(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), std::make_unique<Timer>()).first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, RunningStats>> Registry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, RunningStats>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->snapshot());
  return out;
}

std::vector<Registry::TimerSnap> Registry::timers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TimerSnap> out;
  out.reserve(timers_.size());
  for (const auto& [name, t] : timers_) {
    out.push_back(TimerSnap{name, t->snapshot(), t->total_ms()});
  }
  return out;
}

namespace {

template <typename Vec, typename Key, typename MergeFn>
void merge_sorted(Vec& into, const Vec& from, const Key& key,
                  const MergeFn& merge_one) {
  // Both vectors are sorted by name (they come from std::map walks); classic
  // two-way merge keeps the result sorted without a lookup structure.
  Vec out;
  out.reserve(into.size() + from.size());
  std::size_t i = 0, j = 0;
  while (i < into.size() || j < from.size()) {
    if (j >= from.size() || (i < into.size() && key(into[i]) < key(from[j]))) {
      out.push_back(std::move(into[i++]));
    } else if (i >= into.size() || key(from[j]) < key(into[i])) {
      out.push_back(from[j++]);
    } else {
      merge_one(into[i], from[j]);
      out.push_back(std::move(into[i++]));
      ++j;
    }
  }
  into = std::move(out);
}

}  // namespace

void Registry::Snapshot::merge(const Snapshot& other) {
  merge_sorted(
      counters, other.counters, [](const auto& e) -> const std::string& { return e.first; },
      [](auto& a, const auto& b) { a.second += b.second; });
  merge_sorted(
      gauges, other.gauges, [](const auto& e) -> const std::string& { return e.first; },
      [](auto& a, const auto& b) { a.second.merge(b.second); });
  merge_sorted(
      timers, other.timers, [](const TimerSnap& e) -> const std::string& { return e.name; },
      [](TimerSnap& a, const TimerSnap& b) {
        a.stats.merge(b.stats);
        a.total_ms += b.total_ms;
      });
}

Registry::Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) {
    if (const std::uint64_t v = c->value()) snap.counters.emplace_back(name, v);
  }
  for (const auto& [name, g] : gauges_) {
    RunningStats s = g->snapshot();
    if (s.count()) snap.gauges.emplace_back(name, s);
  }
  for (const auto& [name, t] : timers_) {
    RunningStats s = t->snapshot();
    if (s.count()) snap.timers.push_back(TimerSnap{name, s, t->total_ms()});
  }
  return snap;
}

Registry::Snapshot Registry::snapshot_and_reset() {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) {
    if (const std::uint64_t v = c->take()) snap.counters.emplace_back(name, v);
  }
  for (const auto& [name, g] : gauges_) {
    RunningStats s = g->snapshot();
    if (s.count()) {
      snap.gauges.emplace_back(name, s);
      g->reset();
    }
  }
  for (const auto& [name, t] : timers_) {
    RunningStats s = t->snapshot();
    if (s.count()) {
      snap.timers.push_back(TimerSnap{name, s, t->total_ms()});
      t->reset();
    }
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, t] : timers_) t->reset();
}

}  // namespace scap::obs
