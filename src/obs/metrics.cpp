#include "obs/metrics.h"

namespace scap::obs {

Registry& Registry::global() {
  static Registry* r = new Registry;  // leaked: instrumented statics may
  return *r;                          // outlive ordinary destruction order
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Timer& Registry::timer(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), std::make_unique<Timer>()).first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, RunningStats>> Registry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, RunningStats>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->snapshot());
  return out;
}

std::vector<Registry::TimerSnap> Registry::timers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TimerSnap> out;
  out.reserve(timers_.size());
  for (const auto& [name, t] : timers_) {
    out.push_back(TimerSnap{name, t->snapshot(), t->total_ms()});
  }
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, t] : timers_) t->reset();
}

}  // namespace scap::obs
