// Named counters, distribution gauges and span timers in a global registry.
//
// Counters are monotonic relaxed atomics (cheap enough to leave on in hot
// paths at once-per-call granularity); gauges and timers wrap the repo's
// RunningStats accumulator (src/util/stats.h) behind a mutex -- they are fed
// at per-pattern / per-phase granularity, never per-event.
//
// The registry never erases entries, so Counter/Gauge/Timer references stay
// valid for the life of the process; hot callers cache them at construction
// time instead of paying the name lookup per call.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace.h"  // metrics_enabled()
#include "util/stats.h"

namespace scap::obs {

/// Monotonic counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }
  /// Capture-and-zero in one atomic step (no adds lost around a snapshot).
  std::uint64_t take() noexcept {
    return v_.exchange(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Distribution gauge: count / mean / min / max / stddev of observed values.
class Gauge {
 public:
  void observe(double x) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.add(x);
  }
  /// Fold a locally accumulated distribution in (hot loops / obs::prof
  /// aggregate off-registry and flush once).
  void observe_stats(const RunningStats& s) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.merge(s);
  }
  RunningStats snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = RunningStats{};
  }

 private:
  mutable std::mutex mu_;
  RunningStats stats_;
};

/// Aggregated wall-time for one span name (fed by TraceScope).
class Timer {
 public:
  void observe_ms(double ms) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.add(ms);
    total_ms_ += ms;
  }
  RunningStats snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  double total_ms() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_ms_;
  }
  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = RunningStats{};
    total_ms_ = 0.0;
  }

 private:
  mutable std::mutex mu_;
  RunningStats stats_;
  double total_ms_ = 0.0;
};

class Registry {
 public:
  /// The process-wide registry used by all instrumentation macros/helpers.
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Timer& timer(std::string_view name);

  struct TimerSnap {
    std::string name;
    RunningStats stats;
    double total_ms = 0.0;
  };

  /// Value snapshot of every non-empty entry (zero counters and zero-count
  /// gauges/timers are omitted). Used for phase-scoped metrics: a multi-phase
  /// bench calls snapshot_and_reset() at each phase boundary so per-phase
  /// `rt.*` values don't bleed into each other, then merges the per-phase
  /// snapshots for the cumulative report (see bench/bench_common.h).
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, RunningStats>> gauges;
    std::vector<TimerSnap> timers;

    bool empty() const {
      return counters.empty() && gauges.empty() && timers.empty();
    }
    /// Fold `other` in, as if both windows had been observed into one
    /// registry: counters add, gauge/timer distributions merge.
    void merge(const Snapshot& other);
  };

  /// Sorted-by-name snapshots.
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, RunningStats>> gauges() const;
  std::vector<TimerSnap> timers() const;

  /// Non-empty entries only; does not modify the registry.
  Snapshot snapshot() const;
  /// Atomically-per-entry capture + zero: the returned snapshot holds exactly
  /// the values observed since the previous reset, and the registry starts
  /// the next phase from zero. Registered references stay valid.
  Snapshot snapshot_and_reset();

  /// Zero every value; registered references stay valid.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_;
};

/// Convenience helpers gated on the metrics switch. Fine for warm paths
/// (per pattern, per batch, per ATPG run); hot loops should accumulate
/// locally and flush once per call instead.
inline void count(std::string_view name, std::uint64_t n = 1) {
  if (metrics_enabled()) Registry::global().counter(name).add(n);
}
inline void observe(std::string_view name, double x) {
  if (metrics_enabled()) Registry::global().gauge(name).observe(x);
}

}  // namespace scap::obs
