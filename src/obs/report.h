// Machine-readable export of the metrics registry.
//
// Every bench binary writes a `BENCH_<name>.json` artifact next to its
// human-readable tables (see bench/bench_common.h): run identity, per-phase
// wall times, every counter, gauge distribution and span timer. The schema is
// documented in README.md ("Observability"); tests round-trip it through the
// parser in obs/json.h.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace scap::obs {

/// Wall-time of one top-level phase of a run (bench setup / table / kernels),
/// plus the registry values observed during that phase only (captured with
/// Registry::snapshot_and_reset at the phase boundary; empty when the runner
/// doesn't scope metrics per phase).
struct PhaseTime {
  std::string name;
  double wall_ms = 0.0;
  Registry::Snapshot metrics;
};

/// Identity + phase breakdown of one instrumented run.
struct RunReport {
  std::string name;
  std::vector<std::pair<std::string, std::string>> info;  ///< free-form k/v
  std::vector<PhaseTime> phases;
};

/// Escape a string for embedding in a JSON string literal.
std::string json_escape(std::string_view s);

/// Serialize the run report plus a snapshot of `reg` as JSON.
std::string to_json(const RunReport& rep, const Registry& reg);
/// Serialize a run report whose phases carry their own metric snapshots:
/// top-level counters/gauges/timers are the merge of every phase (same shape
/// as the legacy overload), and each phase object additionally embeds its own
/// "metrics" section when non-empty.
std::string to_json(const RunReport& rep);
/// Counters/gauges/timers as CSV (`kind,name,count,value,mean,min,max`).
std::string to_csv(const Registry& reg);

/// Atomically-ish write `contents` to `path` (truncate). False on I/O error.
bool write_file(const std::string& path, std::string_view contents);

/// `$SCAP_METRICS_DIR/BENCH_<name>.json` (or `./BENCH_<name>.json`).
std::string bench_artifact_path(std::string_view bench_name);

}  // namespace scap::obs
