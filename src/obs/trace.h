// Scoped tracing for the ATPG / simulation / power flow.
//
// The instrumentation layer has two switches (see ObsConfig):
//  - tracing: SCAP_TRACE_SCOPE("podem") records a begin/end event pair into a
//    per-thread buffer; the buffers export as Chrome `chrome://tracing` /
//    Perfetto JSON (write_chrome_trace). Off by default; near-zero cost when
//    off (one relaxed atomic load and a predictable branch per scope).
//  - metrics: every scope also feeds an aggregated wall-time Timer in the
//    global metrics registry (obs/metrics.h), which is what gives the bench
//    artifacts their per-phase wall times. On by default.
//
// Environment:
//   SCAP_TRACE=1        enable tracing, dump scap_trace.json next to the
//                       running binary (never the invocation cwd) at exit
//   SCAP_TRACE=<path>   enable tracing, dump to <path> at process exit
//   SCAP_METRICS=0      disable counters/gauges/timers (default: enabled)
//   SCAP_PROF=1         enable the scheduler profiler (obs/prof.h; default off)
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace scap::obs {

/// Process-wide instrumentation configuration.
struct ObsConfig {
  bool trace = false;    ///< record SCAP_TRACE_SCOPE begin/end events
  bool metrics = true;   ///< record counters / gauges / span timers
  bool prof = false;     ///< record scheduler profiler events (obs/prof.h)
  bool dump_trace_at_exit = false;
  std::string trace_path = "scap_trace.json";
};

/// Where SCAP_TRACE=1 dumps land: "scap_trace.json" next to the running
/// executable (the build tree), never the invocation cwd, so running a tool
/// from a source checkout does not strand trace files there. Falls back to
/// the bare filename if the executable path cannot be resolved. An explicit
/// SCAP_TRACE=<path> always wins.
std::string default_trace_path();

/// Parse SCAP_TRACE / SCAP_METRICS from the environment (applied once at
/// startup by the library itself; exposed for tests).
ObsConfig config_from_env();

void configure(const ObsConfig& cfg);
ObsConfig config();

// Bit flags mirrored into an atomic so the hot-path checks are one relaxed
// load. Do not touch directly; use configure().
inline constexpr unsigned kFlagTrace = 1u;
inline constexpr unsigned kFlagMetrics = 2u;
inline constexpr unsigned kFlagProf = 4u;
extern std::atomic<unsigned> g_obs_flags;

inline bool trace_enabled() noexcept {
  return (g_obs_flags.load(std::memory_order_relaxed) & kFlagTrace) != 0;
}
inline bool metrics_enabled() noexcept {
  return (g_obs_flags.load(std::memory_order_relaxed) & kFlagMetrics) != 0;
}
inline bool prof_enabled() noexcept {
  return (g_obs_flags.load(std::memory_order_relaxed) & kFlagProf) != 0;
}
inline bool obs_active() noexcept {
  return g_obs_flags.load(std::memory_order_relaxed) != 0;
}

/// One begin ('B') or end ('E') record. Timestamps are microseconds since
/// process start; `name` must be a string with static storage duration
/// (the macros pass literals).
struct TraceEvent {
  const char* name = nullptr;
  double ts_us = 0.0;
  std::uint32_t tid = 0;  ///< dense per-thread id (0 = first thread seen)
  char phase = 'B';
};

/// Microseconds since the process-wide trace epoch.
double now_us();

/// Low-level event recording (the RAII scope is the intended interface).
void trace_begin(const char* name);
void trace_end(const char* name);

/// All buffered events from every thread (live and exited), time-ordered.
std::vector<TraceEvent> trace_snapshot();
/// Append externally synthesized events (e.g. profiler lanes, obs/prof.h) to
/// the retired buffer so they appear in snapshots and Chrome dumps. Names must
/// have static storage duration; tids at/above kProfLaneBase render as named
/// "rt worker" lanes in the Chrome export.
void trace_inject(const std::vector<TraceEvent>& events);
/// Synthetic-tid base for injected scheduler-profiler lanes (one Chrome lane
/// per pool worker / submitting caller, distinct from real thread tids).
inline constexpr std::uint32_t kProfLaneBase = 1u << 20;
void trace_clear();
/// Events dropped because a per-thread buffer hit its cap.
std::uint64_t trace_dropped();

/// Slow paths behind TraceScope; defined in trace.cpp so the header does not
/// depend on the metrics registry. span_begin returns the start timestamp.
double span_begin(const char* name);
void span_end(const char* name, double start_us);

/// RAII span: records a begin/end trace-event pair (when tracing) and an
/// aggregated wall-time Timer observation (when metrics are on).
class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    if (obs_active()) {
      name_ = name;
      start_us_ = span_begin(name);
    }
  }
  ~TraceScope() {
    if (name_ != nullptr) span_end(name_, start_us_);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_ = nullptr;
  double start_us_ = 0.0;
};

// --- Chrome-trace export (trace_export.cpp) --------------------------------

/// Serialize events as Chrome `chrome://tracing` JSON ({"traceEvents":[...]}).
void write_chrome_trace(std::ostream& os, const std::vector<TraceEvent>& events);
/// Convenience: current snapshot.
void write_chrome_trace(std::ostream& os);
/// Dump the current snapshot to a file; returns false on I/O failure.
bool dump_chrome_trace(const std::string& path);

}  // namespace scap::obs

#define SCAP_OBS_CONCAT2(a, b) a##b
#define SCAP_OBS_CONCAT(a, b) SCAP_OBS_CONCAT2(a, b)
#define SCAP_TRACE_SCOPE(name) \
  ::scap::obs::TraceScope SCAP_OBS_CONCAT(scap_trace_scope_, __LINE__)(name)
