// Scheduler-level profiler for the work-stealing runtime (src/rt/).
//
// Each scheduler participant (pool worker or submitting caller thread) owns a
// ProfRing: a fixed-capacity ring of 64-bit packed events (kind + value +
// steady-clock timestamp). The hot path is a single relaxed atomic load (the
// SCAP_PROF flag) when profiling is off, and one packed atomic store per event
// when on -- no allocation, no locking, no syscalls. Overflow overwrites the
// oldest events and is accounted as `dropped` rather than corrupting or
// growing.
//
// At pool quiesce (no parallel region in flight -- the same caveat as
// ThreadPool::set_global_concurrency) collect_pool_profile() aggregates every
// ring into a PoolProfile: per-lane busy/park/scheduler-overhead utilization,
// task and steal counts, task-duration / chunks-per-job / grain
// distributions, and an imbalance metric. The profile exports three ways:
//  - export_pool_profile(): `rt.prof.*` counters/gauges into the metrics
//    registry, so BENCH_*.json artifacts carry the scheduler breakdown;
//  - collect injects per-lane begin/end pairs into the Chrome trace stream
//    (when SCAP_TRACE is on) as synthetic "rt lane N" lanes, so a flame view
//    shows what every worker was doing;
//  - format_pool_report(): a human-readable table (tools/scap_prof,
//    bench_kernels under SCAP_PROF=1).
//
// Environment:
//   SCAP_PROF=1   enable event recording (default off; see obs/trace.h)
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"  // prof_enabled(), now_us()
#include "util/stats.h"

namespace scap::obs {

class Registry;

enum class ProfKind : std::uint8_t {
  kTaskBegin = 0,     ///< execute() entry; value = task range size in chunks
  kTaskEnd = 1,       ///< execute() exit (one body ran)
  kStealAttempt = 2,  ///< one steal sweep; value = victims probed
  kStealSuccess = 3,  ///< the sweep yielded a task
  kPark = 4,          ///< worker blocks on the pool condvar
  kUnpark = 5,        ///< worker woke up
  kJobBegin = 6,      ///< run_chunked dispatch; value = chunk count
  kJobEnd = 7,        ///< submitting thread drained the job
  kGrain = 8,         ///< chunking decision; value = elements per chunk
};

/// Unpacked event. Timestamps are microseconds on the trace epoch (now_us).
struct ProfEvent {
  double ts_us = 0.0;
  std::uint32_t value = 0;
  ProfKind kind = ProfKind::kTaskBegin;
};

/// Single-writer fixed-capacity event ring. The owner thread records; any
/// thread may snapshot concurrently (slots are relaxed atomics, so reads are
/// race-free; a snapshot taken while the owner is mid-wrap can see a handful
/// of reordered events, which the aggregation tolerates). Capacity is rounded
/// up to a power of two; slot storage is allocated lazily on the first
/// recorded event, so idle rings cost a few pointers.
class ProfRing {
 public:
  enum class Owner : std::uint8_t { kWorker, kCaller };
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit ProfRing(Owner owner, std::size_t capacity = kDefaultCapacity);
  ~ProfRing();
  ProfRing(const ProfRing&) = delete;
  ProfRing& operator=(const ProfRing&) = delete;

  /// Lane id inside the pool (worker index). Callers are auto-numbered.
  void set_lane(std::uint32_t lane) { lane_ = lane; }
  std::uint32_t lane() const { return lane_; }
  Owner owner() const { return owner_; }

  /// Hot path: a relaxed flag load when profiling is off.
  void record(ProfKind k, std::uint32_t value = 0) noexcept {
    if (!prof_enabled()) return;
    record_always(k, value);
  }
  /// Unconditional record (tests exercise the ring directly).
  void record_always(ProfKind k, std::uint32_t value) noexcept;

  /// Events currently held (oldest first), plus how many older events the
  /// ring overwrote since the last rebase.
  std::vector<ProfEvent> snapshot(std::uint64_t* dropped = nullptr) const;
  /// Forget everything recorded so far (collect-side; the owner keeps
  /// writing).
  void rebase();

  std::size_t capacity() const { return capacity_; }

 private:
  std::unique_ptr<std::atomic<std::uint64_t>[]> alloc_slots() const;

  std::size_t capacity_ = 0;  // power of two
  std::atomic<std::atomic<std::uint64_t>*> slots_{nullptr};
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots_storage_;
  std::atomic<std::uint64_t> head_{0};  ///< total events ever recorded
  std::atomic<std::uint64_t> base_{0};  ///< events forgotten by rebase()
  Owner owner_ = Owner::kCaller;
  std::uint32_t lane_ = 0;
};

/// The calling thread's ring (submitting threads; lazily created/registered).
ProfRing& caller_prof_ring();

/// Aggregated view of one scheduler participant.
struct LaneProfile {
  std::string label;           ///< "w<i>" for pool workers, "c<i>" for callers
  bool is_worker = false;
  std::uint64_t tasks = 0;     ///< bodies executed
  std::uint64_t steals = 0;    ///< successful steal sweeps
  std::uint64_t steal_attempts = 0;  ///< victims probed across sweeps
  std::uint64_t parks = 0;
  double busy_ms = 0.0;        ///< sum of task (split + body) durations
  double park_ms = 0.0;        ///< time blocked on the pool condvar
  RunningStats task_us;        ///< per-task duration distribution
  // Fractions of the profile window (busy + park + sched <= ~1; sched is the
  // remainder: steal sweeps, spinning, queue traffic).
  double busy_frac = 0.0;
  double park_frac = 0.0;
  double sched_frac = 0.0;
};

/// Aggregated pool-wide profile over the collection window.
struct PoolProfile {
  std::vector<LaneProfile> lanes;
  double window_ms = 0.0;      ///< last event ts - first event ts, all lanes
  std::uint64_t jobs = 0;
  std::uint64_t total_events = 0;
  std::uint64_t dropped = 0;   ///< ring overwrites across all lanes
  RunningStats chunks_per_job; ///< kJobBegin values (saturate at 65535)
  RunningStats grain;          ///< kGrain values
  RunningStats task_us;        ///< all lanes merged
  /// 1 - mean(busy)/max(busy) over lanes that executed tasks: 0 = perfectly
  /// balanced, ->1 = one lane did all the work.
  double imbalance = 0.0;

  bool empty() const { return total_events == 0; }
};

/// Aggregate every live and retired ring. When tracing is enabled the
/// collected task/steal/park events are also injected into the trace stream
/// as per-lane Chrome lanes (tid = kProfLaneBase + lane). Call at pool
/// quiesce only.
PoolProfile collect_pool_profile();

/// Forget all recorded events (live rings rebase, retired rings drop) so the
/// next collect covers a fresh window.
void prof_reset();

/// Export the profile into `reg` under `prefix` ("<prefix>.busy_frac",
/// "<prefix>.tasks", per-lane "<prefix>.<label>.busy_frac", ...). No-op for
/// an empty profile: a disabled profiler leaves zero registry entries.
void export_pool_profile(const PoolProfile& p, Registry& reg,
                         std::string_view prefix = "rt.prof");

/// Human-readable per-lane utilization table plus summary header.
std::string format_pool_report(const PoolProfile& p);

}  // namespace scap::obs
