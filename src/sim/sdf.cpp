#include "sim/sdf.h"

#include <ostream>
#include <sstream>

#include "netlist/verilog.h"

namespace scap {

void write_sdf(const Netlist& nl, const DelayModel& dm, std::ostream& os,
               const std::string& design_name) {
  os << "(DELAYFILE\n";
  os << "  (SDFVERSION \"3.0\")\n";
  os << "  (DESIGN \"" << design_name << "\")\n";
  os << "  (VENDOR \"scapgen\")\n";
  os << "  (PROGRAM \"scapgen sdf writer\")\n";
  os << "  (DIVIDER /)\n";
  os << "  (TIMESCALE 1ns)\n";

  os.setf(std::ios::fixed);
  os.precision(4);
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gr = nl.gate(g);
    os << "  (CELL (CELLTYPE \"" << cell_name(gr.type) << "\")\n";
    os << "    (INSTANCE b" << gr.block << "_g" << g << ")\n";
    os << "    (DELAY (ABSOLUTE\n";
    const double r = dm.rise_ns(g);
    const double f = dm.fall_ns(g);
    const auto ins = nl.gate_inputs(g);
    for (std::size_t i = 0; i < ins.size(); ++i) {
      os << "      (IOPATH " << input_pin_name(gr.type, static_cast<int>(i))
         << " Y (" << r << ':' << r << ':' << r << ") (" << f << ':' << f
         << ':' << f << "))\n";
    }
    os << "    ))\n  )\n";
  }
  os << ")\n";
}

std::string to_sdf(const Netlist& nl, const DelayModel& dm,
                   const std::string& design_name) {
  std::ostringstream os;
  write_sdf(nl, dm, os, design_name);
  return os.str();
}

}  // namespace scap
