#include "sim/sdf.h"

#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "netlist/verilog.h"

namespace scap {

void write_sdf(const Netlist& nl, const DelayModel& dm, std::ostream& os,
               const std::string& design_name) {
  os << "(DELAYFILE\n";
  os << "  (SDFVERSION \"3.0\")\n";
  os << "  (DESIGN \"" << design_name << "\")\n";
  os << "  (VENDOR \"scapgen\")\n";
  os << "  (PROGRAM \"scapgen sdf writer\")\n";
  os << "  (DIVIDER /)\n";
  os << "  (TIMESCALE 1ns)\n";

  os.setf(std::ios::fixed);
  os.precision(4);
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gr = nl.gate(g);
    os << "  (CELL (CELLTYPE \"" << cell_name(gr.type) << "\")\n";
    os << "    (INSTANCE b" << gr.block << "_g" << g << ")\n";
    os << "    (DELAY (ABSOLUTE\n";
    const double r = dm.rise_ns(g);
    const double f = dm.fall_ns(g);
    const auto ins = nl.gate_inputs(g);
    for (std::size_t i = 0; i < ins.size(); ++i) {
      os << "      (IOPATH " << input_pin_name(gr.type, static_cast<int>(i))
         << " Y (" << r << ':' << r << ':' << r << ") (" << f << ':' << f
         << ':' << f << "))\n";
    }
    os << "    ))\n  )\n";
  }
  os << ")\n";
}

std::string to_sdf(const Netlist& nl, const DelayModel& dm,
                   const std::string& design_name) {
  std::ostringstream os;
  write_sdf(nl, dm, os, design_name);
  return os.str();
}

// ---- parser ----------------------------------------------------------------

namespace {

struct Token {
  enum Kind { kLParen, kRParen, kString, kAtom, kEnd };
  Kind kind = kEnd;
  std::string text;
  std::size_t line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::istream& is) : is_(is) {}

  Token next() {
    for (int c = is_.get(); c != EOF; c = is_.get()) {
      if (c == '\n') {
        ++line_;
        continue;
      }
      if (std::isspace(c)) continue;
      if (c == '(') return {Token::kLParen, "(", line_};
      if (c == ')') return {Token::kRParen, ")", line_};
      if (c == '"') {
        std::string s;
        for (int q = is_.get();; q = is_.get()) {
          if (q == EOF || q == '\n') {
            throw std::runtime_error("sdf: line " + std::to_string(line_) +
                                     ": unterminated string");
          }
          if (q == '"') break;
          s.push_back(static_cast<char>(q));
        }
        return {Token::kString, std::move(s), line_};
      }
      std::string a(1, static_cast<char>(c));
      for (int p = is_.peek();
           p != EOF && !std::isspace(p) && p != '(' && p != ')' && p != '"';
           p = is_.peek()) {
        a.push_back(static_cast<char>(is_.get()));
      }
      return {Token::kAtom, std::move(a), line_};
    }
    return {Token::kEnd, "", line_};
  }

 private:
  std::istream& is_;
  std::size_t line_ = 1;
};

[[noreturn]] void bail(const Token& t, const std::string& msg) {
  throw std::runtime_error("sdf: line " + std::to_string(t.line) + ": " + msg);
}

class Parser {
 public:
  explicit Parser(std::istream& is) : lex_(is) { cur_ = lex_.next(); }

  SdfDocument parse() {
    expect(Token::kLParen, "expected (DELAYFILE");
    expect_atom("DELAYFILE");
    SdfDocument doc;
    while (cur_.kind == Token::kLParen) {
      advance();
      const std::string kw = take_atom("section keyword");
      if (kw == "SDFVERSION") {
        doc.version = take_string("SDFVERSION value");
      } else if (kw == "DESIGN") {
        doc.design = take_string("DESIGN value");
      } else if (kw == "VENDOR") {
        doc.vendor = take_string("VENDOR value");
      } else if (kw == "PROGRAM") {
        doc.program = take_string("PROGRAM value");
      } else if (kw == "DIVIDER") {
        doc.divider = take_atom("DIVIDER value");
      } else if (kw == "TIMESCALE") {
        doc.timescale = take_atom("TIMESCALE value");
      } else if (kw == "CELL") {
        doc.cells.push_back(parse_cell());
        continue;  // parse_cell consumed the closing paren
      } else {
        bail(cur_, "unsupported section (" + kw);
      }
      expect(Token::kRParen, "expected ) closing (" + kw);
    }
    expect(Token::kRParen, "expected ) closing (DELAYFILE");
    if (cur_.kind != Token::kEnd) bail(cur_, "trailing tokens after )");
    return doc;
  }

 private:
  void advance() { cur_ = lex_.next(); }

  void expect(Token::Kind k, const std::string& what) {
    if (cur_.kind != k) bail(cur_, what + ", got '" + cur_.text + "'");
    advance();
  }

  void expect_atom(const std::string& word) {
    if (cur_.kind != Token::kAtom || cur_.text != word) {
      bail(cur_, "expected " + word + ", got '" + cur_.text + "'");
    }
    advance();
  }

  std::string take_atom(const std::string& what) {
    if (cur_.kind != Token::kAtom) {
      bail(cur_, "expected " + what + ", got '" + cur_.text + "'");
    }
    std::string s = std::move(cur_.text);
    advance();
    return s;
  }

  std::string take_string(const std::string& what) {
    if (cur_.kind != Token::kString) {
      bail(cur_, "expected quoted " + what + ", got '" + cur_.text + "'");
    }
    std::string s = std::move(cur_.text);
    advance();
    return s;
  }

  /// "(a:b:c)" with three equal parsable values; returns the value.
  double parse_triple(const char* what) {
    expect(Token::kLParen, std::string("expected (") + what + " triple");
    const Token at = cur_;
    const std::string a = take_atom("delay triple");
    double v[3] = {0, 0, 0};
    std::size_t pos = 0;
    for (int i = 0; i < 3; ++i) {
      if (i > 0) {
        if (pos >= a.size() || a[pos] != ':') {
          bail(at, "malformed triple '" + a + "'");
        }
        ++pos;
      }
      std::size_t used = 0;
      try {
        v[i] = std::stod(a.substr(pos), &used);
      } catch (const std::exception&) {
        bail(at, "malformed triple '" + a + "'");
      }
      pos += used;
    }
    if (pos != a.size()) bail(at, "malformed triple '" + a + "'");
    if (v[0] != v[1] || v[1] != v[2]) {
      bail(at, "min:typ:max spread '" + a + "' unsupported");
    }
    expect(Token::kRParen, "expected ) closing delay triple");
    return v[1];
  }

  SdfCell parse_cell() {
    SdfCell cell;
    // (CELLTYPE "x")
    expect(Token::kLParen, "expected (CELLTYPE");
    expect_atom("CELLTYPE");
    cell.celltype = take_string("CELLTYPE value");
    expect(Token::kRParen, "expected ) closing (CELLTYPE");
    // (INSTANCE name)
    expect(Token::kLParen, "expected (INSTANCE");
    expect_atom("INSTANCE");
    cell.instance = take_atom("INSTANCE name");
    expect(Token::kRParen, "expected ) closing (INSTANCE");
    // (DELAY (ABSOLUTE (IOPATH pin Y (r:r:r) (f:f:f)) ... ))
    expect(Token::kLParen, "expected (DELAY");
    expect_atom("DELAY");
    expect(Token::kLParen, "expected (ABSOLUTE");
    expect_atom("ABSOLUTE");
    while (cur_.kind == Token::kLParen) {
      advance();
      expect_atom("IOPATH");
      SdfIopath path;
      path.pin = take_atom("IOPATH input pin");
      expect_atom("Y");
      path.rise_ns = parse_triple("rise");
      path.fall_ns = parse_triple("fall");
      expect(Token::kRParen, "expected ) closing (IOPATH");
      cell.iopaths.push_back(std::move(path));
    }
    expect(Token::kRParen, "expected ) closing (ABSOLUTE");
    expect(Token::kRParen, "expected ) closing (DELAY");
    expect(Token::kRParen, "expected ) closing (CELL");
    return cell;
  }

  Lexer lex_;
  Token cur_;
};

}  // namespace

SdfDocument parse_sdf(std::istream& is) { return Parser(is).parse(); }

SdfDocument parse_sdf(const std::string& text) {
  std::istringstream is(text);
  return parse_sdf(is);
}

void write_sdf(const SdfDocument& doc, std::ostream& os) {
  os << "(DELAYFILE\n";
  os << "  (SDFVERSION \"" << doc.version << "\")\n";
  os << "  (DESIGN \"" << doc.design << "\")\n";
  os << "  (VENDOR \"" << doc.vendor << "\")\n";
  os << "  (PROGRAM \"" << doc.program << "\")\n";
  os << "  (DIVIDER " << doc.divider << ")\n";
  os << "  (TIMESCALE " << doc.timescale << ")\n";

  os.setf(std::ios::fixed);
  os.precision(4);
  for (const SdfCell& cell : doc.cells) {
    os << "  (CELL (CELLTYPE \"" << cell.celltype << "\")\n";
    os << "    (INSTANCE " << cell.instance << ")\n";
    os << "    (DELAY (ABSOLUTE\n";
    for (const SdfIopath& p : cell.iopaths) {
      os << "      (IOPATH " << p.pin << " Y (" << p.rise_ns << ':'
         << p.rise_ns << ':' << p.rise_ns << ") (" << p.fall_ns << ':'
         << p.fall_ns << ':' << p.fall_ns << "))\n";
    }
    os << "    ))\n  )\n";
  }
  os << ")\n";
}

std::string to_sdf(const SdfDocument& doc) {
  std::ostringstream os;
  write_sdf(doc, os);
  return os.str();
}

}  // namespace scap
