#include "sim/logic_sim.h"

#include <array>
#include <cassert>

namespace scap {

namespace {

// Max fan-in across the cell library (4-input gates).
constexpr std::size_t kMaxIns = 4;

template <typename T, typename EvalFn>
void eval_frame_impl(const Netlist& nl, std::span<const T> flop_q,
                     std::span<const T> pi, std::vector<T>& net_values,
                     EvalFn&& eval) {
  assert(flop_q.size() == nl.num_flops());
  assert(pi.size() == nl.primary_inputs().size());
  net_values.assign(nl.num_nets(), T{0});
  for (std::size_t i = 0; i < pi.size(); ++i) {
    net_values[nl.primary_inputs()[i]] = pi[i];
  }
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    net_values[nl.flop(f).q] = flop_q[f];
  }
  std::array<T, kMaxIns> ins{};
  for (GateId g : nl.topo_order()) {
    const auto in_nets = nl.gate_inputs(g);
    for (std::size_t i = 0; i < in_nets.size(); ++i) {
      ins[i] = net_values[in_nets[i]];
    }
    net_values[nl.gate(g).out] =
        eval(nl.gate(g).type, std::span<const T>(ins.data(), in_nets.size()));
  }
}

template <typename T>
void next_state_impl(const Netlist& nl, std::span<const T> net_values,
                     std::vector<T>& next_q) {
  next_q.resize(nl.num_flops());
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    next_q[f] = net_values[nl.flop(f).d];
  }
}

}  // namespace

void LogicSim::eval_frame(std::span<const std::uint8_t> flop_q,
                          std::span<const std::uint8_t> pi,
                          std::vector<std::uint8_t>& net_values) const {
  eval_frame_impl<std::uint8_t>(*nl_, flop_q, pi, net_values, eval_scalar);
}

void LogicSim::next_state(std::span<const std::uint8_t> net_values,
                          std::vector<std::uint8_t>& next_q) const {
  next_state_impl<std::uint8_t>(*nl_, net_values, next_q);
}

void WordSim::eval_frame(std::span<const std::uint64_t> flop_q,
                         std::span<const std::uint64_t> pi,
                         std::vector<std::uint64_t>& net_values) const {
  eval_frame_impl<std::uint64_t>(*nl_, flop_q, pi, net_values, eval_word);
}

void WordSim::next_state(std::span<const std::uint64_t> net_values,
                         std::vector<std::uint64_t>& next_q) const {
  next_state_impl<std::uint64_t>(*nl_, net_values, next_q);
}

void WordSim::broadside(std::span<const std::uint64_t> s1,
                        std::span<const std::uint64_t> pi,
                        std::vector<std::uint64_t>& frame1_nets,
                        std::vector<std::uint64_t>& s2,
                        std::vector<std::uint64_t>& frame2_nets) const {
  eval_frame(s1, pi, frame1_nets);
  next_state(frame1_nets, s2);
  eval_frame(s2, pi, frame2_nets);
}

}  // namespace scap
