#include "sim/event_sim.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace scap {

DelayModel::DelayModel(const Netlist& nl, const TechLibrary& lib,
                       const Parasitics& par) {
  base_rise_ns_.resize(nl.num_gates());
  base_fall_ns_.resize(nl.num_gates());
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const double load = par.gate_load_pf(nl, g);
    base_rise_ns_[g] = lib.gate_delay_ns(nl.gate(g).type, true, load);
    base_fall_ns_[g] = lib.gate_delay_ns(nl.gate(g).type, false, load);
  }
  rise_ns_ = base_rise_ns_;
  fall_ns_ = base_fall_ns_;
}

void DelayModel::set_droop(const TechLibrary& lib,
                           std::span<const double> gate_droop_v) {
  if (gate_droop_v.empty()) {
    rise_ns_ = base_rise_ns_;
    fall_ns_ = base_fall_ns_;
    return;
  }
  if (gate_droop_v.size() != base_rise_ns_.size()) {
    throw std::invalid_argument(
        "DelayModel::set_droop: droop vector has " +
        std::to_string(gate_droop_v.size()) + " entries for " +
        std::to_string(base_rise_ns_.size()) + " gates");
  }
  for (std::size_t g = 0; g < base_rise_ns_.size(); ++g) {
    const double k = 1.0 + lib.k_volt() * gate_droop_v[g];
    rise_ns_[g] = base_rise_ns_[g] * k;
    fall_ns_[g] = base_fall_ns_[g] * k;
  }
}

/// Transport-delay scheduling with cancel-on-reschedule.
///
/// When a gate re-evaluates at time t it schedules its (possibly unchanged)
/// output value at t + d(edge) and cancels any of its pending output events
/// at times >= t + d: those were computed from older input states that the
/// new evaluation supersedes (with unequal rise/fall delays a later
/// evaluation can fire *earlier*). This is the standard transport semantics:
/// the last event on every net comes from the last input change, so final
/// values equal the zero-delay evaluation of the final inputs, while hazard
/// pulses wide enough to clear the gate delay propagate and burn switching
/// power -- exactly what a VCD from a gate-level timing simulation shows.
void EventSim::run(std::span<const std::uint8_t> initial_net_values,
                   std::span<const Stimulus> stimuli, Workspace& ws,
                   ToggleSink& sink) const {
  SCAP_TRACE_SCOPE("eventsim.run");
  const Netlist& nl = *nl_;

  // Warm the workspace: every pool below drains back to empty by the time a
  // run returns, so only capacity growth (tracked for the reuse gauges) can
  // touch the allocator here.
  ws.grew_ = false;
  if (ws.pending_.size() < nl.num_nets()) {
    const std::size_t old = ws.pending_.size();
    ws.pending_.resize(nl.num_nets());
    for (std::size_t n = old; n < ws.pending_.size(); ++n) {
      ws.pending_[n].events.reserve(Workspace::kReservedPendingPerNet);
    }
    ws.grew_ = true;
  }
  if (ws.value_.capacity() < initial_net_values.size()) ws.grew_ = true;
  ws.value_.assign(initial_net_values.begin(), initial_net_values.end());
  auto& value = ws.value_;
  auto& heap = ws.heap_;
  assert(heap.empty());

  std::uint64_t stamp = 0;
  SimStats stats;

  auto schedule = [&](NetId net, double t, std::uint8_t v) {
    auto& pl = ws.pending_[net];
    while (pl.events.size() > pl.head && pl.events.back().t_ns >= t) {
      pl.events.pop_back();
    }
    if (pl.events.size() == pl.head) {
      pl.events.clear();  // keeps capacity; resets head to the buffer start
      pl.head = 0;
    }
    if (pl.events.size() == pl.events.capacity()) ws.grew_ = true;
    pl.events.push_back(Workspace::Pending{t, stamp, v});
    if (heap.size() == heap.capacity()) ws.grew_ = true;
    heap.push_back(Workspace::QueueEntry{t, net, stamp});
    std::push_heap(heap.begin(), heap.end(), std::greater<>{});
    ++stamp;
  };

  sink.on_begin(initial_net_values);
  for (const Stimulus& s : stimuli) schedule(s.net, s.t_ns, s.value);

  std::array<std::uint8_t, kMaxGateInputs> ins{};
  auto eval_gate = [&](GateId g) {
    const auto in_nets = nl.gate_inputs(g);
    assert(in_nets.size() <= ins.size() &&
           "gate arity exceeds the cell kit's kMaxGateInputs");
    for (std::size_t i = 0; i < in_nets.size(); ++i) ins[i] = value[in_nets[i]];
    return eval_scalar(nl.gate(g).type,
                       std::span<const std::uint8_t>(ins.data(), in_nets.size()));
  };

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    const Workspace::QueueEntry qe = heap.back();
    heap.pop_back();
    ++stats.num_events_processed;
    auto& pl = ws.pending_[qe.net];
    if (pl.empty() || pl.events[pl.head].stamp != qe.stamp) {
      ++stats.num_events_cancelled;  // superseded by a later re-evaluation
      continue;
    }
    const std::uint8_t v = pl.events[pl.head].value;
    ++pl.head;  // O(1) front pop; storage stays in place for reuse
    if (pl.head == pl.events.size()) {
      pl.events.clear();
      pl.head = 0;
    }
    if (value[qe.net] == v) continue;
    value[qe.net] = v;
    if (stats.num_toggles == 0) stats.first_toggle_ns = qe.t_ns;
    ++stats.num_toggles;
    stats.last_toggle_ns = std::max(stats.last_toggle_ns, qe.t_ns);
    sink.on_toggle(qe.net, qe.t_ns, v != 0);
    for (GateId g : nl.fanout_gates(qe.net)) {
      const std::uint8_t out = eval_gate(g);
      const double d = out ? dm_->rise_ns(g) : dm_->fall_ns(g);
      schedule(nl.gate(g).out, qe.t_ns + d, out);
    }
  }

  ++ws.runs_;
  if (ws.grew_) ++ws.grown_runs_;
  sink.on_end(stats);
  obs::count("eventsim.runs");
  obs::count("eventsim.toggles", stats.num_toggles);
  obs::count("eventsim.events", stats.num_events_processed);
  if (!ws.grew_ && ws.runs_ > 1) obs::count("eventsim.workspace.reuse");
}

SimTrace EventSim::run(std::span<const std::uint8_t> initial_net_values,
                       std::span<const Stimulus> stimuli) const {
  Workspace ws;
  TraceRecorder rec;
  run(initial_net_values, stimuli, ws, rec);
  return rec.take();
}

std::vector<double> EventSim::settle_times(const SimTrace& trace,
                                           std::size_t num_nets) {
  std::vector<double> settle(num_nets, 0.0);
  for (const ToggleEvent& t : trace.toggles) {
    settle[t.net] = std::max(settle[t.net], static_cast<double>(t.t_ns));
  }
  return settle;
}

}  // namespace scap
