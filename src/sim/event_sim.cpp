#include "sim/event_sim.h"

#include <algorithm>
#include <array>
#include <queue>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace scap {

DelayModel::DelayModel(const Netlist& nl, const TechLibrary& lib,
                       const Parasitics& par) {
  base_rise_ns_.resize(nl.num_gates());
  base_fall_ns_.resize(nl.num_gates());
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const double load = par.gate_load_pf(nl, g);
    base_rise_ns_[g] = lib.gate_delay_ns(nl.gate(g).type, true, load);
    base_fall_ns_[g] = lib.gate_delay_ns(nl.gate(g).type, false, load);
  }
  rise_ns_ = base_rise_ns_;
  fall_ns_ = base_fall_ns_;
}

void DelayModel::set_droop(const TechLibrary& lib,
                           std::span<const double> gate_droop_v) {
  if (gate_droop_v.empty()) {
    rise_ns_ = base_rise_ns_;
    fall_ns_ = base_fall_ns_;
    return;
  }
  for (std::size_t g = 0; g < base_rise_ns_.size(); ++g) {
    const double k = 1.0 + lib.k_volt() * gate_droop_v[g];
    rise_ns_[g] = base_rise_ns_[g] * k;
    fall_ns_[g] = base_fall_ns_[g] * k;
  }
}

namespace {

/// Transport-delay scheduling with cancel-on-reschedule.
///
/// When a gate re-evaluates at time t it schedules its (possibly unchanged)
/// output value at t + d(edge) and cancels any of its pending output events
/// at times >= t + d: those were computed from older input states that the
/// new evaluation supersedes (with unequal rise/fall delays a later
/// evaluation can fire *earlier*). This is the standard transport semantics:
/// the last event on every net comes from the last input change, so final
/// values equal the zero-delay evaluation of the final inputs, while hazard
/// pulses wide enough to clear the gate delay propagate and burn switching
/// power -- exactly what a VCD from a gate-level timing simulation shows.
struct QueueEntry {
  double t_ns;
  NetId net;
  std::uint64_t stamp;

  bool operator>(const QueueEntry& o) const {
    return t_ns != o.t_ns ? t_ns > o.t_ns : stamp > o.stamp;
  }
};

struct PendingEvent {
  double t_ns;
  std::uint8_t value;
  std::uint64_t stamp;
};

}  // namespace

SimTrace EventSim::run(std::span<const std::uint8_t> initial_net_values,
                       std::span<const Stimulus> stimuli) const {
  SCAP_TRACE_SCOPE("eventsim.run");
  const Netlist& nl = *nl_;
  std::vector<std::uint8_t> value(initial_net_values.begin(),
                                  initial_net_values.end());

  // Per-net pending output events, time-sorted; cancellation pops from the
  // back (later times), firing pops from the front.
  std::vector<std::vector<PendingEvent>> pending(nl.num_nets());
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      queue;
  std::uint64_t stamp = 0;

  auto schedule = [&](NetId net, double t, std::uint8_t v) {
    auto& pq = pending[net];
    while (!pq.empty() && pq.back().t_ns >= t) pq.pop_back();
    pq.push_back(PendingEvent{t, v, stamp});
    queue.push(QueueEntry{t, net, stamp});
    ++stamp;
  };

  for (const Stimulus& s : stimuli) schedule(s.net, s.t_ns, s.value);

  SimTrace trace;
  std::array<std::uint8_t, 4> ins{};
  auto eval_gate = [&](GateId g) {
    const auto in_nets = nl.gate_inputs(g);
    for (std::size_t i = 0; i < in_nets.size(); ++i) ins[i] = value[in_nets[i]];
    return eval_scalar(nl.gate(g).type,
                       std::span<const std::uint8_t>(ins.data(), in_nets.size()));
  };

  while (!queue.empty()) {
    const QueueEntry qe = queue.top();
    queue.pop();
    ++trace.num_events_processed;
    auto& pq = pending[qe.net];
    if (pq.empty() || pq.front().stamp != qe.stamp) continue;  // cancelled
    const std::uint8_t v = pq.front().value;
    pq.erase(pq.begin());
    if (value[qe.net] == v) continue;
    value[qe.net] = v;
    if (trace.toggles.empty()) trace.first_toggle_ns = qe.t_ns;
    trace.toggles.push_back(
        ToggleEvent{qe.net, static_cast<float>(qe.t_ns), v != 0});
    trace.last_toggle_ns = std::max(trace.last_toggle_ns, qe.t_ns);
    for (GateId g : nl.fanout_gates(qe.net)) {
      const std::uint8_t out = eval_gate(g);
      const double d = out ? dm_->rise_ns(g) : dm_->fall_ns(g);
      schedule(nl.gate(g).out, qe.t_ns + d, out);
    }
  }
  // Toggle list is produced in commit order == time order already.
  obs::count("eventsim.runs");
  obs::count("eventsim.toggles", trace.toggles.size());
  obs::count("eventsim.events", trace.num_events_processed);
  return trace;
}

std::vector<double> EventSim::settle_times(const SimTrace& trace,
                                           std::size_t num_nets) {
  std::vector<double> settle(num_nets, 0.0);
  for (const ToggleEvent& t : trace.toggles) {
    settle[t.net] = std::max(settle[t.net], static_cast<double>(t.t_ns));
  }
  return settle;
}

}  // namespace scap
