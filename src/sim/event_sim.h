// Event-driven gate-level timing simulation of the launch-to-capture window.
//
// This is the library's analogue of the paper's VCS gate-level timing
// simulation: the caller supplies the settled frame-1 net values and a set of
// stimulus transitions (flop Q flips at their clock-arrival times); the
// simulator propagates them with per-instance rise/fall delays (transport
// semantics, so glitches are simulated and contribute switching power, as
// they do in a VCD captured from a real timing simulation) and records every
// output toggle with its timestamp. The toggle trace feeds the SCAP
// calculator and the dynamic IR-drop analysis.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "layout/parasitics.h"
#include "netlist/netlist.h"
#include "netlist/tech_library.h"

namespace scap {

/// Per-gate rise/fall delays; build once, optionally derated by a voltage map.
class DelayModel {
 public:
  DelayModel(const Netlist& nl, const TechLibrary& lib, const Parasitics& par);

  /// Apply per-gate voltage droop (VDD loss + VSS bounce [V]); delays become
  /// base * (1 + k_volt * droop). Pass an empty span to reset to nominal.
  void set_droop(const TechLibrary& lib, std::span<const double> gate_droop_v);

  double rise_ns(GateId g) const { return rise_ns_[g]; }
  double fall_ns(GateId g) const { return fall_ns_[g]; }

 private:
  std::vector<double> base_rise_ns_;
  std::vector<double> base_fall_ns_;
  std::vector<double> rise_ns_;
  std::vector<double> fall_ns_;
};

struct Stimulus {
  NetId net = kNullId;
  double t_ns = 0.0;
  std::uint8_t value = 0;
};

struct ToggleEvent {
  NetId net = kNullId;
  float t_ns = 0.0f;
  bool rising = false;
};

struct SimTrace {
  std::vector<ToggleEvent> toggles;  ///< time-ordered
  double first_toggle_ns = 0.0;
  double last_toggle_ns = 0.0;
  std::size_t num_events_processed = 0;

  /// Switching time window: the span during which all transitions occur
  /// (insertion delay of the clock tree does not inflate it).
  double stw_ns() const {
    return toggles.empty() ? 0.0 : last_toggle_ns - first_toggle_ns;
  }
};

class EventSim {
 public:
  EventSim(const Netlist& nl, const DelayModel& dm) : nl_(&nl), dm_(&dm) {}

  /// Simulate from the settled initial net values under the given stimuli.
  /// Stimuli need not be sorted. Returns the full toggle trace (stimulus
  /// transitions included).
  SimTrace run(std::span<const std::uint8_t> initial_net_values,
               std::span<const Stimulus> stimuli) const;

  /// Stabilization time per net: last toggle time, 0 for untouched nets.
  static std::vector<double> settle_times(const SimTrace& trace,
                                          std::size_t num_nets);

 private:
  const Netlist* nl_;
  const DelayModel* dm_;
};

}  // namespace scap
