// Event-driven gate-level timing simulation of the launch-to-capture window.
//
// This is the library's analogue of the paper's VCS gate-level timing
// simulation: the caller supplies the settled frame-1 net values and a set of
// stimulus transitions (flop Q flips at their clock-arrival times); the
// simulator propagates them with per-instance rise/fall delays (transport
// semantics, so glitches are simulated and contribute switching power, as
// they do in a VCD captured from a real timing simulation).
//
// Two output modes share one engine:
//  - run(initial, stimuli) returns the full SimTrace (back-compat; allocates
//    a fresh trace per call).
//  - run(initial, stimuli, Workspace&, ToggleSink&) streams every committed
//    toggle into the sink as it happens -- the paper's PLI tap -- and keeps
//    all simulation storage (value array, pending-event pools, queue heap)
//    in the caller-owned Workspace, so bulk per-pattern screening runs with
//    zero steady-state heap allocations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "layout/parasitics.h"
#include "netlist/netlist.h"
#include "netlist/tech_library.h"
#include "sim/toggle_sink.h"

namespace scap {

/// Per-gate rise/fall delays; build once, optionally derated by a voltage map.
class DelayModel {
 public:
  DelayModel(const Netlist& nl, const TechLibrary& lib, const Parasitics& par);

  /// Apply per-gate voltage droop (VDD loss + VSS bounce [V]); delays become
  /// base * (1 + k_volt * droop). Pass an empty span to reset to nominal.
  /// Throws std::invalid_argument if the droop vector does not match the
  /// netlist's gate count.
  void set_droop(const TechLibrary& lib, std::span<const double> gate_droop_v);

  double rise_ns(GateId g) const { return rise_ns_[g]; }
  double fall_ns(GateId g) const { return fall_ns_[g]; }

 private:
  std::vector<double> base_rise_ns_;
  std::vector<double> base_fall_ns_;
  std::vector<double> rise_ns_;
  std::vector<double> fall_ns_;
};

struct Stimulus {
  NetId net = kNullId;
  double t_ns = 0.0;
  std::uint8_t value = 0;
};

struct ToggleEvent {
  NetId net = kNullId;
  float t_ns = 0.0f;
  bool rising = false;
};

struct SimTrace {
  std::vector<ToggleEvent> toggles;  ///< time-ordered
  double first_toggle_ns = 0.0;
  double last_toggle_ns = 0.0;
  std::size_t num_events_processed = 0;
  std::size_t num_events_cancelled = 0;  ///< superseded by a later evaluation

  /// Switching time window: the span during which all transitions occur
  /// (insertion delay of the clock tree does not inflate it).
  double stw_ns() const {
    return toggles.empty() ? 0.0 : last_toggle_ns - first_toggle_ns;
  }
};

class EventSim {
 public:
  /// Reusable simulation storage: the current-value array, the per-net
  /// pending-event pools and the scheduling heap. All of it persists between
  /// runs (only capacity, never state -- every run drains its queues), so a
  /// warm workspace serves each subsequent pattern without touching the
  /// allocator. One workspace per thread/shard; a workspace must not be used
  /// by two runs concurrently.
  class Workspace {
   public:
    Workspace() = default;

    /// Simulation passes served by this workspace.
    std::size_t runs() const { return runs_; }
    /// Passes during which some pool had to grow (heap allocation).
    std::size_t grown_runs() const { return grown_runs_; }
    /// Passes served entirely from pre-sized pools (zero allocations).
    std::size_t reused_runs() const { return runs_ - grown_runs_; }

   private:
    friend class EventSim;

    struct Pending {
      double t_ns;
      std::uint64_t stamp;
      std::uint8_t value;
    };
    struct QueueEntry {
      double t_ns;
      NetId net;
      std::uint64_t stamp;

      bool operator>(const QueueEntry& o) const {
        return t_ns != o.t_ns ? t_ns > o.t_ns : stamp > o.stamp;
      }
    };
    /// Per-net time-sorted pending output events. Cancellation pops from the
    /// back (later times); firing advances `head` -- an O(1) front pop that
    /// keeps the storage in place for reuse.
    struct PendingList {
      std::vector<Pending> events;
      std::size_t head = 0;

      bool empty() const { return head == events.size(); }
    };

    /// Events reserved per net up front. Pending depth is the number of
    /// in-flight pulses on one net, which transport semantics keeps small;
    /// pre-reserving stops the first toggle of each not-yet-touched net
    /// (pattern-dependent!) from allocating in steady state.
    static constexpr std::size_t kReservedPendingPerNet = 8;

    std::vector<std::uint8_t> value_;
    std::vector<PendingList> pending_;
    std::vector<QueueEntry> heap_;
    std::size_t runs_ = 0;
    std::size_t grown_runs_ = 0;
    bool grew_ = false;
  };

  EventSim(const Netlist& nl, const DelayModel& dm) : nl_(&nl), dm_(&dm) {}

  /// Simulate from the settled initial net values under the given stimuli.
  /// Stimuli need not be sorted. Returns the full toggle trace (stimulus
  /// transitions included). Convenience wrapper over the streaming overload
  /// with a TraceRecorder and a throwaway workspace.
  SimTrace run(std::span<const std::uint8_t> initial_net_values,
               std::span<const Stimulus> stimuli) const;

  /// Streaming simulation: pushes every committed toggle into `sink` in
  /// commit (== time) order instead of materializing a trace. Bit-identical
  /// to the trace-returning overload for any sink composition.
  void run(std::span<const std::uint8_t> initial_net_values,
           std::span<const Stimulus> stimuli, Workspace& ws,
           ToggleSink& sink) const;

  /// Stabilization time per net: last toggle time, 0 for untouched nets.
  static std::vector<double> settle_times(const SimTrace& trace,
                                          std::size_t num_nets);

 private:
  const Netlist* nl_;
  const DelayModel* dm_;
};

/// Sink that reproduces the legacy SimTrace, for callers that still need the
/// materialized toggle list (VCD debugging, Figure-7 endpoint reports).
class TraceRecorder final : public ToggleSink {
 public:
  void on_begin(std::span<const std::uint8_t> /*initial*/) override {
    trace_.toggles.clear();
    trace_.first_toggle_ns = 0.0;
    trace_.last_toggle_ns = 0.0;
    trace_.num_events_processed = 0;
    trace_.num_events_cancelled = 0;
  }
  void on_toggle(NetId net, double t_ns, bool rising) override {
    trace_.toggles.push_back(
        ToggleEvent{net, static_cast<float>(t_ns), rising});
  }
  void on_end(const SimStats& stats) override {
    trace_.first_toggle_ns = stats.first_toggle_ns;
    trace_.last_toggle_ns = stats.last_toggle_ns;
    trace_.num_events_processed = stats.num_events_processed;
    trace_.num_events_cancelled = stats.num_events_cancelled;
  }

  const SimTrace& trace() const { return trace_; }
  SimTrace take() { return std::move(trace_); }

 private:
  SimTrace trace_;
};

}  // namespace scap
