#include "sim/sta.h"

#include <algorithm>

#include "netlist/tech_library.h"

namespace scap {

StaReport run_sta(const Netlist& nl, const DelayModel& dm,
                  const TechLibrary& lib,
                  std::span<const double> launch_arrival_ns) {
  StaReport rep;
  rep.arrival_ns.assign(nl.num_nets(), StaReport::kNeverTransitions);
  rep.worst_driver.assign(nl.num_nets(), kNullId);

  // Launch points: flop Q pins transition clk->Q after the launch edge.
  const CellTiming& dff = lib.timing(CellType::kDff);
  const double clk2q =
      0.5 * (dff.intrinsic_rise_ns + dff.intrinsic_fall_ns);
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    rep.arrival_ns[nl.flop(f).q] = launch_arrival_ns[f] + clk2q;
  }

  // Topological longest-path sweep (conservative: max of rise/fall delay).
  for (GateId g : nl.topo_order()) {
    double worst_in = StaReport::kNeverTransitions;
    for (NetId in : nl.gate_inputs(g)) {
      worst_in = std::max(worst_in, rep.arrival_ns[in]);
    }
    const NetId out = nl.gate(g).out;
    if (worst_in == StaReport::kNeverTransitions) continue;  // static cone
    const double arr = worst_in + std::max(dm.rise_ns(g), dm.fall_ns(g));
    if (arr > rep.arrival_ns[out]) {
      rep.arrival_ns[out] = arr;
      rep.worst_driver[out] = g;
    }
  }

  rep.endpoint_ns.assign(nl.num_flops(), 0.0);
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    const double arr = rep.arrival_ns[nl.flop(f).d];
    if (arr == StaReport::kNeverTransitions) continue;
    rep.endpoint_ns[f] = arr;
    if (arr > rep.worst_endpoint_ns) {
      rep.worst_endpoint_ns = arr;
      rep.worst_endpoint = f;
    }
  }
  return rep;
}

double StaReport::worst_slack_ns(double period_ns, double setup_ns,
                                 std::span<const double> capture_arrival_ns,
                                 const Netlist& nl) const {
  double wns = period_ns;
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    const double arr = arrival_ns[nl.flop(f).d];
    if (arr == kNeverTransitions) continue;
    const double required = capture_arrival_ns[f] + period_ns - setup_ns;
    wns = std::min(wns, required - arr);
  }
  return wns;
}

double StaReport::min_period_ns(double setup_ns,
                                std::span<const double> capture_arrival_ns,
                                const Netlist& nl) const {
  double need = 0.0;
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    const double arr = arrival_ns[nl.flop(f).d];
    if (arr == kNeverTransitions) continue;
    need = std::max(need, arr + setup_ns - capture_arrival_ns[f]);
  }
  return need;
}

std::vector<NetId> critical_path(const Netlist& nl, const StaReport& sta,
                                 FlopId endpoint) {
  std::vector<NetId> path;
  NetId net = nl.flop(endpoint).d;
  while (net != kNullId) {
    path.push_back(net);
    const GateId g = sta.worst_driver[net];
    if (g == kNullId) break;  // reached a launch flop Q (or untimed source)
    // Step to the gate input with the worst arrival.
    NetId next = kNullId;
    double best = StaReport::kNeverTransitions;
    for (NetId in : nl.gate_inputs(g)) {
      if (sta.arrival_ns[in] > best) {
        best = sta.arrival_ns[in];
        next = in;
      }
    }
    net = next;
  }
  return path;
}

}  // namespace scap
