#include "sim/toggle_sink.h"

namespace scap {

ToggleSink::~ToggleSink() = default;

void ToggleSink::on_begin(std::span<const std::uint8_t> /*initial*/) {}

void ToggleSink::on_end(const SimStats& /*stats*/) {}

FanoutSink::FanoutSink(std::initializer_list<ToggleSink*> sinks) {
  for (ToggleSink* s : sinks) add(s);
}

void FanoutSink::add(ToggleSink* sink) {
  if (sink != nullptr) sinks_.push_back(sink);
}

void FanoutSink::on_begin(std::span<const std::uint8_t> initial_net_values) {
  for (ToggleSink* s : sinks_) s->on_begin(initial_net_values);
}

void FanoutSink::on_toggle(NetId net, double t_ns, bool rising) {
  for (ToggleSink* s : sinks_) s->on_toggle(net, t_ns, rising);
}

void FanoutSink::on_end(const SimStats& stats) {
  for (ToggleSink* s : sinks_) s->on_end(stats);
}

}  // namespace scap
