// Streaming toggle sinks for the event-driven timing simulator.
//
// The paper's Figure-5 flow computes SCAP by tapping the timing simulator
// directly through a PLI routine precisely so that no VCD file is ever
// materialized. This interface is that idea taken literally: instead of
// returning a toggle trace that downstream analyses re-walk in separate
// passes, the simulator pushes every committed output toggle -- in commit
// (== time) order -- into one or more sinks as it happens. Concrete sinks
// accumulate SCAP energies (sim/scap.h), per-instance rail charge for the
// dynamic IR-drop solve (power/dynamic_ir.h), per-net settle times, a VCD
// stream (sim/vcd.h), or a back-compat SimTrace (sim/event_sim.h); the
// FanoutSink combinator lets one simulation pass feed all of them at once.
//
// Contract: for any sink composition, the streaming results are bit-identical
// to running the legacy trace-based analyses over the SimTrace of the same
// simulation (enforced by tests/stream_equiv_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "netlist/netlist.h"

namespace scap {

/// Summary of one event-driven simulation pass, handed to every sink when the
/// pass completes. Toggle-window times are the exact doubles of the commit
/// loop (SimTrace stores the same values).
struct SimStats {
  std::size_t num_events_processed = 0;  ///< queue pops, stale ones included
  std::size_t num_events_cancelled = 0;  ///< superseded by a later evaluation
  std::size_t num_toggles = 0;
  double first_toggle_ns = 0.0;
  double last_toggle_ns = 0.0;

  /// Switching time window (0 when nothing toggled).
  double stw_ns() const {
    return num_toggles == 0 ? 0.0 : last_toggle_ns - first_toggle_ns;
  }
};

/// Receiver of one simulation pass. on_begin / on_toggle* / on_end are called
/// exactly once / per commit / once per pass; sinks reset their per-pattern
/// state in on_begin so one instance can be reused allocation-free across a
/// pattern stream.
class ToggleSink {
 public:
  virtual ~ToggleSink();

  /// A pass begins; `initial_net_values` is the settled pre-launch state and
  /// is only guaranteed valid for the duration of the call.
  virtual void on_begin(std::span<const std::uint8_t> initial_net_values);

  /// One committed output toggle. `t_ns` is the exact commit time; sinks that
  /// mirror the trace's float timestamps must cast through float themselves.
  virtual void on_toggle(NetId net, double t_ns, bool rising) = 0;

  /// The pass is complete.
  virtual void on_end(const SimStats& stats);
};

/// Combinator: forwards every event to each attached sink in attachment
/// order, so a single simulation pass feeds SCAP + IR + settle-time (+ trace)
/// analysis simultaneously.
class FanoutSink final : public ToggleSink {
 public:
  FanoutSink() = default;
  FanoutSink(std::initializer_list<ToggleSink*> sinks);

  void add(ToggleSink* sink);
  void clear() { sinks_.clear(); }

  void on_begin(std::span<const std::uint8_t> initial_net_values) override;
  void on_toggle(NetId net, double t_ns, bool rising) override;
  void on_end(const SimStats& stats) override;

 private:
  std::vector<ToggleSink*> sinks_;
};

/// Streaming replacement for EventSim::settle_times: per-net stabilization
/// time (last toggle, 0 for untouched nets). Timestamps are rounded through
/// float to stay bit-identical with the legacy path, which reads them back
/// from the trace's float ToggleEvent records.
class SettleTimeTracker final : public ToggleSink {
 public:
  void on_begin(std::span<const std::uint8_t> initial_net_values) override {
    settle_.assign(initial_net_values.size(), 0.0);
  }
  void on_toggle(NetId net, double t_ns, bool /*rising*/) override {
    const double t = static_cast<double>(static_cast<float>(t_ns));
    if (t > settle_[net]) settle_[net] = t;
  }

  std::span<const double> settle() const { return settle_; }

 private:
  std::vector<double> settle_;
};

}  // namespace scap
