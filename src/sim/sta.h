// Static timing analysis (STA-lite) over the launch-to-capture path.
//
// Computes, per net, the worst-case (latest) data arrival assuming every
// flop launches at its clock arrival -- the classic topological longest-path
// sweep with the same linear delay model the event simulator uses. Used to
// report the design's Fmax, find critical paths, and (in tests) bound the
// event simulator: no simulated transition can settle later than the STA
// arrival of its net.
#pragma once

#include <limits>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "sim/event_sim.h"

namespace scap {

struct StaReport {
  /// Latest possible transition time per net [ns]; -inf for nets that can
  /// never transition (PI cones).
  std::vector<double> arrival_ns;
  /// Per flop: latest arrival at its D pin (the endpoint arrival).
  std::vector<double> endpoint_ns;
  /// Driver of each net's worst arrival (gate id, or kNullId at a flop Q /
  /// untimed net) -- follow to walk the critical path.
  std::vector<GateId> worst_driver;

  double worst_endpoint_ns = 0.0;
  FlopId worst_endpoint = kNullId;

  static constexpr double kNeverTransitions =
      -std::numeric_limits<double>::infinity();

  /// Worst negative slack at the given capture period/setup, using per-flop
  /// capture-clock arrivals (pass the same launch arrivals for a common
  /// clock). Positive = timing met.
  double worst_slack_ns(double period_ns, double setup_ns,
                        std::span<const double> capture_arrival_ns,
                        const Netlist& nl) const;

  /// Minimal period meeting setup everywhere (Fmax = 1000 / this, MHz).
  double min_period_ns(double setup_ns,
                       std::span<const double> capture_arrival_ns,
                       const Netlist& nl) const;
};

/// Longest-path sweep. launch_arrival_ns gives each flop's launch-clock
/// arrival (clock-tree insertion + skew); the DFF clk->Q delay is taken from
/// the library's DFF intrinsics inside the sweep.
StaReport run_sta(const Netlist& nl, const DelayModel& dm,
                  const TechLibrary& lib,
                  std::span<const double> launch_arrival_ns);

/// Nets on the critical path to `endpoint`, endpoint-first.
std::vector<NetId> critical_path(const Netlist& nl, const StaReport& sta,
                                 FlopId endpoint);

}  // namespace scap
