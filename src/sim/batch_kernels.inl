// Batch evaluation kernel bodies, shared across translation units.
//
// This file is #included (not compiled standalone) with SCAP_BATCH_KERNEL_NS
// defined to a TU-local namespace name. The same template source is built
// once with baseline flags (sim/batch_sim.cpp), once with -mavx2
// (sim/batch_sim_avx2.cpp, x86-64 only) so the W-lane inner loops vectorize
// to 256-bit ops, and once inside the fault simulator's cone walker
// (atpg/fault_sim.cpp) -- one source of truth for the word-domain cell
// semantics, which must stay bit-identical to netlist/cell_type.cpp's
// eval_word (pure bitwise ops, so any evaluation grouping is exact).
//
// W is the batch width in 64-bit machine words (1, 2 or 4 -> 64/128/256
// patterns per pass). Values live W words per compact net, lane-major:
// vals[net * W + w], bit p of word w = pattern w*64+p.

#ifndef SCAP_BATCH_KERNEL_NS
#error "define SCAP_BATCH_KERNEL_NS before including batch_kernels.inl"
#endif

namespace scap::batchk {
namespace SCAP_BATCH_KERNEL_NS {

/// Evaluate one cell over W words. `in` is an operand accessor: in(k) must
/// return a pointer to input k's W words. `o` receives the W output words
/// and must not alias any operand.
template <int W, typename GetIn>
inline void eval_cell(CellType t, GetIn in, std::uint64_t* o) {
#define SCAP_LANES(expr)                       \
  do {                                         \
    for (int w = 0; w < W; ++w) o[w] = (expr); \
  } while (0)
  const std::uint64_t* a = nullptr;
  const std::uint64_t* b = nullptr;
  const std::uint64_t* c = nullptr;
  const std::uint64_t* d = nullptr;
  switch (t) {
    case CellType::kTie0:
      SCAP_LANES(0ull);
      break;
    case CellType::kTie1:
      SCAP_LANES(~0ull);
      break;
    case CellType::kBuf:
    case CellType::kClkBuf:
    case CellType::kDff:
      a = in(0);
      SCAP_LANES(a[w]);
      break;
    case CellType::kInv:
      a = in(0);
      SCAP_LANES(~a[w]);
      break;
    case CellType::kAnd2:
      a = in(0), b = in(1);
      SCAP_LANES(a[w] & b[w]);
      break;
    case CellType::kAnd3:
      a = in(0), b = in(1), c = in(2);
      SCAP_LANES(a[w] & b[w] & c[w]);
      break;
    case CellType::kAnd4:
      a = in(0), b = in(1), c = in(2), d = in(3);
      SCAP_LANES(a[w] & b[w] & c[w] & d[w]);
      break;
    case CellType::kNand2:
      a = in(0), b = in(1);
      SCAP_LANES(~(a[w] & b[w]));
      break;
    case CellType::kNand3:
      a = in(0), b = in(1), c = in(2);
      SCAP_LANES(~(a[w] & b[w] & c[w]));
      break;
    case CellType::kNand4:
      a = in(0), b = in(1), c = in(2), d = in(3);
      SCAP_LANES(~(a[w] & b[w] & c[w] & d[w]));
      break;
    case CellType::kOr2:
      a = in(0), b = in(1);
      SCAP_LANES(a[w] | b[w]);
      break;
    case CellType::kOr3:
      a = in(0), b = in(1), c = in(2);
      SCAP_LANES(a[w] | b[w] | c[w]);
      break;
    case CellType::kOr4:
      a = in(0), b = in(1), c = in(2), d = in(3);
      SCAP_LANES(a[w] | b[w] | c[w] | d[w]);
      break;
    case CellType::kNor2:
      a = in(0), b = in(1);
      SCAP_LANES(~(a[w] | b[w]));
      break;
    case CellType::kNor3:
      a = in(0), b = in(1), c = in(2);
      SCAP_LANES(~(a[w] | b[w] | c[w]));
      break;
    case CellType::kNor4:
      a = in(0), b = in(1), c = in(2), d = in(3);
      SCAP_LANES(~(a[w] | b[w] | c[w] | d[w]));
      break;
    case CellType::kXor2:
      a = in(0), b = in(1);
      SCAP_LANES(a[w] ^ b[w]);
      break;
    case CellType::kXnor2:
      a = in(0), b = in(1);
      SCAP_LANES(~(a[w] ^ b[w]));
      break;
    case CellType::kMux2:  // inputs [S, A, B]; out = S ? B : A
      a = in(0), b = in(1), c = in(2);
      SCAP_LANES((a[w] & c[w]) | (~a[w] & b[w]));
      break;
  }
#undef SCAP_LANES
}

/// One full sweep over the levelized schedule: every gate output computed
/// from already-written compact nets. Sources (flop Q, PI, undriven) must be
/// seeded before the call.
template <int W>
void sweep(const LevelizedView& v, std::uint64_t* vals) {
  const std::size_t ng = v.num_gates();
  const CellType* types = v.gate_types();
  const NetId* outs = v.gate_outs();
  const NetId* pool = v.gate_ins();
  const std::uint32_t* off = v.gate_in_offsets();
  for (std::size_t i = 0; i < ng; ++i) {
    const NetId* ins = pool + off[i];
    eval_cell<W>(
        types[i],
        [&](int k) { return vals + static_cast<std::size_t>(ins[k]) * W; },
        vals + static_cast<std::size_t>(outs[i]) * W);
  }
}

}  // namespace SCAP_BATCH_KERNEL_NS
}  // namespace scap::batchk
