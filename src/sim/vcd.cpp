#include "sim/vcd.h"

#include <cmath>
#include <ostream>
#include <sstream>

namespace scap {

namespace {

/// VCD identifier code for a net: base-94 over the printable ASCII range.
std::string vcd_id(NetId n) {
  std::string id;
  std::uint32_t v = n;
  do {
    id.push_back(static_cast<char>('!' + v % 94));
    v /= 94;
  } while (v != 0);
  return id;
}

/// Header + $dumpvars snapshot shared by the trace writer and the sink.
void write_vcd_prologue(const Netlist& nl,
                        std::span<const std::uint8_t> initial_net_values,
                        std::ostream& os, const std::string& top_name) {
  os << "$date reproduction run $end\n";
  os << "$version scapgen vcd writer $end\n";
  os << "$timescale 1ps $end\n";
  os << "$scope module " << top_name << " $end\n";
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    os << "$var wire 1 " << vcd_id(n) << ' ' << nl.net_name(n) << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";

  os << "$dumpvars\n";
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    os << (initial_net_values[n] ? '1' : '0') << vcd_id(n) << '\n';
  }
  os << "$end\n";
}

}  // namespace

void write_vcd(const Netlist& nl,
               std::span<const std::uint8_t> initial_net_values,
               const SimTrace& trace, std::ostream& os,
               const std::string& top_name) {
  write_vcd_prologue(nl, initial_net_values, os, top_name);

  long long cur_ps = -1;
  for (const ToggleEvent& t : trace.toggles) {
    const long long ps = std::llround(static_cast<double>(t.t_ns) * 1000.0);
    if (ps != cur_ps) {
      os << '#' << ps << '\n';
      cur_ps = ps;
    }
    os << (t.rising ? '1' : '0') << vcd_id(t.net) << '\n';
  }
}

std::string to_vcd(const Netlist& nl,
                   std::span<const std::uint8_t> initial_net_values,
                   const SimTrace& trace, const std::string& top_name) {
  std::ostringstream os;
  write_vcd(nl, initial_net_values, trace, os, top_name);
  return os.str();
}

void VcdSink::on_begin(std::span<const std::uint8_t> initial_net_values) {
  cur_ps_ = -1;
  write_vcd_prologue(*nl_, initial_net_values, *os_, top_name_);
}

void VcdSink::on_toggle(NetId net, double t_ns, bool rising) {
  // Round through float: the trace writer reads float timestamps back.
  const double t = static_cast<double>(static_cast<float>(t_ns));
  const long long ps = std::llround(t * 1000.0);
  if (ps != cur_ps_) {
    *os_ << '#' << ps << '\n';
    cur_ps_ = ps;
  }
  *os_ << (rising ? '1' : '0') << vcd_id(net) << '\n';
}

}  // namespace scap
