// CAP / SCAP power accounting from a toggle trace (the paper's Section 2.3).
//
//   CAP_j  = (sum_i C_i * VDD^2) / T        -- cycle average power
//   SCAP_j = (sum_i C_i * VDD^2) / STW_j    -- switching-cycle average power
//
// where C_i is the output load of each switching gate, T the tester cycle
// and STW_j the pattern's switching time window. Rising output toggles draw
// their charge from the VDD network, falling toggles dump it into VSS, which
// yields the separate per-rail numbers the paper reports. Energies are kept
// per block so block-level thresholds (Table 3 / Figures 2 & 6) fall out.
//
// This module is the "SCAP calculator" of Figure 5: it consumes the
// in-memory toggle trace of the event simulator directly, the way the
// paper's PLI taps VCS without writing a VCD file.
#pragma once

#include <cstddef>
#include <vector>

#include "layout/parasitics.h"
#include "netlist/netlist.h"
#include "netlist/tech_library.h"
#include "sim/event_sim.h"

namespace scap {

enum class Rail : std::uint8_t { kVdd, kVss };

struct ScapReport {
  double stw_ns = 0.0;     ///< switching time window of this pattern
  double period_ns = 0.0;  ///< tester cycle T
  std::size_t num_toggles = 0;

  std::vector<double> vdd_energy_pj;  ///< per block
  std::vector<double> vss_energy_pj;  ///< per block
  double vdd_energy_total_pj = 0.0;
  double vss_energy_total_pj = 0.0;

  // pJ / ns == mW.
  double cap_mw(Rail r) const {
    return period_ns > 0.0 ? energy(r) / period_ns : 0.0;
  }
  double scap_mw(Rail r) const {
    return stw_ns > 0.0 ? energy(r) / stw_ns : 0.0;
  }
  double block_cap_mw(Rail r, std::size_t block) const {
    return period_ns > 0.0 ? block_energy(r, block) / period_ns : 0.0;
  }
  double block_scap_mw(Rail r, std::size_t block) const {
    return stw_ns > 0.0 ? block_energy(r, block) / stw_ns : 0.0;
  }

  double energy(Rail r) const {
    return r == Rail::kVdd ? vdd_energy_total_pj : vss_energy_total_pj;
  }
  /// Throws std::out_of_range for a block index beyond the floorplan.
  double block_energy(Rail r, std::size_t block) const {
    return r == Rail::kVdd ? vdd_energy_pj.at(block) : vss_energy_pj.at(block);
  }
};

class ScapCalculator {
 public:
  ScapCalculator(const Netlist& nl, const Parasitics& par,
                 const TechLibrary& lib);

  /// Account a full launch-to-capture toggle trace at tester period T.
  ScapReport compute(const SimTrace& trace, double period_ns) const;

  /// Switching energy charged per toggle of `net` (C_load * VDD^2) -- the
  /// exact quantum on_toggle adds. The static screening proxy
  /// (lint/static_power.h) is built from these so its energy bound uses the
  /// same per-net numbers as the exact accounting.
  double net_toggle_energy_pj(NetId net) const {
    return lib_->toggle_energy_pj(net_cap_pf_[net]);
  }

 private:
  friend class ScapAccumulator;

  const Netlist* nl_;
  const TechLibrary* lib_;
  std::vector<double> net_cap_pf_;     ///< per net: driver load cap
  std::vector<BlockId> net_block_;     ///< per net: block of the driver
};

/// Streaming SCAP accounting: accumulates the same per-block rail energies as
/// ScapCalculator::compute, but directly from the simulator's toggle stream,
/// so no trace is materialized (the paper's PLI-based calculator, literally).
/// Reuses its report storage across passes; numbers are bit-identical to the
/// trace-based path because toggles arrive in the same commit order.
class ScapAccumulator final : public ToggleSink {
 public:
  ScapAccumulator(const ScapCalculator& calc, double period_ns)
      : calc_(&calc) {
    report_.period_ns = period_ns;
  }

  void set_period(double period_ns) { report_.period_ns = period_ns; }

  void on_begin(std::span<const std::uint8_t> initial_net_values) override;
  void on_toggle(NetId net, double t_ns, bool rising) override;
  void on_end(const SimStats& stats) override;

  const ScapReport& report() const { return report_; }
  ScapReport take_report() { return std::move(report_); }

 private:
  const ScapCalculator* calc_;
  ScapReport report_;
};

}  // namespace scap
