#include "sim/scap.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace scap {

ScapCalculator::ScapCalculator(const Netlist& nl, const Parasitics& par,
                               const TechLibrary& lib)
    : nl_(&nl), lib_(&lib) {
  net_cap_pf_.resize(nl.num_nets());
  net_block_.resize(nl.num_nets());
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    net_cap_pf_[n] = par.net_load_pf(n);
    const Net& nr = nl.net(n);
    switch (nr.driver_kind) {
      case DriverKind::kGate:
        net_block_[n] = nl.gate(nr.driver).block;
        break;
      case DriverKind::kFlop:
        net_block_[n] = nl.flop(nr.driver).block;
        break;
      default:
        net_block_[n] = 0;
        break;
    }
  }
}

ScapReport ScapCalculator::compute(const SimTrace& trace,
                                   double period_ns) const {
  SCAP_TRACE_SCOPE("scap.compute");
  ScapReport rep;
  rep.period_ns = period_ns;
  rep.stw_ns = trace.stw_ns();
  rep.num_toggles = trace.toggles.size();
  rep.vdd_energy_pj.assign(nl_->block_count(), 0.0);
  rep.vss_energy_pj.assign(nl_->block_count(), 0.0);

  for (const ToggleEvent& t : trace.toggles) {
    const double e = lib_->toggle_energy_pj(net_cap_pf_[t.net]);
    const BlockId b = net_block_[t.net];
    if (t.rising) {
      rep.vdd_energy_pj[b] += e;
      rep.vdd_energy_total_pj += e;
    } else {
      rep.vss_energy_pj[b] += e;
      rep.vss_energy_total_pj += e;
    }
  }
  // Per-pattern SCAP distribution (Figure 2/6 shape at a glance).
  obs::count("scap.computes");
  obs::observe("scap.stw_ns", rep.stw_ns);
  obs::observe("scap.vdd_scap_mw", rep.scap_mw(Rail::kVdd));
  return rep;
}

void ScapAccumulator::on_begin(
    std::span<const std::uint8_t> /*initial_net_values*/) {
  report_.stw_ns = 0.0;
  report_.num_toggles = 0;
  report_.vdd_energy_pj.assign(calc_->nl_->block_count(), 0.0);
  report_.vss_energy_pj.assign(calc_->nl_->block_count(), 0.0);
  report_.vdd_energy_total_pj = 0.0;
  report_.vss_energy_total_pj = 0.0;
}

void ScapAccumulator::on_toggle(NetId net, double /*t_ns*/, bool rising) {
  const double e = calc_->lib_->toggle_energy_pj(calc_->net_cap_pf_[net]);
  const BlockId b = calc_->net_block_[net];
  if (rising) {
    report_.vdd_energy_pj[b] += e;
    report_.vdd_energy_total_pj += e;
  } else {
    report_.vss_energy_pj[b] += e;
    report_.vss_energy_total_pj += e;
  }
}

void ScapAccumulator::on_end(const SimStats& stats) {
  report_.stw_ns = stats.stw_ns();
  report_.num_toggles = stats.num_toggles;
  obs::count("scap.computes");
  obs::observe("scap.stw_ns", report_.stw_ns);
  obs::observe("scap.vdd_scap_mw", report_.scap_mw(Rail::kVdd));
}

}  // namespace scap
