// AVX2 instantiation of the batch sweep kernels. This TU (and only this TU)
// is compiled with -mavx2 on x86-64 hosts, so the W-lane bitwise bodies in
// batch_kernels.inl vectorize to 256-bit ops. BatchSim selects these entry
// points at construction after a runtime __builtin_cpu_supports("avx2")
// check; on hosts without AVX2 they are never called.
#include "sim/batch_sim.h"

#define SCAP_BATCH_KERNEL_NS avx2
#include "sim/batch_kernels.inl"
#undef SCAP_BATCH_KERNEL_NS

namespace scap::batchk {

void sweep_avx2_w1(const LevelizedView& v, std::uint64_t* vals) {
  avx2::sweep<1>(v, vals);
}
void sweep_avx2_w2(const LevelizedView& v, std::uint64_t* vals) {
  avx2::sweep<2>(v, vals);
}
void sweep_avx2_w4(const LevelizedView& v, std::uint64_t* vals) {
  avx2::sweep<4>(v, vals);
}

}  // namespace scap::batchk
