#include "sim/batch_sim.h"

#include <cassert>
#include <cstring>
#include <stdexcept>

#define SCAP_BATCH_KERNEL_NS generic
#include "sim/batch_kernels.inl"
#undef SCAP_BATCH_KERNEL_NS

namespace scap {

#if defined(SCAP_HAVE_AVX2_KERNELS)
namespace batchk {
// Defined in batch_sim_avx2.cpp (compiled with -mavx2); call only after a
// runtime __builtin_cpu_supports("avx2") check.
void sweep_avx2_w1(const LevelizedView& v, std::uint64_t* vals);
void sweep_avx2_w2(const LevelizedView& v, std::uint64_t* vals);
void sweep_avx2_w4(const LevelizedView& v, std::uint64_t* vals);
}  // namespace batchk
#endif

namespace {

bool host_has_avx2() {
#if defined(SCAP_HAVE_AVX2_KERNELS)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

}  // namespace

BatchSim::BatchSim(std::shared_ptr<const LevelizedView> view, std::size_t words)
    : view_(std::move(view)), words_(words) {
  if (!view_) throw std::invalid_argument("BatchSim: null view");
  if (!valid_batch_words(words_)) {
    throw std::invalid_argument("BatchSim: words must be 1, 2 or 4");
  }
  avx2_ = host_has_avx2();
#if defined(SCAP_HAVE_AVX2_KERNELS)
  if (avx2_) {
    sweep_ = words_ == 1   ? &batchk::sweep_avx2_w1
             : words_ == 2 ? &batchk::sweep_avx2_w2
                           : &batchk::sweep_avx2_w4;
    return;
  }
#endif
  sweep_ = words_ == 1   ? &batchk::generic::sweep<1>
           : words_ == 2 ? &batchk::generic::sweep<2>
                         : &batchk::generic::sweep<4>;
}

void BatchSim::eval_frame(std::span<const std::uint64_t> flop_q,
                          std::span<const std::uint64_t> pi,
                          std::vector<std::uint64_t>& net_values) const {
  const LevelizedView& v = *view_;
  const std::size_t W = words_;
  assert(flop_q.size() == v.num_flops() * W);
  assert(pi.size() == v.num_pis() * W);
  net_values.assign(v.num_nets() * W, 0);
  // Compact flop Q ids are 0..num_flops(): the state vector is the frame's
  // leading slice.
  std::memcpy(net_values.data(), flop_q.data(),
              flop_q.size() * sizeof(std::uint64_t));
  const std::span<const NetId> pis = v.pi_nets();
  for (std::size_t i = 0; i < pis.size(); ++i) {
    for (std::size_t w = 0; w < W; ++w) {
      net_values[static_cast<std::size_t>(pis[i]) * W + w] = pi[i * W + w];
    }
  }
  sweep_(v, net_values.data());
}

void BatchSim::next_state(std::span<const std::uint64_t> net_values,
                          std::vector<std::uint64_t>& next_q) const {
  const LevelizedView& v = *view_;
  const std::size_t W = words_;
  const NetId* fd = v.f_d();
  next_q.resize(v.num_flops() * W);
  for (FlopId f = 0; f < v.num_flops(); ++f) {
    for (std::size_t w = 0; w < W; ++w) {
      next_q[f * W + w] = net_values[static_cast<std::size_t>(fd[f]) * W + w];
    }
  }
}

void BatchSim::broadside(std::span<const std::uint64_t> s1,
                         std::span<const std::uint64_t> pi,
                         std::vector<std::uint64_t>& frame1_nets,
                         std::vector<std::uint64_t>& s2,
                         std::vector<std::uint64_t>& frame2_nets) const {
  eval_frame(s1, pi, frame1_nets);
  next_state(frame1_nets, s2);
  eval_frame(s2, pi, frame2_nets);
}

namespace {

/// 8x8 bit-matrix transpose (Hacker's Delight 7-3): input row r = byte r,
/// column c = bit c; output row c = byte c holding the old column c.
inline std::uint64_t transpose8(std::uint64_t x) {
  std::uint64_t t = (x ^ (x >> 7)) & 0x00AA00AA00AA00AAull;
  x ^= t ^ (t << 7);
  t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCCull;
  x ^= t ^ (t << 14);
  t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0ull;
  x ^= t ^ (t << 28);
  return x;
}

/// Pack the LSBs of 8 consecutive bytes into one byte (bit k = byte k's LSB).
inline std::uint64_t pack_lsbs(std::uint64_t bytes) {
  return ((bytes & 0x0101010101010101ull) * 0x0102040810204080ull) >> 56;
}

}  // namespace

void transpose_pack(std::span<const std::uint8_t* const> rows,
                    std::size_t num_vars, std::size_t words,
                    std::vector<std::uint64_t>& out) {
  assert(valid_batch_words(words));
  assert(rows.size() <= words * 64);
  out.assign(num_vars * words, 0);
  const std::size_t var_octets = num_vars / 8;
  for (std::size_t w = 0; w * 64 < rows.size(); ++w) {
    const std::size_t base = w * 64;
    const std::size_t np = std::min<std::size_t>(64, rows.size() - base);
    std::size_t p = 0;
    for (; p + 8 <= np; p += 8) {
      const std::uint8_t* const* r = rows.data() + base + p;
      for (std::size_t vo = 0; vo < var_octets; ++vo) {
        // Tile (8 patterns x 8 vars): row j = 8 vars of pattern j, packed to
        // a byte; transpose turns byte k into 8 patterns of var 8*vo+k.
        std::uint64_t m = 0;
        for (std::size_t j = 0; j < 8; ++j) {
          std::uint64_t x;
          std::memcpy(&x, r[j] + vo * 8, 8);
          m |= pack_lsbs(x) << (8 * j);
        }
        m = transpose8(m);
        for (std::size_t k = 0; k < 8; ++k) {
          out[(vo * 8 + k) * words + w] |=
              ((m >> (8 * k)) & 0xFFull) << p;
        }
      }
      // Var tail (num_vars % 8): plain bit packing.
      for (std::size_t v = var_octets * 8; v < num_vars; ++v) {
        for (std::size_t j = 0; j < 8; ++j) {
          out[v * words + w] |=
              static_cast<std::uint64_t>(r[j][v] & 1) << (p + j);
        }
      }
    }
    // Pattern tail (np % 8): plain bit packing.
    for (; p < np; ++p) {
      const std::uint8_t* row = rows[base + p];
      for (std::size_t v = 0; v < num_vars; ++v) {
        out[v * words + w] |= static_cast<std::uint64_t>(row[v] & 1) << p;
      }
    }
  }
}

}  // namespace scap
