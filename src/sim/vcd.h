// Value Change Dump (VCD) export of a toggle trace.
//
// The paper's point (Section 3.2) is that VCD files are too large for bulk
// per-pattern analysis, which is why the SCAP calculator taps the simulator
// directly. The writer exists for what the paper still uses VCD for:
// debugging a handful of suspect patterns in a waveform viewer. VcdSink
// streams the same document straight off the simulator, so a waveform can be
// captured without ever materializing the trace either.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"
#include "sim/event_sim.h"

namespace scap {

/// Write a launch-to-capture trace as a VCD document. initial_net_values
/// provides the $dumpvars snapshot at t=0; timescale is 1 ps.
void write_vcd(const Netlist& nl,
               std::span<const std::uint8_t> initial_net_values,
               const SimTrace& trace, std::ostream& os,
               const std::string& top_name = "top");

std::string to_vcd(const Netlist& nl,
                   std::span<const std::uint8_t> initial_net_values,
                   const SimTrace& trace, const std::string& top_name = "top");

/// Streaming VCD writer: emits the header and $dumpvars snapshot in on_begin
/// and each toggle as it commits. Byte-identical to write_vcd over the trace
/// of the same simulation (timestamps round through the trace's float
/// representation on purpose).
class VcdSink final : public ToggleSink {
 public:
  VcdSink(const Netlist& nl, std::ostream& os,
          const std::string& top_name = "top")
      : nl_(&nl), os_(&os), top_name_(top_name) {}

  void on_begin(std::span<const std::uint8_t> initial_net_values) override;
  void on_toggle(NetId net, double t_ns, bool rising) override;

 private:
  const Netlist* nl_;
  std::ostream* os_;
  std::string top_name_;
  long long cur_ps_ = -1;
};

}  // namespace scap
