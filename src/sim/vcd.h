// Value Change Dump (VCD) export of a toggle trace.
//
// The paper's point (Section 3.2) is that VCD files are too large for bulk
// per-pattern analysis, which is why the SCAP calculator taps the simulator
// directly. The writer exists for what the paper still uses VCD for:
// debugging a handful of suspect patterns in a waveform viewer.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"
#include "sim/event_sim.h"

namespace scap {

/// Write a launch-to-capture trace as a VCD document. initial_net_values
/// provides the $dumpvars snapshot at t=0; timescale is 1 ps.
void write_vcd(const Netlist& nl,
               std::span<const std::uint8_t> initial_net_values,
               const SimTrace& trace, std::ostream& os,
               const std::string& top_name = "top");

std::string to_vcd(const Netlist& nl,
                   std::span<const std::uint8_t> initial_net_values,
                   const SimTrace& trace, const std::string& top_name = "top");

}  // namespace scap
