// Levelized multi-word batch simulation.
//
// BatchSim is WordSim rebuilt on the struct-of-arrays LevelizedView: one
// sweep over the (level, type)-sorted flat gate table evaluates W machine
// words per net (W = 1, 2 or 4 -> 64/128/256 patterns per pass) with the
// per-gate cell dispatch inlined into the loop. The W-lane inner bodies are
// plain bitwise ops over contiguous words, so they unroll and vectorize; on
// x86-64 hosts with AVX2 a runtime-dispatched kernel compiled with -mavx2
// runs the same source at 256-bit width.
//
// Values live in *compact* net ids (LevelizedView renumbering), W words per
// net, lane-major: vals[net * W + w], bit p of word w = pattern w*64+p.
// Compact flop Q ids are 0..num_flops(), so a state vector of W words per
// flop is exactly the leading slice of a frame -- no scatter on load.
//
// Frame semantics are identical to WordSim's (logic_sim.h): flop Q pins are
// pseudo primary inputs, D pins pseudo primary outputs, and a broadside
// launch evaluates frame 2 from S2 = D(S1). Results are bit-identical to
// WordSim lane for lane (pure bitwise cell functions, single-assignment
// nets), which tests/batch_sim_test.cpp pins down.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "netlist/levelized_view.h"

namespace scap {

/// Batch widths supported by the compiled kernels.
inline constexpr std::size_t kMaxBatchWords = 4;
constexpr bool valid_batch_words(std::size_t w) {
  return w == 1 || w == 2 || w == 4;
}

class BatchSim {
 public:
  /// `words` must satisfy valid_batch_words. The view is shared read-only;
  /// shards of a parallel engine copy the shared_ptr, not the tables.
  explicit BatchSim(std::shared_ptr<const LevelizedView> view,
                    std::size_t words = 1);

  const LevelizedView& view() const { return *view_; }
  std::shared_ptr<const LevelizedView> shared_view() const { return view_; }
  std::size_t words() const { return words_; }
  std::size_t lanes() const { return words_ * 64; }

  /// Evaluate all nets from flop states (num_flops()*W words) and PI values
  /// (num_pis()*W words). net_values is resized to num_nets()*W; undriven
  /// non-PI nets evaluate to 0, matching WordSim.
  void eval_frame(std::span<const std::uint64_t> flop_q,
                  std::span<const std::uint64_t> pi,
                  std::vector<std::uint64_t>& net_values) const;

  /// Next flop state (D values) from a frame's net values.
  void next_state(std::span<const std::uint64_t> net_values,
                  std::vector<std::uint64_t>& next_q) const;

  /// Frame 1 + frame 2 in one call (broadside launch-off-capture).
  void broadside(std::span<const std::uint64_t> s1,
                 std::span<const std::uint64_t> pi,
                 std::vector<std::uint64_t>& frame1_nets,
                 std::vector<std::uint64_t>& s2,
                 std::vector<std::uint64_t>& frame2_nets) const;

  /// True when the runtime-dispatched AVX2 kernel backs this instance.
  bool uses_avx2() const { return avx2_; }

 private:
  std::shared_ptr<const LevelizedView> view_;
  std::size_t words_;
  using SweepFn = void (*)(const LevelizedView&, std::uint64_t*);
  SweepFn sweep_ = nullptr;
  bool avx2_ = false;
};

/// Bit-transpose a batch of pattern rows into lane-major variable words:
/// out[v*words + w] bit p = rows[w*64 + p][v], for rows.size() patterns and
/// `num_vars` variables per row (out is zero-filled past the batch). Rows are
/// byte vectors holding 0/1 per variable (Pattern::s1 layout). This replaces
/// the bit-by-bit packing loop with an 8x8 bit-matrix transpose per tile --
/// O(vars * patterns / 8) word ops instead of O(vars * patterns) shifts.
void transpose_pack(std::span<const std::uint8_t* const> rows,
                    std::size_t num_vars, std::size_t words,
                    std::vector<std::uint64_t>& out);

}  // namespace scap
