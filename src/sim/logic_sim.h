// Zero-delay logic simulation of the combinational core.
//
// Two engines share the broadside (launch-off-capture) semantics:
//  - LogicSim: scalar two-valued evaluation, one pattern at a time.
//  - WordSim: 64-way pattern-parallel evaluation (bit i = pattern i), the
//    workhorse of fault simulation and of bulk SCAP screening.
//
// Frame semantics: flop Q pins are pseudo primary inputs, flop D pins pseudo
// primary outputs. A broadside launch evaluates frame 1 from the scanned-in
// state S1, derives S2 = D(S1) (the functional response captured by the
// launch pulse), and evaluates frame 2 from S2; the capture pulse samples the
// frame-2 D values.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.h"

namespace scap {

class LogicSim {
 public:
  explicit LogicSim(const Netlist& nl) : nl_(&nl) {}

  /// Evaluate all nets from flop states and PI values (sizes must match the
  /// netlist's flop/PI counts). net_values is resized to num_nets().
  void eval_frame(std::span<const std::uint8_t> flop_q,
                  std::span<const std::uint8_t> pi,
                  std::vector<std::uint8_t>& net_values) const;

  /// Next flop state (D values) from a frame's net values.
  void next_state(std::span<const std::uint8_t> net_values,
                  std::vector<std::uint8_t>& next_q) const;

 private:
  const Netlist* nl_;
};

class WordSim {
 public:
  explicit WordSim(const Netlist& nl) : nl_(&nl) {}

  void eval_frame(std::span<const std::uint64_t> flop_q,
                  std::span<const std::uint64_t> pi,
                  std::vector<std::uint64_t>& net_values) const;

  void next_state(std::span<const std::uint64_t> net_values,
                  std::vector<std::uint64_t>& next_q) const;

  /// Frame 1 + frame 2 in one call: evaluates frame 1 from s1, computes
  /// s2 = D(s1), evaluates frame 2. Outputs are resized as needed.
  void broadside(std::span<const std::uint64_t> s1,
                 std::span<const std::uint64_t> pi,
                 std::vector<std::uint64_t>& frame1_nets,
                 std::vector<std::uint64_t>& s2,
                 std::vector<std::uint64_t>& frame2_nets) const;

 private:
  const Netlist* nl_;
};

}  // namespace scap
