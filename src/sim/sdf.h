// Standard Delay Format (SDF 3.0) export and (subset) import.
//
// The paper back-annotates gate and interconnect delays into its gate-level
// simulation via SDF; this writer produces the equivalent document from the
// library's delay model so external simulators can replay the same timing.
// One CELL per gate instance with an IOPATH from every input pin to Y,
// (rise:fall) per edge; an optional per-instance voltage-droop map emits the
// IR-derated delays of the Section 3.2 re-simulation.
//
// The parser reads the same subset back into an SdfDocument -- header fields,
// CELL / IOPATH structure, and (min:typ:max) delay triples -- and the
// document writer re-emits it byte-identically, giving the differential test
// suite a write -> parse -> write round-trip property over random delay
// models (tests/sdf_test.cpp).
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "sim/event_sim.h"

namespace scap {

void write_sdf(const Netlist& nl, const DelayModel& dm, std::ostream& os,
               const std::string& design_name = "top");

std::string to_sdf(const Netlist& nl, const DelayModel& dm,
                   const std::string& design_name = "top");

// ---- parsed document model ------------------------------------------------

struct SdfIopath {
  std::string pin;  ///< input pin name; the output is always Y
  double rise_ns = 0.0;
  double fall_ns = 0.0;
};

struct SdfCell {
  std::string celltype;
  std::string instance;
  std::vector<SdfIopath> iopaths;
};

struct SdfDocument {
  std::string version = "3.0";
  std::string design = "top";
  std::string vendor = "scapgen";
  std::string program = "scapgen sdf writer";
  std::string divider = "/";
  std::string timescale = "1ns";
  std::vector<SdfCell> cells;
};

/// Parse the writer's SDF subset. Throws std::runtime_error with a
/// line-numbered message on malformed input; (min:typ:max) triples must have
/// three parsable, equal values (the writer never emits a spread).
SdfDocument parse_sdf(std::istream& is);
SdfDocument parse_sdf(const std::string& text);

/// Re-emit a parsed document in exactly the writer's format, so
/// to_sdf(parse_sdf(text)) == text for any writer-produced text.
void write_sdf(const SdfDocument& doc, std::ostream& os);
std::string to_sdf(const SdfDocument& doc);

}  // namespace scap
