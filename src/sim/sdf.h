// Standard Delay Format (SDF 3.0) export.
//
// The paper back-annotates gate and interconnect delays into its gate-level
// simulation via SDF; this writer produces the equivalent document from the
// library's delay model so external simulators can replay the same timing.
// One CELL per gate instance with an IOPATH from every input pin to Y,
// (rise:fall) per edge; an optional per-instance voltage-droop map emits the
// IR-derated delays of the Section 3.2 re-simulation.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "netlist/netlist.h"
#include "sim/event_sim.h"

namespace scap {

void write_sdf(const Netlist& nl, const DelayModel& dm, std::ostream& os,
               const std::string& design_name = "top");

std::string to_sdf(const Netlist& nl, const DelayModel& dm,
                   const std::string& design_name = "top");

}  // namespace scap
