// The serve request/reply protocol: length-prefixed binary frames.
//
// Frame layout (little-endian):
//   u32 magic 'SCP1' | u16 opcode | u16 flags (0) | u32 payload_len | payload
//
// Request opcodes:
//   kPing          payload echoed back verbatim (liveness / framing probe)
//   kScreenStatic  tier-1 static screen: per-pattern sound SCAP bound vs the
//                  request threshold (no event simulation)
//   kScreenExact   the two-tier cascade of core/validation.h: exact
//                  per-pattern violation verdicts, statically-clean patterns
//                  never simulated
//   kScapProfile   exact per-pattern ScapReports (the Fig 2/6 bulk profile)
//   kFaultGrade    first-detect fault grading of the pattern set against the
//                  design's (optionally sampled) collapsed fault list
//   kStats         server-side counter snapshot as KvDoc text
//
// Reply opcodes: kOk (op-specific payload below), kBusy (admission queue
// full -- empty payload, retry later), kError (u32 code + str32 message).
//
// Compute requests carry the design as a serialized ref::Scenario recipe
// (KvDoc text): the daemon materializes and caches the design by the
// canonical content hash of its design-determining fields, so the recipe
// doubles as the cache key and makes every journal record self-contained --
// replaying a journal rebuilds the exact design and must reproduce the
// response bytes bit-identically (responses are pure per-pattern functions;
// batching composition never changes them).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "atpg/pattern.h"
#include "serve/wire.h"
#include "sim/scap.h"

namespace scap::serve {

enum class Op : std::uint16_t {
  kPing = 1,
  kScreenStatic = 2,
  kScreenExact = 3,
  kScapProfile = 4,
  kFaultGrade = 5,
  kStats = 6,

  kOk = 128,
  kBusy = 129,
  kError = 130,
};

const char* op_name(Op op);

/// Ops whose requests go through the admission queue / batcher (and the
/// journal); ping and stats are answered inline by the connection reader.
inline bool is_compute_op(Op op) {
  return op == Op::kScreenStatic || op == Op::kScreenExact ||
         op == Op::kScapProfile || op == Op::kFaultGrade;
}

enum class ErrCode : std::uint32_t {
  kBadFrame = 1,    ///< unparsable frame (bad magic / truncated / oversized)
  kBadRequest = 2,  ///< well-framed but semantically invalid payload
  kUnknownOp = 3,
  kOversized = 4,
  kDesignError = 5,  ///< design recipe failed to parse or materialize
  kInternal = 6,
};

/// One decoded request. For kPing the echo payload rides in `blob`; compute
/// ops use the remaining fields (threshold_mw / hot_block only matter to the
/// screening ops, fault grading ignores them).
struct Request {
  Op op = Op::kPing;
  std::uint32_t hot_block = 0;
  double threshold_mw = 0.0;
  std::string design;  ///< serialized ref::Scenario recipe (KvDoc text)
  std::uint32_t num_vars = 0;
  std::vector<Pattern> patterns;
  std::vector<std::uint8_t> blob;  ///< kPing echo payload
};

struct Reply {
  Op op = Op::kOk;
  std::vector<std::uint8_t> payload;
};

// --- request payload -------------------------------------------------------

/// Compute-request payload: u32 hot_block | f64 threshold_mw | str32 design |
/// u32 num_patterns | u32 num_vars | packed pattern bits (LSB-first,
/// ceil(num_vars/8) bytes per pattern).
std::vector<std::uint8_t> encode_request(const Request& req);

/// Decode a request payload for `op`. Returns false (with a message in *err)
/// on any malformed input -- including a design recipe that is not parseable
/// KvDoc text, so admitted requests are always journalable; never throws,
/// never over-reads.
bool decode_request(Op op, std::span<const std::uint8_t> payload, Request* out,
                    std::string* err);

// --- reply payloads --------------------------------------------------------

Reply make_error(ErrCode code, std::string_view msg);
/// Decode an error payload (returns false if itself malformed).
bool decode_error(std::span<const std::uint8_t> payload, ErrCode* code,
                  std::string* msg);

struct StaticScreenItem {
  std::uint8_t exceeds = 0;  ///< bound exceeds threshold (needs event sim)
  double bound_mw = 0.0;     ///< hot-block SCAP upper bound (+inf possible)
};
Reply encode_static_reply(std::span<const StaticScreenItem> items);
bool decode_static_reply(std::span<const std::uint8_t> payload,
                         std::vector<StaticScreenItem>* out);

struct ExactScreenReply {
  std::uint32_t statically_clean = 0;
  std::uint32_t event_simmed = 0;
  std::vector<std::uint8_t> violates;  ///< exact per-pattern verdicts
};
Reply encode_exact_reply(const ExactScreenReply& r);
bool decode_exact_reply(std::span<const std::uint8_t> payload,
                        ExactScreenReply* out);

Reply encode_profile_reply(std::span<const ScapReport> reports);
bool decode_profile_reply(std::span<const std::uint8_t> payload,
                          std::vector<ScapReport>* out);

/// first_detect: per fault, first detecting pattern index
/// (FaultSimulator::kUndetected maps to u64 max on the wire).
Reply encode_grade_reply(std::span<const std::size_t> first_detect);
bool decode_grade_reply(std::span<const std::uint8_t> payload,
                        std::vector<std::size_t>* out);

// --- pattern bit packing ---------------------------------------------------

/// Bytes per packed pattern row.
inline std::size_t pattern_stride(std::size_t num_vars) {
  return (num_vars + 7) / 8;
}
/// LSB-first bit packing of fully specified patterns (s1 values 0/1).
std::vector<std::uint8_t> pack_patterns(std::span<const Pattern> patterns,
                                        std::size_t num_vars);
std::vector<Pattern> unpack_patterns(std::span<const std::uint8_t> bytes,
                                     std::size_t n, std::size_t num_vars);

// --- frame I/O over a connected socket -------------------------------------

enum class ReadStatus {
  kOk,
  kEof,        ///< orderly close before a header byte
  kBadMagic,   ///< header present but not a SCP1 frame
  kOversized,  ///< declared payload length above kMaxPayload
  kTruncated,  ///< connection died mid-frame
  kIoError,
};

/// Blocking read of one full frame. On kOk fills *op and *payload.
ReadStatus read_frame(int fd, Op* op, std::vector<std::uint8_t>* payload);

/// Blocking write of one frame (MSG_NOSIGNAL; a dead peer is a false return,
/// never a SIGPIPE). Thread-safe per-fd only under the caller's lock.
bool write_frame(int fd, Op op, std::span<const std::uint8_t> payload);

}  // namespace scap::serve
