// The screening daemon: sockets, admission queue, micro-batching dispatcher.
//
// Thread model:
//   - one accept thread polling the Unix-domain / TCP listeners,
//   - one reader thread per connection (blocking frame reads; ping and stats
//     are answered inline, compute requests go through the admission queue),
//   - ONE dispatcher thread that drains the queue in batches of up to
//     batch_max requests and hands each batch to ServeCore::execute_batch,
//     which fans the fused work out over the rt thread pool. A single
//     dispatcher is deliberate: the parallelism lives inside the batch, so
//     concurrent clients coalesce instead of competing.
//
// Backpressure is explicit and bounded: a compute request arriving when the
// queue holds queue_capacity entries -- or when admitting it would push the
// queue's total decoded size past queue_max_bytes (unpacked patterns are ~8x
// their wire size, so an entry count alone bounds nothing) -- is answered
// kBusy immediately. The daemon never buffers unboundedly and never blocks a
// reader on the queue.
//
// Shutdown (stop(), run by the CLI's SIGTERM handler) drains rather than
// aborts: stop accepting, shut down connection reads, join the readers (no
// new work can arrive), then let the dispatcher finish everything already
// admitted, flush the journal, and close. Every admitted request is answered
// and journaled.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/core.h"
#include "serve/journal.h"
#include "serve/protocol.h"

namespace scap::serve {

struct ServerOptions {
  std::string unix_path;  ///< empty = no Unix-domain listener
  int tcp_port = -1;      ///< -1 = no TCP listener; 0 = ephemeral (loopback)
  std::size_t max_designs = 4;
  std::size_t queue_capacity = 256;
  /// Cap on the summed decoded size (pattern bytes + design text) of queued
  /// requests; a request that would exceed it is answered kBusy unless the
  /// queue is empty (an empty queue always admits, so one oversized request
  /// can never be starved forever).
  std::size_t queue_max_bytes = 256u << 20;
  std::size_t batch_max = 64;
  std::string journal_path;  ///< empty = no journal
};

class Server {
 public:
  explicit Server(ServerOptions opt);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen and spawn the threads. False (with *err) on any failure.
  bool start(std::string* err);

  /// Graceful drain; idempotent, safe to call from a signal-waiting thread.
  void stop();

  /// Actual TCP port after start() (for tcp_port = 0); -1 when no TCP.
  int tcp_port() const { return bound_tcp_port_; }

  /// Test hook: while paused the dispatcher leaves the queue untouched, so a
  /// test can fill it to capacity and observe kBusy backpressure
  /// deterministically.
  void pause_dispatch(bool paused);

  ServeCore& core() { return core_; }

 private:
  /// One client connection. The reader thread owns fd reads; replies from
  /// reader (inline ping/stats/errors) and dispatcher interleave under
  /// write_mu. The fd closes when the last holder drops the shared_ptr, so
  /// writing a drained reply after the reader exited (shutdown path) is safe;
  /// a peer that already hung up just makes the write fail (MSG_NOSIGNAL).
  struct Conn {
    int fd = -1;
    std::mutex write_mu;
    ~Conn();
  };

  struct Pending {
    std::shared_ptr<Conn> conn;
    Request req;
  };

  void accept_main();
  void reader_main(std::shared_ptr<Conn> conn);
  void dispatcher_main();
  void send_reply(Conn& conn, const Reply& reply);
  bool enqueue(std::shared_ptr<Conn> conn, Request req);

  ServerOptions opt_;
  ServeCore core_;
  std::unique_ptr<JournalWriter> journal_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_tcp_port_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< unblocks the accept poll on stop()

  std::thread accept_thread_;
  std::thread dispatcher_thread_;

  std::mutex conns_mu_;
  std::vector<std::pair<std::shared_ptr<Conn>, std::thread>> conns_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;       // guarded by queue_mu_
  std::size_t queue_bytes_ = 0;     // decoded size of queue_; same guard
  bool paused_ = false;             // guarded by queue_mu_
  bool draining_ = false;           // guarded by queue_mu_
  std::atomic<bool> accepting_{false};
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace scap::serve
