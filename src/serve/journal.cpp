#include "serve/journal.h"

#include <bit>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.h"
#include "serve/core.h"
#include "util/kv.h"

namespace scap::serve {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

std::string to_hex(std::span<const std::uint8_t> bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::vector<std::uint8_t> from_hex(const std::string& s) {
  if (s.size() % 2 != 0) throw std::runtime_error("journal: odd hex length");
  std::vector<std::uint8_t> out(s.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const int hi = hex_val(s[2 * i]);
    const int lo = hex_val(s[2 * i + 1]);
    if (hi < 0 || lo < 0) throw std::runtime_error("journal: bad hex digit");
    out[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return out;
}

}  // namespace

std::string serialize_record(const JournalRecord& rec) {
  const Request& q = rec.request;
  util::KvDoc kv;
  kv.set_u64("seq", rec.seq);
  kv.set_u64("op", static_cast<std::uint64_t>(q.op));
  kv.set_u64("hot_block", q.hot_block);
  // The exact bit pattern: "%.17g" would round-trip too, but bits make the
  // byte-identity contract of replay unconditional.
  kv.set_u64("threshold_bits", std::bit_cast<std::uint64_t>(q.threshold_mw));
  kv.set_u64("num_vars", q.num_vars);
  kv.set_u64("num_patterns", q.patterns.size());
  kv.set("patterns", to_hex(pack_patterns(q.patterns, q.num_vars)));
  // The design recipe is itself a KvDoc; flatten its entries under a
  // "design." prefix so the record stays one flat line-oriented document.
  const util::KvDoc design = util::KvDoc::parse(q.design);
  for (const auto& [k, v] : design.entries()) kv.set("design." + k, v);
  kv.set_u64("resp_op", static_cast<std::uint64_t>(rec.resp_op));
  kv.set_u64("resp_len", rec.resp_len);
  kv.set_u64("resp_crc", rec.resp_crc);
  return kv.to_string();
}

JournalRecord parse_record(const std::string& text) {
  const util::KvDoc kv = util::KvDoc::parse(text);
  JournalRecord rec;
  rec.seq = kv.get_u64("seq", 0);
  rec.request.op = static_cast<Op>(kv.get_u64("op", 0));
  rec.request.hot_block =
      static_cast<std::uint32_t>(kv.get_u64("hot_block", 0));
  rec.request.threshold_mw =
      std::bit_cast<double>(kv.get_u64("threshold_bits", 0));
  rec.request.num_vars = static_cast<std::uint32_t>(kv.get_u64("num_vars", 0));
  const std::uint64_t n = kv.get_u64("num_patterns", 0);
  if (n > kMaxPatterns || rec.request.num_vars > kMaxVars) {
    throw std::runtime_error("journal: pattern dimensions above limits");
  }
  const std::vector<std::uint8_t> bits = from_hex(kv.get("patterns"));
  const std::size_t need =
      static_cast<std::size_t>(n) * pattern_stride(rec.request.num_vars);
  if (bits.size() != need) {
    throw std::runtime_error("journal: pattern bits size mismatch");
  }
  rec.request.patterns = unpack_patterns(
      bits, static_cast<std::size_t>(n), rec.request.num_vars);
  util::KvDoc design;
  for (const auto& [k, v] : kv.entries()) {
    if (k.rfind("design.", 0) == 0) design.set(k.substr(7), v);
  }
  rec.request.design = design.to_string();
  rec.resp_op = static_cast<Op>(kv.get_u64("resp_op", 0));
  rec.resp_len = static_cast<std::uint32_t>(kv.get_u64("resp_len", 0));
  rec.resp_crc = kv.get_u64("resp_crc", 0);
  return rec;
}

struct JournalWriter::Impl {
  std::ofstream os;
};

JournalWriter::JournalWriter(const std::string& path) : impl_(new Impl) {
  // The journal is append-only across restarts; continue the sequence from
  // whatever is already on disk so seq stays unique within one file (a
  // restarted daemon must not emit duplicate seq numbers -- they are how
  // replay mismatches are reported).
  {
    std::ifstream is(path);
    std::string line;
    while (std::getline(is, line)) {
      if (line.rfind("seq ", 0) != 0) continue;
      errno = 0;
      char* end = nullptr;
      const unsigned long long v = std::strtoull(line.c_str() + 4, &end, 10);
      if (end != nullptr && *end == '\0' && errno == 0 && v >= seq_) {
        seq_ = v + 1;
      }
    }
  }
  impl_->os.open(path, std::ios::app);
  ok_ = impl_->os.good();
}

JournalWriter::~JournalWriter() {
  flush();
  delete impl_;
}

void JournalWriter::append(const Request& req, const Reply& reply) {
  if (!ok_) return;
  JournalRecord rec;
  rec.seq = seq_++;
  rec.request = req;
  rec.resp_op = reply.op;
  rec.resp_len = static_cast<std::uint32_t>(reply.payload.size());
  rec.resp_crc = fnv1a64(reply.payload);
  std::string text;
  try {
    text = serialize_record(rec);
  } catch (const std::exception&) {
    // Unreachable for admitted requests (decode_request validates the design
    // parses as KvDoc), but a throw here runs on the dispatcher thread with
    // no handler above it -- skipping the record beats killing the daemon.
    obs::count("serve.journal_skipped");
    return;
  }
  impl_->os << text << "\n";  // records end with a blank line
  obs::count("serve.journal_bytes", text.size() + 1);
  ok_ = impl_->os.good();
}

void JournalWriter::flush() {
  if (impl_->os.is_open()) impl_->os.flush();
}

std::vector<JournalRecord> read_journal(std::istream& is) {
  std::vector<JournalRecord> out;
  std::string line;
  std::string block;
  const auto finish = [&] {
    if (block.empty()) return;
    out.push_back(parse_record(block));
    block.clear();
  };
  while (std::getline(is, line)) {
    if (line.empty()) {
      finish();
    } else {
      block += line;
      block += '\n';
    }
  }
  finish();
  return out;
}

std::vector<JournalRecord> read_journal_file(const std::string& path,
                                             std::string* err) {
  std::ifstream is(path);
  if (!is) {
    if (err) *err = "cannot open " + path;
    return {};
  }
  try {
    return read_journal(is);
  } catch (const std::exception& e) {
    if (err) *err = e.what();
    return {};
  }
}

ReplayResult replay_journal(std::span<const JournalRecord> records,
                            ServeCore& core) {
  ReplayResult res;
  for (const JournalRecord& rec : records) {
    ++res.records;
    const Reply fresh = core.execute(rec.request);
    const bool match = fresh.op == rec.resp_op &&
                       fresh.payload.size() == rec.resp_len &&
                       fnv1a64(fresh.payload) == rec.resp_crc;
    if (!match) {
      ++res.mismatches;
      if (res.detail.empty()) {
        std::ostringstream ss;
        ss << "seq " << rec.seq << " (" << op_name(rec.request.op)
           << "): journaled op=" << static_cast<int>(rec.resp_op)
           << " len=" << rec.resp_len << " crc=" << rec.resp_crc
           << ", replay op=" << static_cast<int>(fresh.op)
           << " len=" << fresh.payload.size()
           << " crc=" << fnv1a64(fresh.payload);
        res.detail = ss.str();
      }
    }
  }
  return res;
}

}  // namespace scap::serve
