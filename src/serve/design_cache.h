// Content-addressed LRU cache of finalized designs.
//
// A compute request names its design as a serialized ref::Scenario recipe.
// Only a subset of the recipe's fields determine the materialized design and
// test context (SOC structure, domain, launch scheme, fault sampling) -- the
// pattern-set fields are client-side concerns -- so the cache key is the
// canonical KvDoc of exactly those fields, hashed with FNV-1a. Two clients
// asking for the same design through differently-ordered or
// differently-annotated recipes share one entry, one warm workspace pool,
// and one lazily built fault list.
//
// Entries are handed out as shared_ptr: eviction under the LRU cap drops the
// cache's reference, while in-flight batches keep the design alive until
// they finish (an evicted design is rebuilt deterministically on next use,
// which is what keeps journal replay exact across any eviction history).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "atpg/fault.h"
#include "netlist/levelized_view.h"
#include "ref/fuzz.h"
#include "ref/scenario.h"
#include "serve/workspace_pool.h"

namespace scap::serve {

/// Canonical design-determining KvDoc text of a recipe (pattern-set and
/// droop/grid/check fields excluded -- they do not shape the design, the
/// context, or the fault list).
std::string canonical_design_key(const ref::Scenario& sc);

struct DesignEntry {
  explicit DesignEntry(const ref::Scenario& sc);

  std::string key;       ///< canonical_design_key(recipe)
  std::uint64_t hash;    ///< fnv1a64(key) -- the content address
  ref::Scenario recipe;  ///< as parsed (pattern fields zeroed)
  ref::ScenarioSetup design;  ///< materialized SOC + lib + ctx (no patterns)
  WorkspacePool pool;         ///< warm analyzers; member order matters

  /// Collapsed (and, per the recipe, sampled) fault list, built on first
  /// fault_grade request against this design and cached for its lifetime.
  const std::vector<TdfFault>& faults();

  /// Levelized SoA view of the design's netlist, built on first fault_grade
  /// request and shared read-only by every FaultSimulator serving this
  /// design (netlist/levelized_view.h).
  std::shared_ptr<const LevelizedView> levelized();

 private:
  std::once_flag faults_once_;
  std::vector<TdfFault> faults_;
  std::once_flag view_once_;
  std::shared_ptr<const LevelizedView> view_;
};

class DesignCache {
 public:
  explicit DesignCache(std::size_t max_designs)
      : max_designs_(max_designs == 0 ? 1 : max_designs) {}

  /// Parse the recipe and return the cached entry, materializing (and
  /// possibly evicting the least-recently-used entry) on a miss. Throws
  /// std::runtime_error / std::invalid_argument on an unparsable or
  /// unbuildable recipe -- callers turn that into a kDesignError reply.
  std::shared_ptr<DesignEntry> get(const std::string& recipe_text);

  std::size_t size() const;
  std::size_t capacity() const { return max_designs_; }

 private:
  std::size_t max_designs_;
  mutable std::mutex mu_;
  /// MRU-first; `index_` points into the list by canonical key.
  std::list<std::shared_ptr<DesignEntry>> lru_;
  std::unordered_map<std::string,
                     std::list<std::shared_ptr<DesignEntry>>::iterator>
      index_;
};

}  // namespace scap::serve
