// Transport-independent request execution: the daemon's brain.
//
// ServeCore owns the design cache and turns decoded Requests into Replies.
// execute_batch() is the micro-batching entry point: the dispatcher hands it
// every request drained from the admission queue in one go, it groups them by
// design, and each group's screening work is fused into a single fan-out over
// the rt thread pool with per-shard warm analyzers from the design's
// workspace pool -- one dispatch serves many clients.
//
// Determinism contract (what makes journal replay exact): every reply is a
// pure per-pattern function of (design recipe, request fields). Screening and
// profiling results are bit-identical at any SCAP_THREADS (the rt contract),
// independent of how requests were grouped into batches, which requests
// shared a dispatch, or what the cache had evicted. replay_journal() re-runs
// requests one at a time and must reproduce the captured response bytes.
#pragma once

#include <span>

#include "serve/design_cache.h"
#include "serve/protocol.h"

namespace scap::serve {

class ServeCore {
 public:
  explicit ServeCore(std::size_t max_designs = 4) : cache_(max_designs) {}

  /// Execute one request (a batch of one -- the journal replay path).
  Reply execute(const Request& req);

  /// Execute a drained batch: out[i] answers *reqs[i]. Never throws; any
  /// per-request failure becomes a kError reply in its slot.
  void execute_batch(std::span<const Request* const> reqs,
                     std::span<Reply> out);

  /// Counter/gauge snapshot as KvDoc text (the kStats reply payload).
  static Reply stats_reply();

  DesignCache& cache() { return cache_; }

 private:
  DesignCache cache_;
};

}  // namespace scap::serve
