#include "serve/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace scap::serve {

namespace {

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// In-memory footprint of an admitted request: what the queue byte bound
/// accounts (unpacked pattern bytes dominate; the wire form is ~8x smaller).
std::size_t decoded_cost(const Request& req) {
  return req.design.size() + req.blob.size() +
         req.patterns.size() * (sizeof(Pattern) + req.num_vars);
}

}  // namespace

Server::Conn::~Conn() {
  if (fd >= 0) ::close(fd);
}

Server::Server(ServerOptions opt)
    : opt_(std::move(opt)), core_(opt_.max_designs) {
  if (opt_.batch_max == 0) opt_.batch_max = 1;
  if (opt_.queue_capacity == 0) opt_.queue_capacity = 1;
}

Server::~Server() { stop(); }

bool Server::start(std::string* err) {
  bool unix_bound = false;
  const auto cleanup = [&] {
    close_fd(unix_fd_);
    close_fd(tcp_fd_);
    close_fd(wake_pipe_[0]);
    close_fd(wake_pipe_[1]);
    // bind() created the socket file; a failed start must not strand it on
    // disk (stop() never runs when start() returns false).
    if (unix_bound) ::unlink(opt_.unix_path.c_str());
  };
  const auto fail = [&](const std::string& what) {
    if (err) *err = what + ": " + std::strerror(errno);
    cleanup();
    return false;
  };
  if (started_) {
    if (err) *err = "already started";
    return false;
  }
  if (opt_.unix_path.empty() && opt_.tcp_port < 0) {
    if (err) *err = "no listener configured (need unix_path or tcp_port)";
    return false;
  }
  if (::pipe(wake_pipe_) != 0) return fail("pipe");

  if (!opt_.unix_path.empty()) {
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0) return fail("socket(unix)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opt_.unix_path.size() >= sizeof addr.sun_path) {
      if (err) *err = "unix_path too long";
      cleanup();
      return false;
    }
    std::strncpy(addr.sun_path, opt_.unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    ::unlink(opt_.unix_path.c_str());  // stale socket from a crashed run
    if (::bind(unix_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
      return fail("bind(" + opt_.unix_path + ")");
    }
    unix_bound = true;
    if (::listen(unix_fd_, 128) != 0) return fail("listen(unix)");
  }

  if (opt_.tcp_port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) return fail("socket(tcp)");
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
    addr.sin_port = htons(static_cast<std::uint16_t>(opt_.tcp_port));
    if (::bind(tcp_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
      return fail("bind(tcp)");
    }
    if (::listen(tcp_fd_, 128) != 0) return fail("listen(tcp)");
    sockaddr_in bound{};
    socklen_t blen = sizeof bound;
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &blen) ==
        0) {
      bound_tcp_port_ = ntohs(bound.sin_port);
    }
  }

  if (!opt_.journal_path.empty()) {
    journal_ = std::make_unique<JournalWriter>(opt_.journal_path);
    if (!journal_->ok()) {
      if (err) *err = "cannot open journal " + opt_.journal_path;
      journal_.reset();
      cleanup();
      return false;
    }
  }

  started_ = true;
  accepting_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_main(); });
  dispatcher_thread_ = std::thread([this] { dispatcher_main(); });
  return true;
}

void Server::accept_main() {
  while (accepting_.load(std::memory_order_acquire)) {
    pollfd fds[3];
    nfds_t n = 0;
    fds[n++] = pollfd{wake_pipe_[0], POLLIN, 0};
    if (unix_fd_ >= 0) fds[n++] = pollfd{unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[n++] = pollfd{tcp_fd_, POLLIN, 0};
    if (::poll(fds, n, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (!accepting_.load(std::memory_order_acquire)) break;
    for (nfds_t i = 1; i < n; ++i) {
      if (!(fds[i].revents & POLLIN)) continue;
      const int cfd = ::accept(fds[i].fd, nullptr, nullptr);
      if (cfd < 0) continue;
      obs::count("serve.accepted");
      auto conn = std::make_shared<Conn>();
      conn->fd = cfd;
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.emplace_back(conn, std::thread([this, conn] {
                            reader_main(conn);
                          }));
    }
  }
}

void Server::reader_main(std::shared_ptr<Conn> conn) {
  std::vector<std::uint8_t> payload;
  for (;;) {
    Op op{};
    const ReadStatus st = read_frame(conn->fd, &op, &payload);
    if (st == ReadStatus::kEof || st == ReadStatus::kTruncated ||
        st == ReadStatus::kIoError) {
      break;
    }
    if (st == ReadStatus::kBadMagic || st == ReadStatus::kOversized) {
      // The stream is unframed from here on: answer once and hang up.
      send_reply(*conn, make_error(st == ReadStatus::kBadMagic
                                       ? ErrCode::kBadFrame
                                       : ErrCode::kOversized,
                                   st == ReadStatus::kBadMagic
                                       ? "bad frame magic"
                                       : "payload length above limit"));
      break;
    }
    if (op == Op::kPing) {
      send_reply(*conn, Reply{Op::kOk, payload});
      continue;
    }
    if (op == Op::kStats) {
      send_reply(*conn, ServeCore::stats_reply());
      continue;
    }
    if (!is_compute_op(op)) {
      send_reply(*conn, make_error(ErrCode::kUnknownOp, "unknown opcode"));
      continue;
    }
    Request req;
    std::string derr;
    if (!decode_request(op, payload, &req, &derr)) {
      send_reply(*conn, make_error(ErrCode::kBadRequest, derr));
      continue;
    }
    if (!enqueue(conn, std::move(req))) {
      obs::count("serve.busy_rejected");
      send_reply(*conn, Reply{Op::kBusy, {}});
    }
  }
  // Reap our own entry so a long-lived daemon does not accumulate one fd +
  // thread handle per finished connection (and so a framing-error hang-up
  // actually closes the socket). If stop() already took the entry, it owns
  // the join and we leave everything to it. Dropping the shared_ptr closes
  // the fd once any pending dispatcher replies have been sent.
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end(); ++it) {
    if (it->first.get() == conn.get()) {
      it->second.detach();  // this very thread; it exits right after this
      conns_.erase(it);
      break;
    }
  }
}

bool Server::enqueue(std::shared_ptr<Conn> conn, Request req) {
  const std::size_t cost = decoded_cost(req);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() >= opt_.queue_capacity) return false;
    // Also bound the queue's decoded bytes: capacity alone would let clients
    // park queue_capacity x (8x-unpacked max frame) of pattern data. An
    // empty queue always admits so a single over-budget request still runs.
    if (!queue_.empty() && queue_bytes_ + cost > opt_.queue_max_bytes) {
      return false;
    }
    queue_bytes_ += cost;
    queue_.push_back(Pending{std::move(conn), std::move(req)});
  }
  queue_cv_.notify_one();
  return true;
}

void Server::dispatcher_main() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] {
        return draining_ || (!queue_.empty() && !paused_);
      });
      // While draining, a test-hook pause is ignored: everything admitted
      // must still be answered before shutdown completes.
      if (queue_.empty()) {
        if (draining_) break;
        continue;  // spurious wakeup
      }
      const std::size_t n = std::min(queue_.size(), opt_.batch_max);
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        queue_bytes_ -= decoded_cost(queue_.front().req);
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    SCAP_TRACE_SCOPE("serve.batch");
    obs::observe("serve.batch_size", static_cast<double>(batch.size()));
    std::vector<const Request*> reqs(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) reqs[i] = &batch[i].req;
    std::vector<Reply> replies(batch.size());
    core_.execute_batch(reqs, replies);
    // Journal first, then respond: a reply a client acted on is always
    // recoverable from the journal.
    if (journal_) {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        journal_->append(batch[i].req, replies[i]);
      }
      journal_->flush();
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      send_reply(*batch[i].conn, replies[i]);
    }
  }
  if (journal_) journal_->flush();
}

void Server::send_reply(Conn& conn, const Reply& reply) {
  std::lock_guard<std::mutex> lock(conn.write_mu);
  (void)write_frame(conn.fd, reply.op, reply.payload);  // dead peer: drop
}

void Server::pause_dispatch(bool paused) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    paused_ = paused;
  }
  queue_cv_.notify_all();
}

void Server::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;

  // 1. Stop accepting: wake the poll, join the accept thread, close
  //    listeners so no connection can arrive afterwards.
  accepting_.store(false, std::memory_order_release);
  const char byte = 0;
  (void)!::write(wake_pipe_[1], &byte, 1);
  if (accept_thread_.joinable()) accept_thread_.join();
  close_fd(unix_fd_);
  close_fd(tcp_fd_);
  close_fd(wake_pipe_[0]);
  close_fd(wake_pipe_[1]);

  // 2. Unblock every connection reader (recv returns 0 after SHUT_RD) and
  //    join them: after this no request can be admitted.
  std::vector<std::pair<std::shared_ptr<Conn>, std::thread>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& [conn, thread] : conns) ::shutdown(conn->fd, SHUT_RD);
  for (auto& [conn, thread] : conns) {
    if (thread.joinable()) thread.join();
  }

  // 3. Drain: the dispatcher finishes (and journals, and answers) everything
  //    already admitted, then exits. A test-hook pause is overridden -- a
  //    paused queue must still drain on shutdown.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    draining_ = true;
    paused_ = false;
  }
  queue_cv_.notify_all();
  if (dispatcher_thread_.joinable()) dispatcher_thread_.join();
  journal_.reset();  // final flush + close

  // 4. Connections close when their last shared_ptr drops (here, unless a
  //    client still holds the socket open on its side).
  conns.clear();
  if (!opt_.unix_path.empty()) ::unlink(opt_.unix_path.c_str());
}

}  // namespace scap::serve
