#include "serve/workspace_pool.h"

#include "obs/metrics.h"

namespace scap::serve {

WorkspacePool::Lease WorkspacePool::acquire() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      auto a = std::move(free_.back());
      free_.pop_back();
      obs::count("serve.workspace.reused");
      return Lease(this, std::move(a));
    }
  }
  // Construction outside the lock: shards warming in parallel must not
  // serialize on the freelist mutex. The per-design tables are built exactly
  // once (racing shards wait instead of each computing a private copy) and
  // shared by every analyzer.
  std::call_once(tables_once_, [this] {
    tables_ = PatternAnalyzer::SharedTables::build(*soc_, *lib_);
  });
  obs::count("serve.workspace.created");
  return Lease(this, std::make_unique<PatternAnalyzer>(*soc_, *lib_, tables_));
}

std::size_t WorkspacePool::idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_.size();
}

void WorkspacePool::release(std::unique_ptr<PatternAnalyzer> a) {
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(a));
}

}  // namespace scap::serve
