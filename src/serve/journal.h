// Request journal: every compute request the daemon executes, with a
// checksum of the response it produced, as append-only KvDoc records.
//
// One record per request, records separated by a blank line, fields in
// "key value" lines (util/kv.h -- the same substrate as the fuzz corpus).
// The design recipe is embedded with a "design." key prefix per entry, the
// pattern bits as hex, and the threshold as the exact u64 bit pattern of the
// double, so a record is a byte-exact, self-contained reproduction of the
// request.
//
// Replay contract: replay_journal() re-executes each record serially through
// a fresh ServeCore and compares (opcode, length, FNV-1a) of the fresh
// response against the journaled one. Because replies are pure per-pattern
// functions of the request (serve/core.h), replay must match bit-for-bit
// regardless of the original batching, thread count, or cache eviction
// history -- a mismatch means nondeterminism and is a bug.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace scap::serve {

class ServeCore;

struct JournalRecord {
  std::uint64_t seq = 0;
  Request request;
  Op resp_op = Op::kOk;
  std::uint32_t resp_len = 0;
  std::uint64_t resp_crc = 0;  ///< fnv1a64 of the response payload
};

std::string serialize_record(const JournalRecord& rec);
/// Throws std::runtime_error on malformed record text.
JournalRecord parse_record(const std::string& text);

/// Append-only journal file. Opening an existing journal continues its
/// sequence numbers (seq stays unique within one file across daemon
/// restarts). Not internally thread-safe: the single dispatcher thread is
/// the only writer.
class JournalWriter {
 public:
  explicit JournalWriter(const std::string& path);
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  bool ok() const { return ok_; }
  void append(const Request& req, const Reply& reply);
  /// Flush to the OS (called once per drained batch and at shutdown).
  void flush();

 private:
  struct Impl;
  Impl* impl_;
  std::uint64_t seq_ = 0;
  bool ok_ = false;
};

/// Parse a whole journal stream (blank-line separated records). Throws on
/// malformed input.
std::vector<JournalRecord> read_journal(std::istream& is);
std::vector<JournalRecord> read_journal_file(const std::string& path,
                                             std::string* err);

struct ReplayResult {
  std::size_t records = 0;
  std::size_t mismatches = 0;
  std::string detail;  ///< first mismatch description
  bool ok() const { return mismatches == 0; }
};

/// Re-execute every record through `core` (serially, in journal order) and
/// verify each response matches the journaled opcode/length/checksum.
ReplayResult replay_journal(std::span<const JournalRecord> records,
                            ServeCore& core);

}  // namespace scap::serve
