// Byte-level wire primitives for the serve protocol (serve/protocol.h).
//
// Everything on the wire is little-endian and length-prefixed. WireWriter
// appends scalars to a growing byte buffer; WireReader consumes them with
// hard bounds checks -- any out-of-range read latches a failure flag and
// yields zeros instead of touching memory, so a truncated or hostile payload
// can never crash the decoder (the framing fuzz tests in tests/serve_test.cpp
// drive exactly that property under ASan).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace scap::serve {

/// Frame magic: "SCP1" read as a little-endian u32.
inline constexpr std::uint32_t kMagic = 0x31504353u;
/// Hard cap on a single frame's payload; larger lengths are rejected before
/// any allocation (never trust a length field).
inline constexpr std::uint32_t kMaxPayload = 32u << 20;
/// Caps inside a request payload.
inline constexpr std::uint32_t kMaxDesignBytes = 1u << 20;
inline constexpr std::uint32_t kMaxPatterns = 1u << 20;
inline constexpr std::uint32_t kMaxVars = 1u << 20;

/// Frame header: magic, opcode, flags (reserved, must be 0), payload length.
inline constexpr std::size_t kHeaderBytes = 12;

/// FNV-1a 64-bit -- the journal's response checksum and the design-cache
/// content hash. Stable, dependency-free, good enough for content addressing
/// (not cryptographic).
inline std::uint64_t fnv1a64(std::span<const std::uint8_t> data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

inline std::uint64_t fnv1a64(std::string_view s) noexcept {
  return fnv1a64(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

/// Append-only little-endian encoder.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { le(v, 2); }
  void u32(std::uint32_t v) { le(v, 4); }
  void u64(std::uint64_t v) { le(v, 8); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void bytes(std::span<const std::uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  /// u32 length followed by the raw bytes.
  void str32(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void le(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian decoder. After any failed read, ok() is
/// false and every subsequent read returns 0 / empty.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(le(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(le(4)); }
  std::uint64_t u64() { return le(8); }
  double f64() { return std::bit_cast<double>(u64()); }

  /// u32 length + raw bytes, rejecting lengths above `max_len`.
  std::string str32(std::uint32_t max_len) {
    const std::uint32_t n = u32();
    if (fail_ || n > max_len || n > remaining()) {
      fail_ = true;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_.data() + off_), n);
    off_ += n;
    return s;
  }

  /// Raw view of the next n bytes (valid while the underlying buffer lives).
  std::span<const std::uint8_t> bytes(std::size_t n) {
    if (fail_ || n > remaining()) {
      fail_ = true;
      return {};
    }
    auto out = data_.subspan(off_, n);
    off_ += n;
    return out;
  }

  std::size_t remaining() const { return data_.size() - off_; }
  bool ok() const { return !fail_; }
  /// Fully consumed with no failed reads -- decoders require this so trailing
  /// garbage is an error, not silently ignored.
  bool done() const { return !fail_ && off_ == data_.size(); }

 private:
  std::uint64_t le(int n) {
    if (fail_ || static_cast<std::size_t>(n) > remaining()) {
      fail_ = true;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(data_[off_ + i]) << (8 * i);
    }
    off_ += static_cast<std::size_t>(n);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t off_ = 0;
  bool fail_ = false;
};

}  // namespace scap::serve
