// Blocking client for the serve protocol -- used by tools/scap_bench_client,
// the serve tests, and any in-tree caller that wants screening served from a
// warm daemon instead of paying design setup in-process.
//
// One Client is one connection with strictly request->reply framing; it is
// NOT thread-safe (the load harness opens one Client per submitter thread,
// which is also the honest way to generate concurrency against the daemon).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "serve/protocol.h"

namespace scap::serve {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }
  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  static Client connect_unix(const std::string& path, std::string* err);
  static Client connect_tcp(const std::string& host, int port,
                            std::string* err);

  bool connected() const { return fd_ >= 0; }

  /// Send one request and block for its reply (kOk / kBusy / kError all
  /// come back in *out). False on transport failure.
  bool call(const Request& req, Reply* out, std::string* err);

  /// Raw access for the framing tests: push arbitrary bytes, then read
  /// whatever frame (if any) comes back.
  bool send_raw(std::span<const std::uint8_t> bytes);
  bool read_reply(Reply* out);

  void close();

 private:
  int fd_ = -1;
};

}  // namespace scap::serve
