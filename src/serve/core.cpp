#include "serve/core.h"

#include <algorithm>
#include <exception>
#include <map>
#include <string>
#include <vector>

#include "atpg/fault_sim.h"
#include "core/thresholds.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rt/thread_pool.h"
#include "util/kv.h"

namespace scap::serve {

namespace {

/// Run fn(analyzer, i) for i in [0, n), sharded over the rt pool with one
/// warm-pool analyzer lease per shard. Unit i's result must depend only on i
/// (the callers write element-indexed slots), so the output is bit-identical
/// at any SCAP_THREADS -- same discipline as scap_profile_patterns.
template <typename Fn>
void pooled_for(DesignEntry& entry, std::size_t n, Fn&& fn) {
  if (n == 0) return;
  const std::size_t threads = rt::concurrency();
  if (threads <= 1 || n < 2 || rt::ThreadPool::on_worker_thread()) {
    auto lease = entry.pool.acquire();
    for (std::size_t i = 0; i < n; ++i) fn(lease.get(), i);
    return;
  }
  const std::size_t n_shards = std::min(n, threads * 2);
  const std::size_t per = (n + n_shards - 1) / n_shards;
  rt::ThreadPool::global()->run_chunked(n_shards, [&](std::size_t s) {
    const std::size_t b = s * per;
    const std::size_t e = std::min(n, b + per);
    if (b >= e) return;
    auto lease = entry.pool.acquire();
    for (std::size_t i = b; i < e; ++i) fn(lease.get(), i);
  });
}

/// One pattern's slice of the fused tier-1 (static-bound) pass.
struct StaticUnit {
  const Pattern* pat = nullptr;
  std::uint32_t hot = 0;
  double threshold = 0.0;
  double bound_mw = 0.0;     // out
  std::uint8_t exceeds = 0;  // out: bound fails to clear the threshold
};

/// One pattern's slice of the fused exact (event-sim) pass.
struct ExactUnit {
  const Pattern* pat = nullptr;
  ScapReport rep;  // out
};

/// Per-request bookkeeping inside one design group. Unit ranges are
/// contiguous per request, in request order.
struct GroupMember {
  std::size_t slot = 0;  ///< index into the batch's reply span
  const Request* req = nullptr;
  std::size_t static_begin = 0;  ///< first StaticUnit (screen ops)
  std::size_t exact_begin = 0;   ///< first ExactUnit (profile ops)
  /// screen_exact: per pattern, index into exact units, or npos if the
  /// static bound already cleared it.
  std::vector<std::size_t> sim_unit;
};

constexpr std::size_t kNoUnit = static_cast<std::size_t>(-1);

struct Group {
  std::shared_ptr<DesignEntry> entry;
  std::vector<GroupMember> members;
};

void execute_group(Group& g, std::span<Reply> out) {
  DesignEntry& entry = *g.entry;
  const TestContext& ctx = entry.design.ctx;

  // Tier 1: one fused static-bound pass over every screening request.
  std::vector<StaticUnit> statics;
  for (GroupMember& m : g.members) {
    if (m.req->op != Op::kScreenStatic && m.req->op != Op::kScreenExact) {
      continue;
    }
    m.static_begin = statics.size();
    for (const Pattern& p : m.req->patterns) {
      statics.push_back(
          StaticUnit{&p, m.req->hot_block, m.req->threshold_mw, 0.0, 0});
    }
  }
  pooled_for(entry, statics.size(), [&](PatternAnalyzer& a, std::size_t i) {
    StaticUnit& u = statics[i];
    u.bound_mw = a.screen_static(ctx, *u.pat).block_scap_mw(u.hot);
    // Same predicate as scap_screen_patterns: a bound at or under the
    // threshold proves the pattern clean (soundness); anything else -- above,
    // or +inf when the window could not be bounded -- needs the exact sim.
    u.exceeds = u.bound_mw <= u.threshold ? 0 : 1;
  });

  // Tier 2: one fused event-sim pass over every profile request plus the
  // screen_exact patterns the static bound could not clear.
  std::vector<ExactUnit> exacts;
  for (GroupMember& m : g.members) {
    if (m.req->op == Op::kScapProfile) {
      m.exact_begin = exacts.size();
      for (const Pattern& p : m.req->patterns) {
        exacts.push_back(ExactUnit{&p, {}});
      }
    } else if (m.req->op == Op::kScreenExact) {
      m.sim_unit.assign(m.req->patterns.size(), kNoUnit);
      for (std::size_t i = 0; i < m.req->patterns.size(); ++i) {
        if (statics[m.static_begin + i].exceeds) {
          m.sim_unit[i] = exacts.size();
          exacts.push_back(ExactUnit{&m.req->patterns[i], {}});
        }
      }
    }
  }
  obs::count("serve.eventsim_patterns", exacts.size());
  pooled_for(entry, exacts.size(), [&](PatternAnalyzer& a, std::size_t i) {
    exacts[i].rep = a.analyze_scap(ctx, *exacts[i].pat);
  });

  // Assemble replies.
  for (GroupMember& m : g.members) {
    const Request& q = *m.req;
    switch (q.op) {
      case Op::kScreenStatic: {
        std::vector<StaticScreenItem> items(q.patterns.size());
        for (std::size_t i = 0; i < items.size(); ++i) {
          const StaticUnit& u = statics[m.static_begin + i];
          items[i] = StaticScreenItem{u.exceeds, u.bound_mw};
        }
        out[m.slot] = encode_static_reply(items);
        break;
      }
      case Op::kScreenExact: {
        ExactScreenReply rep;
        rep.violates.assign(q.patterns.size(), 0);
        for (std::size_t i = 0; i < q.patterns.size(); ++i) {
          const std::size_t u = m.sim_unit[i];
          if (u == kNoUnit) {
            ++rep.statically_clean;  // tier-1 proven clean, verdict 0
            continue;
          }
          ++rep.event_simmed;
          rep.violates[i] =
              ScapThresholds::block_scap_mw(exacts[u].rep, q.hot_block) >
                      q.threshold_mw
                  ? 1
                  : 0;
        }
        out[m.slot] = encode_exact_reply(rep);
        break;
      }
      case Op::kScapProfile: {
        std::vector<ScapReport> reports(q.patterns.size());
        for (std::size_t i = 0; i < reports.size(); ++i) {
          reports[i] = std::move(exacts[m.exact_begin + i].rep);
        }
        out[m.slot] = encode_profile_reply(reports);
        break;
      }
      case Op::kFaultGrade: {
        // grade() shards the fault list over the rt pool internally; the
        // result is bit-identical at any thread count and batch width. The
        // levelized view is built once per cached design and shared.
        FaultSimulator fs(entry.design.soc.netlist, ctx, entry.levelized());
        const std::vector<std::size_t> graded =
            fs.grade(q.patterns, entry.faults());
        out[m.slot] = encode_grade_reply(graded);
        break;
      }
      default:
        out[m.slot] = make_error(ErrCode::kInternal, "bad group member");
        break;
    }
  }
}

}  // namespace

Reply ServeCore::execute(const Request& req) {
  const Request* p = &req;
  Reply r;
  execute_batch(std::span<const Request* const>(&p, 1),
                std::span<Reply>(&r, 1));
  return r;
}

void ServeCore::execute_batch(std::span<const Request* const> reqs,
                              std::span<Reply> out) {
  SCAP_TRACE_SCOPE("serve.execute");
  obs::count("serve.requests", reqs.size());
  if (reqs.size() > 1) obs::count("serve.batched", reqs.size());

  // Resolve each distinct design text once per batch; group compute requests
  // by the resolved entry so one fused dispatch serves every client that
  // asked for the same design.
  struct Resolved {
    std::shared_ptr<DesignEntry> entry;
    std::string error;
  };
  std::map<std::string, Resolved, std::less<>> memo;
  std::vector<Group> groups;
  std::map<const DesignEntry*, std::size_t> group_of;

  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const Request& q = *reqs[i];
    if (q.op == Op::kPing) {
      out[i] = Reply{Op::kOk, q.blob};
      continue;
    }
    if (q.op == Op::kStats) {
      out[i] = stats_reply();
      continue;
    }
    if (!is_compute_op(q.op)) {
      out[i] = make_error(ErrCode::kUnknownOp, "not a request opcode");
      continue;
    }
    auto [it, fresh] = memo.try_emplace(q.design);
    if (fresh) {
      try {
        it->second.entry = cache_.get(q.design);
      } catch (const std::exception& e) {
        it->second.error = e.what();
      }
    }
    if (!it->second.entry) {
      out[i] = make_error(ErrCode::kDesignError, it->second.error);
      continue;
    }
    DesignEntry& entry = *it->second.entry;
    if (q.num_vars != entry.design.ctx.num_vars()) {
      out[i] = make_error(ErrCode::kBadRequest,
                          "num_vars does not match the design's context");
      continue;
    }
    if ((q.op == Op::kScreenStatic || q.op == Op::kScreenExact) &&
        q.hot_block >= entry.design.soc.netlist.block_count()) {
      out[i] = make_error(ErrCode::kBadRequest, "hot_block out of range");
      continue;
    }
    obs::count("serve.patterns", q.patterns.size());
    auto [git, new_group] = group_of.try_emplace(&entry, groups.size());
    if (new_group) groups.push_back(Group{it->second.entry, {}});
    groups[git->second].members.push_back(GroupMember{i, &q, 0, 0, {}});
  }

  for (Group& g : groups) {
    try {
      execute_group(g, out);
    } catch (const std::exception& e) {
      for (const GroupMember& m : g.members) {
        out[m.slot] = make_error(ErrCode::kInternal, e.what());
      }
    }
  }
}

Reply ServeCore::stats_reply() {
  util::KvDoc kv;
  for (const auto& [name, v] : obs::Registry::global().counters()) {
    kv.set_u64(name, v);
  }
  const std::string text = kv.to_string();
  Reply r;
  r.op = Op::kOk;
  r.payload.assign(text.begin(), text.end());
  return r;
}

}  // namespace scap::serve
