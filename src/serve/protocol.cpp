#include "serve/protocol.h"

#include <sys/socket.h>
#include <sys/types.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "util/kv.h"

namespace scap::serve {

namespace {

constexpr std::uint64_t kUndetectedWire =
    std::numeric_limits<std::uint64_t>::max();

bool fail(std::string* err, const char* why) {
  if (err) *err = why;
  return false;
}

}  // namespace

const char* op_name(Op op) {
  switch (op) {
    case Op::kPing:
      return "ping";
    case Op::kScreenStatic:
      return "screen_static";
    case Op::kScreenExact:
      return "screen_exact";
    case Op::kScapProfile:
      return "scap_profile";
    case Op::kFaultGrade:
      return "fault_grade";
    case Op::kStats:
      return "stats";
    case Op::kOk:
      return "ok";
    case Op::kBusy:
      return "busy";
    case Op::kError:
      return "error";
  }
  return "?";
}

std::vector<std::uint8_t> pack_patterns(std::span<const Pattern> patterns,
                                        std::size_t num_vars) {
  const std::size_t stride = pattern_stride(num_vars);
  std::vector<std::uint8_t> out(patterns.size() * stride, 0);
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    const auto& s1 = patterns[p].s1;
    std::uint8_t* row = out.data() + p * stride;
    const std::size_t n = std::min(num_vars, s1.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (s1[i]) row[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
    }
  }
  return out;
}

std::vector<Pattern> unpack_patterns(std::span<const std::uint8_t> bytes,
                                     std::size_t n, std::size_t num_vars) {
  const std::size_t stride = pattern_stride(num_vars);
  std::vector<Pattern> out(n);
  for (std::size_t p = 0; p < n; ++p) {
    const std::uint8_t* row = bytes.data() + p * stride;
    out[p].s1.resize(num_vars);
    for (std::size_t i = 0; i < num_vars; ++i) {
      out[p].s1[i] = (row[i / 8] >> (i % 8)) & 1u;
    }
  }
  return out;
}

std::vector<std::uint8_t> encode_request(const Request& req) {
  if (req.op == Op::kPing || req.op == Op::kStats) return req.blob;
  WireWriter w;
  w.u32(req.hot_block);
  w.f64(req.threshold_mw);
  w.str32(req.design);
  w.u32(static_cast<std::uint32_t>(req.patterns.size()));
  w.u32(req.num_vars);
  w.bytes(pack_patterns(req.patterns, req.num_vars));
  return w.take();
}

bool decode_request(Op op, std::span<const std::uint8_t> payload, Request* out,
                    std::string* err) {
  out->op = op;
  if (op == Op::kPing || op == Op::kStats) {
    out->blob.assign(payload.begin(), payload.end());
    return true;
  }
  if (!is_compute_op(op)) return fail(err, "not a request opcode");
  WireReader r(payload);
  out->hot_block = r.u32();
  out->threshold_mw = r.f64();
  out->design = r.str32(kMaxDesignBytes);
  const std::uint32_t n = r.u32();
  out->num_vars = r.u32();
  if (!r.ok()) return fail(err, "truncated request header");
  if (out->design.empty()) return fail(err, "empty design recipe");
  // The design must be a well-formed KvDoc: everything downstream -- the
  // cache key, Scenario::parse, and above all the journal's "design."-prefix
  // flattening (which would otherwise throw inside the dispatcher) -- assumes
  // it parses. Reject malformed text here so it is never admitted.
  try {
    (void)util::KvDoc::parse(out->design);
  } catch (const std::exception& e) {
    if (err) *err = std::string("design recipe is not a KvDoc: ") + e.what();
    return false;
  }
  if (n > kMaxPatterns) return fail(err, "pattern count above limit");
  if (out->num_vars == 0 || out->num_vars > kMaxVars) {
    return fail(err, "bad num_vars");
  }
  // NaN thresholds would make every comparison silently false.
  if (std::isnan(out->threshold_mw)) return fail(err, "NaN threshold");
  const std::size_t stride = pattern_stride(out->num_vars);
  const auto bits = r.bytes(static_cast<std::size_t>(n) * stride);
  if (!r.ok()) return fail(err, "truncated pattern bits");
  if (!r.done()) return fail(err, "trailing bytes after pattern bits");
  out->patterns = unpack_patterns(bits, n, out->num_vars);
  return true;
}

Reply make_error(ErrCode code, std::string_view msg) {
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(code));
  w.str32(msg);
  return Reply{Op::kError, w.take()};
}

bool decode_error(std::span<const std::uint8_t> payload, ErrCode* code,
                  std::string* msg) {
  WireReader r(payload);
  const std::uint32_t c = r.u32();
  std::string m = r.str32(1u << 16);
  if (!r.done()) return false;
  *code = static_cast<ErrCode>(c);
  *msg = std::move(m);
  return true;
}

Reply encode_static_reply(std::span<const StaticScreenItem> items) {
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(items.size()));
  for (const auto& it : items) {
    w.u8(it.exceeds);
    w.f64(it.bound_mw);
  }
  return Reply{Op::kOk, w.take()};
}

bool decode_static_reply(std::span<const std::uint8_t> payload,
                         std::vector<StaticScreenItem>* out) {
  WireReader r(payload);
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > kMaxPatterns) return false;
  out->assign(n, StaticScreenItem{});
  for (auto& it : *out) {
    it.exceeds = r.u8();
    it.bound_mw = r.f64();
  }
  return r.done();
}

Reply encode_exact_reply(const ExactScreenReply& rep) {
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(rep.violates.size()));
  w.u32(rep.statically_clean);
  w.u32(rep.event_simmed);
  w.bytes(rep.violates);
  return Reply{Op::kOk, w.take()};
}

bool decode_exact_reply(std::span<const std::uint8_t> payload,
                        ExactScreenReply* out) {
  WireReader r(payload);
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > kMaxPatterns) return false;
  out->statically_clean = r.u32();
  out->event_simmed = r.u32();
  const auto v = r.bytes(n);
  if (!r.done()) return false;
  out->violates.assign(v.begin(), v.end());
  return true;
}

Reply encode_profile_reply(std::span<const ScapReport> reports) {
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(reports.size()));
  const std::size_t blocks =
      reports.empty() ? 0 : reports.front().vdd_energy_pj.size();
  w.u32(static_cast<std::uint32_t>(blocks));
  for (const ScapReport& rep : reports) {
    w.f64(rep.stw_ns);
    w.f64(rep.period_ns);
    w.u64(rep.num_toggles);
    w.f64(rep.vdd_energy_total_pj);
    w.f64(rep.vss_energy_total_pj);
    for (std::size_t b = 0; b < blocks; ++b) w.f64(rep.vdd_energy_pj[b]);
    for (std::size_t b = 0; b < blocks; ++b) w.f64(rep.vss_energy_pj[b]);
  }
  return Reply{Op::kOk, w.take()};
}

bool decode_profile_reply(std::span<const std::uint8_t> payload,
                          std::vector<ScapReport>* out) {
  WireReader r(payload);
  const std::uint32_t n = r.u32();
  const std::uint32_t blocks = r.u32();
  if (!r.ok() || n > kMaxPatterns || blocks > (1u << 16)) return false;
  out->assign(n, ScapReport{});
  for (ScapReport& rep : *out) {
    rep.stw_ns = r.f64();
    rep.period_ns = r.f64();
    rep.num_toggles = static_cast<std::size_t>(r.u64());
    rep.vdd_energy_total_pj = r.f64();
    rep.vss_energy_total_pj = r.f64();
    rep.vdd_energy_pj.resize(blocks);
    rep.vss_energy_pj.resize(blocks);
    for (auto& e : rep.vdd_energy_pj) e = r.f64();
    for (auto& e : rep.vss_energy_pj) e = r.f64();
  }
  return r.done();
}

Reply encode_grade_reply(std::span<const std::size_t> first_detect) {
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(first_detect.size()));
  for (std::size_t v : first_detect) {
    w.u64(v == static_cast<std::size_t>(-1) ? kUndetectedWire
                                            : static_cast<std::uint64_t>(v));
  }
  return Reply{Op::kOk, w.take()};
}

bool decode_grade_reply(std::span<const std::uint8_t> payload,
                        std::vector<std::size_t>* out) {
  WireReader r(payload);
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > (1u << 24)) return false;
  out->assign(n, 0);
  for (auto& v : *out) {
    const std::uint64_t w = r.u64();
    v = w == kUndetectedWire ? static_cast<std::size_t>(-1)
                             : static_cast<std::size_t>(w);
  }
  return r.done();
}

namespace {

/// Full read of exactly n bytes; distinguishes EOF-before-anything from
/// EOF-mid-read via *got.
bool read_exact(int fd, std::uint8_t* dst, std::size_t n, std::size_t* got) {
  *got = 0;
  while (*got < n) {
    const ssize_t r = ::recv(fd, dst + *got, n - *got, 0);
    if (r == 0) return false;  // orderly EOF
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    *got += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

ReadStatus read_frame(int fd, Op* op, std::vector<std::uint8_t>* payload) {
  std::uint8_t hdr[kHeaderBytes];
  std::size_t got = 0;
  if (!read_exact(fd, hdr, sizeof hdr, &got)) {
    return got == 0 ? ReadStatus::kEof : ReadStatus::kTruncated;
  }
  WireReader r(std::span<const std::uint8_t>(hdr, sizeof hdr));
  const std::uint32_t magic = r.u32();
  const std::uint16_t opcode = r.u16();
  (void)r.u16();  // flags (reserved)
  const std::uint32_t len = r.u32();
  if (magic != kMagic) return ReadStatus::kBadMagic;
  if (len > kMaxPayload) return ReadStatus::kOversized;
  payload->resize(len);
  if (len > 0 && !read_exact(fd, payload->data(), len, &got)) {
    return ReadStatus::kTruncated;
  }
  *op = static_cast<Op>(opcode);
  return ReadStatus::kOk;
}

bool write_frame(int fd, Op op, std::span<const std::uint8_t> payload) {
  WireWriter w;
  w.u32(kMagic);
  w.u16(static_cast<std::uint16_t>(op));
  w.u16(0);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.bytes(payload);
  const std::vector<std::uint8_t>& buf = w.data();
  std::size_t sent = 0;
  while (sent < buf.size()) {
    const ssize_t n =
        ::send(fd, buf.data() + sent, buf.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace scap::serve
