#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace scap::serve {

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Client Client::connect_unix(const std::string& path, std::string* err) {
  Client c;
  c.fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (c.fd_ < 0) {
    if (err) *err = std::string("socket: ") + std::strerror(errno);
    return c;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    if (err) *err = "unix path too long";
    c.close();
    return c;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(c.fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    if (err) *err = "connect(" + path + "): " + std::strerror(errno);
    c.close();
  }
  return c;
}

Client Client::connect_tcp(const std::string& host, int port,
                           std::string* err) {
  Client c;
  c.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (c.fd_ < 0) {
    if (err) *err = std::string("socket: ") + std::strerror(errno);
    return c;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (err) *err = "bad address " + host;
    c.close();
    return c;
  }
  if (::connect(c.fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    if (err) *err = "connect(" + host + "): " + std::strerror(errno);
    c.close();
  }
  return c;
}

bool Client::call(const Request& req, Reply* out, std::string* err) {
  if (fd_ < 0) {
    if (err) *err = "not connected";
    return false;
  }
  const std::vector<std::uint8_t> payload = encode_request(req);
  if (!write_frame(fd_, req.op, payload)) {
    if (err) *err = "send failed";
    return false;
  }
  if (!read_reply(out)) {
    if (err) *err = "connection closed before reply";
    return false;
  }
  return true;
}

bool Client::send_raw(std::span<const std::uint8_t> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool Client::read_reply(Reply* out) {
  Op op{};
  std::vector<std::uint8_t> payload;
  if (read_frame(fd_, &op, &payload) != ReadStatus::kOk) return false;
  out->op = op;
  out->payload = std::move(payload);
  return true;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace scap::serve
