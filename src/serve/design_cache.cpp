#include "serve/design_cache.h"

#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/wire.h"
#include "util/kv.h"
#include "util/rng.h"

namespace scap::serve {

namespace {

/// The design-determining subset of a recipe, with every pattern-set /
/// droop / grid / oracle field stripped (and num_patterns zeroed so
/// materialize_scenario builds no patterns).
ref::Scenario design_only(const ref::Scenario& sc) {
  ref::Scenario d;
  d.name = "design";
  d.soc_seed = sc.soc_seed;
  d.flops_scale = sc.flops_scale;
  d.scan_chains = sc.scan_chains;
  d.gates_per_flop = sc.gates_per_flop;
  d.domain = sc.domain;
  d.scheme = sc.scheme;
  d.fault_sample = sc.fault_sample;
  d.fault_seed = sc.fault_seed;
  d.num_patterns = 0;
  return d;
}

}  // namespace

std::string canonical_design_key(const ref::Scenario& sc) {
  const ref::Scenario d = design_only(sc);
  util::KvDoc kv;
  kv.set_u64("soc_seed", d.soc_seed);
  kv.set_f64("flops_scale", d.flops_scale);
  kv.set_u64("scan_chains", d.scan_chains);
  kv.set_f64("gates_per_flop", d.gates_per_flop);
  kv.set_u64("domain", d.domain);
  kv.set_u64("scheme", d.scheme);
  kv.set_u64("fault_sample", d.fault_sample);
  kv.set_u64("fault_seed", d.fault_seed);
  return kv.to_string();
}

DesignEntry::DesignEntry(const ref::Scenario& sc)
    : key(canonical_design_key(sc)),
      hash(fnv1a64(key)),
      recipe(design_only(sc)),
      design(ref::materialize_scenario(recipe)),
      pool(design.soc, design.lib) {}

const std::vector<TdfFault>& DesignEntry::faults() {
  std::call_once(faults_once_, [this] {
    SCAP_TRACE_SCOPE("serve.faults_build");
    const Netlist& nl = design.soc.netlist;
    std::vector<TdfFault> all = collapse_faults(nl, enumerate_faults(nl));
    if (recipe.fault_sample > 0 && recipe.fault_sample < all.size()) {
      // Same sampling as the fuzz harness (ref/fuzz.cpp): a seeded shuffle of
      // the collapsed indices, first fault_sample taken -- a pure function of
      // the recipe, so replay grades the identical sample.
      Rng fr(recipe.fault_seed);
      std::vector<std::size_t> idx(all.size());
      std::iota(idx.begin(), idx.end(), std::size_t{0});
      fr.shuffle(idx);
      std::vector<TdfFault> sample;
      sample.reserve(recipe.fault_sample);
      for (std::size_t k = 0; k < recipe.fault_sample; ++k) {
        sample.push_back(all[idx[k]]);
      }
      all = std::move(sample);
    }
    faults_ = std::move(all);
  });
  return faults_;
}

std::shared_ptr<const LevelizedView> DesignEntry::levelized() {
  std::call_once(view_once_, [this] {
    SCAP_TRACE_SCOPE("serve.levelize");
    view_ = LevelizedView::build(design.soc.netlist);
  });
  return view_;
}

std::shared_ptr<DesignEntry> DesignCache::get(const std::string& recipe_text) {
  const ref::Scenario sc = ref::Scenario::parse(recipe_text);
  const std::string key = canonical_design_key(sc);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
      obs::count("serve.design.hits");
      return lru_.front();
    }
  }
  // Materialize outside the lock: design builds take milliseconds-to-seconds
  // and must not block concurrent hits. A racing miss for the same key just
  // builds twice and the second insert wins; correctness is unaffected
  // (entries for one key are interchangeable by construction).
  SCAP_TRACE_SCOPE("serve.design_build");
  auto entry = std::make_shared<DesignEntry>(sc);
  obs::count("serve.design.misses");
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return lru_.front();
  }
  lru_.push_front(entry);
  index_[key] = lru_.begin();
  while (lru_.size() > max_designs_) {
    index_.erase(lru_.back()->key);
    lru_.pop_back();  // in-flight holders keep the shared_ptr alive
    obs::count("serve.design.evictions");
  }
  return entry;
}

std::size_t DesignCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace scap::serve
