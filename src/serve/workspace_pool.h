// Per-design pool of warm PatternAnalyzers.
//
// A PatternAnalyzer owns an EventSim::Workspace plus the frame-1 / stimulus /
// SCAP scratch, so its second and later analyses are allocation-free -- but a
// single instance must never be shared across threads (core/pattern_sim.h).
// The pool keeps finished analyzers warm instead of destroying them: a batch
// dispatch leases one analyzer per shard, and the lease returns it on scope
// exit, so steady-state serving pays the analyzer construction cost
// (delay model, SCAP tables, static model) only until the pool has grown to
// the shard fan-out, then never again.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "core/pattern_sim.h"

namespace scap::serve {

class WorkspacePool {
 public:
  /// `soc` and `lib` must outlive the pool (the design-cache entry owns all
  /// three, in that order).
  WorkspacePool(const SocDesign& soc, const TechLibrary& lib)
      : soc_(&soc), lib_(&lib) {}
  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  /// RAII lease: exclusive use of one warm analyzer until destruction.
  class Lease {
   public:
    Lease(WorkspacePool* pool, std::unique_ptr<PatternAnalyzer> a)
        : pool_(pool), analyzer_(std::move(a)) {}
    ~Lease() {
      if (analyzer_) pool_->release(std::move(analyzer_));
    }
    Lease(Lease&&) = default;
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    PatternAnalyzer& get() { return *analyzer_; }

   private:
    WorkspacePool* pool_;
    std::unique_ptr<PatternAnalyzer> analyzer_;
  };

  /// Reuse a warm analyzer when one is free, else construct (and count) a
  /// fresh one. Thread-safe; called once per shard per dispatch.
  Lease acquire();

  /// Analyzers currently parked in the freelist (tests / stats).
  std::size_t idle() const;

 private:
  void release(std::unique_ptr<PatternAnalyzer> a);

  const SocDesign* soc_;
  const TechLibrary* lib_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<PatternAnalyzer>> free_;  // guarded by mu_
  /// Per-design analysis tables (delay model, SCAP calculator), built by the
  /// first acquire() and shared read-only by every analyzer the pool ever
  /// constructs -- a cold dispatch pays the table cost once, not per shard.
  /// Immutable after the call_once.
  std::once_flag tables_once_;
  std::shared_ptr<const PatternAnalyzer::SharedTables> tables_;
};

}  // namespace scap::serve
