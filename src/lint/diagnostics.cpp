#include "lint/diagnostics.h"

#include <algorithm>
#include <stdexcept>

#include "lint/rules.h"

namespace scap::lint {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

std::size_t LintReport::count(std::string_view rule) const {
  for (const auto& [id, n] : rule_counts) {
    if (id == rule) return n;
  }
  return 0;
}

bool Diagnostics::rule_enabled(std::string_view rule) const {
  return std::find(cfg_->disabled.begin(), cfg_->disabled.end(), rule) ==
         cfg_->disabled.end();
}

void Diagnostics::add(std::string_view rule, Location loc,
                      std::string message) {
  if (!rule_enabled(rule)) return;
  const RuleInfo* info = find_rule(rule);
  if (info == nullptr) {
    throw std::logic_error("lint: finding reported for unregistered rule '" +
                           std::string(rule) + "'");
  }
  Severity sev = info->severity;
  for (const auto& [id, s] : cfg_->severity_overrides) {
    if (id == rule) sev = s;
  }

  auto it = std::find_if(report_.rule_counts.begin(), report_.rule_counts.end(),
                         [&](const auto& rc) { return rc.first == rule; });
  if (it == report_.rule_counts.end()) {
    report_.rule_counts.emplace_back(std::string(rule), 0);
    it = std::prev(report_.rule_counts.end());
  }
  const std::size_t seen = ++it->second;

  switch (sev) {
    case Severity::kError: ++report_.errors; break;
    case Severity::kWarning: ++report_.warnings; break;
    case Severity::kInfo: ++report_.infos; break;
  }

  if (cfg_->max_per_rule != 0 && seen > cfg_->max_per_rule) {
    ++report_.suppressed;
    return;
  }
  report_.diagnostics.push_back(Diagnostic{std::string(rule), sev,
                                           std::move(loc), std::move(message),
                                           std::string(info->fix_hint)});
}

LintReport Diagnostics::finish() && {
  // Errors first, then warnings, then infos; stable within a severity so
  // findings stay in netlist order.
  std::stable_sort(report_.diagnostics.begin(), report_.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return static_cast<int>(a.severity) >
                            static_cast<int>(b.severity);
                   });
  return std::move(report_);
}

}  // namespace scap::lint
