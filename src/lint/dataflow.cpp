#include "lint/dataflow.h"

#include <algorithm>
#include <array>
#include <cstdint>

namespace scap::lint {

namespace {

/// Saturating cost addition: anything involving kInfCost stays impossible;
/// finite overflow clamps just below it (huge but still achievable).
std::uint32_t sat_add(std::uint32_t a, std::uint32_t b) {
  if (a == kInfCost || b == kInfCost) return kInfCost;
  const std::uint64_t s = static_cast<std::uint64_t>(a) + b;
  return s >= kInfCost ? kInfCost - 1 : static_cast<std::uint32_t>(s);
}

std::uint32_t sat_min(std::uint32_t a, std::uint32_t b) {
  return a < b ? a : b;
}

/// SCOAP controllability transfer function of one gate: the cost of setting
/// the output to 0 / 1 given the per-input costs. Computed on the gate's
/// non-inverted core function, then swapped for NAND/NOR/XNOR/INV.
void gate_cc(CellType t, std::span<const NetId> ins,
             std::span<const std::uint32_t> cc0,
             std::span<const std::uint32_t> cc1, std::uint32_t& out0,
             std::uint32_t& out1) {
  std::uint32_t c0 = kInfCost;
  std::uint32_t c1 = kInfCost;
  switch (gate_class(t)) {
    case GateClass::kTie:
      c0 = t == CellType::kTie0 ? 1 : kInfCost;
      c1 = t == CellType::kTie1 ? 1 : kInfCost;
      break;
    case GateClass::kBufLike:
      c0 = sat_add(cc0[ins[0]], 1);
      c1 = sat_add(cc1[ins[0]], 1);
      break;
    case GateClass::kAndLike: {
      std::uint32_t all1 = 0;
      std::uint32_t any0 = kInfCost;
      for (NetId in : ins) {
        all1 = sat_add(all1, cc1[in]);
        any0 = sat_min(any0, cc0[in]);
      }
      c0 = sat_add(any0, 1);
      c1 = sat_add(all1, 1);
      break;
    }
    case GateClass::kOrLike: {
      std::uint32_t all0 = 0;
      std::uint32_t any1 = kInfCost;
      for (NetId in : ins) {
        all0 = sat_add(all0, cc0[in]);
        any1 = sat_min(any1, cc1[in]);
      }
      c0 = sat_add(all0, 1);
      c1 = sat_add(any1, 1);
      break;
    }
    case GateClass::kXorLike: {
      const NetId a = ins[0];
      const NetId b = ins[1];
      c0 = sat_add(sat_min(sat_add(cc0[a], cc0[b]), sat_add(cc1[a], cc1[b])),
                   1);
      c1 = sat_add(sat_min(sat_add(cc0[a], cc1[b]), sat_add(cc1[a], cc0[b])),
                   1);
      break;
    }
    case GateClass::kMux: {
      // inputs [S, A, B]; output = S ? B : A.
      const NetId s = ins[0];
      const NetId a = ins[1];
      const NetId b = ins[2];
      c0 = sat_add(sat_min(sat_add(cc0[s], cc0[a]), sat_add(cc1[s], cc0[b])),
                   1);
      c1 = sat_add(sat_min(sat_add(cc0[s], cc1[a]), sat_add(cc1[s], cc1[b])),
                   1);
      break;
    }
  }
  if (is_inverting(t)) std::swap(c0, c1);
  out0 = c0;
  out1 = c1;
}

/// SCOAP sensitization cost of input pin `pin` of a gate: what the side
/// inputs must be set to for a change on the pin to reach the output.
/// Output inversion is free, so NAND/NOR/XNOR share their core's cost.
std::uint32_t sensitize_cost(CellType t, std::span<const NetId> ins,
                             std::size_t pin,
                             std::span<const std::uint32_t> cc0,
                             std::span<const std::uint32_t> cc1) {
  switch (gate_class(t)) {
    case GateClass::kTie:
      return kInfCost;  // no inputs; unreachable
    case GateClass::kBufLike:
      return 1;
    case GateClass::kAndLike: {
      std::uint32_t cost = 1;
      for (std::size_t j = 0; j < ins.size(); ++j) {
        if (j != pin) cost = sat_add(cost, cc1[ins[j]]);
      }
      return cost;
    }
    case GateClass::kOrLike: {
      std::uint32_t cost = 1;
      for (std::size_t j = 0; j < ins.size(); ++j) {
        if (j != pin) cost = sat_add(cost, cc0[ins[j]]);
      }
      return cost;
    }
    case GateClass::kXorLike: {
      std::uint32_t cost = 1;
      for (std::size_t j = 0; j < ins.size(); ++j) {
        if (j != pin) {
          cost = sat_add(cost, sat_min(cc0[ins[j]], cc1[ins[j]]));
        }
      }
      return cost;
    }
    case GateClass::kMux: {
      const NetId s = ins[0];
      const NetId a = ins[1];
      const NetId b = ins[2];
      if (pin == 0) {
        // Observing the select needs the data inputs to differ.
        return sat_add(sat_min(sat_add(cc0[a], cc1[b]),
                               sat_add(cc1[a], cc0[b])),
                       1);
      }
      return sat_add(pin == 1 ? cc0[s] : cc1[s], 1);
    }
  }
  return kInfCost;
}

}  // namespace

LevelMap levelize(const Netlist& nl) {
  LevelMap lm;
  const std::size_t ng = nl.num_gates();
  const std::size_t nn = nl.num_nets();
  lm.gate_level.assign(ng, kInfCost);
  lm.topo.reserve(ng);

  // Reader-pin map rebuilt from the raw tables (valid pre-finalize; one
  // entry per connected pin, so pending counts balance exactly).
  std::vector<std::uint32_t> rd_begin(nn + 1, 0);
  for (GateId g = 0; g < ng; ++g) {
    for (NetId in : nl.gate_inputs(g)) ++rd_begin[in + 1];
  }
  for (std::size_t n = 0; n < nn; ++n) rd_begin[n + 1] += rd_begin[n];
  std::vector<GateId> rd_pool(rd_begin[nn]);
  std::vector<std::uint32_t> cursor(rd_begin.begin(), rd_begin.end() - 1);
  for (GateId g = 0; g < ng; ++g) {
    for (NetId in : nl.gate_inputs(g)) rd_pool[cursor[in]++] = g;
  }

  // Kahn worklist: a gate is ready once every input pin driven by a gate has
  // its driver levelized. Permissive netlists may under-record extra drivers
  // of a multi-driven net; the recorded first driver is the authority here
  // (multi-driven is an error reported by the structural rules).
  std::vector<std::uint32_t> pending(ng, 0);
  for (GateId g = 0; g < ng; ++g) {
    for (NetId in : nl.gate_inputs(g)) {
      if (nl.net(in).driver_kind == DriverKind::kGate) ++pending[g];
    }
  }
  for (GateId g = 0; g < ng; ++g) {
    if (pending[g] == 0) {
      lm.gate_level[g] = 0;
      lm.topo.push_back(g);
    }
  }
  for (std::size_t head = 0; head < lm.topo.size(); ++head) {
    const GateId g = lm.topo[head];
    const NetId out = nl.gate(g).out;
    if (out == kNullId || nl.net(out).driver_kind != DriverKind::kGate ||
        nl.net(out).driver != g) {
      continue;  // not the recorded driver; readers never waited on us
    }
    for (std::uint32_t p = rd_begin[out]; p < rd_begin[out + 1]; ++p) {
      const GateId r = rd_pool[p];
      lm.gate_level[r] = std::max(lm.gate_level[r] == kInfCost
                                      ? 0
                                      : lm.gate_level[r],
                                  lm.gate_level[g] + 1);
      if (--pending[r] == 0) lm.topo.push_back(r);
    }
  }
  // Gates never reaching pending==0 sit in (or behind) a combinational
  // cycle; they keep level kInfCost and are excluded from the passes.
  for (GateId g = 0; g < ng; ++g) {
    if (pending[g] != 0) lm.gate_level[g] = kInfCost;
  }
  lm.topo.erase(std::remove_if(lm.topo.begin(), lm.topo.end(),
                               [&](GateId g) { return pending[g] != 0; }),
                lm.topo.end());
  lm.cyclic_gates = ng - lm.topo.size();
  std::stable_sort(lm.topo.begin(), lm.topo.end(), [&](GateId a, GateId b) {
    return lm.gate_level[a] < lm.gate_level[b];
  });
  for (GateId g : lm.topo) lm.max_level = std::max(lm.max_level, lm.gate_level[g]);
  return lm;
}

DataflowFacts analyze_dataflow(const Netlist& nl, const DataflowOptions& opt) {
  DataflowFacts f;
  f.levels = levelize(nl);
  const std::size_t nn = nl.num_nets();
  f.cc0.assign(nn, kInfCost);
  f.cc1.assign(nn, kInfCost);
  f.co.assign(nn, kInfCost);
  f.constant.assign(nn, V3::x());

  // -- sources ---------------------------------------------------------------
  const std::span<const NetId> pis = nl.primary_inputs();
  for (std::size_t i = 0; i < pis.size(); ++i) {
    const NetId n = pis[i];
    if (opt.pi_values.empty()) {
      f.cc0[n] = 1;
      f.cc1[n] = 1;
    } else {
      // Held tester constant: the opposite value is unjustifiable.
      const bool one = opt.pi_values[i] != 0;
      f.cc0[n] = one ? kInfCost : 1;
      f.cc1[n] = one ? 1 : kInfCost;
      f.constant[n] = V3::of(one ? 1 : 0);
    }
  }
  for (FlopId fl = 0; fl < nl.num_flops(); ++fl) {
    const NetId q = nl.flop(fl).q;
    if (q == kNullId) continue;
    f.cc0[q] = 1;  // scan-loadable: either value one shift away
    f.cc1[q] = 1;
  }

  // -- forward pass: controllability + constants -----------------------------
  std::array<V3, kMaxGateInputs> vbuf;
  for (const GateId g : f.levels.topo) {
    const Gate& gr = nl.gate(g);
    const std::span<const NetId> ins = nl.gate_inputs(g);
    if (gr.out == kNullId) continue;
    gate_cc(gr.type, ins, f.cc0, f.cc1, f.cc0[gr.out], f.cc1[gr.out]);
    for (std::size_t i = 0; i < ins.size(); ++i) vbuf[i] = f.constant[ins[i]];
    f.constant[gr.out] =
        eval_v3(gr.type, std::span<const V3>(vbuf.data(), ins.size()));
  }

  // -- backward pass: observability ------------------------------------------
  if (opt.observability) {
    for (NetId n = 0; n < nn; ++n) {
      if (nl.net(n).is_po) f.co[n] = 0;
    }
    for (FlopId fl = 0; fl < nl.num_flops(); ++fl) {
      const NetId d = nl.flop(fl).d;
      if (d != kNullId) f.co[d] = 0;  // captured, then scanned out
    }
    for (auto it = f.levels.topo.rbegin(); it != f.levels.topo.rend(); ++it) {
      const Gate& gr = nl.gate(*it);
      if (gr.out == kNullId || f.co[gr.out] == kInfCost) continue;
      const std::span<const NetId> ins = nl.gate_inputs(*it);
      for (std::size_t i = 0; i < ins.size(); ++i) {
        const std::uint32_t cost = sat_add(
            f.co[gr.out], sensitize_cost(gr.type, ins, i, f.cc0, f.cc1));
        f.co[ins[i]] = sat_min(f.co[ins[i]], cost);
      }
    }
  }

  // -- summary counters ------------------------------------------------------
  std::vector<std::uint8_t> read(nn, 0);
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    for (NetId in : nl.gate_inputs(g)) read[in] = 1;
  }
  for (FlopId fl = 0; fl < nl.num_flops(); ++fl) {
    if (nl.flop(fl).d != kNullId) read[nl.flop(fl).d] = 1;
  }
  for (NetId n = 0; n < nn; ++n) {
    if (f.net_constant(n)) ++f.constant_nets;
    const bool driven = nl.net(n).driver_kind != DriverKind::kNone;
    if (driven && !f.net_constant(n) && !f.controllable(n)) {
      ++f.uncontrollable_nets;
    }
    if (read[n] && !f.net_constant(n) && !f.observable(n)) {
      ++f.unobservable_nets;
    }
  }
  return f;
}

void eval_frame_v3(const Netlist& nl, const LevelMap& levels,
                   std::span<const V3> flop_bits,
                   std::span<const std::uint8_t> pi_values,
                   std::vector<V3>& net_values) {
  net_values.assign(nl.num_nets(), V3::x());
  const std::span<const NetId> pis = nl.primary_inputs();
  for (std::size_t i = 0; i < pis.size() && i < pi_values.size(); ++i) {
    net_values[pis[i]] = V3::of(pi_values[i] != 0);
  }
  for (FlopId f = 0; f < nl.num_flops() && f < flop_bits.size(); ++f) {
    const NetId q = nl.flop(f).q;
    if (q != kNullId) net_values[q] = flop_bits[f];
  }
  std::array<V3, kMaxGateInputs> vbuf;
  for (const GateId g : levels.topo) {
    const Gate& gr = nl.gate(g);
    if (gr.out == kNullId) continue;
    const std::span<const NetId> ins = nl.gate_inputs(g);
    for (std::size_t i = 0; i < ins.size(); ++i) vbuf[i] = net_values[ins[i]];
    net_values[gr.out] =
        eval_v3(gr.type, std::span<const V3>(vbuf.data(), ins.size()));
  }
}

}  // namespace scap::lint
