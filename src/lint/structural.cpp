// Structural netlist rules and scan-chain integrity (lint/lint.h).
//
// All checks run without simulating and without requiring finalize(): the
// pass builds its own reader maps from the raw gate/flop tables, so netlists
// finalize() would reject (loops, undriven or multi-driven nets -- built via
// Netlist::set_permissive) are exactly the ones it can diagnose.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace scap::lint {

namespace {

// Instance naming matches the structural-Verilog writer (netlist/verilog.cpp)
// so diagnostics line up with emitted netlists.
std::string gate_name(const Netlist& nl, GateId g) {
  return "b" + std::to_string(nl.gate(g).block) + "_g" + std::to_string(g);
}
std::string flop_name(const Netlist& nl, FlopId f) {
  return "b" + std::to_string(nl.flop(f).block) + "_f" + std::to_string(f);
}

Location net_loc(const Netlist& nl, NetId n) {
  return Location{"net", n, nl.net_name(n)};
}
Location gate_loc(const Netlist& nl, GateId g) {
  return Location{"gate", g, gate_name(nl, g)};
}
Location flop_loc(const Netlist& nl, FlopId f) {
  return Location{"flop", f, flop_name(nl, f)};
}

/// Reader maps rebuilt from the raw tables (valid pre-finalize, and immune to
/// stale fanout pools after netlist surgery).
struct Readers {
  // Pooled counting sort, same layout as Netlist::finalize() builds.
  std::vector<std::uint32_t> gate_begin;  ///< per net, into gate_pool
  std::vector<GateId> gate_pool;
  std::vector<std::uint32_t> flop_begin;  ///< per net, into flop_pool
  std::vector<FlopId> flop_pool;

  std::span<const GateId> gates(NetId n) const {
    return {gate_pool.data() + gate_begin[n],
            gate_begin[n + 1] - gate_begin[n]};
  }
  std::span<const FlopId> flops(NetId n) const {
    return {flop_pool.data() + flop_begin[n],
            flop_begin[n + 1] - flop_begin[n]};
  }

  static Readers build(const Netlist& nl) {
    Readers r;
    const std::size_t nn = nl.num_nets();
    r.gate_begin.assign(nn + 1, 0);
    for (GateId g = 0; g < nl.num_gates(); ++g) {
      for (NetId in : nl.gate_inputs(g)) ++r.gate_begin[in + 1];
    }
    for (std::size_t n = 0; n < nn; ++n) r.gate_begin[n + 1] += r.gate_begin[n];
    r.gate_pool.resize(r.gate_begin[nn]);
    std::vector<std::uint32_t> cursor(r.gate_begin.begin(),
                                      r.gate_begin.end() - 1);
    for (GateId g = 0; g < nl.num_gates(); ++g) {
      for (NetId in : nl.gate_inputs(g)) r.gate_pool[cursor[in]++] = g;
    }

    r.flop_begin.assign(nn + 1, 0);
    for (FlopId f = 0; f < nl.num_flops(); ++f) {
      ++r.flop_begin[nl.flop(f).d + 1];
    }
    for (std::size_t n = 0; n < nn; ++n) r.flop_begin[n + 1] += r.flop_begin[n];
    r.flop_pool.resize(r.flop_begin[nn]);
    cursor.assign(r.flop_begin.begin(), r.flop_begin.end() - 1);
    for (FlopId f = 0; f < nl.num_flops(); ++f) {
      r.flop_pool[cursor[nl.flop(f).d]++] = f;
    }
    return r;
  }
};

/// One driver of a net, for multi-driven messages.
std::string driver_desc(const Netlist& nl, DriverKind kind, std::uint32_t id) {
  switch (kind) {
    case DriverKind::kInput: return "primary input";
    case DriverKind::kGate: return "gate " + gate_name(nl, id);
    case DriverKind::kFlop: return "flop " + flop_name(nl, id);
    case DriverKind::kNone: break;
  }
  return "?";
}

void check_drivers(const Netlist& nl, const Readers& rd, Diagnostics& diag) {
  // Recount drivers from the raw tables; Net::driver only remembers the
  // first one (permissive construction) or throws earlier (strict).
  std::vector<std::uint32_t> ndrv(nl.num_nets(), 0);
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    if (nl.net(n).driver_kind == DriverKind::kInput) ++ndrv[n];
  }
  for (GateId g = 0; g < nl.num_gates(); ++g) ++ndrv[nl.gate(g).out];
  for (FlopId f = 0; f < nl.num_flops(); ++f) ++ndrv[nl.flop(f).q];

  if (diag.rule_enabled(rule::kNetMultiDriven)) {
    for (NetId n = 0; n < nl.num_nets(); ++n) {
      if (ndrv[n] <= 1) continue;
      std::string msg = "net '" + nl.net_name(n) + "' has " +
                        std::to_string(ndrv[n]) + " drivers:";
      if (nl.net(n).driver_kind == DriverKind::kInput) {
        msg += " primary input,";
      }
      int listed = 0;
      for (GateId g = 0; g < nl.num_gates() && listed < 6; ++g) {
        if (nl.gate(g).out == n) {
          msg += " gate " + gate_name(nl, g) + ",";
          ++listed;
        }
      }
      for (FlopId f = 0; f < nl.num_flops() && listed < 6; ++f) {
        if (nl.flop(f).q == n) {
          msg += " flop " + flop_name(nl, f) + ",";
          ++listed;
        }
      }
      msg.pop_back();
      diag.add(rule::kNetMultiDriven, net_loc(nl, n), std::move(msg));
    }
  }

  // Undriven nets, partitioned by who reads them so each defect yields one
  // rule: gate readers -> floating input, flop readers -> floating D,
  // neither -> plain undriven (a PO or a fully disconnected net).
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    if (ndrv[n] != 0) continue;
    const auto gr = rd.gates(n);
    const auto fr = rd.flops(n);
    if (!gr.empty()) {
      for (GateId g : gr) {
        const auto ins = nl.gate_inputs(g);
        const std::size_t pin =
            static_cast<std::size_t>(std::find(ins.begin(), ins.end(), n) -
                                     ins.begin());
        diag.add(rule::kGateFloatingInput, gate_loc(nl, g),
                 "input " + std::to_string(pin) + " of gate " +
                     gate_name(nl, g) + " is undriven net '" +
                     nl.net_name(n) + "'");
      }
    } else if (!fr.empty()) {
      for (FlopId f : fr) {
        diag.add(rule::kFlopFloatingD, flop_loc(nl, f),
                 "D pin of flop " + flop_name(nl, f) + " is undriven net '" +
                     nl.net_name(n) + "'");
      }
    } else {
      diag.add(rule::kNetUndriven, net_loc(nl, n),
               std::string("net '") + nl.net_name(n) + "' is undriven" +
                   (nl.net(n).is_po ? " but marked as a primary output"
                                    : " and reads nothing"));
    }
  }
}

/// Iterative Tarjan SCC over the gate graph (edges: gate -> readers of its
/// output net). Reports one diagnostic per cycle: every SCC of size > 1, and
/// size-1 SCCs with a self-edge.
void check_comb_loops(const Netlist& nl, const Readers& rd,
                      Diagnostics& diag) {
  if (!diag.rule_enabled(rule::kCombLoop)) return;
  const std::size_t n = nl.num_gates();
  constexpr std::uint32_t kUnvisited = 0xffffffffu;
  std::vector<std::uint32_t> index(n, kUnvisited), low(n, 0);
  std::vector<std::uint8_t> on_stack(n, 0);
  std::vector<GateId> stack;
  std::uint32_t next_index = 0;

  struct Frame {
    GateId gate;
    std::size_t succ = 0;  ///< next successor offset within readers
  };
  std::vector<Frame> frames;

  for (GateId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back(Frame{root});
    while (!frames.empty()) {
      Frame& fr = frames.back();
      const GateId g = fr.gate;
      if (fr.succ == 0) {
        index[g] = low[g] = next_index++;
        stack.push_back(g);
        on_stack[g] = 1;
      }
      const auto succs = rd.gates(nl.gate(g).out);
      if (fr.succ < succs.size()) {
        const GateId s = succs[fr.succ++];
        if (index[s] == kUnvisited) {
          frames.push_back(Frame{s});
        } else if (on_stack[s]) {
          low[g] = std::min(low[g], index[s]);
        }
        continue;
      }
      if (low[g] == index[g]) {
        // Pop the SCC rooted at g.
        std::vector<GateId> scc;
        for (;;) {
          const GateId m = stack.back();
          stack.pop_back();
          on_stack[m] = 0;
          scc.push_back(m);
          if (m == g) break;
        }
        bool self_loop = false;
        if (scc.size() == 1) {
          const auto ins = nl.gate_inputs(scc[0]);
          self_loop = std::find(ins.begin(), ins.end(),
                                nl.gate(scc[0]).out) != ins.end();
        }
        if (scc.size() > 1 || self_loop) {
          std::sort(scc.begin(), scc.end());
          std::string msg = "combinational loop through " +
                            std::to_string(scc.size()) + " gate(s):";
          const std::size_t show = std::min<std::size_t>(scc.size(), 8);
          for (std::size_t i = 0; i < show; ++i) {
            msg += (i ? " -> " : " ") + gate_name(nl, scc[i]);
          }
          if (scc.size() > show) msg += " -> ...";
          diag.add(rule::kCombLoop, gate_loc(nl, scc[0]), std::move(msg));
        }
      }
      frames.pop_back();
      if (!frames.empty()) {
        low[frames.back().gate] =
            std::min(low[frames.back().gate], low[g]);
      }
    }
  }
}

/// Forward reachability from every primary input and flop Q. TIE cells are
/// constants by design and are neither sources nor reported; logic fed only
/// by them is still flagged (it can never launch a transition).
void check_reachability(const Netlist& nl, const Readers& rd,
                        Diagnostics& diag) {
  const bool want_gates = diag.rule_enabled(rule::kGateUnreachable);
  const bool want_flops = diag.rule_enabled(rule::kFlopUnreachable);
  if (!want_gates && !want_flops) return;

  std::vector<std::uint8_t> net_reached(nl.num_nets(), 0);
  std::vector<std::uint8_t> gate_reached(nl.num_gates(), 0);
  std::vector<NetId> queue;
  auto mark = [&](NetId n) {
    if (!net_reached[n]) {
      net_reached[n] = 1;
      queue.push_back(n);
    }
  };
  for (NetId pi : nl.primary_inputs()) mark(pi);
  for (FlopId f = 0; f < nl.num_flops(); ++f) mark(nl.flop(f).q);

  for (std::size_t head = 0; head < queue.size(); ++head) {
    for (GateId g : rd.gates(queue[head])) {
      if (!gate_reached[g]) {
        gate_reached[g] = 1;
        mark(nl.gate(g).out);
      }
    }
  }

  if (want_gates) {
    for (GateId g = 0; g < nl.num_gates(); ++g) {
      if (gate_reached[g] || gate_class(nl.gate(g).type) == GateClass::kTie) {
        continue;
      }
      diag.add(rule::kGateUnreachable, gate_loc(nl, g),
               "gate " + gate_name(nl, g) +
                   " is unreachable from every primary input and flop "
                   "output (constant or disconnected cone)");
    }
  }
  if (want_flops) {
    for (FlopId f = 0; f < nl.num_flops(); ++f) {
      const NetId d = nl.flop(f).d;
      if (net_reached[d]) continue;
      if (nl.net(d).driver_kind == DriverKind::kNone) continue;  // floating-d
      diag.add(rule::kFlopUnreachable, flop_loc(nl, f),
               "flop " + flop_name(nl, f) +
                   " captures from a cone with no primary input or flop "
                   "output (net '" + nl.net_name(d) + "')");
    }
  }
}

void check_dangling(const Netlist& nl, const Readers& rd, Diagnostics& diag) {
  if (!diag.rule_enabled(rule::kNetDangling)) return;
  // Only gate outputs: an unread flop Q is still scan-observable, and an
  // unconnected chip pin (PI) is benign.
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const NetId n = nl.gate(g).out;
    if (nl.net(n).is_po) continue;
    if (!rd.gates(n).empty() || !rd.flops(n).empty()) continue;
    diag.add(rule::kNetDangling, net_loc(nl, n),
             "output '" + nl.net_name(n) + "' of gate " + gate_name(nl, g) +
                 " drives nothing and is not a primary output");
  }
}

/// A gate tagged block b but embedded entirely in another block's cone: all
/// of its tagged fanins (at least two) carry one common block != b, and every
/// reader of its output sits in that block too. Power accounting would then
/// bill the gate's switching to the wrong block.
void check_block_tags(const Netlist& nl, const Readers& rd,
                      Diagnostics& diag) {
  if (!diag.rule_enabled(rule::kBlockTagInconsistent)) return;
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const BlockId mine = nl.gate(g).block;
    std::size_t tagged = 0;
    BlockId cone = 0;
    bool uniform = true;
    for (NetId in : nl.gate_inputs(g)) {
      const Net& nr = nl.net(in);
      BlockId b;
      if (nr.driver_kind == DriverKind::kGate) {
        b = nl.gate(nr.driver).block;
      } else if (nr.driver_kind == DriverKind::kFlop) {
        b = nl.flop(nr.driver).block;
      } else {
        continue;  // PI or undriven: no block
      }
      if (tagged == 0) cone = b;
      uniform = uniform && b == cone;
      ++tagged;
    }
    if (tagged < 2 || !uniform || cone == mine) continue;
    const NetId out = nl.gate(g).out;
    const auto gr = rd.gates(out);
    const auto fr = rd.flops(out);
    if (gr.empty() && fr.empty()) continue;
    bool readers_match = true;
    for (GateId r : gr) readers_match = readers_match && nl.gate(r).block == cone;
    for (FlopId r : fr) readers_match = readers_match && nl.flop(r).block == cone;
    if (!readers_match) continue;
    diag.add(rule::kBlockTagInconsistent, gate_loc(nl, g),
             "gate " + gate_name(nl, g) + " is tagged block " +
                 std::to_string(mine) + " but its whole cone (fanins and "
                 "readers) is block " + std::to_string(cone));
  }
}

/// Clock-domain crossing on launch/capture paths: propagate, per net, the set
/// of domains whose flop outputs reach it combinationally (monotone fixpoint,
/// so loops converge), then flag flops whose D cone carries a foreign domain.
void check_cdc(const Netlist& nl, const Readers& rd, Diagnostics& diag) {
  if (!diag.rule_enabled(rule::kCdcCombPath)) return;
  if (nl.domain_count() > 64) return;  // mask width; no design comes close
  std::vector<std::uint64_t> mask(nl.num_nets(), 0);
  std::vector<NetId> queue;
  std::vector<std::uint8_t> queued(nl.num_nets(), 0);
  auto push = [&](NetId n) {
    if (!queued[n]) {
      queued[n] = 1;
      queue.push_back(n);
    }
  };
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    const NetId q = nl.flop(f).q;
    mask[q] |= 1ull << nl.flop(f).domain;
    push(q);
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NetId n = queue[head];
    queued[n] = 0;
    for (GateId g : rd.gates(n)) {
      const NetId out = nl.gate(g).out;
      const std::uint64_t merged = mask[out] | mask[n];
      if (merged != mask[out]) {
        mask[out] = merged;
        push(out);
      }
    }
  }
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    const Flop& fr = nl.flop(f);
    const std::uint64_t foreign = mask[fr.d] & ~(1ull << fr.domain);
    if (foreign == 0) continue;
    std::string domains;
    for (int d = 0; d < 64; ++d) {
      if (foreign & (1ull << d)) {
        domains += (domains.empty() ? "" : ", ") + std::to_string(d);
      }
    }
    diag.add(rule::kCdcCombPath, flop_loc(nl, f),
             "flop " + flop_name(nl, f) + " (domain " +
                 std::to_string(fr.domain) +
                 ") captures a combinational path from domain(s) " + domains);
  }
}

}  // namespace

void check_structure(const Netlist& nl, Diagnostics& diag) {
  const Readers rd = Readers::build(nl);
  check_drivers(nl, rd, diag);
  check_comb_loops(nl, rd, diag);
  check_reachability(nl, rd, diag);
  check_dangling(nl, rd, diag);
  check_block_tags(nl, rd, diag);
  check_cdc(nl, rd, diag);
}

void check_scan_chains(const Netlist& nl,
                       std::span<const std::vector<FlopId>> chains,
                       Diagnostics& diag) {
  std::vector<std::uint32_t> seen(nl.num_flops(), 0);
  for (std::size_t c = 0; c < chains.size(); ++c) {
    bool saw_pos = false;
    bool edge_reported = false;
    for (std::size_t i = 0; i < chains[c].size(); ++i) {
      const FlopId f = chains[c][i];
      if (f >= nl.num_flops()) {
        diag.add(rule::kScanBadFlop,
                 Location{"chain", static_cast<std::uint32_t>(c),
                          "chain" + std::to_string(c)},
                 "chain " + std::to_string(c) + " position " +
                     std::to_string(i) + " references flop id " +
                     std::to_string(f) + " but the netlist has " +
                     std::to_string(nl.num_flops()) + " flops");
        continue;
      }
      ++seen[f];
      if (nl.flop(f).neg_edge) {
        if (saw_pos && !edge_reported) {
          diag.add(rule::kScanEdgeOrder,
                   Location{"chain", static_cast<std::uint32_t>(c),
                            "chain" + std::to_string(c)},
                   "chain " + std::to_string(c) +
                       " places negative-edge flop b" +
                       std::to_string(nl.flop(f).block) + "_f" +
                       std::to_string(f) + " (position " + std::to_string(i) +
                       ") after positive-edge cells");
          edge_reported = true;  // one report per chain is enough
        }
      } else {
        saw_pos = true;
      }
    }
  }
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    if (seen[f] == 0) {
      diag.add(rule::kScanMissingFlop,
               Location{"flop", f,
                        "b" + std::to_string(nl.flop(f).block) + "_f" +
                            std::to_string(f)},
               "flop b" + std::to_string(nl.flop(f).block) + "_f" +
                   std::to_string(f) + " is on no scan chain");
    } else if (seen[f] > 1) {
      diag.add(rule::kScanDuplicateFlop,
               Location{"flop", f,
                        "b" + std::to_string(nl.flop(f).block) + "_f" +
                            std::to_string(f)},
               "flop b" + std::to_string(nl.flop(f).block) + "_f" +
                   std::to_string(f) + " appears " + std::to_string(seen[f]) +
                   " times across the scan chains");
    }
  }
}

}  // namespace scap::lint
