#include "lint/lint.h"

#include <cstdlib>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/env.h"

namespace scap::lint {

namespace {

void record_metrics(const LintReport& rep) {
  if (!obs::metrics_enabled()) return;
  obs::count("lint.runs");
  obs::count("lint.findings", rep.total());
  obs::count("lint.errors", rep.errors);
  obs::count("lint.warnings", rep.warnings);
  obs::count("lint.infos", rep.infos);
  obs::count("lint.suppressed", rep.suppressed);
  for (const auto& [id, n] : rep.rule_counts) {
    obs::count("lint.rule." + id, n);
  }
}

}  // namespace

LintReport run(const LintInput& in, const LintConfig& cfg) {
  SCAP_TRACE_SCOPE("lint.run");
  if (in.netlist == nullptr) {
    throw std::invalid_argument("lint::run: input has no netlist");
  }
  Diagnostics diag(cfg);
  check_structure(*in.netlist, diag);
  if (!in.scan_chains.empty()) {
    check_scan_chains(*in.netlist, in.scan_chains, diag);
  }
  check_patterns(in, diag);
  check_dataflow(in, diag);
  LintReport rep = std::move(diag).finish();
  record_metrics(rep);
  return rep;
}

LintReport run(const Netlist& nl, const LintConfig& cfg) {
  LintInput in;
  in.netlist = &nl;
  return run(in, cfg);
}

bool lint_enabled() {
  // Read-only env probe; callers are single-threaded verify/CLI paths.
  if (const char* e = util::env_cstr("SCAP_LINT")) {
    return !(e[0] == '0' && e[1] == '\0');
  }
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

void debug_verify(const Netlist& nl, const char* where) {
  if (!lint_enabled()) return;
  LintConfig cfg;
  cfg.max_per_rule = 4;  // the throw names only the first error anyway
  const LintReport rep = run(nl, cfg);
  if (!rep.has_errors()) return;
  std::string msg = std::string("lint: ") + where + ": " +
                    std::to_string(rep.errors) + " error(s)";
  for (const Diagnostic& d : rep.diagnostics) {
    if (d.severity == Severity::kError) {
      msg += "; first: [" + d.rule + "] " + d.message;
      break;
    }
  }
  throw std::runtime_error(msg);
}

namespace {

// Netlist::finalize() verifies through this hook whenever the lint library
// is linked in (the hook keeps scap_netlist free of an upward dependency).
// lint.cpp is pulled into every binary that references lint::run or
// lint::debug_verify -- which includes everything linking scap_core.
[[maybe_unused]] const bool kVerifyHookInstalled = [] {
  set_netlist_verify_hook(
      [](const Netlist& nl) { debug_verify(nl, "Netlist::finalize"); });
  return true;
}();

}  // namespace

}  // namespace scap::lint
