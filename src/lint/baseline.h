// Finding baselines: suppress known, accepted lint findings.
//
// A baseline file records one fingerprint per line -- "rule|kind|name",
// derived from a diagnostic's rule id and location -- plus '#' comments and
// blank lines. `scap_lint --baseline known.txt` drops every finding whose
// fingerprint appears in the file (they still count in `suppressed`), so CI
// exits 0 on a design whose pre-existing findings were triaged and accepted
// while any *new* finding still fails the run. `--write-baseline` emits the
// current findings in baseline format to bootstrap the file.
//
// Fingerprints deliberately exclude the message text (which embeds values and
// counts that churn) and the numeric id (which shifts when the design is
// regenerated); rule + location kind + stable name is the identity that
// survives rebuilds.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "lint/diagnostics.h"

namespace scap::lint {

/// "rule|kind|name" -- the suppression identity of a finding.
std::string fingerprint(const Diagnostic& d);

class Baseline {
 public:
  Baseline() = default;

  /// Parse baseline text: one fingerprint per line; '#'-to-end-of-line
  /// comments and surrounding whitespace are ignored. Unparseable lines
  /// (fewer than two '|' separators) are collected in `rejects`.
  static Baseline parse(std::string_view text,
                        std::vector<std::string>* rejects = nullptr);

  void insert(std::string fp);
  bool contains(std::string_view fp) const;
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Baseline-format text: a header comment plus the sorted fingerprints.
  std::string serialize() const;

 private:
  std::vector<std::string> entries_;  ///< sorted, unique
};

/// Build a baseline covering every diagnostic in `rep`.
Baseline baseline_from(const LintReport& rep);

/// Remove the diagnostics whose fingerprint `base` contains, keeping the
/// report's per-rule and per-severity totals consistent (each suppressed
/// finding moves its count into `suppressed`). Returns how many were
/// suppressed. Capped findings (dropped by max_per_rule before the baseline
/// sees them) cannot be matched -- run with max_per_rule = 0 when baselining.
std::size_t apply_baseline(LintReport& rep, const Baseline& base);

}  // namespace scap::lint
