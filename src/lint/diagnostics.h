// Diagnostics engine for the static-analysis subsystem (lint/lint.h).
//
// A lint pass reports findings through a Diagnostics collector, which applies
// the run configuration (disabled rules, severity overrides, a per-rule
// retention cap so a single systemic defect cannot flood the output) and
// produces a LintReport: the retained diagnostics plus *exact* per-rule and
// per-severity totals, including findings the cap dropped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace scap::lint {

enum class Severity : std::uint8_t { kInfo, kWarning, kError };

const char* severity_name(Severity s);

/// What a diagnostic points at: a netlist object (net/gate/flop), a scan
/// chain, a pattern index, or the test context itself. `name` uses net names
/// for nets and the Verilog writer's instance naming ("b<block>_g<id>",
/// "b<block>_f<id>") for gates and flops, so findings line up with emitted
/// netlists.
struct Location {
  std::string kind;
  std::uint32_t id = 0;
  std::string name;
};

struct Diagnostic {
  std::string rule;
  Severity severity = Severity::kWarning;
  Location loc;
  std::string message;
  std::string fix_hint;
};

struct LintConfig {
  /// Diagnostics retained per rule; exact totals survive in rule_counts.
  /// 0 = unlimited.
  std::size_t max_per_rule = 25;
  /// Rule ids to skip entirely (not run, not counted).
  std::vector<std::string> disabled;
  /// Per-rule severity overrides (rule id -> severity).
  std::vector<std::pair<std::string, Severity>> severity_overrides;
};

struct LintReport {
  std::vector<Diagnostic> diagnostics;
  /// Exact finding count per fired rule (insertion order).
  std::vector<std::pair<std::string, std::size_t>> rule_counts;
  std::size_t errors = 0;    ///< exact, including capped findings
  std::size_t warnings = 0;
  std::size_t infos = 0;
  std::size_t suppressed = 0;  ///< findings dropped by max_per_rule

  bool has_errors() const { return errors > 0; }
  std::size_t total() const { return errors + warnings + infos; }
  std::size_t count(std::string_view rule) const;
};

class Diagnostics {
 public:
  explicit Diagnostics(const LintConfig& cfg) : cfg_(&cfg) {}

  /// False when the config disables the rule -- checks use this to skip
  /// whole analyses (e.g. the CDC fixpoint) instead of discarding findings.
  bool rule_enabled(std::string_view rule) const;

  /// Record a finding. Severity and fix hint come from the rule registry
  /// (lint/rules.h), subject to the config's overrides; unknown rule ids are
  /// a programming error and throw.
  void add(std::string_view rule, Location loc, std::string message);

  LintReport finish() &&;

 private:
  const LintConfig* cfg_;
  LintReport report_;
};

}  // namespace scap::lint
