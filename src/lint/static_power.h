// Static per-block SCAP upper bound -- the tier-1 screening proxy.
//
// Maps a test pattern's care bits + fill directly to a *sound* upper bound
// on the per-block switching-cycle average power the event simulator would
// report, without running EventSim. The bound rests on the event-driven
// semantics of sim/event_sim.cpp:
//
//   Toggle-count bound. A committed toggle on a net is a value change; each
//   committed toggle on an input net triggers exactly one evaluation per
//   connected fanout pin, and each evaluation schedules at most one output
//   event (schedule cancels any pending event at >= t first). Hence the
//   committed-toggle count obeys T(out) <= sum over input *pins* of T(in).
//   Launched flop Q nets toggle exactly once (build_launch only emits
//   stimuli whose value differs from frame 1); PI nets never toggle.
//   Refinements, each individually sound:
//     - controlling-stable pruning: an input pin proven toggle-free whose
//       settled value is the gate's controlling value pins the output, so
//       T(out) = 0;
//     - mux select-stable pruning: with a stable known select, the output's
//       committed-value sequence is a subsequence of the selected data
//       input's, so T(out) <= T(selected);
//     - parity rounding: the committed-toggle count's parity equals
//       (frame1 != frame2) when both endpoint values are known, so a
//       mismatching bound loses one count.
//
//   Rail split. Toggles on a net alternate direction starting opposite its
//   initial value, so rising <= ceil/floor(T/2) by the frame-1 value (both
//   rails get ceil(T/2) when it is X). Rising energy bounds the VDD rail,
//   falling the VSS rail, with the exact calculator's per-toggle energy
//   E = C_net * VDD^2 and driver-block attribution (sim/scap.cpp).
//
//   STW lower bound. The switching time window is last - first committed
//   toggle. Certain launches (S1 and S2 both known and different) commit at
//   exactly their clock arrival, so first <= min certain arrival and
//   last >= max certain arrival. A net whose frame-1 and frame-2 settled
//   values are both known and differ is guaranteed a final commit at or
//   after its min-delay forward arrival from the possibly-launching flop
//   set (droop only scales delays up from nominal, so nominal min delays
//   stay valid lower bounds). With no certain launch the window cannot be
//   bounded away from zero and the SCAP bound degrades to +infinity --
//   "cannot be proven clean", never "clean".
//
// Dividing the per-block energy upper bound by the STW lower bound gives a
// per-block SCAP that is >= the exact report's on every pattern; a pattern
// whose bound clears the block threshold therefore provably needs no event
// simulation (the two-tier cascade in core/validation.h). Calibration
// against exact SCAP over the seed corpus (tests/dataflow_test.cpp) pins
// the bound's looseness: total switching energy within kStaticEnergySlack
// of exact on fully-specified patterns, asserted per scenario.
//
// The model takes plain per-net / per-flop / per-gate spans so scap_lint
// keeps its no-sim-link layering; PatternAnalyzer assembles them from the
// SOC's parasitics, clock tree and delay model (core/pattern_sim.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "atpg/context.h"
#include "atpg/pattern.h"
#include "lint/dataflow.h"
#include "netlist/netlist.h"

namespace scap::lint {

/// Empirical calibration slack of the static energy bound vs exact SCAP on
/// fully-specified patterns of the seed corpus: bound <= slack * exact
/// (per scenario total; per-pattern with a small absolute floor). The bound
/// is loose exactly where reconvergent fanout lets scheduled glitches
/// cancel; the corpus-driven test (tests/dataflow_test.cpp) measures
/// per-scenario ratios of 1.5-2.9 on the seed corpus and asserts they stay
/// under this 2x-headroom ceiling.
inline constexpr double kStaticEnergySlack = 6.0;

struct StaticScapBound {
  double stw_lb_ns = 0.0;      ///< lower bound on the switching window
  double toggle_bound = 0.0;   ///< upper bound on total committed toggles
  std::size_t certain_launches = 0;   ///< flops guaranteed to launch
  std::size_t possible_launches = 0;  ///< flops that may launch (X-dependent)

  std::vector<double> vdd_energy_pj;  ///< per block, upper bound
  std::vector<double> vss_energy_pj;  ///< per block, upper bound
  double vdd_energy_total_pj = 0.0;
  double vss_energy_total_pj = 0.0;

  /// Both-rail block SCAP bound [mW]; +infinity when switching energy
  /// exists but the window could not be bounded away from zero.
  double block_scap_mw(std::size_t block) const;
  double total_scap_mw() const;
  double total_energy_pj() const {
    return vdd_energy_total_pj + vss_energy_total_pj;
  }

  /// True when every block's bound clears its threshold: the pattern
  /// provably cannot violate, no event simulation needed (soundness).
  bool certainly_clean(std::span<const double> block_thresholds_mw) const;
};

class StaticScapModel {
 public:
  /// `net_energy_pj`: per-net single-toggle switching energy (C * VDD^2,
  /// exactly the ScapCalculator's); `flop_arrival_ns`: per-flop nominal
  /// launch-clock arrival; `gate_min_delay_ns`: per-gate min(rise, fall)
  /// nominal delay. The netlist must be finalized (cycle-free).
  /// Throws std::invalid_argument on size mismatches or an unfinalized
  /// netlist.
  StaticScapModel(const Netlist& nl, std::span<const double> net_energy_pj,
                  std::span<const double> flop_arrival_ns,
                  std::span<const double> gate_min_delay_ns);

  /// Screen one pattern (bits may be 0/1/kBitX; X bits model unfilled scan
  /// cells). The returned reference stays valid until the next screen call;
  /// a single model instance must not be shared across threads.
  const StaticScapBound& screen(const TestContext& ctx,
                                const Pattern& pattern) const;

  /// Screen a pre-fill ATPG cube under a fill policy: kFill0/kFill1 resolve
  /// the don't-cares, anything else leaves them X (which is conservative
  /// for every fill, since X widens the bound monotonically).
  const StaticScapBound& screen_cube(const TestContext& ctx,
                                     const TestCube& cube,
                                     FillMode fill) const;

  /// Core entry: `vars` holds one 0/1/kBitX value per test variable
  /// (ctx.num_vars()).
  const StaticScapBound& screen_vars(const TestContext& ctx,
                                     std::span<const std::uint8_t> vars) const;

  const StaticScapBound& bound() const { return bound_; }
  const LevelMap& levels() const { return levels_; }

 private:
  const Netlist* nl_;
  LevelMap levels_;
  std::vector<double> net_energy_pj_;
  std::vector<double> flop_arrival_ns_;
  std::vector<double> gate_min_delay_ns_;
  std::vector<BlockId> net_block_;  ///< driver block (matches ScapCalculator)

  // Flat topo-ordered gate tables, built once in the ctor so the two
  // per-pattern sweeps stream through cache-linear arrays instead of
  // chasing Gate records and fanin pools. Net ids inside these tables
  // (g_out_, g_in_, f_q_, f_d_, pi_net_) are internal compact ids assigned
  // in sweep-write order -- flop Qs, PIs, other undriven nets, then gate
  // outputs in schedule order -- so fanin loads in the scratch arrays below
  // stay close to recently written lines. They never leak out of the model;
  // everything external (net_block_, net_energy_pj_) keeps netlist ids.
  std::vector<CellType> g_type_;
  std::vector<std::uint8_t> g_nin_;
  std::vector<std::int8_t> g_cv_;        ///< controlling value; -1 = none
  std::vector<NetId> g_out_;
  std::vector<std::uint32_t> g_in_off_;  ///< per gate, offset into g_in_
  std::vector<NetId> g_in_;              ///< concatenated input nets
  std::vector<double> g_delay_;          ///< min delay, topo order
  std::vector<double> g_energy_;         ///< output-net toggle energy [pJ]
  std::vector<BlockId> g_block_;         ///< output-net driver block
  std::vector<NetId> f_q_;               ///< per flop, Q net
  std::vector<NetId> f_d_;               ///< per flop, D net
  std::vector<NetId> pi_net_;            ///< per PI, net in ctx order
  std::vector<double> f_energy_;         ///< Q-net toggle energy [pJ]
  std::vector<BlockId> f_block_;         ///< Q-net driver block

  // Reusable per-screen scratch.
  mutable std::vector<V3> value1_;      ///< frame-1 settled values
  mutable std::vector<V3> value2_;      ///< frame-2 settled values
  /// Per net, interleaved {committed-toggle bound, min-delay arrival} so the
  /// forward pass's paired loads share a cache line.
  mutable std::vector<double> ta_;
  mutable std::vector<std::uint8_t> fill_bits_;
  mutable StaticScapBound bound_;
};

}  // namespace scap::lint
