#include "lint/static_power.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace scap::lint {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Cap on the per-net toggle bound: sums over pins can grow geometrically
/// with depth; past this the count no longer fits exactly in a double and
/// parity rounding is skipped (the cap itself stays a valid upper bound
/// for the energy math, which saturates long before mattering).
constexpr double kToggleCap = 1e15;

/// Branch-free double select: the predicates in the screen's forward pass
/// (endpoint parity, rail split, STW commit) are close to uniformly random
/// per gate, so a conditional move beats a ~50% mispredicting branch. The
/// mask form compiles to and/or on the FP registers.
inline double select_d(bool c, double if_true, double if_false) {
  const std::uint64_t m = -static_cast<std::uint64_t>(c);
  const std::uint64_t bits = (std::bit_cast<std::uint64_t>(if_true) & m) |
                             (std::bit_cast<std::uint64_t>(if_false) & ~m);
  return std::bit_cast<double>(bits);
}

V3 v3_of_bit(std::uint8_t b) {
  return b == kBitX ? V3::x() : V3::of(b != 0);
}

// Inline 3-valued ops, bit-identical to cell_type.cpp's eval_v3 (possible-
// value-set semantics on the 2-bit encoding). Local copies because the
// screen's two full-netlist sweeps per pattern cannot afford an out-of-line
// call per gate.
constexpr V3 f_and(V3 a, V3 b) {
  return V3{static_cast<std::uint8_t>(((a.bits & b.bits) & 0b10) |
                                      ((a.bits | b.bits) & 0b01))};
}
constexpr V3 f_or(V3 a, V3 b) { return v3_not(f_and(v3_not(a), v3_not(b))); }
constexpr V3 f_xor(V3 a, V3 b) {
  if (a.is_x() || b.is_x()) return V3::x();
  return V3::of(a.value() ^ b.value());
}
constexpr V3 f_mux(V3 s, V3 a, V3 b) {
  if (s.is0()) return a;
  if (s.is1()) return b;
  if (!a.is_x() && !b.is_x() && a == b) return a;
  return V3::x();
}

/// eval_v3 with the per-gate dispatch inlined into the sweep. `ins` indexes
/// into `v` (the flat topo-ordered input-net list of StaticScapModel).
inline V3 eval_fast(CellType t, const NetId* ins, const V3* v) {
  switch (t) {
    case CellType::kTie0:
      return V3::zero();
    case CellType::kTie1:
      return V3::one();
    case CellType::kBuf:
    case CellType::kClkBuf:
    case CellType::kDff:
      return v[ins[0]];
    case CellType::kInv:
      return v3_not(v[ins[0]]);
    case CellType::kAnd2:
      return f_and(v[ins[0]], v[ins[1]]);
    case CellType::kAnd3:
      return f_and(f_and(v[ins[0]], v[ins[1]]), v[ins[2]]);
    case CellType::kAnd4:
      return f_and(f_and(v[ins[0]], v[ins[1]]), f_and(v[ins[2]], v[ins[3]]));
    case CellType::kNand2:
      return v3_not(f_and(v[ins[0]], v[ins[1]]));
    case CellType::kNand3:
      return v3_not(f_and(f_and(v[ins[0]], v[ins[1]]), v[ins[2]]));
    case CellType::kNand4:
      return v3_not(
          f_and(f_and(v[ins[0]], v[ins[1]]), f_and(v[ins[2]], v[ins[3]])));
    case CellType::kOr2:
      return f_or(v[ins[0]], v[ins[1]]);
    case CellType::kOr3:
      return f_or(f_or(v[ins[0]], v[ins[1]]), v[ins[2]]);
    case CellType::kOr4:
      return f_or(f_or(v[ins[0]], v[ins[1]]), f_or(v[ins[2]], v[ins[3]]));
    case CellType::kNor2:
      return v3_not(f_or(v[ins[0]], v[ins[1]]));
    case CellType::kNor3:
      return v3_not(f_or(f_or(v[ins[0]], v[ins[1]]), v[ins[2]]));
    case CellType::kNor4:
      return v3_not(
          f_or(f_or(v[ins[0]], v[ins[1]]), f_or(v[ins[2]], v[ins[3]])));
    case CellType::kXor2:
      return f_xor(v[ins[0]], v[ins[1]]);
    case CellType::kXnor2:
      return v3_not(f_xor(v[ins[0]], v[ins[1]]));
    case CellType::kMux2:
      return f_mux(v[ins[0]], v[ins[1]], v[ins[2]]);
  }
  return V3::zero();
}

}  // namespace

double StaticScapBound::block_scap_mw(std::size_t block) const {
  const double e = vdd_energy_pj.at(block) + vss_energy_pj.at(block);
  if (e <= 0.0) return 0.0;
  if (stw_lb_ns <= 0.0) return kInf;
  return e / stw_lb_ns;
}

double StaticScapBound::total_scap_mw() const {
  const double e = total_energy_pj();
  if (e <= 0.0) return 0.0;
  if (stw_lb_ns <= 0.0) return kInf;
  return e / stw_lb_ns;
}

bool StaticScapBound::certainly_clean(
    std::span<const double> block_thresholds_mw) const {
  const std::size_t nb =
      std::min(block_thresholds_mw.size(), vdd_energy_pj.size());
  for (std::size_t b = 0; b < nb; ++b) {
    if (block_scap_mw(b) > block_thresholds_mw[b]) return false;
  }
  return true;
}

StaticScapModel::StaticScapModel(const Netlist& nl,
                                 std::span<const double> net_energy_pj,
                                 std::span<const double> flop_arrival_ns,
                                 std::span<const double> gate_min_delay_ns)
    : nl_(&nl),
      net_energy_pj_(net_energy_pj.begin(), net_energy_pj.end()),
      flop_arrival_ns_(flop_arrival_ns.begin(), flop_arrival_ns.end()),
      gate_min_delay_ns_(gate_min_delay_ns.begin(), gate_min_delay_ns.end()) {
  if (!nl.finalized()) {
    throw std::invalid_argument(
        "StaticScapModel: netlist must be finalized (cycle-free)");
  }
  if (net_energy_pj_.size() != nl.num_nets() ||
      flop_arrival_ns_.size() != nl.num_flops() ||
      gate_min_delay_ns_.size() != nl.num_gates()) {
    throw std::invalid_argument("StaticScapModel: span size mismatch");
  }
  levels_ = levelize(nl);
  // Flatten the topo schedule once: the screen sweeps are the hot loop of
  // the whole two-tier cascade. Gates within a level are independent, so a
  // stable (level, cell type) sort keeps the schedule valid while making the
  // evaluator's type dispatch almost perfectly predicted.
  std::vector<GateId> order(levels_.topo.begin(), levels_.topo.end());
  std::stable_sort(order.begin(), order.end(),
                   [&](GateId a, GateId b) {
                     const std::uint32_t la = levels_.gate_level[a];
                     const std::uint32_t lb = levels_.gate_level[b];
                     if (la != lb) return la < lb;
                     return nl.gate(a).type < nl.gate(b).type;
                   });
  // Compact net renumbering in sweep-write order: flop Q nets first (launch
  // loop order), then PIs, then other undriven nets, then gate outputs in
  // schedule order. The value/toggle scratch arrays are indexed by these
  // internal ids only, so a gate's fanin loads land on lines written a few
  // levels ago instead of scattering across the whole net table.
  constexpr NetId kUnassigned = ~NetId{0};
  std::vector<NetId> remap(nl.num_nets(), kUnassigned);
  NetId next = 0;
  for (FlopId f = 0; f < nl.num_flops(); ++f) remap[nl.flop(f).q] = next++;
  for (const NetId pi : nl.primary_inputs()) {
    if (remap[pi] == kUnassigned) remap[pi] = next++;
    pi_net_.push_back(remap[pi]);
  }
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    if (remap[n] == kUnassigned && nl.net(n).driver_kind != DriverKind::kGate) {
      remap[n] = next++;
    }
  }
  for (const GateId g : order) remap[nl.gate(g).out] = next++;

  const std::size_t ng = order.size();
  g_type_.reserve(ng);
  g_nin_.reserve(ng);
  g_cv_.reserve(ng);
  g_out_.reserve(ng);
  g_in_off_.reserve(ng + 1);
  g_delay_.reserve(ng);
  // Per-net block attribution, identical to ScapCalculator's (sim/scap.cpp):
  // the driver's block; 0 for PI / undriven nets (which never toggle).
  // Indexed by the netlist's own net ids (the external convention).
  net_block_.assign(nl.num_nets(), 0);
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const Net& nr = nl.net(n);
    switch (nr.driver_kind) {
      case DriverKind::kGate:
        net_block_[n] = nl.gate(nr.driver).block;
        break;
      case DriverKind::kFlop:
        net_block_[n] = nl.flop(nr.driver).block;
        break;
      default:
        break;
    }
  }
  // Energy and block ride per gate / per flop in sweep order, so the hot
  // loops take streaming loads instead of indexing per-net tables.
  g_in_off_.push_back(0);
  g_energy_.reserve(ng);
  g_block_.reserve(ng);
  for (const GateId g : order) {
    const Gate& gr = nl.gate(g);
    const std::span<const NetId> ins = nl.gate_inputs(g);
    g_type_.push_back(gr.type);
    g_nin_.push_back(static_cast<std::uint8_t>(ins.size()));
    g_cv_.push_back(static_cast<std::int8_t>(controlling_value(gr.type)));
    g_out_.push_back(remap[gr.out]);
    for (const NetId in : ins) g_in_.push_back(remap[in]);
    g_in_off_.push_back(static_cast<std::uint32_t>(g_in_.size()));
    g_delay_.push_back(gate_min_delay_ns_[g]);
    g_energy_.push_back(net_energy_pj_[gr.out]);
    g_block_.push_back(net_block_[gr.out]);
  }
  const std::size_t nf = nl.num_flops();
  f_q_.reserve(nf);
  f_d_.reserve(nf);
  f_energy_.reserve(nf);
  f_block_.reserve(nf);
  for (FlopId f = 0; f < nf; ++f) {
    const NetId q = nl.flop(f).q;
    f_q_.push_back(remap[q]);
    f_d_.push_back(remap[nl.flop(f).d]);
    f_energy_.push_back(net_energy_pj_[q]);
    f_block_.push_back(net_block_[q]);
  }
}

const StaticScapBound& StaticScapModel::screen(const TestContext& ctx,
                                               const Pattern& pattern) const {
  return screen_vars(ctx, pattern.s1);
}

const StaticScapBound& StaticScapModel::screen_cube(const TestContext& ctx,
                                                    const TestCube& cube,
                                                    FillMode fill) const {
  if (fill == FillMode::kFill0 || fill == FillMode::kFill1) {
    const std::uint8_t v = fill == FillMode::kFill1 ? 1 : 0;
    fill_bits_.assign(cube.s1.begin(), cube.s1.end());
    for (auto& b : fill_bits_) {
      if (b == kBitX) b = v;
    }
    return screen_vars(ctx, fill_bits_);
  }
  return screen_vars(ctx, cube.s1);  // X stays X: conservative for any fill
}

const StaticScapBound& StaticScapModel::screen_vars(
    const TestContext& ctx, std::span<const std::uint8_t> vars) const {
  const Netlist& nl = *nl_;
  const std::size_t nn = nl.num_nets();
  const std::size_t nf = nl.num_flops();
  if (vars.size() < ctx.num_vars()) {
    throw std::invalid_argument("StaticScapModel: vars shorter than num_vars");
  }

  // -- frame 1: 3-valued settle of the scanned state ------------------------
  value1_.assign(nn, V3::x());
  for (std::size_t i = 0; i < pi_net_.size() && i < ctx.pi_values.size(); ++i) {
    value1_[pi_net_[i]] = V3::of(ctx.pi_values[i] != 0);
  }
  for (FlopId f = 0; f < nf; ++f) {
    value1_[f_q_[f]] = v3_of_bit(vars[f]);
  }
  const std::size_t ng = g_type_.size();
  for (std::size_t i = 0; i < ng; ++i) {
    value1_[g_out_[i]] =
        eval_fast(g_type_[i], g_in_.data() + g_in_off_[i], value1_.data());
  }

  // -- launch set (mirrors PatternAnalyzer::build_launch) -------------------
  value2_.assign(value1_.begin(), value1_.end());
  // ta_ is initialized once, not per screen: every flop Q entry is written
  // by the launch loop below and every gate output entry by the forward
  // pass (including its skip paths), while PI / undriven nets keep their
  // {0, +inf} from this first fill forever (they are never written and
  // never toggle).
  if (ta_.size() != 2 * nn) {
    ta_.assign(2 * nn, 0.0);
    for (std::size_t n = 0; n < nn; ++n) ta_[2 * n + 1] = kInf;
  }
  double* ta = ta_.data();
  StaticScapBound& out = bound_;
  out.certain_launches = 0;
  out.possible_launches = 0;
  out.vdd_energy_pj.assign(nl.block_count(), 0.0);
  out.vss_energy_pj.assign(nl.block_count(), 0.0);
  out.vdd_energy_total_pj = 0.0;
  out.vss_energy_total_pj = 0.0;
  out.toggle_bound = 0.0;
  double first_ub = kInf;   // upper bound on the first committed toggle
  double last_lb = -kInf;   // lower bound on the last committed toggle
  const bool explicit_s2 = ctx.explicit_s2();
  for (FlopId f = 0; f < nf; ++f) {
    const NetId q = f_q_[f];
    const V3 s1 = v3_of_bit(vars[f]);
    V3 s2;
    if (explicit_s2) {
      s2 = v3_of_bit(vars[ctx.los_pred[f]]);
    } else if (ctx.active[f]) {
      s2 = value1_[f_d_[f]];
    } else {
      ta[2 * q] = 0.0;
      ta[2 * q + 1] = kInf;
      continue;
    }
    value2_[q] = s2;  // the post-launch Q value, launched or not
    const bool known = !s1.is_x() && !s2.is_x();
    if (known && s1 == s2) {
      ta[2 * q] = 0.0;
      ta[2 * q + 1] = kInf;
      continue;
    }
    const double arr = flop_arrival_ns_[f];
    if (known) {
      ++out.certain_launches;
      first_ub = std::min(first_ub, arr);
      last_lb = std::max(last_lb, arr);
    }
    ++out.possible_launches;
    ta[2 * q] = 1.0;
    ta[2 * q + 1] = arr;
    // The single launch toggle's rail: rising when s1 is 0, falling when 1,
    // either when X.
    const double e = f_energy_[f];
    const BlockId b = f_block_[f];
    out.toggle_bound += 1.0;
    if (s1.is_x()) {
      out.vdd_energy_pj[b] += e;
      out.vdd_energy_total_pj += e;
      out.vss_energy_pj[b] += e;
      out.vss_energy_total_pj += e;
    } else if (s1.is0()) {
      out.vdd_energy_pj[b] += e;
      out.vdd_energy_total_pj += e;
    } else {
      out.vss_energy_pj[b] += e;
      out.vss_energy_total_pj += e;
    }
  }

  // -- forward pass: frame-2 values, toggle bounds, min-delay arrivals ------
  // A gate with no toggling input is skipped outright: its inputs' frame-2
  // values equal frame 1 (t = 0 implies value2 == value1, inductively from
  // the launch set), so its output cannot change (value2_ already holds
  // value1_), its toggle bound is 0 (already assigned), and no transition
  // can traverse it -- which also means arrival relaxation only needs to
  // consider inputs that can actually toggle.
  // Each gate's output net is final the moment the gate is processed (one
  // driver per net), so the per-block rail energies and the STW extension
  // accumulate right here instead of in a second whole-netlist sweep.
  const bool bound_stw = out.certain_launches > 0;
  double* vdd = out.vdd_energy_pj.data();
  double* vss = out.vss_energy_pj.data();
  // Local accumulators: totals written through `out` would otherwise be
  // assumed to alias the vdd/vss stores and bounce through memory per gate.
  double tb_acc = out.toggle_bound;
  double vdd_acc = out.vdd_energy_total_pj;
  double vss_acc = out.vss_energy_total_pj;
  const V3* val1 = value1_.data();
  V3* val2 = value2_.data();
  const NetId* gin = g_in_.data();
  for (std::size_t i = 0; i < ng; ++i) {
    const NetId* ins = gin + g_in_off_[i];
    const std::size_t nin = g_nin_[i];
    // One scan over the inputs: toggle-sum, controlling-stable check, and
    // arrival relaxation, all from the same loads (toggle and arrival share
    // a cache line by construction). Every write path keeps the invariant
    // "toggle bound 0 => stored arrival kInf", so relaxing over raw arrivals
    // is already restricted to toggling inputs -- no per-input select.
    const int cv = g_cv_[i];
    const NetId gout = g_out_[i];
    double tin = 0.0;
    unsigned pinned = 0;
    double a = kInf;
    // Stable controlling input: quiet, known (not 0b11), value bit == cv.
    // Only gates with a controlling value pay for the check; the variant
    // branch follows the (level, type)-sorted schedule and predicts.
    const auto scan_in = [&](NetId in) {
      const double tk = ta[2 * in];
      tin += tk;
      a = std::min(a, ta[2 * in + 1]);
      const unsigned vb = val1[in].bits;
      pinned |= static_cast<unsigned>(tk == 0.0) &
                static_cast<unsigned>(vb != 0b11U) &
                static_cast<unsigned>(static_cast<int>(vb >> 1U) == cv);
    };
    const auto scan_in_nocv = [&](NetId in) {
      tin += ta[2 * in];
      a = std::min(a, ta[2 * in + 1]);
    };
    // Specialized by arity: one- and two-input cells dominate every library
    // netlist, and the fixed-count bodies let the loads of both input pairs
    // issue in parallel instead of through loop control.
    if (cv >= 0) {
      if (nin == 2) {
        scan_in(ins[0]);
        scan_in(ins[1]);
      } else {
        for (std::size_t k = 0; k < nin; ++k) scan_in(ins[k]);
      }
    } else if (nin == 2) {
      scan_in_nocv(ins[0]);
      scan_in_nocv(ins[1]);
    } else if (nin == 1) {
      scan_in_nocv(ins[0]);
    } else {
      for (std::size_t k = 0; k < nin; ++k) scan_in_nocv(ins[k]);
    }
    // Quiet cone or a stable controlling input: the output cannot change
    // (value2_ already holds value1_) and its toggle bound stays 0.
    if (tin == 0.0 || pinned != 0) {
      ta[2 * gout] = 0.0;
      ta[2 * gout + 1] = kInf;
      continue;
    }

    const CellType type = g_type_[i];
    const V3 v2 = eval_fast(type, ins, val2);
    val2[gout] = v2;

    double t;
    if (type == CellType::kMux2 && ta[2 * ins[0]] == 0.0 &&
        !val1[ins[0]].is_x()) {
      t = ta[2 * ins[val1[ins[0]].value() ? 2 : 1]];
    } else {
      t = std::min(tin, kToggleCap);
    }
    const V3 v1 = val1[gout];
    const bool endpoints_known = !v1.is_x() && !v2.is_x();
    const bool differs = v1.bits != v2.bits;
    {
      // Commit-count parity must match whether the endpoints differ. Below
      // the cap the bound is an exact integer, so parity is a bit test; the
      // int->double conversion keeps the adjustment branch-free.
      const bool odd = (static_cast<std::uint64_t>(t) & 1U) != 0;
      const unsigned dec = static_cast<unsigned>(t >= 1.0) &
                           static_cast<unsigned>(t < kToggleCap) &
                           static_cast<unsigned>(endpoints_known) &
                           static_cast<unsigned>(odd == !differs);
      t -= static_cast<double>(dec);
    }
    ta[2 * gout] = t;
    // a == +inf propagates to arr == +inf; a parity-killed t masks the
    // arrival (the net provably does not toggle). The entry must be written
    // either way -- it may hold a stale value from the previous screen.
    const double arr = t > 0.0 ? a + g_delay_[i] : kInf;
    ta[2 * gout + 1] = arr;
    if (t <= 0.0) continue;

    tb_acc += t;
    const double e = g_energy_[i];
    const BlockId b = g_block_[i];
    double rise;
    double fall;
    if (t < kToggleCap) {
      // Exact-integer bound: split by parity without ceil/floor. Toggles
      // alternate starting opposite the initial value; an X start charges
      // the high half to both rails. All-integer so no rail select branches
      // on the (random) initial value.
      const std::uint64_t tt = static_cast<std::uint64_t>(t);
      const std::uint64_t half_hi = (tt + 1) >> 1U;
      const std::uint64_t rise_i =
          (tt >> 1U) +
          ((tt & 1ULL) & static_cast<std::uint64_t>(v1.bits != 0b10U));
      const std::uint64_t fall_i =
          v1.bits == 0b11U ? half_hi : tt - rise_i;
      rise = static_cast<double>(rise_i);
      fall = static_cast<double>(fall_i);
    } else {
      // Saturated bound: the parity split no longer matters at this scale.
      rise = std::ceil(t / 2.0);
      fall = v1.is_x() ? rise : t - rise;
    }
    vdd[b] += rise * e;
    vdd_acc += rise * e;
    vss[b] += fall * e;
    vss_acc += fall * e;
    // Guaranteed a final commit, no earlier than its min-delay arrival.
    const bool commits = bound_stw && endpoints_known && differs && arr < kInf;
    last_lb = std::max(last_lb, select_d(commits, arr, -kInf));
  }
  out.toggle_bound = tb_acc;
  out.vdd_energy_total_pj = vdd_acc;
  out.vss_energy_total_pj = vss_acc;
  if (bound_stw) {
    out.stw_lb_ns = std::max(0.0, last_lb - first_ub);
  } else {
    out.stw_lb_ns = 0.0;  // window not boundable: SCAP degrades to +inf
  }
  return out;
}

}  // namespace scap::lint
