#include "lint/baseline.h"

#include <algorithm>

namespace scap::lint {

std::string fingerprint(const Diagnostic& d) {
  return d.rule + "|" + d.loc.kind + "|" + d.loc.name;
}

Baseline Baseline::parse(std::string_view text,
                         std::vector<std::string>* rejects) {
  Baseline b;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (const std::size_t hash = line.find('#');
        hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t' ||
                             line.front() == '\r')) {
      line.remove_prefix(1);
    }
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (line.empty()) continue;
    if (std::count(line.begin(), line.end(), '|') < 2) {
      if (rejects != nullptr) rejects->emplace_back(line);
      continue;
    }
    b.insert(std::string(line));
  }
  return b;
}

void Baseline::insert(std::string fp) {
  const auto it = std::lower_bound(entries_.begin(), entries_.end(), fp);
  if (it != entries_.end() && *it == fp) return;
  entries_.insert(it, std::move(fp));
}

bool Baseline::contains(std::string_view fp) const {
  return std::binary_search(entries_.begin(), entries_.end(), fp);
}

std::string Baseline::serialize() const {
  std::string out =
      "# scap_lint baseline: accepted findings, one rule|kind|name per "
      "line.\n# Regenerate with scap_lint --write-baseline <file>.\n";
  for (const std::string& fp : entries_) {
    out += fp;
    out += '\n';
  }
  return out;
}

Baseline baseline_from(const LintReport& rep) {
  Baseline b;
  for (const Diagnostic& d : rep.diagnostics) b.insert(fingerprint(d));
  return b;
}

std::size_t apply_baseline(LintReport& rep, const Baseline& base) {
  if (base.empty()) return 0;
  std::size_t dropped = 0;
  std::vector<Diagnostic> kept;
  kept.reserve(rep.diagnostics.size());
  for (Diagnostic& d : rep.diagnostics) {
    if (!base.contains(fingerprint(d))) {
      kept.push_back(std::move(d));
      continue;
    }
    ++dropped;
    switch (d.severity) {
      case Severity::kError:
        --rep.errors;
        break;
      case Severity::kWarning:
        --rep.warnings;
        break;
      case Severity::kInfo:
        --rep.infos;
        break;
    }
    for (auto& [id, n] : rep.rule_counts) {
      if (id == d.rule) {
        --n;
        break;
      }
    }
  }
  rep.diagnostics = std::move(kept);
  rep.suppressed += dropped;
  std::erase_if(rep.rule_counts, [](const auto& rc) { return rc.second == 0; });
  return dropped;
}

}  // namespace scap::lint
