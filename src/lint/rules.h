// Rule registry of the static-analysis subsystem.
//
// Every rule has a stable kebab-case id (the anchor for config overrides,
// JSON/SARIF output and the obs counters "lint.rule.<id>"), a default
// severity, a one-line summary and a fix hint. The registry is a compile-time
// table; check implementations live in structural.cpp / patterns.cpp.
#pragma once

#include <span>
#include <string_view>

#include "lint/diagnostics.h"

namespace scap::lint {

namespace rule {

// -- structural netlist rules ------------------------------------------------
inline constexpr std::string_view kNetMultiDriven = "net-multi-driven";
inline constexpr std::string_view kNetUndriven = "net-undriven";
inline constexpr std::string_view kGateFloatingInput = "gate-floating-input";
inline constexpr std::string_view kFlopFloatingD = "flop-floating-d";
inline constexpr std::string_view kCombLoop = "comb-loop";
inline constexpr std::string_view kGateUnreachable = "gate-unreachable";
inline constexpr std::string_view kFlopUnreachable = "flop-unreachable";
inline constexpr std::string_view kNetDangling = "net-dangling";
inline constexpr std::string_view kBlockTagInconsistent = "block-tag-inconsistent";
inline constexpr std::string_view kCdcCombPath = "cdc-comb-path";

// -- scan-chain integrity ----------------------------------------------------
inline constexpr std::string_view kScanMissingFlop = "scan-missing-flop";
inline constexpr std::string_view kScanDuplicateFlop = "scan-duplicate-flop";
inline constexpr std::string_view kScanBadFlop = "scan-bad-flop";
inline constexpr std::string_view kScanEdgeOrder = "scan-edge-order";

// -- pattern / flow rules ----------------------------------------------------
inline constexpr std::string_view kPatternDomainMismatch = "pattern-domain-mismatch";
inline constexpr std::string_view kCaptureFlopDomain = "capture-flop-domain";
inline constexpr std::string_view kPatternSizeMismatch = "pattern-size-mismatch";
inline constexpr std::string_view kPatternUnfilledX = "pattern-unfilled-x";
inline constexpr std::string_view kPatternCareMismatch = "pattern-care-mismatch";
inline constexpr std::string_view kFillNonconforming = "fill-nonconforming";
inline constexpr std::string_view kScapOverThreshold = "scap-over-threshold";

// -- dataflow rules (dataflow_rules.cpp, powered by lint/dataflow.h) ---------
inline constexpr std::string_view kNetUncontrollable = "net-uncontrollable";
inline constexpr std::string_view kNetUnobservable = "net-unobservable";
inline constexpr std::string_view kNetConstant = "net-constant";
inline constexpr std::string_view kFlopConstantD = "flop-constant-d";
inline constexpr std::string_view kCaptureXContaminated =
    "capture-x-contaminated";
inline constexpr std::string_view kScapStaticOverThreshold =
    "scap-static-over-threshold";
inline constexpr std::string_view kBlockStaticHot = "block-static-hot";

}  // namespace rule

struct RuleInfo {
  std::string_view id;
  Severity severity;
  std::string_view summary;
  std::string_view fix_hint;
};

/// Every registered rule, in registry order.
std::span<const RuleInfo> all_rules();

/// Lookup by id; nullptr when unknown.
const RuleInfo* find_rule(std::string_view id);

}  // namespace scap::lint
