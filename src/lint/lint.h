// scap-lint: static verification of the invariants every engine assumes.
//
// The ATPG / SCAP / IR-drop flow silently corrupts its numbers when fed a
// malformed design or pattern set: a multi-driven net makes the logic values
// driver-order-dependent, a combinational loop breaks levelized simulation,
// a flop missing from its scan chain makes patterns unloadable on a tester,
// and a fill-policy violation in the stepwise Step1/Step2/Step3 sets quietly
// re-inflates the SCAP of untargeted blocks (the exact effect the paper's
// procedure exists to remove). This subsystem checks those invariants
// *statically* -- no simulation -- and reports machine-readable diagnostics.
//
// Three entry points:
//  - lint::run(input, config): the library API. Structural rules always run;
//    scan-chain, pattern and threshold rules run when the corresponding
//    optional inputs are present.
//  - the scap_lint CLI (tools/scap_lint.cpp): text / JSON / SARIF output.
//  - lint::debug_verify: the env-gated guard Netlist::finalize() (via the
//    verify hook installed by this library) and the power-aware flow call;
//    throws on any error-severity finding. Enabled when SCAP_LINT is set
//    (SCAP_LINT=0 disables), defaulting to on in debug (!NDEBUG) builds.
//
// Every finding also feeds the obs metrics registry ("lint.findings",
// "lint.errors", "lint.rule.<id>"), so lint results surface in the
// BENCH_*.json artifacts alongside the engines' own counters.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "atpg/context.h"
#include "atpg/pattern.h"
#include "core/power_aware.h"
#include "core/thresholds.h"
#include "lint/diagnostics.h"
#include "lint/rules.h"
#include "lint/static_power.h"
#include "netlist/netlist.h"
#include "sim/scap.h"

namespace scap::lint {

/// Everything a lint run may look at. Only `netlist` is required; each
/// optional group enables the corresponding rule family. The netlist may be
/// unfinalized (and built with Netlist::set_permissive), which is how broken
/// designs -- the ones finalize() rejects -- get linted at all.
struct LintInput {
  const Netlist* netlist = nullptr;

  /// Scan chains in shift order (scan-in first), e.g. ScanChains::chains.
  std::span<const std::vector<FlopId>> scan_chains;

  // -- pattern / flow checks -------------------------------------------------
  const PatternSet* patterns = nullptr;
  const TestContext* ctx = nullptr;
  /// Pre-fill ATPG cubes matching `patterns` index-for-index: the care-bit
  /// masks for X-consistency and fill-policy conformance.
  std::span<const TestCube> cubes;
  /// Stepwise plan and per-step first-pattern indices (FlowResult::step_start)
  /// for fill-policy conformance of untargeted blocks.
  const StepPlan* plan = nullptr;
  std::span<const std::size_t> step_start;
  /// Expected fill for don't-care cells of untargeted blocks: the quiet state
  /// when provided (FillMode::kQuiet flows), else this constant (fill-0).
  std::uint8_t fill_value = 0;
  std::span<const std::uint8_t> quiet_state;

  /// Per-pattern SCAP reports + block thresholds for the screening rule.
  const ScapThresholds* thresholds = nullptr;
  std::span<const ScapReport> scap_reports;

  // -- dataflow / static-screen checks (dataflow_rules.cpp) ------------------
  /// Per-pattern static SCAP bounds (StaticScapModel::screen) matching
  /// `patterns` index-for-index, for the tier-1 screening annotation rule.
  std::span<const StaticScapBound> static_bounds;
  /// Worst-case bound over an all-X cube (every scan cell unfilled): the
  /// per-block "can this block ever be statically pre-cleared" summary.
  const StaticScapBound* static_worst = nullptr;
};

LintReport run(const LintInput& in, const LintConfig& cfg = {});
/// Structural rules only.
LintReport run(const Netlist& nl, const LintConfig& cfg = {});

// Individual rule families (run() composes these; exposed for tooling).
void check_structure(const Netlist& nl, Diagnostics& diag);
void check_scan_chains(const Netlist& nl,
                       std::span<const std::vector<FlopId>> chains,
                       Diagnostics& diag);
void check_patterns(const LintInput& in, Diagnostics& diag);
void check_dataflow(const LintInput& in, Diagnostics& diag);

// -- report emission (emit.cpp) ---------------------------------------------
std::string to_text(const LintReport& rep);
std::string to_json(const LintReport& rep);
/// SARIF 2.1.0 (one run, logical locations; validates against the schema's
/// required fields and round-trips through obs/json.h).
std::string to_sarif(const LintReport& rep);

// -- debug guard -------------------------------------------------------------

/// SCAP_LINT env switch: "0" disables, any other value enables; unset
/// defaults to on in debug (!NDEBUG) builds and off otherwise.
bool lint_enabled();

/// Structural-lint `nl` and throw std::runtime_error naming `where` and the
/// first error when any error-severity finding exists. No-op unless
/// lint_enabled().
void debug_verify(const Netlist& nl, const char* where);

}  // namespace scap::lint
