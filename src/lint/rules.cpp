#include "lint/rules.h"

namespace scap::lint {

namespace {

constexpr RuleInfo kRules[] = {
    // -- structural ----------------------------------------------------------
    {rule::kNetMultiDriven, Severity::kError,
     "net has more than one driver",
     "keep exactly one driver per net; insert a mux or rename the extra "
     "drivers' outputs"},
    {rule::kNetUndriven, Severity::kError,
     "net has no driver and no reader to blame it on",
     "drive the net from a gate, flop or primary input, or delete it"},
    {rule::kGateFloatingInput, Severity::kError,
     "gate input connects to an undriven net",
     "tie the input to a driven net or a TIE0/TIE1 cell"},
    {rule::kFlopFloatingD, Severity::kError,
     "flop D pin connects to an undriven net",
     "drive the D net; an undriven D makes every capture value X"},
    {rule::kCombLoop, Severity::kError,
     "combinational cycle through the gate graph",
     "break the cycle with a flop or re-wire the feedback path"},
    {rule::kGateUnreachable, Severity::kWarning,
     "gate unreachable from any primary input or flop output",
     "remove the dead cone or connect it to live logic"},
    {rule::kFlopUnreachable, Severity::kWarning,
     "flop D cone contains no primary input or flop output",
     "a constant-capturing flop detects no transition faults; connect or "
     "remove it"},
    {rule::kNetDangling, Severity::kWarning,
     "gate output drives nothing and is not a primary output",
     "mark the net as an output or remove the unloaded gate"},
    {rule::kBlockTagInconsistent, Severity::kWarning,
     "gate's block tag disagrees with its entire cone",
     "retag the gate to the surrounding block so per-block SCAP attributes "
     "its switching correctly"},
    {rule::kCdcCombPath, Severity::kWarning,
     "flop captures a combinational path launched in another clock domain",
     "exclude the crossing from at-speed test or align the launch/capture "
     "domains; cross-domain captures are invalid for per-domain TDF patterns"},
    // -- scan-chain integrity ------------------------------------------------
    {rule::kScanMissingFlop, Severity::kError,
     "flop is on no scan chain",
     "stitch the flop into a chain; unscanned state is uncontrollable and "
     "unobservable"},
    {rule::kScanDuplicateFlop, Severity::kError,
     "flop appears more than once across the scan chains",
     "remove the duplicate; shift data would be loaded twice"},
    {rule::kScanBadFlop, Severity::kError,
     "scan chain references a flop id outside the netlist",
     "rebuild the chains against the current netlist"},
    {rule::kScanEdgeOrder, Severity::kWarning,
     "negative-edge flop placed after a positive-edge flop in a chain",
     "order negative-edge cells ahead of positive-edge cells (or add a "
     "lockup latch) so shift data does not race through"},
    // -- pattern / flow ------------------------------------------------------
    {rule::kPatternDomainMismatch, Severity::kError,
     "pattern set's clock domain differs from the test context's",
     "regenerate the patterns for the context's domain"},
    {rule::kCaptureFlopDomain, Severity::kError,
     "context marks a flop active whose clock domain is not under test",
     "rebuild the context with TestContext::for_domain; a foreign-domain "
     "capture flop sees no launch/capture pulse pair"},
    {rule::kPatternSizeMismatch, Severity::kError,
     "pattern bit count differs from the context's test-variable count",
     "regenerate or re-parse the patterns against the current design"},
    {rule::kPatternUnfilledX, Severity::kError,
     "pattern contains an unfilled don't-care bit",
     "apply a fill mode before hand-off; testers load fully-specified "
     "vectors"},
    {rule::kPatternCareMismatch, Severity::kError,
     "pattern disagrees with its cube on an ATPG care bit",
     "fill must preserve care bits; re-run apply_fill on the original cube"},
    {rule::kFillNonconforming, Severity::kError,
     "don't-care cell of an untargeted block deviates from the quiet fill",
     "re-fill the step's don't-cares with the quiet value; deviations "
     "re-inflate the untargeted blocks' SCAP"},
    {rule::kScapOverThreshold, Severity::kWarning,
     "pattern's block SCAP exceeds the Case2-derived threshold",
     "replace or regenerate the pattern (see core/power_aware.h); it is an "
     "IR-drop overkill risk"},
    // -- dataflow ------------------------------------------------------------
    {rule::kNetUncontrollable, Severity::kWarning,
     "net cannot be justified to both logic values from the scan state",
     "review held primary-input constants or add a control test point; "
     "transition faults on the net are untestable"},
    {rule::kNetUnobservable, Severity::kWarning,
     "net has no sensitizable path to any scan cell or primary output",
     "add an observe test point or re-wire the cone; faults on the net "
     "escape every pattern"},
    {rule::kNetConstant, Severity::kInfo,
     "net is provably stuck at one value for every loadable scan state",
     "driven by tie-derived or held-PI logic; consider removing the "
     "constant cone or freeing the held input"},
    {rule::kFlopConstantD, Severity::kWarning,
     "scan cell captures a constant: its D cone settles to a fixed value",
     "the cell observes nothing at capture; connect its D cone to live "
     "logic or drop it from at-speed test"},
    {rule::kCaptureXContaminated, Severity::kWarning,
     "pattern launches X into capture: unfilled cells reach active flops",
     "fill the contributing don't-care scan cells (or mask the capture); "
     "an X launch value makes the measured response unpredictable"},
    {rule::kScapStaticOverThreshold, Severity::kInfo,
     "pattern's static SCAP upper bound exceeds a block threshold",
     "not provably clean by the tier-1 static screen; event-simulate the "
     "pattern (tier 2) before signing it off"},
    {rule::kBlockStaticHot, Severity::kInfo,
     "block's worst-case static SCAP bound exceeds its threshold",
     "some pattern may violate this block's threshold; keep the block in "
     "the event-sim screening set (a bound under the threshold would have "
     "proven every pattern clean)"},
};

}  // namespace

std::span<const RuleInfo> all_rules() { return kRules; }

const RuleInfo* find_rule(std::string_view id) {
  for (const RuleInfo& r : kRules) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

}  // namespace scap::lint
