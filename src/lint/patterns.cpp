// Pattern / flow rules (lint/lint.h): launch-capture domain alignment,
// X-consistency of filled patterns against their ATPG cubes, fill-policy
// conformance of the stepwise plan's untargeted blocks, and SCAP-threshold
// screening annotations.
#include <algorithm>
#include <cstdio>
#include <string>

#include "lint/lint.h"

namespace scap::lint {

namespace {

Location pattern_loc(std::size_t j) {
  return Location{"pattern", static_cast<std::uint32_t>(j),
                  "p" + std::to_string(j)};
}

std::string flop_ref(const Netlist& nl, FlopId f) {
  return "b" + std::to_string(nl.flop(f).block) + "_f" + std::to_string(f);
}

/// Step owning pattern j under FlowResult-style step_start offsets.
std::size_t step_of(std::span<const std::size_t> step_start, std::size_t j) {
  std::size_t s = 0;
  while (s + 1 < step_start.size() && step_start[s + 1] <= j) ++s;
  return s;
}

void check_context(const LintInput& in, Diagnostics& diag) {
  const Netlist& nl = *in.netlist;
  const TestContext& ctx = *in.ctx;
  if (ctx.active.size() != nl.num_flops()) {
    diag.add(rule::kCaptureFlopDomain, Location{"context", 0, "ctx"},
             "context active mask covers " +
                 std::to_string(ctx.active.size()) +
                 " flops but the netlist has " +
                 std::to_string(nl.num_flops()));
    return;
  }
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    if (!ctx.active[f] || nl.flop(f).domain == ctx.domain) continue;
    diag.add(rule::kCaptureFlopDomain, Location{"flop", f, flop_ref(nl, f)},
             "flop " + flop_ref(nl, f) + " (domain " +
                 std::to_string(nl.flop(f).domain) +
                 ") is marked active but the context tests domain " +
                 std::to_string(ctx.domain));
  }
}

void check_fill_policy(const LintInput& in, Diagnostics& diag) {
  const Netlist& nl = *in.netlist;
  const PatternSet& ps = *in.patterns;
  const std::size_t n = std::min(ps.patterns.size(), in.cubes.size());
  for (std::size_t j = 0; j < n; ++j) {
    const auto& bits = ps.patterns[j].s1;
    const auto& cube = in.cubes[j].s1;
    if (cube.size() != bits.size()) continue;  // kPatternSizeMismatch's job
    const std::size_t s = step_of(in.step_start, j);
    if (s >= in.plan->steps.size()) continue;
    const auto& targets = in.plan->steps[s].target_blocks;
    // Aggregate deviations per block so one mis-filled pattern yields one
    // finding per affected block, not thousands of per-cell lines.
    std::vector<std::size_t> bad(nl.block_count(), 0);
    const std::size_t nf = std::min<std::size_t>(nl.num_flops(), bits.size());
    for (std::size_t v = 0; v < nf; ++v) {
      if (cube[v] != kBitX) continue;
      const BlockId b = nl.flop(static_cast<FlopId>(v)).block;
      if (b < targets.size() && targets[b]) continue;  // targeted: any fill
      const std::uint8_t expect =
          v < in.quiet_state.size() ? in.quiet_state[v] : in.fill_value;
      if (bits[v] != expect) ++bad[b];
    }
    for (std::size_t b = 0; b < bad.size(); ++b) {
      if (bad[b] == 0) continue;
      diag.add(rule::kFillNonconforming, pattern_loc(j),
               "pattern " + std::to_string(j) + " (step " +
                   std::to_string(s + 1) + "): " + std::to_string(bad[b]) +
                   " don't-care cell(s) of untargeted block " +
                   std::to_string(b) + " deviate from the " +
                   (in.quiet_state.empty() ? "constant" : "quiet-state") +
                   " fill");
    }
  }
}

void check_thresholds(const LintInput& in, Diagnostics& diag) {
  const ScapThresholds& thr = *in.thresholds;
  for (std::size_t j = 0; j < in.scap_reports.size(); ++j) {
    const ScapReport& rep = in.scap_reports[j];
    for (std::size_t b = 0; b < thr.block_mw.size(); ++b) {
      if (!thr.violates(rep, b)) continue;
      char buf[96];
      std::snprintf(buf, sizeof buf, "%.2f mW over the %.2f mW threshold",
                    ScapThresholds::block_scap_mw(rep, b), thr.block_mw[b]);
      diag.add(rule::kScapOverThreshold, pattern_loc(j),
               "pattern " + std::to_string(j) + ": block " +
                   std::to_string(b) + " SCAP is " + buf);
    }
  }
}

}  // namespace

void check_patterns(const LintInput& in, Diagnostics& diag) {
  const Netlist& nl = *in.netlist;
  if (in.ctx != nullptr) check_context(in, diag);

  if (in.patterns != nullptr) {
    const PatternSet& ps = *in.patterns;
    if (in.ctx != nullptr && ps.domain != in.ctx->domain) {
      diag.add(rule::kPatternDomainMismatch, Location{"context", 0, "ctx"},
               "pattern set targets domain " + std::to_string(ps.domain) +
                   " but the context tests domain " +
                   std::to_string(in.ctx->domain));
    }
    const std::size_t want =
        in.ctx != nullptr ? in.ctx->num_vars() : nl.num_flops();
    for (std::size_t j = 0; j < ps.patterns.size(); ++j) {
      const auto& bits = ps.patterns[j].s1;
      if (bits.size() != want) {
        diag.add(rule::kPatternSizeMismatch, pattern_loc(j),
                 "pattern " + std::to_string(j) + " has " +
                     std::to_string(bits.size()) + " bits, expected " +
                     std::to_string(want));
        continue;
      }
      std::size_t xs = 0;
      for (std::uint8_t b : bits) xs += b > 1 ? 1 : 0;
      if (xs > 0) {
        diag.add(rule::kPatternUnfilledX, pattern_loc(j),
                 "pattern " + std::to_string(j) + " carries " +
                     std::to_string(xs) + " unfilled don't-care bit(s)");
      }
    }
    // X-consistency: fill may only assign the cube's don't-cares.
    const std::size_t n = std::min(ps.patterns.size(), in.cubes.size());
    for (std::size_t j = 0; j < n; ++j) {
      const auto& bits = ps.patterns[j].s1;
      const auto& cube = in.cubes[j].s1;
      if (cube.size() != bits.size()) {
        diag.add(rule::kPatternSizeMismatch, pattern_loc(j),
                 "cube " + std::to_string(j) + " has " +
                     std::to_string(cube.size()) + " bits but its pattern has " +
                     std::to_string(bits.size()));
        continue;
      }
      std::size_t clobbered = 0;
      std::size_t first = cube.size();
      for (std::size_t v = 0; v < cube.size(); ++v) {
        if (cube[v] != kBitX && cube[v] != bits[v]) {
          if (clobbered == 0) first = v;
          ++clobbered;
        }
      }
      if (clobbered > 0) {
        diag.add(rule::kPatternCareMismatch, pattern_loc(j),
                 "pattern " + std::to_string(j) + " changes " +
                     std::to_string(clobbered) +
                     " ATPG care bit(s), first at variable " +
                     std::to_string(first));
      }
    }
    if (in.plan != nullptr && !in.step_start.empty() && !in.cubes.empty()) {
      check_fill_policy(in, diag);
    }
  }

  if (in.thresholds != nullptr && !in.scap_reports.empty()) {
    check_thresholds(in, diag);
  }
}

}  // namespace scap::lint
