// Report emission: human text, machine JSON, and SARIF 2.1.0.
//
// JSON/SARIF use the same escaping as the obs artifacts (obs/report.h) and
// round-trip through the obs/json.h reader (tests/lint_test.cpp). The SARIF
// output carries one run with logical locations -- netlist objects have no
// file/line, so `kind name` is the stable coordinate.
#include <string>

#include "lint/lint.h"
#include "obs/report.h"

namespace scap::lint {

namespace {

const char* sarif_level(Severity s) {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kInfo: return "note";
  }
  return "none";
}

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  out += obs::json_escape(s);
  out += '"';
}

}  // namespace

std::string to_text(const LintReport& rep) {
  std::string out;
  for (const Diagnostic& d : rep.diagnostics) {
    out += severity_name(d.severity);
    out += " [";
    out += d.rule;
    out += "] ";
    out += d.message;
    out += "\n";
    if (!d.fix_hint.empty()) {
      out += "  hint: ";
      out += d.fix_hint;
      out += "\n";
    }
  }
  if (!rep.rule_counts.empty()) {
    out += "per rule:";
    for (const auto& [id, n] : rep.rule_counts) {
      out += " " + id + "=" + std::to_string(n);
    }
    out += "\n";
  }
  out += "scap_lint: " + std::to_string(rep.errors) + " error(s), " +
         std::to_string(rep.warnings) + " warning(s), " +
         std::to_string(rep.infos) + " info(s)";
  if (rep.suppressed > 0) {
    out += " (" + std::to_string(rep.suppressed) +
           " finding(s) beyond the per-rule cap not shown)";
  }
  out += "\n";
  return out;
}

std::string to_json(const LintReport& rep) {
  std::string out = "{\"tool\":\"scap_lint\",\"schema_version\":1,";
  out += "\"summary\":{\"errors\":" + std::to_string(rep.errors) +
         ",\"warnings\":" + std::to_string(rep.warnings) +
         ",\"infos\":" + std::to_string(rep.infos) +
         ",\"suppressed\":" + std::to_string(rep.suppressed) + "},";
  out += "\"rule_counts\":[";
  for (std::size_t i = 0; i < rep.rule_counts.size(); ++i) {
    if (i) out += ',';
    out += "{\"rule\":";
    append_quoted(out, rep.rule_counts[i].first);
    out += ",\"count\":" + std::to_string(rep.rule_counts[i].second) + "}";
  }
  out += "],\"diagnostics\":[";
  for (std::size_t i = 0; i < rep.diagnostics.size(); ++i) {
    const Diagnostic& d = rep.diagnostics[i];
    if (i) out += ',';
    out += "{\"rule\":";
    append_quoted(out, d.rule);
    out += ",\"severity\":";
    append_quoted(out, severity_name(d.severity));
    out += ",\"kind\":";
    append_quoted(out, d.loc.kind);
    out += ",\"id\":" + std::to_string(d.loc.id) + ",\"name\":";
    append_quoted(out, d.loc.name);
    out += ",\"message\":";
    append_quoted(out, d.message);
    out += ",\"fix_hint\":";
    append_quoted(out, d.fix_hint);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string to_sarif(const LintReport& rep) {
  std::string out =
      "{\"version\":\"2.1.0\",\"$schema\":"
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\"runs\":[{";
  out += "\"tool\":{\"driver\":{\"name\":\"scap_lint\","
         "\"informationUri\":\"README.md#static-analysis--linting\","
         "\"rules\":[";
  // Index only the rules that fired, in rule_counts order.
  for (std::size_t i = 0; i < rep.rule_counts.size(); ++i) {
    if (i) out += ',';
    const RuleInfo* info = find_rule(rep.rule_counts[i].first);
    out += "{\"id\":";
    append_quoted(out, rep.rule_counts[i].first);
    out += ",\"shortDescription\":{\"text\":";
    append_quoted(out, info != nullptr ? info->summary : "");
    out += "},\"help\":{\"text\":";
    append_quoted(out, info != nullptr ? info->fix_hint : "");
    out += "}}";
  }
  out += "]}},\"results\":[";
  for (std::size_t i = 0; i < rep.diagnostics.size(); ++i) {
    const Diagnostic& d = rep.diagnostics[i];
    if (i) out += ',';
    std::size_t rule_index = 0;
    for (std::size_t r = 0; r < rep.rule_counts.size(); ++r) {
      if (rep.rule_counts[r].first == d.rule) rule_index = r;
    }
    out += "{\"ruleId\":";
    append_quoted(out, d.rule);
    out += ",\"ruleIndex\":" + std::to_string(rule_index) + ",\"level\":";
    append_quoted(out, sarif_level(d.severity));
    out += ",\"message\":{\"text\":";
    append_quoted(out, d.message);
    out += "},\"locations\":[{\"logicalLocations\":[{\"name\":";
    append_quoted(out, d.loc.name);
    out += ",\"kind\":";
    append_quoted(out, d.loc.kind);
    out += ",\"fullyQualifiedName\":";
    append_quoted(out, d.loc.kind + " " + d.loc.name);
    out += "}]}]}";
  }
  out += "]}]}";
  return out;
}

}  // namespace scap::lint
