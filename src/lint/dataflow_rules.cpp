// Dataflow-powered lint rules (lint/lint.h): SCOAP-based controllability /
// observability findings, constant-net and constant-capture inference,
// X-contamination of capture values, and the static-SCAP screening
// annotations. All facts come from the dataflow engine (lint/dataflow.h)
// and the static power proxy (lint/static_power.h); nothing here simulates.
#include <algorithm>
#include <string>
#include <vector>

#include "lint/dataflow.h"
#include "lint/lint.h"
#include "lint/static_power.h"

namespace scap::lint {

namespace {

std::string gate_name(const Netlist& nl, GateId g) {
  return "b" + std::to_string(nl.gate(g).block) + "_g" + std::to_string(g);
}
std::string flop_name(const Netlist& nl, FlopId f) {
  return "b" + std::to_string(nl.flop(f).block) + "_f" + std::to_string(f);
}
Location net_loc(const Netlist& nl, NetId n) {
  return Location{"net", n, nl.net_name(n)};
}
Location flop_loc(const Netlist& nl, FlopId f) {
  return Location{"flop", f, flop_name(nl, f)};
}
Location pattern_loc(std::size_t j) {
  return Location{"pattern", static_cast<std::uint32_t>(j),
                  "p" + std::to_string(j)};
}
Location block_loc(std::size_t b) {
  return Location{"block", static_cast<std::uint32_t>(b),
                  "B" + std::to_string(b + 1)};
}

/// True when the net's recorded driver is a tie cell (constant by design,
/// not worth a finding).
bool tie_driven(const Netlist& nl, NetId n) {
  const Net& nr = nl.net(n);
  if (nr.driver_kind != DriverKind::kGate) return false;
  const CellType t = nl.gate(nr.driver).type;
  return t == CellType::kTie0 || t == CellType::kTie1;
}

std::string driver_ref(const Netlist& nl, NetId n) {
  const Net& nr = nl.net(n);
  switch (nr.driver_kind) {
    case DriverKind::kGate:
      return "gate " + gate_name(nl, nr.driver);
    case DriverKind::kFlop:
      return "flop " + flop_name(nl, nr.driver);
    case DriverKind::kInput:
      return "primary input";
    case DriverKind::kNone:
      break;
  }
  return "no driver";
}

void check_testability(const LintInput& in, const DataflowFacts& facts,
                       Diagnostics& diag) {
  const Netlist& nl = *in.netlist;

  if (diag.rule_enabled(rule::kNetConstant)) {
    for (NetId n = 0; n < nl.num_nets(); ++n) {
      if (!facts.net_constant(n)) continue;
      const DriverKind dk = nl.net(n).driver_kind;
      // Tie outputs and held PIs are constant by design; report the cones
      // they infect, not the sources themselves.
      if (dk == DriverKind::kNone || dk == DriverKind::kInput) continue;
      if (tie_driven(nl, n)) continue;
      diag.add(rule::kNetConstant, net_loc(nl, n),
               "net '" + nl.net_name(n) + "' (" + driver_ref(nl, n) +
                   ") settles to constant " +
                   std::to_string(facts.constant[n].value()) +
                   " for every loadable scan state");
    }
  }

  if (diag.rule_enabled(rule::kNetUncontrollable)) {
    for (NetId n = 0; n < nl.num_nets(); ++n) {
      if (nl.net(n).driver_kind == DriverKind::kNone) continue;
      if (facts.net_constant(n) || facts.controllable(n)) continue;
      const bool no0 = facts.cc0[n] == kInfCost;
      diag.add(rule::kNetUncontrollable, net_loc(nl, n),
               "net '" + nl.net_name(n) + "' cannot be justified to " +
                   (no0 && facts.cc1[n] == kInfCost ? "either value"
                    : no0                           ? "logic 0"
                                                    : "logic 1") +
                   " from the scan state");
    }
  }

  if (diag.rule_enabled(rule::kNetUnobservable)) {
    // A net is worth observing if something reads it (gate pin or flop D);
    // purely dangling nets are kNetDangling's finding.
    std::vector<std::uint8_t> read(nl.num_nets(), 0);
    for (GateId g = 0; g < nl.num_gates(); ++g) {
      for (NetId in_net : nl.gate_inputs(g)) read[in_net] = 1;
    }
    for (FlopId f = 0; f < nl.num_flops(); ++f) {
      if (nl.flop(f).d != kNullId) read[nl.flop(f).d] = 1;
    }
    for (NetId n = 0; n < nl.num_nets(); ++n) {
      if (!read[n] || facts.net_constant(n) || facts.observable(n)) continue;
      diag.add(rule::kNetUnobservable, net_loc(nl, n),
               "net '" + nl.net_name(n) +
                   "' has no sensitizable path to any flop D pin or "
                   "primary output");
    }
  }

  if (diag.rule_enabled(rule::kFlopConstantD)) {
    for (FlopId f = 0; f < nl.num_flops(); ++f) {
      const NetId d = nl.flop(f).d;
      if (d == kNullId || !facts.net_constant(d)) continue;
      diag.add(rule::kFlopConstantD, flop_loc(nl, f),
               "scan cell " + flop_name(nl, f) + " captures constant " +
                   std::to_string(facts.constant[d].value()) +
                   " (D net '" + nl.net_name(d) + "')");
    }
  }
}

/// Push each pre-fill cube's care bits through the logic in 3-valued form
/// and flag patterns whose active flops would capture an X launch value.
void check_capture_x(const LintInput& in, const LevelMap& levels,
                     Diagnostics& diag) {
  const Netlist& nl = *in.netlist;
  const TestContext& ctx = *in.ctx;
  if (ctx.active.size() != nl.num_flops()) return;  // kCaptureFlopDomain's job

  std::vector<V3> flop_bits(nl.num_flops());
  std::vector<V3> nets;
  for (std::size_t j = 0; j < in.cubes.size(); ++j) {
    const auto& bits = in.cubes[j].s1;
    if (bits.size() != ctx.num_vars()) continue;  // kPatternSizeMismatch's job
    std::size_t x_captures = 0;
    FlopId first_flop = 0;
    if (ctx.explicit_s2()) {
      // LOS / enhanced scan: the launch value is itself a test variable.
      for (FlopId f = 0; f < nl.num_flops(); ++f) {
        if (!ctx.active[f] || bits[ctx.los_pred[f]] != kBitX) continue;
        if (x_captures == 0) first_flop = f;
        ++x_captures;
      }
    } else {
      for (FlopId f = 0; f < nl.num_flops(); ++f) {
        flop_bits[f] = bits[f] == kBitX ? V3::x() : V3::of(bits[f] != 0);
      }
      eval_frame_v3(nl, levels, flop_bits, ctx.pi_values, nets);
      for (FlopId f = 0; f < nl.num_flops(); ++f) {
        if (!ctx.active[f] || !nets[nl.flop(f).d].is_x()) continue;
        if (x_captures == 0) first_flop = f;
        ++x_captures;
      }
    }
    if (x_captures == 0) continue;
    diag.add(rule::kCaptureXContaminated, pattern_loc(j),
             "pattern " + std::to_string(j) + ": " +
                 std::to_string(x_captures) +
                 " active flop(s) launch an X value (first: " +
                 flop_name(nl, first_flop) + ")");
  }
}

void check_static_scap(const LintInput& in, Diagnostics& diag) {
  const std::span<const double> thr = in.thresholds->block_mw;
  if (diag.rule_enabled(rule::kScapStaticOverThreshold)) {
    for (std::size_t j = 0; j < in.static_bounds.size(); ++j) {
      const StaticScapBound& b = in.static_bounds[j];
      const std::size_t nb = std::min(thr.size(), b.vdd_energy_pj.size());
      for (std::size_t blk = 0; blk < nb; ++blk) {
        const double mw = b.block_scap_mw(blk);
        if (mw <= thr[blk]) continue;
        diag.add(rule::kScapStaticOverThreshold, pattern_loc(j),
                 "pattern " + std::to_string(j) + ": static SCAP bound " +
                     std::to_string(mw) + " mW exceeds block B" +
                     std::to_string(blk + 1) + " threshold " +
                     std::to_string(thr[blk]) + " mW (needs tier-2 "
                     "event-sim screening)");
      }
    }
  }
  if (in.static_worst != nullptr &&
      diag.rule_enabled(rule::kBlockStaticHot)) {
    const StaticScapBound& w = *in.static_worst;
    const std::size_t nb = std::min(thr.size(), w.vdd_energy_pj.size());
    for (std::size_t blk = 0; blk < nb; ++blk) {
      const double mw = w.block_scap_mw(blk);
      if (mw <= thr[blk]) continue;
      diag.add(rule::kBlockStaticHot, block_loc(blk),
               "block B" + std::to_string(blk + 1) +
                   ": worst-case static SCAP bound " + std::to_string(mw) +
                   " mW exceeds its threshold " + std::to_string(thr[blk]) +
                   " mW; patterns targeting it cannot be statically "
                   "pre-cleared");
    }
  }
}

}  // namespace

void check_dataflow(const LintInput& in, Diagnostics& diag) {
  const Netlist& nl = *in.netlist;

  const bool want_facts = diag.rule_enabled(rule::kNetUncontrollable) ||
                          diag.rule_enabled(rule::kNetUnobservable) ||
                          diag.rule_enabled(rule::kNetConstant) ||
                          diag.rule_enabled(rule::kFlopConstantD);
  const bool want_capture_x = in.ctx != nullptr && !in.cubes.empty() &&
                              diag.rule_enabled(rule::kCaptureXContaminated);
  if (want_facts) {
    DataflowOptions opt;
    if (in.ctx != nullptr) opt.pi_values = in.ctx->pi_values;
    const DataflowFacts facts = analyze_dataflow(nl, opt);
    check_testability(in, facts, diag);
    if (want_capture_x) check_capture_x(in, facts.levels, diag);
  } else if (want_capture_x) {
    check_capture_x(in, levelize(nl), diag);
  }

  if (in.thresholds != nullptr &&
      (!in.static_bounds.empty() || in.static_worst != nullptr)) {
    check_static_scap(in, diag);
  }
}

}  // namespace scap::lint
