// Netlist dataflow analysis engine.
//
// A small multi-pass forward/backward framework over the (possibly
// unfinalized) gate graph. Gates are first levelized with a cycle-tolerant
// Kahn worklist -- gates trapped in combinational cycles are excluded and
// counted, so the passes below stay well-defined on the malformed netlists
// lint exists to diagnose. On the acyclic part the levelized schedule makes
// every transfer function converge in a single sweep: one forward pass for
// controllability / constants, one backward pass for observability.
//
// Facts computed per net:
//  - SCOAP-style 0/1 controllability CC0/CC1 (cost of justifying the value
//    from the scan state and primary inputs; kInfCost = impossible) and
//    observability CO (cost of sensitizing the net to a flop D pin or a
//    primary output; kInfCost = no sensitizable path).
//  - Constant inference: the 3-valued fixed point of the combinational frame
//    with every scan cell free (X) and the primary inputs either free or
//    held at the tester constants -- a non-X result proves the net is stuck
//    at that value for *every* loadable scan state.
//  - Static X-propagation (eval_frame_v3): the 3-valued settle of one
//    explicit scan-state assignment, used to push ATPG care-bit masks
//    through the logic and find X-contaminated capture values.
//
// The same facts power the dataflow lint rules (dataflow_rules.cpp), the
// static SCAP screening proxy (lint/static_power.h) and the scap_analyze
// CLI. Everything here is pure data-plane analysis: no simulation engines,
// no link dependencies beyond scap_netlist.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.h"

namespace scap::lint {

/// Saturating cost for "value cannot be produced / net cannot be observed".
inline constexpr std::uint32_t kInfCost = 0xffffffffu;

/// Cycle-tolerant levelization of the combinational gate graph. Valid on
/// unfinalized and permissive netlists (it rebuilds reader counts from the
/// raw tables rather than trusting fanout pools).
struct LevelMap {
  std::vector<std::uint32_t> gate_level;  ///< per gate; kInfCost if cyclic
  std::vector<GateId> topo;               ///< acyclic gates in level order
  std::size_t cyclic_gates = 0;           ///< gates excluded (comb loops)
  std::uint32_t max_level = 0;

  bool acyclic() const { return cyclic_gates == 0; }
};

LevelMap levelize(const Netlist& nl);

struct DataflowOptions {
  /// Constant value per primary input (index-aligned with
  /// Netlist::primary_inputs()). Empty = PIs are free test variables
  /// (classic SCOAP); non-empty = the held tester constants, which makes
  /// the opposite PI value unjustifiable and lets constants propagate.
  std::span<const std::uint8_t> pi_values;
  /// Skip the backward observability pass (the CO vector stays kInfCost).
  bool observability = true;
};

struct DataflowFacts {
  LevelMap levels;

  // SCOAP testability measures, per net. Sources cost 1 (scan-cell Q nets
  // both values; free PIs both values; held PIs / tie cells only the driven
  // value), each gate level adds 1 plus the cost of justifying the side
  // inputs. Additions saturate at kInfCost.
  std::vector<std::uint32_t> cc0;
  std::vector<std::uint32_t> cc1;
  std::vector<std::uint32_t> co;

  /// Constant inference result per net: V3::zero()/one() = provably stuck at
  /// that value for every scan load (given the held PI values), X otherwise.
  std::vector<V3> constant;

  std::size_t constant_nets = 0;       ///< nets with a non-X constant
  std::size_t uncontrollable_nets = 0; ///< driven nets with CC0 or CC1 = inf
  std::size_t unobservable_nets = 0;   ///< read nets with CO = inf

  bool net_constant(NetId n) const { return !constant[n].is_x(); }
  bool controllable(NetId n) const {
    return cc0[n] != kInfCost && cc1[n] != kInfCost;
  }
  bool observable(NetId n) const { return co[n] != kInfCost; }
};

/// Run the forward (controllability + constants) and backward
/// (observability) passes. O(gates + nets) time and memory.
DataflowFacts analyze_dataflow(const Netlist& nl,
                               const DataflowOptions& opt = {});

/// 3-valued zero-delay settle of one combinational frame: `flop_bits` gives
/// each flop's Q value (X = unfilled scan cell), `pi_values` the held PI
/// constants (empty = all-X). `net_values` is resized to num_nets();
/// outputs of cyclic gates and undriven nets settle to X.
void eval_frame_v3(const Netlist& nl, const LevelMap& levels,
                   std::span<const V3> flop_bits,
                   std::span<const std::uint8_t> pi_values,
                   std::vector<V3>& net_values);

}  // namespace scap::lint
