#include "soc/scan_chains.h"

#include <algorithm>
#include <cmath>

namespace scap {

std::size_t ScanChains::max_chain_length() const {
  std::size_t m = 0;
  for (const auto& c : chains) m = std::max(m, c.size());
  return m;
}

double ScanChains::wirelength_um(const Placement& pl) const {
  double total = 0.0;
  for (const auto& chain : chains) {
    for (std::size_t i = 1; i < chain.size(); ++i) {
      total += manhattan(pl.flop_pos(chain[i - 1]), pl.flop_pos(chain[i]));
    }
  }
  return total;
}

ScanChains ScanChains::build(const Netlist& nl, const Placement& pl,
                             std::size_t num_chains) {
  ScanChains sc;
  sc.chains.resize(num_chains);

  std::vector<FlopId> neg, pos;
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    (nl.flop(f).neg_edge ? neg : pos).push_back(f);
  }

  // Serpentine order: horizontal bands swept bottom-to-top, alternating
  // left/right, approximating a wirelength-minimizing reorder.
  auto serpentine = [&](std::vector<FlopId>& flops) {
    if (flops.empty()) return;
    double ymin = pl.flop_pos(flops[0]).y, ymax = ymin;
    for (FlopId f : flops) {
      ymin = std::min(ymin, pl.flop_pos(f).y);
      ymax = std::max(ymax, pl.flop_pos(f).y);
    }
    const int bands = std::max(
        1, static_cast<int>(std::sqrt(static_cast<double>(flops.size()))));
    const double band_h = (ymax - ymin) / bands + 1e-9;
    std::sort(flops.begin(), flops.end(), [&](FlopId a, FlopId b) {
      const Point pa = pl.flop_pos(a), pb = pl.flop_pos(b);
      const int ba = static_cast<int>((pa.y - ymin) / band_h);
      const int bb = static_cast<int>((pb.y - ymin) / band_h);
      if (ba != bb) return ba < bb;
      return (ba % 2 == 0) ? pa.x < pb.x : pa.x > pb.x;
    });
  };

  // Chain 0: negative-edge flops (the paper places them on a separate chain).
  serpentine(neg);
  sc.chains[0] = std::move(neg);

  // Remaining flops: one global serpentine, sliced into contiguous chains so
  // each chain stays spatially compact. With a single chain, the positive-
  // edge cells follow the negative-edge segment on chain 0.
  serpentine(pos);
  const std::size_t data_chains = num_chains > 1 ? num_chains - 1 : 1;
  const std::size_t per_chain = (pos.size() + data_chains - 1) / data_chains;
  for (std::size_t c = 0; c < data_chains; ++c) {
    const std::size_t lo = c * per_chain;
    const std::size_t hi = std::min(pos.size(), lo + per_chain);
    if (lo >= hi) break;
    auto& chain = sc.chains[num_chains > 1 ? c + 1 : 0];
    chain.insert(chain.end(), pos.begin() + static_cast<std::ptrdiff_t>(lo),
                 pos.begin() + static_cast<std::ptrdiff_t>(hi));
  }

  sc.chain_index_.assign(nl.num_flops(), 0);
  sc.chain_position_.assign(nl.num_flops(), 0);
  for (std::size_t c = 0; c < sc.chains.size(); ++c) {
    for (std::size_t i = 0; i < sc.chains[c].size(); ++i) {
      sc.chain_index_[sc.chains[c][i]] = static_cast<std::uint32_t>(c);
      sc.chain_position_[sc.chains[c][i]] = static_cast<std::uint32_t>(i);
    }
  }
  return sc;
}

}  // namespace scap
