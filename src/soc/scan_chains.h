// Scan-chain construction.
//
// Mirrors the paper's DFT setup: a fixed number of chains, negative-edge
// flops segregated onto their own chain, and location-aware cell ordering
// (the physical design flow reorders scan cells to minimize chain
// wirelength; we approximate with a serpentine sweep over the placement).
#pragma once

#include <cstddef>
#include <vector>

#include "layout/placement.h"
#include "netlist/netlist.h"

namespace scap {

struct ScanChains {
  /// chains[c] lists flops in shift order (scan-in first).
  std::vector<std::vector<FlopId>> chains;

  std::size_t chain_of(FlopId f) const { return chain_index_[f]; }
  std::size_t position_of(FlopId f) const { return chain_position_[f]; }
  std::size_t max_chain_length() const;
  /// Total chain routing length under the placement [um].
  double wirelength_um(const Placement& pl) const;

  static ScanChains build(const Netlist& nl, const Placement& pl,
                          std::size_t num_chains);

 private:
  std::vector<std::uint32_t> chain_index_;
  std::vector<std::uint32_t> chain_position_;
};

}  // namespace scap
