// Configuration of the synthetic SOC (the library's Turbo-Eagle stand-in).
//
// Defaults reproduce the *structure* of the paper's Tables 1 and 2 at a
// configurable scale: six blocks B1..B6 on the Figure-1 floorplan, six clock
// domains with clka dominant (covering all blocks, ~78% of the flops, the
// 100 MHz master-processor clock), per-block side domains (clkb: B1,
// clkc: B3, clkd: B6, clke: B6, clkf: B2), 16 scan chains, a handful of
// negative-edge flops on their own chain, and a 10 MHz shift clock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace scap {

struct SocConfig {
  struct Population {
    DomainId domain;
    BlockId block;
    std::size_t flops;
  };

  double die_um = 3000.0;
  std::size_t pads_per_rail = 37;
  std::size_t scan_chains = 16;
  std::size_t neg_edge_flops = 22;
  std::size_t primary_inputs = 32;
  double gates_per_flop = 6.0;
  /// Fraction of flops built as enable-gated registers (D = en ? data : Q).
  /// Real SOCs hold most registers most cycles; without this every random
  /// scan state would flip ~half the flops at launch.
  double enabled_flop_fraction = 0.60;
  double cross_block_fraction = 0.015;  ///< inputs taken from other blocks (bus-class coupling)
  double pi_fanin_fraction = 0.01;     ///< gate inputs fed by chip pins
  double shift_mhz = 10.0;
  /// Tester cycle T for the CAP model [ns]. The launch-capture pulse pair
  /// runs at the domain's functional speed inside this window (the paper
  /// reports STW 8.34 ns against a 20 ns tester cycle).
  double tester_period_ns = 20.0;
  std::uint64_t seed = 2007;

  /// Flop population per (domain, block) pair.
  std::vector<Population> population;
  /// Clock frequency per domain [MHz] (index = DomainId).
  std::vector<double> domain_freq_mhz;

  std::size_t total_flops() const {
    std::size_t n = 0;
    for (const auto& p : population) n += p.flops;
    return n;
  }
  std::size_t num_domains() const { return domain_freq_mhz.size(); }
  double period_ns(DomainId d) const { return 1000.0 / domain_freq_mhz[d]; }

  /// Paper-shaped SOC scaled by `scale` (1.0 would be the full ~23K-flop
  /// design; the default experiments use 0.1 => ~2.3K flops).
  static SocConfig turbo_eagle_scaled(double scale = 0.1);

  /// Tiny configuration for unit tests.
  static SocConfig tiny(std::uint64_t seed = 11);
};

}  // namespace scap
