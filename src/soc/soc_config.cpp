#include "soc/soc_config.h"

#include <algorithm>
#include <cmath>

namespace scap {

namespace {

std::size_t scaled(double base, double scale) {
  return static_cast<std::size_t>(std::max(4.0, std::round(base * scale)));
}

}  // namespace

SocConfig SocConfig::turbo_eagle_scaled(double scale) {
  SocConfig cfg;
  // Domains: clka..clkf = 0..5. clka is the dominant 100 MHz master clock
  // spanning every block (paper Table 2: ~18K of ~23K flops).
  cfg.domain_freq_mhz = {100.0, 48.0, 24.0, 12.0, 48.0, 33.0};
  cfg.population = {
      // clka across all six blocks; B5 is the big central consumer.
      {0, 0, scaled(2200, scale)},  // B1
      {0, 1, scaled(2000, scale)},  // B2
      {0, 2, scaled(2400, scale)},  // B3
      {0, 3, scaled(1800, scale)},  // B4
      {0, 4, scaled(7200, scale)},  // B5
      {0, 5, scaled(2400, scale)},  // B6
      // Side domains, one or two blocks each (paper Table 2 shape).
      {1, 0, scaled(1300, scale)},  // clkb -> B1
      {2, 2, scaled(1100, scale)},  // clkc -> B3
      {3, 5, scaled(700, scale)},   // clkd -> B6
      {4, 5, scaled(900, scale)},   // clke -> B6
      {5, 1, scaled(1000, scale)},  // clkf -> B2
  };
  cfg.neg_edge_flops = std::max<std::size_t>(2, scaled(22, scale));
  return cfg;
}

SocConfig SocConfig::tiny(std::uint64_t seed) {
  SocConfig cfg;
  cfg.seed = seed;
  cfg.die_um = 600.0;
  cfg.pads_per_rail = 8;
  cfg.scan_chains = 4;
  cfg.neg_edge_flops = 2;
  cfg.primary_inputs = 6;
  cfg.gates_per_flop = 5.0;
  cfg.domain_freq_mhz = {100.0, 33.0};
  cfg.population = {
      {0, 0, 20}, {0, 1, 16}, {0, 2, 18}, {0, 3, 14}, {0, 4, 60}, {0, 5, 20},
      {1, 0, 12},
  };
  return cfg;
}

}  // namespace scap
