// Synthetic SOC generation (the library's Turbo-Eagle stand-in).
//
// The generator builds a deterministic, block-structured gate-level design
// with the structural properties the paper's experiments rely on:
//  - six floorplanned blocks with locality (a block's logic reads mostly its
//    own signals, with a small cross-block "bus" fraction),
//  - six clock domains with a dominant chip-wide domain,
//  - launch paths deep enough that the at-speed switching window spans an
//    appreciable fraction of the cycle (the paper's "STW ~ half the period"),
//  - scan flops everywhere, a few negative-edge ones, unobserved outputs
//    (PIs are unregistered and POs unstrobed during test, as in the paper).
#pragma once

#include "layout/clock_tree.h"
#include "layout/floorplan.h"
#include "layout/parasitics.h"
#include "layout/placement.h"
#include "netlist/netlist.h"
#include "netlist/tech_library.h"
#include "soc/scan_chains.h"
#include "soc/soc_config.h"

namespace scap {

struct SocDesign {
  SocConfig config;
  Netlist netlist;
  Floorplan floorplan;
  Placement placement;
  Parasitics parasitics;
  ClockTree clock_tree;
  ScanChains scan;

  DomainId dominant_domain() const { return 0; }
  double period_ns(DomainId d) const { return config.period_ns(d); }
};

/// Generate just the netlist (no physical design) -- used by unit tests.
Netlist generate_soc_netlist(const SocConfig& cfg);

/// Full flow: netlist, floorplan, placement, extraction, CTS, scan stitch.
SocDesign build_soc(const SocConfig& cfg,
                    const TechLibrary& lib = TechLibrary::generic180());

}  // namespace scap
