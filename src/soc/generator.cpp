#include "soc/generator.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>

#include "util/rng.h"

namespace scap {

namespace {

struct TypePick {
  CellType type;
  double weight;
};

// Cell mix loosely shaped on synthesized control/datapath logic. Two
// competing properties are balanced here:
//  - signal probabilities must stay near 0.5 through deep cones (random
//    testability): inverting cells (NAND/NOR) self-correct the drift that
//    plain AND/OR chains suffer, XOR/MUX preserve it exactly;
//  - the switching propagation factor (fanout x P(input change reaches the
//    output)) must stay near/below 1, or every local disturbance spreads
//    epidemically through its block and drowns the power analysis --
//    masking-rich NAND/NOR dominate and always-propagating INV/XOR are kept
//    scarce, which is also what synthesized netlists look like.
constexpr std::array<TypePick, 16> kMix{{
    {CellType::kNand2, 0.26},
    {CellType::kNor2, 0.16},
    {CellType::kInv, 0.07},
    {CellType::kAnd2, 0.04},
    {CellType::kOr2, 0.04},
    {CellType::kNand3, 0.10},
    {CellType::kNor3, 0.06},
    {CellType::kAnd3, 0.02},
    {CellType::kOr3, 0.02},
    {CellType::kNand4, 0.03},
    {CellType::kNor4, 0.02},
    {CellType::kXor2, 0.05},
    {CellType::kXnor2, 0.02},
    {CellType::kMux2, 0.09},
    {CellType::kBuf, 0.01},
    {CellType::kAnd4, 0.01},
}};

CellType pick_type(Rng& rng) {
  double r = rng.uniform();
  for (const TypePick& tp : kMix) {
    if (r < tp.weight) return tp.type;
    r -= tp.weight;
  }
  return CellType::kNand2;
}

}  // namespace

Netlist generate_soc_netlist(const SocConfig& cfg) {
  Rng rng(cfg.seed);
  Netlist nl;

  // Block/domain extents.
  BlockId max_block = 0;
  for (const auto& p : cfg.population) max_block = std::max(max_block, p.block);
  const std::uint16_t num_blocks = static_cast<std::uint16_t>(max_block + 1);
  nl.set_block_count(num_blocks);
  nl.set_domain_count(static_cast<std::uint8_t>(cfg.num_domains()));

  // Primary inputs (held constant during test; unregistered, as in the paper).
  std::vector<NetId> pis;
  for (std::size_t i = 0; i < cfg.primary_inputs; ++i) {
    pis.push_back(nl.add_input("pi" + std::to_string(i)));
  }

  // Flop Q nets first so gates can read them; flop records come later once
  // their D sources exist.
  struct PendingFlop {
    NetId q;
    DomainId domain;
    BlockId block;
  };
  std::vector<PendingFlop> flops;
  std::vector<std::vector<NetId>> block_sigs(num_blocks);
  std::vector<NetId> all_sigs;
  for (const auto& p : cfg.population) {
    for (std::size_t i = 0; i < p.flops; ++i) {
      const NetId q =
          nl.add_net("q_b" + std::to_string(p.block) + "_" +
                     std::to_string(flops.size()));
      flops.push_back(PendingFlop{q, p.domain, p.block});
      block_sigs[p.block].push_back(q);
      all_sigs.push_back(q);
    }
  }

  // Combinational clouds, generated in interleaved slices so cross-block
  // references span all blocks in both directions.
  std::vector<std::size_t> budget(num_blocks, 0);
  for (const auto& p : cfg.population) {
    budget[p.block] += static_cast<std::size_t>(
        std::round(static_cast<double>(p.flops) * cfg.gates_per_flop));
  }
  std::vector<std::vector<NetId>> block_gate_outs(num_blocks);
  std::vector<std::uint8_t> used;  // per net: consumed as an input
  used.assign(nl.num_nets() + 1, 0);
  auto note_used = [&](NetId n) {
    if (n >= used.size()) used.resize(n + 1, 0);
    used[n] = 1;
  };

  // Track a creation-time logic level per signal so side inputs can be
  // level-matched. Synthesized logic is arrival-balanced by the timing
  // engine; without this, every gate would mix level-0 and level-30 signals
  // and the timing simulation would drown in hazard pulses.
  std::vector<std::uint32_t> sig_level;
  sig_level.assign(nl.num_nets() + 1, 0);
  auto level_of = [&](NetId n) {
    return n < sig_level.size() ? sig_level[n] : 0u;
  };
  auto note_level = [&](NetId n, std::uint32_t lvl) {
    if (n >= sig_level.size()) sig_level.resize(n + 1, 0);
    sig_level[n] = lvl;
  };
  // Per block: nets bucketed by level.
  std::vector<std::vector<std::vector<NetId>>> block_levels(num_blocks);
  for (BlockId b = 0; b < num_blocks; ++b) {
    block_levels[b].resize(1);
    block_levels[b][0] = block_sigs[b];  // flop Qs at level 0
  }

  const double depth_bias = 2.2;  // recency-bias exponent: higher => deeper
  auto pick_block_signal = [&](BlockId b) -> NetId {
    const auto& sigs = block_sigs[b];
    const double u = std::pow(rng.uniform(), depth_bias);
    const std::size_t idx =
        sigs.size() - 1 -
        static_cast<std::size_t>(u * static_cast<double>(sigs.size() - 1));
    return sigs[idx];
  };
  // Side input near a target level (keeps gate input arrivals aligned).
  auto pick_near_level = [&](BlockId b, std::uint32_t target) -> NetId {
    const auto& levels = block_levels[b];
    const std::uint32_t max_lvl =
        static_cast<std::uint32_t>(levels.size()) - 1;
    // A cross-block first input can sit deeper than this block's own logic
    // (target > max_lvl); clamp lo to hi or the window [lo, hi] inverts and
    // the draw below underflows.
    const std::uint32_t hi = std::min(target, max_lvl);
    const std::uint32_t lo = std::min(target > 3 ? target - 3 : 0, hi);
    for (int attempt = 0; attempt < 6; ++attempt) {
      const std::uint32_t lvl =
          lo + static_cast<std::uint32_t>(rng.below(hi - lo + 1));
      if (!levels[lvl].empty()) {
        return levels[lvl][rng.below(levels[lvl].size())];
      }
    }
    return pick_block_signal(b);
  };

  bool work_left = true;
  std::size_t slice = 0;
  while (work_left) {
    work_left = false;
    ++slice;
    for (BlockId b = 0; b < num_blocks; ++b) {
      if (budget[b] == 0) continue;
      work_left = true;
      const std::size_t chunk = std::min<std::size_t>(
          budget[b], std::max<std::size_t>(1, budget[b] / 8 + 1));
      for (std::size_t k = 0; k < chunk; ++k) {
        const CellType t = pick_type(rng);
        const int arity = num_inputs(t);
        std::vector<NetId> ins;
        ins.reserve(static_cast<std::size_t>(arity));
        for (int a = 0; a < arity; ++a) {
          NetId pick = kNullId;
          for (int attempt = 0; attempt < 4; ++attempt) {
            const double r = rng.uniform();
            if (r < cfg.pi_fanin_fraction && !pis.empty()) {
              pick = pis[rng.below(pis.size())];
            } else if (r < cfg.pi_fanin_fraction + cfg.cross_block_fraction) {
              pick = all_sigs[rng.below(all_sigs.size())];
            } else if (a == 0) {
              // First input sets the gate's depth (recency-biased).
              pick = pick_block_signal(b);
            } else {
              // Side inputs arrive at a similar level to the first input.
              pick = pick_near_level(b, level_of(ins[0]));
            }
            if (std::find(ins.begin(), ins.end(), pick) == ins.end()) break;
          }
          ins.push_back(pick);
        }
        const NetId out = nl.add_net();
        nl.add_gate(t, ins, out, b);
        std::uint32_t out_lvl = 0;
        for (NetId in : ins) {
          note_used(in);
          out_lvl = std::max(out_lvl, level_of(in) + 1);
        }
        note_level(out, out_lvl);
        if (out_lvl >= block_levels[b].size()) {
          block_levels[b].resize(out_lvl + 1);
        }
        block_levels[b][out_lvl].push_back(out);
        block_sigs[b].push_back(out);
        block_gate_outs[b].push_back(out);
        all_sigs.push_back(out);
      }
      budget[b] -= chunk;
    }
  }

  // Flop D sources: prefer this block's unused gate outputs (keeps the DAG
  // free of dangling logic), then recency-biased block signals for depth;
  // a small share of flop-to-flop shift paths.
  std::vector<std::vector<NetId>> unused_outs(num_blocks);
  for (BlockId b = 0; b < num_blocks; ++b) {
    for (NetId n : block_gate_outs[b]) {
      if (n >= used.size() || !used[n]) unused_outs[b].push_back(n);
    }
    rng.shuffle(unused_outs[b]);
  }

  std::size_t neg_left = std::min(cfg.neg_edge_flops, flops.size());
  std::size_t flops_left = flops.size();
  for (const PendingFlop& pf : flops) {
    NetId d = kNullId;
    if (!unused_outs[pf.block].empty()) {
      d = unused_outs[pf.block].back();
      unused_outs[pf.block].pop_back();
    } else if (rng.chance(0.05)) {
      d = flops[rng.below(flops.size())].q;  // shift path
    } else if (!block_gate_outs[pf.block].empty()) {
      const auto& outs = block_gate_outs[pf.block];
      const double u = std::pow(rng.uniform(), depth_bias);
      d = outs[outs.size() - 1 -
               static_cast<std::size_t>(u * static_cast<double>(outs.size() - 1))];
    } else {
      d = all_sigs[rng.below(all_sigs.size())];
    }
    note_used(d);
    if (rng.chance(cfg.enabled_flop_fraction)) {
      // Enable-gated register: D = enable ? new_data : Q.
      const NetId enable = pick_block_signal(pf.block);
      const NetId mux_out = nl.add_net();
      const NetId mux_ins[] = {enable, pf.q, d};
      nl.add_gate(CellType::kMux2, mux_ins, mux_out, pf.block);
      note_used(enable);
      note_used(pf.q);
      d = mux_out;
      note_used(d);
    }
    // Uniform random spread of negative-edge flops over the remainder.
    const bool neg = neg_left > 0 && rng.below(flops_left) < neg_left;
    if (neg) --neg_left;
    --flops_left;
    nl.add_flop(d, pf.q, pf.domain, pf.block, neg);
  }

  // Any still-unused outputs become (unstrobed) chip outputs.
  for (BlockId b = 0; b < num_blocks; ++b) {
    for (NetId n : unused_outs[b]) nl.mark_output(n);
  }

  nl.finalize();
  return nl;
}

SocDesign build_soc(const SocConfig& cfg, const TechLibrary& lib) {
  Netlist nl = generate_soc_netlist(cfg);
  Floorplan fp = Floorplan::turbo_eagle_like(cfg.die_um, cfg.pads_per_rail);
  Rng rng(cfg.seed ^ 0x9e3779b97f4a7c15ULL);
  Placement pl = Placement::place(nl, fp, rng);
  Parasitics par = Parasitics::extract(nl, pl, lib);
  ClockTree ct = ClockTree::synthesize(nl, pl, lib);
  ScanChains sc = ScanChains::build(nl, pl, cfg.scan_chains);
  return SocDesign{cfg,           std::move(nl), std::move(fp), std::move(pl),
                   std::move(par), std::move(ct), std::move(sc)};
}

}  // namespace scap
