// Per-pattern dynamic IR-drop analysis (paper Section 2.4).
//
// The toggle trace of one launch-to-capture simulation is converted into
// per-instance average currents over the pattern's switching window (rising
// toggles draw from VDD, falling toggles dump into VSS), and both rails are
// solved on the resistive grid. The result carries:
//  - worst / per-block IR-drop numbers (Table 4, Figure 3),
//  - a per-gate voltage droop vector (VDD loss + VSS bounce at the gate's
//    location) that drives the delay-scaled re-simulation of Figure 7.
#pragma once

#include <vector>

#include "layout/clock_tree.h"
#include "layout/floorplan.h"
#include "layout/parasitics.h"
#include "layout/placement.h"
#include "netlist/netlist.h"
#include "netlist/tech_library.h"
#include "power/power_grid.h"
#include "sim/event_sim.h"

namespace scap {

struct DynamicIrOptions {
  /// Include the active domain's clock-tree switching (one rise + one fall
  /// per launch-capture window) in the rail currents.
  bool include_clock_tree = true;
};

struct DynamicIrReport {
  double window_ns = 0.0;
  GridSolution vdd_solution;
  GridSolution vss_solution;
  double worst_vdd_v = 0.0;
  double worst_vss_v = 0.0;
  std::vector<double> block_worst_vdd_v;
  std::vector<double> block_avg_vdd_v;
  std::vector<double> block_worst_vss_v;

  /// Per-gate / per-flop local droop [V] = VDD drop + VSS bounce, for the
  /// ScaledCellDelay = Delay * (1 + k_volt * dV) re-simulation.
  std::vector<double> gate_droop_v;
  std::vector<double> flop_droop_v;

  /// Droop at an arbitrary location (used for clock buffers).
  double droop_at(Point p) const {
    return vdd_solution.drop_at(p) + vss_solution.drop_at(p);
  }

  /// True only when both rail solves converged; a false report may
  /// understate every droop number above (the solves already bumped
  /// "power.grid_solve_nonconverged" and logged a warning).
  bool rails_converged() const {
    return vdd_solution.converged && vss_solution.converged;
  }
};

DynamicIrReport analyze_pattern_ir(const Netlist& nl, const Placement& pl,
                                   const Parasitics& par,
                                   const TechLibrary& lib, const Floorplan& fp,
                                   const PowerGrid& grid, const SimTrace& trace,
                                   const ClockTree* clock_tree,
                                   DomainId active_domain,
                                   const DynamicIrOptions& opt = {});

/// Streaming front half of analyze_pattern_ir: bins the switched charge [pC]
/// of every committed toggle onto its driving instance and rail directly off
/// the simulator, so the grid solve needs no toggle trace. Charge totals and
/// the analysis window are bit-identical to the trace-based path (same
/// commit-order accumulation, same stw). Reuses its vectors across passes.
class DynamicIrBinner final : public ToggleSink {
 public:
  DynamicIrBinner(const Netlist& nl, const Parasitics& par,
                  const TechLibrary& lib)
      : nl_(&nl), par_(&par), vdd_(lib.vdd()) {}

  void on_begin(std::span<const std::uint8_t> initial_net_values) override;
  void on_toggle(NetId net, double t_ns, bool rising) override;
  void on_end(const SimStats& stats) override;

  double window_ns() const { return window_ns_; }
  std::span<const double> gate_q_vdd_pc() const { return gate_q_vdd_; }
  std::span<const double> gate_q_vss_pc() const { return gate_q_vss_; }
  std::span<const double> flop_q_vdd_pc() const { return flop_q_vdd_; }
  std::span<const double> flop_q_vss_pc() const { return flop_q_vss_; }

 private:
  const Netlist* nl_;
  const Parasitics* par_;
  double vdd_;
  double window_ns_ = 0.0;
  std::vector<double> gate_q_vdd_;
  std::vector<double> gate_q_vss_;
  std::vector<double> flop_q_vdd_;
  std::vector<double> flop_q_vss_;
};

/// Grid-solve half of the analysis over charges binned by a DynamicIrBinner.
/// analyze_pattern_ir(trace) == analyze_pattern_ir(binner) when the binner
/// observed the simulation that produced the trace.
DynamicIrReport analyze_pattern_ir(const Netlist& nl, const Placement& pl,
                                   const TechLibrary& lib, const Floorplan& fp,
                                   const PowerGrid& grid,
                                   const DynamicIrBinner& binned,
                                   const ClockTree* clock_tree,
                                   DomainId active_domain,
                                   const DynamicIrOptions& opt = {});

}  // namespace scap
