// Vector-less statistical power and IR-drop analysis (paper Section 2.2).
//
// Every instance is assumed to toggle with a uniform probability per cycle of
// its clock domain. Case1 averages the resulting current over the full cycle;
// Case2 concentrates the same switching into a window of half the cycle (the
// average switching-time-frame observation from the paper's earlier b19
// experiments), doubling power and current during the window. The per-block
// Case2 power numbers are the SCAP thresholds used to screen test patterns.
#pragma once

#include <span>
#include <vector>

#include "layout/clock_tree.h"
#include "layout/floorplan.h"
#include "layout/parasitics.h"
#include "layout/placement.h"
#include "netlist/netlist.h"
#include "netlist/tech_library.h"
#include "power/power_grid.h"

namespace scap {

struct StatisticalOptions {
  /// Net toggle probability per cycle. Designers typically assume 20% for
  /// functional mode; the paper deliberately uses a pessimistic 30% because
  /// the threshold feeds test-pattern screening.
  double toggle_prob = 0.30;
  /// Fraction of the cycle the switching is concentrated into:
  /// 1.0 = Case1 (full cycle), 0.5 = Case2 (average STW).
  double window_fraction = 1.0;
  /// Include clock-tree switching (toggles every cycle regardless of data).
  bool include_clock_tree = true;
};

struct StatisticalReport {
  StatisticalOptions options;
  /// Average switching power during the analysis window [mW].
  std::vector<double> block_power_mw;
  double chip_power_mw = 0.0;
  /// Worst average IR-drop inside each block / on the whole die [V].
  std::vector<double> block_worst_vdd_v;
  std::vector<double> block_worst_vss_v;
  double chip_worst_vdd_v = 0.0;
  double chip_worst_vss_v = 0.0;
  GridSolution vdd_solution;
  GridSolution vss_solution;

  /// True only when both rail solves converged; a false report may
  /// understate every IR number above (the solves already bumped
  /// "power.grid_solve_nonconverged" and logged a warning).
  bool rails_converged() const {
    return vdd_solution.converged && vss_solution.converged;
  }
};

StatisticalReport analyze_statistical(
    const Netlist& nl, const Placement& pl, const Parasitics& par,
    const TechLibrary& lib, const Floorplan& fp, const PowerGrid& grid,
    std::span<const double> domain_freq_mhz, const ClockTree* clock_tree,
    const StatisticalOptions& opt);

}  // namespace scap
