#include "power/multigrid.h"

#include <algorithm>
#include <cmath>

#include "rt/parallel.h"

namespace scap::mg {

namespace {

/// Same inline threshold as the SOR solver: below this many nodes the pool
/// dispatch overhead dominates a sweep.
constexpr std::size_t kParallelNodeThreshold = 8192;
constexpr std::size_t kRowGrain = 16;

/// Restriction / prolongation stencil weight along one axis: 1 on the
/// coarse point itself, 1/2 one fine step away.
constexpr double kW[2] = {1.0, 0.5};

std::size_t count_active(const Level& l) {
  std::size_t c = 0;
  for (const std::uint8_t a : l.active) c += a ? 1 : 0;
  return c;
}

void compute_diag(Level& l) {
  l.diag_vdd.assign(l.n, 1.0);
  l.diag_vss.assign(l.n, 1.0);
  for (std::uint32_t iy = 0; iy < l.ny; ++iy) {
    for (std::uint32_t ix = 0; ix < l.nx; ++ix) {
      const std::size_t i = static_cast<std::size_t>(iy) * l.nx + ix;
      if (!l.active[i]) continue;
      double gsum = 0.0;
      if (ix > 0) gsum += l.g_h[iy * (l.nx - 1) + (ix - 1)];
      if (ix + 1 < l.nx) gsum += l.g_h[iy * (l.nx - 1) + ix];
      if (iy > 0) gsum += l.g_v[(iy - 1) * l.nx + ix];
      if (iy + 1 < l.ny) gsum += l.g_v[iy * l.nx + ix];
      const double dv = gsum + l.anchor_vdd[i];
      const double ds = gsum + l.anchor_vss[i];
      // A node with no wires and no anchor on some rail has no equation on
      // that rail; deactivating it keeps every remaining diagonal positive.
      if (dv <= 0.0 || ds <= 0.0) {
        l.active[i] = 0;
        continue;
      }
      l.diag_vdd[i] = dv;
      l.diag_vss[i] = ds;
    }
  }
}

Level make_fine_level(const PdnTopology& t) {
  Level l;
  l.nx = t.nx;
  l.ny = t.ny;
  l.n = static_cast<std::size_t>(t.nx) * t.ny;
  l.g_h = t.g_h;
  l.g_v = t.g_v;
  l.active = t.active;
  l.anchor_vdd = t.vdd_pad_g;
  l.anchor_vss = t.vss_pad_g;
  compute_diag(l);
  return l;
}

Level coarsen(const Level& f) {
  Level c;
  c.nx = (f.nx + 1) / 2;
  c.ny = (f.ny + 1) / 2;
  c.n = static_cast<std::size_t>(c.nx) * c.ny;
  c.g_h.assign(static_cast<std::size_t>(c.nx - 1) * c.ny, 0.0);
  c.g_v.assign(static_cast<std::size_t>(c.nx) * (c.ny - 1), 0.0);
  c.active.assign(c.n, 0);
  c.anchor_vdd.assign(c.n, 0.0);
  c.anchor_vss.assign(c.n, 0.0);

  for (std::uint32_t J = 0; J < c.ny; ++J) {
    for (std::uint32_t I = 0; I < c.nx; ++I) {
      const std::size_t ci = static_cast<std::size_t>(J) * c.nx + I;
      const std::uint32_t fx = 2 * I, fy = 2 * J;
      if (!f.active[static_cast<std::size_t>(fy) * f.nx + fx]) continue;
      c.active[ci] = 1;
      // Pad anchors aggregate under the restriction weights (the transpose
      // of bilinear interpolation); total anchor conductance is conserved.
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const std::int64_t gx = static_cast<std::int64_t>(fx) + dx;
          const std::int64_t gy = static_cast<std::int64_t>(fy) + dy;
          if (gx < 0 || gy < 0 || gx >= f.nx || gy >= f.ny) continue;
          const double w = kW[dx ? 1 : 0] * kW[dy ? 1 : 0];
          const std::size_t fi = static_cast<std::size_t>(gy) * f.nx + gx;
          c.anchor_vdd[ci] += w * f.anchor_vdd[fi];
          c.anchor_vss[ci] += w * f.anchor_vss[fi];
        }
      }
    }
  }

  // A coarse edge spans two fine edges in series; doubling the series
  // conductance keeps a uniform 2D sheet exactly scale-invariant (the
  // re-discretized coarse operator equals the fine one on uniform meshes).
  auto series2 = [](double g1, double g2) {
    return (g1 > 0.0 && g2 > 0.0) ? 2.0 * (g1 * g2) / (g1 + g2) : 0.0;
  };
  for (std::uint32_t J = 0; J < c.ny; ++J) {
    for (std::uint32_t I = 0; I + 1 < c.nx; ++I) {
      const std::size_t a = static_cast<std::size_t>(J) * c.nx + I;
      if (!c.active[a] || !c.active[a + 1]) continue;
      const std::uint32_t fy = 2 * J;
      c.g_h[J * (c.nx - 1) + I] = series2(f.g_h[fy * (f.nx - 1) + 2 * I],
                                          f.g_h[fy * (f.nx - 1) + 2 * I + 1]);
    }
  }
  for (std::uint32_t J = 0; J + 1 < c.ny; ++J) {
    for (std::uint32_t I = 0; I < c.nx; ++I) {
      const std::size_t a = static_cast<std::size_t>(J) * c.nx + I;
      if (!c.active[a] || !c.active[a + c.nx]) continue;
      const std::uint32_t fx = 2 * I;
      c.g_v[J * c.nx + I] = series2(f.g_v[(2 * J) * f.nx + fx],
                                    f.g_v[(2 * J + 1) * f.nx + fx]);
    }
  }
  compute_diag(c);
  return c;
}

}  // namespace

Hierarchy::Hierarchy(const PdnTopology& topo, std::uint32_t coarsest_nodes) {
  levels_.push_back(make_fine_level(topo));
  while (count_active(levels_.back()) > coarsest_nodes &&
         levels_.back().nx >= 3 && levels_.back().ny >= 3) {
    Level c = coarsen(levels_.back());
    if (count_active(c) == 0) break;
    levels_.push_back(std::move(c));
  }
  factor_coarsest(true, dense_vdd_);
  factor_coarsest(false, dense_vss_);
}

void Hierarchy::factor_coarsest(bool vdd_rail, DenseSolve& out) const {
  const Level& l = levels_.back();
  const std::vector<double>& anchor = vdd_rail ? l.anchor_vdd : l.anchor_vss;
  out.ids.assign(l.n, 0);
  std::vector<std::uint32_t> nodes;
  for (std::size_t i = 0; i < l.n; ++i) {
    if (l.active[i]) {
      nodes.push_back(static_cast<std::uint32_t>(i));
      out.ids[i] = static_cast<std::uint32_t>(nodes.size());
    }
  }
  const std::uint32_t n = static_cast<std::uint32_t>(nodes.size());
  out.n = n;
  out.lu.assign(static_cast<std::size_t>(n) * n, 0.0);
  auto at = [&](std::uint32_t r, std::uint32_t cc) -> double& {
    return out.lu[static_cast<std::size_t>(r) * n + cc];
  };
  for (std::uint32_t r = 0; r < n; ++r) {
    const std::uint32_t i = nodes[r];
    const std::uint32_t ix = i % l.nx, iy = i / l.nx;
    double gsum = anchor[i];
    auto couple = [&](std::uint32_t j, double g) {
      if (g <= 0.0) return;
      gsum += g;
      if (out.ids[j]) at(r, out.ids[j] - 1) = -g;
    };
    if (ix > 0) couple(i - 1, l.g_h[iy * (l.nx - 1) + (ix - 1)]);
    if (ix + 1 < l.nx) couple(i + 1, l.g_h[iy * (l.nx - 1) + ix]);
    if (iy > 0) couple(i - l.nx, l.g_v[(iy - 1) * l.nx + ix]);
    if (iy + 1 < l.ny) couple(i + l.nx, l.g_v[iy * l.nx + ix]);
    at(r, r) = gsum;
  }
  // In-place LU with partial pivoting. A vanishing pivot means a floating
  // (anchorless on this rail) component slipped through coarsening; pinning
  // that unknown to zero is a valid particular correction and keeps the
  // factorization deterministic.
  out.perm.assign(n, 0);
  for (std::uint32_t k = 0; k < n; ++k) {
    std::uint32_t p = k;
    for (std::uint32_t r = k + 1; r < n; ++r) {
      if (std::abs(at(r, k)) > std::abs(at(p, k))) p = r;
    }
    out.perm[k] = p;
    if (p != k) {
      for (std::uint32_t cc = 0; cc < n; ++cc) std::swap(at(k, cc), at(p, cc));
    }
    if (std::abs(at(k, k)) < 1e-300) {
      for (std::uint32_t cc = 0; cc < n; ++cc) at(k, cc) = cc == k ? 1.0 : 0.0;
      for (std::uint32_t r = k + 1; r < n; ++r) at(r, k) = 0.0;
      continue;
    }
    const double inv = 1.0 / at(k, k);
    for (std::uint32_t r = k + 1; r < n; ++r) {
      const double m = at(r, k) * inv;
      if (m == 0.0) continue;
      at(r, k) = m;
      for (std::uint32_t cc = k + 1; cc < n; ++cc) at(r, cc) -= m * at(k, cc);
    }
  }
}

void Hierarchy::solve_coarsest(const DenseSolve& ds, std::span<const double> b,
                               std::vector<double>& x) const {
  const Level& l = levels_.back();
  const std::uint32_t n = ds.n;
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < l.n; ++i) {
    if (ds.ids[i]) y[ds.ids[i] - 1] = b[i];
  }
  auto at = [&](std::uint32_t r, std::uint32_t cc) {
    return ds.lu[static_cast<std::size_t>(r) * n + cc];
  };
  for (std::uint32_t k = 0; k < n; ++k) {
    if (ds.perm[k] != k) std::swap(y[k], y[ds.perm[k]]);
    for (std::uint32_t r = k + 1; r < n; ++r) y[r] -= at(r, k) * y[k];
  }
  for (std::uint32_t k = n; k-- > 0;) {
    for (std::uint32_t cc = k + 1; cc < n; ++cc) y[k] -= at(k, cc) * y[cc];
    y[k] /= at(k, k);
  }
  std::fill(x.begin(), x.end(), 0.0);
  for (std::size_t i = 0; i < l.n; ++i) {
    if (ds.ids[i]) x[i] = y[ds.ids[i] - 1];
  }
}

void Hierarchy::smooth(std::size_t li, bool vdd_rail, std::span<const double> b,
                       std::vector<double>& x, std::uint32_t sweeps,
                       bool par) const {
  const Level& l = levels_[li];
  const std::vector<double>& diag = vdd_rail ? l.diag_vdd : l.diag_vss;
  const std::uint32_t nx = l.nx, ny = l.ny;
  for (std::uint32_t s = 0; s < sweeps; ++s) {
    for (int color = 0; color < 2; ++color) {
      auto body = [&](std::size_t y0, std::size_t y1) {
        for (std::uint32_t iy = static_cast<std::uint32_t>(y0);
             iy < static_cast<std::uint32_t>(y1); ++iy) {
          for (std::uint32_t ix = (iy + static_cast<std::uint32_t>(color)) & 1u;
               ix < nx; ix += 2) {
            const std::size_t i = static_cast<std::size_t>(iy) * nx + ix;
            if (!l.active[i]) continue;
            double flow = b[i];
            if (ix > 0) flow += l.g_h[iy * (nx - 1) + (ix - 1)] * x[i - 1];
            if (ix + 1 < nx) flow += l.g_h[iy * (nx - 1) + ix] * x[i + 1];
            if (iy > 0) flow += l.g_v[(iy - 1) * nx + ix] * x[i - nx];
            if (iy + 1 < ny) flow += l.g_v[iy * nx + ix] * x[i + nx];
            x[i] = flow / diag[i];
          }
        }
      };
      if (par) {
        rt::parallel_for(ny, body, {.grain = kRowGrain});
      } else {
        body(0, ny);
      }
    }
  }
}

void Hierarchy::residual(std::size_t li, bool vdd_rail,
                         std::span<const double> b, std::span<const double> x,
                         std::vector<double>& r, bool par) const {
  const Level& l = levels_[li];
  const std::vector<double>& diag = vdd_rail ? l.diag_vdd : l.diag_vss;
  const std::uint32_t nx = l.nx, ny = l.ny;
  auto body = [&](std::size_t y0, std::size_t y1) {
    for (std::uint32_t iy = static_cast<std::uint32_t>(y0);
         iy < static_cast<std::uint32_t>(y1); ++iy) {
      for (std::uint32_t ix = 0; ix < nx; ++ix) {
        const std::size_t i = static_cast<std::size_t>(iy) * nx + ix;
        if (!l.active[i]) {
          r[i] = 0.0;
          continue;
        }
        double flow = 0.0;
        if (ix > 0) flow += l.g_h[iy * (nx - 1) + (ix - 1)] * x[i - 1];
        if (ix + 1 < nx) flow += l.g_h[iy * (nx - 1) + ix] * x[i + 1];
        if (iy > 0) flow += l.g_v[(iy - 1) * nx + ix] * x[i - nx];
        if (iy + 1 < ny) flow += l.g_v[iy * nx + ix] * x[i + nx];
        r[i] = b[i] - (diag[i] * x[i] - flow);
      }
    }
  };
  if (par) {
    rt::parallel_for(ny, body, {.grain = kRowGrain});
  } else {
    body(0, ny);
  }
}

void Hierarchy::restrict_to(std::size_t lc, std::span<const double> fine_r,
                            std::vector<double>& coarse_b, bool par) const {
  const Level& c = levels_[lc];
  const Level& f = levels_[lc - 1];
  auto body = [&](std::size_t j0, std::size_t j1) {
    for (std::uint32_t J = static_cast<std::uint32_t>(j0);
         J < static_cast<std::uint32_t>(j1); ++J) {
      for (std::uint32_t I = 0; I < c.nx; ++I) {
        const std::size_t ci = static_cast<std::size_t>(J) * c.nx + I;
        if (!c.active[ci]) {
          coarse_b[ci] = 0.0;
          continue;
        }
        const std::uint32_t fx = 2 * I, fy = 2 * J;
        double acc = 0.0;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            const std::int64_t gx = static_cast<std::int64_t>(fx) + dx;
            const std::int64_t gy = static_cast<std::int64_t>(fy) + dy;
            if (gx < 0 || gy < 0 || gx >= f.nx || gy >= f.ny) continue;
            acc += kW[dx ? 1 : 0] * kW[dy ? 1 : 0] *
                   fine_r[static_cast<std::size_t>(gy) * f.nx + gx];
          }
        }
        coarse_b[ci] = acc;
      }
    }
  };
  if (par) {
    rt::parallel_for(c.ny, body, {.grain = kRowGrain});
  } else {
    body(0, c.ny);
  }
}

void Hierarchy::prolong_add(std::size_t lf, std::span<const double> coarse_x,
                            std::vector<double>& fine_x, bool par) const {
  const Level& f = levels_[lf];
  const Level& c = levels_[lf + 1];
  auto body = [&](std::size_t y0, std::size_t y1) {
    for (std::uint32_t iy = static_cast<std::uint32_t>(y0);
         iy < static_cast<std::uint32_t>(y1); ++iy) {
      const std::uint32_t J0 = iy / 2;
      const bool oy = (iy & 1u) != 0;
      for (std::uint32_t ix = 0; ix < f.nx; ++ix) {
        const std::size_t i = static_cast<std::size_t>(iy) * f.nx + ix;
        if (!f.active[i]) continue;
        const std::uint32_t I0 = ix / 2;
        const bool ox = (ix & 1u) != 0;
        double acc = 0.0, wt = 0.0;
        for (int pj = 0; pj <= (oy ? 1 : 0); ++pj) {
          const std::uint32_t J = J0 + static_cast<std::uint32_t>(pj);
          if (J >= c.ny) continue;
          const double wy = oy ? 0.5 : 1.0;
          for (int pi = 0; pi <= (ox ? 1 : 0); ++pi) {
            const std::uint32_t I = I0 + static_cast<std::uint32_t>(pi);
            if (I >= c.nx) continue;
            const double w = wy * (ox ? 0.5 : 1.0);
            const std::size_t ci = static_cast<std::size_t>(J) * c.nx + I;
            if (!c.active[ci]) continue;
            acc += w * coarse_x[ci];
            wt += w;
          }
        }
        if (wt > 0.0) fine_x[i] += acc / wt;
      }
    }
  };
  if (par) {
    rt::parallel_for(f.ny, body, {.grain = kRowGrain});
  } else {
    body(0, f.ny);
  }
}

SolveResult Hierarchy::solve(std::span<const double> b, bool vdd_rail,
                             double tol_v, std::uint32_t max_cycles,
                             std::uint32_t pre_sweeps,
                             std::uint32_t post_sweeps,
                             std::vector<double>& x) const {
  const std::size_t depth = levels_.size();
  const DenseSolve& ds = vdd_rail ? dense_vdd_ : dense_vss_;

  // All per-solve state is local: the statistical analysis solves both rails
  // concurrently on one hierarchy.
  std::vector<std::vector<double>> xs(depth), bs(depth), rs(depth);
  std::vector<char> par(depth);
  const bool pool_ok =
      rt::concurrency() > 1 && !rt::ThreadPool::on_worker_thread();
  for (std::size_t l = 0; l < depth; ++l) {
    const std::size_t n = levels_[l].n;
    xs[l].assign(n, 0.0);
    bs[l].assign(n, 0.0);
    rs[l].assign(n, 0.0);
    par[l] = pool_ok && n >= kParallelNodeThreshold;
  }
  std::copy(b.begin(), b.end(), bs[0].begin());

  auto vcycle = [&](auto&& self, std::size_t l) -> void {
    if (l + 1 == depth) {
      solve_coarsest(ds, bs[l], xs[l]);
      return;
    }
    smooth(l, vdd_rail, bs[l], xs[l], pre_sweeps, par[l]);
    residual(l, vdd_rail, bs[l], xs[l], rs[l], par[l]);
    restrict_to(l + 1, rs[l], bs[l + 1], par[l + 1]);
    std::fill(xs[l + 1].begin(), xs[l + 1].end(), 0.0);
    self(self, l + 1);
    // Second coarse visit (W-cycle). With a single visit the contraction
    // degrades with depth (0.18 two-grid -> 0.61 at seven levels on a
    // 512x512 sheet: the rediscretized coarse problems are left under-
    // solved); revisiting keeps it depth-independent at ~0.23. The coarse
    // levels are 4x smaller each, so the extra visits cost well under one
    // fine-level smoothing pass in total.
    if (l + 2 < depth) self(self, l + 1);
    prolong_add(l, xs[l + 1], xs[l], par[l]);
    smooth(l, vdd_rail, bs[l], xs[l], post_sweeps, par[l]);
  };

  SolveResult res;
  std::vector<double> prev(levels_[0].n, 0.0);
  for (std::uint32_t cycle = 0; cycle < max_cycles; ++cycle) {
    std::copy(xs[0].begin(), xs[0].end(), prev.begin());
    vcycle(vcycle, 0);
    double delta = 0.0;
    for (std::size_t i = 0; i < prev.size(); ++i) {
      delta = std::max(delta, std::abs(xs[0][i] - prev[i]));
    }
    res.cycles = cycle + 1;
    res.final_delta_v = delta;
    if (delta < tol_v) {
      res.converged = true;
      break;
    }
  }
  x = std::move(xs[0]);
  return res;
}

}  // namespace scap::mg
