#include "power/statistical.h"

#include <cassert>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "power/activity.h"
#include "rt/parallel.h"

namespace scap {

StatisticalReport analyze_statistical(
    const Netlist& nl, const Placement& pl, const Parasitics& par,
    const TechLibrary& lib, const Floorplan& fp, const PowerGrid& grid,
    std::span<const double> domain_freq_mhz, const ClockTree* clock_tree,
    const StatisticalOptions& opt) {
  SCAP_TRACE_SCOPE("power.statistical");
  assert(domain_freq_mhz.size() >= nl.domain_count());

  StatisticalReport rep;
  rep.options = opt;
  rep.block_power_mw.assign(nl.block_count(), 0.0);

  std::vector<Point> where;
  std::vector<double> vdd_amps;
  std::vector<double> vss_amps;
  where.reserve(nl.num_gates() + nl.num_flops());
  vdd_amps.reserve(where.capacity());
  vss_amps.reserve(where.capacity());

  const double vdd = lib.vdd();
  const double wf = opt.window_fraction;

  // P_mw = tp * f_MHz * C_pF * VDD^2 * 1e-3 / window_fraction.
  // Rail current: half the toggles rise (VDD), half fall (VSS):
  // I_A = 0.5 * tp * f_Hz * C_F * VDD / window_fraction.
  auto account = [&](Point pos, BlockId block, double c_pf, double f_mhz,
                     double toggles_per_cycle) {
    const double p_mw = toggles_per_cycle * f_mhz * c_pf * vdd * vdd * 1e-3 / wf;
    rep.chip_power_mw += p_mw;
    if (block < rep.block_power_mw.size()) rep.block_power_mw[block] += p_mw;
    const double i_a =
        0.5 * toggles_per_cycle * (f_mhz * 1e6) * (c_pf * 1e-12) * vdd / wf;
    where.push_back(pos);
    vdd_amps.push_back(i_a);
    vss_amps.push_back(i_a);
  };

  const std::vector<DomainId> gate_domain = assign_gate_domains(nl);
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    account(pl.gate_pos(g), nl.gate(g).block, par.gate_load_pf(nl, g),
            domain_freq_mhz[gate_domain[g]], opt.toggle_prob);
  }
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    const Flop& fr = nl.flop(f);
    account(pl.flop_pos(f), fr.block, par.flop_load_pf(nl, f),
            domain_freq_mhz[fr.domain], opt.toggle_prob);
  }
  if (opt.include_clock_tree && clock_tree != nullptr) {
    for (const ClockBuffer& b : clock_tree->buffers()) {
      const std::size_t blk = fp.block_at(b.pos);
      account(b.pos,
              blk < nl.block_count() ? static_cast<BlockId>(blk)
                                     : static_cast<BlockId>(0),
              b.load_pf, domain_freq_mhz[b.domain], /*toggles_per_cycle=*/2.0);
    }
  }

  // The two rails are independent linear solves over the same injection
  // sites; run them as a pair of rt tasks. Each solve writes only its own
  // GridSolution, so the pairing cannot perturb either result.
  rt::parallel_invoke(
      [&] { rep.vdd_solution = grid.solve(where, vdd_amps, /*vdd_rail=*/true); },
      [&] { rep.vss_solution = grid.solve(where, vss_amps, /*vdd_rail=*/false); });

  rep.block_worst_vdd_v.resize(nl.block_count());
  rep.block_worst_vss_v.resize(nl.block_count());
  rt::parallel_for(
      nl.block_count(),
      [&](std::size_t b0, std::size_t b1) {
        for (std::size_t b = b0; b < b1; ++b) {
          const Rect r = b < fp.block_count() ? fp.block(b).rect : fp.die();
          rep.block_worst_vdd_v[b] = rep.vdd_solution.worst_in(r);
          rep.block_worst_vss_v[b] = rep.vss_solution.worst_in(r);
        }
      },
      rt::ForOptions{.grain = 1, .min_items = 2});
  rep.chip_worst_vdd_v = rep.vdd_solution.worst();
  rep.chip_worst_vss_v = rep.vss_solution.worst();
  obs::count("power.statistical_runs");
  obs::count("power.grid_solves", 2);  // one per rail
  return rep;
}

}  // namespace scap
