#include "power/power_grid.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/metrics.h"
#include "power/multigrid.h"
#include "rt/parallel.h"

namespace scap {

double GridSolution::drop_at(Point p) const {
  // Map p to fractional grid coordinates; clamp to the node lattice.
  const double fx = (p.x - die.x0) / die.width() * (nx - 1);
  const double fy = (p.y - die.y0) / die.height() * (ny - 1);
  const double cx = std::clamp(fx, 0.0, static_cast<double>(nx - 1));
  const double cy = std::clamp(fy, 0.0, static_cast<double>(ny - 1));
  const auto ix = static_cast<std::uint32_t>(cx);
  const auto iy = static_cast<std::uint32_t>(cy);
  const std::uint32_t ix1 = std::min(ix + 1, nx - 1);
  const std::uint32_t iy1 = std::min(iy + 1, ny - 1);
  const double tx = cx - ix;
  const double ty = cy - iy;
  const double v00 = node(ix, iy), v10 = node(ix1, iy);
  const double v01 = node(ix, iy1), v11 = node(ix1, iy1);
  return (1 - tx) * (1 - ty) * v00 + tx * (1 - ty) * v10 +
         (1 - tx) * ty * v01 + tx * ty * v11;
}

double GridSolution::worst() const {
  double m = 0.0;
  for (double d : drop_v) m = std::max(m, d);
  return m;
}

double GridSolution::worst_in(const Rect& r) const {
  double m = 0.0;
  for (std::uint32_t iy = 0; iy < ny; ++iy) {
    for (std::uint32_t ix = 0; ix < nx; ++ix) {
      const Point p{die.x0 + die.width() * ix / (nx - 1),
                    die.y0 + die.height() * iy / (ny - 1)};
      if (r.contains(p)) m = std::max(m, node(ix, iy));
    }
  }
  return m;
}

double GridSolution::average_in(const Rect& r) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::uint32_t iy = 0; iy < ny; ++iy) {
    for (std::uint32_t ix = 0; ix < nx; ++ix) {
      const Point p{die.x0 + die.width() * ix / (nx - 1),
                    die.y0 + die.height() * iy / (ny - 1)};
      if (r.contains(p)) {
        sum += node(ix, iy);
        ++n;
      }
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

PowerGrid::PowerGrid(const Floorplan& fp, PowerGridOptions opt)
    : opt_(opt), die_(fp.die()) {
  topo_ = PdnTopology::uniform(opt_.nx, opt_.ny, 1.0 / opt_.segment_res_ohm);
  const double gpad = 1.0 / opt_.pad_res_ohm;
  for (const PowerPad& pad : fp.pads()) {
    topo_.add_pad_at(die_, pad.pos, pad.is_vdd, gpad);
  }
  topo_.finalize();
  init_solver();
}

PowerGrid::PowerGrid(const Rect& die, PowerGridOptions opt, PdnTopology topo)
    : opt_(opt), die_(die), topo_(std::move(topo)) {
  opt_.nx = topo_.nx;
  opt_.ny = topo_.ny;
  init_solver();
}

void PowerGrid::init_solver() {
  resolved_ = opt_.solver;
  if (resolved_ == GridSolver::kAuto) {
    // SOR converges comfortably on small meshes and keeps its decade of
    // bit-identical history there; multigrid takes over where SOR's
    // iteration count (and wall clock) explodes.
    resolved_ = std::min(opt_.nx, opt_.ny) >= 64 ? GridSolver::kMultigrid
                                                 : GridSolver::kSor;
  }
  if (resolved_ == GridSolver::kMultigrid) {
    mg_ = std::make_shared<mg::Hierarchy>(topo_,
                                          std::max(1u, opt_.mg_coarsest_nodes));
  }
}

std::uint32_t PowerGrid::nearest_node(Point p) const {
  const double fx = (p.x - die_.x0) / die_.width() * (opt_.nx - 1);
  const double fy = (p.y - die_.y0) / die_.height() * (opt_.ny - 1);
  const auto ix = static_cast<std::uint32_t>(
      std::clamp(std::lround(fx), 0l, static_cast<long>(opt_.nx - 1)));
  const auto iy = static_cast<std::uint32_t>(
      std::clamp(std::lround(fy), 0l, static_cast<long>(opt_.ny - 1)));
  return node_index(ix, iy);
}

std::vector<double> PowerGrid::gather_currents(
    std::span<const Point> where, std::span<const double> amps) const {
  const std::size_t n = static_cast<std::size_t>(opt_.nx) * opt_.ny;
  std::vector<double> current(n, 0.0);
  for (std::size_t i = 0; i < where.size(); ++i) {
    // Loads that land inside a void snap to the nearest surviving node
    // (identity on uniform meshes).
    current[topo_.snap[nearest_node(where[i])]] += amps[i];
  }
  return current;
}

GridSolution PowerGrid::solve(std::span<const Point> where,
                              std::span<const double> amps,
                              bool vdd_rail) const {
  const std::vector<double> current = gather_currents(where, amps);
  GridSolution sol = resolved_ == GridSolver::kMultigrid
                         ? solve_multigrid(current, vdd_rail)
                         : solve_sor(current, vdd_rail);
  obs::count("power.grid_solves_total");
  if (!sol.converged) {
    obs::count("power.grid_solve_nonconverged");
    std::fprintf(stderr,
                 "scapgen: warning: power-grid solve stopped non-converged "
                 "after %u iterations (residual %.3e V > tol %.3e V); the IR "
                 "map may understate drops\n",
                 sol.iterations, sol.final_delta_v, opt_.tolerance_v);
  }
  return sol;
}

GridSolution PowerGrid::solve_sor(std::span<const double> current,
                                  bool vdd_rail) const {
  const std::uint32_t nx = opt_.nx, ny = opt_.ny;
  const std::size_t n = static_cast<std::size_t>(nx) * ny;
  const std::vector<double>& pad_g =
      vdd_rail ? topo_.vdd_pad_g : topo_.vss_pad_g;
  const std::vector<double>& gh = topo_.g_h;
  const std::vector<double>& gv = topo_.g_v;
  const std::vector<std::uint8_t>& act = topo_.active;

  GridSolution sol;
  sol.nx = nx;
  sol.ny = ny;
  sol.die = die_;
  sol.drop_v.assign(n, 0.0);
  sol.solver = GridSolver::kSor;

  // Red-black SOR sweeps. The 4-neighbour mesh is bipartite under
  // (ix + iy) parity, so every update of one colour reads only the other
  // colour: within a colour pass the node updates are order-independent,
  // which makes the sweep safe to run on the rt pool AND bit-identical at
  // any thread count (max-of-|delta| is an exact reduction). Large meshes
  // split the pass into row bands; small ones stay inline -- both paths
  // produce the same values by construction. On a uniform topology the edge
  // arrays all hold the same conductance, so the arithmetic (values and
  // order) is unchanged from the original constant-gseg solver.
  std::vector<double>& d = sol.drop_v;
  const bool parallel = n >= 8192 && rt::concurrency() > 1 &&
                        !rt::ThreadPool::on_worker_thread();
  for (std::uint32_t it = 0; it < opt_.max_iterations; ++it) {
    double max_delta = 0.0;
    for (int color = 0; color < 2; ++color) {
      auto sweep_rows = [&](std::size_t y0, std::size_t y1) {
        double local = 0.0;
        for (std::uint32_t iy = static_cast<std::uint32_t>(y0);
             iy < static_cast<std::uint32_t>(y1); ++iy) {
          for (std::uint32_t ix = (iy + static_cast<std::uint32_t>(color)) & 1u;
               ix < nx; ix += 2) {
            const std::uint32_t i = node_index(ix, iy);
            if (!act[i]) continue;
            double gsum = pad_g[i];
            double flow = current[i];
            if (ix > 0) {
              const double g = gh[iy * (nx - 1) + (ix - 1)];
              gsum += g;
              flow += g * d[i - 1];
            }
            if (ix + 1 < nx) {
              const double g = gh[iy * (nx - 1) + ix];
              gsum += g;
              flow += g * d[i + 1];
            }
            if (iy > 0) {
              const double g = gv[(iy - 1) * nx + ix];
              gsum += g;
              flow += g * d[i - nx];
            }
            if (iy + 1 < ny) {
              const double g = gv[iy * nx + ix];
              gsum += g;
              flow += g * d[i + nx];
            }
            const double next = flow / gsum;
            const double relaxed = d[i] + opt_.sor_omega * (next - d[i]);
            local = std::max(local, std::abs(relaxed - d[i]));
            d[i] = relaxed;
          }
        }
        return local;
      };
      double color_delta;
      if (parallel) {
        color_delta = rt::parallel_transform_reduce(
            ny, /*grain=*/16, 0.0, sweep_rows,
            [](double a, double b) { return std::max(a, b); });
      } else {
        color_delta = sweep_rows(0, ny);
      }
      max_delta = std::max(max_delta, color_delta);
    }
    sol.iterations = it + 1;
    sol.final_delta_v = max_delta;
    if (max_delta < opt_.tolerance_v) {
      sol.converged = true;
      break;
    }
  }
  return sol;
}

GridSolution PowerGrid::solve_multigrid(std::span<const double> current,
                                        bool vdd_rail) const {
  GridSolution sol;
  sol.nx = opt_.nx;
  sol.ny = opt_.ny;
  sol.die = die_;
  sol.solver = GridSolver::kMultigrid;
  const mg::SolveResult r =
      mg_->solve(current, vdd_rail, opt_.tolerance_v, opt_.max_iterations,
                 opt_.mg_pre_sweeps, opt_.mg_post_sweeps, sol.drop_v);
  sol.iterations = r.cycles;
  sol.final_delta_v = r.final_delta_v;
  sol.converged = r.converged;
  return sol;
}

double PowerGrid::residual_inf(const GridSolution& sol,
                               std::span<const Point> where,
                               std::span<const double> amps,
                               bool vdd_rail) const {
  const std::vector<double> b = gather_currents(where, amps);
  const std::vector<double>& pad_g =
      vdd_rail ? topo_.vdd_pad_g : topo_.vss_pad_g;
  const std::uint32_t nx = opt_.nx, ny = opt_.ny;
  const std::vector<double>& d = sol.drop_v;
  double worst = 0.0;
  for (std::uint32_t iy = 0; iy < ny; ++iy) {
    for (std::uint32_t ix = 0; ix < nx; ++ix) {
      const std::uint32_t i = node_index(ix, iy);
      if (!topo_.active[i]) continue;
      double gsum = pad_g[i];
      double flow = 0.0;
      if (ix > 0) {
        const double g = topo_.g_h[iy * (nx - 1) + (ix - 1)];
        gsum += g;
        flow += g * d[i - 1];
      }
      if (ix + 1 < nx) {
        const double g = topo_.g_h[iy * (nx - 1) + ix];
        gsum += g;
        flow += g * d[i + 1];
      }
      if (iy > 0) {
        const double g = topo_.g_v[(iy - 1) * nx + ix];
        gsum += g;
        flow += g * d[i - nx];
      }
      if (iy + 1 < ny) {
        const double g = topo_.g_v[iy * nx + ix];
        gsum += g;
        flow += g * d[i + nx];
      }
      worst = std::max(worst, std::abs(b[i] - (gsum * d[i] - flow)));
    }
  }
  return worst;
}

std::string PowerGrid::ascii_map(const GridSolution& sol, double alarm_v,
                                 std::uint32_t max_cols) {
  static constexpr char kRamp[] = " .:-=+*%@";
  constexpr std::size_t kRampLevels = sizeof(kRamp) - 2;  // last is '@'
  const std::uint32_t step = std::max(1u, sol.nx / max_cols);
  std::string out;
  for (std::uint32_t iy = sol.ny; iy-- > 0;) {
    if (iy % step) continue;
    for (std::uint32_t ix = 0; ix < sol.nx; ix += step) {
      const double v = sol.node(ix, iy);
      if (v >= alarm_v) {
        out.push_back('#');
      } else {
        const auto level = static_cast<std::size_t>(
            std::clamp(v / alarm_v, 0.0, 0.999) * kRampLevels);
        out.push_back(kRamp[level]);
      }
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace scap
