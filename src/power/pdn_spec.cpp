#include "power/pdn_spec.h"

#include <sstream>
#include <stdexcept>

namespace scap {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("pdn spec: line " + std::to_string(line_no) + ": " +
                           what);
}

}  // namespace

PdnSpec PdnSpec::parse(const std::string& text) {
  PdnSpec spec;
  bool have_mesh = false;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw)) continue;  // blank / comment-only

    auto want_u32 = [&](const char* what) {
      long long v = -1;
      if (!(ls >> v) || v < 0) fail(line_no, std::string("bad ") + what);
      return static_cast<std::uint32_t>(v);
    };
    auto want_f64 = [&](const char* what) {
      double v = 0.0;
      if (!(ls >> v)) fail(line_no, std::string("bad ") + what);
      return v;
    };
    auto node_in_range = [&](std::uint32_t ix, std::uint32_t iy) {
      if (!have_mesh) fail(line_no, "mesh must come before node references");
      if (ix >= spec.nx || iy >= spec.ny) fail(line_no, "node out of range");
    };

    if (kw == "mesh") {
      spec.nx = want_u32("mesh nx");
      spec.ny = want_u32("mesh ny");
      if (spec.nx < 2 || spec.ny < 2) fail(line_no, "mesh must be >= 2x2");
      have_mesh = true;
    } else if (kw == "die") {
      spec.die.x0 = want_f64("die x0");
      spec.die.y0 = want_f64("die y0");
      spec.die.x1 = want_f64("die x1");
      spec.die.y1 = want_f64("die y1");
      if (spec.die.width() <= 0 || spec.die.height() <= 0) {
        fail(line_no, "die must have positive extent");
      }
    } else if (kw == "segment_res_ohm") {
      spec.segment_res_ohm = want_f64("segment_res_ohm");
      if (spec.segment_res_ohm <= 0) fail(line_no, "resistance must be > 0");
    } else if (kw == "pad_res_ohm") {
      spec.pad_res_ohm = want_f64("pad_res_ohm");
      if (spec.pad_res_ohm <= 0) fail(line_no, "resistance must be > 0");
    } else if (kw == "jitter") {
      spec.jitter_frac = want_f64("jitter fraction");
      spec.jitter_seed = want_u32("jitter seed");
      if (spec.jitter_frac < 0 || spec.jitter_frac > 0.95) {
        fail(line_no, "jitter fraction must be in [0, 0.95]");
      }
    } else if (kw == "void") {
      VoidRect v{};
      v.x0 = want_u32("void x0");
      v.y0 = want_u32("void y0");
      v.x1 = want_u32("void x1");
      v.y1 = want_u32("void y1");
      node_in_range(v.x0, v.y0);
      node_in_range(v.x1, v.y1);
      if (v.x1 < v.x0 || v.y1 < v.y0) fail(line_no, "void rect inverted");
      spec.voids.push_back(v);
    } else if (kw == "pad") {
      std::string rail;
      if (!(ls >> rail) || (rail != "vdd" && rail != "vss")) {
        fail(line_no, "pad rail must be vdd or vss");
      }
      PadSite p{};
      p.is_vdd = rail == "vdd";
      p.ix = want_u32("pad ix");
      p.iy = want_u32("pad iy");
      node_in_range(p.ix, p.iy);
      spec.pads.push_back(p);
    } else if (kw == "source") {
      SourceSite s{};
      s.ix = want_u32("source ix");
      s.iy = want_u32("source iy");
      s.amps = want_f64("source amps");
      node_in_range(s.ix, s.iy);
      if (s.amps < 0) fail(line_no, "source amps must be >= 0");
      spec.sources.push_back(s);
    } else {
      fail(line_no, "unknown keyword '" + kw + "'");
    }
    std::string extra;
    if (ls >> extra) fail(line_no, "trailing tokens after '" + kw + "'");
  }
  if (!have_mesh) throw std::runtime_error("pdn spec: missing mesh line");
  return spec;
}

std::string PdnSpec::serialize() const {
  std::ostringstream os;
  os << "# pdn spec\n";
  os << "mesh " << nx << " " << ny << "\n";
  os << "die " << die.x0 << " " << die.y0 << " " << die.x1 << " " << die.y1
     << "\n";
  os << "segment_res_ohm " << segment_res_ohm << "\n";
  os << "pad_res_ohm " << pad_res_ohm << "\n";
  if (jitter_frac > 0) {
    os << "jitter " << jitter_frac << " " << jitter_seed << "\n";
  }
  for (const VoidRect& v : voids) {
    os << "void " << v.x0 << " " << v.y0 << " " << v.x1 << " " << v.y1 << "\n";
  }
  for (const PadSite& p : pads) {
    os << "pad " << (p.is_vdd ? "vdd" : "vss") << " " << p.ix << " " << p.iy
       << "\n";
  }
  for (const SourceSite& s : sources) {
    os << "source " << s.ix << " " << s.iy << " " << s.amps << "\n";
  }
  return os.str();
}

PdnTopology PdnSpec::topology() const {
  PdnTopology t = PdnTopology::uniform(nx, ny, 1.0 / segment_res_ohm);
  if (jitter_frac > 0) t.jitter_edges(jitter_frac, jitter_seed);
  for (const VoidRect& v : voids) t.punch_void(v.x0, v.y0, v.x1, v.y1);
  const double gpad = 1.0 / pad_res_ohm;
  for (const PadSite& p : pads) t.add_pad(p.ix, p.iy, p.is_vdd, gpad);
  t.finalize();
  return t;
}

std::vector<Point> PdnSpec::source_points() const {
  std::vector<Point> out;
  out.reserve(sources.size());
  for (const SourceSite& s : sources) out.push_back(node_point(s.ix, s.iy));
  return out;
}

std::vector<double> PdnSpec::source_amps() const {
  std::vector<double> out;
  out.reserve(sources.size());
  for (const SourceSite& s : sources) out.push_back(s.amps);
  return out;
}

}  // namespace scap
