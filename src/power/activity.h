// Structural clock-domain assignment for combinational instances.
//
// Vector-less (statistical) power analysis needs a switching frequency for
// every gate. Flops carry their domain explicitly; combinational gates
// inherit the majority domain of their fan-in, propagated in topological
// order from flop Q pins (primary inputs count as the dominant domain 0,
// matching the paper's setup where PIs are held constant during test and the
// chip-level domain clka spans all blocks).
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace scap {

/// Per-gate clock-domain id.
std::vector<DomainId> assign_gate_domains(const Netlist& nl);

}  // namespace scap
