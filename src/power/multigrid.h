// Geometric multigrid for the PDN DC solve.
//
// SOR's iteration count grows with the mesh diameter (spectral radius
// ~1 - O(1/n^2) even over-relaxed), which is exactly why the 512x512 bench
// mesh was out of reach: ~2e4 sweeps to 1e-7 V. Multigrid keeps the
// contraction factor mesh-independent by pairing cheap high-frequency
// smoothing with a coarse-grid solve of the smooth remainder:
//
//  - W-cycle: pre-smooth, restrict the residual, recurse twice (a single
//    coarse visit leaves the rediscretized coarse problems under-solved and
//    the contraction degrades with depth), prolongate the coarse
//    correction, post-smooth;
//  - smoother: red-black Gauss-Seidel (the same bipartite coloring as the
//    SOR solver, so sweeps parallelize on the rt pool with bit-identical
//    results at any SCAP_THREADS -- see src/rt/parallel.h);
//  - restriction: full weighting (transpose of the prolongation, stencil
//    weights 1, 1/2, 1/4 -- in 2D this also conserves total injected
//    current and pad conductance between levels);
//  - prolongation: bilinear, renormalized at boundaries and void edges;
//  - coarsest level: dense LU with partial pivoting (a few dozen nodes).
//
// Irregular topologies coarsen structurally: a coarse node sits on every
// even-even fine node that is active, a coarse edge is twice the series
// conductance of the two fine edges it spans (scale-invariant on a uniform
// 2D sheet), and pad anchors aggregate under the restriction weights. The
// hierarchy is built once per PowerGrid and is immutable afterwards;
// solve() allocates its work vectors locally, so concurrent solves on the
// same hierarchy (the statistical analysis solves both rails in parallel)
// are safe.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "power/pdn_topology.h"

namespace scap::mg {

struct Level {
  std::uint32_t nx = 0;
  std::uint32_t ny = 0;
  std::size_t n = 0;  ///< nx * ny
  std::vector<double> g_h, g_v;
  std::vector<std::uint8_t> active;
  std::vector<double> anchor_vdd, anchor_vss;
  /// anchor + sum of incident edge conductances, per rail; 1.0 on inactive
  /// nodes so the smoother never divides by zero.
  std::vector<double> diag_vdd, diag_vss;
};

struct SolveResult {
  std::uint32_t cycles = 0;
  double final_delta_v = 0.0;
  bool converged = false;
};

class Hierarchy {
 public:
  /// `topo` must be finalized. coarsest_nodes bounds the dense direct solve
  /// (coarsening also stops when the mesh cannot halve any further).
  Hierarchy(const PdnTopology& topo, std::uint32_t coarsest_nodes);

  /// W-cycle iteration to max-update tolerance `tol_v` on the finest level.
  /// b is the per-node injected current [A] (finest lattice, row-major);
  /// x is resized and overwritten with the node drops [V]. Re-entrant.
  SolveResult solve(std::span<const double> b, bool vdd_rail, double tol_v,
                    std::uint32_t max_cycles, std::uint32_t pre_sweeps,
                    std::uint32_t post_sweeps, std::vector<double>& x) const;

  std::size_t num_levels() const { return levels_.size(); }
  const Level& level(std::size_t l) const { return levels_[l]; }

 private:
  struct DenseSolve {
    std::vector<std::uint32_t> ids;  ///< node -> dense index + 1 (0 = none)
    std::vector<double> lu;          ///< n x n, factored in place
    std::vector<std::uint32_t> perm;
    std::uint32_t n = 0;
  };

  void factor_coarsest(bool vdd_rail, DenseSolve& out) const;
  void smooth(std::size_t l, bool vdd_rail, std::span<const double> b,
              std::vector<double>& x, std::uint32_t sweeps, bool par) const;
  void residual(std::size_t l, bool vdd_rail, std::span<const double> b,
                std::span<const double> x, std::vector<double>& r,
                bool par) const;
  void restrict_to(std::size_t lc, std::span<const double> fine_r,
                   std::vector<double>& coarse_b, bool par) const;
  void prolong_add(std::size_t lf, std::span<const double> coarse_x,
                   std::vector<double>& fine_x, bool par) const;
  void solve_coarsest(const DenseSolve& ds, std::span<const double> b,
                      std::vector<double>& x) const;

  std::vector<Level> levels_;
  DenseSolve dense_vdd_, dense_vss_;
};

}  // namespace scap::mg
