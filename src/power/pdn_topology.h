// Irregular power-distribution-network topology on a rectangular node
// lattice.
//
// The uniform mesh the solver started with is one point in a much larger
// design space: real PDNs (SRAM-PG, arXiv:2404.05260) have per-edge metal
// widths (hence per-edge conductances), punched-out regions where macros or
// keep-outs remove the mesh entirely, and many discrete current-source
// loads. PdnTopology is the shared *problem statement* for all of that: a
// node lattice with
//
//  - per-edge conductances g_h / g_v [S] (0 = edge absent),
//  - an active mask (inactive nodes are voids: no equations, drop == 0),
//  - per-node pad conductances for both rails,
//  - a deterministic nearest-active snap map used to land point injections
//    that fall inside a void onto the surviving mesh.
//
// Every solver (production SOR, production multigrid, the src/ref oracles)
// consumes the same finalized topology, so the solvers stay independent
// while agreeing on what problem they are solving. finalize() establishes
// the invariants the solvers rely on:
//
//  - edges incident to an inactive node carry g == 0;
//  - every active node belongs to a component (over g > 0 edges) that is
//    anchored by at least one VDD pad AND one VSS pad -- components that
//    cannot reach both rails are deactivated (their DC system is singular);
//  - snap[] maps every lattice node to the nearest active node (grid
//    distance, deterministic tie-break), identity on active nodes.
#pragma once

#include <cstdint>
#include <vector>

#include "layout/floorplan.h"
#include "util/geometry.h"

namespace scap {

struct PowerGridOptions;

struct PdnTopology {
  std::uint32_t nx = 0;
  std::uint32_t ny = 0;
  /// Horizontal edge (ix,iy)-(ix+1,iy): g_h[iy * (nx-1) + ix], [S].
  std::vector<double> g_h;
  /// Vertical edge (ix,iy)-(ix,iy+1): g_v[iy * nx + ix], [S].
  std::vector<double> g_v;
  /// 1 = node exists, 0 = void. Row-major nx*ny like GridSolution.
  std::vector<std::uint8_t> active;
  std::vector<double> vdd_pad_g;  ///< per-node pad conductance [S]
  std::vector<double> vss_pad_g;
  /// node -> nearest active node (self when active). Built by finalize().
  std::vector<std::uint32_t> snap;
  std::size_t active_nodes = 0;

  /// Fully-connected uniform mesh with every edge at `gseg` siemens.
  static PdnTopology uniform(std::uint32_t nx, std::uint32_t ny, double gseg);

  std::uint32_t node(std::uint32_t ix, std::uint32_t iy) const {
    return iy * nx + ix;
  }
  bool is_active(std::uint32_t ix, std::uint32_t iy) const {
    return active[node(ix, iy)] != 0;
  }
  double edge_h(std::uint32_t ix, std::uint32_t iy) const {
    return g_h[iy * (nx - 1) + ix];
  }
  double edge_v(std::uint32_t ix, std::uint32_t iy) const {
    return g_v[iy * nx + ix];
  }

  /// Deactivate the inclusive node rectangle [x0,x1] x [y0,y1] (clamped).
  void punch_void(std::uint32_t x0, std::uint32_t y0, std::uint32_t x1,
                  std::uint32_t y1);
  /// Scale every edge by an independent uniform factor in [1-frac, 1+frac]
  /// (frac clamped to [0, 0.95] so conductances stay positive). Pure
  /// function of (topology shape, frac, seed).
  void jitter_edges(double frac, std::uint64_t seed);
  /// Add pad conductance at an explicit node for one rail.
  void add_pad(std::uint32_t ix, std::uint32_t iy, bool is_vdd, double g);
  /// Add pad conductance at the lattice node nearest to a die location
  /// (same rounding as PowerGrid's injection snapping).
  void add_pad_at(const Rect& die, Point p, bool is_vdd, double g);

  /// Establish the solver invariants (see file comment). Idempotent.
  /// Throws std::runtime_error if no active node survives.
  void finalize();
};

/// The topology the fuzzer and the irregular-mesh tests share: a uniform
/// mesh from `opt` with the floorplan's pads, `voids` pseudo-random interior
/// rectangles punched out and per-edge jitter of `jitter_frac` applied.
/// Pure function of its arguments (independent Rng streams per feature, so
/// voids = 0 / jitter = 0 reproduce the legacy uniform mesh exactly).
PdnTopology make_fuzz_topology(const Floorplan& fp, const PowerGridOptions& opt,
                               std::size_t voids, double jitter_frac,
                               std::uint64_t seed);

}  // namespace scap
