// Resistive power-distribution-network model and DC IR-drop solver.
//
// Each rail (VDD and VSS) is a uniform 2-D resistive mesh spanning the die,
// fed by ideal pads on the periphery (the Turbo-Eagle floorplan has 37 pads
// per rail). Instance switching currents are injected at the nearest mesh
// node and the resulting node voltages are obtained from the linear system
//
//     sum_j g_ij (d_i - d_j) + g_pad,i * d_i = I_i
//
// solved by successive over-relaxation. d_i is the *drop* at node i: VDD
// loss on the VDD rail, ground bounce on the VSS rail -- the same equations
// apply to both because the floorplan places the two pad sets symmetrically.
//
// This is the library's stand-in for the rail analysis the paper runs in
// Cadence SOC Encounter; both the statistical (vector-less) and the dynamic
// (per-pattern) analyses reduce to exactly this windowed-average DC solve.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "layout/floorplan.h"
#include "util/geometry.h"

namespace scap {

struct PowerGridOptions {
  std::uint32_t nx = 48;
  std::uint32_t ny = 48;
  /// Resistance of one mesh segment [ohm]. The default is calibrated so the
  /// reference SOC shows a functional statistical worst IR-drop of a few
  /// percent of VDD, matching the paper's Table 3 regime.
  double segment_res_ohm = 0.35;
  /// Pad contact resistance [ohm].
  double pad_res_ohm = 0.08;
  double sor_omega = 1.9;
  double tolerance_v = 1e-7;
  std::uint32_t max_iterations = 20000;
};

struct GridSolution {
  std::uint32_t nx = 0;
  std::uint32_t ny = 0;
  Rect die;
  std::vector<double> drop_v;  ///< row-major node drops [V]
  std::uint32_t iterations = 0;
  /// False when the sweep budget (max_iterations) ran out before the update
  /// delta fell below tolerance_v; such a map may understate the true drops.
  /// Non-converged solves bump the "power.grid_solve_nonconverged" obs
  /// counter and log a warning -- never treat them as clean silently.
  bool converged = false;
  /// Largest node update of the final sweep [V] (the convergence residual).
  double final_delta_v = 0.0;

  double node(std::uint32_t ix, std::uint32_t iy) const {
    return drop_v[iy * nx + ix];
  }
  /// Bilinear sample of the drop at an arbitrary die location.
  double drop_at(Point p) const;
  double worst() const;
  double worst_in(const Rect& r) const;
  double average_in(const Rect& r) const;
};

class PowerGrid {
 public:
  PowerGrid(const Floorplan& fp, PowerGridOptions opt = PowerGridOptions{});

  /// Solve one rail for the given point current injections [A].
  /// vdd_rail selects which pad set anchors the mesh.
  GridSolution solve(std::span<const Point> where, std::span<const double> amps,
                     bool vdd_rail) const;

  /// ASCII heat map; cells above alarm_v render '#' (the paper's Figure 3
  /// "red region" at 10% of VDD), with a linear ramp " .:-=+*%@" below.
  static std::string ascii_map(const GridSolution& sol, double alarm_v,
                               std::uint32_t max_cols = 64);

  const PowerGridOptions& options() const { return opt_; }
  const Rect& die() const { return die_; }

 private:
  std::uint32_t node_index(std::uint32_t ix, std::uint32_t iy) const {
    return iy * opt_.nx + ix;
  }
  std::uint32_t nearest_node(Point p) const;

  PowerGridOptions opt_;
  Rect die_;
  std::vector<double> vdd_pad_conductance_;  ///< per node [S]
  std::vector<double> vss_pad_conductance_;
};

}  // namespace scap
