// Resistive power-distribution-network model and DC IR-drop solver.
//
// Each rail (VDD and VSS) is a 2-D resistive mesh spanning the die -- by
// default uniform with ideal periphery pads (the Turbo-Eagle floorplan has
// 37 pads per rail), but any irregular PdnTopology (per-edge conductances,
// punched-out void regions, explicit pad sites; see power/pdn_topology.h
// and the power/pdn_spec.h import format) can back the grid. Instance
// switching currents are injected at the nearest active mesh node and the
// resulting node voltages are obtained from the linear system
//
//     sum_j g_ij (d_i - d_j) + g_pad,i * d_i = I_i
//
// d_i is the *drop* at node i: VDD loss on the VDD rail, ground bounce on
// the VSS rail -- the same equations apply to both because the floorplan
// places the two pad sets symmetrically.
//
// Two solvers sit behind solve():
//  - red-black SOR: the original solver, O(n^1.5)-ish sweeps to converge;
//    retained as the small-mesh default and as an in-tree oracle for the
//    multigrid path;
//  - geometric multigrid (power/multigrid.h): mesh-independent convergence,
//    the default at >= 64x64 where SOR's iteration count explodes.
// Both run their sweeps on the rt pool under the bit-identical-at-any-
// SCAP_THREADS contract, and both report honest convergence: `converged`,
// `iterations` and `final_delta_v` on the solution, plus the
// "power.grid_solve_nonconverged" obs counter and a stderr warning when the
// budget runs out.
//
// This is the library's stand-in for the rail analysis the paper runs in
// Cadence SOC Encounter; both the statistical (vector-less) and the dynamic
// (per-pattern) analyses reduce to exactly this windowed-average DC solve.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "layout/floorplan.h"
#include "power/pdn_topology.h"
#include "util/geometry.h"

namespace scap {

namespace mg {
class Hierarchy;
}

enum class GridSolver : std::uint8_t {
  kAuto = 0,       ///< multigrid at >= 64x64, SOR below
  kSor = 1,        ///< red-black successive over-relaxation
  kMultigrid = 2,  ///< geometric multigrid W-cycles
};

struct PowerGridOptions {
  std::uint32_t nx = 48;
  std::uint32_t ny = 48;
  /// Resistance of one mesh segment [ohm]. The default is calibrated so the
  /// reference SOC shows a functional statistical worst IR-drop of a few
  /// percent of VDD, matching the paper's Table 3 regime.
  double segment_res_ohm = 0.35;
  /// Pad contact resistance [ohm].
  double pad_res_ohm = 0.08;
  double sor_omega = 1.9;
  double tolerance_v = 1e-7;
  /// SOR: sweep budget. Multigrid: W-cycle budget (converges in ~10).
  std::uint32_t max_iterations = 20000;
  GridSolver solver = GridSolver::kAuto;
  /// Multigrid tuning: red-black GS sweeps before/after each coarse-grid
  /// correction, and the active-node count at which coarsening stops and a
  /// dense direct solve takes over.
  std::uint32_t mg_pre_sweeps = 2;
  std::uint32_t mg_post_sweeps = 2;
  std::uint32_t mg_coarsest_nodes = 64;
};

struct GridSolution {
  std::uint32_t nx = 0;
  std::uint32_t ny = 0;
  Rect die;
  std::vector<double> drop_v;  ///< row-major node drops [V]; 0 on void nodes
  std::uint32_t iterations = 0;
  /// False when the sweep budget (max_iterations) ran out before the update
  /// delta fell below tolerance_v; such a map may understate the true drops.
  /// Non-converged solves bump the "power.grid_solve_nonconverged" obs
  /// counter and log a warning -- never treat them as clean silently.
  bool converged = false;
  /// Largest node update of the final sweep [V] (the convergence residual).
  double final_delta_v = 0.0;
  /// Which solver actually produced this map (kAuto resolves at grid
  /// construction, so this is never kAuto).
  GridSolver solver = GridSolver::kSor;

  double node(std::uint32_t ix, std::uint32_t iy) const {
    return drop_v[iy * nx + ix];
  }
  /// Bilinear sample of the drop at an arbitrary die location.
  double drop_at(Point p) const;
  double worst() const;
  double worst_in(const Rect& r) const;
  double average_in(const Rect& r) const;
};

class PowerGrid {
 public:
  /// Uniform mesh from the options, pads taken from the floorplan.
  PowerGrid(const Floorplan& fp, PowerGridOptions opt = PowerGridOptions{});
  /// Irregular mesh: `topo` must be finalized; its nx/ny override the
  /// options' (pads and edges come from the topology, not the floorplan).
  PowerGrid(const Rect& die, PowerGridOptions opt, PdnTopology topo);

  /// Solve one rail for the given point current injections [A].
  /// vdd_rail selects which pad set anchors the mesh.
  GridSolution solve(std::span<const Point> where, std::span<const double> amps,
                     bool vdd_rail) const;

  /// Max over active nodes of |I_i - (A d)_i| [A] -- the true equation
  /// residual of a solution, independent of the solver's own stop metric.
  double residual_inf(const GridSolution& sol, std::span<const Point> where,
                      std::span<const double> amps, bool vdd_rail) const;

  /// ASCII heat map; cells above alarm_v render '#' (the paper's Figure 3
  /// "red region" at 10% of VDD), with a linear ramp " .:-=+*%@" below.
  static std::string ascii_map(const GridSolution& sol, double alarm_v,
                               std::uint32_t max_cols = 64);

  const PowerGridOptions& options() const { return opt_; }
  const Rect& die() const { return die_; }
  const PdnTopology& topology() const { return topo_; }
  /// The solver solve() will use (kAuto resolved against the mesh size).
  GridSolver resolved_solver() const { return resolved_; }

 private:
  std::uint32_t node_index(std::uint32_t ix, std::uint32_t iy) const {
    return iy * opt_.nx + ix;
  }
  std::uint32_t nearest_node(Point p) const;
  void init_solver();
  std::vector<double> gather_currents(std::span<const Point> where,
                                      std::span<const double> amps) const;
  GridSolution solve_sor(std::span<const double> current,
                         bool vdd_rail) const;
  GridSolution solve_multigrid(std::span<const double> current,
                               bool vdd_rail) const;

  PowerGridOptions opt_;
  Rect die_;
  PdnTopology topo_;
  GridSolver resolved_ = GridSolver::kSor;
  /// Immutable after construction; shared so PowerGrid stays copyable.
  std::shared_ptr<const mg::Hierarchy> mg_;
};

}  // namespace scap
