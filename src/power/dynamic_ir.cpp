#include "power/dynamic_ir.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace scap {

namespace {

/// Back half shared by the trace-based and streaming paths: convert binned
/// per-instance charges into average rail currents over the window, solve
/// both rails on the grid and derive the block / per-instance droop views.
DynamicIrReport solve_from_charges(
    const Netlist& nl, const Placement& pl, const TechLibrary& lib,
    const Floorplan& fp, const PowerGrid& grid,
    std::span<const double> gate_q_vdd, std::span<const double> gate_q_vss,
    std::span<const double> flop_q_vdd, std::span<const double> flop_q_vss,
    double window_ns, const ClockTree* clock_tree, DomainId active_domain,
    const DynamicIrOptions& opt) {
  DynamicIrReport rep;
  rep.window_ns = window_ns;

  // Convert to average currents over the window: pC / ns == mA -> A.
  std::vector<Point> where;
  std::vector<double> vdd_amps;
  std::vector<double> vss_amps;
  where.reserve(nl.num_gates() + nl.num_flops() + 256);
  const double to_amps = 1e-3 / rep.window_ns;  // (pC -> mA) -> A
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    if (gate_q_vdd[g] == 0.0 && gate_q_vss[g] == 0.0) continue;
    where.push_back(pl.gate_pos(g));
    vdd_amps.push_back(gate_q_vdd[g] * to_amps);
    vss_amps.push_back(gate_q_vss[g] * to_amps);
  }
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    if (flop_q_vdd[f] == 0.0 && flop_q_vss[f] == 0.0) continue;
    where.push_back(pl.flop_pos(f));
    vdd_amps.push_back(flop_q_vdd[f] * to_amps);
    vss_amps.push_back(flop_q_vss[f] * to_amps);
  }
  if (opt.include_clock_tree && clock_tree != nullptr) {
    for (const ClockBuffer& b : clock_tree->buffers()) {
      if (b.domain != active_domain) continue;
      // One rise and one fall per launch-capture window.
      const double q_pc = b.load_pf * lib.vdd();
      where.push_back(b.pos);
      vdd_amps.push_back(q_pc * to_amps);
      vss_amps.push_back(q_pc * to_amps);
    }
  }

  rep.vdd_solution = grid.solve(where, vdd_amps, /*vdd_rail=*/true);
  rep.vss_solution = grid.solve(where, vss_amps, /*vdd_rail=*/false);
  rep.worst_vdd_v = rep.vdd_solution.worst();
  rep.worst_vss_v = rep.vss_solution.worst();

  rep.block_worst_vdd_v.resize(nl.block_count());
  rep.block_avg_vdd_v.resize(nl.block_count());
  rep.block_worst_vss_v.resize(nl.block_count());
  for (BlockId b = 0; b < nl.block_count(); ++b) {
    const Rect r = b < fp.block_count() ? fp.block(b).rect : fp.die();
    rep.block_worst_vdd_v[b] = rep.vdd_solution.worst_in(r);
    rep.block_avg_vdd_v[b] = rep.vdd_solution.average_in(r);
    rep.block_worst_vss_v[b] = rep.vss_solution.worst_in(r);
  }

  rep.gate_droop_v.resize(nl.num_gates());
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    rep.gate_droop_v[g] = rep.droop_at(pl.gate_pos(g));
  }
  rep.flop_droop_v.resize(nl.num_flops());
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    rep.flop_droop_v[f] = rep.droop_at(pl.flop_pos(f));
  }
  obs::count("power.pattern_ir_reports");
  obs::count("power.grid_solves", 2);  // one per rail
  obs::observe("power.worst_vdd_v", rep.worst_vdd_v);
  return rep;
}

}  // namespace

DynamicIrReport analyze_pattern_ir(const Netlist& nl, const Placement& pl,
                                   const Parasitics& par,
                                   const TechLibrary& lib, const Floorplan& fp,
                                   const PowerGrid& grid, const SimTrace& trace,
                                   const ClockTree* clock_tree,
                                   DomainId active_domain,
                                   const DynamicIrOptions& opt) {
  SCAP_TRACE_SCOPE("power.dynamic_ir");

  // Accumulate switched charge [pC] per driving instance and rail.
  std::vector<double> gate_q_vdd(nl.num_gates(), 0.0);
  std::vector<double> gate_q_vss(nl.num_gates(), 0.0);
  std::vector<double> flop_q_vdd(nl.num_flops(), 0.0);
  std::vector<double> flop_q_vss(nl.num_flops(), 0.0);
  const double vdd = lib.vdd();

  for (const ToggleEvent& t : trace.toggles) {
    const double q_pc = par.net_load_pf(t.net) * vdd;
    const Net& nr = nl.net(t.net);
    if (nr.driver_kind == DriverKind::kGate) {
      (t.rising ? gate_q_vdd : gate_q_vss)[nr.driver] += q_pc;
    } else if (nr.driver_kind == DriverKind::kFlop) {
      (t.rising ? flop_q_vdd : flop_q_vss)[nr.driver] += q_pc;
    }
  }

  return solve_from_charges(nl, pl, lib, fp, grid, gate_q_vdd, gate_q_vss,
                            flop_q_vdd, flop_q_vss,
                            std::max(trace.stw_ns(), 1e-3), clock_tree,
                            active_domain, opt);
}

void DynamicIrBinner::on_begin(
    std::span<const std::uint8_t> /*initial_net_values*/) {
  window_ns_ = 0.0;
  gate_q_vdd_.assign(nl_->num_gates(), 0.0);
  gate_q_vss_.assign(nl_->num_gates(), 0.0);
  flop_q_vdd_.assign(nl_->num_flops(), 0.0);
  flop_q_vss_.assign(nl_->num_flops(), 0.0);
}

void DynamicIrBinner::on_toggle(NetId net, double /*t_ns*/, bool rising) {
  const double q_pc = par_->net_load_pf(net) * vdd_;
  const Net& nr = nl_->net(net);
  if (nr.driver_kind == DriverKind::kGate) {
    (rising ? gate_q_vdd_ : gate_q_vss_)[nr.driver] += q_pc;
  } else if (nr.driver_kind == DriverKind::kFlop) {
    (rising ? flop_q_vdd_ : flop_q_vss_)[nr.driver] += q_pc;
  }
}

void DynamicIrBinner::on_end(const SimStats& stats) {
  window_ns_ = std::max(stats.stw_ns(), 1e-3);
}

DynamicIrReport analyze_pattern_ir(const Netlist& nl, const Placement& pl,
                                   const TechLibrary& lib, const Floorplan& fp,
                                   const PowerGrid& grid,
                                   const DynamicIrBinner& binned,
                                   const ClockTree* clock_tree,
                                   DomainId active_domain,
                                   const DynamicIrOptions& opt) {
  SCAP_TRACE_SCOPE("power.dynamic_ir");
  return solve_from_charges(nl, pl, lib, fp, grid, binned.gate_q_vdd_pc(),
                            binned.gate_q_vss_pc(), binned.flop_q_vdd_pc(),
                            binned.flop_q_vss_pc(), binned.window_ns(),
                            clock_tree, active_domain, opt);
}

}  // namespace scap
