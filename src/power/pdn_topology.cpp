#include "power/pdn_topology.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

#include "power/power_grid.h"
#include "util/rng.h"

namespace scap {

PdnTopology PdnTopology::uniform(std::uint32_t nx, std::uint32_t ny,
                                 double gseg) {
  if (nx < 2 || ny < 2) {
    throw std::runtime_error("pdn topology: mesh must be at least 2x2");
  }
  PdnTopology t;
  t.nx = nx;
  t.ny = ny;
  const std::size_t n = static_cast<std::size_t>(nx) * ny;
  t.g_h.assign(static_cast<std::size_t>(nx - 1) * ny, gseg);
  t.g_v.assign(static_cast<std::size_t>(nx) * (ny - 1), gseg);
  t.active.assign(n, 1);
  t.vdd_pad_g.assign(n, 0.0);
  t.vss_pad_g.assign(n, 0.0);
  t.snap.resize(n);
  for (std::size_t i = 0; i < n; ++i) t.snap[i] = static_cast<std::uint32_t>(i);
  t.active_nodes = n;
  return t;
}

void PdnTopology::punch_void(std::uint32_t x0, std::uint32_t y0,
                             std::uint32_t x1, std::uint32_t y1) {
  x1 = std::min(x1, nx - 1);
  y1 = std::min(y1, ny - 1);
  for (std::uint32_t iy = y0; iy <= y1 && iy < ny; ++iy) {
    for (std::uint32_t ix = x0; ix <= x1 && ix < nx; ++ix) {
      active[node(ix, iy)] = 0;
    }
  }
}

void PdnTopology::jitter_edges(double frac, std::uint64_t seed) {
  const double f = std::clamp(frac, 0.0, 0.95);
  if (f <= 0.0) return;
  Rng r(seed);
  for (double& g : g_h) g *= r.uniform(1.0 - f, 1.0 + f);
  for (double& g : g_v) g *= r.uniform(1.0 - f, 1.0 + f);
}

void PdnTopology::add_pad(std::uint32_t ix, std::uint32_t iy, bool is_vdd,
                          double g) {
  auto& vec = is_vdd ? vdd_pad_g : vss_pad_g;
  vec[node(ix, iy)] += g;
}

void PdnTopology::add_pad_at(const Rect& die, Point p, bool is_vdd, double g) {
  const double fx = (p.x - die.x0) / die.width() * (nx - 1);
  const double fy = (p.y - die.y0) / die.height() * (ny - 1);
  const auto ix = static_cast<std::uint32_t>(
      std::clamp(std::lround(fx), 0l, static_cast<long>(nx - 1)));
  const auto iy = static_cast<std::uint32_t>(
      std::clamp(std::lround(fy), 0l, static_cast<long>(ny - 1)));
  add_pad(ix, iy, is_vdd, g);
}

void PdnTopology::finalize() {
  const std::size_t n = static_cast<std::size_t>(nx) * ny;

  auto zero_edges_of = [&](std::uint32_t ix, std::uint32_t iy) {
    if (ix > 0) g_h[iy * (nx - 1) + (ix - 1)] = 0.0;
    if (ix + 1 < nx) g_h[iy * (nx - 1) + ix] = 0.0;
    if (iy > 0) g_v[(iy - 1) * nx + ix] = 0.0;
    if (iy + 1 < ny) g_v[iy * nx + ix] = 0.0;
  };
  for (std::uint32_t iy = 0; iy < ny; ++iy) {
    for (std::uint32_t ix = 0; ix < nx; ++ix) {
      if (!active[node(ix, iy)]) zero_edges_of(ix, iy);
    }
  }

  // Flood-fill components over g > 0 edges (g == 0 means "no wire", whether
  // it came from a void or straight from a spec). A component that cannot
  // reach both pad sets has a singular DC system on at least one rail --
  // deactivate it entirely so every surviving equation is well-posed.
  std::vector<std::uint32_t> comp(n, 0);  // 0 = unvisited
  std::uint32_t n_comps = 0;
  std::deque<std::uint32_t> queue;
  for (std::size_t seed = 0; seed < n; ++seed) {
    if (!active[seed] || comp[seed]) continue;
    const std::uint32_t id = ++n_comps;
    comp[seed] = id;
    queue.push_back(static_cast<std::uint32_t>(seed));
    double vdd_anchor = 0.0, vss_anchor = 0.0;
    std::vector<std::uint32_t> members;
    while (!queue.empty()) {
      const std::uint32_t i = queue.front();
      queue.pop_front();
      members.push_back(i);
      vdd_anchor += vdd_pad_g[i];
      vss_anchor += vss_pad_g[i];
      const std::uint32_t ix = i % nx, iy = i / nx;
      auto visit = [&](std::uint32_t j, double g) {
        if (g > 0.0 && active[j] && !comp[j]) {
          comp[j] = id;
          queue.push_back(j);
        }
      };
      if (ix > 0) visit(i - 1, g_h[iy * (nx - 1) + (ix - 1)]);
      if (ix + 1 < nx) visit(i + 1, g_h[iy * (nx - 1) + ix]);
      if (iy > 0) visit(i - nx, g_v[(iy - 1) * nx + ix]);
      if (iy + 1 < ny) visit(i + nx, g_v[iy * nx + ix]);
    }
    if (vdd_anchor <= 0.0 || vss_anchor <= 0.0) {
      for (const std::uint32_t i : members) {
        active[i] = 0;
        vdd_pad_g[i] = 0.0;
        vss_pad_g[i] = 0.0;
        zero_edges_of(i % nx, i / nx);
      }
    }
  }

  active_nodes = 0;
  for (std::size_t i = 0; i < n; ++i) active_nodes += active[i] ? 1 : 0;
  if (active_nodes == 0) {
    throw std::runtime_error(
        "pdn topology: no node reaches both a VDD and a VSS pad");
  }

  // Nearest-active snap map: multi-source BFS over the full lattice (grid
  // distance). Seeds enter in node-index order and neighbours are visited in
  // a fixed order, so ties always break the same way.
  snap.assign(n, 0);
  std::vector<std::uint8_t> seen(n, 0);
  queue.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (active[i]) {
      snap[i] = static_cast<std::uint32_t>(i);
      seen[i] = 1;
      queue.push_back(static_cast<std::uint32_t>(i));
    }
  }
  while (!queue.empty()) {
    const std::uint32_t i = queue.front();
    queue.pop_front();
    const std::uint32_t ix = i % nx, iy = i / nx;
    auto visit = [&](std::uint32_t j) {
      if (!seen[j]) {
        seen[j] = 1;
        snap[j] = snap[i];
        queue.push_back(j);
      }
    };
    if (ix > 0) visit(i - 1);
    if (ix + 1 < nx) visit(i + 1);
    if (iy > 0) visit(i - nx);
    if (iy + 1 < ny) visit(i + nx);
  }
}

PdnTopology make_fuzz_topology(const Floorplan& fp, const PowerGridOptions& opt,
                               std::size_t voids, double jitter_frac,
                               std::uint64_t seed) {
  PdnTopology t =
      PdnTopology::uniform(opt.nx, opt.ny, 1.0 / opt.segment_res_ohm);
  if (jitter_frac > 0.0) {
    t.jitter_edges(jitter_frac, seed ^ 0x9e3779b97f4a7c15ull);
  }
  // Voids stay strictly interior so the boundary ring (where the floorplan
  // pads land) always survives and the mesh is never fully disconnected.
  if (voids > 0 && opt.nx > 2 && opt.ny > 2) {
    Rng vr(seed ^ 0xda942042e4dd58b5ull);
    const std::uint32_t max_w = std::max(1u, opt.nx / 4);
    const std::uint32_t max_h = std::max(1u, opt.ny / 4);
    for (std::size_t k = 0; k < voids; ++k) {
      const std::uint32_t w =
          std::min<std::uint32_t>(1 + static_cast<std::uint32_t>(vr.below(max_w)),
                                  opt.nx - 2);
      const std::uint32_t h =
          std::min<std::uint32_t>(1 + static_cast<std::uint32_t>(vr.below(max_h)),
                                  opt.ny - 2);
      const std::uint32_t x0 =
          1 + static_cast<std::uint32_t>(vr.below(opt.nx - 1 - w));
      const std::uint32_t y0 =
          1 + static_cast<std::uint32_t>(vr.below(opt.ny - 1 - h));
      t.punch_void(x0, y0, x0 + w - 1, y0 + h - 1);
    }
  }
  const double gpad = 1.0 / opt.pad_res_ohm;
  for (const PowerPad& pad : fp.pads()) {
    t.add_pad_at(fp.die(), pad.pos, pad.is_vdd, gpad);
  }
  t.finalize();
  return t;
}

}  // namespace scap
