// Small text format for importing irregular PDN problems.
//
// Benches and tests need non-uniform meshes with voids, jittered metal and
// explicit loads without hand-assembling a PdnTopology; this is the
// line-oriented spec they read ('#' starts a comment, keywords repeat):
//
//     # pdn spec
//     mesh 24 24                  # node lattice, required first
//     die 0 0 3000 3000           # die extent [um] (default 0 0 1000 1000)
//     segment_res_ohm 0.35        # default edge resistance
//     pad_res_ohm 0.08            # pad contact resistance
//     jitter 0.3 7                # per-edge jitter fraction + seed
//     void 6 6 12 12              # inclusive node rect punched out
//     pad vdd 0 0                 # pad at a node (repeat per site)
//     pad vss 23 0
//     source 12 4 0.02            # point load: node + amps
//
// KvDoc is deliberately not used here: pads, voids and sources repeat, and
// KvDoc rejects duplicate keys. parse() throws std::runtime_error with the
// offending line number on any malformed input; topology() returns the
// finalized PdnTopology (which itself throws if no node reaches both rails).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "power/pdn_topology.h"
#include "util/geometry.h"

namespace scap {

struct PdnSpec {
  std::uint32_t nx = 0;
  std::uint32_t ny = 0;
  Rect die{0.0, 0.0, 1000.0, 1000.0};
  double segment_res_ohm = 0.35;
  double pad_res_ohm = 0.08;
  double jitter_frac = 0.0;
  std::uint64_t jitter_seed = 1;

  struct VoidRect {
    std::uint32_t x0, y0, x1, y1;  ///< inclusive node rect
  };
  struct PadSite {
    bool is_vdd;
    std::uint32_t ix, iy;
  };
  struct SourceSite {
    std::uint32_t ix, iy;
    double amps;
  };
  std::vector<VoidRect> voids;
  std::vector<PadSite> pads;
  std::vector<SourceSite> sources;

  static PdnSpec parse(const std::string& text);
  std::string serialize() const;

  /// Build and finalize the topology this spec describes.
  PdnTopology topology() const;

  /// The spec's loads as die-coordinate points + amps, ready for
  /// PowerGrid::solve.
  std::vector<Point> source_points() const;
  std::vector<double> source_amps() const;

  /// Die location of a lattice node.
  Point node_point(std::uint32_t ix, std::uint32_t iy) const {
    return {die.x0 + die.width() * ix / (nx - 1),
            die.y0 + die.height() * iy / (ny - 1)};
  }
};

}  // namespace scap
