#include "power/activity.h"

#include <array>

namespace scap {

std::vector<DomainId> assign_gate_domains(const Netlist& nl) {
  // Domain per net, then majority vote per gate over its inputs.
  std::vector<DomainId> net_domain(nl.num_nets(), 0);
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    net_domain[nl.flop(f).q] = nl.flop(f).domain;
  }

  std::vector<DomainId> gate_domain(nl.num_gates(), 0);
  std::array<std::uint16_t, 256> votes{};
  for (GateId g : nl.topo_order()) {
    votes.fill(0);
    DomainId best = 0;
    std::uint16_t best_votes = 0;
    for (NetId in : nl.gate_inputs(g)) {
      const DomainId d = net_domain[in];
      if (++votes[d] > best_votes) {
        best_votes = votes[d];
        best = d;
      }
    }
    gate_domain[g] = best;
    net_domain[nl.gate(g).out] = best;
  }
  return gate_domain;
}

}  // namespace scap
