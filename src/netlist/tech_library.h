// Technology library: per-cell timing and capacitance data plus the global
// electrical constants the paper's experiments depend on (VDD = 1.8 V,
// k_volt = 0.9 delay-derating slope, 10% IR-drop alarm threshold).
//
// The delay model is the usual linear one:
//   delay = intrinsic + drive_resistance * load_capacitance
// with separate rise/fall intrinsics. Under IR-drop the delay is scaled by
// (1 + k_volt * dV), the formulation in Section 3.2 of the paper.
#pragma once

#include <array>
#include <cstdint>

#include "netlist/cell_type.h"

namespace scap {

struct CellTiming {
  double intrinsic_rise_ns = 0.0;  ///< zero-load rise delay [ns]
  double intrinsic_fall_ns = 0.0;  ///< zero-load fall delay [ns]
  double drive_res_ns_per_pf = 0.0;  ///< load-dependent slope [ns/pF]
  double input_cap_pf = 0.0;         ///< capacitance of each input pin [pF]
  double self_cap_pf = 0.0;          ///< output-node self (diffusion) cap [pF]
  double leakage_mw = 0.0;           ///< static leakage [mW] (reporting only)
};

class TechLibrary {
 public:
  /// The default 180 nm-class library used by all experiments.
  static const TechLibrary& generic180();

  const CellTiming& timing(CellType t) const {
    return cells_[static_cast<std::size_t>(t)];
  }

  double vdd() const { return vdd_; }
  /// Delay-derating slope: 5% voltage loss -> +4.5% delay at k_volt = 0.9.
  double k_volt() const { return k_volt_; }
  /// IR-drop alarm level (fraction of VDD); the paper flags >10% VDD regions.
  double ir_alarm_fraction() const { return ir_alarm_fraction_; }

  /// Gate delay [ns] for the given output edge and load, derated by the
  /// local voltage droop dV (VDD drop + VSS bounce seen by the instance).
  double gate_delay_ns(CellType t, bool rising, double load_pf,
                       double droop_v = 0.0) const {
    const CellTiming& ct = timing(t);
    const double base =
        (rising ? ct.intrinsic_rise_ns : ct.intrinsic_fall_ns) +
        ct.drive_res_ns_per_pf * load_pf;
    return base * (1.0 + k_volt_ * droop_v);
  }

  /// Switching energy [pJ] for one output toggle with the given load:
  /// E = C * VDD^2 (the paper's per-toggle energy term).
  double toggle_energy_pj(double load_pf) const {
    return load_pf * vdd_ * vdd_;
  }

  TechLibrary(double vdd, double k_volt, double ir_alarm_fraction,
              std::array<CellTiming, kNumCellTypes> cells)
      : vdd_(vdd),
        k_volt_(k_volt),
        ir_alarm_fraction_(ir_alarm_fraction),
        cells_(cells) {}

 private:
  double vdd_;
  double k_volt_;
  double ir_alarm_fraction_;
  std::array<CellTiming, kNumCellTypes> cells_;
};

}  // namespace scap
