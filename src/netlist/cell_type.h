// Standard-cell primitive types and their evaluation functions.
//
// The library models a small 180 nm-class standard-cell kit (the paper uses
// the Cadence GSCLib 0.18 um library): basic combinational cells of 1-4
// inputs, a 2:1 mux, a scan D flip-flop, clock buffers and tie cells.
// Evaluation is provided in three domains used by different engines:
//   - scalar 0/1            (event-driven timing simulation)
//   - 64-bit pattern-parallel words (fault simulation)
//   - 3-valued "possible set" logic (PODEM implication)
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace scap {

enum class CellType : std::uint8_t {
  kTie0,
  kTie1,
  kBuf,
  kInv,
  kAnd2,
  kAnd3,
  kAnd4,
  kNand2,
  kNand3,
  kNand4,
  kOr2,
  kOr3,
  kOr4,
  kNor2,
  kNor3,
  kNor4,
  kXor2,
  kXnor2,
  kMux2,  // inputs: [S, A, B]; output = S ? B : A
  kDff,   // sequential; not evaluated combinationally
  kClkBuf,
};

inline constexpr std::size_t kNumCellTypes =
    static_cast<std::size_t>(CellType::kClkBuf) + 1;

/// Number of logic inputs a cell of this type requires.
constexpr int num_inputs(CellType t) {
  switch (t) {
    case CellType::kTie0:
    case CellType::kTie1:
      return 0;
    case CellType::kBuf:
    case CellType::kInv:
    case CellType::kClkBuf:
      return 1;
    case CellType::kAnd2:
    case CellType::kNand2:
    case CellType::kOr2:
    case CellType::kNor2:
    case CellType::kXor2:
    case CellType::kXnor2:
      return 2;
    case CellType::kAnd3:
    case CellType::kNand3:
    case CellType::kOr3:
    case CellType::kNor3:
    case CellType::kMux2:
      return 3;
    case CellType::kAnd4:
    case CellType::kNand4:
    case CellType::kOr4:
    case CellType::kNor4:
      return 4;
    case CellType::kDff:
      return 1;  // D pin; clock is tracked separately
  }
  return 0;
}

constexpr bool is_combinational(CellType t) {
  return t != CellType::kDff && t != CellType::kClkBuf;
}

/// Largest input count across the cell kit, derived from num_inputs() so a
/// future wider cell automatically widens every fixed evaluation buffer
/// (e.g. the event simulator's input scratch) instead of overflowing it.
constexpr std::size_t max_cell_inputs() {
  std::size_t m = 0;
  for (std::size_t i = 0; i < kNumCellTypes; ++i) {
    const auto n =
        static_cast<std::size_t>(num_inputs(static_cast<CellType>(i)));
    if (n > m) m = n;
  }
  return m;
}
inline constexpr std::size_t kMaxGateInputs = max_cell_inputs();

/// AND-like / OR-like classification used by PODEM backtrace.
enum class GateClass : std::uint8_t { kAndLike, kOrLike, kXorLike, kMux, kBufLike, kTie };

constexpr GateClass gate_class(CellType t) {
  switch (t) {
    case CellType::kAnd2:
    case CellType::kAnd3:
    case CellType::kAnd4:
    case CellType::kNand2:
    case CellType::kNand3:
    case CellType::kNand4:
      return GateClass::kAndLike;
    case CellType::kOr2:
    case CellType::kOr3:
    case CellType::kOr4:
    case CellType::kNor2:
    case CellType::kNor3:
    case CellType::kNor4:
      return GateClass::kOrLike;
    case CellType::kXor2:
    case CellType::kXnor2:
      return GateClass::kXorLike;
    case CellType::kMux2:
      return GateClass::kMux;
    case CellType::kTie0:
    case CellType::kTie1:
      return GateClass::kTie;
    default:
      return GateClass::kBufLike;
  }
}

/// True if the cell output inverts its defining function (NAND/NOR/XNOR/INV).
constexpr bool is_inverting(CellType t) {
  switch (t) {
    case CellType::kInv:
    case CellType::kNand2:
    case CellType::kNand3:
    case CellType::kNand4:
    case CellType::kNor2:
    case CellType::kNor3:
    case CellType::kNor4:
    case CellType::kXnor2:
      return true;
    default:
      return false;
  }
}

/// Controlling input value for AND-like (0) / OR-like (1) gates; -1 otherwise.
constexpr int controlling_value(CellType t) {
  switch (gate_class(t)) {
    case GateClass::kAndLike:
      return 0;
    case GateClass::kOrLike:
      return 1;
    default:
      return -1;
  }
}

/// Scalar evaluation; inputs are 0 or 1.
std::uint8_t eval_scalar(CellType t, std::span<const std::uint8_t> ins);

/// 64-bit pattern-parallel evaluation (bit i of each word = pattern i).
std::uint64_t eval_word(CellType t, std::span<const std::uint64_t> ins);

/// 3-valued logic in "possible set" encoding:
/// bit0 set => value can be 0; bit1 set => value can be 1.
/// 0b01 = constant 0, 0b10 = constant 1, 0b11 = X. 0b00 is invalid.
struct V3 {
  std::uint8_t bits = 0b11;

  static constexpr V3 zero() { return V3{0b01}; }
  static constexpr V3 one() { return V3{0b10}; }
  static constexpr V3 x() { return V3{0b11}; }
  static constexpr V3 of(int v) { return v ? one() : zero(); }

  constexpr bool is_x() const { return bits == 0b11; }
  constexpr bool is0() const { return bits == 0b01; }
  constexpr bool is1() const { return bits == 0b10; }
  /// Known (non-X) value as 0/1; only valid when !is_x().
  constexpr int value() const { return bits == 0b10 ? 1 : 0; }

  friend constexpr bool operator==(V3, V3) = default;
};

constexpr V3 v3_not(V3 a) {
  return V3{static_cast<std::uint8_t>(((a.bits & 1) << 1) | ((a.bits >> 1) & 1))};
}

V3 eval_v3(CellType t, std::span<const V3> ins);

/// Canonical cell name (matches the Verilog writer/parser vocabulary).
std::string_view cell_name(CellType t);

/// Inverse of cell_name; returns false if the name is unknown.
bool cell_from_name(std::string_view name, CellType& out);

}  // namespace scap
