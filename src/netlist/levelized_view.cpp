#include "netlist/levelized_view.h"

#include <algorithm>
#include <stdexcept>

namespace scap {

LevelizedView::LevelizedView(const Netlist& nl) {
  if (!nl.finalized()) {
    throw std::invalid_argument("LevelizedView: netlist must be finalized");
  }
  const std::size_t nn = nl.num_nets();
  const std::size_t ng = nl.num_gates();
  const std::size_t nf = nl.num_flops();
  max_level_ = nl.max_level();

  // Stable (level, type) schedule over the already level-sorted topo order.
  std::vector<GateId> order(nl.topo_order().begin(), nl.topo_order().end());
  std::stable_sort(order.begin(), order.end(), [&](GateId a, GateId b) {
    const std::uint32_t la = nl.gate(a).level;
    const std::uint32_t lb = nl.gate(b).level;
    if (la != lb) return la < lb;
    return nl.gate(a).type < nl.gate(b).type;
  });

  // Compact renumbering in sweep-write order: flop Q nets first (compact id
  // of flop f's Q is exactly f), then PIs, then remaining undriven nets,
  // then gate outputs in schedule order.
  compact_of_net_.assign(nn, kNullId);
  NetId next = 0;
  f_q_.reserve(nf);
  for (FlopId f = 0; f < nf; ++f) {
    compact_of_net_[nl.flop(f).q] = next;
    f_q_.push_back(next++);
  }
  pi_net_.reserve(nl.primary_inputs().size());
  for (const NetId pi : nl.primary_inputs()) {
    if (compact_of_net_[pi] == kNullId) compact_of_net_[pi] = next++;
    pi_net_.push_back(compact_of_net_[pi]);
  }
  for (NetId n = 0; n < nn; ++n) {
    if (compact_of_net_[n] == kNullId &&
        nl.net(n).driver_kind != DriverKind::kGate) {
      compact_of_net_[n] = next++;
    }
  }
  first_gate_out_ = next;
  for (const GateId g : order) compact_of_net_[nl.gate(g).out] = next++;

  net_of_compact_.assign(nn, kNullId);
  for (NetId n = 0; n < nn; ++n) net_of_compact_[compact_of_net_[n]] = n;

  // Flat gate records + pooled compact input ids.
  g_type_.reserve(ng);
  g_nin_.reserve(ng);
  g_level_.reserve(ng);
  g_out_.reserve(ng);
  g_in_off_.reserve(ng + 1);
  g_in_off_.push_back(0);
  gate_of_sched_.reserve(ng);
  sched_of_gate_.assign(ng, 0);
  f_d_.reserve(nf);
  for (const GateId g : order) {
    const Gate& gr = nl.gate(g);
    sched_of_gate_[g] = static_cast<std::uint32_t>(gate_of_sched_.size());
    gate_of_sched_.push_back(g);
    g_type_.push_back(gr.type);
    g_level_.push_back(gr.level);
    g_out_.push_back(compact_of_net_[gr.out]);
    const std::span<const NetId> ins = nl.gate_inputs(g);
    g_nin_.push_back(static_cast<std::uint8_t>(ins.size()));
    for (const NetId in : ins) g_in_.push_back(compact_of_net_[in]);
    g_in_off_.push_back(static_cast<std::uint32_t>(g_in_.size()));
  }
  for (FlopId f = 0; f < nf; ++f) f_d_.push_back(compact_of_net_[nl.flop(f).d]);

  // Gate fanouts in compact space, as schedule indices (counting sort keeps
  // each net's readers in schedule order, which cone engines rely on for a
  // deterministic enqueue order).
  std::vector<std::uint32_t> counts(nn, 0);
  for (std::size_t i = 0; i < g_in_.size(); ++i) ++counts[g_in_[i]];
  fo_begin_.assign(nn + 1, 0);
  for (NetId n = 0; n < nn; ++n) fo_begin_[n + 1] = fo_begin_[n] + counts[n];
  fo_pool_.resize(g_in_.size());
  std::fill(counts.begin(), counts.end(), 0);
  for (std::uint32_t si = 0; si < g_type_.size(); ++si) {
    const std::uint32_t b = g_in_off_[si];
    const std::uint32_t e = g_in_off_[si + 1];
    for (std::uint32_t k = b; k < e; ++k) {
      const NetId in = g_in_[k];
      fo_pool_[fo_begin_[in] + counts[in]++] = si;
    }
  }
}

}  // namespace scap
