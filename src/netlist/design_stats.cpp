#include "netlist/design_stats.h"

#include <sstream>

namespace scap {

DesignStats compute_design_stats(const Netlist& nl) {
  DesignStats s;
  s.num_gates = nl.num_gates();
  s.num_nets = nl.num_nets();
  s.num_flops = nl.num_flops();
  s.num_primary_inputs = nl.primary_inputs().size();
  s.num_primary_outputs = nl.primary_outputs().size();
  s.num_clock_domains = nl.domain_count();
  s.num_blocks = nl.block_count();
  s.max_logic_level = nl.max_level();
  s.gates_by_type.assign(kNumCellTypes, 0);
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    ++s.gates_by_type[static_cast<std::size_t>(nl.gate(g).type)];
  }
  s.flops_by_domain.assign(nl.domain_count(), 0);
  s.flops_by_block.assign(nl.block_count(), 0);
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    const Flop& fr = nl.flop(f);
    ++s.flops_by_domain[fr.domain];
    ++s.flops_by_block[fr.block];
    if (fr.neg_edge) ++s.num_neg_edge_flops;
  }
  s.gates_by_block = nl.gates_per_block();
  return s;
}

std::string format_design_stats(const DesignStats& s) {
  std::ostringstream os;
  os << "gates: " << s.num_gates << "  nets: " << s.num_nets
     << "  flops: " << s.num_flops << " (" << s.num_neg_edge_flops
     << " neg-edge)\n";
  os << "PIs: " << s.num_primary_inputs << "  POs: " << s.num_primary_outputs
     << "  clock domains: " << s.num_clock_domains
     << "  blocks: " << s.num_blocks
     << "  max logic level: " << s.max_logic_level << "\n";
  os << "flops by domain:";
  for (std::size_t d = 0; d < s.flops_by_domain.size(); ++d) {
    os << " clk" << static_cast<char>('a' + d) << "=" << s.flops_by_domain[d];
  }
  os << "\nflops by block:";
  for (std::size_t b = 0; b < s.flops_by_block.size(); ++b) {
    os << " B" << (b + 1) << "=" << s.flops_by_block[b];
  }
  os << "\n";
  return os.str();
}

}  // namespace scap
