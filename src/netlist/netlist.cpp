#include "netlist/netlist.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace scap {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::runtime_error("netlist: " + msg);
}

NetlistVerifyHook g_verify_hook = nullptr;

}  // namespace

NetlistVerifyHook set_netlist_verify_hook(NetlistVerifyHook hook) {
  NetlistVerifyHook prev = g_verify_hook;
  g_verify_hook = hook;
  return prev;
}

void Netlist::require_unfinalized() const {
  if (finalized_) fail("mutation after finalize()");
}

NetId Netlist::add_net(std::string name) {
  require_unfinalized();
  const NetId id = static_cast<NetId>(nets_.size());
  nets_.emplace_back();
  if (name.empty()) name = "n" + std::to_string(id);
  net_names_.push_back(std::move(name));
  return id;
}

NetId Netlist::add_input(std::string name) {
  const NetId id = add_net(std::move(name));
  nets_[id].driver_kind = DriverKind::kInput;
  nets_[id].driver = static_cast<std::uint32_t>(pis_.size());
  pis_.push_back(id);
  return id;
}

void Netlist::mark_output(NetId net) {
  require_unfinalized();
  if (net >= nets_.size()) fail("mark_output: bad net id");
  if (!nets_[net].is_po) {
    nets_[net].is_po = true;
    pos_.push_back(net);
  }
}

void Netlist::check_arity(CellType type, std::size_t n_inputs) const {
  if (static_cast<int>(n_inputs) != num_inputs(type)) {
    fail(std::string("arity mismatch for ") + std::string(cell_name(type)) +
         ": got " + std::to_string(n_inputs));
  }
}

GateId Netlist::add_gate(CellType type, std::span<const NetId> inputs,
                         NetId out, BlockId block) {
  require_unfinalized();
  if (!is_combinational(type)) fail("add_gate: use add_flop for sequential cells");
  check_arity(type, inputs.size());
  if (out >= nets_.size()) fail("add_gate: bad output net");
  Net& onet = nets_[out];
  const bool driven = onet.driver_kind != DriverKind::kNone;
  if (driven && !permissive_) fail("add_gate: multiple drivers on " + net_names_[out]);
  for (NetId in : inputs) {
    if (in >= nets_.size()) fail("add_gate: bad input net");
  }
  const GateId id = static_cast<GateId>(gates_.size());
  Gate g;
  g.type = type;
  g.out = out;
  g.in_begin = static_cast<std::uint32_t>(gate_inputs_.size());
  g.in_count = static_cast<std::uint16_t>(inputs.size());
  g.block = block;
  gates_.push_back(g);
  gate_inputs_.insert(gate_inputs_.end(), inputs.begin(), inputs.end());
  if (!driven) {  // permissive mode keeps the first driver on conflicts
    onet.driver_kind = DriverKind::kGate;
    onet.driver = id;
  }
  return id;
}

FlopId Netlist::add_flop(NetId d, NetId q, DomainId domain, BlockId block,
                         bool neg_edge) {
  require_unfinalized();
  if (d >= nets_.size() || q >= nets_.size()) fail("add_flop: bad net id");
  Net& qnet = nets_[q];
  const bool driven = qnet.driver_kind != DriverKind::kNone;
  if (driven && !permissive_) fail("add_flop: multiple drivers on " + net_names_[q]);
  const FlopId id = static_cast<FlopId>(flops_.size());
  flops_.push_back(Flop{d, q, domain, block, neg_edge});
  if (!driven) {
    qnet.driver_kind = DriverKind::kFlop;
    qnet.driver = id;
  }
  return id;
}

void Netlist::finalize() {
  require_unfinalized();

  // Recount drivers from the gate/flop tables rather than trusting the
  // incrementally maintained driver fields: permissive construction (and any
  // future bulk loader) can leave a net with several writers, and a
  // multi-driven net would silently corrupt every downstream engine. The
  // error aggregates all offenders so a bad parse is fixed in one pass.
  {
    std::vector<std::uint32_t> drivers(nets_.size(), 0);
    for (NetId n : pis_) ++drivers[n];
    for (const Gate& g : gates_) ++drivers[g.out];
    for (const Flop& f : flops_) ++drivers[f.q];
    std::string multi;
    std::size_t n_multi = 0;
    for (NetId n = 0; n < nets_.size(); ++n) {
      if (drivers[n] <= 1) continue;
      ++n_multi;
      if (n_multi <= 8) {
        multi += (n_multi > 1 ? ", " : "") + net_names_[n] + " (" +
                 std::to_string(drivers[n]) + " drivers)";
      }
    }
    if (n_multi > 0) {
      if (n_multi > 8) multi += ", ...";
      fail("finalize: " + std::to_string(n_multi) + " multi-driven net(s): " +
           multi);
    }
  }

  // Every net must have a driver.
  for (NetId n = 0; n < nets_.size(); ++n) {
    if (nets_[n].driver_kind == DriverKind::kNone) {
      fail("undriven net " + net_names_[n]);
    }
  }

  // Build gate fanouts (counting sort into pooled storage).
  std::vector<std::uint32_t> counts(nets_.size(), 0);
  for (NetId in : gate_inputs_) ++counts[in];
  std::uint32_t offset = 0;
  for (NetId n = 0; n < nets_.size(); ++n) {
    nets_[n].fo_begin = offset;
    nets_[n].fo_count = counts[n];
    offset += counts[n];
    counts[n] = 0;
  }
  fanout_pool_.resize(offset);
  for (GateId g = 0; g < gates_.size(); ++g) {
    for (NetId in : gate_inputs(g)) {
      fanout_pool_[nets_[in].fo_begin + counts[in]++] = g;
    }
  }

  // Build flop D fanouts.
  std::vector<std::uint32_t> fcounts(nets_.size(), 0);
  for (const Flop& f : flops_) ++fcounts[f.d];
  offset = 0;
  for (NetId n = 0; n < nets_.size(); ++n) {
    nets_[n].ffo_begin = offset;
    nets_[n].ffo_count = fcounts[n];
    offset += fcounts[n];
    fcounts[n] = 0;
  }
  flop_fanout_pool_.resize(offset);
  for (FlopId f = 0; f < flops_.size(); ++f) {
    const NetId d = flops_[f].d;
    flop_fanout_pool_[nets_[d].ffo_begin + fcounts[d]++] = f;
  }

  // Levelize combinational gates (Kahn); detect loops.
  std::vector<std::uint32_t> pending(gates_.size(), 0);
  std::vector<GateId> ready;
  ready.reserve(gates_.size());
  for (GateId g = 0; g < gates_.size(); ++g) {
    std::uint32_t deps = 0;
    for (NetId in : gate_inputs(g)) {
      if (nets_[in].driver_kind == DriverKind::kGate) ++deps;
    }
    pending[g] = deps;
    if (deps == 0) {
      gates_[g].level = 0;
      ready.push_back(g);
    }
  }
  topo_.clear();
  topo_.reserve(gates_.size());
  max_level_ = 0;
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const GateId g = ready[head];
    topo_.push_back(g);
    max_level_ = std::max(max_level_, gates_[g].level);
    for (GateId fo : fanout_gates(gates_[g].out)) {
      gates_[fo].level = std::max(gates_[fo].level, gates_[g].level + 1);
      if (--pending[fo] == 0) ready.push_back(fo);
    }
  }
  if (topo_.size() != gates_.size()) fail("combinational loop detected");
  // Stable level ordering: sort by (level, id) so engines can sweep levels.
  std::sort(topo_.begin(), topo_.end(), [this](GateId a, GateId b) {
    return gates_[a].level != gates_[b].level ? gates_[a].level < gates_[b].level
                                              : a < b;
  });

  finalized_ = true;
  if (g_verify_hook != nullptr) g_verify_hook(*this);
}

std::vector<std::vector<FlopId>> Netlist::flops_by_domain() const {
  std::vector<std::vector<FlopId>> out(domain_count_);
  for (FlopId f = 0; f < flops_.size(); ++f) out[flops_[f].domain].push_back(f);
  return out;
}

std::vector<std::vector<FlopId>> Netlist::flops_by_block() const {
  std::vector<std::vector<FlopId>> out(block_count_);
  for (FlopId f = 0; f < flops_.size(); ++f) out[flops_[f].block].push_back(f);
  return out;
}

std::vector<std::size_t> Netlist::gates_per_block() const {
  std::vector<std::size_t> out(block_count_, 0);
  for (const Gate& g : gates_) ++out[g.block];
  return out;
}

}  // namespace scap
