// Struct-of-arrays levelized view of a finalized netlist.
//
// The pointer-chasing Netlist representation (per-gate input spans, per-net
// fanout spans, ids in construction order) is the right hub for building and
// querying a design, but it is the wrong layout for sweep-style engines: a
// full-netlist evaluation pass takes one dependent load chain per gate and
// scatters its reads across the whole net table. PR 7's static screen proved
// the fix -- a flat (level, cell-type)-sorted gate schedule over compactly
// renumbered nets runs the same sweep >=5x faster -- and this view makes that
// layout a first-class, engine-independent artifact:
//
//  - Gates are stably sorted by (level, type): the schedule is a valid
//    topological order (all of a gate's inputs are written by lower levels)
//    and the evaluator's type dispatch becomes almost perfectly predicted.
//  - Nets are renumbered in sweep-write order: flop Q nets first (so state
//    loads are the leading num_flops() slots, exactly like a state vector),
//    then primary inputs, then other undriven nets, then gate outputs in
//    schedule order. A gate's fanin loads then land on lines written a few
//    levels earlier instead of striding the whole table.
//  - Per-gate input ids and per-net gate fanouts are pooled contiguously in
//    the compact space, with fanouts expressed as *schedule indices* so cone
//    engines never translate back through external gate ids.
//
// The view is immutable after construction and holds no reference to the
// Netlist it was built from except for result translation maps; engines share
// one instance read-only across threads (see FaultSimulator / BatchSim).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "netlist/netlist.h"

namespace scap {

class LevelizedView {
 public:
  explicit LevelizedView(const Netlist& nl);

  /// Convenience for the common sharing pattern: engines keep a
  /// shared_ptr<const LevelizedView> and hand copies to their shards.
  static std::shared_ptr<const LevelizedView> build(const Netlist& nl) {
    return std::make_shared<const LevelizedView>(nl);
  }

  // ---- sizes (identical to the source netlist) ---------------------------
  std::size_t num_nets() const { return net_of_compact_.size(); }
  std::size_t num_gates() const { return g_type_.size(); }
  std::size_t num_flops() const { return f_d_.size(); }
  std::size_t num_pis() const { return pi_net_.size(); }
  std::uint32_t max_level() const { return max_level_; }

  // ---- id translation ----------------------------------------------------
  /// External NetId -> compact net id (total: every net has a slot).
  NetId compact_net(NetId external) const { return compact_of_net_[external]; }
  /// Compact net id -> external NetId.
  NetId external_net(NetId compact) const { return net_of_compact_[compact]; }
  /// External GateId -> schedule index.
  std::uint32_t sched_of_gate(GateId g) const { return sched_of_gate_[g]; }
  /// Schedule index -> external GateId.
  GateId gate_at(std::uint32_t sched) const { return gate_of_sched_[sched]; }

  // ---- flat gate records, indexed by schedule position -------------------
  const CellType* gate_types() const { return g_type_.data(); }
  const std::uint8_t* gate_nins() const { return g_nin_.data(); }
  const std::uint32_t* gate_levels() const { return g_level_.data(); }
  /// Compact output net per scheduled gate. Gate i's output id is
  /// first_gate_out() + i by construction (outputs are numbered in schedule
  /// order), but the array spares callers the arithmetic.
  const NetId* gate_outs() const { return g_out_.data(); }
  /// Compact input ids of scheduled gate i:
  /// gate_ins()[gate_in_offsets()[i] .. gate_in_offsets()[i+1])
  const NetId* gate_ins() const { return g_in_.data(); }
  const std::uint32_t* gate_in_offsets() const { return g_in_off_.data(); }

  /// First compact id assigned to a gate output (everything below is a flop
  /// Q net, a primary input, or an undriven net -- i.e. a sweep source).
  NetId first_gate_out() const { return first_gate_out_; }

  // ---- compact-space topology -------------------------------------------
  /// Schedule indices of the gates reading compact net n (one entry per
  /// connected pin, mirroring Netlist::fanout_gates).
  std::span<const std::uint32_t> fanout_scheds(NetId compact) const {
    return {fo_pool_.data() + fo_begin_[compact],
            fo_begin_[compact + 1] - fo_begin_[compact]};
  }

  /// Compact Q / D net per flop (f_q()[f] == f by construction).
  const NetId* f_q() const { return f_q_.data(); }
  const NetId* f_d() const { return f_d_.data(); }
  /// Compact net per primary input, index-aligned with
  /// Netlist::primary_inputs().
  std::span<const NetId> pi_nets() const { return pi_net_; }

 private:
  std::vector<CellType> g_type_;
  std::vector<std::uint8_t> g_nin_;
  std::vector<std::uint32_t> g_level_;
  std::vector<NetId> g_out_;
  std::vector<NetId> g_in_;
  std::vector<std::uint32_t> g_in_off_;  ///< num_gates()+1 entries

  std::vector<NetId> compact_of_net_;
  std::vector<NetId> net_of_compact_;
  std::vector<std::uint32_t> sched_of_gate_;
  std::vector<GateId> gate_of_sched_;

  std::vector<std::uint32_t> fo_begin_;  ///< num_nets()+1 entries
  std::vector<std::uint32_t> fo_pool_;

  std::vector<NetId> f_q_;
  std::vector<NetId> f_d_;
  std::vector<NetId> pi_net_;

  NetId first_gate_out_ = 0;
  std::uint32_t max_level_ = 0;
};

}  // namespace scap
