// Structural Verilog interchange (writer + parser) for a round-trippable
// subset: one flat module, scalar ports/wires, named-port cell instances from
// this library's vocabulary (see cell_type.h). Block tags are encoded in
// instance names ("b<block>_..."), clock domains in clock port names
// ("clk<domain>"); negative-edge flops instantiate SDFFN.
//
// This is the library's analogue of the gate-level netlists the paper moves
// between DFT Compiler, TetraMAX and VCS.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "netlist/netlist.h"

namespace scap {

/// Pin name of the i-th input of a cell (A/B/C/D; MUX2 uses S/A/B).
std::string_view input_pin_name(CellType t, int i);

/// Serialize to structural Verilog. module_name defaults to "top".
void write_verilog(const Netlist& nl, std::ostream& os,
                   const std::string& module_name = "top");
std::string to_verilog(const Netlist& nl,
                       const std::string& module_name = "top");

/// Parse the subset written by write_verilog. Returns a finalized netlist.
/// Throws std::runtime_error with a line number on malformed input.
Netlist parse_verilog(std::string_view text);

/// Like parse_verilog, but for lint tooling: the netlist is built in
/// permissive mode (multi-driven nets keep their first driver instead of
/// aborting the parse) and is returned UNFINALIZED, so scap_lint can report
/// every structural violation in a broken design instead of stopping at the
/// first one. Syntax errors still throw.
Netlist parse_verilog_relaxed(std::string_view text);

}  // namespace scap
