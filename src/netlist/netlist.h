// Flat gate-level netlist with block tagging.
//
// The netlist is the hub data structure of the library: the SOC generator
// and the Verilog parser produce one, and every engine (logic/fault/timing
// simulation, ATPG, power analysis) consumes it read-only after finalize().
//
// Design notes:
//  - IDs are dense uint32 indices; gate inputs and net fanouts are pooled in
//    shared arrays for cache-friendly traversal (the fault simulator touches
//    millions of gate evaluations per pattern batch).
//  - Hierarchy is flattened; the paper's six SOC blocks (B1..B6) survive as a
//    per-instance block tag, which is all the power analyses need.
//  - Flip-flops are kept out of the combinational gate list; the two-frame
//    broadside semantics of launch-off-capture testing are implemented by
//    treating flop Q pins as pseudo primary inputs and D pins as pseudo
//    primary outputs of the combinational core.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netlist/cell_type.h"

namespace scap {

using NetId = std::uint32_t;
using GateId = std::uint32_t;
using FlopId = std::uint32_t;
using BlockId = std::uint16_t;
using DomainId = std::uint8_t;

inline constexpr std::uint32_t kNullId = 0xffffffffu;

enum class DriverKind : std::uint8_t { kNone, kGate, kFlop, kInput };

struct Gate {
  CellType type = CellType::kBuf;
  NetId out = kNullId;
  std::uint32_t in_begin = 0;  ///< offset into the pooled input array
  std::uint16_t in_count = 0;
  BlockId block = 0;
  std::uint32_t level = 0;  ///< combinational level (valid after finalize)
};

struct Flop {
  NetId d = kNullId;
  NetId q = kNullId;
  DomainId domain = 0;
  BlockId block = 0;
  bool neg_edge = false;
};

struct Net {
  DriverKind driver_kind = DriverKind::kNone;
  std::uint32_t driver = kNullId;  ///< GateId / FlopId / PI index
  std::uint32_t fo_begin = 0;      ///< pooled gate-fanout offset
  std::uint32_t fo_count = 0;
  std::uint32_t ffo_begin = 0;  ///< pooled flop-D-fanout offset
  std::uint32_t ffo_count = 0;
  bool is_po = false;
};

class Netlist {
 public:
  // ---- construction -------------------------------------------------------
  NetId add_net(std::string name = {});
  NetId add_input(std::string name = {});
  void mark_output(NetId net);
  GateId add_gate(CellType type, std::span<const NetId> inputs, NetId out,
                  BlockId block = 0);
  FlopId add_flop(NetId d, NetId q, DomainId domain, BlockId block,
                  bool neg_edge = false);
  void set_block_count(std::uint16_t n) { block_count_ = n; }
  void set_domain_count(std::uint8_t n) { domain_count_ = n; }

  /// Relaxed construction for lint tooling: add_gate/add_flop on an
  /// already-driven net record the first driver and keep going instead of
  /// throwing, so scap_lint can report *every* violation in a malformed
  /// design at once. finalize() still rejects such netlists (it recounts
  /// drivers from the gate/flop tables).
  void set_permissive(bool on) { permissive_ = on; }
  bool permissive() const { return permissive_; }

  /// Build fanout maps, levelize, and validate. Throws std::runtime_error on
  /// multiple drivers, undriven nets, arity mismatches or combinational loops.
  void finalize();
  bool finalized() const { return finalized_; }

  // ---- topology -----------------------------------------------------------
  std::size_t num_nets() const { return nets_.size(); }
  std::size_t num_gates() const { return gates_.size(); }
  std::size_t num_flops() const { return flops_.size(); }
  std::uint16_t block_count() const { return block_count_; }
  std::uint8_t domain_count() const { return domain_count_; }

  const Gate& gate(GateId g) const { return gates_[g]; }
  const Flop& flop(FlopId f) const { return flops_[f]; }
  const Net& net(NetId n) const { return nets_[n]; }

  std::span<const NetId> gate_inputs(GateId g) const {
    const Gate& gr = gates_[g];
    return {gate_inputs_.data() + gr.in_begin, gr.in_count};
  }

  /// Gates that read this net (a gate appears once per connected pin).
  std::span<const GateId> fanout_gates(NetId n) const {
    const Net& nr = nets_[n];
    return {fanout_pool_.data() + nr.fo_begin, nr.fo_count};
  }

  /// Flops whose D pin is this net.
  std::span<const FlopId> fanout_flops(NetId n) const {
    const Net& nr = nets_[n];
    return {flop_fanout_pool_.data() + nr.ffo_begin, nr.ffo_count};
  }

  std::span<const NetId> primary_inputs() const { return pis_; }
  std::span<const NetId> primary_outputs() const { return pos_; }

  /// Combinational gates in topological (level) order.
  std::span<const GateId> topo_order() const { return topo_; }
  std::uint32_t max_level() const { return max_level_; }

  const std::string& net_name(NetId n) const { return net_names_[n]; }

  // ---- derived maps -------------------------------------------------------
  /// Flops per clock domain.
  std::vector<std::vector<FlopId>> flops_by_domain() const;
  /// Flops per block.
  std::vector<std::vector<FlopId>> flops_by_block() const;
  /// Gate count per block (combinational instances only).
  std::vector<std::size_t> gates_per_block() const;

 private:
  void check_arity(CellType type, std::size_t n_inputs) const;
  void require_unfinalized() const;

  std::vector<Gate> gates_;
  std::vector<NetId> gate_inputs_;
  std::vector<Flop> flops_;
  std::vector<Net> nets_;
  std::vector<std::string> net_names_;
  std::vector<NetId> pis_;
  std::vector<NetId> pos_;
  std::vector<GateId> fanout_pool_;
  std::vector<FlopId> flop_fanout_pool_;
  std::vector<GateId> topo_;
  std::uint32_t max_level_ = 0;
  std::uint16_t block_count_ = 1;
  std::uint8_t domain_count_ = 1;
  bool finalized_ = false;
  bool permissive_ = false;
};

/// Optional verification callback finalize() invokes after a netlist passes
/// its built-in checks. The lint library (lint/lint.h) installs an env-gated
/// structural lint here when linked; the indirection keeps scap_netlist free
/// of an upward dependency. Returns the previously installed hook.
using NetlistVerifyHook = void (*)(const Netlist&);
NetlistVerifyHook set_netlist_verify_hook(NetlistVerifyHook hook);

}  // namespace scap
