#include "netlist/cell_type.h"

#include <array>
#include <cassert>

namespace scap {

namespace {

template <typename T, typename AndOp, typename OrOp, typename XorOp,
          typename NotOp, typename MuxOp>
T eval_generic(CellType t, std::span<const T> ins, T k0, T k1, AndOp land,
               OrOp lor, XorOp lxor, NotOp lnot, MuxOp lmux) {
  assert(static_cast<int>(ins.size()) == num_inputs(t));
  switch (t) {
    case CellType::kTie0:
      return k0;
    case CellType::kTie1:
      return k1;
    case CellType::kBuf:
    case CellType::kClkBuf:
    case CellType::kDff:  // D passthrough (combinational view of the D pin)
      return ins[0];
    case CellType::kInv:
      return lnot(ins[0]);
    case CellType::kAnd2:
      return land(ins[0], ins[1]);
    case CellType::kAnd3:
      return land(land(ins[0], ins[1]), ins[2]);
    case CellType::kAnd4:
      return land(land(ins[0], ins[1]), land(ins[2], ins[3]));
    case CellType::kNand2:
      return lnot(land(ins[0], ins[1]));
    case CellType::kNand3:
      return lnot(land(land(ins[0], ins[1]), ins[2]));
    case CellType::kNand4:
      return lnot(land(land(ins[0], ins[1]), land(ins[2], ins[3])));
    case CellType::kOr2:
      return lor(ins[0], ins[1]);
    case CellType::kOr3:
      return lor(lor(ins[0], ins[1]), ins[2]);
    case CellType::kOr4:
      return lor(lor(ins[0], ins[1]), lor(ins[2], ins[3]));
    case CellType::kNor2:
      return lnot(lor(ins[0], ins[1]));
    case CellType::kNor3:
      return lnot(lor(lor(ins[0], ins[1]), ins[2]));
    case CellType::kNor4:
      return lnot(lor(lor(ins[0], ins[1]), lor(ins[2], ins[3])));
    case CellType::kXor2:
      return lxor(ins[0], ins[1]);
    case CellType::kXnor2:
      return lnot(lxor(ins[0], ins[1]));
    case CellType::kMux2:
      return lmux(ins[0], ins[1], ins[2]);
  }
  return k0;
}

}  // namespace

std::uint8_t eval_scalar(CellType t, std::span<const std::uint8_t> ins) {
  auto land = [](std::uint8_t a, std::uint8_t b) -> std::uint8_t { return a & b; };
  auto lor = [](std::uint8_t a, std::uint8_t b) -> std::uint8_t { return a | b; };
  auto lxor = [](std::uint8_t a, std::uint8_t b) -> std::uint8_t { return a ^ b; };
  auto lnot = [](std::uint8_t a) -> std::uint8_t {
    return static_cast<std::uint8_t>(a ^ 1u);
  };
  auto lmux = [](std::uint8_t s, std::uint8_t a, std::uint8_t b) -> std::uint8_t {
    return s ? b : a;
  };
  return eval_generic<std::uint8_t>(t, ins, 0, 1, land, lor, lxor, lnot, lmux);
}

std::uint64_t eval_word(CellType t, std::span<const std::uint64_t> ins) {
  auto land = [](std::uint64_t a, std::uint64_t b) { return a & b; };
  auto lor = [](std::uint64_t a, std::uint64_t b) { return a | b; };
  auto lxor = [](std::uint64_t a, std::uint64_t b) { return a ^ b; };
  auto lnot = [](std::uint64_t a) { return ~a; };
  auto lmux = [](std::uint64_t s, std::uint64_t a, std::uint64_t b) {
    return (s & b) | (~s & a);
  };
  return eval_generic<std::uint64_t>(t, ins, 0ull, ~0ull, land, lor, lxor, lnot,
                                     lmux);
}

namespace {

constexpr V3 v3_and(V3 a, V3 b) {
  // can be 1 iff both can be 1; can be 0 iff either can be 0.
  const std::uint8_t can1 =
      static_cast<std::uint8_t>((a.bits & b.bits) & 0b10);
  const std::uint8_t can0 =
      static_cast<std::uint8_t>((a.bits | b.bits) & 0b01);
  return V3{static_cast<std::uint8_t>(can1 | can0)};
}

constexpr V3 v3_or(V3 a, V3 b) { return v3_not(v3_and(v3_not(a), v3_not(b))); }

constexpr V3 v3_xor(V3 a, V3 b) {
  if (a.is_x() || b.is_x()) return V3::x();
  return V3::of(a.value() ^ b.value());
}

constexpr V3 v3_mux(V3 s, V3 a, V3 b) {
  if (s.is0()) return a;
  if (s.is1()) return b;
  if (!a.is_x() && !b.is_x() && a == b) return a;  // select-independent
  return V3::x();
}

}  // namespace

V3 eval_v3(CellType t, std::span<const V3> ins) {
  auto land = [](V3 a, V3 b) { return v3_and(a, b); };
  auto lor = [](V3 a, V3 b) { return v3_or(a, b); };
  auto lxor = [](V3 a, V3 b) { return v3_xor(a, b); };
  auto lnot = [](V3 a) { return v3_not(a); };
  auto lmux = [](V3 s, V3 a, V3 b) { return v3_mux(s, a, b); };
  return eval_generic<V3>(t, ins, V3::zero(), V3::one(), land, lor, lxor, lnot,
                          lmux);
}

namespace {

struct NameEntry {
  CellType type;
  std::string_view name;
};

constexpr std::array<NameEntry, kNumCellTypes> kNames{{
    {CellType::kTie0, "TIE0"},   {CellType::kTie1, "TIE1"},
    {CellType::kBuf, "BUF"},     {CellType::kInv, "INV"},
    {CellType::kAnd2, "AND2"},   {CellType::kAnd3, "AND3"},
    {CellType::kAnd4, "AND4"},   {CellType::kNand2, "NAND2"},
    {CellType::kNand3, "NAND3"}, {CellType::kNand4, "NAND4"},
    {CellType::kOr2, "OR2"},     {CellType::kOr3, "OR3"},
    {CellType::kOr4, "OR4"},     {CellType::kNor2, "NOR2"},
    {CellType::kNor3, "NOR3"},   {CellType::kNor4, "NOR4"},
    {CellType::kXor2, "XOR2"},   {CellType::kXnor2, "XNOR2"},
    {CellType::kMux2, "MUX2"},   {CellType::kDff, "SDFF"},
    {CellType::kClkBuf, "CLKBUF"},
}};

}  // namespace

std::string_view cell_name(CellType t) {
  return kNames[static_cast<std::size_t>(t)].name;
}

bool cell_from_name(std::string_view name, CellType& out) {
  for (const auto& e : kNames) {
    if (e.name == name) {
      out = e.type;
      return true;
    }
  }
  return false;
}

}  // namespace scap
