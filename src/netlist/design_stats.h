// Design characteristics reporting (the raw material of the paper's Table 1).
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace scap {

struct DesignStats {
  std::size_t num_gates = 0;
  std::size_t num_nets = 0;
  std::size_t num_flops = 0;
  std::size_t num_neg_edge_flops = 0;
  std::size_t num_primary_inputs = 0;
  std::size_t num_primary_outputs = 0;
  std::size_t num_clock_domains = 0;
  std::size_t num_blocks = 0;
  std::uint32_t max_logic_level = 0;
  std::vector<std::size_t> gates_by_type;   ///< indexed by CellType
  std::vector<std::size_t> flops_by_domain;
  std::vector<std::size_t> flops_by_block;
  std::vector<std::size_t> gates_by_block;
};

DesignStats compute_design_stats(const Netlist& nl);

/// Human-readable multi-line summary.
std::string format_design_stats(const DesignStats& s);

}  // namespace scap
