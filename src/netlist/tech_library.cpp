#include "netlist/tech_library.h"

namespace scap {

namespace {

constexpr CellTiming timing_for(CellType t) {
  // Plausible 180 nm-class values. Inverter FO4 lands near 0.12 ns and a
  // loaded 4-input NAND near 0.4 ns, giving 15-30 logic levels within the
  // paper's 10 ns at-speed cycle at 100 MHz -- matching its observation that
  // the switching window is roughly half the 20 ns tester cycle.
  switch (t) {
    case CellType::kTie0:
    case CellType::kTie1:
      return {0.0, 0.0, 0.0, 0.0, 0.001, 0.0001};
    case CellType::kBuf:
      return {0.080, 0.075, 1.6, 0.0042, 0.0035, 0.0006};
    case CellType::kInv:
      return {0.045, 0.040, 1.8, 0.0040, 0.0030, 0.0005};
    case CellType::kAnd2:
      return {0.095, 0.090, 2.0, 0.0044, 0.0040, 0.0008};
    case CellType::kAnd3:
      return {0.115, 0.110, 2.2, 0.0046, 0.0046, 0.0010};
    case CellType::kAnd4:
      return {0.135, 0.130, 2.4, 0.0048, 0.0052, 0.0012};
    case CellType::kNand2:
      return {0.060, 0.050, 2.1, 0.0043, 0.0036, 0.0007};
    case CellType::kNand3:
      return {0.080, 0.065, 2.4, 0.0045, 0.0042, 0.0009};
    case CellType::kNand4:
      return {0.100, 0.080, 2.7, 0.0047, 0.0048, 0.0011};
    case CellType::kOr2:
      return {0.100, 0.095, 2.0, 0.0044, 0.0040, 0.0008};
    case CellType::kOr3:
      return {0.120, 0.115, 2.2, 0.0046, 0.0046, 0.0010};
    case CellType::kOr4:
      return {0.140, 0.135, 2.4, 0.0048, 0.0052, 0.0012};
    case CellType::kNor2:
      return {0.065, 0.055, 2.3, 0.0043, 0.0036, 0.0007};
    case CellType::kNor3:
      return {0.090, 0.075, 2.7, 0.0045, 0.0042, 0.0009};
    case CellType::kNor4:
      return {0.115, 0.095, 3.1, 0.0047, 0.0048, 0.0011};
    case CellType::kXor2:
      return {0.130, 0.125, 2.6, 0.0052, 0.0050, 0.0013};
    case CellType::kXnor2:
      return {0.130, 0.125, 2.6, 0.0052, 0.0050, 0.0013};
    case CellType::kMux2:
      return {0.120, 0.115, 2.4, 0.0050, 0.0048, 0.0012};
    case CellType::kDff:
      // clk->Q delay on the rise/fall intrinsics; D pin cap on input_cap.
      return {0.220, 0.215, 2.2, 0.0045, 0.0060, 0.0020};
    case CellType::kClkBuf:
      return {0.070, 0.070, 1.2, 0.0060, 0.0050, 0.0010};
  }
  return {};
}

constexpr std::array<CellTiming, kNumCellTypes> make_cells() {
  std::array<CellTiming, kNumCellTypes> cells{};
  for (std::size_t i = 0; i < kNumCellTypes; ++i) {
    cells[i] = timing_for(static_cast<CellType>(i));
  }
  return cells;
}

}  // namespace

const TechLibrary& TechLibrary::generic180() {
  static const TechLibrary lib(/*vdd=*/1.8, /*k_volt=*/0.9,
                               /*ir_alarm_fraction=*/0.10, make_cells());
  return lib;
}

}  // namespace scap
