#include "netlist/verilog.h"

#include <cctype>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace scap {

namespace {

constexpr std::string_view kMuxPins[] = {"S", "A", "B"};
constexpr std::string_view kAbcdPins[] = {"A", "B", "C", "D"};

}  // namespace

std::string_view input_pin_name(CellType t, int i) {
  if (t == CellType::kMux2) return kMuxPins[i];
  if (t == CellType::kDff) return "D";
  return kAbcdPins[i];
}

void write_verilog(const Netlist& nl, std::ostream& os,
                   const std::string& module_name) {
  // Port list: PIs, clock ports, POs.
  os << "module " << module_name << " (";
  bool first = true;
  auto emit_port = [&](const std::string& p) {
    if (!first) os << ", ";
    os << p;
    first = false;
  };
  for (NetId pi : nl.primary_inputs()) emit_port(nl.net_name(pi));
  for (std::uint8_t d = 0; d < nl.domain_count(); ++d) {
    emit_port("clk" + std::to_string(d));
  }
  for (NetId po : nl.primary_outputs()) emit_port(nl.net_name(po));
  os << ");\n";

  for (NetId pi : nl.primary_inputs()) {
    os << "  input " << nl.net_name(pi) << ";\n";
  }
  for (std::uint8_t d = 0; d < nl.domain_count(); ++d) {
    os << "  input clk" << static_cast<int>(d) << ";\n";
  }
  for (NetId po : nl.primary_outputs()) {
    os << "  output " << nl.net_name(po) << ";\n";
  }
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const Net& nr = nl.net(n);
    if (nr.driver_kind != DriverKind::kInput) {
      os << "  wire " << nl.net_name(n) << ";\n";
    }
  }

  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gr = nl.gate(g);
    os << "  " << cell_name(gr.type) << " b" << gr.block << "_g" << g << " (.Y("
       << nl.net_name(gr.out) << ")";
    const auto ins = nl.gate_inputs(g);
    for (std::size_t i = 0; i < ins.size(); ++i) {
      os << ", ." << input_pin_name(gr.type, static_cast<int>(i)) << "("
         << nl.net_name(ins[i]) << ")";
    }
    os << ");\n";
  }
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    const Flop& fr = nl.flop(f);
    os << "  " << (fr.neg_edge ? "SDFFN" : "SDFF") << " b" << fr.block << "_f"
       << f << " (.Q(" << nl.net_name(fr.q) << "), .D(" << nl.net_name(fr.d)
       << "), .CK(clk" << static_cast<int>(fr.domain) << "));\n";
  }
  os << "endmodule\n";
}

std::string to_verilog(const Netlist& nl, const std::string& module_name) {
  std::ostringstream os;
  write_verilog(nl, os, module_name);
  return os.str();
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------
namespace {

struct Token {
  enum Kind { kIdent, kPunct, kEnd } kind = kEnd;
  std::string text;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    skip_ws_and_comments();
    Token t;
    t.line = line_;
    if (pos_ >= text_.size()) return t;
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '\\') {
      t.kind = Token::kIdent;
      std::size_t start = pos_;
      if (c == '\\') {  // escaped identifier: up to whitespace
        ++pos_;
        start = pos_;
        while (pos_ < text_.size() &&
               !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
      } else {
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '$')) {
          ++pos_;
        }
      }
      t.text = std::string(text_.substr(start, pos_ - start));
      return t;
    }
    t.kind = Token::kPunct;
    t.text = std::string(1, c);
    ++pos_;
    return t;
  }

 private:
  void skip_ws_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < text_.size() &&
               !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
          if (text_[pos_] == '\n') ++line_;
          ++pos_;
        }
        pos_ = std::min(pos_ + 2, text_.size());
      } else {
        return;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  explicit Parser(std::string_view text, bool relaxed = false)
      : lex_(text), relaxed_(relaxed) {
    nl_.set_permissive(relaxed);
    advance();
  }

  Netlist parse() {
    expect_ident("module");
    expect_kind(Token::kIdent);  // module name (ignored)
    expect_punct("(");
    while (!at_punct(")")) advance();  // header port list: names repeated below
    expect_punct(")");
    expect_punct(";");

    // Declarations and instances until endmodule.
    while (!at_ident("endmodule")) {
      if (at_ident("input")) {
        advance();
        parse_decl_list([&](const std::string& name) {
          if (name.rfind("clk", 0) == 0) {
            clock_ports_.push_back(name);
          } else {
            nets_[name] = nl_.add_input(name);
          }
        });
      } else if (at_ident("output")) {
        advance();
        parse_decl_list([&](const std::string& name) { outputs_.push_back(name); });
      } else if (at_ident("wire")) {
        advance();
        parse_decl_list([&](const std::string& name) { ensure_net(name); });
      } else if (cur_.kind == Token::kIdent) {
        parse_instance();
      } else {
        error("unexpected token '" + cur_.text + "'");
      }
    }

    // Domain count must cover both the declared clock ports and every domain
    // a flop actually references: a "clk7" CK connection without a matching
    // clk7 port used to leave domain_count too small, and flops_by_domain()
    // then indexed out of bounds.
    std::size_t domains = std::max<std::size_t>(1, clock_ports_.size());
    for (FlopId f = 0; f < nl_.num_flops(); ++f) {
      domains = std::max<std::size_t>(domains, nl_.flop(f).domain + 1u);
    }
    nl_.set_domain_count(static_cast<std::uint8_t>(domains));
    std::uint16_t max_block = 0;
    for (GateId g = 0; g < nl_.num_gates(); ++g) {
      max_block = std::max(max_block, nl_.gate(g).block);
    }
    for (FlopId f = 0; f < nl_.num_flops(); ++f) {
      max_block = std::max(max_block, nl_.flop(f).block);
    }
    nl_.set_block_count(static_cast<std::uint16_t>(max_block + 1));
    for (const std::string& po : outputs_) nl_.mark_output(find_net(po));
    if (!relaxed_) nl_.finalize();
    return std::move(nl_);
  }

 private:
  [[noreturn]] void error(const std::string& msg) const {
    throw std::runtime_error("verilog parse error (line " +
                             std::to_string(cur_.line) + "): " + msg);
  }

  void advance() { cur_ = lex_.next(); }
  bool at_ident(std::string_view s) const {
    return cur_.kind == Token::kIdent && cur_.text == s;
  }
  bool at_punct(std::string_view s) const {
    return cur_.kind == Token::kPunct && cur_.text == s;
  }
  void expect_ident(std::string_view s) {
    if (!at_ident(s)) error("expected '" + std::string(s) + "'");
    advance();
  }
  void expect_punct(std::string_view s) {
    if (!at_punct(s)) error("expected '" + std::string(s) + "'");
    advance();
  }
  std::string expect_kind(Token::Kind k) {
    if (cur_.kind != k) error("unexpected token '" + cur_.text + "'");
    std::string t = cur_.text;
    advance();
    return t;
  }

  template <typename Fn>
  void parse_decl_list(Fn&& fn) {
    for (;;) {
      fn(expect_kind(Token::kIdent));
      if (at_punct(",")) {
        advance();
        continue;
      }
      expect_punct(";");
      return;
    }
  }

  NetId ensure_net(const std::string& name) {
    auto it = nets_.find(name);
    if (it != nets_.end()) return it->second;
    const NetId id = nl_.add_net(name);
    nets_[name] = id;
    return id;
  }

  NetId find_net(const std::string& name) const {
    auto it = nets_.find(name);
    if (it == nets_.end()) {
      throw std::runtime_error("verilog parse error: unknown net '" + name + "'");
    }
    return it->second;
  }

  /// Block tag from an instance name "b<block>_..."; 0 if absent.
  static BlockId block_from_name(const std::string& inst) {
    if (inst.size() < 3 || inst[0] != 'b') return 0;
    std::size_t i = 1;
    std::uint32_t v = 0;
    while (i < inst.size() && std::isdigit(static_cast<unsigned char>(inst[i]))) {
      v = v * 10 + static_cast<std::uint32_t>(inst[i] - '0');
      ++i;
    }
    if (i == 1 || i >= inst.size() || inst[i] != '_') return 0;
    return static_cast<BlockId>(v);
  }

  void parse_instance() {
    const std::string cell = expect_kind(Token::kIdent);
    const std::string inst = expect_kind(Token::kIdent);
    const BlockId block = block_from_name(inst);

    std::map<std::string, std::string> conns;
    expect_punct("(");
    for (;;) {
      expect_punct(".");
      const std::string pin = expect_kind(Token::kIdent);
      expect_punct("(");
      const std::string net = expect_kind(Token::kIdent);
      expect_punct(")");
      conns[pin] = net;
      if (at_punct(",")) {
        advance();
        continue;
      }
      break;
    }
    expect_punct(")");
    expect_punct(";");

    auto pin_net = [&](std::string_view pin) -> NetId {
      auto it = conns.find(std::string(pin));
      if (it == conns.end()) error(cell + " " + inst + ": missing pin ." + std::string(pin));
      return ensure_net(it->second);
    };

    if (cell == "SDFF" || cell == "SDFFN") {
      const NetId d = pin_net("D");
      const NetId q = pin_net("Q");
      auto it = conns.find("CK");
      if (it == conns.end()) error(inst + ": flop missing .CK");
      DomainId dom = 0;
      const std::string& ck = it->second;
      if (ck.rfind("clk", 0) == 0 && ck.size() > 3) {
        // Parse the suffix by hand: std::stoi would escape as a bare
        // std::invalid_argument (no line info) on names like "clk_late",
        // and silently accept trailing junk like "clk0x". Non-numeric
        // clock names fall back to domain 0.
        std::uint32_t v = 0;
        bool numeric = true;
        for (std::size_t i = 3; i < ck.size(); ++i) {
          if (!std::isdigit(static_cast<unsigned char>(ck[i]))) {
            numeric = false;
            break;
          }
          v = v * 10 + static_cast<std::uint32_t>(ck[i] - '0');
        }
        if (numeric) {
          if (v > 0xff) error(inst + ": clock domain " + ck + " out of range");
          dom = static_cast<DomainId>(v);
        }
      }
      nl_.add_flop(d, q, dom, block, cell == "SDFFN");
      return;
    }

    CellType type;
    if (!cell_from_name(cell, type)) error("unknown cell '" + cell + "'");
    std::vector<NetId> ins;
    for (int i = 0; i < num_inputs(type); ++i) {
      ins.push_back(pin_net(input_pin_name(type, i)));
    }
    nl_.add_gate(type, ins, pin_net("Y"), block);
  }

  Lexer lex_;
  Token cur_;
  bool relaxed_ = false;
  Netlist nl_;
  std::map<std::string, NetId> nets_;
  std::vector<std::string> outputs_;
  std::vector<std::string> clock_ports_;
};

}  // namespace

Netlist parse_verilog(std::string_view text) { return Parser(text).parse(); }

Netlist parse_verilog_relaxed(std::string_view text) {
  return Parser(text, /*relaxed=*/true).parse();
}

}  // namespace scap
