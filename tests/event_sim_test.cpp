#include <gtest/gtest.h>

#include <stdexcept>

#include "atpg/context.h"
#include "core/pattern_sim.h"
#include "layout/parasitics.h"
#include "sim/event_sim.h"
#include "sim/logic_sim.h"
#include "sim/vcd.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace scap {
namespace {

/// Inverter chain q0 -> inv -> inv -> ... -> d0; returns the netlist.
Netlist inv_chain(int n) {
  Netlist nl;
  const NetId q = nl.add_net("q0");
  NetId cur = q;
  for (int i = 0; i < n; ++i) {
    const NetId out = nl.add_net();
    const NetId ins[] = {cur};
    nl.add_gate(CellType::kInv, ins, out);
    cur = out;
  }
  nl.add_flop(cur, q, 0, 0);
  nl.finalize();
  return nl;
}

struct Rig {
  Netlist nl;
  Floorplan fp = Floorplan::turbo_eagle_like(100.0, 4);
  Placement pl;
  Parasitics par;
  DelayModel dm;

  explicit Rig(Netlist n)
      : nl(std::move(n)),
        pl([&] {
          Rng rng(1);
          return Placement::place(nl, fp, rng);
        }()),
        par(Parasitics::extract(nl, pl, TechLibrary::generic180())),
        dm(nl, TechLibrary::generic180(), par) {}
};

TEST(EventSim, ChainDelaysAccumulate) {
  Rig rig(inv_chain(4));
  const Netlist& nl = rig.nl;
  std::vector<std::uint8_t> init(nl.num_nets(), 0);
  // Settle: q0=0 -> alternating 1,0,1,0 along the chain.
  LogicSim logic(nl);
  std::vector<std::uint8_t> pi;
  logic.eval_frame(std::vector<std::uint8_t>{0}, pi, init);

  EventSim sim(nl, rig.dm);
  const Stimulus stim{nl.flop(0).q, 0.0, 1};
  const SimTrace trace = sim.run(init, std::span<const Stimulus>(&stim, 1));

  // One toggle per chain stage plus the stimulus itself.
  ASSERT_EQ(trace.toggles.size(), 5u);
  double prev = -1.0;
  for (const ToggleEvent& t : trace.toggles) {
    EXPECT_GT(t.t_ns, prev);  // strictly increasing along the chain
    prev = t.t_ns;
  }
  // STW equals the sum of the stage delays.
  double expect = 0.0;
  std::uint8_t v = 1;
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    v ^= 1;  // inverter flips; delay depends on output edge
    expect += v ? rig.dm.rise_ns(g) : rig.dm.fall_ns(g);
  }
  EXPECT_NEAR(trace.last_toggle_ns, expect, 1e-9);
}

TEST(EventSim, NoStimulusNoToggles) {
  Rig rig(inv_chain(3));
  std::vector<std::uint8_t> init(rig.nl.num_nets(), 0);
  LogicSim logic(rig.nl);
  std::vector<std::uint8_t> pi;
  logic.eval_frame(std::vector<std::uint8_t>{0}, pi, init);
  EventSim sim(rig.nl, rig.dm);
  const SimTrace trace = sim.run(init, {});
  EXPECT_TRUE(trace.toggles.empty());
  EXPECT_EQ(trace.last_toggle_ns, 0.0);
}

TEST(EventSim, StimulusEqualToCurrentValueAbsorbed) {
  Rig rig(inv_chain(3));
  std::vector<std::uint8_t> init(rig.nl.num_nets(), 0);
  LogicSim logic(rig.nl);
  std::vector<std::uint8_t> pi;
  logic.eval_frame(std::vector<std::uint8_t>{0}, pi, init);
  EventSim sim(rig.nl, rig.dm);
  const Stimulus stim{rig.nl.flop(0).q, 0.0, init[rig.nl.flop(0).q]};
  const SimTrace trace = sim.run(init, std::span<const Stimulus>(&stim, 1));
  EXPECT_TRUE(trace.toggles.empty());
}

/// Reconvergent circuit where a long reconvergence path makes a hazard
/// pulse wider than the XOR's own delay, so it must propagate:
///   q0 ------------------------+
///                              XOR -> d0
///   q0 -> BUF -> BUF -> BUF ---+
TEST(EventSim, GlitchOnReconvergence) {
  Netlist nl;
  const NetId q = nl.add_net("q0");
  NetId slow = q;
  for (int i = 0; i < 3; ++i) {
    const NetId out = nl.add_net();
    const NetId bi[] = {slow};
    nl.add_gate(CellType::kBuf, bi, out);
    slow = out;
  }
  const NetId y = nl.add_net("y");
  const NetId xin[] = {q, slow};
  nl.add_gate(CellType::kXor2, xin, y);
  nl.add_flop(y, q, 0, 0);
  nl.finalize();

  Rig rig(std::move(nl));
  std::vector<std::uint8_t> init(rig.nl.num_nets(), 0);
  LogicSim logic(rig.nl);
  std::vector<std::uint8_t> pi;
  logic.eval_frame(std::vector<std::uint8_t>{0}, pi, init);
  ASSERT_EQ(init[y], 0);  // xor(0, 0)

  EventSim sim(rig.nl, rig.dm);
  const Stimulus stim{q, 0.0, 1};
  const SimTrace trace = sim.run(init, std::span<const Stimulus>(&stim, 1));
  // y pulses high while the slow path lags, then returns: two y toggles.
  int y_toggles = 0;
  for (const ToggleEvent& t : trace.toggles) y_toggles += (t.net == y);
  EXPECT_EQ(y_toggles, 2) << "wide hazard pulses must propagate";
  // Final value settles back to the zero-delay result.
  std::uint8_t final_y = init[y];
  for (const ToggleEvent& t : trace.toggles) {
    if (t.net == y) final_y = t.rising ? 1 : 0;
  }
  EXPECT_EQ(final_y, 0);
}

TEST(EventSim, FinalValuesMatchZeroDelayFrame2) {
  // The fundamental consistency property: after all events settle, the
  // event-driven simulation must agree with the zero-delay evaluation of the
  // post-launch state.
  const SocDesign& soc = test::tiny_soc();
  const Netlist& nl = soc.netlist;
  const TestContext ctx = TestContext::for_domain(nl, 0);
  PatternAnalyzer analyzer(soc, TechLibrary::generic180());
  LogicSim logic(nl);
  Rng rng(2024);

  for (int trial = 0; trial < 8; ++trial) {
    Pattern p;
    p.s1.resize(nl.num_flops());
    for (auto& b : p.s1) b = static_cast<std::uint8_t>(rng.below(2));
    const PatternAnalysis pa = analyzer.analyze(ctx, p);

    // Reconstruct final values from initial values + toggles.
    std::vector<std::uint8_t> final_vals = pa.frame1_nets;
    for (const ToggleEvent& t : pa.trace.toggles) {
      final_vals[t.net] = t.rising ? 1 : 0;
    }
    // Zero-delay frame 2.
    std::vector<std::uint8_t> s2(nl.num_flops());
    for (FlopId f = 0; f < nl.num_flops(); ++f) {
      s2[f] = ctx.active[f] ? pa.frame1_nets[nl.flop(f).d] : p.s1[f];
    }
    std::vector<std::uint8_t> f2;
    logic.eval_frame(s2, ctx.pi_values, f2);
    for (NetId n = 0; n < nl.num_nets(); ++n) {
      ASSERT_EQ(final_vals[n], f2[n]) << "trial " << trial << " net " << n;
    }
  }
}

TEST(EventSim, SettleTimes) {
  Rig rig(inv_chain(2));
  std::vector<std::uint8_t> init(rig.nl.num_nets(), 0);
  LogicSim logic(rig.nl);
  std::vector<std::uint8_t> pi;
  logic.eval_frame(std::vector<std::uint8_t>{0}, pi, init);
  EventSim sim(rig.nl, rig.dm);
  const Stimulus stim{rig.nl.flop(0).q, 1.5, 1};
  const SimTrace trace = sim.run(init, std::span<const Stimulus>(&stim, 1));
  const auto settle = EventSim::settle_times(trace, rig.nl.num_nets());
  EXPECT_DOUBLE_EQ(settle[rig.nl.flop(0).q], 1.5);
  EXPECT_GT(settle[rig.nl.gate(0).out], 1.5);
  EXPECT_GT(settle[rig.nl.gate(1).out], settle[rig.nl.gate(0).out]);
}

TEST(DelayModel, DroopScalesDelays) {
  Rig rig(inv_chain(3));
  const TechLibrary& lib = TechLibrary::generic180();
  DelayModel dm = rig.dm;
  const double base = dm.rise_ns(1);
  std::vector<double> droop(rig.nl.num_gates(), 0.1);  // 100 mV everywhere
  dm.set_droop(lib, droop);
  EXPECT_NEAR(dm.rise_ns(1), base * (1.0 + lib.k_volt() * 0.1), 1e-12);
  dm.set_droop(lib, {});  // reset
  EXPECT_DOUBLE_EQ(dm.rise_ns(1), base);
}

TEST(DelayModel, SetDroopValidatesSize) {
  Rig rig(inv_chain(3));
  const TechLibrary& lib = TechLibrary::generic180();
  DelayModel dm = rig.dm;
  const std::vector<double> wrong(rig.nl.num_gates() + 1, 0.05);
  EXPECT_THROW(dm.set_droop(lib, wrong), std::invalid_argument);
  const std::vector<double> short_vec(rig.nl.num_gates() - 1, 0.05);
  EXPECT_THROW(dm.set_droop(lib, short_vec), std::invalid_argument);
  // The failed calls must not have corrupted the model.
  EXPECT_DOUBLE_EQ(dm.rise_ns(1), rig.dm.rise_ns(1));
}

TEST(Vcd, WellFormedOutput) {
  Rig rig(inv_chain(2));
  std::vector<std::uint8_t> init(rig.nl.num_nets(), 0);
  LogicSim logic(rig.nl);
  std::vector<std::uint8_t> pi;
  logic.eval_frame(std::vector<std::uint8_t>{0}, pi, init);
  EventSim sim(rig.nl, rig.dm);
  const Stimulus stim{rig.nl.flop(0).q, 0.0, 1};
  const SimTrace trace = sim.run(init, std::span<const Stimulus>(&stim, 1));

  const std::string vcd = to_vcd(rig.nl, init, trace, "chain");
  EXPECT_NE(vcd.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(vcd.find("$scope module chain $end"), std::string::npos);
  EXPECT_NE(vcd.find("$dumpvars"), std::string::npos);
  // One $var per net.
  std::size_t vars = 0, pos = 0;
  while ((pos = vcd.find("$var wire 1 ", pos)) != std::string::npos) {
    ++vars;
    ++pos;
  }
  EXPECT_EQ(vars, rig.nl.num_nets());
  // Timestamps strictly: at least one '#' record.
  EXPECT_NE(vcd.find("\n#0"), std::string::npos);
}

}  // namespace
}  // namespace scap
