#include <gtest/gtest.h>

#include "atpg/fault.h"
#include "test_helpers.h"

namespace scap {
namespace {

TEST(FaultModel, EnumerationCountsTiny) {
  Netlist nl = test::tiny_netlist();
  const auto faults = enumerate_faults(nl);
  // Per gate: output stem + per-pin branches; per flop: Q stem + D branch.
  // 2 NAND2 gates: 2*(1+2) sites; 3 flops: 3*(1+1) sites; times 2 types.
  EXPECT_EQ(faults.size(), 2u * (2u * 3u + 3u * 2u));
}

TEST(FaultModel, EveryFaultHasBothPolarities) {
  Netlist nl = test::tiny_netlist();
  const auto faults = enumerate_faults(nl);
  std::size_t str = 0, stf = 0;
  for (const auto& f : faults) {
    (f.type == TdfType::kSlowToRise ? str : stf) += 1;
  }
  EXPECT_EQ(str, stf);
}

TEST(FaultModel, V1V2Polarity) {
  TdfFault f;
  f.type = TdfType::kSlowToRise;
  EXPECT_EQ(f.v1(), 0);
  EXPECT_EQ(f.v2(), 1);
  f.type = TdfType::kSlowToFall;
  EXPECT_EQ(f.v1(), 1);
  EXPECT_EQ(f.v2(), 0);
}

TEST(FaultCollapse, RemovesSingleFanoutBranches) {
  Netlist nl = test::tiny_netlist();
  const auto all = enumerate_faults(nl);
  const auto collapsed = collapse_faults(nl, all);
  EXPECT_LT(collapsed.size(), all.size());
  // n1 feeds gate1 pin0 AND flop0 (two loads) -> its branches survive.
  const NetId n1 = nl.gate(0).out;
  std::size_t n1_branches = 0;
  for (const auto& f : collapsed) {
    if (f.net == n1 && f.site != FaultSite::kStem) ++n1_branches;
  }
  EXPECT_EQ(n1_branches, 4u);  // gate branch + flop branch, both polarities
  // pi0 feeds only gate1 pin1 (single load) -> branch collapsed into stem...
  // but pi0 has no stem fault (no gate/flop driver enumerates it), so the
  // branch fault must survive collapsing.
  const NetId pi0 = nl.primary_inputs()[0];
  std::size_t pi_faults = 0;
  for (const auto& f : collapsed) pi_faults += (f.net == pi0);
  EXPECT_EQ(pi_faults, 2u);
}

TEST(FaultCollapse, DropsBufInvOutputStems) {
  Netlist nl;
  const NetId q = nl.add_net("q");
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId ins[] = {q};
  nl.add_gate(CellType::kInv, ins, a);
  const NetId ins2[] = {a};
  nl.add_gate(CellType::kBuf, ins2, b);
  nl.add_flop(b, q, 0, 0);
  nl.finalize();

  const auto collapsed = collapse_faults(nl, enumerate_faults(nl));
  for (const auto& f : collapsed) {
    if (f.site == FaultSite::kStem) {
      const Net& nr = nl.net(f.net);
      if (nr.driver_kind == DriverKind::kGate) {
        const CellType t = nl.gate(nr.driver).type;
        EXPECT_NE(t, CellType::kInv);
        EXPECT_NE(t, CellType::kBuf);
      }
    }
  }
}

TEST(FaultCollapse, KeepsAllNetsCovered) {
  // Collapsing must never make a net fault-free if it had faults before:
  // every multi-load net keeps its stem.
  const Netlist& nl = test::tiny_soc().netlist;
  const auto collapsed = collapse_faults(nl, enumerate_faults(nl));
  std::vector<bool> has_fault(nl.num_nets(), false);
  for (const auto& f : collapsed) has_fault[f.net] = true;
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const CellType t = nl.gate(g).type;
    if (t == CellType::kBuf || t == CellType::kInv) continue;
    EXPECT_TRUE(has_fault[nl.gate(g).out])
        << "gate " << g << " output lost all faults";
  }
}

TEST(FaultBlock, FollowsSiteLocation) {
  Netlist nl = test::tiny_netlist();
  // Stem on gate0's output -> block 0; branch into gate1 -> block 1.
  TdfFault stem{nl.gate(0).out, FaultSite::kStem, kNullId, 0,
                TdfType::kSlowToRise};
  EXPECT_EQ(fault_block(nl, stem), 0);
  TdfFault branch{nl.gate(0).out, FaultSite::kGateBranch, 1, 0,
                  TdfType::kSlowToRise};
  EXPECT_EQ(fault_block(nl, branch), 1);
  TdfFault fbranch{nl.flop(2).d, FaultSite::kFlopBranch, 2, 0,
                   TdfType::kSlowToFall};
  EXPECT_EQ(fault_block(nl, fbranch), 1);
}

TEST(FaultDescribe, ReadableStrings) {
  Netlist nl = test::tiny_netlist();
  TdfFault stem{nl.gate(0).out, FaultSite::kStem, kNullId, 0,
                TdfType::kSlowToRise};
  EXPECT_EQ(describe_fault(nl, stem), "n1[STR]");
  TdfFault branch{nl.gate(0).out, FaultSite::kGateBranch, 1, 0,
                  TdfType::kSlowToFall};
  EXPECT_EQ(describe_fault(nl, branch), "n1->g1.0[STF]");
}

TEST(FaultModel, GeneratedSocScale) {
  const Netlist& nl = test::tiny_soc().netlist;
  const auto all = enumerate_faults(nl);
  const auto collapsed = collapse_faults(nl, all);
  EXPECT_GT(all.size(), 2 * nl.num_gates());
  EXPECT_GT(collapsed.size(), all.size() / 2);
  EXPECT_LT(collapsed.size(), all.size());
}

}  // namespace
}  // namespace scap
