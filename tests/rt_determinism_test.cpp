// Property tests for the runtime's central contract: every parallelized
// pipeline produces bit-identical results at any SCAP_THREADS. Each test runs
// the same workload with the global pool at 1 thread and at 4 threads and
// compares outputs with exact (==) equality -- never EXPECT_NEAR.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "atpg/fault_sim.h"
#include "atpg/pattern.h"
#include "core/experiment.h"
#include "core/power_aware.h"
#include "core/validation.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "power/power_grid.h"
#include "power/statistical.h"
#include "rt/thread_pool.h"

namespace scap {
namespace {

/// Same miniature fixture as core_flow_test; built once at whatever
/// concurrency the environment selects (the point under test is that this
/// does not matter).
const Experiment& exp_fixture() {
  static Experiment* exp = new Experiment(Experiment::standard(0.012, 2007));
  return *exp;
}

/// Run `fn` with the global pool pinned to `threads`, restoring the
/// environment-selected default afterwards.
template <typename Fn>
auto at_threads(std::size_t threads, Fn&& fn) {
  rt::ThreadPool::set_global_concurrency(threads);
  auto out = fn();
  rt::ThreadPool::set_global_concurrency(0);
  return out;
}

void expect_patterns_identical(const PatternSet& a, const PatternSet& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.domain, b.domain);
  for (std::size_t p = 0; p < a.size(); ++p) {
    ASSERT_EQ(a.patterns[p].s1, b.patterns[p].s1) << "pattern " << p;
  }
}

void expect_reports_identical(const std::vector<ScapReport>& a,
                              const std::vector<ScapReport>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stw_ns, b[i].stw_ns) << "pattern " << i;
    EXPECT_EQ(a[i].period_ns, b[i].period_ns) << "pattern " << i;
    EXPECT_EQ(a[i].num_toggles, b[i].num_toggles) << "pattern " << i;
    EXPECT_EQ(a[i].vdd_energy_pj, b[i].vdd_energy_pj) << "pattern " << i;
    EXPECT_EQ(a[i].vss_energy_pj, b[i].vss_energy_pj) << "pattern " << i;
    EXPECT_EQ(a[i].vdd_energy_total_pj, b[i].vdd_energy_total_pj)
        << "pattern " << i;
    EXPECT_EQ(a[i].vss_energy_total_pj, b[i].vss_energy_total_pj)
        << "pattern " << i;
  }
}

TEST(RtDeterminism, Fig2ConventionalPipeline) {
  // Figure 2's pipeline: conventional random-fill ATPG, then the per-pattern
  // SCAP profile of the whole set.
  const Experiment& exp = exp_fixture();
  AtpgOptions opt;
  opt.seed = 99;
  opt.fill = FillMode::kRandom;
  auto run = [&] {
    FlowResult flow =
        run_conventional_atpg(exp.soc.netlist, exp.ctx, exp.faults, opt);
    std::vector<ScapReport> scap =
        scap_profile(exp.soc, *exp.lib, exp.ctx, flow.patterns);
    return std::pair(std::move(flow), std::move(scap));
  };
  const auto at1 = at_threads(1, run);
  const auto at4 = at_threads(4, run);

  expect_patterns_identical(at1.first.patterns, at4.first.patterns);
  EXPECT_EQ(at1.first.new_detects_per_pattern,
            at4.first.new_detects_per_pattern);
  EXPECT_EQ(at1.first.coverage_curve(), at4.first.coverage_curve());
  expect_reports_identical(at1.second, at4.second);
}

TEST(RtDeterminism, Fig6PowerAwarePipeline) {
  // Figure 6's pipeline: the stepwise power-aware flow plus its SCAP profile.
  const Experiment& exp = exp_fixture();
  AtpgOptions opt;
  opt.seed = 99;
  opt.fill = FillMode::kQuiet;
  const StepPlan plan = StepPlan::paper_default(exp.soc.netlist.block_count());
  auto run = [&] {
    FlowResult flow = run_power_aware_atpg(exp.soc.netlist, exp.ctx,
                                           exp.faults, plan, opt);
    std::vector<ScapReport> scap =
        scap_profile(exp.soc, *exp.lib, exp.ctx, flow.patterns);
    return std::pair(std::move(flow), std::move(scap));
  };
  const auto at1 = at_threads(1, run);
  const auto at4 = at_threads(4, run);

  expect_patterns_identical(at1.first.patterns, at4.first.patterns);
  EXPECT_EQ(at1.first.step_start, at4.first.step_start);
  EXPECT_EQ(at1.first.coverage_curve(), at4.first.coverage_curve());
  expect_reports_identical(at1.second, at4.second);
}

TEST(RtDeterminism, FaultGradeShardingInvariant) {
  // The fault-parallel grade must report the same first-detect pattern per
  // fault and the same per-pattern detect counts as the serial pass.
  const Experiment& exp = exp_fixture();
  const PatternSet pats =
      random_pattern_set(96, exp.ctx.num_vars(), /*seed=*/2007);
  auto run = [&] {
    FaultSimulator fsim(exp.soc.netlist, exp.ctx);
    std::vector<std::size_t> counts;
    std::vector<std::size_t> first =
        fsim.grade(pats.patterns, exp.faults, &counts);
    return std::pair(std::move(first), std::move(counts));
  };
  const auto at1 = at_threads(1, run);
  const auto at4 = at_threads(4, run);
  EXPECT_EQ(at1.first, at4.first);
  EXPECT_EQ(at1.second, at4.second);
}

TEST(RtDeterminism, FaultGradeBatchWidthInvariant) {
  // grade() packs 64*W patterns per block; the first-detect indices (and
  // per-pattern credit counts) must not depend on W or the thread count.
  const Experiment& exp = exp_fixture();
  const PatternSet pats =
      random_pattern_set(200, exp.ctx.num_vars(), /*seed=*/2008);
  auto run_at = [&](std::size_t words) {
    FaultSimulator fsim(exp.soc.netlist, exp.ctx);
    fsim.set_batch_words(words);
    std::vector<std::size_t> counts;
    std::vector<std::size_t> first =
        fsim.grade(pats.patterns, exp.faults, &counts);
    return std::pair(std::move(first), std::move(counts));
  };
  const auto base = at_threads(1, [&] { return run_at(1); });
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const std::size_t words :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      const auto got = at_threads(threads, [&] { return run_at(words); });
      EXPECT_EQ(got.first, base.first)
          << "threads=" << threads << " W=" << words;
      EXPECT_EQ(got.second, base.second)
          << "threads=" << threads << " W=" << words;
    }
  }
}

TEST(RtDeterminism, GridSolveRedBlackInvariant) {
  // A grid large enough to take the parallel red-black path (>= 8192 nodes).
  const Experiment& exp = exp_fixture();
  PowerGridOptions gopt;
  gopt.nx = 96;
  gopt.ny = 96;
  const PowerGrid grid(exp.soc.floorplan, gopt);
  std::vector<Point> where;
  std::vector<double> amps;
  const Netlist& nl = exp.soc.netlist;
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    where.push_back(exp.soc.placement.gate_pos(g));
    amps.push_back(2e-6 * static_cast<double>(1 + g % 5));
  }
  auto run = [&] { return grid.solve(where, amps, /*vdd_rail=*/true); };
  const GridSolution at1 = at_threads(1, run);
  const GridSolution at4 = at_threads(4, run);

  EXPECT_EQ(at1.iterations, at4.iterations);
  EXPECT_EQ(at1.converged, at4.converged);
  EXPECT_EQ(at1.final_delta_v, at4.final_delta_v);
  EXPECT_EQ(at1.drop_v, at4.drop_v);  // element-wise bit identity
  EXPECT_TRUE(at1.converged);
}

TEST(RtDeterminism, StatisticalAnalysisInvariant) {
  const Experiment& exp = exp_fixture();
  const Netlist& nl = exp.soc.netlist;
  std::vector<double> freq(nl.domain_count(), 100.0);
  StatisticalOptions opt;
  auto run = [&] {
    return analyze_statistical(nl, exp.soc.placement, exp.soc.parasitics,
                               *exp.lib, exp.soc.floorplan, exp.grid, freq,
                               &exp.soc.clock_tree, opt);
  };
  const StatisticalReport at1 = at_threads(1, run);
  const StatisticalReport at4 = at_threads(4, run);

  EXPECT_EQ(at1.chip_power_mw, at4.chip_power_mw);
  EXPECT_EQ(at1.block_power_mw, at4.block_power_mw);
  EXPECT_EQ(at1.vdd_solution.drop_v, at4.vdd_solution.drop_v);
  EXPECT_EQ(at1.vss_solution.drop_v, at4.vss_solution.drop_v);
  EXPECT_EQ(at1.block_worst_vdd_v, at4.block_worst_vdd_v);
  EXPECT_EQ(at1.block_worst_vss_v, at4.block_worst_vss_v);
  EXPECT_EQ(at1.chip_worst_vdd_v, at4.chip_worst_vdd_v);
}

TEST(RtDeterminism, ValidatePatternIrInvariant) {
  // The single-pass streaming validation (trace + SCAP + rail charges +
  // settle times off one simulation, then two parallel grid solves) must be
  // bit-identical at any thread count.
  const Experiment& exp = exp_fixture();
  const PatternSet pats =
      random_pattern_set(1, exp.ctx.num_vars(), /*seed=*/2007);
  auto run = [&] {
    return validate_pattern_ir(exp.soc, *exp.lib, exp.grid, exp.ctx,
                               pats.patterns[0]);
  };
  const IrValidationResult at1 = at_threads(1, run);
  const IrValidationResult at4 = at_threads(4, run);

  EXPECT_EQ(at1.nominal.scap.vdd_energy_pj, at4.nominal.scap.vdd_energy_pj);
  EXPECT_EQ(at1.nominal.scap.stw_ns, at4.nominal.scap.stw_ns);
  EXPECT_EQ(at1.nominal.trace.toggles.size(), at4.nominal.trace.toggles.size());
  EXPECT_EQ(at1.ir.worst_vdd_v, at4.ir.worst_vdd_v);
  EXPECT_EQ(at1.ir.worst_vss_v, at4.ir.worst_vss_v);
  EXPECT_EQ(at1.ir.gate_droop_v, at4.ir.gate_droop_v);
  EXPECT_EQ(at1.ir.flop_droop_v, at4.ir.flop_droop_v);
  EXPECT_EQ(at1.scaled_arrival_ns, at4.scaled_arrival_ns);
  EXPECT_EQ(at1.nominal_endpoint_ns, at4.nominal_endpoint_ns);
  EXPECT_EQ(at1.scaled_endpoint_ns, at4.scaled_endpoint_ns);
  EXPECT_EQ(at1.scaled.scap.vdd_energy_total_pj,
            at4.scaled.scap.vdd_energy_total_pj);
}

TEST(RtDeterminism, SchedulerProfilerDoesNotChangeResults) {
  // SCAP_PROF only observes the scheduler; turning it on must not perturb a
  // parallel pipeline's output in any bit.
  const Experiment& exp = exp_fixture();
  const PatternSet pats =
      random_pattern_set(96, exp.ctx.num_vars(), /*seed=*/2007);
  auto run = [&] {
    FaultSimulator fsim(exp.soc.netlist, exp.ctx);
    std::vector<std::size_t> counts;
    std::vector<std::size_t> first =
        fsim.grade(pats.patterns, exp.faults, &counts);
    return std::pair(std::move(first), std::move(counts));
  };
  obs::ObsConfig cfg = obs::config();
  cfg.prof = false;
  obs::configure(cfg);
  const auto off = at_threads(4, run);
  cfg.prof = true;
  obs::configure(cfg);
  obs::prof_reset();
  const auto on = at_threads(4, run);
  cfg.prof = false;
  obs::configure(cfg);

  EXPECT_EQ(off.first, on.first);
  EXPECT_EQ(off.second, on.second);
  // And the profiler actually saw the profiled run.
  EXPECT_FALSE(obs::collect_pool_profile().empty());
  obs::prof_reset();
}

TEST(RtDeterminism, ScapScreenCascadeInvariant) {
  // The two-tier screen (static bound -> selective event sim) must give the
  // same verdicts, the same statically-clean count, and exactly the verdicts
  // of the exact-everywhere profile, at any thread count.
  const Experiment& exp = exp_fixture();
  const PatternSet pats =
      random_pattern_set(96, exp.ctx.num_vars(), /*seed=*/2007);
  auto run = [&] {
    return scap_screen_patterns(exp.soc, *exp.lib, exp.ctx, pats.patterns,
                                exp.thresholds, Experiment::kHotBlock);
  };
  const ScapScreenResult at1 = at_threads(1, run);
  const ScapScreenResult at4 = at_threads(4, run);

  EXPECT_EQ(at1.violates, at4.violates);
  EXPECT_EQ(at1.statically_clean, at4.statically_clean);
  EXPECT_EQ(at1.event_simmed, at4.event_simmed);
  EXPECT_EQ(at1.statically_clean + at1.event_simmed, pats.size());

  // Verdict equivalence with the unscreened exact profile (soundness of the
  // tier-1 skip): every skipped pattern is genuinely non-violating.
  const std::vector<ScapReport> exact = at_threads(4, [&] {
    return scap_profile_patterns(exp.soc, *exp.lib, exp.ctx, pats.patterns);
  });
  ASSERT_EQ(exact.size(), at4.violates.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(at4.violates[i] != 0,
              exp.thresholds.violates(exact[i], Experiment::kHotBlock))
        << "pattern " << i;
  }
}

TEST(RtDeterminism, RepairFlowInvariant) {
  // The repair loop interleaves parallel grading, parallel SCAP screening,
  // and serial ATPG rounds; the kept pattern set must not depend on the
  // thread count.
  const Experiment& exp = exp_fixture();
  AtpgOptions conv;
  conv.seed = 99;
  conv.fill = FillMode::kRandom;
  const FlowResult flow = at_threads(
      1, [&] {
        return run_conventional_atpg(exp.soc.netlist, exp.ctx, exp.faults,
                                     conv);
      });
  AtpgOptions opt;
  opt.seed = 123;
  auto run = [&] {
    return repair_scap_violations(exp.soc, *exp.lib, exp.ctx, exp.faults,
                                  flow.patterns, exp.thresholds,
                                  Experiment::kHotBlock, opt,
                                  /*max_rounds=*/2);
  };
  const RepairResult at1 = at_threads(1, run);
  const RepairResult at4 = at_threads(4, run);

  expect_patterns_identical(at1.patterns, at4.patterns);
  EXPECT_EQ(at1.violations_before, at4.violations_before);
  EXPECT_EQ(at1.violations_after, at4.violations_after);
  EXPECT_EQ(at1.detected_before, at4.detected_before);
  EXPECT_EQ(at1.detected_after, at4.detected_after);
  EXPECT_EQ(at1.rounds, at4.rounds);
}

}  // namespace
}  // namespace scap
