// Differential-oracle regression suite.
//
// Every file under tests/corpus/ (compiled in as SCAP_CORPUS_DIR) is
// registered as its own test case and replayed through run_scenario,
// asserting zero divergence between the optimized kernels and the src/ref
// oracles. A divergent corpus entry is a regression in whichever kernel the
// entry's checks cover -- the failure message names the oracle and the
// mismatching quantity.
//
// The suite also runs a small in-process fuzz smoke, the shrinking
// self-test (injected bugs must be caught and minimized), and the Scenario /
// KvDoc serialization round-trips the corpus format depends on.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "ref/fuzz.h"
#include "ref/scenario.h"
#include "util/kv.h"

namespace scap::ref {
namespace {

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  const std::filesystem::path dir = SCAP_CORPUS_DIR;
  if (std::filesystem::is_directory(dir)) {
    for (const auto& e : std::filesystem::directory_iterator(dir)) {
      if (e.path().extension() == ".scenario") {
        files.push_back(e.path().string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

class CorpusReplay : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusReplay, NoDivergence) {
  const Scenario sc = Scenario::parse(slurp(GetParam()));
  ASSERT_GT(sc.enabled_checks(), 0u) << GetParam() << " checks nothing";
  const ScenarioResult r = run_scenario(sc);
  for (const Divergence& d : r.divergences) {
    ADD_FAILURE() << "[" << d.oracle << "] " << d.detail;
  }
}

std::string param_name(const ::testing::TestParamInfo<std::string>& info) {
  std::string stem = std::filesystem::path(info.param).stem().string();
  for (char& c : stem) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return stem;
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusReplay,
                         ::testing::ValuesIn(corpus_files()), param_name);

TEST(CorpusDir, SeedCorpusPresent) {
  // The hand-picked seed corpus must never silently disappear.
  EXPECT_GE(corpus_files().size(), 5u);
}

TEST(FuzzSmoke, RandomScenariosAgree) {
  FuzzOptions opt;
  opt.iterations = 25;
  opt.seed = 0x5eed;
  opt.shrink = false;  // a failure here is reported, not minimized
  const FuzzStats st = run_fuzz(opt);
  EXPECT_EQ(st.executed, opt.iterations);
  for (const FailureReport& f : st.failures) {
    ADD_FAILURE() << "seed " << f.seed << ": [" << f.divergence.oracle << "] "
                  << f.divergence.detail;
  }
}

TEST(SelfTest, InjectedBugsAreCaughtAndShrunk) {
  std::ostringstream log;
  const bool ok = run_self_test(&log, /*max_repro_patterns=*/3);
  EXPECT_TRUE(ok) << log.str();
}

TEST(ScenarioSerialization, RoundTripsByteStable) {
  for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    const Scenario sc = Scenario::random(seed);
    const std::string text = sc.serialize();
    const Scenario back = Scenario::parse(text);
    EXPECT_EQ(back.serialize(), text) << "seed " << seed;
  }
}

TEST(ScenarioSerialization, MissingKeysKeepDefaults) {
  const Scenario sc = Scenario::parse("num_patterns 7\n");
  const Scenario def;
  EXPECT_EQ(sc.num_patterns, 7u);
  EXPECT_EQ(sc.soc_seed, def.soc_seed);
  EXPECT_EQ(sc.check_grid, def.check_grid);
  EXPECT_EQ(sc.fill_mode, def.fill_mode);
}

TEST(KvDoc, RoundTripAndTypedAccess) {
  util::KvDoc doc;
  doc.comment("header");
  doc.set("name", "a value with spaces");
  doc.set_u64("n", 42);
  doc.set_f64("x", 0.1);
  doc.set_bool("flag", true);
  const std::string text = doc.to_string();

  const util::KvDoc back = util::KvDoc::parse(text);
  EXPECT_EQ(back.get("name"), "a value with spaces");
  EXPECT_EQ(back.get_u64("n", 0), 42u);
  EXPECT_DOUBLE_EQ(back.get_f64("x", 0.0), 0.1);
  EXPECT_TRUE(back.get_bool("flag", false));
  EXPECT_EQ(back.get_u64("missing", 7), 7u);
}

TEST(KvDoc, RejectsMalformedInput) {
  EXPECT_THROW(util::KvDoc::parse(std::string("orphan-key\n")),
               std::runtime_error);
  EXPECT_THROW(util::KvDoc::parse(std::string("k 1\nk 2\n")),
               std::runtime_error);
  const util::KvDoc doc = util::KvDoc::parse(std::string("k notanumber\n"));
  EXPECT_THROW(doc.get_u64("k", 0), std::runtime_error);
  EXPECT_THROW(doc.get_f64("k", 0.0), std::runtime_error);
  EXPECT_THROW(doc.get_bool("k", false), std::runtime_error);
}

}  // namespace
}  // namespace scap::ref
