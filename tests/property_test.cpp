// Parameterized property suites: invariants that must hold for every seed,
// every mesh size, every chain count and every fill mode -- the randomized
// backbone of the test suite.
#include <gtest/gtest.h>

#include "atpg/engine.h"
#include "atpg/fault_sim.h"
#include "atpg/podem.h"
#include "core/pattern_sim.h"
#include "netlist/verilog.h"
#include "power/power_grid.h"
#include "sim/logic_sim.h"
#include "soc/generator.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace scap {
namespace {

// ---------------------------------------------------------------------------
// Generator invariants across seeds.
// ---------------------------------------------------------------------------
class GeneratorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorProperty, StructuralInvariants) {
  const SocConfig cfg = SocConfig::tiny(GetParam());
  const Netlist nl = generate_soc_netlist(cfg);
  EXPECT_EQ(nl.num_flops(), cfg.total_flops());
  EXPECT_TRUE(nl.finalized());
  // No dangling gate outputs.
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Net& nr = nl.net(nl.gate(g).out);
    EXPECT_TRUE(nr.fo_count > 0 || nr.ffo_count > 0 || nr.is_po);
  }
  // Depth stays in a simulable band.
  EXPECT_GE(nl.max_level(), 3u);
  EXPECT_LE(nl.max_level(), 80u);
}

TEST_P(GeneratorProperty, VerilogRoundTripFunctionalEquivalence) {
  const SocConfig cfg = SocConfig::tiny(GetParam());
  const Netlist orig = generate_soc_netlist(cfg);
  const Netlist back = parse_verilog(to_verilog(orig));
  ASSERT_EQ(back.num_flops(), orig.num_flops());
  WordSim sa(orig), sb(back);
  Rng rng(GetParam() * 31 + 7);
  std::vector<std::uint64_t> s1(orig.num_flops());
  for (auto& w : s1) w = rng.word();
  std::vector<std::uint64_t> pi(orig.primary_inputs().size(), 0);
  std::vector<std::uint64_t> f1a, f1b, s2a, s2b, f2a, f2b;
  sa.broadside(s1, pi, f1a, s2a, f2a);
  sb.broadside(s1, pi, f1b, s2b, f2b);
  EXPECT_EQ(s2a, s2b);
  for (FlopId f = 0; f < orig.num_flops(); ++f) {
    EXPECT_EQ(f2a[orig.flop(f).d], f2b[back.flop(f).d]);
  }
}

TEST_P(GeneratorProperty, PodemSoundAgainstFaultSim) {
  const SocConfig cfg = SocConfig::tiny(GetParam());
  const Netlist nl = generate_soc_netlist(cfg);
  const TestContext ctx = TestContext::for_domain(nl, 0);
  const auto faults = collapse_faults(nl, enumerate_faults(nl));
  Podem podem(nl, ctx);
  FaultSimulator fsim(nl, ctx);
  Rng rng(GetParam() * 17 + 3);
  std::vector<Pattern> pats(4);
  for (auto& p : pats) {
    p.s1.resize(nl.num_flops());
    for (auto& b : p.s1) b = static_cast<std::uint8_t>(rng.below(2));
  }
  fsim.load_batch(pats);
  for (int trial = 0; trial < 25; ++trial) {
    const auto& fault = faults[rng.below(faults.size())];
    const std::uint64_t mask = fsim.detect_mask(fault);
    for (std::size_t lane = 0; lane < pats.size(); ++lane) {
      ASSERT_EQ(podem.probe(fault, pats[lane].s1), ((mask >> lane) & 1) != 0)
          << describe_fault(nl, fault);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

// ---------------------------------------------------------------------------
// Event-simulation consistency across seeds (shared physical design).
// ---------------------------------------------------------------------------
class EventSimProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventSimProperty, FinalValuesMatchZeroDelay) {
  const SocDesign& soc = test::tiny_soc();
  const Netlist& nl = soc.netlist;
  const TestContext ctx = TestContext::for_domain(nl, 0);
  PatternAnalyzer analyzer(soc, TechLibrary::generic180());
  LogicSim logic(nl);
  Rng rng(GetParam());
  Pattern p;
  p.s1.resize(nl.num_flops());
  for (auto& b : p.s1) b = static_cast<std::uint8_t>(rng.below(2));
  const PatternAnalysis pa = analyzer.analyze(ctx, p);

  std::vector<std::uint8_t> final_vals = pa.frame1_nets;
  for (const ToggleEvent& t : pa.trace.toggles) {
    final_vals[t.net] = t.rising ? 1 : 0;
  }
  std::vector<std::uint8_t> s2(nl.num_flops());
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    s2[f] = ctx.active[f] ? pa.frame1_nets[nl.flop(f).d] : p.s1[f];
  }
  std::vector<std::uint8_t> f2;
  logic.eval_frame(s2, ctx.pi_values, f2);
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    ASSERT_EQ(final_vals[n], f2[n]) << "net " << n;
  }
}

TEST_P(EventSimProperty, ToggleCountEvenPerNetWhenValueUnchanged) {
  // A net whose final value equals its initial value toggles an even number
  // of times (pulses come in pairs).
  const SocDesign& soc = test::tiny_soc();
  const Netlist& nl = soc.netlist;
  const TestContext ctx = TestContext::for_domain(nl, 0);
  PatternAnalyzer analyzer(soc, TechLibrary::generic180());
  Rng rng(GetParam() ^ 0xabcd);
  Pattern p;
  p.s1.resize(nl.num_flops());
  for (auto& b : p.s1) b = static_cast<std::uint8_t>(rng.below(2));
  const PatternAnalysis pa = analyzer.analyze(ctx, p);

  std::vector<std::size_t> counts(nl.num_nets(), 0);
  std::vector<std::uint8_t> final_vals = pa.frame1_nets;
  for (const ToggleEvent& t : pa.trace.toggles) {
    ++counts[t.net];
    final_vals[t.net] = t.rising ? 1 : 0;
  }
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    if (final_vals[n] == pa.frame1_nets[n]) {
      EXPECT_EQ(counts[n] % 2, 0u) << "net " << n;
    } else {
      EXPECT_EQ(counts[n] % 2, 1u) << "net " << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventSimProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// ---------------------------------------------------------------------------
// Grid solver across mesh resolutions.
// ---------------------------------------------------------------------------
class GridProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(GridProperty, CenterLoadInvariants) {
  const Floorplan fp = Floorplan::turbo_eagle_like(1000.0, 8);
  PowerGridOptions opt;
  opt.nx = GetParam();
  opt.ny = GetParam();
  PowerGrid grid(fp, opt);
  const Point p{500.0, 500.0};
  const double amps = 0.1;
  const GridSolution sol = grid.solve(std::span<const Point>(&p, 1),
                                      std::span<const double>(&amps, 1), true);
  EXPECT_TRUE(sol.converged);
  EXPECT_GT(sol.worst(), 0.0);
  // Every node drop is non-negative and bounded by the worst.
  for (double d : sol.drop_v) {
    EXPECT_GE(d, -1e-12);
    EXPECT_LE(d, sol.worst() + 1e-12);
  }
  // The center region is the hottest.
  EXPECT_GT(sol.average_in(Rect{400, 400, 600, 600}),
            sol.average_in(Rect{0, 0, 200, 200}));
}

INSTANTIATE_TEST_SUITE_P(MeshSizes, GridProperty,
                         ::testing::Values(8, 16, 24, 48, 64));

TEST_P(GridProperty, MultigridResidualMonotoneInCycleCount) {
  // Each extra W-cycle may only tighten the solution: the true equation
  // residual is non-increasing in the cycle budget, and by six cycles it has
  // dropped well over an order of magnitude (unless it already sits at
  // roundoff -- the observed per-cycle contraction is ~0.4 on these meshes).
  const Floorplan fp = Floorplan::turbo_eagle_like(1000.0, 8);
  PowerGridOptions opt;
  opt.nx = GetParam();
  opt.ny = GetParam();
  opt.solver = GridSolver::kMultigrid;
  opt.tolerance_v = 0.0;  // never "converged": run exactly max_iterations
  const Point p{500.0, 500.0};
  const double amps = 0.1;
  std::vector<double> res;
  for (std::uint32_t cycles = 1; cycles <= 6; ++cycles) {
    opt.max_iterations = cycles;
    const PowerGrid grid(fp, opt);
    const GridSolution sol = grid.solve(std::span<const Point>(&p, 1),
                                        std::span<const double>(&amps, 1),
                                        true);
    EXPECT_EQ(sol.iterations, cycles);
    EXPECT_EQ(sol.solver, GridSolver::kMultigrid);
    res.push_back(grid.residual_inf(sol, std::span<const Point>(&p, 1),
                                    std::span<const double>(&amps, 1), true));
  }
  for (std::size_t k = 1; k < res.size(); ++k) {
    EXPECT_LE(res[k], res[k - 1] * 1.01 + 1e-12) << "cycle " << k + 1;
  }
  if (res.front() > 1e-10) {
    EXPECT_LT(res.back(), res.front() * 5e-2);
  }
}

TEST_P(GridProperty, SolutionInvariantUnderInjectionPermutation) {
  // The solved drop map is a function of the aggregated injection vector,
  // not of source ordering: permuting the point-load list leaves every node
  // bit-identical, for both production solvers. Sources sit on distinct grid
  // nodes so the per-node accumulation is a single add either way.
  const std::uint32_t mesh = GetParam();
  const Floorplan fp = Floorplan::turbo_eagle_like(1000.0, 8);
  PowerGridOptions opt;
  opt.nx = mesh;
  opt.ny = mesh;
  Rng rng(mesh * 997 + 5);
  std::vector<Point> where;
  std::vector<double> amps;
  std::vector<std::uint8_t> used(mesh * mesh, 0);
  const Rect die = fp.die();
  while (where.size() < 7) {
    const auto ix = static_cast<std::uint32_t>(rng.below(mesh));
    const auto iy = static_cast<std::uint32_t>(rng.below(mesh));
    if (used[iy * mesh + ix]) continue;
    used[iy * mesh + ix] = 1;
    where.push_back({die.x0 + die.width() * ix / (mesh - 1),
                     die.y0 + die.height() * iy / (mesh - 1)});
    amps.push_back(rng.uniform(1e-3, 2e-2));
  }
  std::vector<Point> rwhere(where.rbegin(), where.rend());
  std::vector<double> ramps(amps.rbegin(), amps.rend());
  for (const GridSolver solver : {GridSolver::kSor, GridSolver::kMultigrid}) {
    opt.solver = solver;
    const PowerGrid grid(fp, opt);
    const GridSolution a = grid.solve(where, amps, true);
    const GridSolution b = grid.solve(rwhere, ramps, true);
    ASSERT_EQ(a.drop_v.size(), b.drop_v.size());
    for (std::size_t i = 0; i < a.drop_v.size(); ++i) {
      ASSERT_EQ(a.drop_v[i], b.drop_v[i])
          << "node " << i << " solver " << static_cast<int>(solver);
    }
  }
}

// ---------------------------------------------------------------------------
// Scan chains across chain counts.
// ---------------------------------------------------------------------------
class ChainProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChainProperty, PartitionInvariants) {
  const SocDesign& soc = test::tiny_soc();
  const ScanChains sc =
      ScanChains::build(soc.netlist, soc.placement, GetParam());
  EXPECT_EQ(sc.chains.size(), GetParam());
  std::vector<int> seen(soc.netlist.num_flops(), 0);
  for (const auto& chain : sc.chains) {
    for (FlopId f : chain) ++seen[f];
  }
  for (FlopId f = 0; f < soc.netlist.num_flops(); ++f) EXPECT_EQ(seen[f], 1);
}

INSTANTIATE_TEST_SUITE_P(ChainCounts, ChainProperty,
                         ::testing::Values(1, 2, 4, 8, 16));

// ---------------------------------------------------------------------------
// Fill modes.
// ---------------------------------------------------------------------------
class FillProperty : public ::testing::TestWithParam<FillMode> {};

TEST_P(FillProperty, CareBitsNeverChange) {
  const SocDesign& soc = test::tiny_soc();
  Rng care_rng(5);
  TestCube cube;
  cube.s1.assign(soc.netlist.num_flops(), kBitX);
  std::vector<std::pair<FlopId, std::uint8_t>> cares;
  for (int i = 0; i < 30; ++i) {
    const FlopId f = static_cast<FlopId>(care_rng.below(cube.s1.size()));
    const auto v = static_cast<std::uint8_t>(care_rng.below(2));
    cube.s1[f] = v;
    cares.emplace_back(f, v);
  }
  Rng rng(6);
  std::vector<std::uint8_t> quiet(soc.netlist.num_flops(), 0);
  const Pattern p =
      apply_fill(cube, GetParam(), rng, soc.scan.chains, quiet);
  for (auto [f, v] : cares) EXPECT_EQ(p.s1[f], v);
  for (auto b : p.s1) EXPECT_LT(b, 2) << "X must be gone after fill";
}

TEST_P(FillProperty, FullySpecifiedCubeIsFixpoint) {
  const SocDesign& soc = test::tiny_soc();
  Rng rng(7);
  TestCube cube;
  cube.s1.resize(soc.netlist.num_flops());
  for (auto& b : cube.s1) b = static_cast<std::uint8_t>(rng.below(2));
  std::vector<std::uint8_t> quiet(soc.netlist.num_flops(), 1);
  Rng fill_rng(8);
  const Pattern p =
      apply_fill(cube, GetParam(), fill_rng, soc.scan.chains, quiet);
  EXPECT_EQ(p.s1, cube.s1);
}

INSTANTIATE_TEST_SUITE_P(Modes, FillProperty,
                         ::testing::Values(FillMode::kRandom, FillMode::kFill0,
                                           FillMode::kFill1,
                                           FillMode::kAdjacent,
                                           FillMode::kQuiet),
                         [](const auto& info) {
                           std::string n = fill_mode_name(info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// ---------------------------------------------------------------------------
// Fault grading across seeds: coverage is monotonic in pattern-prefix order.
// ---------------------------------------------------------------------------
class FaultGradeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultGradeProperty, CoverageMonotonicInPatternPrefix) {
  const SocDesign& soc = test::tiny_soc();
  const Netlist& nl = soc.netlist;
  const TestContext ctx = TestContext::for_domain(nl, 0);
  const auto faults = collapse_faults(nl, enumerate_faults(nl));
  FaultSimulator fsim(nl, ctx);
  Rng rng(GetParam() * 101 + 13);
  std::vector<Pattern> pats(6);
  for (auto& p : pats) {
    p.s1.resize(nl.num_flops());
    for (auto& b : p.s1) b = static_cast<std::uint8_t>(rng.below(2));
  }
  const auto full = fsim.grade(pats, faults, nullptr);
  std::size_t prev_detected = 0;
  for (std::size_t k = 1; k <= pats.size(); ++k) {
    const std::vector<Pattern> prefix(pats.begin(), pats.begin() + k);
    const auto first = fsim.grade(prefix, faults, nullptr);
    ASSERT_EQ(first.size(), full.size());
    std::size_t detected = 0;
    for (std::size_t i = 0; i < first.size(); ++i) {
      // A prefix grade must agree with the full grade wherever the full
      // first-detect index falls inside the prefix, and report undetected
      // where it does not: adding patterns never loses a detection and
      // never changes an earlier first-detect index.
      if (full[i] != FaultSimulator::kUndetected && full[i] < k) {
        ASSERT_EQ(first[i], full[i]) << "fault " << i << " prefix " << k;
      } else {
        ASSERT_EQ(first[i], FaultSimulator::kUndetected)
            << "fault " << i << " prefix " << k;
      }
      detected += (first[i] != FaultSimulator::kUndetected);
    }
    EXPECT_GE(detected, prev_detected) << "prefix " << k;
    prev_detected = detected;
  }
  EXPECT_GT(prev_detected, 0u);  // six random patterns must detect something
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultGradeProperty,
                         ::testing::Values(1, 7, 19, 42, 2007));

// ---------------------------------------------------------------------------
// ATPG determinism across schemes.
// ---------------------------------------------------------------------------
class SchemeProperty : public ::testing::TestWithParam<LaunchScheme> {};

TEST_P(SchemeProperty, EngineDeterministicAndSound) {
  const SocDesign& soc = test::tiny_soc();
  const Netlist& nl = soc.netlist;
  TestContext ctx;
  switch (GetParam()) {
    case LaunchScheme::kLoc:
      ctx = TestContext::for_domain(nl, 0);
      break;
    case LaunchScheme::kLos:
      ctx = TestContext::for_domain_los(nl, 0, soc.scan.chains);
      break;
    case LaunchScheme::kEnhanced:
      ctx = TestContext::for_domain_enhanced(nl, 0);
      break;
  }
  const auto faults = collapse_faults(nl, enumerate_faults(nl));
  AtpgEngine engine(nl, ctx);
  AtpgOptions opt;
  opt.seed = 77;
  const AtpgResult a = engine.run(faults, opt);
  const AtpgResult b = engine.run(faults, opt);
  ASSERT_EQ(a.patterns.size(), b.patterns.size());
  for (std::size_t i = 0; i < a.patterns.size(); ++i) {
    ASSERT_EQ(a.patterns.patterns[i].s1, b.patterns.patterns[i].s1);
  }
  // Regrade confirms the engine's accounting.
  FaultSimulator fsim(nl, ctx);
  const auto first = fsim.grade(a.patterns.patterns, faults, nullptr);
  std::size_t detected = 0;
  for (auto idx : first) detected += (idx != FaultSimulator::kUndetected);
  EXPECT_EQ(detected, a.stats.detected);
}

INSTANTIATE_TEST_SUITE_P(Schemes, SchemeProperty,
                         ::testing::Values(LaunchScheme::kLoc,
                                           LaunchScheme::kLos,
                                           LaunchScheme::kEnhanced),
                         [](const auto& info) {
                           switch (info.param) {
                             case LaunchScheme::kLoc:
                               return "LOC";
                             case LaunchScheme::kLos:
                               return "LOS";
                             case LaunchScheme::kEnhanced:
                               return "Enhanced";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace scap
