#include <gtest/gtest.h>

#include "atpg/shift_power.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace scap {
namespace {

struct ShiftRig {
  const SocDesign& soc = test::tiny_soc();
  const Netlist& nl = soc.netlist;
  const TechLibrary& lib = TechLibrary::generic180();

  Pattern random_pattern(std::uint64_t seed) {
    Rng rng(seed);
    Pattern p;
    p.s1.resize(nl.num_flops());
    for (auto& b : p.s1) b = static_cast<std::uint8_t>(rng.below(2));
    return p;
  }

  ShiftPowerReport analyze(const Pattern& p,
                           std::span<const std::uint8_t> prev = {}) {
    return analyze_shift_power(nl, soc.scan, soc.parasitics, lib, p, prev);
  }
};

TEST(ShiftPower, CycleCountIsMaxChainLength) {
  ShiftRig rig;
  const auto rep = rig.analyze(rig.random_pattern(1));
  EXPECT_EQ(rep.shift_cycles, rig.soc.scan.max_chain_length());
}

TEST(ShiftPower, ShiftingZerosIntoZerosIsFree) {
  ShiftRig rig;
  Pattern zeros;
  zeros.s1.assign(rig.nl.num_flops(), 0);
  const auto rep = rig.analyze(zeros);
  EXPECT_EQ(rep.total_flop_toggles, 0u);
  EXPECT_DOUBLE_EQ(rep.weighted_energy_pj, 0.0);
}

TEST(ShiftPower, AlternatingPatternIsWorstCase) {
  // 0101... along the shift order toggles every cell nearly every cycle.
  ShiftRig rig;
  Pattern alt;
  alt.s1.assign(rig.nl.num_flops(), 0);
  for (const auto& chain : rig.soc.scan.chains) {
    for (std::size_t i = 0; i < chain.size(); ++i) {
      alt.s1[chain[i]] = static_cast<std::uint8_t>(i & 1);
    }
  }
  const auto alt_rep = rig.analyze(alt);
  const auto rnd_rep = rig.analyze(rig.random_pattern(2));
  EXPECT_GT(alt_rep.total_flop_toggles, rnd_rep.total_flop_toggles);
}

TEST(ShiftPower, AdjacentFillShiftsCheaperThanRandom) {
  // The reason fill-adjacent exists (paper Section 3.1): long constant runs
  // along the chain slash shift toggles.
  ShiftRig rig;
  Rng rng(3);
  TestCube cube;
  cube.s1.assign(rig.nl.num_flops(), kBitX);
  // A few care bits, rest filled per policy.
  for (int i = 0; i < 20; ++i) {
    cube.s1[rng.below(rig.nl.num_flops())] = static_cast<std::uint8_t>(rng.below(2));
  }
  Rng ra(4), rr(4);
  const Pattern adj =
      apply_fill(cube, FillMode::kAdjacent, ra, rig.soc.scan.chains);
  const Pattern rnd = apply_fill(cube, FillMode::kRandom, rr);
  const auto adj_rep = rig.analyze(adj);
  const auto rnd_rep = rig.analyze(rnd);
  EXPECT_LT(2 * adj_rep.total_flop_toggles, rnd_rep.total_flop_toggles);
  EXPECT_LT(adj_rep.weighted_energy_pj, rnd_rep.weighted_energy_pj);
}

TEST(ShiftPower, FinalChainStateEqualsLoad) {
  // White-box: replicate the shift and verify each chain ends holding the
  // load value (the whole point of scan).
  ShiftRig rig;
  const Pattern load = rig.random_pattern(5);
  // Re-run the model manually.
  std::vector<std::uint8_t> state(rig.nl.num_flops(), 0);
  const std::size_t cycles = rig.soc.scan.max_chain_length();
  for (std::size_t t = 0; t < cycles; ++t) {
    for (const auto& chain : rig.soc.scan.chains) {
      const std::size_t len = chain.size();
      if (len == 0) continue;
      const std::size_t lead = cycles - len;
      std::uint8_t incoming = 0;
      if (t >= lead) incoming = load.s1[chain[len - 1 - (t - lead)]];
      for (std::size_t i = len; i-- > 1;) state[chain[i]] = state[chain[i - 1]];
      state[chain[0]] = incoming;
    }
  }
  for (const auto& chain : rig.soc.scan.chains) {
    for (FlopId f : chain) {
      ASSERT_EQ(state[f], load.s1[f]) << "flop " << f;
    }
  }
}

TEST(ShiftPower, PreviousResponseAffectsEarlyCycles) {
  ShiftRig rig;
  const Pattern load = rig.random_pattern(6);
  std::vector<std::uint8_t> prev(rig.nl.num_flops(), 1);
  const auto from_ones = rig.analyze(load, prev);
  const auto from_zeros = rig.analyze(load);
  EXPECT_NE(from_ones.total_flop_toggles, from_zeros.total_flop_toggles);
}

TEST(ShiftPower, AveragePowerScalesWithShiftClock) {
  ShiftRig rig;
  const auto rep = rig.analyze(rig.random_pattern(7));
  ASSERT_GT(rep.weighted_energy_pj, 0.0);
  EXPECT_NEAR(rep.avg_power_mw(20.0), 2.0 * rep.avg_power_mw(10.0), 1e-9);
}

TEST(ShiftPower, PeakBoundsAverage) {
  ShiftRig rig;
  const auto rep = rig.analyze(rig.random_pattern(8));
  EXPECT_GE(static_cast<double>(rep.peak_cycle_toggles),
            rep.avg_toggles_per_cycle);
  EXPECT_LE(rep.peak_cycle_toggles, rig.nl.num_flops());
}

}  // namespace
}  // namespace scap
