// Tests for the bench-trajectory comparison engine (obs/bench_compare.h):
// metric flattening, direction classification, regression detection at a
// tolerance, and the JSONL trajectory row format.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "obs/bench_compare.h"
#include "obs/json.h"

namespace scap::obs::bench {
namespace {

const char* kBaseline = R"({
  "name": "kernels",
  "info": {"scale": "0.040"},
  "phases": [
    {"name": "setup", "wall_ms": 100.0},
    {"name": "thread_scaling", "wall_ms": 900.0}
  ],
  "counters": {"rt.tasks": 5000, "rt.steals": 40},
  "gauges": {
    "rt.sweep.faultsim_grade.t4_ms": {"count":1,"mean":17.0,"min":17.0,"max":17.0,"stddev":0},
    "rt.sweep.faultsim_grade.t4_speedup": {"count":1,"mean":0.95,"min":0.95,"max":0.95,"stddev":0},
    "rt.sweep.faultsim_grade.t4_efficiency": {"count":1,"mean":0.24,"min":0.24,"max":0.24,"stddev":0},
    "eventsim.patterns_per_sec": {"count":1,"mean":2000.0,"min":2000.0,"max":2000.0,"stddev":0}
  },
  "timers": {
    "rt.job": {"count":50,"total_ms":400.0,"mean_ms":8.0,"min_ms":1.0,"max_ms":20.0}
  }
})";

json::Value parse_or_die(const std::string& text) {
  std::optional<json::Value> v = json::parse(text);
  EXPECT_TRUE(v.has_value());
  return *v;
}

/// Baseline with one gauge mean replaced.
std::string with_gauge_mean(const std::string& name, double mean) {
  json::Value v = parse_or_die(kBaseline);
  for (auto& [k, section] : v.object) {
    if (k != "gauges") continue;
    for (auto& [gname, g] : section.object) {
      if (gname != name) continue;
      for (auto& [field, fv] : g.object) {
        if (field == "mean") fv.number = mean;
      }
    }
  }
  return v.dump();
}

TEST(BenchCompare, ClassifiesDirectionsFromNames) {
  EXPECT_EQ(classify_metric("gauges.rt.sweep.faultsim_grade.t4_speedup.mean"),
            Direction::kHigherBetter);
  EXPECT_EQ(classify_metric("gauges.rt.sweep.scap_fanout.t4_efficiency.mean"),
            Direction::kHigherBetter);
  EXPECT_EQ(classify_metric("gauges.eventsim.patterns_per_sec.mean"),
            Direction::kHigherBetter);
  EXPECT_EQ(classify_metric("gauges.rt.sweep.faultsim_grade.t4_ms.mean"),
            Direction::kLowerBetter);
  EXPECT_EQ(classify_metric("timers.rt.job.total_ms"),
            Direction::kLowerBetter);
  EXPECT_EQ(classify_metric("phases.thread_scaling.wall_ms"),
            Direction::kLowerBetter);
  EXPECT_EQ(classify_metric("counters.rt.tasks"), Direction::kInfo);
  EXPECT_EQ(classify_metric("gauges.rt.prof.imbalance.mean"),
            Direction::kInfo);
}

TEST(BenchCompare, FlattensEverySectionSorted) {
  const std::vector<MetricRow> rows = flatten_bench(parse_or_die(kBaseline));
  ASSERT_FALSE(rows.empty());
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1].name, rows[i].name);
  }
  auto value_of = [&](const std::string& name) -> double {
    for (const MetricRow& r : rows) {
      if (r.name == name) return r.value;
    }
    ADD_FAILURE() << "missing row " << name;
    return -1.0;
  };
  EXPECT_EQ(value_of("counters.rt.tasks"), 5000.0);
  EXPECT_EQ(value_of("gauges.rt.sweep.faultsim_grade.t4_ms.mean"), 17.0);
  EXPECT_EQ(value_of("timers.rt.job.total_ms"), 400.0);
  EXPECT_EQ(value_of("phases.setup.wall_ms"), 100.0);
}

TEST(BenchCompare, IdenticalRunsProduceNoRegressions) {
  const json::Value v = parse_or_die(kBaseline);
  const DiffResult diff = compare(v, v, 0.1);
  EXPECT_TRUE(diff.ok());
  EXPECT_EQ(diff.regressions, 0u);
  EXPECT_TRUE(diff.added.empty());
  EXPECT_TRUE(diff.removed.empty());
  EXPECT_FALSE(diff.rows.empty());
}

TEST(BenchCompare, DetectsTwentyPercentTimingRegression) {
  const json::Value base = parse_or_die(kBaseline);
  // 17.0 ms -> 20.4 ms is +20%: beyond a 10% tolerance.
  const json::Value cur = parse_or_die(
      with_gauge_mean("rt.sweep.faultsim_grade.t4_ms", 20.4));
  const DiffResult diff = compare(base, cur, 0.1);
  EXPECT_FALSE(diff.ok());
  EXPECT_EQ(diff.regressions, 1u);
  bool found = false;
  for (const Delta& d : diff.rows) {
    if (d.name == "gauges.rt.sweep.faultsim_grade.t4_ms.mean") {
      found = true;
      EXPECT_TRUE(d.regression);
      EXPECT_NEAR(d.rel_change, 0.2, 1e-9);
    } else {
      EXPECT_FALSE(d.regression) << d.name;
    }
  }
  EXPECT_TRUE(found);
  // The report names the offender.
  const std::string report = format_diff(diff, 0.1);
  EXPECT_NE(report.find("rt.sweep.faultsim_grade.t4_ms"), std::string::npos);
  EXPECT_NE(report.find("REGRESSION"), std::string::npos);
}

TEST(BenchCompare, DetectsSpeedupDrop) {
  const json::Value base = parse_or_die(kBaseline);
  // Higher-is-better metric falling 0.95 -> 0.70 (-26%) must regress.
  const json::Value cur = parse_or_die(
      with_gauge_mean("rt.sweep.faultsim_grade.t4_speedup", 0.70));
  const DiffResult diff = compare(base, cur, 0.1);
  EXPECT_EQ(diff.regressions, 1u);
}

TEST(BenchCompare, SmallDriftStaysWithinTolerance) {
  const json::Value base = parse_or_die(kBaseline);
  // +5% on a timing metric is inside a 10% tolerance.
  const json::Value cur = parse_or_die(
      with_gauge_mean("rt.sweep.faultsim_grade.t4_ms", 17.85));
  EXPECT_TRUE(compare(base, cur, 0.1).ok());
}

TEST(BenchCompare, ImprovementIsNeverARegression) {
  const json::Value base = parse_or_die(kBaseline);
  const json::Value cur = parse_or_die(
      with_gauge_mean("rt.sweep.faultsim_grade.t4_ms", 8.0));
  EXPECT_TRUE(compare(base, cur, 0.1).ok());
}

TEST(BenchCompare, InfoMetricsNeverFailTheDiff) {
  const json::Value base = parse_or_die(kBaseline);
  json::Value cur = parse_or_die(kBaseline);
  for (auto& [k, section] : cur.object) {
    if (k != "counters") continue;
    for (auto& [cname, c] : section.object) {
      if (cname == "rt.tasks") c.number = 50000.0;  // 10x: info only
    }
  }
  EXPECT_TRUE(compare(base, cur, 0.1).ok());
}

TEST(BenchCompare, AddedAndRemovedMetricsAreReportedNotFatal) {
  const json::Value base = parse_or_die(kBaseline);
  json::Value cur = parse_or_die(kBaseline);
  for (auto& [k, section] : cur.object) {
    if (k != "counters") continue;
    section.object.erase(section.object.begin());  // drop one counter
    json::Value n;
    n.kind = json::Value::Kind::kNumber;
    n.number = 3.0;
    section.object.emplace_back("rt.prof.jobs", n);
  }
  const DiffResult diff = compare(base, cur, 0.1);
  EXPECT_TRUE(diff.ok());
  ASSERT_EQ(diff.added.size(), 1u);
  EXPECT_EQ(diff.added[0], "counters.rt.prof.jobs");
  ASSERT_EQ(diff.removed.size(), 1u);
}

TEST(BenchCompare, TrajectoryLineRoundTrips) {
  const std::vector<MetricRow> rows = flatten_bench(parse_or_die(kBaseline));
  const std::string line = trajectory_line("kernels", "abc1234", 1754500000,
                                           rows);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one JSONL row
  const json::Value v = parse_or_die(line);
  EXPECT_EQ(v.find("bench")->string, "kernels");
  EXPECT_EQ(v.find("label")->string, "abc1234");
  EXPECT_EQ(v.find("unix_time")->number, 1754500000.0);
  const json::Value* metrics = v.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->object.size(), rows.size());
  EXPECT_EQ(metrics->find("timers.rt.job.total_ms")->number, 400.0);
}

}  // namespace
}  // namespace scap::obs::bench
