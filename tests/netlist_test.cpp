#include <gtest/gtest.h>

#include "netlist/design_stats.h"
#include "netlist/netlist.h"
#include "test_helpers.h"

namespace scap {
namespace {

TEST(Netlist, TinyTopology) {
  Netlist nl = test::tiny_netlist();
  EXPECT_EQ(nl.num_gates(), 2u);
  EXPECT_EQ(nl.num_flops(), 3u);
  EXPECT_EQ(nl.num_nets(), 6u);
  EXPECT_EQ(nl.primary_inputs().size(), 1u);
  EXPECT_TRUE(nl.finalized());
}

TEST(Netlist, Levelization) {
  Netlist nl = test::tiny_netlist();
  EXPECT_EQ(nl.gate(0).level, 0u);
  EXPECT_EQ(nl.gate(1).level, 1u);
  EXPECT_EQ(nl.max_level(), 1u);
  ASSERT_EQ(nl.topo_order().size(), 2u);
  EXPECT_EQ(nl.topo_order()[0], 0u);
  EXPECT_EQ(nl.topo_order()[1], 1u);
}

TEST(Netlist, FanoutMaps) {
  Netlist nl = test::tiny_netlist();
  // n1 (net 4) feeds gate 1 and flop 0's D.
  const NetId n1 = nl.gate(0).out;
  ASSERT_EQ(nl.fanout_gates(n1).size(), 1u);
  EXPECT_EQ(nl.fanout_gates(n1)[0], 1u);
  ASSERT_EQ(nl.fanout_flops(n1).size(), 1u);
  EXPECT_EQ(nl.fanout_flops(n1)[0], 0u);
  // n2 feeds flops 1 and 2.
  const NetId n2 = nl.gate(1).out;
  EXPECT_EQ(nl.fanout_gates(n2).size(), 0u);
  EXPECT_EQ(nl.fanout_flops(n2).size(), 2u);
}

TEST(Netlist, GateAppearsOncePerConnectedPin) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId y = nl.add_net("y");
  const NetId ins[] = {a, a};  // both pins on the same net
  nl.add_gate(CellType::kXor2, ins, y);
  nl.mark_output(y);
  nl.finalize();
  EXPECT_EQ(nl.fanout_gates(a).size(), 2u);
}

TEST(Netlist, ArityMismatchThrows) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId y = nl.add_net("y");
  const NetId one[] = {a};
  EXPECT_THROW(nl.add_gate(CellType::kNand2, one, y), std::runtime_error);
}

TEST(Netlist, MultipleDriversThrow) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId y = nl.add_net("y");
  const NetId ins[] = {a};
  nl.add_gate(CellType::kInv, ins, y);
  EXPECT_THROW(nl.add_gate(CellType::kBuf, ins, y), std::runtime_error);
}

TEST(Netlist, FlopOnDrivenNetThrows) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId y = nl.add_net("y");
  const NetId ins[] = {a};
  nl.add_gate(CellType::kInv, ins, y);
  EXPECT_THROW(nl.add_flop(a, y, 0, 0), std::runtime_error);
}

TEST(Netlist, UndrivenNetThrowsAtFinalize) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId floating = nl.add_net("floating");
  const NetId y = nl.add_net("y");
  const NetId ins[] = {a, floating};
  nl.add_gate(CellType::kAnd2, ins, y);
  EXPECT_THROW(nl.finalize(), std::runtime_error);
}

TEST(Netlist, CombinationalLoopThrows) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId x = nl.add_net("x");
  const NetId y = nl.add_net("y");
  const NetId ins1[] = {a, y};
  nl.add_gate(CellType::kAnd2, ins1, x);
  const NetId ins2[] = {x};
  nl.add_gate(CellType::kInv, ins2, y);
  EXPECT_THROW(nl.finalize(), std::runtime_error);
}

TEST(Netlist, SequentialLoopIsFine) {
  // Flop feedback (q -> inv -> d) is not a combinational loop.
  Netlist nl;
  const NetId q = nl.add_net("q");
  const NetId d = nl.add_net("d");
  const NetId ins[] = {q};
  nl.add_gate(CellType::kInv, ins, d);
  nl.add_flop(d, q, 0, 0);
  EXPECT_NO_THROW(nl.finalize());
}

TEST(Netlist, MutationAfterFinalizeThrows) {
  Netlist nl = test::tiny_netlist();
  EXPECT_THROW(nl.add_net("late"), std::runtime_error);
}

TEST(Netlist, SequentialCellViaAddGateThrows) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId y = nl.add_net("y");
  const NetId ins[] = {a};
  EXPECT_THROW(nl.add_gate(CellType::kDff, ins, y), std::runtime_error);
}

TEST(Netlist, FlopsByDomainAndBlock) {
  Netlist nl = test::tiny_netlist();
  const auto by_dom = nl.flops_by_domain();
  ASSERT_EQ(by_dom.size(), 1u);
  EXPECT_EQ(by_dom[0].size(), 3u);
  const auto by_blk = nl.flops_by_block();
  ASSERT_EQ(by_blk.size(), 2u);
  EXPECT_EQ(by_blk[0].size(), 1u);
  EXPECT_EQ(by_blk[1].size(), 2u);
}

TEST(Netlist, GatesPerBlock) {
  Netlist nl = test::tiny_netlist();
  const auto gpb = nl.gates_per_block();
  ASSERT_EQ(gpb.size(), 2u);
  EXPECT_EQ(gpb[0], 1u);
  EXPECT_EQ(gpb[1], 1u);
}

TEST(Netlist, NetNamesDefaultAndExplicit) {
  Netlist nl;
  const NetId a = nl.add_input("alpha");
  const NetId b = nl.add_net();
  EXPECT_EQ(nl.net_name(a), "alpha");
  EXPECT_EQ(nl.net_name(b), "n1");
}

TEST(DesignStats, TinyCounts) {
  Netlist nl = test::tiny_netlist();
  const DesignStats s = compute_design_stats(nl);
  EXPECT_EQ(s.num_gates, 2u);
  EXPECT_EQ(s.num_flops, 3u);
  EXPECT_EQ(s.num_neg_edge_flops, 0u);
  EXPECT_EQ(s.num_clock_domains, 1u);
  EXPECT_EQ(s.num_blocks, 2u);
  EXPECT_EQ(s.max_logic_level, 1u);
  EXPECT_EQ(s.gates_by_type[static_cast<std::size_t>(CellType::kNand2)], 2u);
  EXPECT_EQ(s.flops_by_block[1], 2u);
  const std::string txt = format_design_stats(s);
  EXPECT_NE(txt.find("gates: 2"), std::string::npos);
  EXPECT_NE(txt.find("B2=2"), std::string::npos);
}

TEST(DesignStats, GeneratedSocConsistency) {
  const SocDesign& soc = test::tiny_soc();
  const DesignStats s = compute_design_stats(soc.netlist);
  EXPECT_EQ(s.num_flops, soc.netlist.num_flops());
  std::size_t dom_sum = 0;
  for (auto n : s.flops_by_domain) dom_sum += n;
  EXPECT_EQ(dom_sum, s.num_flops);
  std::size_t blk_sum = 0;
  for (auto n : s.flops_by_block) blk_sum += n;
  EXPECT_EQ(blk_sum, s.num_flops);
  std::size_t type_sum = 0;
  for (auto n : s.gates_by_type) type_sum += n;
  EXPECT_EQ(type_sum, s.num_gates);
}

}  // namespace
}  // namespace scap
