// Tests for the scheduler profiler (obs/prof.h): the disabled mode must be a
// true no-op (zero events recorded, zero registry entries exported), ring
// overflow must drop the oldest events with exact accounting, and a profiled
// parallel region must aggregate to the known task/job/grain totals.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "rt/parallel.h"
#include "rt/thread_pool.h"

namespace scap::obs {
namespace {

// Profiler state and the obs flags are process-global; every test starts from
// a clean window with the profiler off and restores the defaults.
class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    configure(ObsConfig{});  // metrics on, trace off, prof off
    prof_reset();
    trace_clear();
    Registry::global().reset();
  }

  void TearDown() override {
    rt::ThreadPool::set_global_concurrency(0);
    configure(ObsConfig{});
    prof_reset();
    trace_clear();
    Registry::global().reset();
  }

  static void set_prof(bool on) {
    ObsConfig cfg;
    cfg.prof = on;
    configure(cfg);
  }

  /// A workload that touches every scheduler path: split tasks, steals,
  /// caller participation.
  static std::uint64_t run_workload(std::size_t n, std::size_t grain) {
    std::atomic<std::uint64_t> sum{0};
    rt::parallel_for(
        n,
        [&](std::size_t b, std::size_t e) {
          std::uint64_t local = 0;
          for (std::size_t i = b; i < e; ++i) local += i;
          sum.fetch_add(local, std::memory_order_relaxed);
        },
        rt::ForOptions{grain, 2});
    return sum.load();
  }
};

TEST_F(ProfTest, DisabledModeIsTrueNoOp) {
  ObsConfig cfg;
  cfg.metrics = false;  // isolate: any registry entry must come from prof
  configure(cfg);
  rt::ThreadPool::set_global_concurrency(4);
  run_workload(4096, 8);

  const PoolProfile p = collect_pool_profile();
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.total_events, 0u);
  EXPECT_EQ(p.dropped, 0u);

  export_pool_profile(p, Registry::global());
  EXPECT_TRUE(Registry::global().snapshot().empty());
}

TEST_F(ProfTest, CallerRingRecordGatedOnFlag) {
  ProfRing& ring = caller_prof_ring();
  ring.record(ProfKind::kGrain, 7);  // prof off: must not land
  EXPECT_TRUE(ring.snapshot().empty());

  set_prof(true);
  ring.record(ProfKind::kGrain, 7);
  std::uint64_t dropped = 9;
  const std::vector<ProfEvent> ev = ring.snapshot(&dropped);
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(dropped, 0u);
  EXPECT_EQ(ev[0].kind, ProfKind::kGrain);
  EXPECT_EQ(ev[0].value, 7u);
  EXPECT_GE(ev[0].ts_us, 0.0);
}

TEST_F(ProfTest, RingOverflowDropsOldestAndCounts) {
  ProfRing ring(ProfRing::Owner::kWorker, /*capacity=*/8);
  ring.set_lane(77);
  for (std::uint32_t i = 0; i < 20; ++i) {
    ring.record_always(ProfKind::kGrain, i);
  }
  std::uint64_t dropped = 0;
  const std::vector<ProfEvent> ev = ring.snapshot(&dropped);
  ASSERT_EQ(ev.size(), 8u);
  EXPECT_EQ(dropped, 12u);
  // The survivors are the newest 8, oldest-first, uncorrupted.
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(ev[i].value, 12u + i) << "slot " << i;
    EXPECT_EQ(ev[i].kind, ProfKind::kGrain);
  }
}

TEST_F(ProfTest, OverflowFlowsIntoProfileAndDroppedCounter) {
  ProfRing ring(ProfRing::Owner::kWorker, /*capacity=*/8);
  ring.set_lane(88);
  for (std::uint32_t i = 0; i < 20; ++i) {
    ring.record_always(ProfKind::kGrain, i);
  }
  const PoolProfile p = collect_pool_profile();
  EXPECT_EQ(p.dropped, 12u);
  EXPECT_EQ(p.total_events, 8u);

  export_pool_profile(p, Registry::global(), "rt.prof");
  EXPECT_EQ(Registry::global().counter("rt.prof.dropped").value(), 12u);
}

TEST_F(ProfTest, RebaseForgetsHistory) {
  ProfRing ring(ProfRing::Owner::kCaller, /*capacity=*/8);
  for (std::uint32_t i = 0; i < 20; ++i) {
    ring.record_always(ProfKind::kGrain, i);
  }
  ring.rebase();
  std::uint64_t dropped = 99;
  EXPECT_TRUE(ring.snapshot(&dropped).empty());
  EXPECT_EQ(dropped, 0u);
  ring.record_always(ProfKind::kGrain, 42);
  const std::vector<ProfEvent> ev = ring.snapshot(&dropped);
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(dropped, 0u);
  EXPECT_EQ(ev[0].value, 42u);
}

TEST_F(ProfTest, ValueSaturatesInsteadOfWrapping) {
  ProfRing ring(ProfRing::Owner::kCaller, /*capacity=*/8);
  ring.record_always(ProfKind::kJobBegin, 0xFFFFFFFFu);
  const std::vector<ProfEvent> ev = ring.snapshot();
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].value, 0xFFFFu);  // 16-bit saturating payload
}

TEST_F(ProfTest, ProfiledRegionAggregatesKnownTotals) {
  rt::ThreadPool::set_global_concurrency(4);
  run_workload(64, 1);  // warm the pool so workers exist and are awake
  prof_reset();
  set_prof(true);
  run_workload(256, 1);  // exactly 256 chunks -> 256 task executions
  set_prof(false);

  const PoolProfile p = collect_pool_profile();
  ASSERT_FALSE(p.empty());
  EXPECT_EQ(p.jobs, 1u);
  std::uint64_t tasks = 0;
  for (const LaneProfile& lp : p.lanes) tasks += lp.tasks;
  EXPECT_EQ(tasks, 256u);
  ASSERT_EQ(p.chunks_per_job.count(), 1u);
  EXPECT_EQ(p.chunks_per_job.mean(), 256.0);
  ASSERT_EQ(p.grain.count(), 1u);
  EXPECT_EQ(p.grain.mean(), 1.0);
  EXPECT_EQ(p.task_us.count(), 256u);
  EXPECT_GE(p.window_ms, 0.0);

  export_pool_profile(p, Registry::global());
  Registry& reg = Registry::global();
  EXPECT_EQ(reg.counter("rt.prof.tasks").value(), 256u);
  EXPECT_EQ(reg.counter("rt.prof.jobs").value(), 1u);
  EXPECT_EQ(reg.gauge("rt.prof.chunks_per_job").snapshot().mean(), 256.0);
  // The report renders without blowing up and mentions every lane label.
  const std::string report = format_pool_report(p);
  for (const LaneProfile& lp : p.lanes) {
    EXPECT_NE(report.find(lp.label), std::string::npos) << lp.label;
  }
}

TEST_F(ProfTest, PoolRebuildRetiresWorkerEvents) {
  rt::ThreadPool::set_global_concurrency(4);
  prof_reset();
  set_prof(true);
  run_workload(128, 1);
  // Swapping the pool destroys the workers; their rings must retire, not
  // vanish.
  rt::ThreadPool::set_global_concurrency(2);
  set_prof(false);

  const PoolProfile p = collect_pool_profile();
  std::uint64_t tasks = 0;
  for (const LaneProfile& lp : p.lanes) tasks += lp.tasks;
  EXPECT_EQ(tasks, 128u);
}

TEST_F(ProfTest, CollectInjectsChromeLanesWhenTracing) {
  ObsConfig cfg;
  cfg.trace = true;
  cfg.prof = true;
  configure(cfg);
  rt::ThreadPool::set_global_concurrency(4);
  prof_reset();
  trace_clear();
  run_workload(256, 1);
  cfg.prof = false;  // keep tracing on: injection happens at collect time
  configure(cfg);

  (void)collect_pool_profile();
  const std::vector<TraceEvent> ev = trace_snapshot();
  bool saw_task_lane = false;
  for (const TraceEvent& e : ev) {
    if (e.tid >= kProfLaneBase && std::string_view(e.name) == "rt.task") {
      saw_task_lane = true;
      break;
    }
  }
  EXPECT_TRUE(saw_task_lane);
}

}  // namespace
}  // namespace scap::obs
