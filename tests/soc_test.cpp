#include <gtest/gtest.h>

#include "netlist/verilog.h"
#include "soc/generator.h"
#include "soc/soc_config.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace scap {
namespace {

TEST(SocConfig, ScaledShapesMatchPaper) {
  const SocConfig cfg = SocConfig::turbo_eagle_scaled(0.1);
  EXPECT_EQ(cfg.domain_freq_mhz.size(), 6u);
  EXPECT_DOUBLE_EQ(cfg.domain_freq_mhz[0], 100.0);
  EXPECT_EQ(cfg.scan_chains, 16u);
  // clka (domain 0) dominates: > 70% of flops.
  std::size_t clka = 0;
  for (const auto& p : cfg.population) {
    if (p.domain == 0) clka += p.flops;
  }
  EXPECT_GT(static_cast<double>(clka) / cfg.total_flops(), 0.70);
  // B5 (block 4) is the biggest block.
  std::vector<std::size_t> per_block(6, 0);
  for (const auto& p : cfg.population) per_block[p.block] += p.flops;
  for (std::size_t b = 0; b < 6; ++b) {
    if (b != 4) EXPECT_GT(per_block[4], per_block[b]);
  }
  EXPECT_DOUBLE_EQ(cfg.period_ns(0), 10.0);
}

TEST(SocGenerator, PopulationMatchesConfig) {
  const SocConfig cfg = SocConfig::tiny(3);
  const Netlist nl = generate_soc_netlist(cfg);
  EXPECT_EQ(nl.num_flops(), cfg.total_flops());
  EXPECT_EQ(nl.primary_inputs().size(), cfg.primary_inputs);
  EXPECT_EQ(nl.domain_count(), cfg.num_domains());

  // Per (domain, block) counts.
  std::vector<std::vector<std::size_t>> got(cfg.num_domains(),
                                            std::vector<std::size_t>(6, 0));
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    ++got[nl.flop(f).domain][nl.flop(f).block];
  }
  for (const auto& p : cfg.population) {
    EXPECT_EQ(got[p.domain][p.block], p.flops)
        << "domain " << int(p.domain) << " block " << p.block;
  }
}

TEST(SocGenerator, GateBudgetApproximatelyMet) {
  const SocConfig cfg = SocConfig::tiny(3);
  const Netlist nl = generate_soc_netlist(cfg);
  // Budgeted combinational gates plus one hold-mux per enable-gated flop.
  const double expect =
      static_cast<double>(cfg.total_flops()) *
      (cfg.gates_per_flop + cfg.enabled_flop_fraction);
  EXPECT_NEAR(static_cast<double>(nl.num_gates()), expect, 0.15 * expect);
}

TEST(SocGenerator, NegEdgeFlopCount) {
  const SocConfig cfg = SocConfig::tiny(3);
  const Netlist nl = generate_soc_netlist(cfg);
  std::size_t neg = 0;
  for (FlopId f = 0; f < nl.num_flops(); ++f) neg += nl.flop(f).neg_edge;
  EXPECT_EQ(neg, cfg.neg_edge_flops);
}

TEST(SocGenerator, DeterministicForSeed) {
  const SocConfig cfg = SocConfig::tiny(7);
  const std::string a = to_verilog(generate_soc_netlist(cfg));
  const std::string b = to_verilog(generate_soc_netlist(cfg));
  EXPECT_EQ(a, b);
}

TEST(SocGenerator, SeedsProduceDifferentDesigns) {
  const std::string a = to_verilog(generate_soc_netlist(SocConfig::tiny(7)));
  const std::string b = to_verilog(generate_soc_netlist(SocConfig::tiny(8)));
  EXPECT_NE(a, b);
}

TEST(SocGenerator, LogicDepthInUsefulRange) {
  // Launch paths must be deep enough that the switching window spans a real
  // fraction of the cycle, but must not blow past the at-speed period.
  const SocDesign& soc = test::small_soc();
  EXPECT_GE(soc.netlist.max_level(), 8u);
  EXPECT_LE(soc.netlist.max_level(), 80u);
}

TEST(SocGenerator, NoDanglingGateOutputs) {
  const SocConfig cfg = SocConfig::tiny(3);
  const Netlist nl = generate_soc_netlist(cfg);
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Net& nr = nl.net(nl.gate(g).out);
    EXPECT_TRUE(nr.fo_count > 0 || nr.ffo_count > 0 || nr.is_po)
        << "gate " << g << " output floats";
  }
}

TEST(SocGenerator, CrossBlockTrafficExists) {
  const SocDesign& soc = test::small_soc();
  const Netlist& nl = soc.netlist;
  std::size_t cross = 0, total = 0;
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    for (NetId in : nl.gate_inputs(g)) {
      ++total;
      const Net& nr = nl.net(in);
      BlockId src = nl.gate(g).block;
      if (nr.driver_kind == DriverKind::kGate) src = nl.gate(nr.driver).block;
      if (nr.driver_kind == DriverKind::kFlop) src = nl.flop(nr.driver).block;
      cross += (src != nl.gate(g).block);
    }
  }
  const double frac = static_cast<double>(cross) / static_cast<double>(total);
  EXPECT_GT(frac, 0.01);
  EXPECT_LT(frac, 0.25);
}

TEST(ScanChains, PartitionIsCompleteAndDisjoint) {
  const SocDesign& soc = test::tiny_soc();
  const ScanChains& sc = soc.scan;
  EXPECT_EQ(sc.chains.size(), soc.config.scan_chains);
  std::vector<int> seen(soc.netlist.num_flops(), 0);
  for (const auto& chain : sc.chains) {
    for (FlopId f : chain) ++seen[f];
  }
  for (FlopId f = 0; f < soc.netlist.num_flops(); ++f) {
    EXPECT_EQ(seen[f], 1) << "flop " << f;
  }
}

TEST(ScanChains, NegEdgeFlopsSegregated) {
  const SocDesign& soc = test::tiny_soc();
  const ScanChains& sc = soc.scan;
  for (FlopId f : sc.chains[0]) {
    EXPECT_TRUE(soc.netlist.flop(f).neg_edge);
  }
  for (std::size_t c = 1; c < sc.chains.size(); ++c) {
    for (FlopId f : sc.chains[c]) {
      EXPECT_FALSE(soc.netlist.flop(f).neg_edge);
    }
  }
}

TEST(ScanChains, IndexMapsConsistent) {
  const SocDesign& soc = test::tiny_soc();
  const ScanChains& sc = soc.scan;
  for (std::size_t c = 0; c < sc.chains.size(); ++c) {
    for (std::size_t i = 0; i < sc.chains[c].size(); ++i) {
      const FlopId f = sc.chains[c][i];
      EXPECT_EQ(sc.chain_of(f), c);
      EXPECT_EQ(sc.position_of(f), i);
    }
  }
}

TEST(ScanChains, SerpentineBeatsRandomOrderWirelength) {
  const SocDesign& soc = test::tiny_soc();
  const ScanChains& sc = soc.scan;
  const double ordered = sc.wirelength_um(soc.placement);

  // Shuffle each chain and compare.
  ScanChains shuffled = sc;
  Rng rng(5);
  double shuffled_len = 0.0;
  for (auto& chain : shuffled.chains) {
    rng.shuffle(chain);
  }
  shuffled_len = shuffled.wirelength_um(soc.placement);
  EXPECT_LT(ordered, 0.8 * shuffled_len);
}

TEST(ScanChains, BalancedLengths) {
  const SocDesign& soc = test::tiny_soc();
  const ScanChains& sc = soc.scan;
  // Data chains (1..n-1) should be within 2x of each other.
  std::size_t min_len = SIZE_MAX, max_len = 0;
  for (std::size_t c = 1; c < sc.chains.size(); ++c) {
    if (sc.chains[c].empty()) continue;
    min_len = std::min(min_len, sc.chains[c].size());
    max_len = std::max(max_len, sc.chains[c].size());
  }
  EXPECT_LE(max_len, 2 * min_len + 1);
  EXPECT_EQ(sc.max_chain_length(), max_len);
}

TEST(BuildSoc, FullFlowProducesConsistentDesign) {
  const SocDesign& soc = test::tiny_soc();
  EXPECT_TRUE(soc.netlist.finalized());
  EXPECT_EQ(soc.placement.num_gates(), soc.netlist.num_gates());
  EXPECT_EQ(soc.placement.num_flops(), soc.netlist.num_flops());
  EXPECT_GT(soc.clock_tree.buffer_count(), 0u);
  EXPECT_GT(soc.parasitics.total_load_pf(), 0.0);
  EXPECT_EQ(soc.dominant_domain(), 0);
  EXPECT_DOUBLE_EQ(soc.period_ns(0), 10.0);
}

}  // namespace
}  // namespace scap
