// SDF writer/parser round-trip property and parser error handling.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "ref/compare.h"
#include "sim/sdf.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace scap {
namespace {

// One %.4f-formatted value parses back within half an ulp of the last
// printed digit.
constexpr double kQuantTol = 5.1e-5;

DelayModel random_delay_model(const SocDesign& soc, const TechLibrary& lib,
                              std::uint64_t seed) {
  DelayModel dm(soc.netlist, lib, soc.parasitics);
  if (seed != 0) {  // seed 0 keeps the nominal model
    Rng rng(seed);
    std::vector<double> droop(soc.netlist.num_gates());
    for (auto& v : droop) v = rng.uniform(0.0, 0.25);
    dm.set_droop(lib, droop);
  }
  return dm;
}

class SdfRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SdfRoundTrip, WriteParseWriteIsByteStable) {
  const SocDesign& soc = test::tiny_soc();
  const TechLibrary lib = TechLibrary::generic180();
  const DelayModel dm = random_delay_model(soc, lib, GetParam());

  const std::string text = to_sdf(soc.netlist, dm, "roundtrip");
  const SdfDocument doc = parse_sdf(text);
  EXPECT_EQ(doc.version, "3.0");
  EXPECT_EQ(doc.design, "roundtrip");
  EXPECT_EQ(doc.divider, "/");
  EXPECT_EQ(doc.timescale, "1ns");
  ASSERT_EQ(doc.cells.size(), soc.netlist.num_gates());

  // The property: re-emitting the parsed document reproduces the input byte
  // for byte (same structure, same %.4f formatting).
  EXPECT_EQ(to_sdf(doc), text);
}

TEST_P(SdfRoundTrip, ParsedDelaysMatchModelWithinQuantization) {
  const SocDesign& soc = test::tiny_soc();
  const Netlist& nl = soc.netlist;
  const TechLibrary lib = TechLibrary::generic180();
  const DelayModel dm = random_delay_model(soc, lib, GetParam());

  const SdfDocument doc = parse_sdf(to_sdf(nl, dm));
  ASSERT_EQ(doc.cells.size(), nl.num_gates());
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const SdfCell& cell = doc.cells[g];
    SCOPED_TRACE(cell.instance);
    ASSERT_EQ(cell.iopaths.size(), nl.gate_inputs(g).size());
    for (const SdfIopath& p : cell.iopaths) {
      EXPECT_TRUE(ref::close_enough(p.rise_ns, dm.rise_ns(g), 0.0, kQuantTol));
      EXPECT_TRUE(ref::close_enough(p.fall_ns, dm.fall_ns(g), 0.0, kQuantTol));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DelayModels, SdfRoundTrip,
                         ::testing::Values(0, 1, 2, 3, 17, 2007));

TEST(SdfParse, EmptyDocumentKeepsHeaderFields) {
  const SdfDocument doc = parse_sdf(std::string(
      "(DELAYFILE (SDFVERSION \"2.1\") (DESIGN \"d\") (VENDOR \"v\")\n"
      "  (PROGRAM \"p\") (DIVIDER .) (TIMESCALE 10ps))"));
  EXPECT_EQ(doc.version, "2.1");
  EXPECT_EQ(doc.design, "d");
  EXPECT_EQ(doc.vendor, "v");
  EXPECT_EQ(doc.program, "p");
  EXPECT_EQ(doc.divider, ".");
  EXPECT_EQ(doc.timescale, "10ps");
  EXPECT_TRUE(doc.cells.empty());
}

TEST(SdfParse, RejectsMalformedInput) {
  // Truncated document.
  EXPECT_THROW(parse_sdf(std::string("(DELAYFILE")), std::runtime_error);
  // Unterminated string.
  EXPECT_THROW(parse_sdf(std::string("(DELAYFILE (DESIGN \"oops))")),
               std::runtime_error);
  // Unsupported section.
  EXPECT_THROW(parse_sdf(std::string("(DELAYFILE (VOLTAGE 1.8))")),
               std::runtime_error);
  // Trailing tokens after the closing paren.
  EXPECT_THROW(parse_sdf(std::string("(DELAYFILE) junk")),
               std::runtime_error);
}

TEST(SdfParse, RejectsBadDelayTriples) {
  const auto cell_with = [](const std::string& triples) {
    return "(DELAYFILE (CELL (CELLTYPE \"NAND2\") (INSTANCE b0_g0)\n"
           "  (DELAY (ABSOLUTE (IOPATH A Y " +
           triples + ")))))";
  };
  // Two-element triple.
  EXPECT_THROW(parse_sdf(cell_with("(0.1:0.1) (0.2:0.2:0.2)")),
               std::runtime_error);
  // Non-numeric component.
  EXPECT_THROW(parse_sdf(cell_with("(a:b:c) (0.2:0.2:0.2)")),
               std::runtime_error);
  // min:typ:max spread (the writer never emits one).
  EXPECT_THROW(parse_sdf(cell_with("(0.1:0.2:0.3) (0.2:0.2:0.2)")),
               std::runtime_error);
  // Well-formed control.
  const SdfDocument doc = parse_sdf(cell_with("(0.1:0.1:0.1) (0.2:0.2:0.2)"));
  ASSERT_EQ(doc.cells.size(), 1u);
  ASSERT_EQ(doc.cells[0].iopaths.size(), 1u);
  EXPECT_DOUBLE_EQ(doc.cells[0].iopaths[0].rise_ns, 0.1);
  EXPECT_DOUBLE_EQ(doc.cells[0].iopaths[0].fall_ns, 0.2);
}

}  // namespace
}  // namespace scap
