// Integration tests of the paper's end-to-end flows: thresholds from the
// statistical analysis, conventional vs power-aware pattern generation, SCAP
// screening, and the IR-drop delay-scaling validation.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/power_aware.h"
#include "core/validation.h"
#include "test_helpers.h"

namespace scap {
namespace {

/// One shared small experiment (built once; everything downstream is
/// deterministic).
const Experiment& exp_fixture() {
  static Experiment* exp = new Experiment(Experiment::standard(0.012, 2007));
  return *exp;
}

AtpgOptions base_options() {
  AtpgOptions opt;
  opt.seed = 99;
  return opt;
}

struct Flows {
  FlowResult conventional;
  FlowResult power_aware;
  std::vector<ScapReport> conv_scap;
  std::vector<ScapReport> pa_scap;
};

const Flows& flows_fixture() {
  static Flows* flows = [] {
    const Experiment& exp = exp_fixture();
    auto* f = new Flows();
    AtpgOptions conv = base_options();
    conv.fill = FillMode::kRandom;
    f->conventional = run_conventional_atpg(exp.soc.netlist, exp.ctx,
                                            exp.faults, conv);
    AtpgOptions pa = base_options();
    pa.fill = FillMode::kQuiet;
    f->power_aware = run_power_aware_atpg(
        exp.soc.netlist, exp.ctx, exp.faults,
        StepPlan::paper_default(exp.soc.netlist.block_count()), pa);
    f->conv_scap = scap_profile(exp.soc, *exp.lib, exp.ctx,
                                f->conventional.patterns);
    f->pa_scap = scap_profile(exp.soc, *exp.lib, exp.ctx,
                              f->power_aware.patterns);
    return f;
  }();
  return *flows;
}

TEST(Thresholds, DerivedFromCase2BlockPower) {
  const Experiment& exp = exp_fixture();
  ASSERT_EQ(exp.thresholds.block_mw.size(), exp.soc.netlist.block_count());
  for (std::size_t b = 0; b < exp.thresholds.block_mw.size(); ++b) {
    EXPECT_DOUBLE_EQ(exp.thresholds.block_mw[b],
                     exp.stat_case2.block_power_mw[b]);
    EXPECT_GT(exp.thresholds.block_mw[b], 0.0);
  }
}

TEST(Thresholds, ViolationCountingConsistent) {
  const Experiment& exp = exp_fixture();
  const Flows& f = flows_fixture();
  const std::size_t hot = Experiment::kHotBlock;
  std::size_t manual = 0;
  for (const auto& rep : f.conv_scap) {
    manual += exp.thresholds.violates(rep, hot) ? 1 : 0;
  }
  EXPECT_EQ(exp.thresholds.count_violations(f.conv_scap, hot), manual);
}

TEST(PowerAwareFlow, ReducesHotBlockScapViolations) {
  // The paper's headline: random-fill 2253/5846 over threshold vs 57/6490
  // for the stepwise fill-0 flow.
  const Experiment& exp = exp_fixture();
  const Flows& f = flows_fixture();
  const std::size_t hot = Experiment::kHotBlock;
  const std::size_t conv_v = exp.thresholds.count_violations(f.conv_scap, hot);
  const std::size_t pa_v = exp.thresholds.count_violations(f.pa_scap, hot);
  EXPECT_GT(conv_v, 0u) << "random-fill should stress B5";
  // At this miniature scale each B5-step pattern disturbs a large fraction
  // of tiny B5, so the contrast is far weaker than the paper's (and than the
  // bench-scale run, where the rate drops ~50x); compare violation *rates*
  // and require at least a strong reduction.
  const double conv_rate = static_cast<double>(conv_v) /
                           static_cast<double>(f.conv_scap.size());
  const double pa_rate = static_cast<double>(pa_v) /
                         static_cast<double>(f.pa_scap.size());
  EXPECT_LT(pa_rate, 0.6 * conv_rate) << "power-aware flow must cut the "
                                         "violation rate";
}

TEST(PowerAwareFlow, BoundedPatternCountIncrease) {
  const Flows& f = flows_fixture();
  EXPECT_GE(f.power_aware.patterns.size(), f.conventional.patterns.size());
  // The paper saw ~8-11% extra at Turbo-Eagle scale. On the miniature test
  // design the throttled hot-block step costs proportionally more patterns
  // (care bits per pattern do not shrink with the design); bound the blowup.
  EXPECT_LT(f.power_aware.patterns.size(),
            3 * f.conventional.patterns.size());
}

TEST(PowerAwareFlow, SimilarFinalCoverage) {
  const Flows& f = flows_fixture();
  EXPECT_NEAR(f.power_aware.stats.fault_coverage(),
              f.conventional.stats.fault_coverage(), 0.08);
}

TEST(PowerAwareFlow, StepStructure) {
  const Flows& f = flows_fixture();
  ASSERT_EQ(f.power_aware.step_start.size(), 3u);
  EXPECT_EQ(f.power_aware.step_start[0], 0u);
  EXPECT_LE(f.power_aware.step_start[1], f.power_aware.step_start[2]);
  EXPECT_LE(f.power_aware.step_start[2], f.power_aware.patterns.size());
}

TEST(PowerAwareFlow, HotBlockQuietUntilItsStep) {
  // Figure 6's shape: B5 SCAP stays low during steps 1-2 and bursts in
  // step 3 when B5's own faults are targeted.
  const Flows& f = flows_fixture();
  const std::size_t b5_step = f.power_aware.step_start[2];
  if (b5_step == 0 || b5_step >= f.pa_scap.size()) GTEST_SKIP();
  const std::size_t hot = Experiment::kHotBlock;
  double before = 0.0, after = 0.0;
  for (std::size_t i = 0; i < b5_step; ++i) {
    before += ScapThresholds::block_scap_mw(f.pa_scap[i], hot);
  }
  before /= static_cast<double>(b5_step);
  for (std::size_t i = b5_step; i < f.pa_scap.size(); ++i) {
    after += ScapThresholds::block_scap_mw(f.pa_scap[i], hot);
  }
  after /= static_cast<double>(f.pa_scap.size() - b5_step);
  // Cross-block nets couple some neighbour activity into B5 even while it is
  // quiet-filled, so the burst contrast is softer than the paper's strongly
  // isolated blocks; the step-3 rise must still be clearly visible.
  EXPECT_GT(after, 1.3 * before);
}

TEST(PowerAwareFlow, CoverageCurveMonotone) {
  const Flows& f = flows_fixture();
  const auto curve = f.power_aware.coverage_curve();
  ASSERT_EQ(curve.size(), f.power_aware.patterns.size());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1]);
  }
  if (!curve.empty()) {
    EXPECT_NEAR(curve.back(), f.power_aware.stats.fault_coverage(), 1e-9);
  }
}

TEST(ScapProfile, OneReportPerPattern) {
  const Flows& f = flows_fixture();
  EXPECT_EQ(f.conv_scap.size(), f.conventional.patterns.size());
  for (const auto& rep : f.conv_scap) {
    EXPECT_GE(rep.stw_ns, 0.0);
    EXPECT_LE(rep.stw_ns, rep.period_ns);
  }
}

TEST(IrValidation, ScaledDelaysStretchEndpoints) {
  // Figure 7, Region 1: endpoints fed by droopy logic get slower.
  const Experiment& exp = exp_fixture();
  const Flows& f = flows_fixture();
  ASSERT_FALSE(f.conventional.patterns.patterns.empty());
  // Pick the loudest pattern for a visible effect.
  std::size_t loudest = 0;
  for (std::size_t i = 0; i < f.conv_scap.size(); ++i) {
    if (f.conv_scap[i].num_toggles > f.conv_scap[loudest].num_toggles) {
      loudest = i;
    }
  }
  const IrValidationResult v =
      validate_pattern_ir(exp.soc, *exp.lib, exp.grid, exp.ctx,
                          f.conventional.patterns.patterns[loudest]);
  ASSERT_GT(v.ir.worst_vdd_v, 0.0);

  double sum_delta = 0.0;
  std::size_t active = 0, slower = 0;
  for (FlopId fl = 0; fl < exp.soc.netlist.num_flops(); ++fl) {
    const double n = v.nominal_endpoint_ns[fl];
    const double s = v.scaled_endpoint_ns[fl];
    if (n <= 0.0) continue;
    ++active;
    sum_delta += s - n;
    slower += (s > n);
  }
  ASSERT_GT(active, 0u);
  EXPECT_GT(sum_delta, 0.0) << "average endpoint delay must increase";
  EXPECT_GT(slower, active / 2);
}

TEST(IrValidation, ClockArrivalsShiftUnderDroop) {
  const Experiment& exp = exp_fixture();
  const Flows& f = flows_fixture();
  const IrValidationResult v = validate_pattern_ir(
      exp.soc, *exp.lib, exp.grid, exp.ctx,
      f.conventional.patterns.patterns[0]);
  bool shifted = false;
  for (FlopId fl = 0; fl < exp.soc.netlist.num_flops(); ++fl) {
    EXPECT_GE(v.scaled_arrival_ns[fl], v.nominal_arrival_ns[fl] - 1e-12);
    if (v.scaled_arrival_ns[fl] > v.nominal_arrival_ns[fl] + 1e-9) {
      shifted = true;
    }
  }
  EXPECT_TRUE(shifted);
}

TEST(IrValidation, NonActiveEndpointsStayZero) {
  const Experiment& exp = exp_fixture();
  const Flows& f = flows_fixture();
  const IrValidationResult v = validate_pattern_ir(
      exp.soc, *exp.lib, exp.grid, exp.ctx,
      f.conventional.patterns.patterns[0]);
  for (FlopId fl = 0; fl < exp.soc.netlist.num_flops(); ++fl) {
    if (!exp.ctx.active[fl]) continue;
    if (v.nominal_endpoint_ns[fl] == 0.0) {
      // A non-active endpoint nominally should usually stay quiet when
      // delays scale (same logic values, different arrival times).
      EXPECT_LT(v.scaled_endpoint_ns[fl], exp.soc.config.tester_period_ns);
    }
  }
}

TEST(Repair, DropsViolationsKeepsMostCoverage) {
  const Experiment& exp = exp_fixture();
  const Flows& f = flows_fixture();
  AtpgOptions opt;
  opt.seed = 123;
  const RepairResult rep = repair_scap_violations(
      exp.soc, *exp.lib, exp.ctx, exp.faults, f.conventional.patterns,
      exp.thresholds, Experiment::kHotBlock, opt);
  EXPECT_GT(rep.violations_before, 0u);
  EXPECT_LT(rep.violations_after, rep.violations_before / 4 + 1);
  // Coverage after repair stays within a few percent of the original.
  EXPECT_GT(rep.detected_after + rep.detected_before / 20,
            rep.detected_before);
  EXPECT_EQ(rep.patterns_after, rep.patterns.size());
}

TEST(Experiment, RailCalibrationInPaperRegime) {
  // The grid is calibrated so functional statistical drop sits near 5.5% of
  // VDD (the paper's Table 3 regime); Case2 then lands near 2x that.
  const Experiment& exp = exp_fixture();
  const double vdd = exp.lib->vdd();
  EXPECT_GT(exp.stat_case1.chip_worst_vdd_v, 0.03 * vdd);
  EXPECT_LT(exp.stat_case1.chip_worst_vdd_v, 0.08 * vdd);
  EXPECT_GT(exp.stat_case2.chip_worst_vdd_v, 1.5 * exp.stat_case1.chip_worst_vdd_v);
}

TEST(Experiment, StandardFixtureSane) {
  const Experiment& exp = exp_fixture();
  EXPECT_GT(exp.soc.netlist.num_flops(), 100u);
  EXPECT_GT(exp.faults.size(), 1000u);
  EXPECT_LT(exp.faults.size(), exp.all_faults.size());
  EXPECT_EQ(exp.ctx.domain, 0);
  EXPECT_GT(exp.ctx.active_count(), exp.soc.netlist.num_flops() / 2);
  EXPECT_GT(exp.stat_case2.chip_power_mw, exp.stat_case1.chip_power_mw);
}

}  // namespace
}  // namespace scap
