#include <gtest/gtest.h>

#include "sim/logic_sim.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace scap {
namespace {

TEST(LogicSim, TinyHandComputed) {
  Netlist nl = test::tiny_netlist();
  LogicSim sim(nl);
  // q0=1, q1=1, q2=0, pi0=1:
  //   n1 = nand(1,1) = 0; n2 = nand(0,1) = 1.
  std::vector<std::uint8_t> q{1, 1, 0};
  std::vector<std::uint8_t> pi{1};
  std::vector<std::uint8_t> nets;
  sim.eval_frame(q, pi, nets);
  EXPECT_EQ(nets[nl.gate(0).out], 0);
  EXPECT_EQ(nets[nl.gate(1).out], 1);

  std::vector<std::uint8_t> next;
  sim.next_state(nets, next);
  EXPECT_EQ(next[0], 0);  // d0 = n1
  EXPECT_EQ(next[1], 1);  // d1 = n2
  EXPECT_EQ(next[2], 1);  // d2 = n2
}

TEST(LogicSim, ScalarMatchesWordSim) {
  const Netlist& nl = test::tiny_soc().netlist;
  LogicSim ssim(nl);
  WordSim wsim(nl);
  Rng rng(1234);

  std::vector<std::uint64_t> s1w(nl.num_flops());
  for (auto& w : s1w) w = rng.word();
  std::vector<std::uint64_t> piw(nl.primary_inputs().size(), 0);
  std::vector<std::uint64_t> netw;
  wsim.eval_frame(s1w, piw, netw);

  for (int lane : {0, 7, 63}) {
    std::vector<std::uint8_t> s1(nl.num_flops());
    for (FlopId f = 0; f < nl.num_flops(); ++f) {
      s1[f] = (s1w[f] >> lane) & 1;
    }
    std::vector<std::uint8_t> pi(nl.primary_inputs().size(), 0);
    std::vector<std::uint8_t> nets;
    ssim.eval_frame(s1, pi, nets);
    for (NetId n = 0; n < nl.num_nets(); ++n) {
      ASSERT_EQ(nets[n], (netw[n] >> lane) & 1)
          << "lane " << lane << " net " << n;
    }
  }
}

TEST(WordSim, BroadsideChainsFrames) {
  const Netlist& nl = test::tiny_soc().netlist;
  WordSim sim(nl);
  Rng rng(55);
  std::vector<std::uint64_t> s1(nl.num_flops());
  for (auto& w : s1) w = rng.word();
  std::vector<std::uint64_t> pi(nl.primary_inputs().size(), 0);

  std::vector<std::uint64_t> f1, s2, f2;
  sim.broadside(s1, pi, f1, s2, f2);

  // s2 must equal the D values of frame 1.
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    EXPECT_EQ(s2[f], f1[nl.flop(f).d]);
  }
  // Frame 2 must equal an eval from s2.
  std::vector<std::uint64_t> f2b;
  sim.eval_frame(s2, pi, f2b);
  EXPECT_EQ(f2, f2b);
}

TEST(WordSim, PiValuesPropagate) {
  Netlist nl = test::tiny_netlist();
  WordSim sim(nl);
  std::vector<std::uint64_t> s1{~0ull, ~0ull, 0};  // q0=q1=1 in all lanes
  std::vector<std::uint64_t> nets;
  // pi0 = 0: n2 = nand(n1, 0) = 1 everywhere.
  sim.eval_frame(s1, std::vector<std::uint64_t>{0ull}, nets);
  EXPECT_EQ(nets[nl.gate(1).out], ~0ull);
  // pi0 = 1: n1 = 0, n2 = nand(0,1) = 1 still.
  sim.eval_frame(s1, std::vector<std::uint64_t>{~0ull}, nets);
  EXPECT_EQ(nets[nl.gate(0).out], 0ull);
  EXPECT_EQ(nets[nl.gate(1).out], ~0ull);
}

TEST(LogicSim, FixpointIdempotent) {
  // Re-evaluating with the same inputs gives identical nets (pure function).
  const Netlist& nl = test::tiny_soc().netlist;
  LogicSim sim(nl);
  Rng rng(8);
  std::vector<std::uint8_t> s1(nl.num_flops());
  for (auto& b : s1) b = static_cast<std::uint8_t>(rng.below(2));
  std::vector<std::uint8_t> pi(nl.primary_inputs().size(), 0);
  std::vector<std::uint8_t> a, b;
  sim.eval_frame(s1, pi, a);
  sim.eval_frame(s1, pi, b);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace scap
