// Shared fixtures for the test suite: tiny hand-built netlists and cached
// generated SOCs (generation is deterministic, so caching is safe).
#pragma once

#include <vector>

#include "netlist/netlist.h"
#include "soc/generator.h"
#include "soc/soc_config.h"

namespace scap::test {

/// c17-style miniature: 2 NAND levels, 3 flops, 1 PI.
///
///   q0 --+                +--> d0 (= n1)
///        NAND2 -> n1 -----+
///   q1 --+            |
///                     +-NAND2 -> n2 --> d1, d2
///   pi0 ----------------+
inline Netlist tiny_netlist() {
  Netlist nl;
  nl.set_block_count(2);
  nl.set_domain_count(1);
  const NetId pi0 = nl.add_input("pi0");
  const NetId q0 = nl.add_net("q0");
  const NetId q1 = nl.add_net("q1");
  const NetId q2 = nl.add_net("q2");
  const NetId n1 = nl.add_net("n1");
  const NetId n2 = nl.add_net("n2");
  const NetId ins1[] = {q0, q1};
  nl.add_gate(CellType::kNand2, ins1, n1, /*block=*/0);
  const NetId ins2[] = {n1, pi0};
  nl.add_gate(CellType::kNand2, ins2, n2, /*block=*/1);
  nl.add_flop(/*d=*/n1, /*q=*/q0, /*domain=*/0, /*block=*/0);
  nl.add_flop(/*d=*/n2, /*q=*/q1, /*domain=*/0, /*block=*/1);
  nl.add_flop(/*d=*/n2, /*q=*/q2, /*domain=*/0, /*block=*/1);
  nl.finalize();
  return nl;
}

/// Cached tiny generated SOC (full physical design).
inline const SocDesign& tiny_soc() {
  static const SocDesign soc = build_soc(SocConfig::tiny(11));
  return soc;
}

/// Cached small-but-nontrivial SOC for integration tests.
inline const SocDesign& small_soc() {
  static const SocDesign soc = [] {
    SocConfig cfg = SocConfig::turbo_eagle_scaled(0.01);
    cfg.seed = 2007;
    return build_soc(cfg);
  }();
  return soc;
}

}  // namespace scap::test
