#include <gtest/gtest.h>

#include "atpg/pattern.h"
#include "test_helpers.h"

namespace scap {
namespace {

TestCube cube_of(std::initializer_list<std::uint8_t> bits) {
  TestCube c;
  c.s1.assign(bits);
  return c;
}

TEST(TestCube, CareBitCounting) {
  const TestCube c = cube_of({0, 1, kBitX, kBitX, 1});
  EXPECT_EQ(c.care_bits(), 3u);
  EXPECT_EQ(c.x_bits(), 2u);
}

TEST(Fill, Fill0ReplacesOnlyX) {
  Rng rng(1);
  const TestCube c = cube_of({1, kBitX, 0, kBitX});
  const Pattern p = apply_fill(c, FillMode::kFill0, rng);
  EXPECT_EQ(p.s1, (std::vector<std::uint8_t>{1, 0, 0, 0}));
}

TEST(Fill, Fill1ReplacesOnlyX) {
  Rng rng(1);
  const TestCube c = cube_of({1, kBitX, 0, kBitX});
  const Pattern p = apply_fill(c, FillMode::kFill1, rng);
  EXPECT_EQ(p.s1, (std::vector<std::uint8_t>{1, 1, 0, 1}));
}

TEST(Fill, RandomIsDeterministicPerSeed) {
  const TestCube c = cube_of({kBitX, kBitX, kBitX, kBitX, 1, kBitX});
  Rng a(7), b(7), d(8);
  const Pattern pa = apply_fill(c, FillMode::kRandom, a);
  const Pattern pb = apply_fill(c, FillMode::kRandom, b);
  const Pattern pd = apply_fill(c, FillMode::kRandom, d);
  EXPECT_EQ(pa.s1, pb.s1);
  EXPECT_EQ(pa.s1[4], 1);  // care bit untouched
  EXPECT_NE(pa.s1, pd.s1);  // (with high probability for 5 X bits)
}

TEST(Fill, RandomFillsAllX) {
  Rng rng(3);
  const TestCube c = cube_of({kBitX, kBitX, kBitX});
  const Pattern p = apply_fill(c, FillMode::kRandom, rng);
  for (auto b : p.s1) EXPECT_LT(b, 2);
}

TEST(Fill, AdjacentCopiesPrecedingCareValue) {
  Rng rng(1);
  // One chain in flop order: [1, X, X, 0, X].
  const TestCube c = cube_of({1, kBitX, kBitX, 0, kBitX});
  const Pattern p = apply_fill(c, FillMode::kAdjacent, rng);
  EXPECT_EQ(p.s1, (std::vector<std::uint8_t>{1, 1, 1, 0, 0}));
}

TEST(Fill, AdjacentBackfillsLeadingX) {
  Rng rng(1);
  const TestCube c = cube_of({kBitX, kBitX, 1, kBitX});
  const Pattern p = apply_fill(c, FillMode::kAdjacent, rng);
  EXPECT_EQ(p.s1, (std::vector<std::uint8_t>{1, 1, 1, 1}));
}

TEST(Fill, AdjacentAllXBecomesZero) {
  Rng rng(1);
  const TestCube c = cube_of({kBitX, kBitX, kBitX});
  const Pattern p = apply_fill(c, FillMode::kAdjacent, rng);
  EXPECT_EQ(p.s1, (std::vector<std::uint8_t>{0, 0, 0}));
}

TEST(Fill, AdjacentRespectsChainOrder) {
  Rng rng(1);
  // Two chains: chain0 = {2,0}, chain1 = {1,3}. Cube: [X, 1, 0, X].
  const TestCube c = cube_of({kBitX, 1, 0, kBitX});
  const std::vector<std::vector<FlopId>> chains{{2, 0}, {1, 3}};
  const Pattern p = apply_fill(c, FillMode::kAdjacent, rng, chains);
  // flop0 follows flop2 (value 0) in chain0; flop3 follows flop1 (value 1).
  EXPECT_EQ(p.s1, (std::vector<std::uint8_t>{0, 1, 0, 1}));
}

TEST(Fill, PerBlockModes) {
  Netlist nl = test::tiny_netlist();  // flop0 in B1, flops 1-2 in B2
  Rng rng(1);
  TestCube c;
  c.s1 = {kBitX, kBitX, kBitX};
  const std::vector<FillMode> modes{FillMode::kFill1, FillMode::kFill0};
  const Pattern p = apply_fill_per_block(nl, c, modes, rng);
  EXPECT_EQ(p.s1, (std::vector<std::uint8_t>{1, 0, 0}));
}

TEST(Fill, PerBlockKeepsCareBits) {
  Netlist nl = test::tiny_netlist();
  Rng rng(1);
  TestCube c;
  c.s1 = {0, 1, kBitX};
  const std::vector<FillMode> modes{FillMode::kFill1, FillMode::kFill1};
  const Pattern p = apply_fill_per_block(nl, c, modes, rng);
  EXPECT_EQ(p.s1, (std::vector<std::uint8_t>{0, 1, 1}));
}

TEST(Fill, ModeNames) {
  EXPECT_STREQ(fill_mode_name(FillMode::kRandom), "random-fill");
  EXPECT_STREQ(fill_mode_name(FillMode::kFill0), "fill-0");
  EXPECT_STREQ(fill_mode_name(FillMode::kFill1), "fill-1");
  EXPECT_STREQ(fill_mode_name(FillMode::kAdjacent), "fill-adjacent");
}

}  // namespace
}  // namespace scap
