#include <gtest/gtest.h>

#include "atpg/context.h"
#include "core/pattern_sim.h"
#include "power/dynamic_ir.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace scap {
namespace {

struct DynRig {
  const SocDesign& soc = test::tiny_soc();
  const TechLibrary& lib = TechLibrary::generic180();
  PowerGrid grid{soc.floorplan};
  TestContext ctx = TestContext::for_domain(soc.netlist, 0);
  PatternAnalyzer analyzer{soc, lib};

  PatternAnalysis analyze_random(std::uint64_t seed) {
    Rng rng(seed);
    Pattern p;
    p.s1.resize(soc.netlist.num_flops());
    for (auto& b : p.s1) b = static_cast<std::uint8_t>(rng.below(2));
    return analyzer.analyze(ctx, p);
  }

  DynamicIrReport ir_of(const SimTrace& trace, bool clock = true) {
    DynamicIrOptions opt;
    opt.include_clock_tree = clock;
    return analyze_pattern_ir(soc.netlist, soc.placement, soc.parasitics, lib,
                              soc.floorplan, grid, trace, &soc.clock_tree,
                              ctx.domain, opt);
  }
};

TEST(DynamicIr, ActivePatternProducesDrop) {
  DynRig rig;
  const auto pa = rig.analyze_random(1);
  ASSERT_GT(pa.trace.toggles.size(), 0u);
  const auto rep = rig.ir_of(pa.trace);
  EXPECT_GT(rep.worst_vdd_v, 0.0);
  EXPECT_GT(rep.worst_vss_v, 0.0);
  // Both rail solves must hit tolerance -- a truncated map would silently
  // understate every droop downstream.
  EXPECT_TRUE(rep.rails_converged());
  EXPECT_DOUBLE_EQ(rep.window_ns, pa.trace.stw_ns());
}

TEST(DynamicIr, QuietTraceOnlyClockCurrent) {
  DynRig rig;
  SimTrace quiet;
  quiet.last_toggle_ns = 5.0;
  const auto with_clock = rig.ir_of(quiet, true);
  const auto without = rig.ir_of(quiet, false);
  EXPECT_GT(with_clock.worst_vdd_v, 0.0);  // clock tree still switches
  EXPECT_DOUBLE_EQ(without.worst_vdd_v, 0.0);
}

TEST(DynamicIr, MoreSwitchingMoreDrop) {
  DynRig rig;
  // Find a relatively quiet and a relatively loud random pattern.
  PatternAnalysis loud = rig.analyze_random(1);
  PatternAnalysis soft = loud;
  for (std::uint64_t seed = 2; seed < 10; ++seed) {
    PatternAnalysis pa = rig.analyze_random(seed);
    if (pa.trace.toggles.size() > loud.trace.toggles.size()) loud = pa;
    if (pa.trace.toggles.size() < soft.trace.toggles.size()) soft = pa;
  }
  ASSERT_GT(loud.trace.toggles.size(), soft.trace.toggles.size());
  const auto ir_loud = rig.ir_of(loud.trace, false);
  const auto ir_soft = rig.ir_of(soft.trace, false);
  EXPECT_GT(ir_loud.worst_vdd_v, 0.0);
  // Not strictly monotone in toggle count (placement matters), but a 1.3x
  // toggle margin should show up in the rail.
  if (loud.trace.toggles.size() >
      soft.trace.toggles.size() + soft.trace.toggles.size() / 3) {
    EXPECT_GT(ir_loud.worst_vdd_v, ir_soft.worst_vdd_v);
  }
}

TEST(DynamicIr, DroopVectorsMatchSolutions) {
  DynRig rig;
  const auto pa = rig.analyze_random(3);
  const auto rep = rig.ir_of(pa.trace);
  ASSERT_EQ(rep.gate_droop_v.size(), rig.soc.netlist.num_gates());
  ASSERT_EQ(rep.flop_droop_v.size(), rig.soc.netlist.num_flops());
  for (GateId g = 0; g < rig.soc.netlist.num_gates(); g += 17) {
    const Point p = rig.soc.placement.gate_pos(g);
    EXPECT_NEAR(rep.gate_droop_v[g],
                rep.vdd_solution.drop_at(p) + rep.vss_solution.drop_at(p),
                1e-12);
  }
}

TEST(DynamicIr, BlockSummariesConsistent) {
  DynRig rig;
  const auto pa = rig.analyze_random(4);
  const auto rep = rig.ir_of(pa.trace);
  ASSERT_EQ(rep.block_worst_vdd_v.size(), rig.soc.netlist.block_count());
  for (std::size_t b = 0; b < rep.block_worst_vdd_v.size(); ++b) {
    EXPECT_LE(rep.block_avg_vdd_v[b], rep.block_worst_vdd_v[b] + 1e-12);
    EXPECT_LE(rep.block_worst_vdd_v[b], rep.worst_vdd_v + 1e-12);
  }
}

TEST(DynamicIr, ShorterWindowMeansMoreDrop) {
  // Same toggles crammed into half the window draw twice the current.
  DynRig rig;
  const auto pa = rig.analyze_random(5);
  SimTrace squeezed = pa.trace;
  squeezed.last_toggle_ns =
      pa.trace.first_toggle_ns + pa.trace.stw_ns() / 2.0;
  const auto normal = rig.ir_of(pa.trace, false);
  const auto tight = rig.ir_of(squeezed, false);
  EXPECT_NEAR(tight.worst_vdd_v, 2.0 * normal.worst_vdd_v,
              0.02 * tight.worst_vdd_v);
}

}  // namespace
}  // namespace scap
