// Bit-exactness suite for the levelized batch evaluation core.
//
// Pins the three layers introduced by the SoA refactor against the legacy,
// obviously-correct paths:
//  - LevelizedView: the compact renumbering is a permutation, the schedule
//    is topological, and the compact-space topology mirrors the Netlist.
//  - BatchSim: every width (W = 1/2/4) reproduces WordSim's frames exactly,
//    lane by lane, and transpose_pack equals naive bit packing.
//  - FaultSimulator::grade: first-detect indices are identical at every
//    batch width, at 1 and 4 threads, and (over the committed differential
//    corpus) equal to ref::fault_grade_ref.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "atpg/fault_sim.h"
#include "atpg/pattern.h"
#include "netlist/levelized_view.h"
#include "ref/fuzz.h"
#include "ref/ref_models.h"
#include "ref/scenario.h"
#include "rt/thread_pool.h"
#include "sim/batch_sim.h"
#include "sim/logic_sim.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace scap {
namespace {

TEST(LevelizedView, CompactRenumberingIsAPermutation) {
  const Netlist& nl = test::small_soc().netlist;
  const LevelizedView v(nl);
  ASSERT_EQ(v.num_nets(), nl.num_nets());
  ASSERT_EQ(v.num_gates(), nl.num_gates());
  ASSERT_EQ(v.num_flops(), nl.num_flops());
  ASSERT_EQ(v.num_pis(), nl.primary_inputs().size());

  std::vector<std::uint8_t> seen(nl.num_nets(), 0);
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const NetId c = v.compact_net(n);
    ASSERT_LT(c, nl.num_nets());
    ASSERT_FALSE(seen[c]) << "compact id " << c << " assigned twice";
    seen[c] = 1;
    EXPECT_EQ(v.external_net(c), n);
  }
  // Flop Q nets are the leading compact ids, in flop order (the state-vector
  // layout BatchSim::eval_frame memcpys into).
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    EXPECT_EQ(v.compact_net(nl.flop(f).q), static_cast<NetId>(f));
    EXPECT_EQ(v.f_q()[f], static_cast<NetId>(f));
    EXPECT_EQ(v.f_d()[f], v.compact_net(nl.flop(f).d));
  }
}

TEST(LevelizedView, ScheduleIsTopologicalAndMirrorsTopology) {
  const Netlist& nl = test::small_soc().netlist;
  const LevelizedView v(nl);
  const std::uint32_t* levels = v.gate_levels();
  const std::uint32_t* off = v.gate_in_offsets();
  ASSERT_EQ(off[0], 0u);
  for (std::uint32_t i = 0; i < v.num_gates(); ++i) {
    if (i > 0) EXPECT_GE(levels[i], levels[i - 1]);
    const GateId g = v.gate_at(i);
    EXPECT_EQ(v.sched_of_gate(g), i);
    EXPECT_EQ(v.gate_types()[i], nl.gate(g).type);
    EXPECT_EQ(v.gate_outs()[i], v.compact_net(nl.gate(g).out));
    // Outputs are numbered in schedule order.
    EXPECT_EQ(v.gate_outs()[i], v.first_gate_out() + i);
    const auto in_nets = nl.gate_inputs(g);
    ASSERT_EQ(off[i + 1] - off[i], in_nets.size());
    for (std::size_t j = 0; j < in_nets.size(); ++j) {
      const NetId cin = v.gate_ins()[off[i] + j];
      EXPECT_EQ(cin, v.compact_net(in_nets[j]));
      // Topological: every operand is written before this gate's output.
      EXPECT_LT(cin, v.gate_outs()[i]);
    }
  }
  // Compact-space fanouts mirror Netlist::fanout_gates pin-for-pin.
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const auto ext = nl.fanout_gates(n);
    const auto sched = v.fanout_scheds(v.compact_net(n));
    ASSERT_EQ(sched.size(), ext.size());
    std::vector<GateId> a(ext.begin(), ext.end());
    std::vector<GateId> b;
    for (std::uint32_t si : sched) b.push_back(v.gate_at(si));
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "net " << n;
  }
}

TEST(BatchSim, TransposePackMatchesNaivePacking) {
  Rng rng(42);
  for (const std::size_t words : {1u, 2u, 4u}) {
    for (const std::size_t num_vars : {1u, 8u, 13u, 64u, 67u}) {
      const std::size_t np = rng.range(1, static_cast<long>(words * 64));
      std::vector<std::vector<std::uint8_t>> pats(np);
      std::vector<const std::uint8_t*> rows(np);
      for (std::size_t p = 0; p < np; ++p) {
        pats[p].resize(num_vars);
        for (auto& b : pats[p]) b = static_cast<std::uint8_t>(rng.below(2));
        rows[p] = pats[p].data();
      }
      std::vector<std::uint64_t> packed;
      transpose_pack(rows, num_vars, words, packed);

      std::vector<std::uint64_t> naive(num_vars * words, 0);
      for (std::size_t p = 0; p < np; ++p) {
        for (std::size_t vv = 0; vv < num_vars; ++vv) {
          naive[vv * words + p / 64] |=
              static_cast<std::uint64_t>(pats[p][vv] & 1) << (p % 64);
        }
      }
      ASSERT_EQ(packed, naive) << "words=" << words << " vars=" << num_vars
                               << " patterns=" << np;
    }
  }
}

TEST(BatchSim, MatchesWordSimAtEveryWidth) {
  const Netlist& nl = test::small_soc().netlist;
  const auto view = LevelizedView::build(nl);
  WordSim word(nl);
  Rng rng(7);

  const std::size_t nf = nl.num_flops();
  const std::size_t npi = nl.primary_inputs().size();
  for (const std::size_t W : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    BatchSim batch(view, W);
    ASSERT_EQ(batch.words(), W);
    // Independent random words per lane.
    std::vector<std::uint64_t> q(nf * W), pi(npi * W);
    for (auto& x : q) x = rng();
    for (auto& x : pi) x = rng();

    std::vector<std::uint64_t> vals;
    batch.eval_frame(q, pi, vals);
    ASSERT_EQ(vals.size(), nl.num_nets() * W);

    // Each lane word must equal a WordSim frame fed that lane's inputs.
    for (std::size_t w = 0; w < W; ++w) {
      std::vector<std::uint64_t> qw(nf), piw(npi), ref;
      for (std::size_t f = 0; f < nf; ++f) qw[f] = q[f * W + w];
      for (std::size_t i = 0; i < npi; ++i) piw[i] = pi[i * W + w];
      word.eval_frame(qw, piw, ref);
      for (NetId n = 0; n < nl.num_nets(); ++n) {
        ASSERT_EQ(vals[static_cast<std::size_t>(view->compact_net(n)) * W + w],
                  ref[n])
            << "net " << n << " W=" << W << " word " << w;
      }
    }

    // Broadside round trip: next state + frame 2 agree with WordSim too.
    std::vector<std::uint64_t> f1, s2, g2;
    batch.broadside(q, pi, f1, s2, g2);
    for (std::size_t w = 0; w < W; ++w) {
      std::vector<std::uint64_t> qw(nf), piw(npi), rf1, rs2, rg2;
      for (std::size_t f = 0; f < nf; ++f) qw[f] = q[f * W + w];
      for (std::size_t i = 0; i < npi; ++i) piw[i] = pi[i * W + w];
      word.broadside(qw, piw, rf1, rs2, rg2);
      for (std::size_t f = 0; f < nf; ++f) {
        ASSERT_EQ(s2[f * W + w], rs2[f]) << "flop " << f;
      }
      for (NetId n = 0; n < nl.num_nets(); ++n) {
        ASSERT_EQ(g2[static_cast<std::size_t>(view->compact_net(n)) * W + w],
                  rg2[n])
            << "net " << n;
      }
    }
  }
}

/// Run `fn` with the global pool pinned to `threads`, restoring the default.
template <typename Fn>
auto at_threads(std::size_t threads, Fn&& fn) {
  rt::ThreadPool::set_global_concurrency(threads);
  auto out = fn();
  rt::ThreadPool::set_global_concurrency(0);
  return out;
}

TEST(BatchGrade, WidthAndThreadInvariant) {
  const Netlist& nl = test::small_soc().netlist;
  const TestContext ctx = TestContext::for_domain(nl, 0);
  const auto faults = collapse_faults(nl, enumerate_faults(nl));
  // 3 full 64-lane batches plus a partial tail, so W=4 sees a partial block.
  const PatternSet pats = random_pattern_set(210, ctx.num_vars(), 77);

  std::vector<std::vector<std::size_t>> results;
  std::vector<std::vector<std::size_t>> counts;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const std::size_t W :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      auto run = [&] {
        FaultSimulator fs(nl, ctx);
        fs.set_batch_words(W);
        std::vector<std::size_t> per_pattern;
        auto first = fs.grade(pats.patterns, faults, &per_pattern);
        return std::pair(std::move(first), std::move(per_pattern));
      };
      auto [first, per] = at_threads(threads, run);
      results.push_back(std::move(first));
      counts.push_back(std::move(per));
    }
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]) << "variant " << i;
    EXPECT_EQ(counts[i], counts[0]) << "variant " << i;
  }

  // And all of it equals the legacy one-batch-at-a-time path.
  FaultSimulator legacy(nl, ctx);
  std::vector<std::size_t> first_legacy(faults.size(),
                                        FaultSimulator::kUndetected);
  for (std::size_t base = 0; base < pats.patterns.size(); base += 64) {
    const std::size_t n = std::min<std::size_t>(64, pats.patterns.size() - base);
    legacy.load_batch(std::span<const Pattern>(pats.patterns).subspan(base, n));
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (first_legacy[fi] != FaultSimulator::kUndetected) continue;
      const std::uint64_t mask = legacy.detect_mask(faults[fi]);
      if (mask) {
        first_legacy[fi] =
            base + static_cast<std::size_t>(std::countr_zero(mask));
      }
    }
  }
  EXPECT_EQ(results[0], first_legacy);
}

TEST(BatchGrade, RejectsInvalidWidths) {
  const Netlist& nl = test::tiny_soc().netlist;
  const TestContext ctx = TestContext::for_domain(nl, 0);
  FaultSimulator fs(nl, ctx);
  EXPECT_EQ(fs.batch_words(), FaultSimulator::kDefaultBatchWords);
  EXPECT_THROW(fs.set_batch_words(3), std::invalid_argument);
  EXPECT_THROW(fs.set_batch_words(8), std::invalid_argument);
  fs.set_batch_words(2);
  EXPECT_EQ(fs.batch_words(), 2u);
  fs.set_batch_words(0);  // reset
  EXPECT_EQ(fs.batch_words(), FaultSimulator::kDefaultBatchWords);
}

// --- corpus replay vs the reference grader --------------------------------

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  const std::filesystem::path dir = SCAP_CORPUS_DIR;
  if (std::filesystem::is_directory(dir)) {
    for (const auto& e : std::filesystem::directory_iterator(dir)) {
      if (e.path().extension() == ".scenario") files.push_back(e.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

class CorpusGrade : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusGrade, MatchesReferenceAtEveryWidthAndThreadCount) {
  const ref::Scenario sc = ref::Scenario::parse(slurp(GetParam()));
  const ref::ScenarioSetup setup = ref::materialize_scenario(sc);
  const Netlist& nl = setup.soc.netlist;
  const auto faults = collapse_faults(nl, enumerate_faults(nl));
  ASSERT_FALSE(setup.patterns.empty());

  const std::vector<std::size_t> ref_first =
      ref::fault_grade_ref(nl, setup.ctx, setup.patterns, faults);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const std::size_t W :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      auto first = at_threads(threads, [&] {
        FaultSimulator fs(nl, setup.ctx);
        fs.set_batch_words(W);
        return fs.grade(setup.patterns, faults);
      });
      EXPECT_EQ(first, ref_first) << "threads=" << threads << " W=" << W;
    }
  }
}

std::string param_name(const ::testing::TestParamInfo<std::string>& info) {
  std::string stem = std::filesystem::path(info.param).stem().string();
  for (char& c : stem) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return stem;
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusGrade,
                         ::testing::ValuesIn(corpus_files()), param_name);

}  // namespace
}  // namespace scap
