// Dataflow engine tests: hand-computed SCOAP values on small fixtures,
// constant inference with held primary inputs, 3-valued X-propagation, a
// hand-traced static SCAP bound, and the corpus-driven calibration suite --
// on every committed differential-corpus scenario the static bound must be
// sound (>= the exact event-simulated SCAP report, component by component)
// and within the documented kStaticEnergySlack of exact switching energy.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/pattern_sim.h"
#include "lint/dataflow.h"
#include "lint/static_power.h"
#include "ref/fuzz.h"
#include "ref/scenario.h"

namespace scap {
namespace {

using lint::analyze_dataflow;
using lint::DataflowFacts;
using lint::DataflowOptions;
using lint::kInfCost;

// ---------------------------------------------------------------------------
// SCOAP controllability / observability, hand-computed.
// ---------------------------------------------------------------------------

TEST(Scoap, AndChainHandValues) {
  // a,b,c free PIs; n1 = AND(a,b); y = AND(n1,c); y is a PO.
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId c = nl.add_input("c");
  const NetId n1 = nl.add_net("n1");
  const NetId y = nl.add_net("y");
  const NetId in0[] = {a, b};
  nl.add_gate(CellType::kAnd2, in0, n1);
  const NetId in1[] = {n1, c};
  nl.add_gate(CellType::kAnd2, in1, y);
  nl.mark_output(y);

  const DataflowFacts f = analyze_dataflow(nl);
  // Free PIs cost 1 for either value.
  EXPECT_EQ(f.cc0[a], 1u);
  EXPECT_EQ(f.cc1[a], 1u);
  // AND: CC1 = sum CC1(in) + 1, CC0 = min CC0(in) + 1.
  EXPECT_EQ(f.cc1[n1], 3u);
  EXPECT_EQ(f.cc0[n1], 2u);
  EXPECT_EQ(f.cc1[y], 5u);
  EXPECT_EQ(f.cc0[y], 2u);
  // CO: POs cost 0; each AND level adds 1 + CC1 of the side inputs.
  EXPECT_EQ(f.co[y], 0u);
  EXPECT_EQ(f.co[n1], 2u);
  EXPECT_EQ(f.co[c], 4u);
  EXPECT_EQ(f.co[a], 4u);
  EXPECT_EQ(f.co[b], 4u);
  EXPECT_EQ(f.constant_nets, 0u);
  EXPECT_EQ(f.uncontrollable_nets, 0u);
  EXPECT_EQ(f.unobservable_nets, 0u);
}

TEST(Scoap, XorInversionAndScanSources) {
  // Scan flop Q drives XOR with a free PI; NAND swaps its core costs.
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId d = nl.add_net("d");
  const NetId q = nl.add_net("q");
  const NetId x = nl.add_net("x");
  const NetId w = nl.add_net("w");
  nl.add_flop(d, q, /*domain=*/0, /*block=*/0);
  const NetId in0[] = {q, a};
  nl.add_gate(CellType::kXor2, in0, x);
  const NetId in1[] = {a, b};
  nl.add_gate(CellType::kNand2, in1, w);
  const NetId in2[] = {x};
  nl.add_gate(CellType::kBuf, in2, d);
  nl.mark_output(w);

  const DataflowFacts f = analyze_dataflow(nl);
  // Scan-cell Q: both values one shift away.
  EXPECT_EQ(f.cc0[q], 1u);
  EXPECT_EQ(f.cc1[q], 1u);
  // XOR: CC0 = min(00, 11) + 1 = 3, CC1 = min(01, 10) + 1 = 3.
  EXPECT_EQ(f.cc0[x], 3u);
  EXPECT_EQ(f.cc1[x], 3u);
  // NAND = inverted AND core: CC1 = min CC0(in) + 1, CC0 = sum CC1(in) + 1.
  EXPECT_EQ(f.cc1[w], 2u);
  EXPECT_EQ(f.cc0[w], 3u);
  // x feeds flop D through the buffer: CO(x) = CO(d) + 1 = 1, and observing
  // q through the XOR costs CO(x) + 1 + min(CC0(a), CC1(a)) = 3.
  EXPECT_EQ(f.co[d], 0u);
  EXPECT_EQ(f.co[x], 1u);
  EXPECT_EQ(f.co[q], 3u);
}

TEST(Scoap, HeldPiMakesOppositeValueUnjustifiable) {
  // PI a held at 0 feeding AND: y is provably constant 0, CC1 = inf.
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = nl.add_net("y");
  const NetId in0[] = {a, b};
  nl.add_gate(CellType::kAnd2, in0, y);
  nl.mark_output(y);

  const std::uint8_t held[] = {0, 1};
  DataflowOptions opt;
  opt.pi_values = held;
  const DataflowFacts f = analyze_dataflow(nl, opt);
  EXPECT_EQ(f.cc1[a], kInfCost);
  EXPECT_EQ(f.cc0[a], 1u);
  EXPECT_EQ(f.cc0[b], kInfCost);
  EXPECT_TRUE(f.constant[a].is0());
  EXPECT_TRUE(f.constant[b].is1());
  EXPECT_TRUE(f.constant[y].is0());
  EXPECT_EQ(f.cc1[y], kInfCost);
  // a, b and y are all constants.
  EXPECT_EQ(f.constant_nets, 3u);
  // Constant nets are excluded from the un{controllable,observable} counts.
  EXPECT_EQ(f.uncontrollable_nets, 0u);
  EXPECT_EQ(f.unobservable_nets, 0u);
}

TEST(Scoap, CombLoopIsCyclicAndUncontrollable) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId x = nl.add_net("x");
  const NetId y = nl.add_net("y");
  const NetId in0[] = {a, y};
  nl.add_gate(CellType::kAnd2, in0, x);
  const NetId in1[] = {x};
  nl.add_gate(CellType::kBuf, in1, y);
  nl.mark_output(x);

  const lint::LevelMap lm = lint::levelize(nl);
  EXPECT_EQ(lm.cyclic_gates, 2u);
  EXPECT_FALSE(lm.acyclic());
  const DataflowFacts f = analyze_dataflow(nl);
  // Nets driven inside the cycle never get a finite cost.
  EXPECT_EQ(f.cc0[x], kInfCost);
  EXPECT_EQ(f.cc1[x], kInfCost);
  EXPECT_EQ(f.uncontrollable_nets, 2u);
}

// ---------------------------------------------------------------------------
// Static X-propagation.
// ---------------------------------------------------------------------------

TEST(XProp, ControllingValuesMaskUnknowns) {
  // q0 = X, q1 = 0: AND masks the X, OR propagates it, INV keeps it.
  Netlist nl;
  const NetId d0 = nl.add_net("d0");
  const NetId q0 = nl.add_net("q0");
  const NetId d1 = nl.add_net("d1");
  const NetId q1 = nl.add_net("q1");
  const NetId m = nl.add_net("m");
  const NetId o = nl.add_net("o");
  const NetId v = nl.add_net("v");
  nl.add_flop(d0, q0, 0, 0);
  nl.add_flop(d1, q1, 0, 0);
  const NetId ina[] = {q0, q1};
  nl.add_gate(CellType::kAnd2, ina, m);
  nl.add_gate(CellType::kOr2, ina, o);
  const NetId inv[] = {q0};
  nl.add_gate(CellType::kInv, inv, v);
  const NetId inb[] = {m};
  nl.add_gate(CellType::kBuf, inb, d0);
  const NetId inc[] = {o};
  nl.add_gate(CellType::kBuf, inc, d1);
  nl.mark_output(v);

  const lint::LevelMap lm = lint::levelize(nl);
  const V3 flop_bits[] = {V3::x(), V3::zero()};
  std::vector<V3> nets;
  lint::eval_frame_v3(nl, lm, flop_bits, {}, nets);
  EXPECT_TRUE(nets[m].is0());  // X & 0 = 0
  EXPECT_TRUE(nets[o].is_x()); // X | 0 = X
  EXPECT_TRUE(nets[v].is_x()); // !X = X
  EXPECT_TRUE(nets[d0].is0());
  EXPECT_TRUE(nets[d1].is_x());
}

// ---------------------------------------------------------------------------
// Static SCAP bound, hand-traced on a one-flop inverter loop.
// ---------------------------------------------------------------------------

TEST(StaticScap, HandTracedInverterLoop) {
  // q0 -> INV -> n1 -> D of the same flop. Scanning in 0 guarantees a
  // launch (S2 = !S1): q0 rises once at its clock arrival, n1 falls once
  // one min-delay later.
  Netlist nl;
  const NetId n1 = nl.add_net("n1");
  const NetId q0 = nl.add_net("q0");
  nl.add_flop(n1, q0, /*domain=*/0, /*block=*/0);
  const NetId ins[] = {q0};
  nl.add_gate(CellType::kInv, ins, n1);
  nl.finalize();

  const TestContext ctx = TestContext::for_domain(nl, 0);
  const double net_energy[] = {1.0, 1.0};  // pJ per toggle, nets n1 and q0
  const double arrival[] = {0.0};
  const double gate_delay[] = {0.1};
  const lint::StaticScapModel model(nl, net_energy, arrival, gate_delay);

  Pattern p;
  p.s1 = {0};
  const lint::StaticScapBound& b = model.screen(ctx, p);
  EXPECT_EQ(b.certain_launches, 1u);
  EXPECT_GE(b.possible_launches, 1u);
  EXPECT_DOUBLE_EQ(b.toggle_bound, 2.0);
  // q0 rises (0 -> 1): VDD rail. n1 falls (1 -> 0): VSS rail.
  EXPECT_DOUBLE_EQ(b.vdd_energy_total_pj, 1.0);
  EXPECT_DOUBLE_EQ(b.vss_energy_total_pj, 1.0);
  // Window: launch commits at 0, n1's guaranteed change at >= 0.1 ns.
  EXPECT_NEAR(b.stw_lb_ns, 0.1, 1e-12);
  EXPECT_NEAR(b.total_scap_mw(), 2.0 / 0.1, 1e-9);
  EXPECT_NEAR(b.block_scap_mw(0), 2.0 / 0.1, 1e-9);

  // All-X cube: no certain launch, so the window cannot be bounded away
  // from zero and the pattern can never be proven clean.
  TestCube cube;
  cube.s1 = {kBitX};
  const lint::StaticScapBound& bx = model.screen_cube(ctx, cube,
                                                      FillMode::kRandom);
  EXPECT_EQ(bx.certain_launches, 0u);
  EXPECT_EQ(bx.possible_launches, 1u);
  EXPECT_DOUBLE_EQ(bx.stw_lb_ns, 0.0);
  EXPECT_GT(bx.total_energy_pj(), 0.0);
  EXPECT_TRUE(std::isinf(bx.block_scap_mw(0)));
  const double thr[] = {1e12};
  EXPECT_FALSE(bx.certainly_clean(thr));
}

// ---------------------------------------------------------------------------
// Corpus calibration: sound and within the documented slack on every
// committed differential-corpus scenario.
// ---------------------------------------------------------------------------

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  const std::filesystem::path dir = SCAP_CORPUS_DIR;
  if (std::filesystem::is_directory(dir)) {
    for (const auto& e : std::filesystem::directory_iterator(dir)) {
      if (e.path().extension() == ".scenario") files.push_back(e.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

class CorpusCalibration : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusCalibration, StaticBoundSoundAndWithinSlack) {
  const ref::Scenario sc = ref::Scenario::parse(slurp(GetParam()));
  const ref::ScenarioSetup su = ref::materialize_scenario(sc);
  ASSERT_FALSE(su.patterns.empty());
  PatternAnalyzer pa(su.soc, su.lib);
  const std::size_t blocks = su.soc.netlist.block_count();

  double exact_energy_total = 0.0;
  double bound_energy_total = 0.0;
  for (std::size_t i = 0; i < su.patterns.size(); ++i) {
    const Pattern& p = su.patterns[i];
    const ScapReport& exact = pa.analyze_scap(su.ctx, p);
    const lint::StaticScapBound& b = *[&] {
      // screen_static shares the analyzer; copy nothing, but order matters:
      // analyze_scap's report buffer is separate from the bound's.
      return &pa.screen_static(su.ctx, p);
    }();

    // Soundness, component by component. tol absorbs float accumulation
    // order only -- the bound itself must dominate.
    const auto tol = [](double x) { return 1e-9 * (1.0 + std::abs(x)); };
    EXPECT_GE(b.toggle_bound + 1e-9,
              static_cast<double>(exact.num_toggles))
        << "pattern " << i;
    for (std::size_t blk = 0; blk < blocks; ++blk) {
      EXPECT_GE(b.vdd_energy_pj[blk] + tol(exact.vdd_energy_pj[blk]),
                exact.vdd_energy_pj[blk])
          << "pattern " << i << " block " << blk;
      EXPECT_GE(b.vss_energy_pj[blk] + tol(exact.vss_energy_pj[blk]),
                exact.vss_energy_pj[blk])
          << "pattern " << i << " block " << blk;
    }
    EXPECT_LE(b.stw_lb_ns, exact.stw_ns + 1e-9) << "pattern " << i;
    const double exact_scap =
        exact.scap_mw(Rail::kVdd) + exact.scap_mw(Rail::kVss);
    EXPECT_GE(b.total_scap_mw() + tol(exact_scap), exact_scap)
        << "pattern " << i;
    for (std::size_t blk = 0; blk < blocks; ++blk) {
      const double eb = exact.block_scap_mw(Rail::kVdd, blk) +
                        exact.block_scap_mw(Rail::kVss, blk);
      EXPECT_GE(b.block_scap_mw(blk) + tol(eb), eb)
          << "pattern " << i << " block " << blk;
    }

    const double exact_e = exact.vdd_energy_total_pj + exact.vss_energy_total_pj;
    exact_energy_total += exact_e;
    bound_energy_total += b.total_energy_pj();
    // Per-pattern slack, with a small absolute floor for near-quiet patterns.
    EXPECT_LE(b.total_energy_pj(),
              lint::kStaticEnergySlack * exact_e + 50.0)
        << "pattern " << i;
  }

  // Scenario-total calibration: the bound tracks exact switching energy to
  // within the documented slack (it is loose where glitch trains cancel).
  // A scenario whose patterns launch nothing (all_x_fill under adjacent
  // fill) has zero exact energy and no meaningful ratio; the per-pattern
  // soundness + floor assertions above still ran.
  if (exact_energy_total > 0.0) {
    const double ratio = bound_energy_total / exact_energy_total;
    RecordProperty("energy_bound_ratio", std::to_string(ratio));
    std::cout << "[calibration] " << std::filesystem::path(GetParam()).stem()
              << ": bound/exact energy ratio " << ratio << "\n";
    EXPECT_GE(ratio, 1.0 - 1e-9);
    EXPECT_LE(ratio, lint::kStaticEnergySlack);
  } else {
    EXPECT_LE(bound_energy_total, 50.0 * static_cast<double>(su.patterns.size()));
  }
}

std::string param_name(const ::testing::TestParamInfo<std::string>& info) {
  std::string stem = std::filesystem::path(info.param).stem().string();
  for (char& c : stem) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return stem;
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusCalibration,
                         ::testing::ValuesIn(corpus_files()), param_name);

}  // namespace
}  // namespace scap
