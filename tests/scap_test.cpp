#include <gtest/gtest.h>

#include <stdexcept>

#include "atpg/context.h"
#include "core/pattern_sim.h"
#include "ref/compare.h"
#include "sim/scap.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace scap {
namespace {

// Shared tolerance policy (rationale in ref/compare.h) instead of ad-hoc
// epsilons: energies compare relatively (plain-double summation rounding),
// windows get the float-quantization absolute floor.
#define EXPECT_CLOSE(a, b, rel, abs)                                     \
  EXPECT_TRUE(ref::close_enough((a), (b), (rel), (abs)))                 \
      << #a " = " << ::testing::PrintToString(a) << " vs " #b " = "      \
      << ::testing::PrintToString(b)

struct ScapRig {
  const SocDesign& soc = test::tiny_soc();
  const TechLibrary& lib = TechLibrary::generic180();
  TestContext ctx = TestContext::for_domain(soc.netlist, 0);
  PatternAnalyzer analyzer{soc, lib};

  PatternAnalysis analyze_random(std::uint64_t seed) {
    Rng rng(seed);
    Pattern p;
    p.s1.resize(soc.netlist.num_flops());
    for (auto& b : p.s1) b = static_cast<std::uint8_t>(rng.below(2));
    return analyzer.analyze(ctx, p);
  }
};

TEST(Scap, EnergyMatchesManualSum) {
  ScapRig rig;
  const PatternAnalysis pa = rig.analyze_random(1);
  double vdd_pj = 0.0, vss_pj = 0.0;
  for (const ToggleEvent& t : pa.trace.toggles) {
    const double e =
        rig.lib.toggle_energy_pj(rig.soc.parasitics.net_load_pf(t.net));
    (t.rising ? vdd_pj : vss_pj) += e;
  }
  EXPECT_CLOSE(pa.scap.vdd_energy_total_pj, vdd_pj, ref::kEnergyRelTol,
               ref::kDefaultAbsTol);
  EXPECT_CLOSE(pa.scap.vss_energy_total_pj, vss_pj, ref::kEnergyRelTol,
               ref::kDefaultAbsTol);
}

TEST(Scap, BlockEnergiesSumToTotal) {
  ScapRig rig;
  const PatternAnalysis pa = rig.analyze_random(2);
  double sum = 0.0;
  for (double e : pa.scap.vdd_energy_pj) sum += e;
  EXPECT_CLOSE(sum, pa.scap.vdd_energy_total_pj, ref::kEnergyRelTol,
               ref::kDefaultAbsTol);
  sum = 0.0;
  for (double e : pa.scap.vss_energy_pj) sum += e;
  EXPECT_CLOSE(sum, pa.scap.vss_energy_total_pj, ref::kEnergyRelTol,
               ref::kDefaultAbsTol);
}

TEST(Scap, BlockEnergyBoundsChecked) {
  ScapRig rig;
  const PatternAnalysis pa = rig.analyze_random(4);
  ASSERT_GT(pa.scap.stw_ns, 0.0);  // so block_scap_mw reaches block_energy
  const std::size_t blocks = pa.scap.vdd_energy_pj.size();
  EXPECT_THROW(pa.scap.block_energy(Rail::kVdd, blocks), std::out_of_range);
  EXPECT_THROW(pa.scap.block_energy(Rail::kVss, blocks), std::out_of_range);
  EXPECT_THROW(pa.scap.block_scap_mw(Rail::kVdd, blocks), std::out_of_range);
  EXPECT_NO_THROW(pa.scap.block_energy(Rail::kVdd, blocks - 1));
}

TEST(Scap, CapScapRatioIsPeriodOverStw) {
  ScapRig rig;
  const PatternAnalysis pa = rig.analyze_random(3);
  ASSERT_GT(pa.scap.stw_ns, 0.0);
  const double ratio = pa.scap.scap_mw(Rail::kVdd) / pa.scap.cap_mw(Rail::kVdd);
  EXPECT_CLOSE(ratio, pa.scap.period_ns / pa.scap.stw_ns, ref::kEnergyRelTol,
               ref::kDefaultAbsTol);
}

TEST(Scap, ScapExceedsCapWhenWindowShorterThanCycle) {
  // The paper's core observation: STW < T => SCAP > CAP.
  ScapRig rig;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const PatternAnalysis pa = rig.analyze_random(seed);
    if (pa.scap.num_toggles == 0) continue;
    ASSERT_LT(pa.scap.stw_ns, pa.scap.period_ns) << "seed " << seed;
    EXPECT_GT(pa.scap.scap_mw(Rail::kVdd), pa.scap.cap_mw(Rail::kVdd));
  }
}

TEST(Scap, StwIsToggleSpan) {
  ScapRig rig;
  const PatternAnalysis pa = rig.analyze_random(4);
  double first = 1e300, last = 0.0;
  for (const ToggleEvent& t : pa.trace.toggles) {
    first = std::min(first, static_cast<double>(t.t_ns));
    last = std::max(last, static_cast<double>(t.t_ns));
  }
  // Toggle timestamps are stored as float; the window tolerance carries an
  // absolute floor scaled to timestamp quantization (see ref/compare.h).
  EXPECT_CLOSE(pa.scap.stw_ns, last - first, ref::kStwRelTol,
               ref::kStwAbsTolNs);
  // Clock insertion delay must not inflate the window.
  EXPECT_LT(pa.scap.stw_ns, last);
}

TEST(Scap, EmptyTraceYieldsZeroPower) {
  ScapRig rig;
  Pattern p;
  p.s1.assign(rig.soc.netlist.num_flops(), 0);
  // All-zero state: the launch may still flip some flops; force quiet by
  // checking the algebra on an empty trace directly instead.
  ScapCalculator calc(rig.soc.netlist, rig.soc.parasitics, rig.lib);
  SimTrace empty;
  const ScapReport rep = calc.compute(empty, 20.0);
  EXPECT_EQ(rep.num_toggles, 0u);
  EXPECT_DOUBLE_EQ(rep.scap_mw(Rail::kVdd), 0.0);
  EXPECT_DOUBLE_EQ(rep.cap_mw(Rail::kVss), 0.0);
}

TEST(Scap, RisingTogglesChargeVddOnly) {
  ScapRig rig;
  SimTrace trace;
  trace.toggles.push_back(ToggleEvent{rig.soc.netlist.gate(0).out, 1.0f, true});
  trace.last_toggle_ns = 1.0;
  ScapCalculator calc(rig.soc.netlist, rig.soc.parasitics, rig.lib);
  const ScapReport rep = calc.compute(trace, 20.0);
  EXPECT_GT(rep.vdd_energy_total_pj, 0.0);
  EXPECT_DOUBLE_EQ(rep.vss_energy_total_pj, 0.0);
}

TEST(Scap, BlockAttributionFollowsDriver) {
  ScapRig rig;
  const Netlist& nl = rig.soc.netlist;
  // Find a gate in block B5 (index 4).
  GateId hot_gate = kNullId;
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    if (nl.gate(g).block == 4) {
      hot_gate = g;
      break;
    }
  }
  ASSERT_NE(hot_gate, kNullId);
  SimTrace trace;
  trace.toggles.push_back(ToggleEvent{nl.gate(hot_gate).out, 1.0f, true});
  trace.last_toggle_ns = 1.0;
  ScapCalculator calc(nl, rig.soc.parasitics, rig.lib);
  const ScapReport rep = calc.compute(trace, 20.0);
  EXPECT_GT(rep.vdd_energy_pj[4], 0.0);
  EXPECT_DOUBLE_EQ(rep.vdd_energy_pj[0], 0.0);
}

TEST(Scap, TesterPeriodUsedForCap) {
  ScapRig rig;
  const PatternAnalysis pa = rig.analyze_random(6);
  EXPECT_DOUBLE_EQ(pa.scap.period_ns, rig.soc.config.tester_period_ns);
}

}  // namespace
}  // namespace scap
