// Golden equivalence suite for the streaming analysis pipeline: every
// concrete ToggleSink must be bit-identical (exact ==, never EXPECT_NEAR) to
// the legacy trace-walking analysis of the same simulation, on sinks alone,
// on the Figure 2/6 profiling pipelines and on validate_pattern_ir. Also the
// regression home for cancel-on-reschedule behavior observed through a sink.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "atpg/context.h"
#include "atpg/pattern.h"
#include "core/experiment.h"
#include "core/pattern_sim.h"
#include "core/power_aware.h"
#include "core/validation.h"
#include "layout/parasitics.h"
#include "power/dynamic_ir.h"
#include "sim/logic_sim.h"
#include "sim/scap.h"
#include "sim/vcd.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace scap {
namespace {

const Experiment& exp_fixture() {
  static Experiment* exp = new Experiment(Experiment::standard(0.012, 2007));
  return *exp;
}

void expect_scap_identical(const ScapReport& a, const ScapReport& b) {
  EXPECT_EQ(a.stw_ns, b.stw_ns);
  EXPECT_EQ(a.period_ns, b.period_ns);
  EXPECT_EQ(a.num_toggles, b.num_toggles);
  EXPECT_EQ(a.vdd_energy_pj, b.vdd_energy_pj);
  EXPECT_EQ(a.vss_energy_pj, b.vss_energy_pj);
  EXPECT_EQ(a.vdd_energy_total_pj, b.vdd_energy_total_pj);
  EXPECT_EQ(a.vss_energy_total_pj, b.vss_energy_total_pj);
}

void expect_ir_identical(const DynamicIrReport& a, const DynamicIrReport& b) {
  EXPECT_EQ(a.window_ns, b.window_ns);
  EXPECT_EQ(a.worst_vdd_v, b.worst_vdd_v);
  EXPECT_EQ(a.worst_vss_v, b.worst_vss_v);
  EXPECT_EQ(a.vdd_solution.drop_v, b.vdd_solution.drop_v);
  EXPECT_EQ(a.vss_solution.drop_v, b.vss_solution.drop_v);
  EXPECT_EQ(a.block_worst_vdd_v, b.block_worst_vdd_v);
  EXPECT_EQ(a.block_avg_vdd_v, b.block_avg_vdd_v);
  EXPECT_EQ(a.block_worst_vss_v, b.block_worst_vss_v);
  EXPECT_EQ(a.gate_droop_v, b.gate_droop_v);
  EXPECT_EQ(a.flop_droop_v, b.flop_droop_v);
}

// One warm analyzer, a fanout of every concrete sink, random patterns: each
// sink must agree exactly with the legacy analysis that re-walks the trace.
TEST(StreamEquiv, AllSinksMatchTraceAnalyses) {
  const SocDesign& soc = test::small_soc();
  const Netlist& nl = soc.netlist;
  const TechLibrary& lib = TechLibrary::generic180();
  const TestContext ctx = TestContext::for_domain(nl, 0);
  const PowerGrid grid(soc.floorplan);
  const PatternSet pats = random_pattern_set(12, ctx.num_vars(), 42);

  PatternAnalyzer analyzer(soc, lib);
  const double period = soc.config.tester_period_ns;
  TraceRecorder rec;
  ScapAccumulator scap_acc(analyzer.scap_calculator(), period);
  DynamicIrBinner binner(nl, soc.parasitics, lib);
  SettleTimeTracker settle;

  for (std::size_t i = 0; i < pats.size(); ++i) {
    std::ostringstream vcd_stream;
    VcdSink vcd_sink(nl, vcd_stream, "top");
    FanoutSink fan{&rec, &scap_acc, &binner, &settle, &vcd_sink};
    analyzer.analyze_into(ctx, pats.patterns[i], fan);
    const SimTrace& trace = rec.trace();
    SCOPED_TRACE("pattern " + std::to_string(i));

    // SCAP accumulator vs trace-walking calculator.
    expect_scap_identical(scap_acc.report(),
                          analyzer.scap_calculator().compute(trace, period));

    // Settle-time tracker vs trace-walking settle_times.
    const auto legacy_settle = EventSim::settle_times(trace, nl.num_nets());
    ASSERT_EQ(settle.settle().size(), legacy_settle.size());
    for (NetId n = 0; n < nl.num_nets(); ++n) {
      EXPECT_EQ(settle.settle()[n], legacy_settle[n]) << "net " << n;
    }

    // IR binner vs the trace-based analyze_pattern_ir.
    expect_ir_identical(
        analyze_pattern_ir(nl, soc.placement, lib, soc.floorplan, grid,
                           binner, &soc.clock_tree, ctx.domain),
        analyze_pattern_ir(nl, soc.placement, soc.parasitics, lib,
                           soc.floorplan, grid, trace, &soc.clock_tree,
                           ctx.domain));

    // VCD sink vs the trace writer: byte-for-byte.
    const std::vector<std::uint8_t> frame1(analyzer.frame1().begin(),
                                           analyzer.frame1().end());
    EXPECT_EQ(vcd_stream.str(), to_vcd(nl, frame1, trace, "top"));
  }
}

// A fanned-out single pass must equal running each sink in its own pass.
TEST(StreamEquiv, FanoutSinglePassMatchesSeparatePasses) {
  const SocDesign& soc = test::small_soc();
  const TechLibrary& lib = TechLibrary::generic180();
  const TestContext ctx = TestContext::for_domain(soc.netlist, 0);
  const PatternSet pats = random_pattern_set(4, ctx.num_vars(), 7);
  PatternAnalyzer analyzer(soc, lib);
  const double period = soc.config.tester_period_ns;

  for (const Pattern& p : pats.patterns) {
    ScapAccumulator fan_scap(analyzer.scap_calculator(), period);
    SettleTimeTracker fan_settle;
    FanoutSink fan{&fan_scap, &fan_settle};
    analyzer.analyze_into(ctx, p, fan);
    const ScapReport fanned = fan_scap.report();
    const std::vector<double> fanned_settle(fan_settle.settle().begin(),
                                            fan_settle.settle().end());

    ScapAccumulator solo_scap(analyzer.scap_calculator(), period);
    analyzer.analyze_into(ctx, p, solo_scap);
    SettleTimeTracker solo_settle;
    analyzer.analyze_into(ctx, p, solo_settle);

    expect_scap_identical(fanned, solo_scap.report());
    EXPECT_EQ(fanned_settle,
              std::vector<double>(solo_settle.settle().begin(),
                                  solo_settle.settle().end()));
  }
}

// Figure 2 pipeline: conventional ATPG, then the streaming SCAP profile of
// the whole set vs a per-pattern legacy trace+compute pass.
TEST(StreamEquiv, Fig2ProfileMatchesLegacyTracePath) {
  const Experiment& exp = exp_fixture();
  AtpgOptions opt;
  opt.seed = 99;
  opt.fill = FillMode::kRandom;
  const FlowResult flow =
      run_conventional_atpg(exp.soc.netlist, exp.ctx, exp.faults, opt);
  const std::vector<ScapReport> streamed =
      scap_profile(exp.soc, *exp.lib, exp.ctx, flow.patterns);

  PatternAnalyzer analyzer(exp.soc, *exp.lib);
  const double period = exp.soc.config.tester_period_ns;
  ASSERT_EQ(streamed.size(), flow.patterns.size());
  for (std::size_t i = 0; i < flow.patterns.size(); ++i) {
    SCOPED_TRACE("pattern " + std::to_string(i));
    TraceRecorder rec;
    analyzer.analyze_into(exp.ctx, flow.patterns.patterns[i], rec);
    expect_scap_identical(
        streamed[i], analyzer.scap_calculator().compute(rec.trace(), period));
  }
}

// Figure 6 pipeline: the stepwise power-aware flow, same comparison.
TEST(StreamEquiv, Fig6ProfileMatchesLegacyTracePath) {
  const Experiment& exp = exp_fixture();
  AtpgOptions opt;
  opt.seed = 99;
  opt.fill = FillMode::kQuiet;
  const StepPlan plan = StepPlan::paper_default(exp.soc.netlist.block_count());
  const FlowResult flow = run_power_aware_atpg(exp.soc.netlist, exp.ctx,
                                               exp.faults, plan, opt);
  const std::vector<ScapReport> streamed =
      scap_profile(exp.soc, *exp.lib, exp.ctx, flow.patterns);

  PatternAnalyzer analyzer(exp.soc, *exp.lib);
  const double period = exp.soc.config.tester_period_ns;
  ASSERT_EQ(streamed.size(), flow.patterns.size());
  for (std::size_t i = 0; i < flow.patterns.size(); ++i) {
    SCOPED_TRACE("pattern " + std::to_string(i));
    TraceRecorder rec;
    analyzer.analyze_into(exp.ctx, flow.patterns.patterns[i], rec);
    expect_scap_identical(
        streamed[i], analyzer.scap_calculator().compute(rec.trace(), period));
  }
}

// validate_pattern_ir (one streaming pass + grid solves + scaled re-sim) vs
// a hand-rolled composition of the legacy trace-based steps.
TEST(StreamEquiv, ValidatePatternIrMatchesLegacyComposition) {
  const Experiment& exp = exp_fixture();
  const SocDesign& soc = exp.soc;
  const PatternSet pats = random_pattern_set(1, exp.ctx.num_vars(), 2007);
  const Pattern& pattern = pats.patterns[0];

  const IrValidationResult streamed =
      validate_pattern_ir(soc, *exp.lib, exp.grid, exp.ctx, pattern);

  // Legacy composition: two analyze() passes, trace-based IR and endpoints.
  PatternAnalyzer analyzer(soc, *exp.lib);
  const PatternAnalysis nominal = analyzer.analyze(exp.ctx, pattern);
  const DynamicIrReport ir = analyze_pattern_ir(
      soc.netlist, soc.placement, soc.parasitics, *exp.lib, soc.floorplan,
      exp.grid, nominal.trace, &soc.clock_tree, exp.ctx.domain);
  DelayModel scaled_dm = analyzer.nominal_delays();
  scaled_dm.set_droop(*exp.lib, ir.gate_droop_v);
  std::vector<double> nominal_arr(soc.netlist.num_flops());
  for (FlopId f = 0; f < soc.netlist.num_flops(); ++f) {
    nominal_arr[f] = soc.clock_tree.nominal_arrival_ns(f);
  }
  const std::vector<double> scaled_arr = soc.clock_tree.arrivals_with_droop(
      *exp.lib, [&](Point p) { return ir.droop_at(p); });
  const PatternAnalysis scaled =
      analyzer.analyze(exp.ctx, pattern, &scaled_dm, scaled_arr);

  expect_scap_identical(streamed.nominal.scap, nominal.scap);
  expect_scap_identical(streamed.scaled.scap, scaled.scap);
  EXPECT_EQ(streamed.nominal.frame1_nets, nominal.frame1_nets);
  EXPECT_EQ(streamed.nominal.launched_flops, nominal.launched_flops);
  ASSERT_EQ(streamed.nominal.trace.toggles.size(),
            nominal.trace.toggles.size());
  for (std::size_t i = 0; i < nominal.trace.toggles.size(); ++i) {
    EXPECT_EQ(streamed.nominal.trace.toggles[i].net,
              nominal.trace.toggles[i].net);
    EXPECT_EQ(streamed.nominal.trace.toggles[i].t_ns,
              nominal.trace.toggles[i].t_ns);
    EXPECT_EQ(streamed.nominal.trace.toggles[i].rising,
              nominal.trace.toggles[i].rising);
  }
  expect_ir_identical(streamed.ir, ir);
  EXPECT_EQ(streamed.nominal_arrival_ns, nominal_arr);
  EXPECT_EQ(streamed.scaled_arrival_ns, scaled_arr);
  EXPECT_EQ(streamed.nominal_endpoint_ns,
            analyzer.endpoint_delays(nominal.trace, nominal_arr));
  EXPECT_EQ(streamed.scaled_endpoint_ns,
            analyzer.endpoint_delays(scaled.trace, scaled_arr));
}

// Regression: with unequal rise/fall delays, a later input change can
// schedule an *earlier* output event; the superseded event must be cancelled
// (no phantom pulse reaches the sinks) and counted.
TEST(StreamEquiv, HazardCancellationThroughSink) {
  // Single NAND2 fed by two flop-driven nets.
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId y = nl.add_net("y");
  const NetId ins[] = {a, b};
  nl.add_gate(CellType::kNand2, ins, y);
  nl.add_flop(/*d=*/y, /*q=*/a, 0, 0);
  nl.add_flop(/*d=*/y, /*q=*/b, 0, 0);
  nl.finalize();

  const Floorplan fp = Floorplan::turbo_eagle_like(100.0, 4);
  Rng rng(1);
  const Placement pl = Placement::place(nl, fp, rng);
  const TechLibrary& lib = TechLibrary::generic180();
  const Parasitics par = Parasitics::extract(nl, pl, lib);
  const DelayModel dm(nl, lib, par);
  const double dr = dm.rise_ns(0);
  const double df = dm.fall_ns(0);
  ASSERT_NE(dr, df) << "test needs asymmetric rise/fall delays";

  // Pulse `a` so the slow edge is scheduled first and the fast edge -- from
  // a later input change -- lands before it and cancels it. With dr > df:
  // a=1,b=1 -> y=0; a drops at 0 (y rise due at dr), a returns at t1 where
  // t1 + df < dr (y fall due first; the pending rise is superseded).
  // Symmetric for df > dr.
  std::vector<std::uint8_t> init(nl.num_nets(), 0);
  std::vector<Stimulus> stims;
  const double t1 = (dr > df ? dr - df : df - dr) / 2.0;
  if (dr > df) {
    init[a] = 1;
    init[b] = 1;
    init[y] = 0;
    stims.push_back(Stimulus{a, 0.0, 0});
    stims.push_back(Stimulus{a, t1, 1});
  } else {
    init[a] = 0;
    init[b] = 1;
    init[y] = 1;
    stims.push_back(Stimulus{a, 0.0, 1});
    stims.push_back(Stimulus{a, t1, 0});
  }

  EventSim sim(nl, dm);
  EventSim::Workspace ws;
  TraceRecorder rec;
  ScapCalculator calc(nl, par, lib);
  ScapAccumulator acc(calc, /*period_ns=*/20.0);
  FanoutSink fan{&rec, &acc};
  sim.run(init, stims, ws, fan);
  const SimTrace& trace = rec.trace();

  // The superseded slow edge was cancelled, and y never pulses: the only
  // committed toggles are the two stimulus edges on `a`.
  EXPECT_GT(trace.num_events_cancelled, 0u);
  ASSERT_EQ(trace.toggles.size(), 2u);
  EXPECT_EQ(trace.toggles[0].net, a);
  EXPECT_EQ(trace.toggles[1].net, a);

  // Streaming accounting still matches the trace-walking calculator.
  const ScapReport legacy = calc.compute(trace, 20.0);
  EXPECT_EQ(acc.report().vdd_energy_total_pj, legacy.vdd_energy_total_pj);
  EXPECT_EQ(acc.report().vss_energy_total_pj, legacy.vss_energy_total_pj);
  EXPECT_EQ(acc.report().stw_ns, legacy.stw_ns);

  // Control: widen the pulse past the slow delay and the hazard propagates
  // (two toggles on y), exactly like the legacy simulator.
  std::vector<Stimulus> wide = stims;
  wide[1].t_ns = (dr > df ? dr : df) + 0.01;
  const SimTrace wide_trace =
      sim.run(init, std::span<const Stimulus>(wide.data(), wide.size()));
  int y_toggles = 0;
  for (const ToggleEvent& t : wide_trace.toggles) y_toggles += (t.net == y);
  EXPECT_EQ(y_toggles, 2) << "wide pulses must still propagate";
}

// The analyzer's workspace must stop allocating once warm: a second pass
// over the same pattern set may not grow any pool.
TEST(StreamEquiv, WorkspaceAllocationFreeWhenWarm) {
  const SocDesign& soc = test::small_soc();
  const TechLibrary& lib = TechLibrary::generic180();
  const TestContext ctx = TestContext::for_domain(soc.netlist, 0);
  const PatternSet pats = random_pattern_set(20, ctx.num_vars(), 5);
  PatternAnalyzer analyzer(soc, lib);

  for (const Pattern& p : pats.patterns) analyzer.analyze_scap(ctx, p);
  const std::size_t grown_cold = analyzer.workspace().grown_runs();
  const std::size_t runs_cold = analyzer.workspace().runs();

  for (const Pattern& p : pats.patterns) analyzer.analyze_scap(ctx, p);
  EXPECT_EQ(analyzer.workspace().grown_runs(), grown_cold)
      << "second pass over the same patterns must not allocate";
  EXPECT_EQ(analyzer.workspace().runs(), runs_cold + pats.size());
  EXPECT_GE(analyzer.workspace().reused_runs(), pats.size());
}

}  // namespace
}  // namespace scap
