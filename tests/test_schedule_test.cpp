#include <gtest/gtest.h>

#include "core/test_schedule.h"

namespace scap {
namespace {

std::vector<TestSession> sessions4() {
  return {
      {"clka", 100.0, 60.0},
      {"clkb", 40.0, 20.0},
      {"clkc", 30.0, 25.0},
      {"clkd", 20.0, 10.0},
  };
}

TEST(TestSchedule, UnlimitedBudgetRunsEverythingInParallel) {
  const auto s = sessions4();
  const TestSchedule sch = schedule_tests(s, 1000.0);
  EXPECT_EQ(sch.items.size(), s.size());
  for (const auto& it : sch.items) EXPECT_DOUBLE_EQ(it.start_us, 0.0);
  EXPECT_DOUBLE_EQ(sch.makespan_us, 100.0);
  EXPECT_DOUBLE_EQ(sch.peak_power_mw, 115.0);
  EXPECT_FALSE(sch.budget_exceeded);
}

TEST(TestSchedule, TightBudgetSerializes) {
  // Every pair of sessions exceeds the budget -> fully serial schedule.
  const std::vector<TestSession> s{
      {"a", 100.0, 60.0}, {"b", 40.0, 35.0}, {"c", 30.0, 40.0},
      {"d", 20.0, 50.0}};
  const TestSchedule sch = schedule_tests(s, 60.0);
  EXPECT_DOUBLE_EQ(sch.makespan_us, serial_time_us(s));
  EXPECT_LE(sch.peak_power_mw, 60.0 + 1e-12);
}

TEST(TestSchedule, IntermediateBudgetPacksPartially) {
  const auto s = sessions4();
  const TestSchedule sch = schedule_tests(s, 90.0);
  EXPECT_LT(sch.makespan_us, serial_time_us(s));
  EXPECT_GE(sch.makespan_us, 100.0);  // at least the longest session
  EXPECT_LE(sch.peak_power_mw, 90.0 + 1e-12);
  EXPECT_FALSE(sch.budget_exceeded);
}

TEST(TestSchedule, PowerNeverExceedsBudgetAtAnyInstant) {
  const auto s = sessions4();
  const TestSchedule sch = schedule_tests(s, 85.0);
  // Check at every start instant.
  for (const auto& probe : sch.items) {
    double used = 0.0;
    for (const auto& it : sch.items) {
      const double end = it.start_us + s[it.session].time_us;
      if (it.start_us <= probe.start_us && probe.start_us < end) {
        used += s[it.session].power_mw;
      }
    }
    EXPECT_LE(used, 85.0 + 1e-12);
  }
}

TEST(TestSchedule, OversizedSessionRunsAlone) {
  const auto s = sessions4();  // clka needs 60 mW
  const TestSchedule sch = schedule_tests(s, 50.0);
  EXPECT_TRUE(sch.budget_exceeded);
  // clka (index 0) must not overlap anything.
  double a_start = -1.0;
  for (const auto& it : sch.items) {
    if (it.session == 0) a_start = it.start_us;
  }
  ASSERT_GE(a_start, 0.0);
  const double a_end = a_start + s[0].time_us;
  for (const auto& it : sch.items) {
    if (it.session == 0) continue;
    const double b_start = it.start_us;
    const double b_end = b_start + s[it.session].time_us;
    EXPECT_TRUE(b_end <= a_start + 1e-12 || b_start >= a_end - 1e-12)
        << "session " << it.session << " overlaps the oversized one";
  }
}

TEST(TestSchedule, AllSessionsScheduledExactlyOnce) {
  const auto s = sessions4();
  for (double budget : {50.0, 70.0, 90.0, 1000.0}) {
    const TestSchedule sch = schedule_tests(s, budget);
    std::vector<int> seen(s.size(), 0);
    for (const auto& it : sch.items) ++seen[it.session];
    for (std::size_t i = 0; i < s.size(); ++i) {
      EXPECT_EQ(seen[i], 1) << "budget " << budget << " session " << i;
    }
  }
}

TEST(TestSchedule, MonotoneInBudget) {
  const auto s = sessions4();
  double prev = 1e18;
  for (double budget : {60.0, 70.0, 80.0, 95.0, 120.0}) {
    const TestSchedule sch = schedule_tests(s, budget);
    EXPECT_LE(sch.makespan_us, prev + 1e-9) << "budget " << budget;
    prev = sch.makespan_us;
  }
}

TEST(TestSchedule, EmptyInput) {
  const TestSchedule sch = schedule_tests({}, 100.0);
  EXPECT_TRUE(sch.items.empty());
  EXPECT_DOUBLE_EQ(sch.makespan_us, 0.0);
}

}  // namespace
}  // namespace scap
