#include <gtest/gtest.h>

#include "atpg/context.h"
#include "core/pattern_sim.h"
#include "sim/sta.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace scap {
namespace {

struct StaRig {
  const SocDesign& soc = test::tiny_soc();
  const Netlist& nl = soc.netlist;
  const TechLibrary& lib = TechLibrary::generic180();
  DelayModel dm{nl, lib, soc.parasitics};
  std::vector<double> arrivals;

  StaRig() {
    arrivals.resize(nl.num_flops());
    for (FlopId f = 0; f < nl.num_flops(); ++f) {
      arrivals[f] = soc.clock_tree.nominal_arrival_ns(f);
    }
  }
};

TEST(Sta, ArrivalsMonotoneAlongGates) {
  StaRig rig;
  const StaReport sta = run_sta(rig.nl, rig.dm, rig.lib, rig.arrivals);
  for (GateId g = 0; g < rig.nl.num_gates(); ++g) {
    const double out = sta.arrival_ns[rig.nl.gate(g).out];
    if (out == StaReport::kNeverTransitions) continue;
    for (NetId in : rig.nl.gate_inputs(g)) {
      const double ia = sta.arrival_ns[in];
      if (ia == StaReport::kNeverTransitions) continue;
      EXPECT_GE(out, ia) << "gate " << g;
    }
  }
}

TEST(Sta, PiConesNeverTransition) {
  StaRig rig;
  const StaReport sta = run_sta(rig.nl, rig.dm, rig.lib, rig.arrivals);
  for (NetId pi : rig.nl.primary_inputs()) {
    EXPECT_EQ(sta.arrival_ns[pi], StaReport::kNeverTransitions);
  }
}

TEST(Sta, BoundsEventSimulation) {
  // Soundness of STA: no simulated transition settles after its net's STA
  // arrival (the event simulator sees one input vector; STA covers all).
  StaRig rig;
  const StaReport sta = run_sta(rig.nl, rig.dm, rig.lib, rig.arrivals);
  const TestContext ctx = TestContext::for_domain(rig.nl, 0);
  PatternAnalyzer analyzer(rig.soc, rig.lib);
  Rng rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    Pattern p;
    p.s1.resize(rig.nl.num_flops());
    for (auto& b : p.s1) b = static_cast<std::uint8_t>(rng.below(2));
    const auto pa = analyzer.analyze(ctx, p);
    const auto settle = EventSim::settle_times(pa.trace, rig.nl.num_nets());
    for (NetId n = 0; n < rig.nl.num_nets(); ++n) {
      if (settle[n] <= 0.0) continue;
      ASSERT_LE(settle[n], sta.arrival_ns[n] + 1e-6)
          << "net " << n << " trial " << trial;
    }
  }
}

TEST(Sta, WorstEndpointConsistent) {
  StaRig rig;
  const StaReport sta = run_sta(rig.nl, rig.dm, rig.lib, rig.arrivals);
  ASSERT_NE(sta.worst_endpoint, kNullId);
  for (FlopId f = 0; f < rig.nl.num_flops(); ++f) {
    EXPECT_LE(sta.endpoint_ns[f], sta.worst_endpoint_ns + 1e-12);
  }
  EXPECT_DOUBLE_EQ(sta.endpoint_ns[sta.worst_endpoint],
                   sta.worst_endpoint_ns);
}

TEST(Sta, SlackAndMinPeriodAgree) {
  StaRig rig;
  const StaReport sta = run_sta(rig.nl, rig.dm, rig.lib, rig.arrivals);
  const double setup = 0.1;
  const double tmin = sta.min_period_ns(setup, rig.arrivals, rig.nl);
  EXPECT_GT(tmin, 0.0);
  // At exactly the min period, worst slack ~ 0; below it, negative.
  EXPECT_NEAR(sta.worst_slack_ns(tmin, setup, rig.arrivals, rig.nl), 0.0, 1e-9);
  EXPECT_LT(sta.worst_slack_ns(0.9 * tmin, setup, rig.arrivals, rig.nl), 0.0);
  EXPECT_GT(sta.worst_slack_ns(1.1 * tmin, setup, rig.arrivals, rig.nl), 0.0);
}

TEST(Sta, DesignMeetsItsFunctionalPeriod) {
  // The generated SOC should close timing at its 10 ns functional period
  // (with margin for the clock skew).
  StaRig rig;
  const StaReport sta = run_sta(rig.nl, rig.dm, rig.lib, rig.arrivals);
  const double tmin = sta.min_period_ns(0.1, rig.arrivals, rig.nl);
  EXPECT_LT(tmin, rig.soc.period_ns(0));
}

TEST(Sta, CriticalPathWalksToALaunchPoint) {
  StaRig rig;
  const StaReport sta = run_sta(rig.nl, rig.dm, rig.lib, rig.arrivals);
  const auto path = critical_path(rig.nl, sta, sta.worst_endpoint);
  ASSERT_GT(path.size(), 1u);
  // Endpoint first; arrivals decrease along the walk; ends at a flop Q.
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_LE(sta.arrival_ns[path[i]], sta.arrival_ns[path[i - 1]] + 1e-12);
  }
  const Net& last = rig.nl.net(path.back());
  EXPECT_EQ(last.driver_kind, DriverKind::kFlop);
}

TEST(Sta, DroopStretchesArrivals) {
  StaRig rig;
  const StaReport nominal = run_sta(rig.nl, rig.dm, rig.lib, rig.arrivals);
  DelayModel slow = rig.dm;
  std::vector<double> droop(rig.nl.num_gates(), 0.15);
  slow.set_droop(rig.lib, droop);
  const StaReport stressed = run_sta(rig.nl, slow, rig.lib, rig.arrivals);
  EXPECT_GT(stressed.worst_endpoint_ns, nominal.worst_endpoint_ns);
}

}  // namespace
}  // namespace scap
