#include <gtest/gtest.h>

#include "netlist/verilog.h"
#include "sim/logic_sim.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace scap {
namespace {

TEST(VerilogWriter, EmitsModuleAndCells) {
  const std::string v = to_verilog(test::tiny_netlist(), "tiny");
  EXPECT_NE(v.find("module tiny ("), std::string::npos);
  EXPECT_NE(v.find("NAND2"), std::string::npos);
  EXPECT_NE(v.find("SDFF"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("input pi0;"), std::string::npos);
  EXPECT_NE(v.find(".CK(clk0)"), std::string::npos);
}

TEST(VerilogRoundTrip, PreservesStructure) {
  Netlist orig = test::tiny_netlist();
  Netlist back = parse_verilog(to_verilog(orig));
  EXPECT_EQ(back.num_gates(), orig.num_gates());
  EXPECT_EQ(back.num_flops(), orig.num_flops());
  EXPECT_EQ(back.num_nets(), orig.num_nets());
  EXPECT_EQ(back.primary_inputs().size(), orig.primary_inputs().size());
  EXPECT_EQ(back.block_count(), orig.block_count());
}

TEST(VerilogRoundTrip, GeneratedSocIsFunctionallyIdentical) {
  const Netlist& orig = test::tiny_soc().netlist;
  Netlist back = parse_verilog(to_verilog(orig));
  ASSERT_EQ(back.num_gates(), orig.num_gates());
  ASSERT_EQ(back.num_flops(), orig.num_flops());

  // Same broadside response on random states => functional identity.
  WordSim sim_a(orig), sim_b(back);
  Rng rng(99);
  std::vector<std::uint64_t> s1(orig.num_flops());
  for (auto& w : s1) w = rng.word();
  std::vector<std::uint64_t> pi(orig.primary_inputs().size(), 0);
  std::vector<std::uint64_t> f1a, f1b, s2a, s2b, f2a, f2b;
  sim_a.broadside(s1, pi, f1a, s2a, f2a);
  sim_b.broadside(s1, pi, f1b, s2b, f2b);
  ASSERT_EQ(s2a.size(), s2b.size());
  for (std::size_t f = 0; f < s2a.size(); ++f) {
    EXPECT_EQ(s2a[f], s2b[f]) << "flop " << f;
  }
}

TEST(VerilogRoundTrip, PreservesBlockTagsAndDomains) {
  const Netlist& orig = test::tiny_soc().netlist;
  Netlist back = parse_verilog(to_verilog(orig));
  EXPECT_EQ(back.block_count(), orig.block_count());
  EXPECT_EQ(back.domain_count(), orig.domain_count());
  for (FlopId f = 0; f < orig.num_flops(); ++f) {
    EXPECT_EQ(back.flop(f).domain, orig.flop(f).domain) << "flop " << f;
    EXPECT_EQ(back.flop(f).block, orig.flop(f).block) << "flop " << f;
    EXPECT_EQ(back.flop(f).neg_edge, orig.flop(f).neg_edge) << "flop " << f;
  }
  for (GateId g = 0; g < orig.num_gates(); ++g) {
    EXPECT_EQ(back.gate(g).block, orig.gate(g).block) << "gate " << g;
    EXPECT_EQ(back.gate(g).type, orig.gate(g).type) << "gate " << g;
  }
}

TEST(VerilogParser, HandlesComments) {
  const char* src = R"(
// line comment
module m (a, y); /* block
   comment */ input a;
  output y;
  wire y;
  INV b0_g0 (.Y(y), .A(a));  // trailing
endmodule
)";
  Netlist nl = parse_verilog(src);
  EXPECT_EQ(nl.num_gates(), 1u);
  EXPECT_EQ(nl.primary_inputs().size(), 1u);
}

TEST(VerilogParser, MuxPinNames) {
  const char* src = R"(
module m (s, a, b, y);
  input s; input a; input b; output y;
  wire y;
  MUX2 g0 (.Y(y), .S(s), .A(a), .B(b));
endmodule
)";
  Netlist nl = parse_verilog(src);
  ASSERT_EQ(nl.num_gates(), 1u);
  EXPECT_EQ(nl.gate(0).type, CellType::kMux2);
  // Pin order S, A, B.
  EXPECT_EQ(nl.net_name(nl.gate_inputs(0)[0]), "s");
  EXPECT_EQ(nl.net_name(nl.gate_inputs(0)[1]), "a");
  EXPECT_EQ(nl.net_name(nl.gate_inputs(0)[2]), "b");
}

TEST(VerilogParser, UnknownCellFails) {
  const char* src = "module m (a, y); input a; output y; wire y;\n"
                    "FOO g0 (.Y(y), .A(a)); endmodule";
  EXPECT_THROW(parse_verilog(src), std::runtime_error);
}

TEST(VerilogParser, MissingPinFails) {
  const char* src = "module m (a, y); input a; output y; wire y;\n"
                    "NAND2 g0 (.Y(y), .A(a)); endmodule";
  EXPECT_THROW(parse_verilog(src), std::runtime_error);
}

TEST(VerilogParser, ErrorCarriesLineNumber) {
  const char* src = "module m (a, y);\ninput a;\noutput y;\nwire y;\n@@@";
  try {
    parse_verilog(src);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 5"), std::string::npos)
        << e.what();
  }
}

TEST(VerilogParser, BlockTagFromInstanceName) {
  const char* src = R"(
module m (a, y);
  input a; output y;
  wire n0; wire y;
  INV b3_g0 (.Y(n0), .A(a));
  BUF plain (.Y(y), .A(n0));
endmodule
)";
  Netlist nl = parse_verilog(src);
  EXPECT_EQ(nl.gate(0).block, 3);
  EXPECT_EQ(nl.gate(1).block, 0);  // no prefix -> block 0
  EXPECT_EQ(nl.block_count(), 4);
}

TEST(VerilogParser, NegEdgeFlop) {
  const char* src = R"(
module m (y);
  output y;
  wire d; wire q; wire y;
  INV g0 (.Y(d), .A(q));
  BUF g1 (.Y(y), .A(q));
  SDFFN f0 (.Q(q), .D(d), .CK(clk0));
  input clk0;
endmodule
)";
  Netlist nl = parse_verilog(src);
  ASSERT_EQ(nl.num_flops(), 1u);
  EXPECT_TRUE(nl.flop(0).neg_edge);
}

}  // namespace
}  // namespace scap
