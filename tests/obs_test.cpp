#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace scap::obs {
namespace {

// The obs state is process-global; every test starts from a known, clean
// configuration and leaves the defaults behind (metrics on, tracing off).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ObsConfig cfg;
    cfg.trace = true;
    cfg.metrics = true;
    cfg.dump_trace_at_exit = false;
    configure(cfg);
    trace_clear();
    Registry::global().reset();
  }

  void TearDown() override {
    configure(ObsConfig{});
    trace_clear();
    Registry::global().reset();
  }
};

TEST_F(ObsTest, CountersIncrementFromMultipleScopes) {
  count("t.alpha");
  count("t.alpha", 4);
  { SCAP_TRACE_SCOPE("t.scoped"); count("t.beta", 2); }
  EXPECT_EQ(Registry::global().counter("t.alpha").value(), 5u);
  EXPECT_EQ(Registry::global().counter("t.beta").value(), 2u);
}

TEST_F(ObsTest, CounterReferencesStableAcrossLookups) {
  Counter& a = Registry::global().counter("t.stable");
  a.add(3);
  for (int i = 0; i < 100; ++i) Registry::global().counter("t.churn" + std::to_string(i));
  Counter& b = Registry::global().counter("t.stable");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
}

TEST_F(ObsTest, CountersFromMultipleThreads) {
  constexpr int kThreads = 4, kPerThread = 1000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) count("t.mt");
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(Registry::global().counter("t.mt").value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(ObsTest, ScopedTimerProducesWellFormedBeginEndPair) {
  { SCAP_TRACE_SCOPE("t.span"); }
  const std::vector<TraceEvent> ev = trace_snapshot();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_STREQ(ev[0].name, "t.span");
  EXPECT_STREQ(ev[1].name, "t.span");
  EXPECT_EQ(ev[0].phase, 'B');
  EXPECT_EQ(ev[1].phase, 'E');
  EXPECT_EQ(ev[0].tid, ev[1].tid);
  EXPECT_LE(ev[0].ts_us, ev[1].ts_us);
}

TEST_F(ObsTest, NestedScopesBalance) {
  {
    SCAP_TRACE_SCOPE("t.outer");
    { SCAP_TRACE_SCOPE("t.inner"); }
  }
  const std::vector<TraceEvent> ev = trace_snapshot();
  ASSERT_EQ(ev.size(), 4u);
  int depth = 0;
  for (const TraceEvent& e : ev) {
    depth += (e.phase == 'B') ? 1 : -1;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(ObsTest, ScopeFeedsAggregatedTimer) {
  for (int i = 0; i < 3; ++i) { SCAP_TRACE_SCOPE("t.timed"); }
  const RunningStats st = Registry::global().timer("t.timed").snapshot();
  EXPECT_EQ(st.count(), 3u);
  EXPECT_GE(Registry::global().timer("t.timed").total_ms(), 0.0);
}

TEST_F(ObsTest, ChromeTraceExportParses) {
  { SCAP_TRACE_SCOPE("t.export"); }
  count("noise");  // must not affect the trace
  std::ostringstream os;
  write_chrome_trace(os);
  const auto doc = json::parse(os.str());
  ASSERT_TRUE(doc.has_value());
  const json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 2u);
  const json::Value& b = events->array[0];
  ASSERT_NE(b.find("name"), nullptr);
  EXPECT_EQ(b.find("name")->string, "t.export");
  ASSERT_NE(b.find("ph"), nullptr);
  EXPECT_EQ(b.find("ph")->string, "B");
  ASSERT_NE(b.find("ts"), nullptr);
  EXPECT_EQ(b.find("ts")->kind, json::Value::Kind::kNumber);
}

TEST_F(ObsTest, MetricsJsonRoundTrips) {
  count("t.json_counter", 42);
  observe("t.json_gauge", 1.5);
  observe("t.json_gauge", 2.5);
  { SCAP_TRACE_SCOPE("t.json_span"); }

  RunReport rep;
  rep.name = "unit";
  rep.info.emplace_back("scale", "0.040");
  rep.phases.push_back(PhaseTime{"setup", 1.25});

  const std::string text = to_json(rep, Registry::global());
  const auto doc = json::parse(text);
  ASSERT_TRUE(doc.has_value());

  // dump() -> parse() is a fixed point.
  const auto again = json::parse(doc->dump());
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(*again == *doc);

  EXPECT_EQ(doc->find("name")->string, "unit");
  const json::Value* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("t.json_counter"), nullptr);
  EXPECT_EQ(counters->find("t.json_counter")->number, 42.0);
  const json::Value* gauges = doc->find("gauges");
  ASSERT_NE(gauges, nullptr);
  const json::Value* g = gauges->find("t.json_gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->find("count")->number, 2.0);
  EXPECT_EQ(g->find("mean")->number, 2.0);
  const json::Value* timers = doc->find("timers");
  ASSERT_NE(timers, nullptr);
  EXPECT_NE(timers->find("t.json_span"), nullptr);
  const json::Value* phases = doc->find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->array.size(), 1u);
  EXPECT_EQ(phases->array[0].find("name")->string, "setup");
  EXPECT_EQ(phases->array[0].find("wall_ms")->number, 1.25);
}

TEST_F(ObsTest, CsvExportHasHeaderAndRows) {
  count("t.csv", 7);
  observe("t.csv_gauge", 3.0);
  const std::string csv = to_csv(Registry::global());
  EXPECT_EQ(csv.rfind("kind,name,count,value,mean,min,max", 0), 0u);
  EXPECT_NE(csv.find("counter,t.csv,"), std::string::npos);
  EXPECT_NE(csv.find("gauge,t.csv_gauge,"), std::string::npos);
}

TEST_F(ObsTest, DisabledModeLeavesNoEventsAndNoCounts) {
  configure(ObsConfig{.trace = false, .metrics = false});
  { SCAP_TRACE_SCOPE("t.off"); }
  count("t.off_counter");
  observe("t.off_gauge", 1.0);
  EXPECT_TRUE(trace_snapshot().empty());
  EXPECT_EQ(Registry::global().counter("t.off_counter").value(), 0u);
  EXPECT_EQ(Registry::global().gauge("t.off_gauge").snapshot().count(), 0u);
}

TEST_F(ObsTest, TraceDisabledMetricsStillAggregate) {
  configure(ObsConfig{.trace = false, .metrics = true});
  { SCAP_TRACE_SCOPE("t.metrics_only"); }
  EXPECT_TRUE(trace_snapshot().empty());
  EXPECT_EQ(Registry::global().timer("t.metrics_only").snapshot().count(), 1u);
}

TEST_F(ObsTest, TraceClearDropsBufferedEvents) {
  { SCAP_TRACE_SCOPE("t.cleared"); }
  ASSERT_EQ(trace_snapshot().size(), 2u);
  trace_clear();
  EXPECT_TRUE(trace_snapshot().empty());
  { SCAP_TRACE_SCOPE("t.after_clear"); }
  EXPECT_EQ(trace_snapshot().size(), 2u);
}

TEST_F(ObsTest, EventsFromWorkerThreadsAreRetained) {
  std::thread worker([] { SCAP_TRACE_SCOPE("t.worker"); });
  worker.join();
  { SCAP_TRACE_SCOPE("t.main"); }
  const std::vector<TraceEvent> ev = trace_snapshot();
  ASSERT_EQ(ev.size(), 4u);
  bool saw_worker = false, saw_main = false;
  for (const TraceEvent& e : ev) {
    saw_worker |= std::string_view(e.name) == "t.worker";
    saw_main |= std::string_view(e.name) == "t.main";
  }
  EXPECT_TRUE(saw_worker);
  EXPECT_TRUE(saw_main);
  // Snapshot is time-ordered across threads.
  for (std::size_t i = 1; i < ev.size(); ++i) {
    EXPECT_LE(ev[i - 1].ts_us, ev[i].ts_us);
  }
}

TEST_F(ObsTest, RegistryResetZeroesButKeepsReferences) {
  Counter& c = Registry::global().counter("t.reset");
  c.add(9);
  Registry::global().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);
  EXPECT_EQ(Registry::global().counter("t.reset").value(), 1u);
}

TEST_F(ObsTest, JsonEscapeControlCharactersRoundTrip) {
  RunReport rep;
  rep.name = "weird \"name\"\n\twith\\controls";
  const std::string text = to_json(rep, Registry::global());
  const auto doc = json::parse(text);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("name")->string, rep.name);
}

TEST(ObsConfigTest, FlagsMirrorConfig) {
  const ObsConfig saved = config();
  configure(ObsConfig{.trace = true, .metrics = false});
  EXPECT_TRUE(trace_enabled());
  EXPECT_FALSE(metrics_enabled());
  EXPECT_TRUE(obs_active());
  configure(ObsConfig{.trace = false, .metrics = false});
  EXPECT_FALSE(obs_active());
  configure(saved);
}

}  // namespace
}  // namespace scap::obs
