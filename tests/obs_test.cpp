#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace scap::obs {
namespace {

// The obs state is process-global; every test starts from a known, clean
// configuration and leaves the defaults behind (metrics on, tracing off).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ObsConfig cfg;
    cfg.trace = true;
    cfg.metrics = true;
    cfg.dump_trace_at_exit = false;
    configure(cfg);
    trace_clear();
    Registry::global().reset();
  }

  void TearDown() override {
    configure(ObsConfig{});
    trace_clear();
    Registry::global().reset();
  }
};

TEST_F(ObsTest, CountersIncrementFromMultipleScopes) {
  count("t.alpha");
  count("t.alpha", 4);
  { SCAP_TRACE_SCOPE("t.scoped"); count("t.beta", 2); }
  EXPECT_EQ(Registry::global().counter("t.alpha").value(), 5u);
  EXPECT_EQ(Registry::global().counter("t.beta").value(), 2u);
}

TEST_F(ObsTest, CounterReferencesStableAcrossLookups) {
  Counter& a = Registry::global().counter("t.stable");
  a.add(3);
  for (int i = 0; i < 100; ++i) Registry::global().counter("t.churn" + std::to_string(i));
  Counter& b = Registry::global().counter("t.stable");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
}

TEST_F(ObsTest, CountersFromMultipleThreads) {
  constexpr int kThreads = 4, kPerThread = 1000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) count("t.mt");
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(Registry::global().counter("t.mt").value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(ObsTest, ScopedTimerProducesWellFormedBeginEndPair) {
  { SCAP_TRACE_SCOPE("t.span"); }
  const std::vector<TraceEvent> ev = trace_snapshot();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_STREQ(ev[0].name, "t.span");
  EXPECT_STREQ(ev[1].name, "t.span");
  EXPECT_EQ(ev[0].phase, 'B');
  EXPECT_EQ(ev[1].phase, 'E');
  EXPECT_EQ(ev[0].tid, ev[1].tid);
  EXPECT_LE(ev[0].ts_us, ev[1].ts_us);
}

TEST_F(ObsTest, NestedScopesBalance) {
  {
    SCAP_TRACE_SCOPE("t.outer");
    { SCAP_TRACE_SCOPE("t.inner"); }
  }
  const std::vector<TraceEvent> ev = trace_snapshot();
  ASSERT_EQ(ev.size(), 4u);
  int depth = 0;
  for (const TraceEvent& e : ev) {
    depth += (e.phase == 'B') ? 1 : -1;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(ObsTest, ScopeFeedsAggregatedTimer) {
  for (int i = 0; i < 3; ++i) { SCAP_TRACE_SCOPE("t.timed"); }
  const RunningStats st = Registry::global().timer("t.timed").snapshot();
  EXPECT_EQ(st.count(), 3u);
  EXPECT_GE(Registry::global().timer("t.timed").total_ms(), 0.0);
}

TEST_F(ObsTest, ChromeTraceExportParses) {
  { SCAP_TRACE_SCOPE("t.export"); }
  count("noise");  // must not affect the trace
  std::ostringstream os;
  write_chrome_trace(os);
  const auto doc = json::parse(os.str());
  ASSERT_TRUE(doc.has_value());
  const json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 2u);
  const json::Value& b = events->array[0];
  ASSERT_NE(b.find("name"), nullptr);
  EXPECT_EQ(b.find("name")->string, "t.export");
  ASSERT_NE(b.find("ph"), nullptr);
  EXPECT_EQ(b.find("ph")->string, "B");
  ASSERT_NE(b.find("ts"), nullptr);
  EXPECT_EQ(b.find("ts")->kind, json::Value::Kind::kNumber);
}

TEST_F(ObsTest, MetricsJsonRoundTrips) {
  count("t.json_counter", 42);
  observe("t.json_gauge", 1.5);
  observe("t.json_gauge", 2.5);
  { SCAP_TRACE_SCOPE("t.json_span"); }

  RunReport rep;
  rep.name = "unit";
  rep.info.emplace_back("scale", "0.040");
  rep.phases.push_back(PhaseTime{"setup", 1.25});

  const std::string text = to_json(rep, Registry::global());
  const auto doc = json::parse(text);
  ASSERT_TRUE(doc.has_value());

  // dump() -> parse() is a fixed point.
  const auto again = json::parse(doc->dump());
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(*again == *doc);

  EXPECT_EQ(doc->find("name")->string, "unit");
  const json::Value* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("t.json_counter"), nullptr);
  EXPECT_EQ(counters->find("t.json_counter")->number, 42.0);
  const json::Value* gauges = doc->find("gauges");
  ASSERT_NE(gauges, nullptr);
  const json::Value* g = gauges->find("t.json_gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->find("count")->number, 2.0);
  EXPECT_EQ(g->find("mean")->number, 2.0);
  const json::Value* timers = doc->find("timers");
  ASSERT_NE(timers, nullptr);
  EXPECT_NE(timers->find("t.json_span"), nullptr);
  const json::Value* phases = doc->find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->array.size(), 1u);
  EXPECT_EQ(phases->array[0].find("name")->string, "setup");
  EXPECT_EQ(phases->array[0].find("wall_ms")->number, 1.25);
}

TEST_F(ObsTest, CsvExportHasHeaderAndRows) {
  count("t.csv", 7);
  observe("t.csv_gauge", 3.0);
  const std::string csv = to_csv(Registry::global());
  EXPECT_EQ(csv.rfind("kind,name,count,value,mean,min,max", 0), 0u);
  EXPECT_NE(csv.find("counter,t.csv,"), std::string::npos);
  EXPECT_NE(csv.find("gauge,t.csv_gauge,"), std::string::npos);
}

TEST_F(ObsTest, DisabledModeLeavesNoEventsAndNoCounts) {
  configure(ObsConfig{.trace = false, .metrics = false});
  { SCAP_TRACE_SCOPE("t.off"); }
  count("t.off_counter");
  observe("t.off_gauge", 1.0);
  EXPECT_TRUE(trace_snapshot().empty());
  EXPECT_EQ(Registry::global().counter("t.off_counter").value(), 0u);
  EXPECT_EQ(Registry::global().gauge("t.off_gauge").snapshot().count(), 0u);
}

TEST_F(ObsTest, TraceDisabledMetricsStillAggregate) {
  configure(ObsConfig{.trace = false, .metrics = true});
  { SCAP_TRACE_SCOPE("t.metrics_only"); }
  EXPECT_TRUE(trace_snapshot().empty());
  EXPECT_EQ(Registry::global().timer("t.metrics_only").snapshot().count(), 1u);
}

TEST_F(ObsTest, TraceClearDropsBufferedEvents) {
  { SCAP_TRACE_SCOPE("t.cleared"); }
  ASSERT_EQ(trace_snapshot().size(), 2u);
  trace_clear();
  EXPECT_TRUE(trace_snapshot().empty());
  { SCAP_TRACE_SCOPE("t.after_clear"); }
  EXPECT_EQ(trace_snapshot().size(), 2u);
}

TEST_F(ObsTest, EventsFromWorkerThreadsAreRetained) {
  std::thread worker([] { SCAP_TRACE_SCOPE("t.worker"); });
  worker.join();
  { SCAP_TRACE_SCOPE("t.main"); }
  const std::vector<TraceEvent> ev = trace_snapshot();
  ASSERT_EQ(ev.size(), 4u);
  bool saw_worker = false, saw_main = false;
  for (const TraceEvent& e : ev) {
    saw_worker |= std::string_view(e.name) == "t.worker";
    saw_main |= std::string_view(e.name) == "t.main";
  }
  EXPECT_TRUE(saw_worker);
  EXPECT_TRUE(saw_main);
  // Snapshot is time-ordered across threads.
  for (std::size_t i = 1; i < ev.size(); ++i) {
    EXPECT_LE(ev[i - 1].ts_us, ev[i].ts_us);
  }
}

TEST_F(ObsTest, RegistryResetZeroesButKeepsReferences) {
  Counter& c = Registry::global().counter("t.reset");
  c.add(9);
  Registry::global().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);
  EXPECT_EQ(Registry::global().counter("t.reset").value(), 1u);
}

TEST_F(ObsTest, JsonEscapeControlCharactersRoundTrip) {
  RunReport rep;
  rep.name = "weird \"name\"\n\twith\\controls";
  const std::string text = to_json(rep, Registry::global());
  const auto doc = json::parse(text);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("name")->string, rep.name);
}

TEST(JsonNumberTest, AwkwardDoublesRoundTripBitExactly) {
  // Values that %.15g mangles and %.17g over-lengthens; append_number must
  // emit the shortest form that strtod parses back to the identical double.
  const double awkward[] = {
      1e-9,
      0.82,                  // the t4 speedup that started all this
      0.1,
      1.0 / 3.0,
      9007199254740991.0,    // 2^53 - 1, last exact odd integer
      9007199254740994.0,    // 2^53 + 2, adjacent representable
      1.7976931348623157e308,
      5e-324,                // min subnormal
      -2.5e-300,
      0.0,
      -17.25,
  };
  for (const double x : awkward) {
    std::string out;
    json::append_number(out, x);
    EXPECT_EQ(std::strtod(out.c_str(), nullptr), x) << "emitted " << out;
  }
  // NaN / infinity are not JSON; they degrade to 0 rather than corrupting
  // the document.
  std::string out;
  json::append_number(out, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(out, "0");
  out.clear();
  json::append_number(out, std::numeric_limits<double>::infinity());
  EXPECT_EQ(out, "0");
}

TEST(JsonNumberTest, ValueDumpParseIsAFixedPointOnAwkwardNumbers) {
  json::Value arr;
  arr.kind = json::Value::Kind::kArray;
  for (const double x : {1e-9, 0.82, 9007199254740991.0, 1.0 / 3.0}) {
    json::Value n;
    n.kind = json::Value::Kind::kNumber;
    n.number = x;
    arr.array.push_back(n);
  }
  const auto parsed = json::parse(arr.dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(*parsed == arr);
}

TEST_F(ObsTest, SnapshotSkipsEmptyEntries) {
  Registry::global().counter("t.zero");          // registered but never added
  Registry::global().gauge("t.empty_gauge");     // never observed
  count("t.live", 2);
  const Registry::Snapshot snap = Registry::global().snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "t.live");
  EXPECT_TRUE(snap.gauges.empty());
}

TEST_F(ObsTest, SnapshotAndResetScopesPhases) {
  count("t.phase_ctr", 10);
  observe("t.phase_gauge", 1.0);
  { SCAP_TRACE_SCOPE("t.phase_span"); }
  const Registry::Snapshot phase1 = Registry::global().snapshot_and_reset();

  // The registry starts the next phase from zero, references intact.
  EXPECT_EQ(Registry::global().counter("t.phase_ctr").value(), 0u);
  EXPECT_EQ(Registry::global().gauge("t.phase_gauge").snapshot().count(), 0u);

  count("t.phase_ctr", 5);
  observe("t.phase_gauge", 3.0);
  observe("t.phase_gauge", 5.0);
  Registry::Snapshot phase2 = Registry::global().snapshot_and_reset();

  ASSERT_EQ(phase1.counters.size(), 1u);
  EXPECT_EQ(phase1.counters[0].second, 10u);
  ASSERT_EQ(phase2.counters.size(), 1u);
  EXPECT_EQ(phase2.counters[0].second, 5u);
  ASSERT_EQ(phase1.timers.size(), 1u);
  EXPECT_EQ(phase1.timers[0].stats.count(), 1u);

  // Merging the phases reconstructs the cumulative run.
  phase2.merge(phase1);
  ASSERT_EQ(phase2.counters.size(), 1u);
  EXPECT_EQ(phase2.counters[0].second, 15u);
  ASSERT_EQ(phase2.gauges.size(), 1u);
  EXPECT_EQ(phase2.gauges[0].second.count(), 3u);
  EXPECT_EQ(phase2.gauges[0].second.min(), 1.0);
  EXPECT_EQ(phase2.gauges[0].second.max(), 5.0);
  EXPECT_EQ(phase2.timers.size(), 1u);
}

TEST_F(ObsTest, PhaseScopedReportEmitsPerPhaseAndMergedMetrics) {
  RunReport rep;
  rep.name = "phased";

  count("t.work", 3);
  PhaseTime p1;
  p1.name = "first";
  p1.wall_ms = 5.0;
  p1.metrics = Registry::global().snapshot_and_reset();
  rep.phases.push_back(std::move(p1));

  count("t.work", 4);
  observe("t.late_gauge", 2.0);
  PhaseTime p2;
  p2.name = "second";
  p2.wall_ms = 7.0;
  p2.metrics = Registry::global().snapshot_and_reset();
  rep.phases.push_back(std::move(p2));

  const std::string text = to_json(rep);
  const auto doc = json::parse(text);
  ASSERT_TRUE(doc.has_value());

  // Top level carries the merge of both phases (the cumulative run).
  const json::Value* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("t.work"), nullptr);
  EXPECT_EQ(counters->find("t.work")->number, 7.0);

  const json::Value* phases = doc->find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->array.size(), 2u);
  const json::Value* m1 = phases->array[0].find("metrics");
  ASSERT_NE(m1, nullptr);
  EXPECT_EQ(m1->find("counters")->find("t.work")->number, 3.0);
  const json::Value* m2 = phases->array[1].find("metrics");
  ASSERT_NE(m2, nullptr);
  EXPECT_EQ(m2->find("counters")->find("t.work")->number, 4.0);
  ASSERT_NE(m2->find("gauges")->find("t.late_gauge"), nullptr);
  EXPECT_EQ(m2->find("gauges")->find("t.late_gauge")->find("mean")->number,
            2.0);
  // Phase one observed no gauges; its section is present but empty.
  EXPECT_TRUE(m1->find("gauges")->object.empty());
}

TEST(ObsConfigTest, FlagsMirrorConfig) {
  const ObsConfig saved = config();
  configure(ObsConfig{.trace = true, .metrics = false});
  EXPECT_TRUE(trace_enabled());
  EXPECT_FALSE(metrics_enabled());
  EXPECT_TRUE(obs_active());
  configure(ObsConfig{.trace = false, .metrics = false});
  EXPECT_FALSE(obs_active());
  configure(saved);
}

}  // namespace
}  // namespace scap::obs
