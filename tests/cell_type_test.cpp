// Cross-domain consistency of the cell evaluators: scalar, 64-bit word and
// 3-valued evaluation must agree on every cell type and every input
// combination, and the 3-valued evaluator must be exactly the abstraction of
// the scalar one (known result iff all completions agree).
#include <gtest/gtest.h>

#include <vector>

#include "netlist/cell_type.h"

namespace scap {
namespace {

std::vector<CellType> all_combinational_types() {
  std::vector<CellType> out;
  for (std::size_t i = 0; i < kNumCellTypes; ++i) {
    const auto t = static_cast<CellType>(i);
    if (is_combinational(t)) out.push_back(t);
  }
  return out;
}

class CellEval : public ::testing::TestWithParam<CellType> {};

TEST_P(CellEval, ScalarMatchesWordOnAllCombinations) {
  const CellType t = GetParam();
  const int n = num_inputs(t);
  for (int combo = 0; combo < (1 << n); ++combo) {
    std::vector<std::uint8_t> sins(static_cast<std::size_t>(n));
    std::vector<std::uint64_t> wins(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const std::uint8_t bit = (combo >> i) & 1;
      sins[static_cast<std::size_t>(i)] = bit;
      wins[static_cast<std::size_t>(i)] = bit ? ~0ull : 0ull;
    }
    const std::uint8_t s = eval_scalar(t, sins);
    const std::uint64_t w = eval_word(t, wins);
    EXPECT_EQ(w, s ? ~0ull : 0ull)
        << cell_name(t) << " combo " << combo;
  }
}

TEST_P(CellEval, WordEvaluatesLanesIndependently) {
  const CellType t = GetParam();
  const int n = num_inputs(t);
  if (n == 0) return;
  // Pack all input combinations into lanes and check each lane.
  std::vector<std::uint64_t> wins(static_cast<std::size_t>(n), 0);
  for (int combo = 0; combo < (1 << n); ++combo) {
    for (int i = 0; i < n; ++i) {
      if ((combo >> i) & 1) {
        wins[static_cast<std::size_t>(i)] |= 1ull << combo;
      }
    }
  }
  const std::uint64_t w = eval_word(t, wins);
  for (int combo = 0; combo < (1 << n); ++combo) {
    std::vector<std::uint8_t> sins(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      sins[static_cast<std::size_t>(i)] = (combo >> i) & 1;
    }
    EXPECT_EQ((w >> combo) & 1, eval_scalar(t, sins))
        << cell_name(t) << " lane " << combo;
  }
}

TEST_P(CellEval, V3IsExactAbstractionOfScalar) {
  const CellType t = GetParam();
  const int n = num_inputs(t);
  // Enumerate 3-valued inputs (0,1,X per pin).
  int total = 1;
  for (int i = 0; i < n; ++i) total *= 3;
  for (int combo = 0; combo < total; ++combo) {
    std::vector<V3> vins(static_cast<std::size_t>(n));
    std::vector<int> code(static_cast<std::size_t>(n));
    int c = combo;
    for (int i = 0; i < n; ++i) {
      code[static_cast<std::size_t>(i)] = c % 3;
      c /= 3;
      vins[static_cast<std::size_t>(i)] =
          code[static_cast<std::size_t>(i)] == 2
              ? V3::x()
              : V3::of(code[static_cast<std::size_t>(i)]);
    }
    const V3 got = eval_v3(t, vins);

    // Ground truth: evaluate every completion of the X inputs.
    bool can0 = false, can1 = false;
    std::vector<int> x_pins;
    for (int i = 0; i < n; ++i) {
      if (code[static_cast<std::size_t>(i)] == 2) x_pins.push_back(i);
    }
    for (int fill = 0; fill < (1 << x_pins.size()); ++fill) {
      std::vector<std::uint8_t> sins(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        sins[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(code[static_cast<std::size_t>(i)] % 2);
      }
      for (std::size_t k = 0; k < x_pins.size(); ++k) {
        sins[static_cast<std::size_t>(x_pins[k])] = (fill >> k) & 1;
      }
      (eval_scalar(t, sins) ? can1 : can0) = true;
    }
    // V3 may be pessimistic (report X when the value is actually fixed) but
    // must never claim a wrong known value; for these cell primitives it is
    // exact except the select-independent MUX shortcut, which is also exact.
    if (!got.is_x()) {
      EXPECT_TRUE(got.value() == 1 ? (can1 && !can0) : (can0 && !can1))
          << cell_name(t) << " combo " << combo;
    } else {
      EXPECT_TRUE(can0 && can1) << cell_name(t) << " combo " << combo
                                << ": pessimistic X for a determined value";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCells, CellEval,
                         ::testing::ValuesIn(all_combinational_types()),
                         [](const auto& info) {
                           return std::string(cell_name(info.param));
                         });

TEST(CellType, NamesRoundTrip) {
  for (std::size_t i = 0; i < kNumCellTypes; ++i) {
    const auto t = static_cast<CellType>(i);
    CellType back;
    ASSERT_TRUE(cell_from_name(cell_name(t), back)) << cell_name(t);
    EXPECT_EQ(back, t);
  }
  CellType dummy;
  EXPECT_FALSE(cell_from_name("NAND9", dummy));
  EXPECT_FALSE(cell_from_name("", dummy));
}

TEST(CellType, ControllingValues) {
  EXPECT_EQ(controlling_value(CellType::kAnd3), 0);
  EXPECT_EQ(controlling_value(CellType::kNand2), 0);
  EXPECT_EQ(controlling_value(CellType::kOr4), 1);
  EXPECT_EQ(controlling_value(CellType::kNor2), 1);
  EXPECT_EQ(controlling_value(CellType::kXor2), -1);
  EXPECT_EQ(controlling_value(CellType::kMux2), -1);
}

TEST(CellType, InversionFlags) {
  EXPECT_TRUE(is_inverting(CellType::kInv));
  EXPECT_TRUE(is_inverting(CellType::kNand4));
  EXPECT_TRUE(is_inverting(CellType::kXnor2));
  EXPECT_FALSE(is_inverting(CellType::kBuf));
  EXPECT_FALSE(is_inverting(CellType::kAnd2));
  EXPECT_FALSE(is_inverting(CellType::kMux2));
}

TEST(CellType, V3Not) {
  EXPECT_EQ(v3_not(V3::zero()), V3::one());
  EXPECT_EQ(v3_not(V3::one()), V3::zero());
  EXPECT_EQ(v3_not(V3::x()), V3::x());
}

}  // namespace
}  // namespace scap
