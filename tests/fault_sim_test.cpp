#include <gtest/gtest.h>

#include <array>

#include "atpg/fault_sim.h"
#include "sim/logic_sim.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace scap {
namespace {

/// Slow, obviously-correct reference: scalar two-frame simulation with the
/// fault injected by brute-force re-evaluation of the whole frame-2 netlist.
bool reference_detects(const Netlist& nl, const TestContext& ctx,
                       const Pattern& p, const TdfFault& fault) {
  LogicSim sim(nl);
  std::vector<std::uint8_t> f1;
  sim.eval_frame(p.s1, ctx.pi_values, f1);
  std::vector<std::uint8_t> s2(nl.num_flops());
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    s2[f] = ctx.active[f] ? f1[nl.flop(f).d] : p.s1[f];
  }
  std::vector<std::uint8_t> g2;
  sim.eval_frame(s2, ctx.pi_values, g2);

  // Launch condition.
  if (f1[fault.net] != fault.v1() || g2[fault.net] != fault.v2()) return false;
  if (fault.site == FaultSite::kFlopBranch) return ctx.active[fault.load];

  // Faulty frame 2: evaluate with the stuck value injected.
  std::vector<std::uint8_t> x2(nl.num_nets());
  for (std::size_t i = 0; i < nl.primary_inputs().size(); ++i) {
    x2[nl.primary_inputs()[i]] = ctx.pi_values[i];
  }
  for (FlopId f = 0; f < nl.num_flops(); ++f) x2[nl.flop(f).q] = s2[f];
  if (fault.site == FaultSite::kStem) {
    x2[fault.net] = static_cast<std::uint8_t>(fault.v1());
  }
  std::array<std::uint8_t, 4> ins{};
  for (GateId g : nl.topo_order()) {
    const auto in_nets = nl.gate_inputs(g);
    for (std::size_t i = 0; i < in_nets.size(); ++i) {
      ins[i] = x2[in_nets[i]];
      if (fault.site == FaultSite::kGateBranch && fault.load == g &&
          fault.pin == i) {
        ins[i] = static_cast<std::uint8_t>(fault.v1());
      }
    }
    std::uint8_t out = eval_scalar(
        nl.gate(g).type, std::span<const std::uint8_t>(ins.data(), in_nets.size()));
    const NetId onet = nl.gate(g).out;
    if (fault.site == FaultSite::kStem && onet == fault.net) {
      out = static_cast<std::uint8_t>(fault.v1());
    }
    x2[onet] = out;
  }
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    if (!ctx.active[f]) continue;
    if (x2[nl.flop(f).d] != g2[nl.flop(f).d]) return true;
  }
  return false;
}

struct SimRig {
  const Netlist& nl = test::tiny_soc().netlist;
  TestContext ctx = TestContext::for_domain(nl, 0);
  std::vector<TdfFault> faults = collapse_faults(nl, enumerate_faults(nl));

  std::vector<Pattern> random_patterns(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<Pattern> pats(n);
    for (auto& p : pats) {
      p.s1.resize(nl.num_flops());
      for (auto& b : p.s1) b = static_cast<std::uint8_t>(rng.below(2));
    }
    return pats;
  }
};

TEST(FaultSim, MatchesScalarReference) {
  SimRig rig;
  const auto pats = rig.random_patterns(64, 77);
  FaultSimulator fsim(rig.nl, rig.ctx);
  fsim.load_batch(pats);
  Rng rng(5);
  // Sample faults across the whole list.
  for (int trial = 0; trial < 120; ++trial) {
    const auto& fault = rig.faults[rng.below(rig.faults.size())];
    const std::uint64_t mask = fsim.detect_mask(fault);
    for (int lane : {0, 13, 40, 63}) {
      const bool expected = reference_detects(rig.nl, rig.ctx, pats[lane], fault);
      ASSERT_EQ((mask >> lane) & 1, expected ? 1u : 0u)
          << describe_fault(rig.nl, fault) << " lane " << lane;
    }
  }
}

TEST(FaultSim, NoLaunchNoDetection) {
  SimRig rig;
  // All-zero state: frame-1 value of any net equals... whatever it settles
  // to; a fault whose site holds the same value in both frames cannot launch.
  const auto pats = rig.random_patterns(1, 3);
  FaultSimulator fsim(rig.nl, rig.ctx);
  fsim.load_batch(pats);
  LogicSim sim(rig.nl);
  std::vector<std::uint8_t> f1;
  sim.eval_frame(pats[0].s1, rig.ctx.pi_values, f1);
  std::vector<std::uint8_t> s2(rig.nl.num_flops());
  for (FlopId f = 0; f < rig.nl.num_flops(); ++f) {
    s2[f] = rig.ctx.active[f] ? f1[rig.nl.flop(f).d] : pats[0].s1[f];
  }
  std::vector<std::uint8_t> g2;
  sim.eval_frame(s2, rig.ctx.pi_values, g2);
  int checked = 0;
  for (const auto& fault : rig.faults) {
    if (f1[fault.net] == g2[fault.net]) {  // no transition at the site
      EXPECT_EQ(fsim.detect_mask(fault) & 1, 0u)
          << describe_fault(rig.nl, fault);
      if (++checked > 200) break;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(FaultSim, FlopBranchDetectedOnLaunchAlone) {
  SimRig rig;
  const auto pats = rig.random_patterns(64, 9);
  FaultSimulator fsim(rig.nl, rig.ctx);
  fsim.load_batch(pats);
  int found = 0;
  // Collapsing folds most flop-branch faults into their stems; check the
  // uncollapsed universe.
  const auto universe = enumerate_faults(rig.nl);
  for (const auto& fault : universe) {
    if (fault.site != FaultSite::kFlopBranch) continue;
    const std::uint64_t mask = fsim.detect_mask(fault);
    for (int lane = 0; lane < 64 && found < 50; ++lane) {
      const bool expected = reference_detects(rig.nl, rig.ctx, pats[lane], fault);
      ASSERT_EQ((mask >> lane) & 1, expected ? 1u : 0u);
      ++found;
    }
    if (found >= 50) break;
  }
  EXPECT_GT(found, 0);
}

TEST(FaultSim, InactiveDomainFlopsDoNotObserve) {
  SimRig rig;
  // Test context for domain 1 (the tiny SOC's second domain).
  const TestContext ctx1 = TestContext::for_domain(rig.nl, 1);
  FaultSimulator fsim(rig.nl, ctx1);
  const auto pats = rig.random_patterns(64, 10);
  fsim.load_batch(pats);
  // A flop-branch fault on a domain-0 flop cannot be observed in a domain-1
  // test session.
  for (const auto& fault : rig.faults) {
    if (fault.site == FaultSite::kFlopBranch &&
        rig.nl.flop(fault.load).domain == 0) {
      EXPECT_EQ(fsim.detect_mask(fault), 0u);
      break;
    }
  }
}

TEST(FaultSim, GradeDropsAndCredits) {
  SimRig rig;
  const auto pats = rig.random_patterns(150, 11);  // spans 3 batches
  FaultSimulator fsim(rig.nl, rig.ctx);
  std::vector<std::size_t> per_pattern;
  const auto first = fsim.grade(pats, rig.faults, &per_pattern);

  ASSERT_EQ(per_pattern.size(), pats.size());
  std::size_t detected = 0;
  for (auto idx : first) detected += (idx != FaultSimulator::kUndetected);
  std::size_t credited = 0;
  for (auto c : per_pattern) credited += c;
  EXPECT_EQ(detected, credited);
  EXPECT_GT(detected, rig.faults.size() / 4);
  // First-detection indices must be valid pattern indices.
  for (auto idx : first) {
    if (idx != FaultSimulator::kUndetected) EXPECT_LT(idx, pats.size());
  }
}

TEST(FaultSim, GradeIsMonotoneInPatternCount) {
  SimRig rig;
  const auto pats = rig.random_patterns(128, 12);
  FaultSimulator fsim(rig.nl, rig.ctx);
  const auto first64 = fsim.grade(std::span<const Pattern>(pats).first(64),
                                  rig.faults, nullptr);
  const auto first128 = fsim.grade(pats, rig.faults, nullptr);
  std::size_t d64 = 0, d128 = 0;
  for (auto i : first64) d64 += (i != FaultSimulator::kUndetected);
  for (auto i : first128) d128 += (i != FaultSimulator::kUndetected);
  EXPECT_GE(d128, d64);
  // The first 64 patterns give identical first-detect indices in both runs.
  for (std::size_t i = 0; i < rig.faults.size(); ++i) {
    if (first64[i] != FaultSimulator::kUndetected) {
      EXPECT_EQ(first128[i], first64[i]);
    }
  }
}

TEST(FaultSim, PartialBatchMasksHighLanes) {
  SimRig rig;
  const auto pats = rig.random_patterns(5, 13);
  FaultSimulator fsim(rig.nl, rig.ctx);
  fsim.load_batch(pats);
  for (int trial = 0; trial < 50; ++trial) {
    const auto& fault = rig.faults[static_cast<std::size_t>(trial) * 37 %
                                   rig.faults.size()];
    EXPECT_EQ(fsim.detect_mask(fault) & ~0x1full, 0u)
        << "lanes beyond the batch must stay clear";
  }
}

}  // namespace
}  // namespace scap
